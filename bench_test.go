// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md experiment index). Each BenchmarkTable*/BenchmarkFigure*
// target runs a reduced-size version of the corresponding experiment per
// iteration and reports the headline quantity as a custom metric; the
// full-size campaigns are driven by cmd/labrunner and recorded in
// EXPERIMENTS.md. Component micro-benchmarks at the bottom size the hot
// paths (kinematics, dynamics step, packet codec, write chain).
package ravenguard

import (
	"testing"

	"ravenguard/internal/core"
	"ravenguard/internal/dynamics"
	"ravenguard/internal/experiment"
	"ravenguard/internal/inject"
	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/malware"
	"ravenguard/internal/usb"
)

// --- Table II: malicious-wrapper overhead ---------------------------------

func benchTable2(b *testing.B, measure func(experiment.Table2Result) float64) {
	b.Helper()
	var last experiment.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable2(experiment.Table2Config{Calls: 2000})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(measure(last), "us/call")
}

func BenchmarkTableII_Baseline(b *testing.B) {
	benchTable2(b, func(r experiment.Table2Result) float64 { return r.Baseline.Summary.Mean })
}

func BenchmarkTableII_Logging(b *testing.B) {
	benchTable2(b, func(r experiment.Table2Result) float64 { return r.Logging.Summary.Mean })
}

func BenchmarkTableII_Injection(b *testing.B) {
	benchTable2(b, func(r experiment.Table2Result) float64 { return r.Injection.Summary.Mean })
}

// --- Figure 5/6: eavesdropping and state inference ------------------------

func BenchmarkFigure5_ByteProfile(b *testing.B) {
	var distinct int
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig5(int64(21 + i))
		if err != nil {
			b.Fatal(err)
		}
		distinct = res.Byte0Masked
	}
	b.ReportMetric(float64(distinct), "byte0-states")
}

func BenchmarkFigure6_StateInference(b *testing.B) {
	matches := 0
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(int64(31 + i))
		if err != nil {
			b.Fatal(err)
		}
		matches = 0
		for _, run := range res.Runs {
			if run.TruthMatches {
				matches++
			}
		}
	}
	b.ReportMetric(float64(matches), "runs-matched-of-9")
}

// --- Figure 8: dynamic-model validation -----------------------------------

func benchFig8(b *testing.B, scheme string) {
	b.Helper()
	var stepMs float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig8(experiment.Fig8Config{Runs: 2, TeleopSeconds: 3, BaseSeed: int64(41 + i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Integrator == dynamics.SchemeName(scheme) {
				stepMs = row.AvgStepMs
			}
		}
	}
	b.ReportMetric(stepMs*1e3, "us/model-step")
}

func BenchmarkFigure8_Euler(b *testing.B) { benchFig8(b, "euler") }

func BenchmarkFigure8_RK4(b *testing.B) { benchFig8(b, "rk4") }

// --- Table IV: detection performance --------------------------------------

func benchTable4(b *testing.B, scenario experiment.Scenario) {
	b.Helper()
	var acc float64
	for i := 0; i < b.N; i++ {
		cfg := experiment.Table4Config{RunsA: 1, RunsB: 1, BaseSeed: int64(51 + i)}
		switch scenario {
		case experiment.ScenarioA:
			cfg.RunsB = 1
			cfg.RunsA = 24
		case experiment.ScenarioB:
			cfg.RunsA = 1
			cfg.RunsB = 24
		}
		res, err := experiment.RunTable4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if scenario == experiment.ScenarioA {
			acc = res.A.Dyn.Confusion.Accuracy()
		} else {
			acc = res.B.Dyn.Confusion.Accuracy()
		}
	}
	b.ReportMetric(acc, "dyn-ACC-%")
}

func BenchmarkTableIV_ScenarioA(b *testing.B) { benchTable4(b, experiment.ScenarioA) }

func BenchmarkTableIV_ScenarioB(b *testing.B) { benchTable4(b, experiment.ScenarioB) }

// --- Figure 9: impact/detection probability sweep --------------------------

func BenchmarkFigure9_Sweep(b *testing.B) {
	var pImpact float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig9(experiment.Fig9Config{
			Values:    []int16{8000, 20000},
			Durations: []int{8, 128},
			Reps:      3,
			BaseSeed:  int64(61 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		pImpact = res.Cells[len(res.Cells)-1].PImpact.Value()
	}
	b.ReportMetric(pImpact, "P(impact)-top-cell")
}

// --- Table I: attack-variant matrix ----------------------------------------

func BenchmarkTableI_Variants(b *testing.B) {
	impacted := 0
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable1(int64(42 + i))
		if err != nil {
			b.Fatal(err)
		}
		impacted = 0
		for _, row := range res.Rows {
			if row.Impact != "No observable impact" {
				impacted++
			}
		}
	}
	b.ReportMetric(float64(impacted), "variants-with-impact-of-7")
}

// --- Ablations --------------------------------------------------------------

func benchAblation(b *testing.B, f func(experiment.AblationConfig) (experiment.AblationResult, error)) {
	b.Helper()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := f(experiment.AblationConfig{Runs: 24, BaseSeed: int64(71 + i)})
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 101.0, -1.0
		for _, arm := range res.Arms {
			tpr := arm.Confusion.TPR()
			if tpr < lo {
				lo = tpr
			}
			if tpr > hi {
				hi = tpr
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "TPR-spread-%")
}

func BenchmarkAblation_AlarmFusion(b *testing.B) {
	benchAblation(b, experiment.RunAblationFusion)
}

func BenchmarkAblation_ThresholdPercentile(b *testing.B) {
	benchAblation(b, experiment.RunAblationPercentile)
}

func BenchmarkAblation_DetectorPlacement(b *testing.B) {
	benchAblation(b, experiment.RunAblationPlacement)
}

// --- Component micro-benchmarks ---------------------------------------------

func BenchmarkKinematicsForward(b *testing.B) {
	jp := kinematics.DefaultLimits().Center()
	for i := 0; i < b.N; i++ {
		_ = kinematics.Forward(jp)
	}
}

func BenchmarkKinematicsInverse(b *testing.B) {
	pos := kinematics.Forward(kinematics.DefaultLimits().Center())
	for i := 0; i < b.N; i++ {
		if _, err := kinematics.Inverse(pos); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicsStep* time the fused kernel — the path the plant and
// the guard actually run; the *Reference variants keep the original
// Deriv-closure + Integrator-interface path as the comparison baseline.

func BenchmarkDynamicsStepEuler(b *testing.B) {
	benchDynamicsStep(b, false)
}

func BenchmarkDynamicsStepRK4(b *testing.B) {
	benchDynamicsStep(b, true)
}

func benchDynamicsStep(b *testing.B, rk4 bool) {
	b.Helper()
	s, err := dynamics.NewStepper(dynamics.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var st dynamics.State
	st.SetJointPos(kinematics.DefaultLimits().Center(), kinematics.DefaultTransmission())
	s.SetTorque([3]float64{0.01, 0.01, 0.005})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(rk4, &st.X, 1e-3)
	}
}

func BenchmarkDynamicsStepEulerReference(b *testing.B) {
	benchDynamicsStepReference(b, "euler")
}

func BenchmarkDynamicsStepRK4Reference(b *testing.B) {
	benchDynamicsStepReference(b, "rk4")
}

func benchDynamicsStepReference(b *testing.B, scheme string) {
	b.Helper()
	model, err := dynamics.NewModel(dynamics.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	integ, err := dynamics.NewIntegrator(scheme, dynamics.StateDim)
	if err != nil {
		b.Fatal(err)
	}
	var st dynamics.State
	st.SetJointPos(kinematics.DefaultLimits().Center(), kinematics.DefaultTransmission())
	model.SetTorque([3]float64{0.01, 0.01, 0.005})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		integ.Step(model.Deriv, 0, st.X[:], 1e-3)
	}
}

func BenchmarkUSBCommandCodec(b *testing.B) {
	cmd := usb.Command{StateNibble: 0x0F, Watchdog: true, Seq: 3, DAC: [8]int16{1, -2, 3}}
	for i := 0; i < b.N; i++ {
		frame := cmd.Encode()
		if _, err := usb.DecodeCommand(frame[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterposeChainWrite(b *testing.B) {
	chain := interpose.NewChain(func([]byte) error { return nil })
	chain.Preload(malware.NewInjector(malware.InjectorConfig{Mode: malware.ModeDACOffset, Value: 100}))
	frame := usb.Command{StateNibble: 0x0F}.Encode()
	buf := make([]byte, len(frame))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, frame[:])
		if err := chain.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuardOnWrite(b *testing.B) {
	guard, err := core.NewGuard(core.Config{Thresholds: core.DefaultThresholds()})
	if err != nil {
		b.Fatal(err)
	}
	// Sync the guard at the workspace center.
	fb := usb.Feedback{}
	mp := kinematics.DefaultTransmission().ToMotor(kinematics.DefaultLimits().Center())
	for i := 0; i < 3; i++ {
		fb.Encoder[i] = int32(mp[i] * 4000 / (2 * 3.14159265))
	}
	guard.OnFeedback(fb, 0)
	frame := usb.Command{StateNibble: 0x0F, DAC: [8]int16{500, 400, 300}}.Encode()
	buf := make([]byte, len(frame))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, frame[:])
		guard.OnWrite(buf)
	}
}

func BenchmarkFullSimStep(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Seed: 1, Script: StandardScript(1e9)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Full trial ---------------------------------------------------------------

func BenchmarkAttackTrial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Trial{
			Seed:     int64(81 + i%7),
			Scenario: experiment.ScenarioB,
			B: inject.ScenarioBParams{
				Value: 16000, Channel: 0, StartDelayTicks: 800, ActivationTicks: 64,
			},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// --- Extension experiments ----------------------------------------------------

func BenchmarkMitigationComparison(b *testing.B) {
	var holdCompletion float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunMitigationComparison(experiment.MitigationConfig{
			Attacks: 6, Value: 16000, BaseSeed: int64(91 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		holdCompletion = res.Arms[2].CompletionRate
	}
	b.ReportMetric(holdCompletion, "holdsafe-P(complete)")
}

func BenchmarkDetectionLatency(b *testing.B) {
	var meanMs float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLatency(experiment.LatencyConfig{
			Values: []int16{16000}, RunsPerValue: 6, BaseSeed: int64(95 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		meanMs = res.Rows[0].Latency.Mean
	}
	b.ReportMetric(meanMs, "alarm-latency-ms")
}
