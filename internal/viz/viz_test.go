package viz

import (
	"strings"
	"testing"

	"ravenguard/internal/mathx"
)

func TestWritePathSVG(t *testing.T) {
	var sb strings.Builder
	err := WritePathSVG(&sb, PathPlotConfig{Title: "tip <path>"},
		Series{Name: "reference", Points: []mathx.Vec3{{X: 0.01}, {X: 0.02, Y: 0.01}, {X: 0.03}}},
		Series{Name: "attacked", Points: []mathx.Vec3{{X: 0.01}, {X: 0.025, Y: 0.012}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"<svg", "polyline", "reference", "attacked", "&lt;path&gt;", "</svg>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("polylines = %d", strings.Count(out, "<polyline"))
	}
}

func TestWritePathSVGErrors(t *testing.T) {
	var sb strings.Builder
	if err := WritePathSVG(&sb, PathPlotConfig{}); err == nil {
		t.Fatal("no series accepted")
	}
	if err := WritePathSVG(&sb, PathPlotConfig{}, Series{Name: "empty"}); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestWriteTimelineSVG(t *testing.T) {
	var sb strings.Builder
	err := WriteTimelineSVG(&sb, PathPlotConfig{Title: "deviation"},
		map[string]float64{"1 mm injury threshold": 1.0},
		TimelineSeries{Name: "dev", T: []float64{0, 1, 2}, Values: []float64{0, 0.5, 2.0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"stroke-dasharray", "injury threshold", "polyline"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
}

func TestWriteTimelineSVGMismatch(t *testing.T) {
	var sb strings.Builder
	err := WriteTimelineSVG(&sb, PathPlotConfig{}, nil,
		TimelineSeries{Name: "bad", T: []float64{0, 1}, Values: []float64{0}})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("xmlEscape = %q", got)
	}
}
