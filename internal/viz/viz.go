// Package viz renders simulation traces for human inspection — the
// offline stand-in for the paper's graphic simulator ("animates the robot
// movements in real time ... in a 3D virtual environment"). It produces
// self-contained SVG plots of end-effector paths and deviation timelines,
// and CSV exports of experiment grids for external plotting.
package viz

import (
	"fmt"
	"io"
	"math"

	"ravenguard/internal/mathx"
)

// Series is one named polyline of samples.
type Series struct {
	Name   string
	Color  string // CSS color; empty picks from the default cycle
	Points []mathx.Vec3
}

// defaultColors is the series color cycle.
var defaultColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// PathPlotConfig controls the XY path rendering.
type PathPlotConfig struct {
	Title  string
	Width  int // pixels (default 640)
	Height int // pixels (default 480)
}

func (c *PathPlotConfig) applyDefaults() {
	if c.Width == 0 {
		c.Width = 640
	}
	if c.Height == 0 {
		c.Height = 480
	}
}

// WritePathSVG renders the XY projection of the series (millimeter axes)
// as a standalone SVG document.
func WritePathSVG(w io.Writer, cfg PathPlotConfig, series ...Series) error {
	cfg.applyDefaults()
	if len(series) == 0 {
		return fmt.Errorf("viz: no series")
	}

	// Bounds over all series, in mm, padded 10%.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			x, y := p.X*1e3, p.Y*1e3
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			total++
		}
	}
	if total == 0 {
		return fmt.Errorf("viz: all series empty")
	}
	padX := 0.1*(maxX-minX) + 1e-9
	padY := 0.1*(maxY-minY) + 1e-9
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	const margin = 48.0
	plotW := float64(cfg.Width) - 2*margin
	plotH := float64(cfg.Height) - 2*margin
	toPx := func(p mathx.Vec3) (float64, float64) {
		x := margin + (p.X*1e3-minX)/(maxX-minX)*plotW
		// SVG Y grows downward.
		y := margin + (1-(p.Y*1e3-minY)/(maxY-minY))*plotH
		return x, y
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		cfg.Width, cfg.Height, cfg.Width, cfg.Height)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		cfg.Width/2, xmlEscape(cfg.Title))
	// Axes frame and labels.
	fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		margin, margin, plotW, plotH)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">X (mm): %.1f .. %.1f</text>`+"\n",
		cfg.Width/2, cfg.Height-10, minX, maxX)
	fmt.Fprintf(w, `<text x="14" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">Y (mm): %.1f .. %.1f</text>`+"\n",
		cfg.Height/2, cfg.Height/2, minY, maxY)

	for i, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColors[i%len(defaultColors)]
		}
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.4" points="`, color)
		for _, p := range s.Points {
			x, y := toPx(p)
			fmt.Fprintf(w, "%.1f,%.1f ", x, y)
		}
		fmt.Fprintln(w, `"/>`)
		// Legend entry.
		ly := 40 + 16*i
		fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="12" height="3" fill="%s"/>`+"\n", margin+6, ly, color)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			margin+24, ly+5, xmlEscape(s.Name))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// TimelineSeries is one named scalar-vs-time trace.
type TimelineSeries struct {
	Name   string
	Color  string
	T      []float64 // seconds
	Values []float64
}

// WriteTimelineSVG renders scalar traces against time (e.g. deviation in
// millimeters) with optional horizontal marker lines.
func WriteTimelineSVG(w io.Writer, cfg PathPlotConfig, markers map[string]float64, series ...TimelineSeries) error {
	cfg.applyDefaults()
	if len(series) == 0 {
		return fmt.Errorf("viz: no series")
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		if len(s.T) != len(s.Values) {
			return fmt.Errorf("viz: series %q has %d times but %d values", s.Name, len(s.T), len(s.Values))
		}
		for i := range s.T {
			minT, maxT = math.Min(minT, s.T[i]), math.Max(maxT, s.T[i])
			minV, maxV = math.Min(minV, s.Values[i]), math.Max(maxV, s.Values[i])
			total++
		}
	}
	if total == 0 {
		return fmt.Errorf("viz: all series empty")
	}
	for _, v := range markers {
		minV, maxV = math.Min(minV, v), math.Max(maxV, v)
	}
	pad := 0.08*(maxV-minV) + 1e-9
	minV, maxV = minV-pad, maxV+pad
	if maxT <= minT {
		maxT = minT + 1e-9
	}

	const margin = 48.0
	plotW := float64(cfg.Width) - 2*margin
	plotH := float64(cfg.Height) - 2*margin
	px := func(t, v float64) (float64, float64) {
		return margin + (t-minT)/(maxT-minT)*plotW,
			margin + (1-(v-minV)/(maxV-minV))*plotH
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		cfg.Width, cfg.Height, cfg.Width, cfg.Height)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		cfg.Width/2, xmlEscape(cfg.Title))
	fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		margin, margin, plotW, plotH)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">t (s): %.2f .. %.2f</text>`+"\n",
		cfg.Width/2, cfg.Height-10, minT, maxT)
	fmt.Fprintf(w, `<text x="14" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">value: %.3g .. %.3g</text>`+"\n",
		cfg.Height/2, cfg.Height/2, minV, maxV)

	for name, v := range markers {
		_, y := px(minT, v)
		fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#aaa" stroke-dasharray="5,4"/>`+"\n",
			margin, y, margin+plotW, y)
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#777">%s</text>`+"\n",
			margin+plotW-120, y-4, xmlEscape(name))
	}

	for i, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColors[i%len(defaultColors)]
		}
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.4" points="`, color)
		for j := range s.T {
			x, y := px(s.T[j], s.Values[j])
			fmt.Fprintf(w, "%.1f,%.1f ", x, y)
		}
		fmt.Fprintln(w, `"/>`)
		ly := 40 + 16*i
		fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="12" height="3" fill="%s"/>`+"\n", margin+6, ly, color)
		fmt.Fprintf(w, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			margin+24, ly+5, xmlEscape(s.Name))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func xmlEscape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		case '"':
			out = append(out, []rune("&quot;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
