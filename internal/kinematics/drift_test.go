package kinematics

import (
	"errors"
	"testing"

	"ravenguard/internal/mathx"
)

func TestForwardWithZeroDriftMatchesForward(t *testing.T) {
	jp := DefaultLimits().Center()
	if got, want := ForwardWithTrigDrift(jp, 0), Forward(jp); got != want {
		t.Fatalf("zero drift altered FK: %+v vs %+v", got, want)
	}
}

func TestForwardDriftSkewsPosition(t *testing.T) {
	jp := DefaultLimits().Center()
	clean := Forward(jp)
	skewed := ForwardWithTrigDrift(jp, 0.1)
	if clean.DistanceTo(skewed) < 1e-4 {
		t.Fatalf("0.1 drift barely moved FK output: %v m", clean.DistanceTo(skewed))
	}
}

func TestInverseDriftZeroMatchesInverse(t *testing.T) {
	pos := Forward(DefaultLimits().Center())
	a, errA := Inverse(pos)
	b, errB := InverseWithTrigDrift(pos, 0)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a != b {
		t.Fatalf("zero drift altered IK: %v vs %v", a, b)
	}
}

func TestInverseLargeNegativeDriftFails(t *testing.T) {
	// sin(52deg) - 0.9 < 0 collapses the arccosine domain for poses away
	// from the degenerate axis: this is the IK-fail impact of the Table I
	// math attack.
	fails := 0
	lim := DefaultLimits()
	for s := 0.0; s <= 1.0; s += 0.1 {
		jp := JointPos{
			mathx.Lerp(lim.Min[Shoulder], lim.Max[Shoulder], s),
			mathx.Lerp(lim.Min[Elbow], lim.Max[Elbow], s),
			0.05,
		}
		pos := ForwardWithTrigDrift(jp, -0.9)
		if _, err := InverseWithTrigDrift(pos, -0.9); err != nil {
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("-0.9 trig drift never failed IK across the workspace")
	}
}
