// Package kinematics implements the positioning kinematics of the RAVEN II
// surgical manipulator: a spherical mechanism whose first two revolute joint
// axes intersect at a fixed remote center of motion, followed by a prismatic
// tool-insertion joint along the instrument axis.
//
// The paper's detection framework models only these first three degrees of
// freedom — the positioning joints that dominate end-effector position — so
// this package provides forward kinematics (joint space -> Cartesian
// end-effector position relative to the remote center), a closed-form
// inverse, workspace limits, and the cable-transmission coupling between
// motor shaft positions and joint positions.
package kinematics

import (
	"fmt"
	"math"

	"ravenguard/internal/mathx"
)

// NumJoints is the number of modeled positioning degrees of freedom:
// shoulder (revolute), elbow (revolute), tool insertion (prismatic).
const NumJoints = 3

// Joint indices into [NumJoints] arrays throughout the codebase.
const (
	Shoulder = 0 // revolute, radians
	Elbow    = 1 // revolute, radians
	Insert   = 2 // prismatic, meters
)

// Link twist angles of the RAVEN II spherical mechanism. The first link
// subtends 75 degrees and the second 52 degrees (Hannaford et al., 2013).
const (
	Alpha12 = 75 * math.Pi / 180
	Alpha23 = 52 * math.Pi / 180
)

// JointPos holds one value per positioning joint: radians for the two
// revolute joints, meters for the insertion joint.
type JointPos [NumJoints]float64

// MotorPos holds motor shaft angles in radians, one per positioning joint's
// drive motor.
type MotorPos [NumJoints]float64

// Sub returns element-wise j - other.
func (j JointPos) Sub(other JointPos) JointPos {
	for i := range j {
		j[i] -= other[i]
	}
	return j
}

// Sub returns element-wise m - other.
func (m MotorPos) Sub(other MotorPos) MotorPos {
	for i := range m {
		m[i] -= other[i]
	}
	return m
}

// Limits describes the admissible workspace in joint coordinates.
type Limits struct {
	Min JointPos
	Max JointPos
}

// DefaultLimits returns the joint workspace used throughout the simulation,
// matching the RAVEN II arm: shoulder in [10, 90] deg, elbow in [25, 120]
// deg, insertion in [5, 100] mm past the cannula.
func DefaultLimits() Limits {
	return Limits{
		Min: JointPos{mathx.Rad(10), mathx.Rad(25), 0.005},
		Max: JointPos{mathx.Rad(90), mathx.Rad(120), 0.100},
	}
}

// Contains reports whether jp lies inside the limits (inclusive).
func (l Limits) Contains(jp JointPos) bool {
	for i := 0; i < NumJoints; i++ {
		if jp[i] < l.Min[i] || jp[i] > l.Max[i] {
			return false
		}
	}
	return true
}

// Clamp returns jp with every coordinate clamped into the limits.
func (l Limits) Clamp(jp JointPos) JointPos {
	for i := 0; i < NumJoints; i++ {
		jp[i] = mathx.Clamp(jp[i], l.Min[i], l.Max[i])
	}
	return jp
}

// Center returns the midpoint of the workspace, a convenient neutral pose.
func (l Limits) Center() JointPos {
	var c JointPos
	for i := 0; i < NumJoints; i++ {
		c[i] = (l.Min[i] + l.Max[i]) / 2
	}
	return c
}

// toolAxis returns the unit vector of the instrument axis for the given
// shoulder and elbow angles:
//
//	u = Rz(theta1) * Rx(Alpha12) * Rz(theta2) * Rx(Alpha23) * zhat
func toolAxis(theta1, theta2 float64) mathx.Vec3 {
	r := mathx.RotZ(theta1).
		Mul(mathx.RotX(Alpha12)).
		Mul(mathx.RotZ(theta2)).
		Mul(mathx.RotX(Alpha23))
	return r.Apply(mathx.Vec3{Z: 1})
}

// Forward computes the end-effector position relative to the remote center
// of motion. The insertion depth scales the tool axis direction.
func Forward(jp JointPos) mathx.Vec3 {
	return toolAxis(jp[Shoulder], jp[Elbow]).Scale(jp[Insert])
}

// ForwardWithTrigDrift is Forward computed with an additive error on every
// sine/cosine evaluation — the forward half of the Table I math-library
// attack. The corrupted rotation matrices are no longer orthonormal, so
// the computed position is skewed and downstream inverse kinematics can be
// driven out of its valid domain.
func ForwardWithTrigDrift(jp JointPos, drift float64) mathx.Vec3 {
	if drift == 0 {
		return Forward(jp)
	}
	rz := func(a float64) mathx.Mat3 {
		c, s := math.Cos(a)+drift, math.Sin(a)+drift
		return mathx.Mat3{M: [3][3]float64{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}}
	}
	rx := func(a float64) mathx.Mat3 {
		c, s := math.Cos(a)+drift, math.Sin(a)+drift
		return mathx.Mat3{M: [3][3]float64{{1, 0, 0}, {0, c, -s}, {0, s, c}}}
	}
	u := rz(jp[Shoulder]).
		Mul(rx(Alpha12)).
		Mul(rz(jp[Elbow])).
		Mul(rx(Alpha23)).
		Apply(mathx.Vec3{Z: 1})
	return u.Scale(jp[Insert])
}

// ErrUnreachable is returned (wrapped) by Inverse when the requested
// position cannot be realised by the spherical mechanism.
var ErrUnreachable = fmt.Errorf("kinematics: position unreachable")

// The two failure modes are pre-wrapped: under the Table I sin/cos drift
// attack the solver fails on a large fraction of the campaign's ticks, and
// allocating a fresh formatted error each time dominated whole-campaign
// allocation profiles. Callers only branch on err / errors.Is(ErrUnreachable).
var (
	errZeroDepth   = fmt.Errorf("%w: zero insertion depth", ErrUnreachable)
	errOutsideCone = fmt.Errorf("%w: tool axis outside mechanism cone", ErrUnreachable)
)

// Inverse computes joint coordinates that place the end-effector at pos
// (relative to the remote center). It returns the elbow-down branch, which
// is the configuration the RAVEN arm operates in. Positions with zero
// insertion depth or tool-axis directions outside the mechanism's cone
// return ErrUnreachable.
func Inverse(pos mathx.Vec3) (JointPos, error) {
	return InverseWithTrigDrift(pos, 0)
}

// InverseWithTrigDrift is Inverse with an additive error applied to every
// trigonometric evaluation of the mechanism constants. It models the
// Table I math-library attack ("add drift to sin/cos output"): small drift
// skews the solution so the arm wanders; large drift pushes the arccosine
// argument out of [-1, 1] and the solver fails — the paper's observed
// "Unwanted state (IK-fail)".
func InverseWithTrigDrift(pos mathx.Vec3, drift float64) (JointPos, error) {
	d := pos.Norm()
	if d < 1e-9 {
		return JointPos{}, errZeroDepth
	}
	u := pos.Scale(1 / d)

	// uz = cos(a1)cos(a2) - sin(a1)sin(a2)cos(theta2)
	s1, c1 := math.Sin(Alpha12)+drift, math.Cos(Alpha12)+drift
	s2, c2 := math.Sin(Alpha23)+drift, math.Cos(Alpha23)+drift
	cosT2 := (c1*c2 - u.Z) / (s1 * s2)
	if cosT2 < -1-1e-9 || cosT2 > 1+1e-9 {
		return JointPos{}, errOutsideCone
	}
	cosT2 = mathx.Clamp(cosT2, -1, 1)
	theta2 := math.Acos(cosT2) // elbow-down branch: theta2 in [0, pi]

	// With theta2 known, w = Rx(a1)*Rz(theta2)*Rx(a2)*zhat and
	// u = Rz(theta1)*w, so theta1 follows from the XY-plane angles.
	w := mathx.RotX(Alpha12).
		Mul(mathx.RotZ(theta2)).
		Mul(mathx.RotX(Alpha23)).
		Apply(mathx.Vec3{Z: 1})
	wxy := math.Hypot(w.X, w.Y)
	if wxy < 1e-12 {
		// Tool axis aligned with the base Z axis: theta1 is unconstrained;
		// pick zero.
		return JointPos{0, theta2, d}, nil
	}
	theta1 := mathx.WrapAngle(math.Atan2(u.Y, u.X) - math.Atan2(w.Y, w.X))
	return JointPos{theta1, theta2, d}, nil
}

// Transmission describes the cable-drive coupling between the motor shafts
// and the joints. For revolute joints the ratio is dimensionless
// (motor radians per joint radian); for the prismatic insertion joint it is
// radians per meter of travel (capstan coupling).
type Transmission struct {
	// Ratio[i] converts joint-space to motor-space: mpos = Ratio * jpos.
	Ratio [NumJoints]float64
}

// DefaultTransmission returns the RAVEN II cable reductions: about 12.1:1 on
// the two rotational axes and a 9.5 mm effective capstan radius on the
// insertion axis (1 rad of motor shaft = 9.5 mm of travel... i.e.
// 105.26 rad/m).
func DefaultTransmission() Transmission {
	return Transmission{Ratio: [NumJoints]float64{12.1, 12.1, 1 / 0.0095}}
}

// ToMotor converts joint positions to motor shaft positions.
func (t Transmission) ToMotor(jp JointPos) MotorPos {
	var mp MotorPos
	for i := 0; i < NumJoints; i++ {
		mp[i] = jp[i] * t.Ratio[i]
	}
	return mp
}

// ToJoint converts motor shaft positions to joint positions.
func (t Transmission) ToJoint(mp MotorPos) JointPos {
	var jp JointPos
	for i := 0; i < NumJoints; i++ {
		jp[i] = mp[i] / t.Ratio[i]
	}
	return jp
}
