package kinematics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ravenguard/internal/mathx"
)

func TestForwardAtWorkspaceCenter(t *testing.T) {
	lim := DefaultLimits()
	pos := Forward(lim.Center())
	if !pos.IsFinite() {
		t.Fatalf("Forward produced non-finite position %+v", pos)
	}
	d := pos.Norm()
	want := lim.Center()[Insert]
	if !mathx.ApproxEqual(d, want, 1e-12) {
		t.Fatalf("end-effector distance from remote center = %v, want insertion depth %v", d, want)
	}
}

func TestForwardDistanceEqualsInsertion(t *testing.T) {
	// |Forward(jp)| must equal the insertion depth for any joint angles:
	// the spherical mechanism only rotates the tool axis.
	rng := rand.New(rand.NewSource(7))
	lim := DefaultLimits()
	for i := 0; i < 200; i++ {
		jp := randomPose(rng, lim)
		if got := Forward(jp).Norm(); !mathx.ApproxEqual(got, jp[Insert], 1e-12) {
			t.Fatalf("pose %v: |pos| = %v, want %v", jp, got, jp[Insert])
		}
	}
}

func TestInverseRecoversForward(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lim := DefaultLimits()
	for i := 0; i < 500; i++ {
		jp := randomPose(rng, lim)
		pos := Forward(jp)
		got, err := Inverse(pos)
		if err != nil {
			t.Fatalf("Inverse(%+v) for pose %v: %v", pos, jp, err)
		}
		for k := 0; k < NumJoints; k++ {
			if !mathx.ApproxEqual(got[k], jp[k], 1e-9) {
				t.Fatalf("joint %d: IK gave %v, want %v (pose %v)", k, got[k], jp[k], jp)
			}
		}
	}
}

func TestInverseForwardRoundTripQuick(t *testing.T) {
	lim := DefaultLimits()
	roundTrip := func(a, b, c float64) bool {
		jp := JointPos{
			lim.Min[Shoulder] + mod1(a)*(lim.Max[Shoulder]-lim.Min[Shoulder]),
			lim.Min[Elbow] + mod1(b)*(lim.Max[Elbow]-lim.Min[Elbow]),
			lim.Min[Insert] + mod1(c)*(lim.Max[Insert]-lim.Min[Insert]),
		}
		got, err := Inverse(Forward(jp))
		if err != nil {
			return false
		}
		pos, wantPos := Forward(got), Forward(jp)
		return pos.DistanceTo(wantPos) < 1e-9
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverseUnreachable(t *testing.T) {
	tests := []struct {
		name string
		pos  mathx.Vec3
	}{
		{"origin", mathx.Vec3{}},
		{"straight up outside cone", mathx.Vec3{Z: 0.05}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Inverse(tt.pos); !errors.Is(err, ErrUnreachable) {
				t.Fatalf("Inverse(%+v) error = %v, want ErrUnreachable", tt.pos, err)
			}
		})
	}
}

func TestLimitsClampAndContains(t *testing.T) {
	lim := DefaultLimits()
	out := JointPos{-1, 10, 0.5}
	clamped := lim.Clamp(out)
	if !lim.Contains(clamped) {
		t.Fatalf("clamped pose %v not inside limits", clamped)
	}
	if lim.Contains(out) {
		t.Fatalf("out-of-range pose %v reported inside limits", out)
	}
	if !lim.Contains(lim.Min) || !lim.Contains(lim.Max) {
		t.Fatal("limits must be inclusive at the boundary")
	}
}

func TestTransmissionRoundTrip(t *testing.T) {
	tr := DefaultTransmission()
	jp := JointPos{0.7, 1.1, 0.042}
	got := tr.ToJoint(tr.ToMotor(jp))
	for i := 0; i < NumJoints; i++ {
		if !mathx.ApproxEqual(got[i], jp[i], 1e-12) {
			t.Fatalf("joint %d round trip: got %v want %v", i, got[i], jp[i])
		}
	}
}

func TestTransmissionInsertionScale(t *testing.T) {
	tr := DefaultTransmission()
	// 9.5 mm of insertion travel should be ~1 rad of motor shaft.
	mp := tr.ToMotor(JointPos{0, 0, 0.0095})
	if !mathx.ApproxEqual(mp[Insert], 1.0, 1e-9) {
		t.Fatalf("9.5 mm insertion -> %v rad motor, want 1.0", mp[Insert])
	}
}

func TestSmallJointMotionSmallCartesianMotion(t *testing.T) {
	// A 1 mrad joint perturbation at 50 mm insertion moves the tip well
	// under 1 mm: the safety threshold semantics rely on this scale.
	lim := DefaultLimits()
	base := lim.Center()
	perturbed := base
	perturbed[Shoulder] += 1e-3
	d := Forward(base).DistanceTo(Forward(perturbed))
	if d > 1e-4 {
		t.Fatalf("1 mrad shoulder motion moved tip %v m, expected < 0.1 mm", d)
	}
	if d == 0 {
		t.Fatal("tip did not move at all; FK insensitive to shoulder")
	}
}

func randomPose(rng *rand.Rand, lim Limits) JointPos {
	var jp JointPos
	for i := 0; i < NumJoints; i++ {
		jp[i] = lim.Min[i] + rng.Float64()*(lim.Max[i]-lim.Min[i])
	}
	return jp
}

func mod1(x float64) float64 {
	x = math.Abs(math.Mod(x, 1))
	if math.IsNaN(x) {
		return 0.5
	}
	return x
}
