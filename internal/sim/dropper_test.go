package sim

import (
	"strings"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/interpose"
)

// dropAfter passes frames until a tick count, then drops everything — a
// denial-of-service wrapper starving the USB boards.
type dropAfter struct {
	after int
	seen  int
}

func (d *dropAfter) Name() string { return "frame-dropper" }

func (d *dropAfter) OnWrite([]byte) interpose.Verdict {
	d.seen++
	if d.seen > d.after {
		return interpose.Drop
	}
	return interpose.Pass
}

func TestFrameDropperStarvesWatchdogAndPLCLatches(t *testing.T) {
	// If the malicious wrapper silently discards the control software's
	// USB writes, the watchdog square wave stops reaching the PLC — the
	// PLC's silent-bus supervision must latch E-STOP.
	rig, err := New(Config{
		Seed:    501,
		Script:  console.StandardScript(5),
		Preload: []interpose.Wrapper{&dropAfter{after: 3500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if !rig.PLC().EStopped() {
		t.Fatal("PLC did not latch although the bus went silent")
	}
	if !strings.Contains(rig.PLC().EStopCause(), "watchdog") {
		t.Fatalf("cause = %q", rig.PLC().EStopCause())
	}
	if !rig.Plant().BrakesEngaged() {
		t.Fatal("brakes not engaged after the silent-bus latch")
	}
}

func TestCableBreakVisibleInStepInfo(t *testing.T) {
	// A violent unbounded attack can snap a drive cable; the step info
	// must report it so experiments can classify the damage.
	cfg := Config{
		Seed:   502,
		Script: console.StandardScript(8),
	}
	cfg.Plant.BreakTension = [3]float64{1.2, 99, 999} // fragile shoulder cable
	cfg.Control.SafetyChecksOff = true                // nothing halts the attack
	inj := &alternatingSlam{}
	cfg.Preload = []interpose.Wrapper{inj}
	rig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	broke := false
	rig.Observe(func(si StepInfo) {
		if si.Broken {
			broke = true
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Fatal("cable never snapped under unbounded alternating full-scale torque")
	}
}

// alternatingSlam drives channel 0 with alternating full-scale DAC values
// during Pedal Down.
type alternatingSlam struct {
	ticks int
}

func (a *alternatingSlam) Name() string { return "alternating-slam" }

func (a *alternatingSlam) OnWrite(buf []byte) interpose.Verdict {
	if len(buf) != 18 || buf[0]&0x0F != 0x0F {
		return interpose.Pass
	}
	a.ticks++
	v := int16(32767)
	if (a.ticks/25)%2 == 0 {
		v = -32768
	}
	buf[2] = byte(uint16(v))
	buf[3] = byte(uint16(v) >> 8)
	return interpose.Pass
}
