package sim

import (
	"testing"

	"ravenguard/internal/analysis"
	"ravenguard/internal/console"
	"ravenguard/internal/malware"
)

func TestReadSideEavesdroppingIdentifiesActiveChannels(t *testing.T) {
	// The paper notes the same offline analysis applies to the read
	// system calls: eavesdropping the encoder feedback reveals which
	// channels carry live motor data. The positioning joints (0..2) and
	// instrument joints (3..5) move; channels 6..7 are unpopulated.
	exfil := malware.NewMemExfil()
	logger := malware.NewReadLogger(exfil)
	rig, err := New(Config{
		Seed:           531,
		Script:         console.StandardScript(5),
		OnFeedbackRead: logger.FeedbackHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}

	activity, err := analysis.ProfileFeedback(exfil.Frames())
	if err != nil {
		t.Fatal(err)
	}
	if len(activity) != 8 {
		t.Fatalf("profiled %d channels", len(activity))
	}
	for ch := 0; ch <= 5; ch++ {
		if !activity[ch].Active() {
			t.Errorf("channel %d shows no activity; it drives a live joint", ch)
		}
	}
	for ch := 6; ch <= 7; ch++ {
		if activity[ch].Active() {
			t.Errorf("channel %d shows activity but is unpopulated", ch)
		}
	}
	// The positioning joints travel much further than the wrist servos'
	// encoder scale suggests nothing; just confirm ordering sanity: travel
	// on channel 0 dwarfs the unpopulated channels.
	if activity[0].Travel == 0 || activity[0].Max <= activity[0].Min {
		t.Fatalf("channel 0 activity implausible: %+v", activity[0])
	}
}

func TestProfileFeedbackRejectsGarbage(t *testing.T) {
	if _, err := analysis.ProfileFeedback([][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("capture with no decodable frames accepted")
	}
}
