package sim

import (
	"fmt"

	"ravenguard/internal/control"
	"ravenguard/internal/robot"
	"ravenguard/internal/usb"
)

// RunLockstep advances all rigs together, one control period at a time,
// until every rig's session has ended, integrating their plants through a
// shared structure-of-arrays batch stepper (see robot.Batch). Each rig's
// trajectory is bit-identical to running it alone with Rig.Run — the
// lockstep only changes how the physics arithmetic is laid out across
// rigs, not what any rig computes.
//
// This is the campaign fan-out engine: all variants forked from one shared
// prefix run together, one SoA lane per live plant. A rig that finishes
// early (script end) simply stops occupying a lane.
func RunLockstep(rigs []*Rig) error {
	if len(rigs) == 0 {
		return nil
	}
	batch, err := robot.NewBatch(len(rigs))
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	live := make([]*Rig, 0, len(rigs))
	plants := make([]*robot.Plant, 0, len(rigs))
	dacs := make([][usb.NumChannels]int16, 0, len(rigs))
	for {
		live = live[:0]
		for _, r := range rigs {
			if !r.Done() {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			return nil
		}
		plants, dacs = plants[:0], dacs[:0]
		for _, r := range live {
			if err := r.StepControl(); err != nil {
				return err
			}
			plants = append(plants, r.plant)
			dacs = append(dacs, r.board.DACs())
		}
		batch.Step(plants, dacs, control.Period)
		for _, r := range live {
			r.FinishStep()
		}
	}
}
