package sim_test

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/sim"
	"ravenguard/internal/usb"
)

// corruptWindow installs a board read fault that truncates the feedback
// frame (making it undecodable) for a window of read cycles.
func corruptWindow(from, until int) func(b *usb.Board) {
	tick := 0
	return func(b *usb.Board) {
		b.SetReadFault(func(frame []byte) []byte {
			tick++
			if tick > from && tick <= until {
				return frame[:5]
			}
			return frame
		})
	}
}

func TestCorruptedFeedbackMidRunDoesNotAbort(t *testing.T) {
	// Regression: the rig used to abort the whole session on the first
	// undecodable feedback frame. A 50-cycle corruption burst mid-teleop
	// must instead degrade to the last good frame, be counted, and be
	// surfaced per step.
	guard, err := core.NewGuard(core.Config{Thresholds: core.DefaultThresholds()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Seed:   503,
		Script: console.StandardScript(5),
		Guards: []sim.Hook{guard},
	}
	cfg.OnBoard = corruptWindow(3000, 3050)
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	rig.Observe(func(si sim.StepInfo) {
		if si.FeedbackDropped {
			dropped++
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatalf("run aborted on corrupted feedback: %v", err)
	}
	fc := rig.FaultCounters()
	if fc.FeedbackDrops != 50 {
		t.Fatalf("FeedbackDrops = %d, want 50", fc.FeedbackDrops)
	}
	if dropped != 50 {
		t.Fatalf("StepInfo.FeedbackDropped reported %d cycles, want 50", dropped)
	}
	if guard.FeedbackGaps() != 50 {
		t.Fatalf("guard saw %d feedback gaps, want 50", guard.FeedbackGaps())
	}
	if guard.Alarms() != 0 {
		t.Fatalf("guard false-alarmed %d times across a benign feedback gap", guard.Alarms())
	}
	if rig.PLC().EStopped() {
		t.Fatalf("PLC latched E-STOP (%q) on a recoverable feedback gap", rig.PLC().EStopCause())
	}
}

func TestFeedbackDropReusesLastGoodFrame(t *testing.T) {
	// During the corruption window the controller must see the frozen
	// last-good encoder counts, not zeros.
	cfg := sim.Config{
		Seed:   504,
		Script: console.StandardScript(3),
	}
	cfg.OnBoard = corruptWindow(3000, 3020)
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastGood usb.Feedback
	step := 0
	rig.Observe(func(si sim.StepInfo) {
		step++
		if !si.FeedbackDropped {
			lastGood = si.Feedback
			return
		}
		if si.Feedback != lastGood {
			t.Fatalf("step %d: dropped-cycle feedback %v differs from last good %v", step, si.Feedback, lastGood)
		}
		if si.Feedback.Encoder == (usb.Feedback{}).Encoder {
			t.Fatalf("step %d: dropped-cycle feedback degraded to zero counts", step)
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
}
