package sim_test

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/fault"
	"ravenguard/internal/inject"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
)

// trace records every StepInfo a rig produces. StepInfo is a comparable
// value type, so bit-identity of two runs reduces to == on their traces.
func trace(rig *sim.Rig) *[]sim.StepInfo {
	tr := &[]sim.StepInfo{}
	rig.Observe(func(si sim.StepInfo) { *tr = append(*tr, si) })
	return tr
}

// guardedConfig builds a fresh config with its own guard instance (chain
// wrappers hold per-run state and must never be shared between rigs).
func guardedConfig(t *testing.T, seed int64) sim.Config {
	t.Helper()
	guard, err := core.NewGuard(core.Config{Thresholds: core.DefaultThresholds()})
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Seed:   seed,
		Script: console.StandardScript(4),
		Traj:   trajectory.Standard()[0],
		Guards: []sim.Hook{guard},
	}
}

func mustRig(t *testing.T, cfg sim.Config) *sim.Rig {
	t.Helper()
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func mustRun(t *testing.T, rig *sim.Rig, maxSteps int) int {
	t.Helper()
	n, err := rig.Run(maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// compareTail asserts the forked run's trace equals the straight run's
// trace from the fork step onward, element for element.
func compareTail(t *testing.T, straight []sim.StepInfo, forkStep int, forked []sim.StepInfo) {
	t.Helper()
	tail := straight[forkStep:]
	if len(forked) != len(tail) {
		t.Fatalf("forked run produced %d steps after step %d, straight run %d",
			len(forked), forkStep, len(tail))
	}
	for i := range tail {
		if forked[i] != tail[i] {
			t.Fatalf("fork at step %d diverged at step %d (t=%.3f s)",
				forkStep, forkStep+i, tail[i].T)
		}
	}
}

func TestForkMatchesStraightRunAtAnyPoint(t *testing.T) {
	// Reference: one uninterrupted guarded session.
	straightRig := mustRig(t, guardedConfig(t, 71))
	straight := trace(straightRig)
	total := mustRun(t, straightRig, 0)

	// Fork points across every session phase: first step, homing,
	// early teleoperation, late teleoperation.
	for _, forkStep := range []int{1, total / 5, total / 2, 4 * total / 5} {
		prefix := mustRig(t, guardedConfig(t, 71))
		mustRun(t, prefix, forkStep)
		snap, err := prefix.Snapshot()
		if err != nil {
			t.Fatalf("fork at %d: snapshot: %v", forkStep, err)
		}

		fork := mustRig(t, guardedConfig(t, 71))
		if err := fork.Restore(snap); err != nil {
			t.Fatalf("fork at %d: restore: %v", forkStep, err)
		}
		forked := trace(fork)
		mustRun(t, fork, 0)
		compareTail(t, *straight, forkStep, *forked)
	}
}

func TestSameRigRewindsBitIdentically(t *testing.T) {
	rig := mustRig(t, guardedConfig(t, 72))
	tr := trace(rig)
	forkStep := mustRun(t, rig, 2600)
	snap, err := rig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, rig, 0)
	first := append([]sim.StepInfo(nil), (*tr)[forkStep:]...)

	// Rewind the same rig and replay.
	if err := rig.Restore(snap); err != nil {
		t.Fatal(err)
	}
	*tr = (*tr)[:0]
	mustRun(t, rig, 0)
	compareTail(t, append(make([]sim.StepInfo, forkStep), first...), forkStep, *tr)
}

// faultedConfig applies a fault plan with a probabilistic encoder-dropout
// window (mid-teleop) and a packet-loss burst after it, on top of a guard.
func faultedConfig(t *testing.T, seed int64) (sim.Config, *fault.Injector) {
	t.Helper()
	cfg := guardedConfig(t, seed)
	plan := fault.Plan{Seed: 7, Events: []fault.Event{
		{At: 3.2, Duration: 0.4, Kind: fault.KindEncoderDropout, Params: fault.Params{Rate: 0.5}},
		{At: 4.1, Duration: 0.3, Kind: fault.KindPacketLoss},
	}}
	inj, err := plan.Apply(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, inj
}

func TestForkMidFaultGapMatchesStraightRun(t *testing.T) {
	// Straight reference run under the fault plan.
	cfgA, injA := faultedConfig(t, 73)
	straightRig := mustRig(t, cfgA)
	straight := trace(straightRig)
	mustRun(t, straightRig, 0)

	// Fork inside the dropout window, right after the fifth dropped
	// feedback frame — the rig is mid-gap: the controller is holding a
	// stale frame, the guard has pending resync state, and the fault
	// injector's rng is mid-stream.
	forkStep := -1
	drops := 0
	for i, si := range *straight {
		if si.FeedbackDropped {
			if drops++; drops == 5 {
				forkStep = i + 1
				break
			}
		}
	}
	if forkStep < 0 {
		t.Fatal("dropout window never dropped 5 frames")
	}

	cfgB, _ := faultedConfig(t, 73)
	prefix := mustRig(t, cfgB)
	mustRun(t, prefix, forkStep)
	if got := prefix.FaultCounters().FeedbackDrops; got != 5 {
		t.Fatalf("prefix rig FeedbackDrops = %d at fork, want 5", got)
	}
	snap, err := prefix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cfgC, injC := faultedConfig(t, 73)
	fork := mustRig(t, cfgC)
	if err := fork.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// The drop counters and the guard's resync bookkeeping must carry
	// across the restore.
	if got := fork.FaultCounters().FeedbackDrops; got != 5 {
		t.Fatalf("restored rig FeedbackDrops = %d, want 5", got)
	}
	guardOf := func(cfg sim.Config) *core.Guard { return cfg.Guards[0].(*core.Guard) }
	if got := guardOf(cfgC).FeedbackGaps(); got != guardOf(cfgB).FeedbackGaps() {
		t.Fatalf("restored guard FeedbackGaps = %d, prefix guard %d",
			got, guardOf(cfgB).FeedbackGaps())
	}
	forked := trace(fork)
	mustRun(t, fork, 0)
	compareTail(t, *straight, forkStep, *forked)

	// Outcome counters converge too: drops, injected fault counts, guard
	// resync totals.
	if a, c := straightRig.FaultCounters(), fork.FaultCounters(); a != c {
		t.Fatalf("final fault counters diverged: straight %+v fork %+v", a, c)
	}
	for _, k := range []fault.Kind{fault.KindEncoderDropout, fault.KindPacketLoss} {
		if a, c := injA.Applied(k), injC.Applied(k); a != c {
			t.Fatalf("fault kind %v: straight injected %d, fork %d", k, a, c)
		}
	}
	if a, c := guardOf(cfgA).FeedbackGaps(), guardOf(cfgC).FeedbackGaps(); a != c {
		t.Fatalf("guard FeedbackGaps: straight %d, fork %d", a, c)
	}
}

func TestDormantAttackSnapshotRestoresIntoCleanRig(t *testing.T) {
	// A snapshot taken from an attacked rig during the attack's dormant
	// prefix must restore into a rig WITHOUT the attack (the snapshot is a
	// superset: extra component states are ignored), and the continuation
	// must match a clean straight run — the foundation of the campaign
	// runners' shared-prefix forking.
	cleanRig := mustRig(t, guardedConfig(t, 74))
	clean := trace(cleanRig)
	total := mustRun(t, cleanRig, 0)
	forkStep := total / 2

	attacked := guardedConfig(t, 74)
	att, err := inject.NewScenarioB(inject.ScenarioBParams{
		Value: 9000, Channel: 0, StartDelayTicks: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	attacked.Preload = append(attacked.Preload, att)
	prefix := mustRig(t, attacked)
	mustRun(t, prefix, forkStep)
	snap, err := prefix.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Named["malicious-injector#0"]; !ok {
		t.Fatal("snapshot did not capture the preloaded injector")
	}

	fork := mustRig(t, guardedConfig(t, 74))
	if err := fork.Restore(snap); err != nil {
		t.Fatalf("subset restore: %v", err)
	}
	forked := trace(fork)
	mustRun(t, fork, 0)
	compareTail(t, *clean, forkStep, *forked)
}

func TestRestoreMissingComponentStateFails(t *testing.T) {
	// The reverse direction must fail loudly: a clean snapshot cannot
	// populate a rig that has MORE stateful components than were captured.
	plain := mustRig(t, sim.Config{Seed: 75, Script: console.StandardScript(3)})
	mustRun(t, plain, 500)
	snap, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	guarded := mustRig(t, guardedConfig(t, 75))
	if err := guarded.Restore(snap); err == nil {
		t.Fatal("restore into a rig with extra components succeeded; want error")
	}
}
