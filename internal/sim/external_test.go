package sim

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/itp"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
	"time"
)

func TestExternallyDrivenRigOverUDP(t *testing.T) {
	// Robot side: a rig fed by a real UDP receiver.
	recv, err := itp.NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	rig, err := New(Config{
		Seed:             71,
		ExternalInput:    recv,
		ExternalDuration: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Operator side: a console streaming over a real UDP socket.
	sender, err := itp.NewUDPSender(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	cons, err := console.New(console.StandardScript(4), trajectory.Standard()[0], sender)
	if err != nil {
		t.Fatal(err)
	}

	// Drive both sides in lock-step (no wall-clock pacing in tests). The
	// datagram path is asynchronous, so the rig consumes packets as they
	// arrive — exactly the loss-tolerant behaviour the protocol assumes.
	// One-shot flags (the start button) can race the reader goroutine at
	// this unthrottled rate, so the operator re-presses start if the robot
	// has not left E-STOP — as a human would.
	seen := map[statemachine.State]bool{}
	for !rig.Done() {
		if !cons.Done() {
			if _, err := cons.Tick(1e-3); err != nil {
				t.Fatal(err)
			}
		}
		// Pace the loop: an unthrottled sender floods the socket buffer
		// faster than the reader goroutine drains it, dropping most
		// datagrams (including one-shot flags). 20 us per cycle is still
		// 50x faster than the real 1 kHz pacing of cmd/teleopd.
		time.Sleep(20 * time.Microsecond)
		si, err := rig.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen[si.Ctrl.State] = true
		if si.T > 1 && !seen[statemachine.Init] {
			if err := sender.Send(itp.Packet{Seq: 1 << 20, Start: true}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond) // let the reader goroutine deliver
		}
		if cons.Done() && si.T > cons.Time()+1 {
			break // operator left; a second of trailing robot time is enough
		}
	}

	if !seen[statemachine.Init] {
		t.Fatal("robot never homed: start button lost over UDP")
	}
	if !seen[statemachine.PedalDown] {
		t.Fatal("robot never reached Pedal Down over UDP")
	}
	if rig.PLC().EStopped() {
		t.Fatalf("PLC latched during networked session: %s", rig.PLC().EStopCause())
	}
}

func TestExternalRigDoneByDuration(t *testing.T) {
	recv := itp.NewMemTransport()
	rig, err := New(Config{Seed: 72, ExternalInput: recv, ExternalDuration: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := rig.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 50 {
		t.Fatalf("steps = %d, want 50 (0.05 s at 1 kHz)", steps)
	}
}
