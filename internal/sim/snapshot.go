package sim

import (
	"fmt"

	"ravenguard/internal/console"
	"ravenguard/internal/control"
	"ravenguard/internal/interpose"
	"ravenguard/internal/itp"
	"ravenguard/internal/plc"
	"ravenguard/internal/robot"
	"ravenguard/internal/usb"
)

// Snapshotter is implemented by stateful pipeline components the rig cannot
// see through its own fields: chain wrappers (malware, fault injectors, the
// guard) and closure-installed hooks (transport faulters, input injectors).
// A component's snapshot must cover everything that evolves during
// simulation — counters, latches, queues, rng positions — so that restoring
// it and re-running produces the bit-identical continuation. Configuration
// (schedules, gains, seeds-as-identity) stays with the component.
type Snapshotter interface {
	// Name identifies the component; components of the same name are
	// matched between capture and restore by occurrence order.
	Name() string
	// CaptureSnap returns a self-contained copy of the mutable state.
	CaptureSnap() any
	// RestoreSnap rewinds the component to a previously captured state.
	RestoreSnap(st any) error
}

// Snapshot is the complete reproducible state of a Rig at a step boundary.
// Restoring it — into the same rig, or into a freshly built rig whose
// stateful components are a subset of the captured one's — continues the
// run bit-identically to the run the snapshot was taken from.
type Snapshot struct {
	T       float64
	LastIn  control.Input
	LastFb  usb.Feedback
	FbDrops int
	Steps   int

	Console      console.State
	Pending      []itp.Packet // datagrams queued on the built-in transport
	ChainWrites  int
	ChainDropped int
	Board        usb.State
	PLC          plc.State
	Plant        robot.State
	Ctrl         control.State

	// Named holds the states of every Snapshotter component, keyed by
	// "name#occurrence".
	Named map[string]any
}

// snapshotters walks the rig's Snapshotter components in a deterministic
// order: chain wrappers top-down, then the Config.Stateful extras. Keys are
// name plus per-name occurrence index, so duplicate wrappers stay distinct.
func (r *Rig) snapshotters(f func(key string, s Snapshotter)) {
	seen := map[string]int{}
	visit := func(s Snapshotter) {
		name := s.Name()
		key := fmt.Sprintf("%s#%d", name, seen[name])
		seen[name]++
		f(key, s)
	}
	r.chain.Each(func(w interpose.Wrapper) {
		if s, ok := w.(Snapshotter); ok {
			visit(s)
		}
	})
	for _, s := range r.cfg.Stateful {
		visit(s)
	}
}

// Snapshot captures the rig's complete state. Only rigs driven by the
// built-in console support snapshots (externally driven rigs have
// un-capturable network state).
func (r *Rig) Snapshot() (Snapshot, error) {
	if r.cons == nil {
		return Snapshot{}, fmt.Errorf("sim: snapshot of externally driven rig")
	}
	writes, dropped := r.chain.Stats()
	s := Snapshot{
		T:       r.t,
		LastIn:  r.lastIn,
		LastFb:  r.lastFb,
		FbDrops: r.fbDrops,
		Steps:   r.steps,

		Console:      r.cons.CaptureState(),
		Pending:      r.mem.PendingPackets(),
		ChainWrites:  writes,
		ChainDropped: dropped,
		Board:        r.board.CaptureState(),
		PLC:          r.plc.CaptureState(),
		Plant:        r.plant.CaptureState(),
		Ctrl:         r.ctrl.CaptureState(),

		Named: map[string]any{},
	}
	r.snapshotters(func(key string, sn Snapshotter) {
		s.Named[key] = sn.CaptureSnap()
	})
	return s, nil
}

// Restore rewinds the rig to a snapshot. Every Snapshotter component of
// THIS rig must find its state in the snapshot; extra snapshot entries are
// ignored, so a snapshot taken from a rig with more stateful components
// (e.g. an attacked run) restores cleanly into a leaner fork (e.g. its
// clean reference) — legitimate because dormant and absent components alike
// have touched nothing and drawn no randomness.
func (r *Rig) Restore(s Snapshot) error {
	if r.cons == nil {
		return fmt.Errorf("sim: restore of externally driven rig")
	}
	var restoreErr error
	r.snapshotters(func(key string, sn Snapshotter) {
		if restoreErr != nil {
			return
		}
		st, ok := s.Named[key]
		if !ok {
			restoreErr = fmt.Errorf("sim: snapshot has no state for component %q", key)
			return
		}
		if err := sn.RestoreSnap(st); err != nil {
			restoreErr = fmt.Errorf("sim: restore %q: %w", key, err)
		}
	})
	if restoreErr != nil {
		return restoreErr
	}

	r.t = s.T
	r.lastIn = s.LastIn
	r.lastFb = s.LastFb
	r.fbDrops = s.FbDrops
	r.steps = s.Steps

	r.cons.RestoreState(s.Console)
	r.mem.SetPending(s.Pending)
	r.chain.SetStats(s.ChainWrites, s.ChainDropped)
	r.board.RestoreState(s.Board)
	r.plc.RestoreState(s.PLC)
	r.plant.RestoreState(s.Plant)
	r.ctrl.RestoreState(s.Ctrl)
	return nil
}
