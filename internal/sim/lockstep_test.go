package sim_test

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/sim"
)

func TestLockstepMatchesSoloRuns(t *testing.T) {
	// Heterogeneous cohort: different seeds, one guarded, one faulted, and
	// scripts of different lengths so rigs vacate lanes at different times.
	build := func() ([]*sim.Rig, []*[]sim.StepInfo) {
		cfgs := []sim.Config{
			guardedConfig(t, 81),
			{Seed: 82, Script: console.StandardScript(3)},
			{Seed: 83, Script: console.StandardScript(5)},
		}
		fcfg, _ := faultedConfig(t, 84)
		cfgs = append(cfgs, fcfg)
		rigs := make([]*sim.Rig, len(cfgs))
		traces := make([]*[]sim.StepInfo, len(cfgs))
		for i, cfg := range cfgs {
			rigs[i] = mustRig(t, cfg)
			traces[i] = trace(rigs[i])
		}
		return rigs, traces
	}

	soloRigs, soloTraces := build()
	for _, r := range soloRigs {
		mustRun(t, r, 0)
	}

	lockRigs, lockTraces := build()
	if err := sim.RunLockstep(lockRigs); err != nil {
		t.Fatal(err)
	}

	for i := range soloTraces {
		solo, lock := *soloTraces[i], *lockTraces[i]
		if len(solo) != len(lock) {
			t.Fatalf("rig %d: solo ran %d steps, lockstep %d", i, len(solo), len(lock))
		}
		for j := range solo {
			if solo[j] != lock[j] {
				t.Fatalf("rig %d diverged at step %d (t=%.3f s)", i, j, solo[j].T)
			}
		}
	}
}
