// Package sim assembles the full teleoperated-robot simulation of the
// paper's Figure 7(a): master-console emulator, ITP transport, control
// software, the write-path interposition chain (where both the malware and
// the dynamic-model guard live), USB interface board, PLC safety processor,
// and the physical plant. One Rig is one reproducible session.
package sim

import (
	"fmt"
	"time"

	"ravenguard/internal/console"
	"ravenguard/internal/control"
	"ravenguard/internal/dynamics"
	"ravenguard/internal/interpose"
	"ravenguard/internal/itp"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/mathx"
	"ravenguard/internal/motor"
	"ravenguard/internal/plc"
	"ravenguard/internal/robot"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/usb"
)

// Hook is a write-chain wrapper that additionally receives the per-cycle
// encoder feedback — the shape of the paper's detector, which intercepts
// DAC commands *and* reads the same encoder stream the control software
// sees in order to keep its dynamic model synchronised.
type Hook interface {
	interpose.Wrapper
	// OnFeedback delivers this cycle's feedback frame and simulated time.
	OnFeedback(fb usb.Feedback, t float64)
}

// FeedbackGapObserver is an optional Hook extension: guards implementing it
// are told when a cycle's feedback frame was lost (undecodable), so they
// can resynchronise their model after the gap instead of misreading the
// next good frame as a one-cycle jump.
type FeedbackGapObserver interface {
	// OnFeedbackGap reports one lost feedback frame at simulated time t.
	OnFeedbackGap(t float64)
}

// InputHook may observe and mutate the operator input after it is received
// by the control software — the injection point of attack scenario A
// ("injection of unintended user inputs after they are received by the
// control software").
type InputHook func(t float64, in *control.Input)

// StepInfo is everything one simulation step produced, handed to observers.
type StepInfo struct {
	T        float64 // simulated time at the *end* of the step, seconds
	Input    control.Input
	Ctrl     control.Output
	BoardDAC [usb.NumChannels]int16 // what the board actually latched
	Feedback usb.Feedback           // what the controller saw this cycle
	TipTrue  mathx.Vec3             // plant ground-truth end-effector
	JposTrue kinematics.JointPos
	JvelTrue [kinematics.NumJoints]float64
	MposTrue kinematics.MotorPos
	MvelTrue [kinematics.NumJoints]float64
	PLCEStop bool
	Broken   bool // any cable snapped
	// FeedbackDropped reports that this cycle's feedback frame was
	// undecodable and the controller reused the previous good frame.
	FeedbackDropped bool
}

// Observer receives every step's info.
type Observer func(StepInfo)

// Config assembles a Rig.
type Config struct {
	Seed   int64
	Script console.Script
	Traj   trajectory.Trajectory

	// Control overrides; zero values select defaults.
	Control control.Config
	// Plant overrides; zero values select defaults. Seed is always taken
	// from Config.Seed+1 so plant noise differs from trajectory seeds.
	Plant robot.Config
	// PLCTimeout overrides the watchdog supervision window (0 = default).
	PLCTimeout float64

	// Preload are malicious wrappers loaded onto the write chain, first
	// entry resolving first (LD_PRELOAD order).
	Preload []interpose.Wrapper
	// Guards are defensive hooks appended below the preloads, closest to
	// the hardware.
	Guards []Hook
	// OnInput is the scenario-A injection point.
	OnInput InputHook
	// OnFeedbackRead may corrupt the encoder feedback after the hardware
	// produced it and before the control software consumes it — a
	// malicious wrapper around the read system call (Table I, "change
	// encoder feedback"). Guards see the true feedback: the paper places
	// the detector in trusted hardware below any preloaded library.
	OnFeedbackRead func(t float64, fb *usb.Feedback)
	// NoGravityFF disables the controller's gravity feedforward (used by
	// ablation experiments).
	NoGravityFF bool

	// ExternalInput, when set, replaces the built-in console emulator: the
	// rig reads operator packets from this receiver instead (e.g. a real
	// UDP receiver fed by a remote console). Script/Traj are then ignored.
	ExternalInput itp.Receiver
	// ExternalDuration bounds an externally-driven session in simulated
	// seconds (default 3600).
	ExternalDuration float64

	// WrapTransport, when set, decorates the operator-packet receiver the
	// rig reads from (the built-in console transport, or ExternalInput) —
	// the installation point for accidental transport faults such as
	// packet loss, duplication, reordering and delay (see internal/fault).
	WrapTransport func(r itp.Receiver) itp.Receiver
	// OnBoard, when set, is invoked with the assembled USB interface board
	// before the first step — the installation point for board-level fault
	// hooks (feedback-frame corruption, firmware stall; see internal/fault).
	OnBoard func(b *usb.Board)

	// Stateful lists extra stateful components installed via the closure
	// hooks above (OnInput, OnFeedbackRead, WrapTransport, OnBoard) so the
	// rig's Snapshot can capture them. Chain wrappers (Preload, Guards) that
	// implement Snapshotter are discovered automatically and must not be
	// listed here.
	Stateful []Snapshotter
}

// Rig is one assembled simulation session. Not safe for concurrent use.
type Rig struct {
	cfg     Config            //ravenlint:snapshot-ignore configuration; cfg.Stateful components are captured via the snapshotters walk
	cons    *console.Console  // nil when externally driven
	mem     *itp.MemTransport // built-in console transport (nil when external)
	trans   itp.Receiver      //ravenlint:snapshot-ignore transport wiring; its queue is Snapshot.Pending plus faulter snapshots
	chain   *interpose.Chain
	board   *usb.Board
	plc     *plc.PLC
	plant   *robot.Plant
	ctrl    *control.Controller
	guards  []Hook     //ravenlint:snapshot-ignore hook wiring; snapshotter guards are captured via the chain walk
	obs     []Observer //ravenlint:snapshot-ignore observer wiring, not simulation state
	t       float64
	lastIn  control.Input
	lastFb  usb.Feedback // last good (decodable) feedback frame
	fbDrops int          // undecodable feedback frames survived
	steps   int

	// inBuf and fbBuf back the per-step input/feedback values handed to
	// the OnInput/OnFeedbackRead hooks by pointer; as fields they keep
	// Step allocation-free (locals passed by pointer would escape).
	inBuf control.Input //ravenlint:snapshot-ignore per-step scratch, fully rewritten each step
	fbBuf usb.Feedback  //ravenlint:snapshot-ignore per-step scratch, fully rewritten each step

	// pending carries the control-phase results of a split step between
	// StepControl and FinishStep (see RunLockstep).
	pending pendingStep //ravenlint:snapshot-ignore intra-step scratch; snapshots are taken at step boundaries
}

// FaultCounters aggregates the rig's graceful-degradation statistics: how
// often the pipeline absorbed a fault instead of crashing.
type FaultCounters struct {
	// FeedbackDrops counts cycles whose feedback frame was undecodable;
	// the controller reused the previous good frame.
	FeedbackDrops int
	// InputsSanitized counts non-finite operator-input fields the
	// controller zeroed before use.
	InputsSanitized int
	// BoardMalformed counts command frames the board rejected as
	// malformed (wrong length).
	BoardMalformed int
	// BoardStallDrops counts command frames a stalled board discarded.
	BoardStallDrops int
}

// New assembles a rig.
func New(cfg Config) (*Rig, error) {
	if cfg.Traj == nil {
		cfg.Traj = trajectory.Standard()[0]
	}
	if cfg.Script.TotalDuration() == 0 {
		cfg.Script = console.StandardScript(10)
	}
	if cfg.ExternalDuration == 0 {
		cfg.ExternalDuration = 3600
	}

	var (
		cons  *console.Console
		trans itp.Receiver
	)
	var mem *itp.MemTransport
	if cfg.ExternalInput != nil {
		trans = cfg.ExternalInput
	} else {
		mem = itp.NewMemTransport()
		trans = mem
		var err error
		cons, err = console.New(cfg.Script, cfg.Traj, mem)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	if cfg.WrapTransport != nil {
		if trans = cfg.WrapTransport(trans); trans == nil {
			return nil, fmt.Errorf("sim: WrapTransport returned nil receiver")
		}
	}

	board := usb.NewBoard()
	chain := interpose.NewChain(func(buf []byte) error { return board.Receive(buf) })
	for _, g := range cfg.Guards {
		chain.Append(g)
	}
	for i := len(cfg.Preload) - 1; i >= 0; i-- {
		chain.Preload(cfg.Preload[i])
	}

	ctrl, err := control.NewController(cfg.Control, chain)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if !cfg.NoGravityFF {
		ctrl.SetGravity(nominalGravity())
	}

	plantCfg := cfg.Plant
	if plantCfg.Params == (dynamics.Params{}) {
		plantCfg.Params = dynamics.DefaultParams()
	}
	if plantCfg.Bank == (motor.Bank{}) {
		plantCfg.Bank = motor.DefaultBank()
	}
	if plantCfg.Seed == 0 {
		plantCfg.Seed = cfg.Seed + 1
	}
	plant, err := robot.NewPlant(plantCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	r := &Rig{
		cfg:    cfg,
		cons:   cons,
		mem:    mem,
		trans:  trans,
		chain:  chain,
		board:  board,
		plc:    plc.New(durationFromSeconds(cfg.PLCTimeout)),
		plant:  plant,
		ctrl:   ctrl,
		guards: cfg.Guards,
	}
	// Guards that can trigger an emergency stop get wired to the PLC
	// latch: the paper's mitigation path puts the system into E-STOP.
	for _, g := range cfg.Guards {
		if es, ok := g.(interface{ SetEStop(func(cause string)) }); ok {
			es.SetEStop(func(cause string) { r.plc.ForceEStop(cause) })
		}
	}

	// Prime the encoder path so the controller's first feedback reflects
	// the true power-on pose rather than all-zero counts. The held frame
	// starts from the same pose, so a fault on the very first read
	// degrades to the power-on state instead of zero counts.
	board.SetEncoders(plant.EncoderCounts())
	r.lastFb = usb.Feedback{Encoder: plant.EncoderCounts()}
	if cfg.OnBoard != nil {
		cfg.OnBoard(board)
	}
	return r, nil
}

// durationFromSeconds converts simulated seconds to a time.Duration for the
// PLC's supervision arithmetic.
func durationFromSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// nominalGravity extracts the gravity feedforward table from the nominal
// dynamics parameters (the control software knows the design model, not the
// plant's perturbed reality).
func nominalGravity() control.GravityModel {
	p := dynamics.DefaultParams()
	var g control.GravityModel
	for i := 0; i < kinematics.NumJoints; i++ {
		g.Const[i] = p.Joints[i].GravConst
		g.Phase[i] = p.Joints[i].GravPhase
		g.Sin[i] = p.Joints[i].GravSin
	}
	return g
}

// Observe registers an observer invoked after every step.
func (r *Rig) Observe(o Observer) { r.obs = append(r.obs, o) }

// Controller exposes the control node (for experiment assertions).
func (r *Rig) Controller() *control.Controller { return r.ctrl }

// Plant exposes the physical plant (ground truth).
func (r *Rig) Plant() *robot.Plant { return r.plant }

// Chain exposes the write chain (for installing/removing wrappers mid-run).
func (r *Rig) Chain() *interpose.Chain { return r.chain }

// Board exposes the USB interface board.
func (r *Rig) Board() *usb.Board { return r.board }

// PLC exposes the safety processor.
func (r *Rig) PLC() *plc.PLC { return r.plc }

// FaultCounters returns the rig's graceful-degradation statistics.
func (r *Rig) FaultCounters() FaultCounters {
	_, malformed := r.board.Stats()
	return FaultCounters{
		FeedbackDrops:   r.fbDrops,
		InputsSanitized: r.ctrl.SanitizedInputs(),
		BoardMalformed:  malformed,
		BoardStallDrops: r.board.StallDrops(),
	}
}

// Time returns the simulated time in seconds.
func (r *Rig) Time() float64 { return r.t }

// Done reports whether the scripted session has ended (externally driven
// rigs end at ExternalDuration).
func (r *Rig) Done() bool {
	if r.cons == nil {
		return r.t >= r.cfg.ExternalDuration
	}
	return r.cons.Done()
}

// pendingStep carries what the control phase produced into the bookkeeping
// phase of a split step.
type pendingStep struct {
	out       control.Output
	fbDropped bool
}

// Step advances the whole system by one control period.
//
//ravenlint:noalloc
func (r *Rig) Step() (StepInfo, error) {
	const dt = control.Period
	if err := r.StepControl(); err != nil {
		return StepInfo{}, err
	}
	// 6. Physics: one control period of dynamics driven by whatever DACs
	// the board latched (post-attack values).
	r.plant.Step(r.board.DACs(), dt)
	return r.FinishStep(), nil
}

// StepControl runs the control half of one step — console, transport,
// feedback read, control cycle, PLC supervision, brake command — up to (but
// not including) the plant physics. Callers that integrate many rigs'
// plants together (RunLockstep, the fleet engine) use the split: after
// StepControl, advance the plant by one control period however you like —
// Plant.Step, robot.Batch, or a robot.LaneSet lane — then call FinishStep.
// Step is StepControl + Plant.Step + FinishStep.
//
//ravenlint:noalloc
func (r *Rig) StepControl() error {
	if err := r.StepCommand(); err != nil {
		return err
	}
	r.StepSupervise()
	return nil
}

// StepCommand runs the command phase of the control half: console,
// transport, feedback read, and the control cycle whose frame goes down
// the interposition chain. With a deferred-predict guard on the chain the
// frame may be left parked (interpose.Hold) — the caller must finish the
// write with ResumeWrite before StepSupervise, so the PLC supervises the
// status byte the delivered frame produced, exactly as in the unsplit
// path. StepControl is StepCommand + StepSupervise.
//
//ravenlint:noalloc
func (r *Rig) StepCommand() error {
	const dt = control.Period

	// 1. Console emits this cycle's ITP datagram (externally driven rigs
	// receive whatever arrived on the transport instead).
	if r.cons != nil {
		if _, err := r.cons.Tick(dt); err != nil {
			return err
		}
	}

	// 2. Control software receives the operator packet (or reuses the last
	// one on loss, as the real software holds state).
	if pkt, ok, err := r.trans.Recv(); err != nil {
		return err
	} else if ok {
		r.lastIn = control.Input{
			Delta:       pkt.Delta,
			OriDelta:    pkt.OriDelta,
			PedalDown:   pkt.PedalDown,
			StartButton: pkt.Start,
			EStopButton: pkt.EStop,
		}
	} else {
		// Stale command: motion deltas must not repeat, edge-flags clear.
		r.lastIn.Delta = mathx.Vec3{}
		r.lastIn.OriDelta = [3]float64{}
		r.lastIn.StartButton = false
		r.lastIn.EStopButton = false
	}
	in := &r.inBuf
	*in = r.lastIn

	// The physical start button also resets the PLC latch.
	if in.StartButton {
		r.plc.Reset()
	}

	// Scenario-A injection point: after receipt, before use.
	if r.cfg.OnInput != nil {
		r.cfg.OnInput(r.t, in)
	}

	// 3. Feedback the controller reads this cycle (written by the plant at
	// the end of the previous cycle). An undecodable frame no longer
	// aborts the session: the control software holds the last good frame
	// (stale-data semantics, matching the operator-packet path), counts
	// the drop, and guards are told about the gap so their models can
	// resynchronise on the next good frame.
	fbFrame := r.board.ReadFeedback()
	fb := &r.fbBuf
	var fbErr error
	*fb, fbErr = usb.DecodeFeedback(fbFrame)
	fbDropped := fbErr != nil
	if fbDropped {
		*fb = r.lastFb
		r.fbDrops++
		for _, g := range r.guards {
			if go_, ok := g.(FeedbackGapObserver); ok {
				go_.OnFeedbackGap(r.t)
			}
		}
	} else {
		r.lastFb = *fb
		for _, g := range r.guards {
			g.OnFeedback(*fb, r.t)
		}
	}
	if r.cfg.OnFeedbackRead != nil {
		r.cfg.OnFeedbackRead(r.t, fb)
	}

	// 4. Control cycle: kinematic chain, safety checks, USB write through
	// the interposition chain (malware, then guards, then the board).
	out := r.ctrl.Tick(*in, *fb, r.plc.EStopped())

	r.pending = pendingStep{out: out, fbDropped: fbDropped}
	return nil
}

// StepSupervise runs the supervision phase of the control half: the PLC
// checks the status byte the board relayed for this cycle's frame and the
// brakes follow the PLC. Must run after the command frame has reached the
// board — directly after StepCommand in the scalar path, or after
// ResumeWrite when a batched guard parked the frame.
//
//ravenlint:noalloc
func (r *Rig) StepSupervise() {
	const dt = control.Period
	// 5. PLC supervises the relayed status byte; brakes per PLC.
	status, have := r.board.StatusByte()
	r.plc.Tick(status, have, durationFromSeconds(dt))
	r.plant.SetBrakes(r.plc.BrakesEngaged())
}

// ResumeWrite finishes a command write a deferred-predict guard parked on
// the interposition chain (see core.Guard.SetDeferredPredict): the held
// frame — with any mitigation rewrite applied by AbsorbPrediction —
// continues to the wrappers below the guard and the board. Callers run it
// between StepCommand and StepSupervise.
//
//ravenlint:noalloc
func (r *Rig) ResumeWrite() error { return r.chain.ResumeHeld() }

// FinishStep runs the bookkeeping half of one step, after the plant
// physics: encoder latch, clock advance, StepInfo assembly, observers. It
// must only be called after a matching StepControl.
//
//ravenlint:noalloc
func (r *Rig) FinishStep() StepInfo {
	const dt = control.Period
	r.board.SetEncoders(r.plant.EncoderCounts())

	r.t += dt
	r.steps++

	broken, _ := r.plant.CableBroken()
	info := StepInfo{
		T:        r.t,
		Input:    r.inBuf,
		Ctrl:     r.pending.out,
		BoardDAC: r.board.DACs(),
		Feedback: r.fbBuf,
		TipTrue:  r.plant.TipPosition(),
		JposTrue: r.plant.JointPos(),
		JvelTrue: r.plant.JointVel(),
		MposTrue: r.plant.MotorPos(),
		MvelTrue: r.plant.MotorVel(),
		PLCEStop: r.plc.EStopped(),
		Broken:   broken,

		FeedbackDropped: r.pending.fbDropped,
	}
	for _, o := range r.obs {
		o(info)
	}
	return info
}

// Run executes the whole scripted session (or until maxSteps, whichever is
// first; maxSteps <= 0 means no cap) and returns the number of steps run.
func (r *Rig) Run(maxSteps int) (int, error) {
	n := 0
	for !r.Done() {
		if maxSteps > 0 && n >= maxSteps {
			break
		}
		if _, err := r.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
