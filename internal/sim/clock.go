package sim

import "time"

// Clock returns a monotonic timestamp in nanoseconds. It exists so the
// two wall-clock instrumentation sites (the guard's detection-latency
// timer and the overhead experiment) are injectable: deterministic
// campaigns can plug in a simulated clock, tests can plug in a scripted
// one, and the determinism analyzer has exactly one annotated place
// where real time enters the tree.
type Clock func() int64

// wallEpoch anchors WallClock; time.Since(wallEpoch) reads the process
// monotonic clock, so differences of WallClock values are immune to wall
// time jumping.
var wallEpoch = time.Now() //ravenlint:allow determinism wallclock-instrumentation anchor

// WallClock is the real-time Clock: monotonic nanoseconds since process
// start. It is the default for latency instrumentation; everything the
// simulation replays deterministically must not consume it.
func WallClock() int64 {
	return int64(time.Since(wallEpoch)) //ravenlint:allow determinism wallclock-instrumentation
}

// TickClock returns a deterministic Clock that advances by step
// nanoseconds per reading — a stand-in for WallClock in tests and
// deterministic campaigns that still want non-zero timing statistics.
func TickClock(step int64) Clock {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}
