package sim

import (
	"math"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/control"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

func TestFaultFreeSessionReachesPedalDown(t *testing.T) {
	rig, err := New(Config{
		Seed:   1,
		Script: console.StandardScript(5),
		Traj:   trajectory.Standard()[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[statemachine.State]bool{}
	rig.Observe(func(si StepInfo) { seen[si.Ctrl.State] = true })
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, st := range []statemachine.State{statemachine.EStop, statemachine.Init, statemachine.PedalUp, statemachine.PedalDown} {
		if !seen[st] {
			t.Errorf("state %v never reached; saw %v", st, seen)
		}
	}
	if rig.PLC().EStopped() {
		t.Errorf("PLC latched E-STOP in fault-free run: %s", rig.PLC().EStopCause())
	}
	if trips := rig.Controller().SafetyTrips(); trips != 0 {
		t.Errorf("software safety tripped %d times in fault-free run", trips)
	}
	if broken, which := rig.Plant().CableBroken(); broken {
		t.Errorf("cable broke in fault-free run: %v", which)
	}
}

func TestFaultFreeTrackingAccuracy(t *testing.T) {
	rig, err := New(Config{
		Seed:   2,
		Script: console.StandardScript(8),
		Traj:   trajectory.Standard()[1],
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	samples := 0
	settle := 0
	rig.Observe(func(si StepInfo) {
		if si.Ctrl.State != statemachine.PedalDown {
			settle = 0
			return
		}
		// Allow 500 ms to settle after the pedal goes down.
		settle++
		if settle < 500 {
			return
		}
		err := si.TipTrue.DistanceTo(si.Ctrl.TipDesired)
		if err > worst {
			worst = err
		}
		samples++
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("no pedal-down samples collected")
	}
	// The real RAVEN tracks teleoperation within a couple of millimeters;
	// the plant+controller pair must do the same or the detection
	// experiments are meaningless.
	if worst > 0.003 {
		t.Fatalf("worst tracking error %.2f mm, want < 3 mm", worst*1e3)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() (tipX float64) {
		rig, err := New(Config{Seed: 3, Script: console.StandardScript(3)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		return rig.Plant().TipPosition().X
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different trajectories: %v vs %v", a, b)
	}
	if math.IsNaN(a) {
		t.Fatal("NaN tip position")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) float64 {
		rig, err := New(Config{Seed: seed, Script: console.StandardScript(3)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		return rig.Plant().TipPosition().X
	}
	if run(10) == run(11) {
		t.Fatal("different seeds produced identical outcomes; noise not seeded")
	}
}

func TestPedalUpHoldsPosition(t *testing.T) {
	script := console.Script{
		StartAt:    0.05,
		HomingWait: 2.5,
		Segments: []console.Segment{
			{Duration: 2, PedalDown: true},
			{Duration: 1.5, PedalDown: false},
			{Duration: 1, PedalDown: true},
		},
	}
	rig, err := New(Config{Seed: 4, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	var drift float64
	var upStart, upEnd [2]float64 // tip X at pedal-up entry/exit
	inUp := false
	rig.Observe(func(si StepInfo) {
		if si.Ctrl.State == statemachine.PedalUp && si.T > 3 && si.T < 5.9 {
			if !inUp {
				inUp = true
				upStart[0], upStart[1] = si.TipTrue.X, si.TipTrue.Y
			}
			upEnd[0], upEnd[1] = si.TipTrue.X, si.TipTrue.Y
			d := math.Hypot(si.TipTrue.X-upStart[0], si.TipTrue.Y-upStart[1])
			if d > drift {
				drift = d
			}
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if !inUp {
		t.Fatal("mid-session pedal-up phase never observed")
	}
	// Brakes hold the arm: essentially zero drift while pedal is up.
	if drift > 1e-6 {
		t.Fatalf("arm drifted %.3g m with brakes engaged", drift)
	}
}

func TestEStopViaInputHook(t *testing.T) {
	cfg := Config{Seed: 5, Script: console.StandardScript(5)}
	cfg.OnInput = func(tm float64, in *control.Input) {
		if tm > 4 {
			in.EStopButton = true
		}
	}
	rig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := rig.Controller().State(); got != statemachine.EStop {
		t.Fatalf("state after E-STOP button = %v", got)
	}
	if !rig.Plant().BrakesEngaged() {
		t.Fatal("brakes not engaged after E-STOP")
	}
}

func TestEStopRestartRecovery(t *testing.T) {
	// An operator slaps the emergency stop mid-procedure and restarts:
	// the full loop must recover — PLC latch cleared by the start button,
	// re-homing, and a return to teleoperation.
	script := console.Script{
		StartAt:    0.05,
		HomingWait: 2.5,
		Segments: []console.Segment{
			{Duration: 6, PedalDown: true},
		},
		EStopAt:   4.0,
		RestartAt: 5.0,
	}
	rig, err := New(Config{Seed: 33, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	var timeline []statemachine.State
	rig.Observe(func(si StepInfo) {
		if len(timeline) == 0 || timeline[len(timeline)-1] != si.Ctrl.State {
			timeline = append(timeline, si.Ctrl.State)
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	// The essential recovery arc must appear in order: teleoperation,
	// then the emergency stop, then a fresh homing, then teleoperation
	// again. (One-tick pedal transitions around the button press are
	// allowed in between.)
	arc := []statemachine.State{
		statemachine.PedalDown, statemachine.EStop, statemachine.Init, statemachine.PedalDown,
	}
	i := 0
	for _, st := range timeline {
		if i < len(arc) && st == arc[i] {
			i++
		}
	}
	if i != len(arc) {
		t.Fatalf("recovery arc %v not found in timeline %v", arc, timeline)
	}
	if rig.PLC().EStopped() {
		t.Fatal("PLC still latched after restart")
	}
}

func TestGravityFeedforwardImprovesTracking(t *testing.T) {
	// The controller's gravity feedforward carries most of the static
	// load; without it the integrator alone must hold the arm and
	// tracking degrades measurably.
	worst := func(noFF bool) float64 {
		rig, err := New(Config{
			Seed:        44,
			Script:      console.StandardScript(5),
			Traj:        trajectory.Standard()[0],
			NoGravityFF: noFF,
		})
		if err != nil {
			t.Fatal(err)
		}
		w, settle := 0.0, 0
		rig.Observe(func(si StepInfo) {
			if si.Ctrl.State != statemachine.PedalDown {
				settle = 0
				return
			}
			settle++
			if settle < 500 {
				return
			}
			if d := si.TipTrue.DistanceTo(si.Ctrl.TipDesired); d > w {
				w = d
			}
		})
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		return w
	}
	withFF := worst(false)
	withoutFF := worst(true)
	if withoutFF <= withFF {
		t.Fatalf("removing gravity feedforward did not degrade tracking: %.3f mm vs %.3f mm",
			withoutFF*1e3, withFF*1e3)
	}
}
