package sim

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/interpose"
	"ravenguard/internal/malware"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
	"ravenguard/internal/wrist"
)

func TestWristChannelsCarryLiveTraffic(t *testing.T) {
	// Figure 5 realism: during teleoperation the wrist DAC channels
	// (3..5) must flicker like the positioning channels, so the
	// attacker's byte analysis faces a realistic packet stream.
	exfil := malware.NewMemExfil()
	rig, err := New(Config{
		Seed:    61,
		Script:  console.StandardScript(5),
		Preload: []interpose.Wrapper{malware.NewLogger(exfil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	distinct := make(map[int]map[int16]bool)
	for ch := 3; ch <= 5; ch++ {
		distinct[ch] = make(map[int16]bool)
	}
	for _, frame := range exfil.Frames() {
		cmd, err := usb.DecodeCommand(frame)
		if err != nil {
			t.Fatal(err)
		}
		for ch := 3; ch <= 5; ch++ {
			distinct[ch][cmd.DAC[ch]] = true
		}
	}
	for ch := 3; ch <= 5; ch++ {
		if len(distinct[ch]) < 20 {
			t.Errorf("wrist channel %d saw only %d distinct DAC values; expected live traffic", ch, len(distinct[ch]))
		}
	}
}

func TestWristTracksOperatorMotion(t *testing.T) {
	rig, err := New(Config{Seed: 62, Script: console.StandardScript(6)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	// The standard wrist weave rolls the instrument; by session end the
	// roll joint must have moved from its zero start.
	pos := rig.Plant().WristPos()
	if pos[wrist.Roll] == 0 {
		t.Fatal("wrist roll never moved under the standard weave profile")
	}
}

func TestWristChannelAttackDoesNotMovePositioningJoints(t *testing.T) {
	// An injection on a wrist channel cannot cause a positioning jump —
	// the reason the paper's detector can afford to ignore the distal
	// DOF. The instrument still jerks, but the tip stays on trajectory.
	run := func(channel int) (tipDev float64, wristMoved float64) {
		inj := malware.NewInjector(malware.InjectorConfig{
			Mode:            malware.ModeDACOffset,
			Channel:         channel,
			Value:           20000,
			StartDelayTicks: 1000,
			ActivationTicks: 128,
		})
		rig, err := New(Config{
			Seed:    63,
			Script:  console.StandardScript(5),
			Preload: []interpose.Wrapper{inj},
		})
		if err != nil {
			t.Fatal(err)
		}
		var cleanRig *Rig
		cleanRig, err = New(Config{Seed: 63, Script: console.StandardScript(5)})
		if err != nil {
			t.Fatal(err)
		}
		for !rig.Done() && !cleanRig.Done() {
			si, err := rig.Step()
			if err != nil {
				t.Fatal(err)
			}
			ci, err := cleanRig.Step()
			if err != nil {
				t.Fatal(err)
			}
			if si.Ctrl.State != statemachine.PedalDown {
				continue
			}
			if d := si.TipTrue.DistanceTo(ci.TipTrue); d > tipDev {
				tipDev = d
			}
			wp, cp := rig.Plant().WristPos(), cleanRig.Plant().WristPos()
			for i := range wp {
				d := wp[i] - cp[i]
				if d < 0 {
					d = -d
				}
				if d > wristMoved {
					wristMoved = d
				}
			}
		}
		return tipDev, wristMoved
	}

	tipDev, wristMoved := run(3) // attack the roll servo
	if wristMoved < 0.05 {
		t.Fatalf("wrist-channel attack barely moved the instrument (%v rad)", wristMoved)
	}
	if tipDev > 0.0005 {
		t.Fatalf("wrist-channel attack moved the tip %v m; channels must be independent", tipDev)
	}
}
