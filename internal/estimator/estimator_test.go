package estimator

import (
	"math"
	"testing"
	"testing/quick"
)

func newFilter(t *testing.T) *Kalman {
	t.Helper()
	k, err := NewKalman(KalmanConfig{Ratio: 12.1})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestValidation(t *testing.T) {
	if _, err := NewKalman(KalmanConfig{}); err == nil {
		t.Fatal("zero ratio accepted")
	}
	if _, err := NewKalman(KalmanConfig{Ratio: 12.1, PosGain: 1.5}); err == nil {
		t.Fatal("gain > 1 accepted")
	}
	if _, err := NewKalman(KalmanConfig{Ratio: 12.1, LinkCoupling: -0.1}); err == nil {
		t.Fatal("negative coupling accepted")
	}
}

func TestUpdateMovesTowardMeasurement(t *testing.T) {
	k := newFilter(t)
	pred := JointState{MotorPos: 1.0}
	got := k.Update(pred, 2.0, 1e-3)
	if got.MotorPos <= pred.MotorPos || got.MotorPos >= 2.0 {
		t.Fatalf("corrected position %v not between prediction and measurement", got.MotorPos)
	}
	// Link position follows through the transmission.
	if got.LinkPos <= 0 {
		t.Fatalf("link position %v did not follow the motor innovation", got.LinkPos)
	}
}

func TestUpdateExactPredictionUnchangedPosition(t *testing.T) {
	k := newFilter(t)
	pred := JointState{MotorPos: 0.7, MotorVel: 1.2, LinkPos: 0.05, LinkVel: 0.1}
	got := k.Update(pred, 0.7, 1e-3)
	if got.MotorPos != pred.MotorPos || got.LinkPos != pred.LinkPos {
		t.Fatalf("zero innovation changed positions: %+v", got)
	}
}

func TestVelocityCorrectionNeedsHistory(t *testing.T) {
	k := newFilter(t)
	pred := JointState{MotorVel: 10}
	// First sample: no measured velocity available, velocity untouched.
	got := k.Update(pred, 0, 1e-3)
	if got.MotorVel != pred.MotorVel {
		t.Fatalf("first update corrected velocity: %v", got.MotorVel)
	}
	// Second sample: measured velocity (0.001-0)/1e-3 = 1 rad/s pulls the
	// predicted 10 rad/s down.
	got = k.Update(pred, 0.001, 1e-3)
	if got.MotorVel >= pred.MotorVel {
		t.Fatalf("velocity innovation ignored: %v", got.MotorVel)
	}
}

func TestConvergesToConstantTruth(t *testing.T) {
	k := newFilter(t)
	state := JointState{MotorPos: 0} // model stuck at zero prediction
	const truth = 0.5
	for i := 0; i < 100; i++ {
		state = k.Update(state, truth, 1e-3)
	}
	if math.Abs(state.MotorPos-truth) > 1e-6 {
		t.Fatalf("filter did not converge: %v", state.MotorPos)
	}
}

func TestResetClearsHistory(t *testing.T) {
	k := newFilter(t)
	k.Update(JointState{}, 1.0, 1e-3)
	k.Reset()
	pred := JointState{MotorVel: 5}
	got := k.Update(pred, 1.0, 1e-3)
	if got.MotorVel != pred.MotorVel {
		t.Fatal("velocity corrected right after Reset (stale history)")
	}
}

func TestInnovation(t *testing.T) {
	if got := Innovation(JointState{MotorPos: 1}, 3); got != 2 {
		t.Fatalf("Innovation = %v", got)
	}
	if got := Innovation(JointState{MotorPos: 3}, 1); got != 2 {
		t.Fatalf("Innovation = %v (must be absolute)", got)
	}
}

func TestCorrectionBoundedQuick(t *testing.T) {
	k := newFilter(t)
	f := func(pred, meas float64) bool {
		if math.IsNaN(pred) || math.IsNaN(meas) ||
			math.Abs(pred) > 1e6 || math.Abs(meas) > 1e6 {
			// Physical motor angles are bounded; extreme magnitudes
			// overflow the innovation arithmetic and are out of scope.
			return true
		}
		got := k.Update(JointState{MotorPos: pred}, meas, 1e-3)
		// Corrected position lies between prediction and measurement.
		lo, hi := math.Min(pred, meas), math.Max(pred, meas)
		return got.MotorPos >= lo-1e-9 && got.MotorPos <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
