// Package estimator provides state estimators that fuse the dynamic
// model's prediction with encoder measurements. The paper's framework
// keeps its model aligned with the robot through encoder feedback; the
// work it builds on (Haghighipanah et al., IROS 2015, cited as [35]) uses
// an unscented Kalman filter for the same cable-driven dynamics. This
// package implements a per-joint steady-state Kalman filter over the
// two-mass model's observable states — a middle ground between the paper's
// plain resynchronisation and the full UKF — selectable in the guard via
// core.Config.Resync.
package estimator

import (
	"fmt"
	"math"
)

// JointState is the filtered estimate of one joint's four states.
type JointState struct {
	MotorPos float64
	MotorVel float64
	LinkPos  float64
	LinkVel  float64
}

// KalmanConfig parameterises the steady-state filter. The gains are the
// stationary Kalman gains of the discretised two-mass model under the
// assumed noise levels; exposing them directly keeps the filter cheap
// enough for the 1 ms budget (no per-step Riccati iteration).
type KalmanConfig struct {
	// PosGain is the innovation gain applied to the measured motor
	// position (default 0.35).
	PosGain float64
	// VelGain is the gain applied to the velocity innovation derived from
	// successive measurements (default 0.25).
	VelGain float64
	// LinkCoupling propagates motor innovations to the link states through
	// the transmission (default 0.6): the link is unobserved, so its
	// correction rides on the motor's, scaled by how strongly the cable
	// couples them.
	LinkCoupling float64
	// Ratio converts motor to joint coordinates.
	Ratio float64
}

func (c *KalmanConfig) applyDefaults() {
	if c.PosGain == 0 {
		c.PosGain = 0.35
	}
	if c.VelGain == 0 {
		c.VelGain = 0.25
	}
	if c.LinkCoupling == 0 {
		c.LinkCoupling = 0.6
	}
}

// Validate rejects unusable configurations.
func (c KalmanConfig) Validate() error {
	if c.Ratio == 0 {
		return fmt.Errorf("estimator: zero transmission ratio")
	}
	if c.PosGain < 0 || c.PosGain > 1 || c.VelGain < 0 || c.VelGain > 1 {
		return fmt.Errorf("estimator: gains must lie in [0,1]")
	}
	if c.LinkCoupling < 0 || c.LinkCoupling > 1 {
		return fmt.Errorf("estimator: link coupling must lie in [0,1]")
	}
	return nil
}

// Kalman is the per-joint steady-state filter. The prediction step is done
// externally (the guard integrates the dynamic model); Kalman applies the
// measurement update. Not safe for concurrent use.
type Kalman struct {
	cfg      KalmanConfig
	prevMeas float64
	havePrev bool
}

// NewKalman builds the filter.
func NewKalman(cfg KalmanConfig) (*Kalman, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Kalman{cfg: cfg}, nil
}

// Update applies the measurement correction to the predicted state, given
// the measured motor position (rad) and the sample period dt. It returns
// the corrected state.
func (k *Kalman) Update(pred JointState, measMotorPos, dt float64) JointState {
	innovation := measMotorPos - pred.MotorPos
	out := pred
	out.MotorPos += k.cfg.PosGain * innovation

	if k.havePrev && dt > 0 {
		measVel := (measMotorPos - k.prevMeas) / dt
		velInnov := measVel - pred.MotorVel
		out.MotorVel += k.cfg.VelGain * velInnov
		out.LinkVel += k.cfg.LinkCoupling * k.cfg.VelGain * velInnov / k.cfg.Ratio
	}
	out.LinkPos += k.cfg.LinkCoupling * k.cfg.PosGain * innovation / k.cfg.Ratio

	k.prevMeas = measMotorPos
	k.havePrev = true
	return out
}

// Reset clears the filter's measurement history (on E-STOP or re-homing).
func (k *Kalman) Reset() {
	k.prevMeas = 0
	k.havePrev = false
}

// Innovation returns the most recent position innovation magnitude given a
// prediction and measurement — a residual diagnostic: persistent large
// innovations indicate model divergence (or encoder-feedback tampering,
// the Table I read-path attack).
func Innovation(pred JointState, measMotorPos float64) float64 {
	return math.Abs(measMotorPos - pred.MotorPos)
}
