// Package analysis implements the attacker's offline analysis phase
// (paper Section III.B.2, Figures 5 and 6): given USB frames eavesdropped
// from one or more robot runs, recover — without any knowledge of the
// packet format — which byte carries the robot's operational state, which
// bit of it is the toggling watchdog signal, and which value means
// "Pedal Down", the trigger for the attack.
//
// The method is the paper's: look at each byte's values over time; bytes
// that switch among a small number of values (8, or 4 once a periodically
// toggling bit is masked out) are state candidates; combine with the public
// knowledge that the robot's state machine navigates 4 states in a known
// order to pick the trigger value.
package analysis

import (
	"fmt"
	"sort"

	"ravenguard/internal/usb"
)

// ByteProfile summarises one byte position across a capture.
type ByteProfile struct {
	Index    int
	Distinct int     // number of distinct values observed
	Values   []byte  // distinct values in order of first appearance
	Counts   []int   // occurrences per value (parallel to Values)
	Toggles  int     // value-change count over the capture
	ToggleHz float64 // changes per frame
}

// Profile computes per-byte profiles over a capture of equal-length frames.
// It returns an error when the capture is empty or frames have mixed
// lengths (the attacker would first bucket by size).
func Profile(frames [][]byte) ([]ByteProfile, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("analysis: empty capture")
	}
	width := len(frames[0])
	for i, f := range frames {
		if len(f) != width {
			return nil, fmt.Errorf("analysis: frame %d has length %d, first frame %d", i, len(f), width)
		}
	}
	profiles := make([]ByteProfile, width)
	for b := 0; b < width; b++ {
		p := ByteProfile{Index: b}
		seen := make(map[byte]int, 8)
		var prev byte
		for i, f := range frames {
			v := f[b]
			if idx, ok := seen[v]; ok {
				p.Counts[idx]++
			} else {
				seen[v] = len(p.Values)
				p.Values = append(p.Values, v)
				p.Counts = append(p.Counts, 1)
			}
			if i > 0 && v != prev {
				p.Toggles++
			}
			prev = v
		}
		p.Distinct = len(p.Values)
		p.ToggleHz = float64(p.Toggles) / float64(len(frames))
		profiles[b] = p
	}
	return profiles, nil
}

// FindTogglingBit looks for a bit of the given byte that toggles
// periodically — the watchdog square wave. It returns the bit mask and the
// observed half-period in frames. A bit qualifies when it toggles many
// times with low period variance while the rest of the byte is compara-
// tively stable.
func FindTogglingBit(frames [][]byte, byteIndex int) (mask byte, halfPeriod float64, err error) {
	if len(frames) < 4 {
		return 0, 0, fmt.Errorf("analysis: capture too short (%d frames)", len(frames))
	}
	bestMask := byte(0)
	bestScore := 0.0
	bestPeriod := 0.0
	for bit := 0; bit < 8; bit++ {
		m := byte(1) << bit
		var gaps []int
		last := -1
		prev := frames[0][byteIndex] & m
		for i := 1; i < len(frames); i++ {
			cur := frames[i][byteIndex] & m
			if cur != prev {
				if last >= 0 {
					gaps = append(gaps, i-last)
				}
				last = i
				prev = cur
			}
		}
		if len(gaps) < 8 {
			continue // too few edges to be a periodic signal
		}
		mean := 0.0
		for _, g := range gaps {
			mean += float64(g)
		}
		mean /= float64(len(gaps))
		variance := 0.0
		for _, g := range gaps {
			d := float64(g) - mean
			variance += d * d
		}
		variance /= float64(len(gaps))
		// Score: many edges, regular spacing.
		score := float64(len(gaps)) / (1 + variance)
		if score > bestScore {
			bestScore = score
			bestMask = m
			bestPeriod = mean
		}
	}
	if bestMask == 0 {
		return 0, 0, fmt.Errorf("analysis: no periodically toggling bit in byte %d", byteIndex)
	}
	return bestMask, bestPeriod, nil
}

// StateByteCandidate scores byte positions as state-byte candidates. The
// state byte's signature, which separates it from slowly drifting motor-
// command bytes: it holds a handful of distinct values (2..16), and once
// its single periodically toggling bit (the watchdog square wave) is
// masked out, the residual value changes only a few times per run — states
// persist for thousands of frames. A DAC high byte may also have few
// values and even a pseudo-toggling low bit, but its residual keeps
// drifting with the motion.
func StateByteCandidate(frames [][]byte) (int, error) {
	if len(frames) == 0 {
		return 0, fmt.Errorf("analysis: empty capture")
	}
	profiles, err := Profile(frames)
	if err != nil {
		return 0, err
	}
	best := -1
	bestScore := 0.0
	for _, p := range profiles {
		if p.Distinct < 2 || p.Distinct > 16 {
			continue
		}
		mask, _, err := FindTogglingBit(frames, p.Index)
		if err != nil {
			// No periodic bit: mask nothing; a state byte without its
			// watchdog would still qualify via residual stability.
			mask = 0
		}
		segs := SegmentStates(frames, p.Index, mask)
		distinctResidual := make(map[byte]bool, 8)
		for _, s := range segs {
			distinctResidual[s.Value] = true
		}
		if len(distinctResidual) < 2 {
			continue // constant after masking: carries no state
		}
		// Residual change rate: the state byte changes O(5) times per run;
		// drifting command bytes change hundreds of times.
		changeRate := float64(len(segs)-1) / float64(len(frames))
		score := 1.0 / (float64(len(distinctResidual)) * (1e-4 + changeRate))
		if score > bestScore {
			bestScore = score
			best = p.Index
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("analysis: no plausible state byte among %d positions", len(profiles))
	}
	return best, nil
}

// Segment is a maximal run of frames with one masked state value.
type Segment struct {
	Value byte // masked byte value
	Start int  // first frame index
	Len   int  // number of frames
}

// SegmentStates splits a capture into runs of the state byte's value with
// the watchdog bit masked out — the step pattern of paper Figure 6.
// Frames too short to carry the byte (mixed traffic on a shared
// descriptor) are skipped.
func SegmentStates(frames [][]byte, byteIndex int, watchdogMask byte) []Segment {
	if byteIndex < 0 {
		return nil
	}
	mask := ^watchdogMask
	var segs []Segment
	started := false
	var cur Segment
	for i, f := range frames {
		if byteIndex >= len(f) {
			continue
		}
		v := f[byteIndex] & mask
		if !started {
			cur = Segment{Value: v, Start: i, Len: 1}
			started = true
			continue
		}
		if v == cur.Value {
			cur.Len++
			continue
		}
		segs = append(segs, cur)
		cur = Segment{Value: v, Start: i, Len: 1}
	}
	if !started {
		return nil
	}
	return append(segs, cur)
}

// ChannelActivity summarises one encoder channel of a read-path capture:
// the paper's "similar analysis ... on the data collected from the read
// system calls" that tells the attacker which channels carry live motor
// feedback (and are therefore worth corrupting).
type ChannelActivity struct {
	Channel  int
	Min, Max int32
	Travel   int64 // sum of |successive deltas|: total encoder motion
}

// Active reports whether the channel carried any motion.
func (c ChannelActivity) Active() bool { return c.Travel > 0 }

// ProfileFeedback analyses captured feedback frames (usb.FeedbackLen each)
// and returns per-channel activity. Frames of other sizes are skipped, as
// the attacker's capture of a shared file descriptor would contain mixed
// traffic.
func ProfileFeedback(frames [][]byte) ([]ChannelActivity, error) {
	out := make([]ChannelActivity, usb.NumChannels)
	for i := range out {
		out[i].Channel = i
	}
	var prev usb.Feedback
	have := false
	decoded := 0
	for _, f := range frames {
		fb, err := usb.DecodeFeedback(f)
		if err != nil {
			continue
		}
		decoded++
		for ch := 0; ch < usb.NumChannels; ch++ {
			v := fb.Encoder[ch]
			if decoded == 1 {
				out[ch].Min, out[ch].Max = v, v
			} else {
				if v < out[ch].Min {
					out[ch].Min = v
				}
				if v > out[ch].Max {
					out[ch].Max = v
				}
			}
			if have {
				d := int64(v) - int64(prev.Encoder[ch])
				if d < 0 {
					d = -d
				}
				out[ch].Travel += d
			}
		}
		prev = fb
		have = true
	}
	if decoded == 0 {
		return nil, fmt.Errorf("analysis: no decodable feedback frames in %d captures", len(frames))
	}
	return out, nil
}

// Inference is the attacker's final conclusion.
type Inference struct {
	StateByte     int     // byte position carrying the state
	WatchdogMask  byte    // toggling (watchdog) bit
	HalfPeriod    float64 // watchdog half-period, frames
	StateValues   []byte  // masked state values in order of first appearance
	PedalDownByte byte    // masked Byte-0 value meaning "Pedal Down"
}

// Infer runs the full offline analysis over one or more captured runs. The
// attacker's public knowledge: the robot navigates E-STOP -> Init ->
// Pedal Up <-> Pedal Down, so the LAST state to appear for the first time
// in a run that reaches teleoperation is Pedal Down. Requiring the same
// conclusion across runs (Figure 6 shows nine) hardens the inference.
func Infer(runs [][][]byte) (Inference, error) {
	if len(runs) == 0 {
		return Inference{}, fmt.Errorf("analysis: no runs captured")
	}

	// Use the first run to locate the state byte and watchdog bit.
	stateByte, err := StateByteCandidate(runs[0])
	if err != nil {
		return Inference{}, err
	}
	mask, half, err := FindTogglingBit(runs[0], stateByte)
	if err != nil {
		return Inference{}, err
	}

	// Across runs: collect masked values in order of first appearance and
	// vote on the last-appearing value.
	votes := make(map[byte]int)
	var firstOrder []byte
	for runIdx, frames := range runs {
		segs := SegmentStates(frames, stateByte, mask)
		seen := make(map[byte]bool, 4)
		var order []byte
		for _, s := range segs {
			if !seen[s.Value] {
				seen[s.Value] = true
				order = append(order, s.Value)
			}
		}
		if len(order) < 2 {
			return Inference{}, fmt.Errorf("analysis: run %d shows only %d state value(s); robot never left its initial state", runIdx, len(order))
		}
		votes[order[len(order)-1]]++
		if runIdx == 0 {
			firstOrder = order
		}
	}

	// Majority vote for the Pedal Down value.
	type kv struct {
		v byte
		n int
	}
	tally := make([]kv, 0, len(votes))
	for v, n := range votes {
		tally = append(tally, kv{v, n})
	}
	sort.Slice(tally, func(i, j int) bool {
		if tally[i].n != tally[j].n {
			return tally[i].n > tally[j].n
		}
		return tally[i].v < tally[j].v
	})

	return Inference{
		StateByte:     stateByte,
		WatchdogMask:  mask,
		HalfPeriod:    half,
		StateValues:   firstOrder,
		PedalDownByte: tally[0].v,
	}, nil
}
