package analysis

import (
	"math/rand"
	"testing"

	"ravenguard/internal/usb"
)

// synthRun fabricates a capture resembling one robot session: a sequence of
// (stateNibble, frames) phases with a watchdog square wave on bit 4 and
// noisy DAC bytes.
func synthRun(seed int64, phases []struct {
	nibble byte
	n      int
}) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	var frames [][]byte
	tick := 0
	for _, ph := range phases {
		for i := 0; i < ph.n; i++ {
			cmd := usb.Command{
				StateNibble: ph.nibble,
				Watchdog:    (tick/10)%2 == 1,
				Seq:         byte(tick),
			}
			if ph.nibble == 0x0F || ph.nibble == 0x03 {
				for ch := 0; ch < 3; ch++ {
					cmd.DAC[ch] = int16(rng.Intn(20000) - 10000)
				}
			}
			f := cmd.Encode()
			frames = append(frames, f[:])
			tick++
		}
	}
	return frames
}

func standardPhases() []struct {
	nibble byte
	n      int
} {
	return []struct {
		nibble byte
		n      int
	}{
		{0x00, 300}, // E-STOP
		{0x03, 500}, // Init
		{0x07, 400}, // Pedal Up
		{0x0F, 900}, // Pedal Down
		{0x07, 200}, // Pedal Up
		{0x0F, 700}, // Pedal Down
	}
}

func TestProfileFindsDistinctCounts(t *testing.T) {
	frames := synthRun(1, standardPhases())
	profiles, err := Profile(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != usb.CommandLen {
		t.Fatalf("profiles for %d bytes", len(profiles))
	}
	// Byte 0: 4 states x 2 watchdog values but E-STOP/PedalUp only appear
	// with both watchdog phases too — at most 8 distinct values.
	if p := profiles[usb.StateByte]; p.Distinct < 4 || p.Distinct > 8 {
		t.Fatalf("Byte 0 distinct = %d, want 4..8", p.Distinct)
	}
	// DAC low bytes flicker among many values.
	if p := profiles[usb.DACBase]; p.Distinct < 50 {
		t.Fatalf("DAC byte distinct = %d, expected noisy", p.Distinct)
	}
	// Unused channels stay constant.
	if p := profiles[usb.DACBase+2*7]; p.Distinct != 1 {
		t.Fatalf("unused channel byte distinct = %d", p.Distinct)
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile(nil); err == nil {
		t.Fatal("empty capture accepted")
	}
	if _, err := Profile([][]byte{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged capture accepted")
	}
}

func TestFindTogglingBitLocatesWatchdog(t *testing.T) {
	frames := synthRun(2, standardPhases())
	mask, half, err := FindTogglingBit(frames, usb.StateByte)
	if err != nil {
		t.Fatal(err)
	}
	if mask != usb.WatchdogBit {
		t.Fatalf("mask = %#02x, want %#02x", mask, usb.WatchdogBit)
	}
	if half < 8 || half > 12 {
		t.Fatalf("half-period = %v frames, want ~10", half)
	}
}

func TestFindTogglingBitErrors(t *testing.T) {
	if _, _, err := FindTogglingBit([][]byte{{0}}, 0); err == nil {
		t.Fatal("tiny capture accepted")
	}
	// A constant byte has no toggling bit.
	frames := make([][]byte, 100)
	for i := range frames {
		frames[i] = []byte{0x55}
	}
	if _, _, err := FindTogglingBit(frames, 0); err == nil {
		t.Fatal("constant byte yielded a toggling bit")
	}
}

func TestStateByteCandidatePicksByte0(t *testing.T) {
	frames := synthRun(3, standardPhases())
	got, err := StateByteCandidate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got != usb.StateByte {
		t.Fatalf("candidate = byte %d, want %d", got, usb.StateByte)
	}
}

func TestStateByteCandidateRejectsEmpty(t *testing.T) {
	if _, err := StateByteCandidate(nil); err == nil {
		t.Fatal("empty capture accepted")
	}
}

func TestStateByteCandidateIgnoresSlowDriftingBytes(t *testing.T) {
	// A smooth DAC high byte — few distinct values, slow drift — must not
	// outscore the state byte: this is the failure mode of naive distinct-
	// value counting on real control traffic.
	frames := synthRun(9, standardPhases())
	// Overwrite channel 3's high byte with a slow drift among 6 values.
	hi := usb.DACBase + 2*3 + 1
	for i, f := range frames {
		f[hi] = byte(10 + (i/40)%6)
	}
	got, err := StateByteCandidate(frames)
	if err != nil {
		t.Fatal(err)
	}
	if got != usb.StateByte {
		t.Fatalf("candidate = byte %d (drifting decoy?), want %d", got, usb.StateByte)
	}
}

func TestSegmentStates(t *testing.T) {
	frames := synthRun(4, standardPhases())
	segs := SegmentStates(frames, usb.StateByte, usb.WatchdogBit)
	if len(segs) != 6 {
		t.Fatalf("segments = %d, want 6 phases", len(segs))
	}
	wantVals := []byte{0x00, 0x03, 0x07, 0x0F, 0x07, 0x0F}
	wantLens := []int{300, 500, 400, 900, 200, 700}
	for i, s := range segs {
		if s.Value != wantVals[i] || s.Len != wantLens[i] {
			t.Fatalf("segment %d = %+v, want value %#02x len %d", i, s, wantVals[i], wantLens[i])
		}
	}
}

func TestInferFullPipeline(t *testing.T) {
	// Nine runs (Figure 6) with varying pedal timing.
	var runs [][][]byte
	rng := rand.New(rand.NewSource(5))
	for r := 0; r < 9; r++ {
		phases := []struct {
			nibble byte
			n      int
		}{
			{0x00, 100 + rng.Intn(300)},
			{0x03, 400 + rng.Intn(200)},
			{0x07, 200 + rng.Intn(300)},
			{0x0F, 500 + rng.Intn(900)},
		}
		if rng.Intn(2) == 0 { // some runs pause mid-procedure
			phases = append(phases,
				struct {
					nibble byte
					n      int
				}{0x07, 100 + rng.Intn(200)},
				struct {
					nibble byte
					n      int
				}{0x0F, 300 + rng.Intn(500)},
			)
		}
		runs = append(runs, synthRun(int64(10+r), phases))
	}
	inf, err := Infer(runs)
	if err != nil {
		t.Fatal(err)
	}
	if inf.StateByte != usb.StateByte {
		t.Fatalf("state byte = %d", inf.StateByte)
	}
	if inf.WatchdogMask != usb.WatchdogBit {
		t.Fatalf("watchdog mask = %#02x", inf.WatchdogMask)
	}
	if inf.PedalDownByte != 0x0F {
		t.Fatalf("Pedal Down value = %#02x, want 0x0F", inf.PedalDownByte)
	}
	if len(inf.StateValues) != 4 {
		t.Fatalf("state values = %v, want 4 states", inf.StateValues)
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Fatal("no runs accepted")
	}
	// A run that never leaves E-STOP cannot identify Pedal Down.
	idle := synthRun(6, []struct {
		nibble byte
		n      int
	}{{0x00, 2000}})
	if _, err := Infer([][][]byte{idle}); err == nil {
		t.Fatal("idle run accepted")
	}
}

func TestSegmentStatesSkipsShortFrames(t *testing.T) {
	frames := [][]byte{
		{0x0F, 1, 2},
		{},     // junk on the shared descriptor
		{0x0F}, // too short for byte index 1 but fine for 0
		{0x07, 1, 2},
	}
	segs := SegmentStates(frames, 0, 0)
	if len(segs) != 2 || segs[0].Value != 0x0F || segs[0].Len != 2 || segs[1].Value != 0x07 {
		t.Fatalf("segments = %+v", segs)
	}
	// Index past every frame: nothing to segment, no panic.
	if got := SegmentStates(frames, 9, 0); got != nil {
		t.Fatalf("segments for absent byte = %+v", got)
	}
	if got := SegmentStates(nil, 0, 0); got != nil {
		t.Fatalf("segments of empty capture = %+v", got)
	}
	if got := SegmentStates(frames, -1, 0); got != nil {
		t.Fatalf("segments for negative index = %+v", got)
	}
}
