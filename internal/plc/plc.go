// Package plc models the RAVEN II Programmable Logic Controller: the
// independent safety processor that controls the fail-safe power-off brakes
// on the robotic joints and supervises the control software through the
// square-wave watchdog signal relayed by the USB interface boards.
//
// The control software toggles the watchdog bit periodically while its
// safety checks pass; upon detecting an unsafe motor command it simply stops
// toggling. The PLC monitors the bit and, when no edge arrives within its
// supervision window, latches the whole system into the emergency-stop
// state and engages the brakes.
package plc

import (
	"time"

	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
)

// DefaultWatchdogTimeout is the supervision window: the watchdog square
// wave toggles every 10 control cycles (10 ms half-period), so 50 ms with
// no edge means the control software has stopped petting it.
const DefaultWatchdogTimeout = 50 * time.Millisecond

// PLC is the safety processor. It is driven with the status byte the board
// relays each control tick, using simulated time. The zero value is not
// valid; use New.
type PLC struct {
	timeout time.Duration //ravenlint:snapshot-ignore watchdog window, configuration

	lastBit     bool
	haveBit     bool
	sinceEdge   time.Duration
	estopped    bool
	estopCause  string
	brakesOn    bool
	statusState statemachine.State
}

// New returns a PLC in the powered-up condition: brakes engaged, not yet
// E-STOP latched (the robot starts in E-STOP at the state-machine level,
// which keeps brakes on anyway). timeout <= 0 selects the default window.
func New(timeout time.Duration) *PLC {
	if timeout <= 0 {
		timeout = DefaultWatchdogTimeout
	}
	return &PLC{timeout: timeout, brakesOn: true, statusState: statemachine.EStop}
}

// Tick feeds the PLC one control period's worth of observation: the status
// byte relayed by the board (state nibble + watchdog bit), whether a status
// byte was available at all, and the elapsed simulated time. It returns
// true when the PLC is commanding an emergency stop.
func (p *PLC) Tick(status byte, haveStatus bool, dt time.Duration) bool {
	if p.estopped {
		return true
	}
	if !haveStatus {
		// No traffic from the control software at all counts as a missing
		// watchdog once the supervision window expires.
		p.sinceEdge += dt
		if p.sinceEdge >= p.timeout {
			p.latch("watchdog silent: no status traffic")
		}
		return p.estopped
	}

	bit := status&usb.WatchdogBit != 0
	if st, ok := statemachine.FromNibble(status); ok {
		p.statusState = st
	}
	if !p.haveBit {
		p.haveBit = true
		p.lastBit = bit
		p.sinceEdge = 0
	} else if bit != p.lastBit {
		p.lastBit = bit
		p.sinceEdge = 0
	} else {
		p.sinceEdge += dt
		if p.sinceEdge >= p.timeout {
			p.latch("watchdog stuck: no edge within supervision window")
		}
	}

	p.updateBrakes()
	return p.estopped
}

// latch records an E-STOP with its cause and engages the brakes.
func (p *PLC) latch(cause string) {
	p.estopped = true
	p.estopCause = cause
	p.brakesOn = true
}

// ForceEStop latches the E-STOP externally (the physical emergency-stop
// button, or the software requesting a halt).
func (p *PLC) ForceEStop(cause string) { p.latch(cause) }

// Reset clears the E-STOP latch; only the physical start button does this.
func (p *PLC) Reset() {
	p.estopped = false
	p.estopCause = ""
	p.haveBit = false
	p.sinceEdge = 0
	p.updateBrakes()
}

func (p *PLC) updateBrakes() {
	if p.estopped {
		p.brakesOn = true
		return
	}
	// Brakes release only when the relayed state says the operator is
	// engaged (Pedal Down) or the robot is homing (Init).
	switch p.statusState {
	case statemachine.PedalDown, statemachine.Init:
		p.brakesOn = false
	default:
		p.brakesOn = true
	}
}

// State is the PLC's mutable state, for checkpoint/restore. The
// supervision window is configuration and stays with the target PLC.
type State struct {
	LastBit     bool
	HaveBit     bool
	SinceEdge   time.Duration
	EStopped    bool
	EStopCause  string
	BrakesOn    bool
	StatusState statemachine.State
}

// CaptureState returns the PLC's mutable state.
func (p *PLC) CaptureState() State {
	return State{
		LastBit: p.lastBit, HaveBit: p.haveBit, SinceEdge: p.sinceEdge,
		EStopped: p.estopped, EStopCause: p.estopCause,
		BrakesOn: p.brakesOn, StatusState: p.statusState,
	}
}

// RestoreState rewinds the PLC to a captured state.
func (p *PLC) RestoreState(s State) {
	p.lastBit, p.haveBit, p.sinceEdge = s.LastBit, s.HaveBit, s.SinceEdge
	p.estopped, p.estopCause = s.EStopped, s.EStopCause
	p.brakesOn, p.statusState = s.BrakesOn, s.StatusState
}

// EStopped reports whether the E-STOP latch is set.
func (p *PLC) EStopped() bool { return p.estopped }

// EStopCause returns the recorded cause of the latch, empty when not
// latched.
func (p *PLC) EStopCause() string { return p.estopCause }

// BrakesEngaged reports whether the fail-safe brakes are currently engaged.
func (p *PLC) BrakesEngaged() bool { return p.brakesOn }
