package plc

import (
	"testing"
	"time"

	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
)

const tick = time.Millisecond

// feed runs n ticks with a watchdog square wave of the given half-period
// (in ticks) and state nibble, starting from the given phase.
func feed(p *PLC, nibble byte, halfPeriod, n int) {
	bit := false
	for i := 0; i < n; i++ {
		if halfPeriod > 0 && i%halfPeriod == 0 && i > 0 {
			bit = !bit
		}
		status := nibble
		if bit {
			status |= usb.WatchdogBit
		}
		p.Tick(status, true, tick)
	}
}

func TestHealthyWatchdogNoEStop(t *testing.T) {
	p := New(0)
	feed(p, statemachine.PedalDown.Nibble(), 10, 1000)
	if p.EStopped() {
		t.Fatalf("healthy watchdog latched E-STOP: %s", p.EStopCause())
	}
}

func TestStuckWatchdogLatches(t *testing.T) {
	p := New(0)
	feed(p, statemachine.PedalDown.Nibble(), 10, 100) // healthy for 100 ms
	feed(p, statemachine.PedalDown.Nibble(), 0, 60)   // then stuck 60 ms > 50 ms window
	if !p.EStopped() {
		t.Fatal("stuck watchdog did not latch E-STOP")
	}
	if p.EStopCause() == "" {
		t.Fatal("latch recorded no cause")
	}
	if !p.BrakesEngaged() {
		t.Fatal("E-STOP must engage brakes")
	}
}

func TestSilentBusLatches(t *testing.T) {
	p := New(0)
	for i := 0; i < 60; i++ {
		p.Tick(0, false, tick)
	}
	if !p.EStopped() {
		t.Fatal("silent bus did not latch")
	}
}

func TestLatchIsSticky(t *testing.T) {
	p := New(0)
	feed(p, statemachine.PedalDown.Nibble(), 0, 60)
	if !p.EStopped() {
		t.Fatal("setup: no latch")
	}
	// Resuming a healthy watchdog must NOT clear the latch.
	feed(p, statemachine.PedalDown.Nibble(), 10, 200)
	if !p.EStopped() {
		t.Fatal("latch cleared by resumed watchdog")
	}
}

func TestResetClearsLatch(t *testing.T) {
	p := New(0)
	feed(p, statemachine.PedalDown.Nibble(), 0, 60)
	p.Reset()
	if p.EStopped() {
		t.Fatal("Reset did not clear the latch")
	}
	feed(p, statemachine.PedalDown.Nibble(), 10, 500)
	if p.EStopped() {
		t.Fatal("healthy watchdog re-latched after reset")
	}
}

func TestForceEStop(t *testing.T) {
	p := New(0)
	p.ForceEStop("physical button")
	if !p.EStopped() || p.EStopCause() != "physical button" {
		t.Fatalf("ForceEStop: estopped=%v cause=%q", p.EStopped(), p.EStopCause())
	}
}

func TestBrakesFollowRelayedState(t *testing.T) {
	p := New(0)
	feed(p, statemachine.PedalUp.Nibble(), 10, 20)
	if !p.BrakesEngaged() {
		t.Fatal("Pedal Up must keep brakes engaged")
	}
	feed(p, statemachine.PedalDown.Nibble(), 10, 20)
	if p.BrakesEngaged() {
		t.Fatal("Pedal Down must release brakes")
	}
	feed(p, statemachine.Init.Nibble(), 10, 20)
	if p.BrakesEngaged() {
		t.Fatal("Init must release brakes for homing")
	}
	feed(p, statemachine.EStop.Nibble(), 10, 20)
	if !p.BrakesEngaged() {
		t.Fatal("E-STOP state must engage brakes")
	}
}

func TestCustomTimeout(t *testing.T) {
	p := New(10 * time.Millisecond)
	feed(p, statemachine.PedalDown.Nibble(), 0, 15)
	if !p.EStopped() {
		t.Fatal("10 ms supervision window did not latch after 15 ms of stuck bit")
	}
}

func TestWatchdogToleratesSlowToggle(t *testing.T) {
	// A 40 ms half-period is inside the 50 ms window: no latch.
	p := New(0)
	feed(p, statemachine.PedalDown.Nibble(), 40, 1000)
	if p.EStopped() {
		t.Fatalf("40 ms half-period watchdog latched: %s", p.EStopCause())
	}
}
