package itp

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ravenguard/internal/mathx"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Seq:       123456,
		PedalDown: true,
		Start:     false,
		EStop:     true,
		Delta:     mathx.Vec3{X: 1e-4, Y: -2e-4, Z: 3.5e-5},
	}
	buf := p.Encode()
	got, err := Decode(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: got %+v want %+v", got, p)
	}
}

func TestPacketRoundTripQuick(t *testing.T) {
	f := func(seq uint32, pedal, start, estop bool, x, y, z float64) bool {
		if anyNaNInf(x, y, z) {
			return true
		}
		p := Packet{Seq: seq, PedalDown: pedal, Start: start, EStop: estop,
			Delta: mathx.Vec3{X: x, Y: y, Z: z}}
		buf := p.Encode()
		got, err := Decode(buf[:])
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestDecodeRejects(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"short", make([]byte, PacketLen-1)},
		{"long", make([]byte, PacketLen+1)},
		{"bad magic", make([]byte, PacketLen)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.buf); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestDecodeRejectsNaNDelta(t *testing.T) {
	p := Packet{Seq: 1, Delta: mathx.Vec3{X: math.NaN()}}
	buf := p.Encode()
	if _, err := Decode(buf[:]); err == nil {
		t.Fatal("NaN delta accepted")
	}
}

func TestMemTransportFIFO(t *testing.T) {
	tr := NewMemTransport()
	for i := uint32(1); i <= 3; i++ {
		if err := tr.Send(Packet{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Pending() != 3 {
		t.Fatalf("Pending = %d", tr.Pending())
	}
	for i := uint32(1); i <= 3; i++ {
		p, ok, err := tr.Recv()
		if err != nil || !ok || p.Seq != i {
			t.Fatalf("Recv %d: %+v %v %v", i, p, ok, err)
		}
	}
	if _, ok, _ := tr.Recv(); ok {
		t.Fatal("empty transport returned a packet")
	}
}

func TestUDPTransportEndToEnd(t *testing.T) {
	recv, err := NewUDPReceiver("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	send, err := NewUDPSender(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	want := Packet{Seq: 77, PedalDown: true, Delta: mathx.Vec3{X: 0.001}}
	if err := send.Send(want); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		got, ok, err := recv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if got != want {
				t.Fatalf("got %+v want %+v", got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("datagram never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}
