// Package itp implements an Interoperable Teleoperation Protocol (ITP)
// style datagram format: the UDP-based protocol the RAVEN II master console
// uses to ship the surgeon's incremental motions, foot-pedal state and
// control mode to the robot control software. The format here follows the
// published protocol's structure (sequence number, pedal/mode flags,
// incremental desired pose) without reproducing its exact wire layout,
// which the paper does not depend on.
package itp

import (
	"encoding/binary"
	"fmt"
	"math"

	"ravenguard/internal/mathx"
)

// Magic identifies ITP datagrams ("IT").
const Magic = 0x4954

// PacketLen is the wire size of one ITP datagram: magic, seq, flags,
// reserved, 3 float64 position deltas, 3 float64 instrument-joint deltas
// (roll, wrist pitch, grasp).
const PacketLen = 2 + 4 + 1 + 1 + 3*8 + 3*8

// Flag bits.
const (
	FlagPedalDown = 1 << 0
	FlagStart     = 1 << 1
	FlagEStop     = 1 << 2
)

// Packet is one console-to-robot datagram.
type Packet struct {
	Seq       uint32
	PedalDown bool
	Start     bool
	EStop     bool
	// Delta is the incremental desired end-effector motion, meters.
	Delta mathx.Vec3
	// OriDelta is the incremental desired instrument-joint motion
	// (roll, wrist pitch, grasp), radians.
	OriDelta [3]float64
}

// Encode serialises the packet.
func (p Packet) Encode() [PacketLen]byte {
	var b [PacketLen]byte
	binary.BigEndian.PutUint16(b[0:], Magic)
	binary.BigEndian.PutUint32(b[2:], p.Seq)
	var flags byte
	if p.PedalDown {
		flags |= FlagPedalDown
	}
	if p.Start {
		flags |= FlagStart
	}
	if p.EStop {
		flags |= FlagEStop
	}
	b[6] = flags
	binary.BigEndian.PutUint64(b[8:], math.Float64bits(p.Delta.X))
	binary.BigEndian.PutUint64(b[16:], math.Float64bits(p.Delta.Y))
	binary.BigEndian.PutUint64(b[24:], math.Float64bits(p.Delta.Z))
	for i, v := range p.OriDelta {
		binary.BigEndian.PutUint64(b[32+8*i:], math.Float64bits(v))
	}
	return b
}

// Decode parses a datagram.
func Decode(b []byte) (Packet, error) {
	if len(b) != PacketLen {
		return Packet{}, fmt.Errorf("itp: datagram length %d, want %d", len(b), PacketLen)
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return Packet{}, fmt.Errorf("itp: bad magic %#04x", binary.BigEndian.Uint16(b[0:]))
	}
	var p Packet
	p.Seq = binary.BigEndian.Uint32(b[2:])
	flags := b[6]
	p.PedalDown = flags&FlagPedalDown != 0
	p.Start = flags&FlagStart != 0
	p.EStop = flags&FlagEStop != 0
	p.Delta.X = math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
	p.Delta.Y = math.Float64frombits(binary.BigEndian.Uint64(b[16:]))
	p.Delta.Z = math.Float64frombits(binary.BigEndian.Uint64(b[24:]))
	if !p.Delta.IsFinite() {
		return Packet{}, fmt.Errorf("itp: non-finite delta in datagram seq %d", p.Seq)
	}
	for i := range p.OriDelta {
		v := math.Float64frombits(binary.BigEndian.Uint64(b[32+8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Packet{}, fmt.Errorf("itp: non-finite instrument delta in datagram seq %d", p.Seq)
		}
		p.OriDelta[i] = v
	}
	return p, nil
}
