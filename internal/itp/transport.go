package itp

import (
	"fmt"
	"net"
	"sync"
)

// Sender is the console's side of a datagram channel.
type Sender interface {
	// Send enqueues one datagram toward the robot.
	Send(p Packet) error
	// Close releases transport resources.
	Close() error
}

// Receiver is the robot's side of a datagram channel.
type Receiver interface {
	// Recv dequeues the next pending datagram; ok is false when none is
	// waiting (the control loop then reuses the previous command, exactly
	// as the real software holds state on packet loss).
	Recv() (p Packet, ok bool, err error)
	// Close releases transport resources.
	Close() error
}

// Transport moves ITP datagrams from a console to the control software.
// Two implementations exist: an in-memory queue for deterministic
// simulation, and a real UDP sender/receiver pair for the networked demo
// binaries.
type Transport interface {
	Sender
	Receiver
}

// MemTransport is a deterministic in-process transport. It is safe for
// concurrent use. The queue pops from a head index and rewinds when it
// drains, so the steady send/recv cycle of a control loop reuses one
// backing array instead of allocating per datagram.
type MemTransport struct {
	mu    sync.Mutex
	queue []Packet
	head  int
}

var _ Transport = (*MemTransport)(nil)

// NewMemTransport returns an empty in-memory transport.
func NewMemTransport() *MemTransport { return &MemTransport{} }

// Send implements Transport.
func (t *MemTransport) Send(p Packet) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.head == len(t.queue) {
		t.head, t.queue = 0, t.queue[:0]
	}
	t.queue = append(t.queue, p)
	return nil
}

// Recv implements Transport.
func (t *MemTransport) Recv() (Packet, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.head == len(t.queue) {
		return Packet{}, false, nil
	}
	p := t.queue[t.head]
	t.head++
	if t.head == len(t.queue) {
		t.head, t.queue = 0, t.queue[:0]
	}
	return p, true, nil
}

// Close implements Transport.
func (t *MemTransport) Close() error { return nil }

// Pending returns the number of queued datagrams.
func (t *MemTransport) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queue) - t.head
}

// PendingPackets returns a copy of the queued datagrams in delivery order
// (checkpoint/restore).
func (t *MemTransport) PendingPackets() []Packet {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.head == len(t.queue) {
		return nil
	}
	return append([]Packet(nil), t.queue[t.head:]...)
}

// SetPending replaces the queue with the given datagrams (checkpoint/restore).
func (t *MemTransport) SetPending(ps []Packet) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.head = 0
	t.queue = append(t.queue[:0], ps...)
}

// UDPSender ships ITP datagrams over real UDP (console side).
type UDPSender struct {
	conn *net.UDPConn
}

var _ Sender = (*UDPSender)(nil)

// NewUDPSender dials the robot's ITP endpoint.
func NewUDPSender(addr string) (*UDPSender, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("itp: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("itp: dial %q: %w", addr, err)
	}
	return &UDPSender{conn: conn}, nil
}

// Send ships one datagram.
func (s *UDPSender) Send(p Packet) error {
	buf := p.Encode()
	if _, err := s.conn.Write(buf[:]); err != nil {
		return fmt.Errorf("itp: send: %w", err)
	}
	return nil
}

// Close releases the socket.
func (s *UDPSender) Close() error { return s.conn.Close() }

// UDPReceiver receives ITP datagrams over real UDP (robot side), with a
// non-blocking Recv backed by a reader goroutine.
type UDPReceiver struct {
	conn *net.UDPConn
	mem  *MemTransport
	done chan struct{}
	wg   sync.WaitGroup
}

var _ Receiver = (*UDPReceiver)(nil)

// NewUDPReceiver listens on addr (e.g. ":36000").
func NewUDPReceiver(addr string) (*UDPReceiver, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("itp: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("itp: listen %q: %w", addr, err)
	}
	r := &UDPReceiver{conn: conn, mem: NewMemTransport(), done: make(chan struct{})}
	r.wg.Add(1)
	go r.readLoop()
	return r, nil
}

func (r *UDPReceiver) readLoop() {
	defer r.wg.Done()
	buf := make([]byte, 2*PacketLen)
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.done:
				return
			default:
				// Transient error on a live socket: keep serving.
				continue
			}
		}
		p, err := Decode(buf[:n])
		if err != nil {
			continue // malformed datagrams are dropped, as UDP services do
		}
		// Send on MemTransport cannot fail.
		_ = r.mem.Send(p)
	}
}

// Recv dequeues the next datagram if one arrived.
func (r *UDPReceiver) Recv() (Packet, bool, error) { return r.mem.Recv() }

// Addr returns the bound local address.
func (r *UDPReceiver) Addr() net.Addr { return r.conn.LocalAddr() }

// Close stops the reader and releases the socket.
func (r *UDPReceiver) Close() error {
	close(r.done)
	err := r.conn.Close()
	r.wg.Wait()
	return err
}
