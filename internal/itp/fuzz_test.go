package itp

import (
	"math/rand"
	"testing"
)

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	accepted := 0
	for i := 0; i < 5000; i++ {
		n := rng.Intn(2 * PacketLen)
		buf := make([]byte, n)
		rng.Read(buf)
		if _, err := Decode(buf); err == nil {
			accepted++
		}
	}
	// Random bytes essentially never carry the magic; the decoder must be
	// strict (a handful of lucky magics with finite floats may pass).
	if accepted > 5 {
		t.Fatalf("decoder accepted %d/5000 random buffers", accepted)
	}
}

func TestDecodeTruncatedValidPacket(t *testing.T) {
	p := Packet{Seq: 1, PedalDown: true}
	buf := p.Encode()
	for n := 0; n < PacketLen; n++ {
		if _, err := Decode(buf[:n]); err == nil {
			t.Fatalf("truncated packet of %d bytes accepted", n)
		}
	}
}
