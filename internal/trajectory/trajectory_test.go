package trajectory

import (
	"math"
	"testing"

	"ravenguard/internal/mathx"
)

func all() []Trajectory {
	return []Trajectory{
		Circle{Radius: 0.01, Freq: 0.25},
		Line{Dir: mathx.Vec3{X: 1, Y: 1}, Amp: 0.012, Freq: 0.2},
		Lissajous{Amp: mathx.Vec3{X: 0.008, Y: 0.008, Z: 0.006},
			Freq: mathx.Vec3{X: 0.23, Y: 0.31, Z: 0.17}},
		Spiral{Radius: 0.008, Freq: 0.3, Rate: 0.001, Depth: 0.01},
		NewSumOfSines(7, 0.01, 5),
		Rest{},
	}
}

func TestStartsNearZero(t *testing.T) {
	for _, tr := range all() {
		if d := tr.Pos(0).Norm(); d > 1e-9 {
			t.Errorf("%s: Pos(0) = %v m from origin", tr.Name(), d)
		}
	}
}

func TestBoundedDisplacement(t *testing.T) {
	// Teleop integrates these displacements on top of the home pose; they
	// must stay small enough to remain inside the workspace (< 25 mm).
	for _, tr := range all() {
		worst := 0.0
		for ts := 0.0; ts < 120; ts += 0.05 {
			if d := tr.Pos(ts).Norm(); d > worst {
				worst = d
			}
		}
		if worst > 0.025 {
			t.Errorf("%s: max displacement %.1f mm exceeds 25 mm", tr.Name(), worst*1e3)
		}
	}
}

func TestSurgicalTipSpeeds(t *testing.T) {
	// Tip speeds must stay in a plausible surgical band (< 60 mm/s).
	for _, tr := range all() {
		worst := 0.0
		dt := 1e-3
		for ts := 0.0; ts < 30; ts += 0.01 {
			v := tr.Pos(ts+dt).Sub(tr.Pos(ts)).Norm() / dt
			if v > worst {
				worst = v
			}
		}
		if worst > 0.060 {
			t.Errorf("%s: max tip speed %.1f mm/s exceeds 60 mm/s", tr.Name(), worst*1e3)
		}
	}
}

func TestContinuity(t *testing.T) {
	// No jumps: successive millisecond samples move < 0.25 mm.
	for _, tr := range all() {
		for ts := 0.0; ts < 20; ts += 1e-3 {
			step := tr.Pos(ts + 1e-3).Sub(tr.Pos(ts)).Norm()
			if step > 0.00025 {
				t.Fatalf("%s: %v m step at t=%v", tr.Name(), step, ts)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, tr := range all() {
		a, b := tr.Pos(12.345), tr.Pos(12.345)
		if a != b {
			t.Errorf("%s: nondeterministic Pos", tr.Name())
		}
	}
}

func TestSumOfSinesSeedsDiffer(t *testing.T) {
	a := NewSumOfSines(1, 0.01, 4)
	b := NewSumOfSines(2, 0.01, 4)
	if a.Pos(5) == b.Pos(5) {
		t.Fatal("different seeds gave identical trajectories")
	}
	c := NewSumOfSines(1, 0.01, 4)
	if a.Pos(5) != c.Pos(5) {
		t.Fatal("same seed gave different trajectories")
	}
}

func TestSumOfSinesDefaultTerms(t *testing.T) {
	tr := NewSumOfSines(3, 0.01, 0)
	if tr.Pos(1).Norm() == 0 {
		t.Fatal("zero terms produced a dead trajectory")
	}
}

func TestCircleRadius(t *testing.T) {
	c := Circle{Radius: 0.01, Freq: 0.25}
	// Max displacement from start is the diameter.
	worst := 0.0
	for ts := 0.0; ts < 4; ts += 0.01 {
		if d := c.Pos(ts).Norm(); d > worst {
			worst = d
		}
	}
	if math.Abs(worst-0.02) > 1e-3 {
		t.Fatalf("circle max displacement = %v, want ~diameter 0.02", worst)
	}
}

func TestSpiralDepthCap(t *testing.T) {
	s := Spiral{Radius: 0.005, Freq: 0.3, Rate: 0.002, Depth: 0.008}
	if z := s.Pos(100).Z; math.Abs(z+0.008) > 1e-9 {
		t.Fatalf("spiral depth at t=100 is %v, want capped at -0.008", z)
	}
}

func TestStandardReturnsTwo(t *testing.T) {
	st := Standard()
	if len(st) != 2 {
		t.Fatalf("Standard() returned %d trajectories, want the paper's 2", len(st))
	}
	if st[0].Name() == st[1].Name() {
		t.Fatal("training trajectories must differ")
	}
}
