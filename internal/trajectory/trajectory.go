// Package trajectory generates the surgical-motion profiles the master
// console emulator replays. The paper's evaluation framework replaced the
// human operator with "previously collected trajectories of surgical
// movements"; with no such recordings available we synthesise motions with
// the same character — smooth, low-speed (5–20 mm/s tip speed), with
// variability across runs — using seeded generators so every run is
// reproducible.
//
// A Trajectory maps time to a tip displacement relative to the pose at
// which teleoperation began; the console differentiates it into the
// per-cycle incremental deltas the ITP protocol carries.
package trajectory

import (
	"fmt"
	"math"
	"math/rand"

	"ravenguard/internal/mathx"
)

// Trajectory is a time-parameterised tip displacement (meters) from the
// teleoperation start pose. Implementations must be deterministic:
// Pos(t) depends only on t.
type Trajectory interface {
	// Pos returns the displacement at time t seconds. Pos(0) should be
	// (near) zero so teleoperation starts without a step.
	Pos(t float64) mathx.Vec3
	// Name identifies the profile in experiment reports.
	Name() string
}

// Circle traces a circle of Radius meters in the XY plane at Freq Hz,
// a stand-in for circular dissection motions.
type Circle struct {
	Radius float64
	Freq   float64
}

var _ Trajectory = Circle{}

// Pos implements Trajectory.
func (c Circle) Pos(t float64) mathx.Vec3 {
	w := 2 * math.Pi * c.Freq * t
	// Offset so Pos(0) = 0: circle around (-R, 0).
	return mathx.Vec3{
		X: c.Radius * (math.Cos(w) - 1),
		Y: c.Radius * math.Sin(w),
	}
}

// Name implements Trajectory.
func (c Circle) Name() string { return fmt.Sprintf("circle(r=%.0fmm)", c.Radius*1e3) }

// Line sweeps back and forth along Dir with amplitude Amp meters at Freq
// Hz (sinusoidal), a stand-in for retraction strokes.
type Line struct {
	Dir  mathx.Vec3
	Amp  float64
	Freq float64
}

var _ Trajectory = Line{}

// Pos implements Trajectory.
func (l Line) Pos(t float64) mathx.Vec3 {
	s := l.Amp * math.Sin(2*math.Pi*l.Freq*t)
	return l.Dir.Unit().Scale(s)
}

// Name implements Trajectory.
func (l Line) Name() string { return fmt.Sprintf("line(a=%.0fmm)", l.Amp*1e3) }

// Lissajous weaves a 3-D Lissajous figure, a stand-in for suturing loops:
// incommensurate frequencies per axis give non-repeating coverage.
type Lissajous struct {
	Amp  mathx.Vec3 // per-axis amplitude, meters
	Freq mathx.Vec3 // per-axis frequency, Hz
}

var _ Trajectory = Lissajous{}

// Pos implements Trajectory.
func (l Lissajous) Pos(t float64) mathx.Vec3 {
	return mathx.Vec3{
		X: l.Amp.X * math.Sin(2*math.Pi*l.Freq.X*t),
		Y: l.Amp.Y * math.Sin(2*math.Pi*l.Freq.Y*t),
		Z: l.Amp.Z * (math.Cos(2*math.Pi*l.Freq.Z*t) - 1),
	}
}

// Name implements Trajectory.
func (l Lissajous) Name() string { return "lissajous" }

// Spiral descends along -Z while circling, a stand-in for tissue
// dissection at increasing depth.
type Spiral struct {
	Radius float64 // circle radius, meters
	Freq   float64 // revolutions per second
	Rate   float64 // descent, meters per second
	Depth  float64 // maximum descent, meters
}

var _ Trajectory = Spiral{}

// Pos implements Trajectory.
func (s Spiral) Pos(t float64) mathx.Vec3 {
	w := 2 * math.Pi * s.Freq * t
	z := s.Rate * t
	if z > s.Depth {
		z = s.Depth
	}
	return mathx.Vec3{
		X: s.Radius * (math.Cos(w) - 1),
		Y: s.Radius * math.Sin(w),
		Z: -z,
	}
}

// Name implements Trajectory.
func (s Spiral) Name() string { return "spiral" }

// SumOfSines is a seeded pseudo-random smooth motion: each axis is a sum
// of NumTerms sinusoids with random frequencies in [MinFreq, MaxFreq] and
// random phases, normalised to the requested amplitude. It provides the
// "sufficient variability in the movement" the paper wanted in its
// threshold-training trajectories.
type SumOfSines struct {
	name string
	amp  [3][]float64
	freq [3][]float64
	ph   [3][]float64
}

var _ Trajectory = (*SumOfSines)(nil)

// NewSumOfSines builds a random smooth trajectory with per-axis amplitude
// bound amp (meters) from the given seed.
func NewSumOfSines(seed int64, amp float64, terms int) *SumOfSines {
	if terms <= 0 {
		terms = 4
	}
	rng := rand.New(rand.NewSource(seed))
	s := &SumOfSines{name: fmt.Sprintf("sum-of-sines(seed=%d)", seed)}
	for axis := 0; axis < 3; axis++ {
		amps := make([]float64, terms)
		freqs := make([]float64, terms)
		phases := make([]float64, terms)
		total := 0.0
		for i := 0; i < terms; i++ {
			amps[i] = 0.2 + rng.Float64()
			freqs[i] = 0.05 + 0.4*rng.Float64() // 0.05–0.45 Hz
			phases[i] = 2 * math.Pi * rng.Float64()
			total += amps[i]
		}
		for i := range amps {
			amps[i] *= amp / total
		}
		s.amp[axis] = amps
		s.freq[axis] = freqs
		s.ph[axis] = phases
	}
	return s
}

// Pos implements Trajectory.
func (s *SumOfSines) Pos(t float64) mathx.Vec3 {
	var out [3]float64
	for axis := 0; axis < 3; axis++ {
		for i := range s.amp[axis] {
			w := 2*math.Pi*s.freq[axis][i]*t + s.ph[axis][i]
			// Subtract the phase-only term so Pos(0) = 0.
			out[axis] += s.amp[axis][i] * (math.Sin(w) - math.Sin(s.ph[axis][i]))
		}
	}
	return mathx.Vec3{X: out[0], Y: out[1], Z: out[2]}
}

// Name implements Trajectory.
func (s *SumOfSines) Name() string { return s.name }

// OriProfile is a time-parameterised instrument-wrist motion: displacement
// of (roll, wrist pitch, grasp) in radians from the teleoperation start
// pose. Like Trajectory, implementations must be deterministic.
type OriProfile interface {
	// Ori returns the instrument-joint displacement at time t seconds.
	Ori(t float64) [3]float64
	// Name identifies the profile.
	Name() string
}

// WristWeave is a smooth periodic wrist motion: the surgeon rolls and
// pitches the instrument while working the grasper — the traffic that
// makes the wrist DAC channels flicker in the paper's Figure 5.
type WristWeave struct {
	RollAmp, PitchAmp, GraspAmp float64 // radians
	Freq                        float64 // Hz
}

var _ OriProfile = WristWeave{}

// Ori implements OriProfile.
func (wv WristWeave) Ori(t float64) [3]float64 {
	w := 2 * math.Pi * wv.Freq * t
	return [3]float64{
		wv.RollAmp * math.Sin(w),
		wv.PitchAmp * math.Sin(1.31*w+0.4),
		wv.GraspAmp * 0.5 * (1 - math.Cos(0.77*w)),
	}
}

// Name implements OriProfile.
func (wv WristWeave) Name() string { return "wrist-weave" }

// StandardWrist returns the default instrument motion used in sessions.
func StandardWrist() OriProfile {
	return WristWeave{RollAmp: 0.6, PitchAmp: 0.35, GraspAmp: 0.5, Freq: 0.15}
}

// RestWrist holds the instrument still.
type RestWrist struct{}

var _ OriProfile = RestWrist{}

// Ori implements OriProfile.
func (RestWrist) Ori(float64) [3]float64 { return [3]float64{} }

// Name implements OriProfile.
func (RestWrist) Name() string { return "rest-wrist" }

// Rest holds perfectly still; useful as a control workload.
type Rest struct{}

var _ Trajectory = Rest{}

// Pos implements Trajectory.
func (Rest) Pos(float64) mathx.Vec3 { return mathx.Vec3{} }

// Name implements Trajectory.
func (Rest) Name() string { return "rest" }

// Standard returns the two training trajectories the threshold learner uses
// (the paper trained on "two different trajectories containing sufficient
// variability"), plus extras for evaluation diversity.
func Standard() []Trajectory {
	return []Trajectory{
		Circle{Radius: 0.010, Freq: 0.1},
		Lissajous{
			Amp:  mathx.Vec3{X: 0.008, Y: 0.008, Z: 0.006},
			Freq: mathx.Vec3{X: 0.11, Y: 0.13, Z: 0.07},
		},
	}
}
