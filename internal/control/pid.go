// Package control implements the RAVEN II control software: the 1 kHz loop
// that turns operator commands into DAC values through the kinematic chain
// of paper Figure 2 (pos_d -> inverse kinematics -> jpos_d -> mpos_d -> PID
// -> DAC), plus the robot's built-in safety mechanisms — the pre-write DAC
// threshold check, the joint-limit check, and the square-wave watchdog to
// the PLC. The safety checks run at the latest computation step before the
// USB write, which is exactly the TOCTOU gap the paper's attacks exploit.
package control

import "ravenguard/internal/mathx"

// PIDGains parameterise one motor-position loop.
type PIDGains struct {
	Kp float64 // N m per rad of motor position error
	Ki float64 // N m per rad-second of integrated error
	Kd float64 // N m per rad/s of error rate
	// IntegralClamp bounds the integral torque contribution, N m.
	IntegralClamp float64
	// DerivRC is the time constant of the first-order low-pass on the
	// derivative term, seconds. Encoder feedback is quantised, so an
	// unfiltered derivative turns each count transition into a torque
	// spike. Zero disables filtering.
	DerivRC float64
}

// PID is a discrete PID controller producing motor torque from motor
// position error. The zero value is unusable; use NewPID.
type PID struct {
	gains    PIDGains
	integral float64 // integral torque contribution, N m
	prevErr  float64
	deriv    float64 // filtered error rate, rad/s
	primed   bool    // prevErr valid (skip D-kick on first sample)
}

// NewPID returns a controller with the given gains.
func NewPID(gains PIDGains) *PID { return &PID{gains: gains} }

// Update advances the controller by dt with the given position error
// (desired - measured, rad) and returns the torque command in N m.
func (c *PID) Update(err, dt float64) float64 {
	c.integral += c.gains.Ki * err * dt
	c.integral = mathx.Clamp(c.integral, -c.gains.IntegralClamp, c.gains.IntegralClamp)

	if c.primed && dt > 0 {
		raw := (err - c.prevErr) / dt
		if c.gains.DerivRC > 0 {
			alpha := dt / (dt + c.gains.DerivRC)
			c.deriv += alpha * (raw - c.deriv)
		} else {
			c.deriv = raw
		}
	}
	c.prevErr = err
	c.primed = true

	return c.gains.Kp*err + c.integral + c.gains.Kd*c.deriv
}

// Reset clears the controller's state (on E-STOP or mode change).
func (c *PID) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.deriv = 0
	c.primed = false
}

// Integral exposes the current integral contribution for diagnostics.
func (c *PID) Integral() float64 { return c.integral }
