package control

import (
	"fmt"
	"math"

	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/mathx"
	"ravenguard/internal/motor"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
	"ravenguard/internal/wrist"
)

// Period is the control loop period: the RAVEN II operational cycle is
// 1 millisecond.
const Period = 1e-3

// WatchdogHalfPeriodTicks is how many control cycles pass between watchdog
// bit toggles (10 ms half-period square wave).
const WatchdogHalfPeriodTicks = 10

// Input is one cycle's operator command, already parsed from the ITP
// packet: an incremental Cartesian motion plus pedal and button states.
// This is the data attack scenario A corrupts after receipt.
type Input struct {
	// Delta is the desired incremental end-effector motion this cycle,
	// meters.
	Delta mathx.Vec3
	// OriDelta is the desired incremental instrument-joint motion this
	// cycle (roll, wrist pitch, grasp), radians.
	OriDelta [3]float64
	// PedalDown is the foot-pedal state.
	PedalDown bool
	// StartButton is the physical start button (takes the robot out of
	// E-STOP).
	StartButton bool
	// EStopButton is the physical emergency-stop button.
	EStopButton bool
}

// Config parameterises the controller.
type Config struct {
	// Gains per positioning motor. Zero selects DefaultGains.
	Gains [kinematics.NumJoints]PIDGains
	// DACLimits are the software safety thresholds on |DAC| per motor
	// channel; the paper's "pre-defined thresholds [that] ensure the
	// motors and arm joints do not move beyond their safety limits".
	// Zero selects per-channel defaults sitting ~15-30% above the worst
	// fault-free command on each axis.
	DACLimits [kinematics.NumJoints]int16
	// Limits is the joint-space workspace. Zero selects the default.
	Limits kinematics.Limits
	// Bank holds the motor channel constants.
	Bank motor.Bank
	// Trans is the nominal transmission used for unit conversion.
	Trans kinematics.Transmission
	// HomingDuration is the length of the Init ramp in seconds (default 2).
	HomingDuration float64
	// MaxDeltaPerTick clamps the per-cycle Cartesian increment (meters);
	// incremental teleoperation protocols bound each step (default 0.5 mm).
	MaxDeltaPerTick float64
	// TrigDrift, when non-nil, returns the additive error corrupting the
	// control software's trigonometric evaluations at time t (seconds) —
	// the fault point of the Table I math-library attack. nil means an
	// uncompromised math library.
	TrigDrift func(t float64) float64
	// SafetyChecksOff disables the built-in software safety checks. Used
	// ONLY by the evaluation harness to measure an attack's counterfactual
	// physical impact (the ground truth detectors are scored against) —
	// never in a deployed configuration.
	SafetyChecksOff bool
}

// DefaultGains returns PID gains tuned for the default dynamics: a ~10 Hz
// position loop per motor, gravity held mostly by feedforward with the
// integrator trimming model mismatch.
func DefaultGains() [kinematics.NumJoints]PIDGains {
	return [kinematics.NumJoints]PIDGains{
		kinematics.Shoulder: {Kp: 0.25, Ki: 2, Kd: 0.004, IntegralClamp: 0.06, DerivRC: 0.008},
		kinematics.Elbow:    {Kp: 0.25, Ki: 2, Kd: 0.004, IntegralClamp: 0.06, DerivRC: 0.008},
		kinematics.Insert:   {Kp: 0.03, Ki: 0.3, Kd: 0.0004, IntegralClamp: 0.02, DerivRC: 0.008},
	}
}

func (c *Config) applyDefaults() {
	if c.Gains == ([kinematics.NumJoints]PIDGains{}) {
		c.Gains = DefaultGains()
	}
	if c.DACLimits == ([kinematics.NumJoints]int16{}) {
		c.DACLimits = [kinematics.NumJoints]int16{20000, 13000, 9000}
	}
	zero := kinematics.Limits{}
	if c.Limits == zero {
		c.Limits = kinematics.DefaultLimits()
	}
	if c.Bank == (motor.Bank{}) {
		c.Bank = motor.DefaultBank()
	}
	if c.Trans == (kinematics.Transmission{}) {
		c.Trans = kinematics.DefaultTransmission()
	}
	if c.HomingDuration == 0 {
		c.HomingDuration = 2.0
	}
	if c.MaxDeltaPerTick == 0 {
		c.MaxDeltaPerTick = 0.0005
	}
}

// Output is everything one control cycle produced, for observers
// (experiment harness, detectors, logs).
type Output struct {
	State      statemachine.State
	DAC        [usb.NumChannels]int16
	Unsafe     bool   // software safety check failed this cycle
	UnsafeWhy  string // cause, when Unsafe
	Watchdog   bool   // watchdog bit value written
	JposD      kinematics.JointPos
	MposD      kinematics.MotorPos
	JposEst    kinematics.JointPos // estimate from encoder feedback
	MposEst    kinematics.MotorPos
	TipDesired mathx.Vec3
	Wrote      bool // a command frame was pushed down the write chain
}

// Controller is the RAVEN control software node. Not safe for concurrent
// use; the simulation loop owns it.
type Controller struct {
	cfg   Config //ravenlint:snapshot-ignore configuration, fixed after NewController
	sm    *statemachine.Machine
	pids  [kinematics.NumJoints]*PID
	chain *interpose.Chain //ravenlint:snapshot-ignore write-chain wiring; chain stats captured by the rig

	jposD     kinematics.JointPos
	havePose  bool
	homeFrom  kinematics.JointPos
	homeT     float64
	seq       byte
	tick      int
	watchdog  bool
	unsafeHit bool // latched: stop petting the watchdog

	grav     GravityModel //ravenlint:snapshot-ignore gravity model installed during assembly, fixed during a run
	gravSet  bool         //ravenlint:snapshot-ignore set with grav during assembly
	ikFails  int
	wristCtl *wrist.Controller
	wristSet bool // wrist setpoint initialised from feedback

	// safetyTrips counts DAC-limit and joint-limit violations the software
	// checks caught: this is the RAVEN baseline detector's alarm signal.
	safetyTrips int

	// sanitized counts non-finite operator-input fields zeroed before use;
	// a NaN delta integrated into the setpoint would poison the whole
	// kinematic chain, so corrupt inputs degrade to "no motion" instead.
	sanitized int

	// frameBuf backs the command frame handed to the write chain each
	// tick; keeping it on the struct keeps Tick allocation-free.
	frameBuf [usb.CommandLen]byte //ravenlint:snapshot-ignore per-tick scratch, fully rewritten before use

	tip tipMemo //ravenlint:snapshot-ignore pure memo of kinematics.Forward(jposD), key-checked before every use
}

// tipMemo caches the forward-kinematics solution at the current setpoint,
// keyed on the exact jposD bits. Tick needs the desired tip every cycle
// and updateTeleop needs it again at the pre-update setpoint, but the
// setpoint only changes while the machine is driving — E-STOP and
// Pedal-Up hold cycles, and the post-update evaluation in teleop, hit the
// memo instead of re-running the trigonometric chain. Valid across
// snapshot restore without being captured: the key comparison re-derives
// or reuses the identical Forward value either way.
type tipMemo struct {
	key   kinematics.JointPos
	val   mathx.Vec3
	valid bool
}

// tipForward returns kinematics.Forward(c.jposD) through the memo.
//
//ravenlint:noalloc
func (c *Controller) tipForward() mathx.Vec3 {
	if !c.tip.valid || c.jposD != c.tip.key {
		c.tip.key = c.jposD
		c.tip.val = kinematics.Forward(c.jposD)
		c.tip.valid = true
	}
	return c.tip.val
}

// NewController builds the control node writing frames into chain.
func NewController(cfg Config, chain *interpose.Chain) (*Controller, error) {
	cfg.applyDefaults()
	if err := cfg.Bank.Validate(); err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}
	if chain == nil {
		return nil, fmt.Errorf("control: nil write chain")
	}
	ctrl := &Controller{
		cfg:      cfg,
		sm:       statemachine.New(),
		chain:    chain,
		wristCtl: wrist.NewController(),
	}
	for i := range ctrl.pids {
		ctrl.pids[i] = NewPID(cfg.Gains[i])
	}
	return ctrl, nil
}

// State exposes the operational state machine's current state.
func (c *Controller) State() statemachine.State { return c.sm.State() }

// SafetyTrips returns how many times the built-in software checks fired.
func (c *Controller) SafetyTrips() int { return c.safetyTrips }

// SanitizedInputs returns how many non-finite operator-input fields were
// zeroed before use.
func (c *Controller) SanitizedInputs() int { return c.sanitized }

// sanitizeInput zeroes non-finite motion fields in place and returns how
// many fields were corrupt. Every transport into the controller is supposed
// to reject non-finite values already (itp.Decode does); this is the last
// line of defense for hooks and fault injectors that bypass the decoders.
func sanitizeInput(in *Input) int {
	n := 0
	if !in.Delta.IsFinite() {
		in.Delta = mathx.Vec3{}
		n++
	}
	for i, v := range in.OriDelta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			in.OriDelta[i] = 0
			n++
		}
	}
	return n
}

// DesiredJoints returns the current joint-space setpoint.
func (c *Controller) DesiredJoints() kinematics.JointPos { return c.jposD }

// HomePose returns the pose the Init phase drives to.
func (c *Controller) HomePose() kinematics.JointPos { return c.cfg.Limits.Center() }

// GravityModel is the nominal gravity feedforward table: torque on joint i
// is Const*sin(pos+Phase) when Sin, else the constant Const.
type GravityModel struct {
	Const [kinematics.NumJoints]float64
	Phase [kinematics.NumJoints]float64
	Sin   [kinematics.NumJoints]bool
}

// SetGravity installs the nominal gravity model used for feedforward.
func (c *Controller) SetGravity(m GravityModel) { c.grav = m; c.gravSet = true }

// Tick runs one control cycle: consume the operator input, read encoder
// feedback from the board, run the kinematic chain and safety checks, and
// write the command frame down the interposition chain. estopFromPLC forces
// the machine into E-STOP (the PLC latched).
func (c *Controller) Tick(in Input, feedback usb.Feedback, estopFromPLC bool) Output {
	c.tick++
	c.sanitized += sanitizeInput(&in)
	c.driveStateMachine(in, estopFromPLC)

	st := c.sm.State()
	out := Output{State: st}

	// Feedback: encoder counts -> motor positions -> joint estimates.
	var mposEst kinematics.MotorPos
	for i := 0; i < kinematics.NumJoints; i++ {
		mposEst[i] = c.cfg.Bank[i].AngleFromCounts(feedback.Encoder[i])
	}
	jposEst := c.cfg.Trans.ToJoint(mposEst)
	out.MposEst = mposEst
	out.JposEst = jposEst

	if !c.havePose {
		// First cycle: adopt the measured pose as the setpoint so the arm
		// does not lurch at power-on.
		c.jposD = jposEst
		c.havePose = true
	}

	// Desired-pose update by state.
	switch st {
	case statemachine.Init:
		c.updateHoming(jposEst)
	case statemachine.PedalDown:
		c.updateTeleop(in)
	default:
		// E-STOP / Pedal Up: hold the current setpoint.
	}

	out.JposD = c.jposD
	out.TipDesired = c.tipForward()
	mposD := c.cfg.Trans.ToMotor(c.jposD)
	out.MposD = mposD

	// Instrument wrist: decode its encoder channels and track the
	// operator's orientation deltas (Pedal Down only).
	var wristMeas [wrist.NumJoints]float64
	for i := 0; i < wrist.NumJoints; i++ {
		wristMeas[i] = wrist.AngleFromCounts(feedback.Encoder[kinematics.NumJoints+i])
	}
	if !c.wristSet {
		c.wristCtl.SetSetpoint(wristMeas)
		c.wristSet = true
	}
	if st == statemachine.PedalDown {
		c.wristCtl.Track(in.OriDelta)
	}

	// PID per motor plus gravity feedforward; PD servos on the wrist.
	var dac [usb.NumChannels]int16
	driving := st == statemachine.PedalDown || st == statemachine.Init
	if driving {
		for i := 0; i < kinematics.NumJoints; i++ {
			torque := c.pids[i].Update(mposD[i]-mposEst[i], Period)
			torque += c.gravityFeedforward(i)
			dac[i] = c.cfg.Bank[i].TorqueToDAC(torque)
		}
		wristDAC := c.wristCtl.Update(wristMeas, Period)
		for i := 0; i < wrist.NumJoints; i++ {
			dac[kinematics.NumJoints+i] = wristDAC[i]
		}
	} else {
		for i := range c.pids {
			c.pids[i].Reset()
		}
	}

	// --- RAVEN's built-in software safety checks (time of check) ---
	unsafe, why := false, ""
	if !c.cfg.SafetyChecksOff {
		unsafe, why = c.safetyCheck(dac)
	}
	if unsafe {
		c.safetyTrips++
		c.unsafeHit = true
		out.Unsafe = true
		out.UnsafeWhy = why
		dac = [usb.NumChannels]int16{} // command zeros
		c.sm.Apply(statemachine.EvEStop)
		st = c.sm.State()
		out.State = st
	}

	// Watchdog: toggle periodically unless an unsafe command latched.
	if !c.unsafeHit && c.tick%WatchdogHalfPeriodTicks == 0 {
		c.watchdog = !c.watchdog
	}
	out.Watchdog = c.watchdog

	// Compose and write the command frame (time of use). Anything living
	// on the write chain — the paper's malicious wrapper, or the
	// dynamic-model guard — sees this frame.
	c.seq++
	cmd := usb.Command{
		StateNibble: st.Nibble(),
		Watchdog:    c.watchdog,
		Seq:         c.seq,
		DAC:         dac,
	}
	c.frameBuf = cmd.Encode()
	if err := c.chain.Write(c.frameBuf[:]); err == nil {
		out.Wrote = true
	}
	out.DAC = dac
	return out
}

// driveStateMachine applies this cycle's events.
func (c *Controller) driveStateMachine(in Input, estopFromPLC bool) {
	if in.EStopButton || estopFromPLC {
		c.sm.Apply(statemachine.EvEStop)
		return
	}
	if in.StartButton && c.sm.State() == statemachine.EStop {
		c.sm.Apply(statemachine.EvStartButton)
		c.homeT = 0
		c.homeFrom = c.jposD
		c.unsafeHit = false
		for i := range c.pids {
			c.pids[i].Reset()
		}
	}
	if c.sm.State() == statemachine.PedalUp && in.PedalDown {
		c.sm.Apply(statemachine.EvPedalPress)
	}
	if c.sm.State() == statemachine.PedalDown && !in.PedalDown {
		c.sm.Apply(statemachine.EvPedalRelease)
	}
}

// updateHoming ramps the setpoint from the power-on pose to the home pose.
func (c *Controller) updateHoming(jposEst kinematics.JointPos) {
	if c.homeT == 0 {
		c.homeFrom = jposEst
	}
	c.homeT += Period
	frac := c.homeT / c.cfg.HomingDuration
	if frac >= 1 {
		c.jposD = c.HomePose()
		c.sm.Apply(statemachine.EvHomingDone)
		return
	}
	// Smoothstep ramp avoids acceleration spikes at the ends.
	s := frac * frac * (3 - 2*frac)
	home := c.HomePose()
	for i := 0; i < kinematics.NumJoints; i++ {
		c.jposD[i] = mathx.Lerp(c.homeFrom[i], home[i], s)
	}
}

// updateTeleop integrates the operator's incremental motion into the
// desired pose, going through IK and clamping to the workspace.
func (c *Controller) updateTeleop(in Input) {
	delta := in.Delta
	if n := delta.Norm(); n > c.cfg.MaxDeltaPerTick {
		delta = delta.Scale(c.cfg.MaxDeltaPerTick / n)
	}
	drift := 0.0
	if c.cfg.TrigDrift != nil {
		drift = c.cfg.TrigDrift(float64(c.tick) * Period)
	}
	// ForwardWithTrigDrift(jp, 0) is Forward(jp) by construction (pinned
	// in kinematics/drift_test.go), so an uncompromised math library can
	// take the memoised tip from the end of the previous cycle.
	var target mathx.Vec3
	if drift == 0 {
		target = c.tipForward().Add(delta)
	} else {
		target = kinematics.ForwardWithTrigDrift(c.jposD, drift).Add(delta)
	}
	jp, err := kinematics.InverseWithTrigDrift(target, drift)
	if err != nil {
		// Unreachable target: hold pose. (The "IK-fail" impact of the
		// sin/cos drift attack in Table I surfaces as a stream of these.)
		c.ikFails++
		return
	}
	c.jposD = c.cfg.Limits.Clamp(jp)
}

// safetyCheck reproduces RAVEN's pre-write checks: DAC magnitude against a
// fixed threshold and the desired joints against the workspace.
func (c *Controller) safetyCheck(dac [usb.NumChannels]int16) (bool, string) {
	for i := 0; i < kinematics.NumJoints; i++ {
		if dac[i] > c.cfg.DACLimits[i] || dac[i] < -c.cfg.DACLimits[i] {
			return true, fmt.Sprintf("DAC channel %d value %d exceeds threshold %d", i, dac[i], c.cfg.DACLimits[i])
		}
	}
	if !c.cfg.Limits.Contains(c.jposD) {
		return true, fmt.Sprintf("desired joints %v outside workspace", c.jposD)
	}
	return false, ""
}

// gravityFeedforward computes the nominal gravity-compensation torque for
// motor i at the current setpoint.
func (c *Controller) gravityFeedforward(i int) float64 {
	if !c.gravSet {
		return 0
	}
	g := c.grav.Const[i]
	if c.grav.Sin[i] {
		g = c.grav.Const[i] * math.Sin(c.jposD[i]+c.grav.Phase[i])
	}
	return g / c.cfg.Trans.Ratio[i]
}

// IKFails returns how many teleop cycles failed inverse kinematics.
func (c *Controller) IKFails() int { return c.ikFails }

// State is the controller's mutable state, for checkpoint/restore: the
// setpoint integrator, homing ramp, state machine, PID and wrist-servo
// internals, and the diagnostic counters. Configuration (gains, limits,
// gravity model, TrigDrift) stays with the target controller, so a clean
// fork of an attacked prefix keeps its own uncompromised configuration.
type State struct {
	JposD       kinematics.JointPos
	HavePose    bool
	HomeFrom    kinematics.JointPos
	HomeT       float64
	Seq         byte
	Tick        int
	Watchdog    bool
	UnsafeHit   bool
	IKFails     int
	WristSet    bool
	SafetyTrips int
	Sanitized   int
	SM          statemachine.Machine
	PIDs        [kinematics.NumJoints]PID
	Wrist       wrist.Controller
}

// CaptureState returns the controller's mutable state.
func (c *Controller) CaptureState() State {
	s := State{
		JposD: c.jposD, HavePose: c.havePose, HomeFrom: c.homeFrom, HomeT: c.homeT,
		Seq: c.seq, Tick: c.tick, Watchdog: c.watchdog, UnsafeHit: c.unsafeHit,
		IKFails: c.ikFails, WristSet: c.wristSet,
		SafetyTrips: c.safetyTrips, Sanitized: c.sanitized,
		SM: *c.sm, Wrist: *c.wristCtl,
	}
	for i := range c.pids {
		s.PIDs[i] = *c.pids[i]
	}
	return s
}

// RestoreState rewinds the controller to a captured state.
func (c *Controller) RestoreState(s State) {
	c.jposD, c.havePose, c.homeFrom, c.homeT = s.JposD, s.HavePose, s.HomeFrom, s.HomeT
	c.seq, c.tick, c.watchdog, c.unsafeHit = s.Seq, s.Tick, s.Watchdog, s.UnsafeHit
	c.ikFails, c.wristSet = s.IKFails, s.WristSet
	c.safetyTrips, c.sanitized = s.SafetyTrips, s.Sanitized
	*c.sm = s.SM
	*c.wristCtl = s.Wrist
	for i := range c.pids {
		*c.pids[i] = s.PIDs[i]
	}
}
