package control

import (
	"math"
	"strings"
	"testing"

	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/mathx"
	"ravenguard/internal/motor"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
)

func TestPIDProportional(t *testing.T) {
	pid := NewPID(PIDGains{Kp: 2})
	if got := pid.Update(0.5, 1e-3); got != 1.0 {
		t.Fatalf("P-only output = %v, want 1.0", got)
	}
}

func TestPIDIntegralAccumulatesAndClamps(t *testing.T) {
	pid := NewPID(PIDGains{Ki: 10, IntegralClamp: 0.05})
	for i := 0; i < 1000; i++ {
		pid.Update(1.0, 1e-3)
	}
	if got := pid.Integral(); got != 0.05 {
		t.Fatalf("integral = %v, want clamped at 0.05", got)
	}
	// Negative errors unwind it symmetrically.
	for i := 0; i < 20000; i++ {
		pid.Update(-1.0, 1e-3)
	}
	if got := pid.Integral(); got != -0.05 {
		t.Fatalf("integral = %v, want clamped at -0.05", got)
	}
}

func TestPIDNoDerivativeKickOnFirstSample(t *testing.T) {
	pid := NewPID(PIDGains{Kd: 1})
	if got := pid.Update(100, 1e-3); got != 0 {
		t.Fatalf("first-sample D output = %v, want 0", got)
	}
}

func TestPIDDerivativeFilterSuppressesQuantisationNoise(t *testing.T) {
	// Alternating +-1 count of encoder noise (1.57 mrad) must produce far
	// less derivative output with the filter than without.
	noiseStep := 2 * math.Pi / 4000
	run := func(rc float64) float64 {
		pid := NewPID(PIDGains{Kd: 0.028, DerivRC: rc})
		worst := 0.0
		for i := 0; i < 200; i++ {
			err := 0.0
			if i%2 == 0 {
				err = noiseStep
			}
			out := math.Abs(pid.Update(err, 1e-3))
			if out > worst {
				worst = out
			}
		}
		return worst
	}
	unfiltered := run(0)
	filtered := run(0.008)
	if filtered > unfiltered/4 {
		t.Fatalf("filter too weak: %v vs %v unfiltered", filtered, unfiltered)
	}
}

func TestPIDReset(t *testing.T) {
	pid := NewPID(PIDGains{Kp: 1, Ki: 10, Kd: 0.1, IntegralClamp: 1})
	pid.Update(1, 1e-3)
	pid.Update(2, 1e-3)
	pid.Reset()
	if pid.Integral() != 0 {
		t.Fatal("Reset left integral")
	}
	if got := pid.Update(0, 1e-3); got != 0 {
		t.Fatalf("output after reset with zero error = %v", got)
	}
}

// testHarness builds a controller over a capture chain with a primed
// feedback frame.
type testHarness struct {
	ctrl   *Controller
	frames [][]byte
	fb     usb.Feedback
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	h := &testHarness{}
	chain := interpose.NewChain(func(buf []byte) error {
		h.frames = append(h.frames, append([]byte(nil), buf...))
		return nil
	})
	ctrl, err := NewController(Config{}, chain)
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl = ctrl

	// Prime feedback at a mid-workspace pose.
	bank := motor.DefaultBank()
	tr := kinematics.DefaultTransmission()
	mp := tr.ToMotor(kinematics.DefaultLimits().Center())
	for i := 0; i < kinematics.NumJoints; i++ {
		h.fb.Encoder[i] = bank[i].EncoderCounts(mp[i])
	}
	return h
}

// tickN runs n cycles with the same input.
func (h *testHarness) tickN(in Input, n int) Output {
	var out Output
	for i := 0; i < n; i++ {
		out = h.ctrl.Tick(in, h.fb, false)
	}
	return out
}

func TestControllerPowerUpInEStop(t *testing.T) {
	h := newHarness(t)
	out := h.tickN(Input{}, 1)
	if out.State != statemachine.EStop {
		t.Fatalf("state = %v", out.State)
	}
	if out.DAC != ([usb.NumChannels]int16{}) {
		t.Fatalf("E-STOP emitted nonzero DACs: %v", out.DAC)
	}
}

func TestControllerStartBeginsHoming(t *testing.T) {
	h := newHarness(t)
	h.tickN(Input{}, 5)
	out := h.tickN(Input{StartButton: true}, 1)
	if out.State != statemachine.Init {
		t.Fatalf("state after start = %v", out.State)
	}
	// Homing completes after HomingDuration (default 2 s = 2000 ticks).
	out = h.tickN(Input{}, 2100)
	if out.State != statemachine.PedalUp {
		t.Fatalf("state after homing = %v", out.State)
	}
	if got, want := out.JposD, h.ctrl.HomePose(); got != want {
		t.Fatalf("post-homing setpoint %v, want home %v", got, want)
	}
}

func (h *testHarness) toPedalDown(t *testing.T) {
	t.Helper()
	h.tickN(Input{StartButton: true}, 1)
	h.tickN(Input{}, 2100)
	out := h.tickN(Input{PedalDown: true}, 1)
	if out.State != statemachine.PedalDown {
		t.Fatalf("state = %v, want Pedal Down", out.State)
	}
}

func TestControllerTeleopIntegratesDeltas(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	before := h.ctrl.DesiredJoints()
	tipBefore := kinematics.Forward(before)
	// 100 ticks of +0.01 mm X per tick = +1 mm total.
	out := h.tickN(Input{PedalDown: true, Delta: mathx.Vec3{X: 1e-5}}, 100)
	tipAfter := kinematics.Forward(out.JposD)
	moved := tipAfter.Sub(tipBefore)
	if math.Abs(moved.X-1e-3) > 1e-5 {
		t.Fatalf("tip moved %v in X, want ~1 mm", moved.X)
	}
}

func TestControllerClampsOversizedDelta(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	tipBefore := kinematics.Forward(h.ctrl.DesiredJoints())
	// A single huge 5 cm delta must be clamped to MaxDeltaPerTick (0.5 mm).
	out := h.tickN(Input{PedalDown: true, Delta: mathx.Vec3{X: 0.05}}, 1)
	moved := kinematics.Forward(out.JposD).Sub(tipBefore).Norm()
	if moved > 0.00051 {
		t.Fatalf("single-tick setpoint jump %v m, want <= 0.5 mm", moved)
	}
}

func TestControllerWorkspaceClamp(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	// Push outward in +Z (insertion direction) for a long time; the
	// setpoint must stop at the workspace limit, not run away.
	for i := 0; i < 40000; i++ {
		h.tickN(Input{PedalDown: true, Delta: mathx.Vec3{Z: 5e-6}}, 1)
	}
	lim := kinematics.DefaultLimits()
	if !lim.Contains(h.ctrl.DesiredJoints()) {
		t.Fatalf("setpoint %v escaped the workspace", h.ctrl.DesiredJoints())
	}
}

func TestControllerDACSafetyCheckTripsAndLatches(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	// Forge feedback claiming the motors are far from the setpoint: the
	// PID output then exceeds the DAC threshold and the software check
	// must trip, zero the DACs, and fall to E-STOP.
	h.fb.Encoder[0] += 40000
	out := h.tickN(Input{PedalDown: true}, 1)
	if !out.Unsafe {
		t.Fatal("safety check did not trip")
	}
	if !strings.Contains(out.UnsafeWhy, "DAC") {
		t.Fatalf("cause = %q", out.UnsafeWhy)
	}
	if out.State != statemachine.EStop {
		t.Fatalf("state = %v, want E-STOP", out.State)
	}
	if out.DAC != ([usb.NumChannels]int16{}) {
		t.Fatalf("unsafe cycle emitted DACs %v", out.DAC)
	}
	if h.ctrl.SafetyTrips() != 1 {
		t.Fatalf("SafetyTrips = %d", h.ctrl.SafetyTrips())
	}
}

func TestControllerWatchdogTogglesWhenHealthy(t *testing.T) {
	h := newHarness(t)
	toggles := 0
	last := false
	for i := 0; i < 100; i++ {
		out := h.ctrl.Tick(Input{}, h.fb, false)
		if i > 0 && out.Watchdog != last {
			toggles++
		}
		last = out.Watchdog
	}
	// 100 ticks / 10-tick half-period = ~10 toggles.
	if toggles < 8 || toggles > 12 {
		t.Fatalf("watchdog toggled %d times in 100 ticks", toggles)
	}
}

func TestControllerWatchdogStopsAfterUnsafe(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	h.fb.Encoder[0] += 40000
	h.tickN(Input{PedalDown: true}, 1)
	h.fb.Encoder[0] -= 40000
	// After the trip the watchdog must freeze (that is how the PLC learns).
	first := h.tickN(Input{}, 1).Watchdog
	for i := 0; i < 50; i++ {
		if out := h.tickN(Input{}, 1); out.Watchdog != first {
			t.Fatal("watchdog kept toggling after unsafe command")
		}
	}
}

func TestControllerFramesCarryStateNibble(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	h.frames = nil
	h.tickN(Input{PedalDown: true}, 5)
	for _, f := range h.frames {
		cmd, err := usb.DecodeCommand(f)
		if err != nil {
			t.Fatal(err)
		}
		if cmd.StateNibble != statemachine.PedalDown.Nibble() {
			t.Fatalf("frame nibble = %#x", cmd.StateNibble)
		}
	}
}

func TestControllerPLCEStopForcesEStop(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	out := h.ctrl.Tick(Input{PedalDown: true}, h.fb, true)
	if out.State != statemachine.EStop {
		t.Fatalf("state = %v with PLC E-STOP asserted", out.State)
	}
}

func TestControllerIKFailHoldsPose(t *testing.T) {
	h := newHarness(t)
	h.toPedalDown(t)
	before := h.ctrl.DesiredJoints()
	// Drive toward the remote center: eventually IK fails (unreachable);
	// the controller must hold pose and count the failures, not crash.
	for i := 0; i < 30000; i++ {
		tip := kinematics.Forward(h.ctrl.DesiredJoints())
		h.tickN(Input{PedalDown: true, Delta: tip.Scale(-0.001)}, 1)
	}
	_ = before
	if h.ctrl.IKFails() == 0 {
		t.Skip("IK failure not reached within the workspace clamp; clamped first")
	}
}

func TestNewControllerRejectsNilChain(t *testing.T) {
	if _, err := NewController(Config{}, nil); err == nil {
		t.Fatal("nil chain accepted")
	}
}

func TestNewControllerRejectsBadBank(t *testing.T) {
	bad := motor.DefaultBank()
	bad[1].EncoderCPR = 0
	chain := interpose.NewChain(func([]byte) error { return nil })
	if _, err := NewController(Config{Bank: bad}, chain); err == nil {
		t.Fatal("bad bank accepted")
	}
}
