package control

import (
	"math"
	"testing"

	"ravenguard/internal/interpose"
	"ravenguard/internal/mathx"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
)

func TestSafetyChecksOffNeverTrips(t *testing.T) {
	var h struct {
		ctrl *Controller
		fb   usb.Feedback
	}
	chain := interpose.NewChain(func([]byte) error { return nil })
	ctrl, err := NewController(Config{SafetyChecksOff: true}, chain)
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl = ctrl

	// Power through to Pedal Down and then forge feedback that would trip
	// the DAC check: with checks off, the controller must keep running.
	h.ctrl.Tick(Input{StartButton: true}, h.fb, false)
	for i := 0; i < 2100; i++ {
		h.ctrl.Tick(Input{}, h.fb, false)
	}
	h.ctrl.Tick(Input{PedalDown: true}, h.fb, false)
	h.fb.Encoder[0] += 100000
	out := h.ctrl.Tick(Input{PedalDown: true}, h.fb, false)
	if out.Unsafe {
		t.Fatal("safety check fired although disabled")
	}
	if out.State == statemachine.EStop {
		t.Fatal("controller halted although checks are disabled")
	}
	if h.ctrl.SafetyTrips() != 0 {
		t.Fatalf("SafetyTrips = %d", h.ctrl.SafetyTrips())
	}
}

func TestTrigDriftFaultPointWiredThroughIK(t *testing.T) {
	chain := interpose.NewChain(func([]byte) error { return nil })
	ctrl, err := NewController(Config{
		TrigDrift:       func(t float64) float64 { return -0.9 }, // broken from the start
		SafetyChecksOff: true,                                    // keep teleop alive so IK keeps running
	}, chain)
	if err != nil {
		t.Fatal(err)
	}
	var fb usb.Feedback
	ctrl.Tick(Input{StartButton: true}, fb, false)
	for i := 0; i < 2100; i++ {
		ctrl.Tick(Input{}, fb, false)
	}
	ctrl.Tick(Input{PedalDown: true}, fb, false)
	for i := 0; i < 2000; i++ {
		ctrl.Tick(Input{PedalDown: true, Delta: deltaX(1e-5)}, fb, false)
	}
	if ctrl.IKFails() == 0 {
		t.Fatal("trig-drift fault point produced no IK failures")
	}
}

func deltaX(v float64) mathx.Vec3 { return mathx.Vec3{X: v} }

func TestSanitizeInputZeroesNonFinite(t *testing.T) {
	// Transport faults can hand the controller NaN/Inf deltas (e.g. bit
	// flips in a float field); they must be neutralised before the state
	// machine and IK ever see them.
	in := Input{
		Delta:    mathx.Vec3{X: math.NaN(), Y: 1, Z: math.Inf(1)},
		OriDelta: [3]float64{math.Inf(-1), 0.2, math.NaN()},
	}
	if n := sanitizeInput(&in); n != 3 {
		t.Fatalf("sanitized %d fields, want 3 (whole Delta + two OriDelta)", n)
	}
	if in.Delta != (mathx.Vec3{}) {
		t.Fatalf("non-finite Delta not zeroed: %+v", in.Delta)
	}
	if in.OriDelta != [3]float64{0, 0.2, 0} {
		t.Fatalf("OriDelta = %v", in.OriDelta)
	}

	clean := Input{Delta: mathx.Vec3{X: 1e-4}, OriDelta: [3]float64{0.1, 0, 0}}
	want := clean
	if n := sanitizeInput(&clean); n != 0 || clean != want {
		t.Fatalf("finite input disturbed: n=%d %+v", n, clean)
	}
}
