// Package randx wraps math/rand sources with draw counting so a stream's
// position can be captured and replayed. Every stochastic component of the
// simulation (plant disturbance torque, fault-boundary randomness, malware
// byte corruption) owns a seeded *rand.Rand; checkpointing a run therefore
// needs each stream's exact position, not just its seed. A Source counts
// how many times the underlying generator advanced — both Int63 and Uint64
// step math/rand's rngSource exactly once — so restoring is "reseed, then
// discard N draws", independent of the original mix of Float64/NormFloat64/
// Intn calls that consumed them.
package randx

import "math/rand"

// Source is a counting math/rand source. It implements rand.Source64, so a
// rand.Rand built on it produces exactly the same stream as one built on
// rand.NewSource(seed) directly.
type Source struct {
	src  rand.Source64
	seed int64
	n    uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a counting source seeded with seed, at position 0.
func NewSource(seed int64) *Source {
	return &Source{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// New returns a rand.Rand drawing from a fresh counting source, plus the
// source for position capture. The Rand's stream is identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) (*rand.Rand, *Source) {
	s := NewSource(seed)
	return rand.New(s), s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the position count.
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.n = 0
}

// Pos captures the stream position: the seed and how many times the
// generator has advanced since seeding.
type Pos struct {
	Seed int64
	N    uint64
}

// Pos returns the current stream position.
func (s *Source) Pos() Pos { return Pos{Seed: s.seed, N: s.n} }

// Restore rewinds (or fast-forwards) the stream to an absolute position by
// reseeding and discarding p.N draws. Both Int63 and Uint64 advance the
// underlying generator by one step, so replaying with Uint64 lands on the
// same position regardless of which methods originally consumed the draws.
func (s *Source) Restore(p Pos) {
	s.src.Seed(p.Seed)
	for i := uint64(0); i < p.N; i++ {
		s.src.Uint64()
	}
	s.seed = p.Seed
	s.n = p.N
}
