package randx

import (
	"math/rand"
	"testing"
)

// TestStreamIdentical pins that a Rand on a counting source produces the
// exact stream of a plain seeded Rand across the call mix the simulation
// uses (Float64, NormFloat64, Intn).
func TestStreamIdentical(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	got, _ := New(42)
	for i := 0; i < 10000; i++ {
		switch i % 3 {
		case 0:
			if a, b := ref.Float64(), got.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, b, a)
			}
		case 1:
			if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, b, a)
			}
		default:
			if a, b := ref.Intn(1000), got.Intn(1000); a != b {
				t.Fatalf("draw %d: Intn %v != %v", i, b, a)
			}
		}
	}
}

// TestRestoreAnyMix pins that restoring a captured position continues the
// stream bit-identically, no matter which Rand methods consumed the draws
// (NormFloat64 consumes a variable number per call).
func TestRestoreAnyMix(t *testing.T) {
	r, src := New(7)
	for i := 0; i < 5000; i++ {
		switch i % 4 {
		case 0:
			r.Float64()
		case 1:
			r.NormFloat64()
		case 2:
			r.Intn(33)
		default:
			r.Uint64()
		}
	}
	pos := src.Pos()
	var want [64]float64
	for i := range want {
		want[i] = r.NormFloat64()
	}

	r2, src2 := New(999) // deliberately different seed before restore
	r2.Float64()
	src2.Restore(pos)
	for i := range want {
		if got := r2.NormFloat64(); got != want[i] {
			t.Fatalf("post-restore draw %d: %v != %v", i, got, want[i])
		}
	}
	if p := src2.Pos(); p.Seed != 7 {
		t.Fatalf("restored seed %d, want 7", p.Seed)
	}
}
