// Package metrics implements binary-classification metrics for the detection
// evaluation (Table IV: accuracy, true-positive rate, false-positive rate,
// F1 score) and the conditional-probability estimation used by Figure 9.
//
// Both accumulators are pure integer counters, so they merge exactly: the
// sharded campaign runner streams them between processes as JSON partial
// aggregates and the merged result is bit-identical to a single-process
// run regardless of how the job space was partitioned.
package metrics

import (
	"encoding/json"
	"fmt"
)

// Confusion is a binary confusion matrix. Positives are runs in which the
// attack would cause an adverse physical impact; a prediction is an alarm
// raised by the detector under test.
type Confusion struct {
	TP int // attack with impact, alarm raised
	FP int // no impact (fault-free or harmless injection), alarm raised
	TN int // no impact, no alarm
	FN int // attack with impact, missed
}

// Observe records one run outcome.
func (c *Confusion) Observe(truth, predicted bool) {
	switch {
	case truth && predicted:
		c.TP++
	case truth && !predicted:
		c.FN++
	case !truth && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Merge adds the counts of other into c.
func (c *Confusion) Merge(other Confusion) {
	c.TP += other.TP
	c.FP += other.FP
	c.TN += other.TN
	c.FN += other.FN
}

// Total returns the number of observed runs.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total as a percentage, 0 when empty.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(c.TP+c.TN) / float64(t)
}

// TPR returns the true-positive rate (recall) as a percentage, 0 when there
// are no positives.
func (c Confusion) TPR() float64 {
	p := c.TP + c.FN
	if p == 0 {
		return 0
	}
	return 100 * float64(c.TP) / float64(p)
}

// FPR returns the false-positive rate as a percentage, 0 when there are no
// negatives.
func (c Confusion) FPR() float64 {
	n := c.FP + c.TN
	if n == 0 {
		return 0
	}
	return 100 * float64(c.FP) / float64(n)
}

// Precision returns TP/(TP+FP) as a percentage, 0 when no alarms were raised.
func (c Confusion) Precision() float64 {
	a := c.TP + c.FP
	if a == 0 {
		return 0
	}
	return 100 * float64(c.TP) / float64(a)
}

// F1 returns the harmonic mean of precision and recall as a percentage,
// 0 when either is zero.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the Table IV row for this confusion matrix.
func (c Confusion) String() string {
	return fmt.Sprintf("ACC=%.1f TPR=%.1f FPR=%.1f F1=%.1f (TP=%d FP=%d TN=%d FN=%d)",
		c.Accuracy(), c.TPR(), c.FPR(), c.F1(), c.TP, c.FP, c.TN, c.FN)
}

// Proportion is a streaming estimator of a Bernoulli probability, used for
// the marginal conditional probabilities in Figure 9 (P(adverse impact | v,d)
// and P(detection | v,d), each estimated from >= 20 repetitions).
type Proportion struct {
	hits  int
	total int
}

// Observe records one trial outcome.
func (p *Proportion) Observe(hit bool) {
	p.total++
	if hit {
		p.hits++
	}
}

// Merge adds the counts of other into p.
func (p *Proportion) Merge(other Proportion) {
	p.hits += other.hits
	p.total += other.total
}

// proportionJSON is the wire form of a Proportion.
type proportionJSON struct {
	Hits  int `json:"hits"`
	Total int `json:"total"`
}

// MarshalJSON serializes the counter state losslessly.
func (p Proportion) MarshalJSON() ([]byte, error) {
	return json.Marshal(proportionJSON{Hits: p.hits, Total: p.total})
}

// UnmarshalJSON restores a counter serialized by MarshalJSON.
func (p *Proportion) UnmarshalJSON(data []byte) error {
	var w proportionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*p = Proportion{hits: w.Hits, total: w.Total}
	return nil
}

// N returns the number of trials.
func (p Proportion) N() int { return p.total }

// Value returns the estimated probability in [0,1], 0 when no trials were
// observed.
func (p Proportion) Value() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.total)
}
