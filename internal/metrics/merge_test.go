package metrics

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// The sharded campaign runner depends on Confusion and Proportion merging
// exactly: any partition of an observation stream, merged in any order,
// must reproduce the whole-stream counts.

func TestConfusionMergePartitionAndOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truths := make([]bool, 211)
	preds := make([]bool, len(truths))
	for i := range truths {
		truths[i] = rng.Intn(2) == 0
		preds[i] = rng.Intn(3) == 0
	}
	var whole Confusion
	for i := range truths {
		whole.Observe(truths[i], preds[i])
	}

	for trial := 0; trial < 20; trial++ {
		// Random contiguous partition.
		var parts []Confusion
		for lo := 0; lo < len(truths); {
			hi := lo + 1 + rng.Intn(40)
			if hi > len(truths) {
				hi = len(truths)
			}
			var c Confusion
			for i := lo; i < hi; i++ {
				c.Observe(truths[i], preds[i])
			}
			parts = append(parts, c)
			lo = hi
		}
		// Merge in a random order (counts are commutative).
		var merged Confusion
		for _, pi := range rng.Perm(len(parts)) {
			merged.Merge(parts[pi])
		}
		if merged != whole {
			t.Fatalf("trial %d: merged %+v, whole %+v", trial, merged, whole)
		}
	}
}

func TestProportionMergeMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var whole, a, b, c Proportion
	for i := 0; i < 151; i++ {
		hit := rng.Intn(4) == 0
		whole.Observe(hit)
		switch {
		case i < 50:
			a.Observe(hit)
		case i < 99:
			b.Observe(hit)
		default:
			c.Observe(hit)
		}
	}
	// (a+b)+c and a+(b+c) must both equal the whole stream.
	left := a
	left.Merge(b)
	left.Merge(c)
	right := b
	right.Merge(c)
	merged := a
	merged.Merge(right)
	if left != whole || merged != whole {
		t.Fatalf("merge diverged: (a+b)+c=%+v a+(b+c)=%+v whole=%+v", left, merged, whole)
	}
}

func TestProportionJSONRoundTrip(t *testing.T) {
	var p Proportion
	for i := 0; i < 9; i++ {
		p.Observe(i%3 == 0)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Proportion
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("round trip %+v -> %+v", p, q)
	}
	// A restored proportion keeps observing and merging.
	q.Observe(true)
	p.Observe(true)
	if q != p {
		t.Fatalf("post-round-trip observe diverged: %+v vs %+v", q, p)
	}
}

func TestConfusionJSONRoundTrip(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, TN: 8, FN: 2}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var d Confusion
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d != c {
		t.Fatalf("round trip %+v -> %+v", c, d)
	}
}
