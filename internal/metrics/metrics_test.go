package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // TP
	c.Observe(true, false)  // FN
	c.Observe(false, true)  // FP
	c.Observe(false, false) // TN
	c.Observe(true, true)   // TP
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 80, FN: 20, FP: 10, TN: 90}
	if got := c.Accuracy(); !approx(got, 85, 1e-9) {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.TPR(); !approx(got, 80, 1e-9) {
		t.Errorf("TPR = %v", got)
	}
	if got := c.FPR(); !approx(got, 10, 1e-9) {
		t.Errorf("FPR = %v", got)
	}
	if got := c.Precision(); !approx(got, 100*80.0/90.0, 1e-9) {
		t.Errorf("Precision = %v", got)
	}
	p, r := c.Precision(), c.TPR()
	if got := c.F1(); !approx(got, 2*p*r/(p+r), 1e-9) {
		t.Errorf("F1 = %v", got)
	}
}

func TestConfusionEmptyDenominators(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.TPR() != 0 || c.FPR() != 0 || c.F1() != 0 || c.Precision() != 0 {
		t.Fatal("empty confusion must report zeros, not NaN")
	}
	onlyNeg := Confusion{TN: 5}
	if onlyNeg.TPR() != 0 {
		t.Fatal("TPR with no positives must be 0")
	}
	onlyPos := Confusion{TP: 5}
	if onlyPos.FPR() != 0 {
		t.Fatal("FPR with no negatives must be 0")
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Fatalf("Merge = %+v", a)
	}
}

func TestMetricsBoundedQuick(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		for _, v := range []float64{c.Accuracy(), c.TPR(), c.FPR(), c.F1(), c.Precision()} {
			if math.IsNaN(v) || v < 0 || v > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 1, TN: 1, FN: 1}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if p.Value() != 0 || p.N() != 0 {
		t.Fatal("zero-value Proportion must report zeros")
	}
	p.Observe(true)
	p.Observe(false)
	p.Observe(true)
	p.Observe(true)
	if p.N() != 4 {
		t.Fatalf("N = %d", p.N())
	}
	if !approx(p.Value(), 0.75, 1e-12) {
		t.Fatalf("Value = %v", p.Value())
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
