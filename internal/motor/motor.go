// Package motor models the DC motors and current amplifiers of the RAVEN II
// robot: MAXON RE40 motors on the two rotational positioning axes and a
// MAXON RE30 on the tool-insertion axis. The motor controllers on the USB
// interface board are current amplifiers commanded through 16-bit DACs;
// this package converts DAC counts to amplifier current to shaft torque and
// models encoder quantisation on the feedback path.
package motor

import (
	"fmt"
	"math"

	"ravenguard/internal/mathx"
)

// DAC command range of the 16-bit converters on the USB interface board.
const (
	DACMax = 32767
	DACMin = -32768
)

// Spec holds the electromechanical constants of one motor + amplifier +
// encoder channel.
type Spec struct {
	Name           string
	TorqueConstant float64 // Kt, N m/A
	RotorInertia   float64 // kg m^2 (informational; dynamics carries its own)
	FullScaleAmp   float64 // amplifier current at DAC full scale, A
	EncoderCPR     int     // encoder counts per motor revolution (quadrature)
}

// RE40 returns the MAXON RE40 (148877) channel used by the shoulder and
// elbow axes: Kt = 30.2 mNm/A, amplifier full scale 8 A.
func RE40() Spec {
	return Spec{
		Name:           "MAXON RE40",
		TorqueConstant: 0.0302,
		RotorInertia:   142e-7,
		FullScaleAmp:   8.0,
		EncoderCPR:     4000,
	}
}

// RE30 returns the MAXON RE30 (310007) channel used by the insertion axis:
// Kt = 25.9 mNm/A, amplifier full scale 4 A.
func RE30() Spec {
	return Spec{
		Name:           "MAXON RE30",
		TorqueConstant: 0.0259,
		RotorInertia:   33.5e-7,
		FullScaleAmp:   4.0,
		EncoderCPR:     4000,
	}
}

// Validate returns an error for non-physical constants.
func (s Spec) Validate() error {
	switch {
	case s.TorqueConstant <= 0:
		return fmt.Errorf("motor: %s torque constant %v must be > 0", s.Name, s.TorqueConstant)
	case s.FullScaleAmp <= 0:
		return fmt.Errorf("motor: %s full-scale current %v must be > 0", s.Name, s.FullScaleAmp)
	case s.EncoderCPR <= 0:
		return fmt.Errorf("motor: %s encoder CPR %d must be > 0", s.Name, s.EncoderCPR)
	}
	return nil
}

// DACToCurrent converts a DAC command to amplifier output current in amps,
// saturating at the DAC range.
func (s Spec) DACToCurrent(dac int16) float64 {
	return float64(dac) / DACMax * s.FullScaleAmp
}

// DACToTorque converts a DAC command to motor shaft torque in N m.
func (s Spec) DACToTorque(dac int16) float64 {
	return s.DACToCurrent(dac) * s.TorqueConstant
}

// TorqueToDAC converts a desired shaft torque to the nearest DAC command,
// saturating at the converter limits. This is the output stage of the PID
// controller. A NaN torque — only reachable when an upstream fault slipped
// a non-finite value through every sanitizer — commands zero current: the
// float-to-int16 conversion of NaN is platform-defined and must never pick
// the DAC value.
func (s Spec) TorqueToDAC(torque float64) int16 {
	if math.IsNaN(torque) {
		return 0
	}
	current := torque / s.TorqueConstant
	counts := math.Round(current / s.FullScaleAmp * DACMax)
	return int16(mathx.Clamp(counts, DACMin, DACMax))
}

// CountsPerRad returns encoder counts per radian of shaft rotation.
func (s Spec) CountsPerRad() float64 {
	return float64(s.EncoderCPR) / (2 * math.Pi)
}

// Quantize returns the shaft angle as the encoder would report it
// (floor-quantised to whole counts), in radians. Encoder quantisation is a
// real noise source for the detector's model resynchronisation, so the
// plant applies it to all feedback.
func (s Spec) Quantize(angle float64) float64 {
	cpr := s.CountsPerRad()
	return math.Floor(angle*cpr) / cpr
}

// EncoderCounts converts a shaft angle to whole encoder counts.
func (s Spec) EncoderCounts(angle float64) int32 {
	return int32(math.Floor(angle * s.CountsPerRad()))
}

// AngleFromCounts converts encoder counts back to a shaft angle in radians.
func (s Spec) AngleFromCounts(counts int32) float64 {
	return float64(counts) / s.CountsPerRad()
}

// Bank is the set of motor channels for one arm's positioning joints, in
// joint order (shoulder, elbow, insertion).
type Bank [3]Spec

// DefaultBank returns the RAVEN II arm configuration: RE40, RE40, RE30.
func DefaultBank() Bank { return Bank{RE40(), RE40(), RE30()} }

// Validate checks every channel.
func (b Bank) Validate() error {
	for i, s := range b {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("motor: channel %d: %w", i, err)
		}
	}
	return nil
}
