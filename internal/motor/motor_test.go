package motor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecsValid(t *testing.T) {
	for _, s := range []Spec{RE40(), RE30()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if err := DefaultBank().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero Kt", func(s *Spec) { s.TorqueConstant = 0 }},
		{"negative full scale", func(s *Spec) { s.FullScaleAmp = -1 }},
		{"zero CPR", func(s *Spec) { s.EncoderCPR = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := RE40()
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("Validate accepted bad spec")
			}
		})
	}
}

func TestDACFullScale(t *testing.T) {
	s := RE40()
	if got := s.DACToCurrent(DACMax); !approx(got, s.FullScaleAmp, 1e-9) {
		t.Fatalf("full-scale DAC -> %v A, want %v", got, s.FullScaleAmp)
	}
	if got := s.DACToCurrent(0); got != 0 {
		t.Fatalf("zero DAC -> %v A", got)
	}
	if got := s.DACToTorque(DACMax); !approx(got, s.FullScaleAmp*s.TorqueConstant, 1e-9) {
		t.Fatalf("full-scale torque = %v", got)
	}
}

func TestTorqueToDACRoundTrip(t *testing.T) {
	s := RE40()
	for _, tau := range []float64{0, 0.01, -0.05, 0.1, -0.2} {
		dac := s.TorqueToDAC(tau)
		back := s.DACToTorque(dac)
		// One DAC count of torque resolution.
		res := s.FullScaleAmp * s.TorqueConstant / DACMax
		if math.Abs(back-tau) > res {
			t.Errorf("torque %v -> DAC %d -> %v (res %v)", tau, dac, back, res)
		}
	}
}

func TestTorqueToDACSaturates(t *testing.T) {
	s := RE30()
	if got := s.TorqueToDAC(10); got != DACMax {
		t.Fatalf("huge torque -> %d, want %d", got, DACMax)
	}
	if got := s.TorqueToDAC(-10); got != DACMin {
		t.Fatalf("huge negative torque -> %d, want %d", got, DACMin)
	}
}

func TestTorqueToDACMonotoneQuick(t *testing.T) {
	s := RE40()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return s.TorqueToDAC(a) <= s.TorqueToDAC(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeResolution(t *testing.T) {
	s := RE40()
	res := 2 * math.Pi / float64(s.EncoderCPR)
	for _, angle := range []float64{0, 0.1, 1.234, 17.5, -3.3} {
		q := s.Quantize(angle)
		if diff := angle - q; diff < 0 || diff >= res+1e-12 {
			t.Errorf("Quantize(%v) = %v, diff %v outside [0, %v)", angle, q, diff, res)
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	s := RE30()
	for _, angle := range []float64{0.37, -2.2, 100.5} {
		q := s.Quantize(angle)
		if q2 := s.Quantize(q); math.Abs(q2-q) > 1e-12 {
			t.Errorf("Quantize not idempotent at %v: %v then %v", angle, q, q2)
		}
	}
}

func TestEncoderCountsRoundTrip(t *testing.T) {
	s := RE40()
	for _, angle := range []float64{0, 1.5, -0.7, 12.0} {
		counts := s.EncoderCounts(angle)
		back := s.AngleFromCounts(counts)
		if math.Abs(back-s.Quantize(angle)) > 1e-12 {
			t.Errorf("counts round trip at %v: %v", angle, back)
		}
	}
}

func TestBankLayout(t *testing.T) {
	b := DefaultBank()
	if b[0].Name != "MAXON RE40" || b[1].Name != "MAXON RE40" || b[2].Name != "MAXON RE30" {
		t.Fatalf("bank layout = %v,%v,%v", b[0].Name, b[1].Name, b[2].Name)
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
