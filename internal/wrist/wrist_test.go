package wrist

import (
	"math"
	"testing"

	"ravenguard/internal/mathx"
)

func newServo(t *testing.T) *Servo {
	t.Helper()
	s, err := NewServo(DefaultParams(), DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.Inertia[1] = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero inertia accepted")
	}
	p = DefaultParams()
	p.TorquePerDAC[0] = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero torque gain accepted")
	}
	if _, err := NewServo(p, DefaultLimits()); err == nil {
		t.Fatal("NewServo accepted bad params")
	}
}

func TestServoRespondsToDAC(t *testing.T) {
	s := newServo(t)
	for i := 0; i < 200; i++ {
		s.Step([NumJoints]int16{8000, 0, 0}, 1e-3, false)
	}
	if s.Pos()[Roll] <= 0 {
		t.Fatalf("roll position %v after sustained positive DAC", s.Pos()[Roll])
	}
	if s.Pos()[Pitch] != 0 || s.Pos()[Grasp] != 0 {
		t.Fatalf("uncommanded joints moved: %v", s.Pos())
	}
}

func TestServoBrakedHolds(t *testing.T) {
	s := newServo(t)
	s.SetPos([NumJoints]float64{0.5, 0.2, 0.3})
	before := s.Pos()
	for i := 0; i < 100; i++ {
		s.Step([NumJoints]int16{20000, -20000, 20000}, 1e-3, true)
	}
	if s.Pos() != before {
		t.Fatalf("braked servo moved: %v -> %v", before, s.Pos())
	}
}

func TestServoHardStops(t *testing.T) {
	s := newServo(t)
	lim := DefaultLimits()
	for i := 0; i < 5000; i++ {
		s.Step([NumJoints]int16{28000, 28000, 28000}, 1e-3, false)
	}
	p := s.Pos()
	for i := 0; i < NumJoints; i++ {
		if p[i] > lim.Max[i]+1e-9 {
			t.Fatalf("joint %d at %v beyond limit %v", i, p[i], lim.Max[i])
		}
	}
	// Grasp must have saturated exactly at its limit under full drive.
	if math.Abs(p[Grasp]-lim.Max[Grasp]) > 1e-6 {
		t.Fatalf("grasp at %v, want saturated at %v", p[Grasp], lim.Max[Grasp])
	}
}

func TestSetPosClamps(t *testing.T) {
	s := newServo(t)
	s.SetPos([NumJoints]float64{99, -99, 99})
	lim := DefaultLimits()
	p := s.Pos()
	for i := 0; i < NumJoints; i++ {
		if p[i] < lim.Min[i] || p[i] > lim.Max[i] {
			t.Fatalf("SetPos did not clamp joint %d: %v", i, p[i])
		}
	}
}

func TestControllerTracksSetpoint(t *testing.T) {
	s := newServo(t)
	c := NewController()
	c.SetSetpoint(s.Pos())
	// Command a 0.4 rad roll move via incremental tracking.
	for i := 0; i < 800; i++ {
		if i < 400 {
			c.Track([NumJoints]float64{0.001, 0, 0})
		}
		dac := c.Update(s.Pos(), 1e-3)
		s.Step(dac, 1e-3, false)
	}
	if err := math.Abs(s.Pos()[Roll] - 0.4); err > 0.02 {
		t.Fatalf("roll tracking error %v rad after settle", err)
	}
}

func TestControllerSetpointClamped(t *testing.T) {
	c := NewController()
	c.SetSetpoint([NumJoints]float64{})
	for i := 0; i < 10000; i++ {
		c.Track([NumJoints]float64{0, 0.01, 0})
	}
	lim := DefaultLimits()
	if got := c.Setpoint()[Pitch]; got > lim.Max[Pitch]+1e-9 {
		t.Fatalf("setpoint %v escaped limit %v", got, lim.Max[Pitch])
	}
}

func TestOrientationComposition(t *testing.T) {
	// Pure roll spins about Z: X-hat rotates in the XY plane.
	r := Orientation([NumJoints]float64{math.Pi / 2, 0, 0})
	got := r.Apply(mathx.Vec3{X: 1})
	if !mathx.ApproxEqual(got.Y, 1, 1e-12) || !mathx.ApproxEqual(got.X, 0, 1e-12) {
		t.Fatalf("roll 90deg maps X-hat to %+v", got)
	}
	// Grasp does not change orientation.
	a := Orientation([NumJoints]float64{0.3, 0.2, 0})
	b := Orientation([NumJoints]float64{0.3, 0.2, 0.5})
	if a != b {
		t.Fatal("grasp changed the orientation matrix")
	}
}

func TestEncoderRoundTrip(t *testing.T) {
	for _, angle := range []float64{0, 0.5, -1.2, 3.0} {
		counts := EncoderCounts(angle)
		back := AngleFromCounts(counts)
		if math.Abs(back-angle) > 2*math.Pi/4000 {
			t.Fatalf("round trip at %v: %v", angle, back)
		}
	}
}
