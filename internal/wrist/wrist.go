// Package wrist models the RAVEN II manipulator's instrument joints: the
// four distal degrees of freedom (tool roll, wrist pitch, and the two
// grasper jaws) beyond the three positioning joints.
//
// The paper's detection framework deliberately excludes these: "the other
// four degrees of freedom are instrument joints, mainly affecting the
// orientation of the end-effectors", and modeling only the positioning
// joints is what makes the 1 ms real-time budget feasible. The robot
// still *has* them — their DAC channels (3..5 on the interface board) are
// live traffic that the attacker's byte-level analysis must see flickering
// (paper Figure 5), and an attack on a wrist channel is possible but
// cannot cause a positioning jump. This package provides the servo
// dynamics and orientation kinematics so the rest of the system carries
// that realism.
package wrist

import (
	"fmt"
	"math"

	"ravenguard/internal/mathx"
)

// NumJoints is the number of modeled instrument joints driven through the
// interface board: roll, wrist pitch, and grasp (the two jaws are driven
// differentially through one modeled channel pair; we expose three
// channels as the RAVEN tool interface does).
const NumJoints = 3

// Joint indices.
const (
	Roll  = 0 // tool shaft roll, radians
	Pitch = 1 // wrist pitch, radians
	Grasp = 2 // jaw opening, radians
)

// Limits of the instrument joints.
type Limits struct {
	Min [NumJoints]float64
	Max [NumJoints]float64
}

// DefaultLimits returns the RAVEN instrument ranges: roll +/-180 deg,
// wrist pitch +/-60 deg, grasp 0..60 deg.
func DefaultLimits() Limits {
	return Limits{
		Min: [NumJoints]float64{-math.Pi, -mathx.Rad(60), 0},
		Max: [NumJoints]float64{math.Pi, mathx.Rad(60), mathx.Rad(60)},
	}
}

// Clamp bounds p into the limits.
func (l Limits) Clamp(p [NumJoints]float64) [NumJoints]float64 {
	for i := 0; i < NumJoints; i++ {
		p[i] = mathx.Clamp(p[i], l.Min[i], l.Max[i])
	}
	return p
}

// Params are the per-joint servo constants: the instrument joints are
// small cable-driven servos we model as damped second-order systems with
// direct position servo control on the board side.
type Params struct {
	// Inertia of the driven joint, kg m^2.
	Inertia [NumJoints]float64
	// Damping, N m s/rad.
	Damping [NumJoints]float64
	// TorquePerDAC converts a DAC count to joint torque, N m/count.
	TorquePerDAC [NumJoints]float64
}

// DefaultParams returns constants for the RAVEN tool interface servos.
func DefaultParams() Params {
	return Params{
		Inertia:      [NumJoints]float64{2e-5, 1.2e-5, 8e-6},
		Damping:      [NumJoints]float64{4e-3, 3e-3, 2.5e-3},
		TorquePerDAC: [NumJoints]float64{6e-7, 6e-7, 4e-7},
	}
}

// Validate rejects non-physical constants.
func (p Params) Validate() error {
	for i := 0; i < NumJoints; i++ {
		if p.Inertia[i] <= 0 {
			return fmt.Errorf("wrist: joint %d inertia %v must be > 0", i, p.Inertia[i])
		}
		if p.Damping[i] < 0 || p.TorquePerDAC[i] <= 0 {
			return fmt.Errorf("wrist: joint %d damping/torque gain invalid", i)
		}
	}
	return nil
}

// Servo simulates the instrument joints' dynamics. Not safe for concurrent
// use.
type Servo struct {
	params Params
	limits Limits
	pos    [NumJoints]float64
	vel    [NumJoints]float64
}

// NewServo builds the servo pack at the neutral pose.
func NewServo(params Params, limits Limits) (*Servo, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Servo{params: params, limits: limits}, nil
}

// Step advances the servos by dt seconds under the given DAC commands.
// Braked servos hold (the tool interface is clamped with the arm).
func (s *Servo) Step(dacs [NumJoints]int16, dt float64, braked bool) {
	if braked {
		for i := range s.vel {
			s.vel[i] = 0
		}
		return
	}
	for i := 0; i < NumJoints; i++ {
		tau := float64(dacs[i]) * s.params.TorquePerDAC[i]
		acc := (tau - s.params.Damping[i]*s.vel[i]) / s.params.Inertia[i]
		s.vel[i] += acc * dt
		s.pos[i] += s.vel[i] * dt
		// Hard stops at the instrument limits.
		if s.pos[i] < s.limits.Min[i] {
			s.pos[i] = s.limits.Min[i]
			if s.vel[i] < 0 {
				s.vel[i] = 0
			}
		} else if s.pos[i] > s.limits.Max[i] {
			s.pos[i] = s.limits.Max[i]
			if s.vel[i] > 0 {
				s.vel[i] = 0
			}
		}
	}
}

// Pos returns the joint positions.
func (s *Servo) Pos() [NumJoints]float64 { return s.pos }

// Vel returns the joint velocities.
func (s *Servo) Vel() [NumJoints]float64 { return s.vel }

// SetPos teleports the servos (initialisation).
func (s *Servo) SetPos(p [NumJoints]float64) {
	s.pos = s.limits.Clamp(p)
	s.vel = [NumJoints]float64{}
}

// SetState restores positions and velocities verbatim
// (checkpoint/restore; no clamping, the captured state was legal).
func (s *Servo) SetState(pos, vel [NumJoints]float64) {
	s.pos, s.vel = pos, vel
}

// Orientation composes the instrument orientation matrix from the wrist
// pose: the tool rolls about its shaft axis and pitches about the wrist
// axis. (Grasp does not change orientation.)
func Orientation(pos [NumJoints]float64) mathx.Mat3 {
	return mathx.RotZ(pos[Roll]).Mul(mathx.RotY(pos[Pitch]))
}

// Controller is the wrist's position servo loop run by the control
// software: a PD per joint producing DAC counts for channels 3..5.
type Controller struct {
	kp, kd [NumJoints]float64
	limits Limits
	setpt  [NumJoints]float64
	prev   [NumJoints]float64
	primed bool
}

// NewController returns a PD servo controller with default gains.
func NewController() *Controller {
	return &Controller{
		kp:     [NumJoints]float64{60000, 60000, 50000}, // counts per rad
		kd:     [NumJoints]float64{800, 800, 600},       // counts per rad/s
		limits: DefaultLimits(),
	}
}

// Track moves the setpoint by the given per-cycle deltas.
func (c *Controller) Track(delta [NumJoints]float64) {
	for i := 0; i < NumJoints; i++ {
		c.setpt[i] += delta[i]
	}
	c.setpt = c.limits.Clamp(c.setpt)
}

// Setpoint returns the current desired pose.
func (c *Controller) Setpoint() [NumJoints]float64 { return c.setpt }

// SetSetpoint teleports the setpoint (initialisation/hold).
func (c *Controller) SetSetpoint(p [NumJoints]float64) { c.setpt = c.limits.Clamp(p) }

// Update computes the DAC commands for the current measured pose.
func (c *Controller) Update(measured [NumJoints]float64, dt float64) [NumJoints]int16 {
	var out [NumJoints]int16
	for i := 0; i < NumJoints; i++ {
		err := c.setpt[i] - measured[i]
		// Derivative on the measurement only, so setpoint steps do not
		// kick the servo.
		deriv := 0.0
		if c.primed && dt > 0 {
			deriv = -(measured[i] - c.prev[i]) / dt
		}
		c.prev[i] = measured[i]
		counts := c.kp[i]*err + c.kd[i]*deriv
		out[i] = int16(mathx.Clamp(counts, -28000, 28000))
	}
	c.primed = true
	return out
}

// Encoder scale of the instrument joints (4000-count quadrature encoders).
const countsPerRad = 4000 / (2 * math.Pi)

// EncoderCounts converts an instrument joint angle to encoder counts.
func EncoderCounts(angle float64) int32 {
	return int32(math.Floor(angle * countsPerRad))
}

// AngleFromCounts converts encoder counts back to a joint angle.
func AngleFromCounts(counts int32) float64 {
	return float64(counts) / countsPerRad
}
