// Package statemachine implements the operational state machine of the
// RAVEN II robot (paper Figure 1(c)): the robot starts in the emergency-stop
// state, runs an initialisation/homing sequence after the physical start
// button is pressed, then sits in "Pedal Up" (brakes engaged, console
// disengaged) until the operator presses the foot pedal, which moves it to
// "Pedal Down" (brakes released, teleoperation active). Any emergency-stop
// event — the physical button, a failed software safety check, or the PLC
// watchdog supervisor — latches the machine back to E-STOP.
package statemachine

import "fmt"

// State enumerates the operational states.
type State int

// Operational states, in the order the machine navigates them.
const (
	EStop State = iota + 1
	Init
	PedalUp
	PedalDown
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case EStop:
		return "E-STOP"
	case Init:
		return "Init"
	case PedalUp:
		return "Pedal Up"
	case PedalDown:
		return "Pedal Down"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Nibble returns the 4-bit encoding of the state carried in Byte 0 of the
// USB command packets. The values reproduce the pattern the paper's offline
// analysis discovers: Byte 0 switches among 8 values, or 4 once the
// toggling watchdog bit (bit 4) is masked out — 0x0F (decimal 15) means
// "Pedal Down".
func (s State) Nibble() byte {
	switch s {
	case EStop:
		return 0x00
	case Init:
		return 0x03
	case PedalUp:
		return 0x07
	case PedalDown:
		return 0x0F
	default:
		return 0x00
	}
}

// FromNibble maps a Byte 0 state nibble back to a State. Unknown nibbles
// return EStop and false.
func FromNibble(n byte) (State, bool) {
	switch n & 0x0F {
	case 0x00:
		return EStop, true
	case 0x03:
		return Init, true
	case 0x07:
		return PedalUp, true
	case 0x0F:
		return PedalDown, true
	default:
		return EStop, false
	}
}

// Event is an input to the state machine.
type Event int

// Events recognised by the machine.
const (
	EvStartButton  Event = iota + 1 // physical start button pressed
	EvHomingDone                    // initialisation sequence completed
	EvPedalPress                    // operator pressed the foot pedal
	EvPedalRelease                  // operator lifted the foot pedal
	EvEStop                         // any emergency-stop source
)

// String names the event for logs.
func (e Event) String() string {
	switch e {
	case EvStartButton:
		return "StartButton"
	case EvHomingDone:
		return "HomingDone"
	case EvPedalPress:
		return "PedalPress"
	case EvPedalRelease:
		return "PedalRelease"
	case EvEStop:
		return "EStop"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Machine is the operational state machine. The zero value is not valid;
// use New. Machine is not safe for concurrent use: the control loop owns it.
type Machine struct {
	state       State
	transitions int
}

// New returns a machine latched in E-STOP, as the robot powers up.
func New() *Machine { return &Machine{state: EStop} }

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Transitions returns how many state changes have occurred (for tests and
// session statistics).
func (m *Machine) Transitions() int { return m.transitions }

// Apply processes an event and returns the resulting state plus whether the
// event caused a transition. Events that are not legal in the current state
// are ignored (the physical system simply does not react), with the
// exception of EvEStop which is accepted everywhere.
func (m *Machine) Apply(ev Event) (State, bool) {
	next := m.state
	switch ev {
	case EvEStop:
		next = EStop
	case EvStartButton:
		if m.state == EStop {
			next = Init
		}
	case EvHomingDone:
		if m.state == Init {
			next = PedalUp
		}
	case EvPedalPress:
		if m.state == PedalUp {
			next = PedalDown
		}
	case EvPedalRelease:
		if m.state == PedalDown {
			next = PedalUp
		}
	}
	changed := next != m.state
	if changed {
		m.state = next
		m.transitions++
	}
	return m.state, changed
}

// BrakesEngaged reports whether the fail-safe power-off brakes are engaged
// in the current state. Only Pedal Down releases the brakes; Init releases
// them partially for homing, which we model as released so the homing
// motion can run.
func (m *Machine) BrakesEngaged() bool {
	return m.state == EStop || m.state == PedalUp
}

// Teleoperating reports whether console inputs drive the arm (Pedal Down).
func (m *Machine) Teleoperating() bool { return m.state == PedalDown }
