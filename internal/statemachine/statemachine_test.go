package statemachine

import (
	"math/rand"
	"testing"
)

func TestHappyPath(t *testing.T) {
	m := New()
	if m.State() != EStop {
		t.Fatalf("power-up state = %v, want E-STOP", m.State())
	}
	steps := []struct {
		ev   Event
		want State
	}{
		{EvStartButton, Init},
		{EvHomingDone, PedalUp},
		{EvPedalPress, PedalDown},
		{EvPedalRelease, PedalUp},
		{EvPedalPress, PedalDown},
		{EvEStop, EStop},
	}
	for _, s := range steps {
		if got, _ := m.Apply(s.ev); got != s.want {
			t.Fatalf("after %v: state = %v, want %v", s.ev, got, s.want)
		}
	}
	if m.Transitions() != len(steps) {
		t.Fatalf("Transitions = %d, want %d", m.Transitions(), len(steps))
	}
}

func TestIllegalEventsIgnored(t *testing.T) {
	tests := []struct {
		name  string
		setup []Event
		ev    Event
	}{
		{"pedal press in E-STOP", nil, EvPedalPress},
		{"pedal press during Init", []Event{EvStartButton}, EvPedalPress},
		{"homing done in E-STOP", nil, EvHomingDone},
		{"start button while homed", []Event{EvStartButton, EvHomingDone}, EvStartButton},
		{"pedal release in Pedal Up", []Event{EvStartButton, EvHomingDone}, EvPedalRelease},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New()
			for _, ev := range tt.setup {
				m.Apply(ev)
			}
			before := m.State()
			got, changed := m.Apply(tt.ev)
			if changed || got != before {
				t.Fatalf("illegal event %v changed state %v -> %v", tt.ev, before, got)
			}
		})
	}
}

func TestEStopFromEveryState(t *testing.T) {
	paths := [][]Event{
		{},
		{EvStartButton},
		{EvStartButton, EvHomingDone},
		{EvStartButton, EvHomingDone, EvPedalPress},
	}
	for _, path := range paths {
		m := New()
		for _, ev := range path {
			m.Apply(ev)
		}
		if got, _ := m.Apply(EvEStop); got != EStop {
			t.Fatalf("E-STOP from %v path gave %v", path, got)
		}
	}
}

func TestBrakesAndTeleop(t *testing.T) {
	m := New()
	if !m.BrakesEngaged() || m.Teleoperating() {
		t.Fatal("E-STOP must brake and not teleoperate")
	}
	m.Apply(EvStartButton)
	if m.BrakesEngaged() {
		t.Fatal("Init must release brakes for homing")
	}
	m.Apply(EvHomingDone)
	if !m.BrakesEngaged() {
		t.Fatal("Pedal Up must brake")
	}
	m.Apply(EvPedalPress)
	if m.BrakesEngaged() || !m.Teleoperating() {
		t.Fatal("Pedal Down must release brakes and teleoperate")
	}
}

func TestNibbleRoundTrip(t *testing.T) {
	for _, s := range []State{EStop, Init, PedalUp, PedalDown} {
		got, ok := FromNibble(s.Nibble())
		if !ok || got != s {
			t.Fatalf("FromNibble(Nibble(%v)) = %v, %v", s, got, ok)
		}
		// The watchdog bit must not disturb decoding.
		got, ok = FromNibble(s.Nibble() | 0x10)
		if !ok || got != s {
			t.Fatalf("FromNibble with watchdog bit: %v, %v", got, ok)
		}
	}
}

func TestNibbleValuesDistinct(t *testing.T) {
	seen := map[byte]State{}
	for _, s := range []State{EStop, Init, PedalUp, PedalDown} {
		n := s.Nibble()
		if prev, dup := seen[n]; dup {
			t.Fatalf("states %v and %v share nibble %#x", prev, s, n)
		}
		seen[n] = s
	}
	// Pedal Down must encode as 0x0F — the value the paper's attacker
	// triggers on ("the values 31 (0x1F) or 15 (0x0F) in Byte 0").
	if PedalDown.Nibble() != 0x0F {
		t.Fatalf("PedalDown nibble = %#x, want 0x0F", PedalDown.Nibble())
	}
}

func TestFromNibbleUnknown(t *testing.T) {
	if _, ok := FromNibble(0x05); ok {
		t.Fatal("unknown nibble accepted")
	}
}

func TestStringsNonEmpty(t *testing.T) {
	for _, s := range []State{EStop, Init, PedalUp, PedalDown, State(99)} {
		if s.String() == "" {
			t.Fatalf("State(%d).String() empty", s)
		}
	}
	for _, e := range []Event{EvStartButton, EvHomingDone, EvPedalPress, EvPedalRelease, EvEStop, Event(99)} {
		if e.String() == "" {
			t.Fatalf("Event(%d).String() empty", e)
		}
	}
}

func TestRandomEventStormNeverInvalid(t *testing.T) {
	// Property: under any event sequence the machine stays in one of the
	// four defined states and transition counting stays consistent.
	rng := rand.New(rand.NewSource(99))
	m := New()
	events := []Event{EvStartButton, EvHomingDone, EvPedalPress, EvPedalRelease, EvEStop}
	prev := m.State()
	for i := 0; i < 10000; i++ {
		ev := events[rng.Intn(len(events))]
		got, changed := m.Apply(ev)
		switch got {
		case EStop, Init, PedalUp, PedalDown:
		default:
			t.Fatalf("invalid state %v after %v", got, ev)
		}
		if changed == (got == prev) {
			t.Fatalf("changed=%v but %v -> %v", changed, prev, got)
		}
		prev = got
	}
}
