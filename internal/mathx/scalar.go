package mathx

import "math"

// Clamp limits v to the closed interval [lo, hi]. It panics if lo > hi,
// which always indicates a programming error at the call site.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic("mathx: Clamp called with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if lo > hi {
		panic("mathx: ClampInt called with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// WrapAngle maps an angle to the half-open interval (-pi, pi].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	switch {
	case a > math.Pi:
		a -= 2 * math.Pi
	case a <= -math.Pi:
		a += 2 * math.Pi
	}
	return a
}

// ApproxEqual reports whether a and b differ by at most tol.
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Sign returns -1, 0 or +1 according to the sign of v.
func Sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Lerp linearly interpolates between a and b; t=0 gives a, t=1 gives b.
// t outside [0,1] extrapolates.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
