// Package mathx provides the small linear-algebra and numeric helpers used
// across the RavenGuard simulation stack: 3-vectors, 3x3 rotation matrices,
// angle utilities, and clamping. Everything is allocation-free value types so
// the 1 kHz control loop and the detector's per-tick model step do not touch
// the garbage collector.
package mathx

import "math"

// Vec3 is a 3-component column vector (meters for positions, radians for
// axis-angle components).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s * v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalised to unit length. The zero vector is returned
// unchanged so callers do not have to special-case degenerate input.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// DistanceTo returns |v - w|.
func (v Vec3) DistanceTo(w Vec3) float64 { return v.Sub(w).Norm() }

// IsFinite reports whether all components are finite (no NaN/Inf).
func (v Vec3) IsFinite() bool {
	return isFinite(v.X) && isFinite(v.Y) && isFinite(v.Z)
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Mat3 is a row-major 3x3 matrix used for rotations.
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// Mul returns the matrix product a * b.
func (a Mat3) Mul(b Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += a.M[i][k] * b.M[k][j]
			}
			out.M[i][j] = s
		}
	}
	return out
}

// Apply returns the matrix-vector product a * v.
func (a Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		X: a.M[0][0]*v.X + a.M[0][1]*v.Y + a.M[0][2]*v.Z,
		Y: a.M[1][0]*v.X + a.M[1][1]*v.Y + a.M[1][2]*v.Z,
		Z: a.M[2][0]*v.X + a.M[2][1]*v.Y + a.M[2][2]*v.Z,
	}
}

// Transpose returns the transpose of a. For rotation matrices this is the
// inverse.
func (a Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = a.M[j][i]
		}
	}
	return out
}

// RotX returns the rotation matrix about the X axis by angle radians.
func RotX(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{M: [3][3]float64{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}}
}

// RotY returns the rotation matrix about the Y axis by angle radians.
func RotY(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{M: [3][3]float64{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}}
}

// RotZ returns the rotation matrix about the Z axis by angle radians.
func RotZ(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{M: [3][3]float64{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}}
}
