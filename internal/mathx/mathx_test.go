package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Arithmetic(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %+v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{-2, 1, 5}
	c := v.Cross(w)
	if !ApproxEqual(c.Dot(v), 0, 1e-12) || !ApproxEqual(c.Dot(w), 0, 1e-12) {
		t.Fatalf("cross product %+v not orthogonal to operands", c)
	}
}

func TestVec3NormUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v, want 5", v.Norm())
	}
	if u := v.Unit(); !ApproxEqual(u.Norm(), 1, 1e-12) {
		t.Fatalf("Unit().Norm() = %v", u.Norm())
	}
	zero := Vec3{}
	if zero.Unit() != zero {
		t.Fatal("Unit of zero vector must stay zero")
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Fatal("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Fatal("Inf vector reported finite")
	}
}

func TestRotationOrthonormal(t *testing.T) {
	for _, r := range []Mat3{RotX(0.7), RotY(-1.2), RotZ(2.9)} {
		// R * R^T = I for any rotation.
		prod := r.Mul(r.Transpose())
		id := Identity3()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !ApproxEqual(prod.M[i][j], id.M[i][j], 1e-12) {
					t.Fatalf("R R^T [%d][%d] = %v", i, j, prod.M[i][j])
				}
			}
		}
	}
}

func TestRotZRotatesXToY(t *testing.T) {
	got := RotZ(math.Pi / 2).Apply(Vec3{X: 1})
	if !ApproxEqual(got.X, 0, 1e-12) || !ApproxEqual(got.Y, 1, 1e-12) {
		t.Fatalf("RotZ(90deg) x-hat = %+v, want y-hat", got)
	}
}

func TestMat3MulAssociativeQuick(t *testing.T) {
	f := func(a, b, c float64) bool {
		ra, rb, rc := RotX(a), RotY(b), RotZ(c)
		lhs := ra.Mul(rb).Mul(rc)
		rhs := ra.Mul(rb.Mul(rc))
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !ApproxEqual(lhs.M[i][j], rhs.M[i][j], 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampPanicsOnInvertedRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(0, 1, -1) did not panic")
		}
	}()
	Clamp(0, 1, -1)
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(99, -3, 7); got != 7 {
		t.Fatalf("ClampInt = %d", got)
	}
	if got := ClampInt(-99, -3, 7); got != -3 {
		t.Fatalf("ClampInt = %d", got)
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 45, 90, -180, 720} {
		if got := Deg(Rad(d)); !ApproxEqual(got, d, 1e-12) {
			t.Errorf("Deg(Rad(%v)) = %v", d, got)
		}
	}
}

func TestWrapAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := WrapAngle(tt.in); !ApproxEqual(got, tt.want, 1e-12) {
			t.Errorf("WrapAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapAngleRangeQuick(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		w := WrapAngle(a)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSign(t *testing.T) {
	if Sign(3) != 1 || Sign(-2) != -1 || Sign(0) != 0 {
		t.Fatal("Sign misbehaves")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(2, 4, 0.5) != 3 {
		t.Fatal("Lerp midpoint wrong")
	}
	if Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Fatal("Lerp endpoints wrong")
	}
}
