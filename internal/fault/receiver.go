package fault

import (
	"fmt"
	"math/rand"

	"ravenguard/internal/control"
	"ravenguard/internal/itp"
	"ravenguard/internal/randx"
)

// itpReceiver keeps the Apply closure signatures readable.
type itpReceiver = itp.Receiver

// delayedPacket is a datagram held back until a release tick.
type delayedPacket struct {
	p       itp.Packet
	release int
}

// faultyReceiver decorates an itp.Receiver with transport faults. It
// self-clocks: the rig calls Recv exactly once per control period, so the
// call counter is the simulated time. Like the real lossy network it
// models, it delivers at most one datagram per cycle — backlogs from
// duplication or released delays drain one per cycle.
type faultyReceiver struct {
	inner  itp.Receiver //ravenlint:snapshot-ignore wrapped transport; its queue is captured by the rig
	events []Event      //ravenlint:snapshot-ignore fault schedule, configuration
	rng    *rand.Rand   //ravenlint:snapshot-ignore draws through src, whose position is captured
	src    *randx.Source
	inj    *Injector //ravenlint:snapshot-ignore captured as its own snapshotter

	tick int
	// Both queues are consumed from a head index instead of resliced, so
	// their backing arrays are reused: the steady state of one datagram per
	// cycle would otherwise reallocate on nearly every tick. Only the live
	// windows queue[qhead:] and delayed[dhead:] are receiver state; the
	// snapshot captures them compacted.
	queue   []itp.Packet    // ready to deliver, queue[qhead:] oldest first
	qhead   int             //ravenlint:snapshot-ignore captured compacted into queue
	delayed []delayedPacket // waiting for their release tick, delayed[dhead:]
	dhead   int             //ravenlint:snapshot-ignore captured compacted into delayed
	held    *itp.Packet     // reorder: packet waiting to be swapped behind the next
}

var _ itp.Receiver = (*faultyReceiver)(nil)

func newFaultyReceiver(inner itp.Receiver, events []Event, seed int64) *faultyReceiver {
	rng, src := randx.New(seed)
	return &faultyReceiver{inner: inner, events: events, rng: rng, src: src}
}

// Recv implements itp.Receiver.
func (f *faultyReceiver) Recv() (itp.Packet, bool, error) {
	t := float64(f.tick) * control.Period
	f.tick++

	// Release delayed packets whose time has come (in arrival order).
	for f.dhead < len(f.delayed) && f.delayed[f.dhead].release <= f.tick {
		f.queue = append(f.queue, f.delayed[f.dhead].p)
		f.dhead++
	}
	if f.dhead == len(f.delayed) {
		f.delayed, f.dhead = f.delayed[:0], 0
	}

	// Drain the inner transport through the fault pipeline.
	for {
		p, ok, err := f.inner.Recv()
		if err != nil {
			return itp.Packet{}, false, err
		}
		if !ok {
			break
		}
		f.ingest(t, p)
	}

	// A reorder hold with no follow-up packet this cycle must not starve
	// the link forever; if nothing newer arrived, release it now.
	if f.held != nil && len(f.queue) == f.qhead && len(f.delayed) == f.dhead {
		f.queue = append(f.queue, *f.held)
		f.held = nil
	}

	if len(f.queue) == f.qhead {
		f.queue, f.qhead = f.queue[:0], 0
		return itp.Packet{}, false, nil
	}
	p := f.queue[f.qhead]
	f.qhead++
	if f.qhead == len(f.queue) {
		f.queue, f.qhead = f.queue[:0], 0
	}
	return p, true, nil
}

// ingest pushes one arriving datagram through the active transport faults
// and into the delivery queue.
func (f *faultyReceiver) ingest(t float64, p itp.Packet) {
	for _, e := range f.events {
		if !e.active(t) {
			continue
		}
		switch e.Kind {
		case KindPacketLoss:
			if f.hit(e.Params.Rate) {
				f.inj.count(KindPacketLoss)
				return // dropped
			}
		case KindPacketDup:
			if f.hit(e.Params.Rate) {
				f.inj.count(KindPacketDup)
				f.queue = append(f.queue, p) // the duplicate
			}
		case KindPacketReorder:
			if f.held == nil {
				if f.hit(e.Params.Rate) {
					f.inj.count(KindPacketReorder)
					held := p
					f.held = &held
					return // delivered after the next packet
				}
			} else {
				f.queue = append(f.queue, p, *f.held)
				f.held = nil
				return
			}
		case KindPacketDelay:
			if f.hit(e.Params.Rate) {
				f.inj.count(KindPacketDelay)
				f.delayed = append(f.delayed, delayedPacket{p: p, release: f.tick + e.Params.Ticks})
				return
			}
		}
	}
	f.queue = append(f.queue, p)
}

// hit draws one Bernoulli decision (rate 1 short-circuits so fully-active
// windows consume no randomness).
func (f *faultyReceiver) hit(rate float64) bool {
	if rate >= 1 {
		return true
	}
	return f.rng.Float64() < rate
}

// Close implements itp.Receiver.
func (f *faultyReceiver) Close() error { return f.inner.Close() }

// receiverState is the faultyReceiver's mutable state.
type receiverState struct {
	tick    int
	rng     randx.Pos
	queue   []itp.Packet
	delayed []delayedPacket
	held    *itp.Packet
}

// Name implements sim.Snapshotter.
func (f *faultyReceiver) Name() string { return "fault-transport" }

// CaptureSnap implements sim.Snapshotter.
func (f *faultyReceiver) CaptureSnap() any {
	s := receiverState{tick: f.tick, rng: f.src.Pos()}
	if len(f.queue) > f.qhead {
		s.queue = append([]itp.Packet(nil), f.queue[f.qhead:]...)
	}
	if len(f.delayed) > f.dhead {
		s.delayed = append([]delayedPacket(nil), f.delayed[f.dhead:]...)
	}
	if f.held != nil {
		held := *f.held
		s.held = &held
	}
	return s
}

// RestoreSnap implements sim.Snapshotter.
func (f *faultyReceiver) RestoreSnap(st any) error {
	s, ok := st.(receiverState)
	if !ok {
		return fmt.Errorf("fault: transport snapshot has type %T", st)
	}
	f.tick = s.tick
	f.src.Restore(s.rng)
	f.queue, f.qhead = append(f.queue[:0], s.queue...), 0
	f.delayed, f.dhead = append(f.delayed[:0], s.delayed...), 0
	f.held = nil
	if s.held != nil {
		held := *s.held
		f.held = &held
	}
	return nil
}
