// Package fault is the accidental-fault injection engine — the benign twin
// of internal/inject. Where inject programs *targeted attacks* onto a
// simulation rig, fault schedules the *accidental* failures the paper's
// threat model also covers (and that the authors' earlier work assessed by
// software fault injection): transport faults on the ITP link, bit errors
// and truncation on the USB write path, encoder faults and undecodable
// frames on the read path, and board firmware stalls that starve the PLC
// watchdog.
//
// A Plan is a declarative, seed-reproducible schedule of Events. Applying
// it wires fault decorators onto a sim.Config at every boundary of the
// Figure 7(a) pipeline, mirroring how inject.VariantConfig installs
// attacks:
//
//	plan := fault.Plan{Seed: 7, Events: []fault.Event{
//	    {At: 2, Duration: 0.5, Kind: fault.KindPacketLoss},
//	    {At: 4, Duration: 1, Kind: fault.KindEncoderGlitch,
//	     Params: fault.Params{Channel: 0, Magnitude: 2000, Rate: 0.05}},
//	}}
//	inj, err := plan.Apply(&cfg) // then sim.New(cfg)
//
// Every random decision is drawn from rand sources derived from Plan.Seed;
// the same plan against the same rig seed reproduces the identical fault
// sequence. The returned Injector counts how often each fault actually
// fired, so campaigns can verify coverage.
package fault

import (
	"fmt"
	"math"
	"sort"

	"ravenguard/internal/sim"
	"ravenguard/internal/usb"
)

// Kind enumerates the accidental-fault types, grouped by the pipeline
// boundary they corrupt.
type Kind int

// Fault kinds.
const (
	// KindPacketLoss drops console datagrams (a loss burst; Rate makes it
	// probabilistic instead of total).
	KindPacketLoss Kind = iota + 1
	// KindPacketDup delivers console datagrams twice.
	KindPacketDup
	// KindPacketReorder swaps the order of consecutive datagrams.
	KindPacketReorder
	// KindPacketDelay holds every datagram for Ticks control cycles.
	KindPacketDelay
	// KindBitFlip flips random bits in command frames on the write path
	// (below the guard — bus-level corruption).
	KindBitFlip
	// KindFrameTruncate shortens command frames on the write path; the
	// board rejects them as malformed.
	KindFrameTruncate
	// KindStuckDAC freezes one DAC channel of every command frame at a
	// stuck value (Params.Value, or the first value seen while active).
	KindStuckDAC
	// KindEncoderStuck freezes one encoder channel of the decoded
	// feedback at a stuck value on the read path.
	KindEncoderStuck
	// KindEncoderGlitch adds transient spikes to one encoder channel of
	// the decoded feedback on the read path.
	KindEncoderGlitch
	// KindEncoderDropout corrupts the raw feedback frame at board level
	// so it becomes undecodable; the control software must survive on the
	// last good frame.
	KindEncoderDropout
	// KindBoardStall hangs the board firmware: command frames are
	// discarded and the relayed status byte freezes, starving the PLC
	// watchdog.
	KindBoardStall

	kindEnd // one past the last kind
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPacketLoss:
		return "transport: packet loss burst"
	case KindPacketDup:
		return "transport: packet duplication"
	case KindPacketReorder:
		return "transport: packet reordering"
	case KindPacketDelay:
		return "transport: packet delay"
	case KindBitFlip:
		return "write path: frame bit flips"
	case KindFrameTruncate:
		return "write path: frame truncation"
	case KindStuckDAC:
		return "write path: stuck DAC channel"
	case KindEncoderStuck:
		return "read path: stuck encoder channel"
	case KindEncoderGlitch:
		return "read path: encoder glitch spikes"
	case KindEncoderDropout:
		return "board: undecodable feedback frames"
	case KindBoardStall:
		return "board: firmware stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists every fault kind in declaration order.
func AllKinds() []Kind {
	kinds := make([]Kind, 0, int(kindEnd)-1)
	for k := KindPacketLoss; k < kindEnd; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// boundary groups kinds by the rig hook that implements them.
type boundary int

const (
	boundaryTransport boundary = iota + 1
	boundaryWrite
	boundaryRead
	boundaryBoard
)

func (k Kind) boundary() boundary {
	switch k {
	case KindPacketLoss, KindPacketDup, KindPacketReorder, KindPacketDelay:
		return boundaryTransport
	case KindBitFlip, KindFrameTruncate, KindStuckDAC:
		return boundaryWrite
	case KindEncoderStuck, KindEncoderGlitch:
		return boundaryRead
	case KindEncoderDropout, KindBoardStall:
		return boundaryBoard
	default:
		return 0
	}
}

// Params tunes one Event. The zero value selects per-kind defaults; all
// fields are sanitised (clamped, defaulted) before use, so arbitrary
// values degrade to something applicable rather than panicking.
type Params struct {
	// Channel selects the DAC/encoder channel for per-channel faults.
	// Out-of-range values are clamped into [0, usb.NumChannels).
	Channel int
	// Value is the stuck value for KindStuckDAC (DAC counts, clamped to
	// int16) and KindEncoderStuck (encoder counts). Zero means "freeze at
	// the first value seen while the fault is active".
	Value int32
	// Magnitude is the glitch amplitude in encoder counts for
	// KindEncoderGlitch (default 2000; the sign of each spike is random).
	Magnitude float64
	// Rate is the per-cycle fault probability in [0,1]. Zero selects a
	// kind-specific default (1 for loss/truncate/dropout windows, lower
	// for bit flips and glitches).
	Rate float64
	// Ticks is a count parameter: delay in control cycles for
	// KindPacketDelay (default 25), bits flipped per corrupted frame for
	// KindBitFlip (default 1).
	Ticks int
}

// sanitized returns a copy with every field forced into its usable domain.
func (p Params) sanitized(k Kind) Params {
	if p.Channel < 0 {
		p.Channel = 0
	}
	if p.Channel >= usb.NumChannels {
		p.Channel = usb.NumChannels - 1
	}
	if math.IsNaN(p.Magnitude) || math.IsInf(p.Magnitude, 0) || p.Magnitude < 0 {
		p.Magnitude = 0
	}
	if p.Magnitude == 0 {
		p.Magnitude = 2000
	}
	if math.IsNaN(p.Rate) || p.Rate < 0 || p.Rate > 1 {
		p.Rate = 0
	}
	if p.Rate == 0 {
		switch k {
		case KindBitFlip:
			p.Rate = 0.05
		case KindEncoderGlitch:
			p.Rate = 0.05
		default:
			p.Rate = 1
		}
	}
	if p.Ticks <= 0 {
		switch k {
		case KindPacketDelay:
			p.Ticks = 25
		default:
			p.Ticks = 1
		}
	}
	if p.Ticks > 10000 {
		p.Ticks = 10000
	}
	return p
}

// Event is one scheduled fault: Kind with Params, active from At for
// Duration seconds of simulated time (Duration <= 0 means until the end of
// the session).
type Event struct {
	At       float64
	Duration float64
	Kind     Kind
	Params   Params
}

// active reports whether the event covers simulated time t. Non-finite
// schedule fields make the event permanently inactive.
func (e Event) active(t float64) bool {
	if !(t >= e.At) { // also false for NaN At
		return false
	}
	if e.Duration <= 0 {
		return !math.IsNaN(e.At)
	}
	return t < e.At+e.Duration
}

// Validate rejects events that cannot be scheduled.
func (e Event) Validate() error {
	if e.Kind <= 0 || e.Kind >= kindEnd {
		return fmt.Errorf("unknown kind %d", int(e.Kind))
	}
	if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
		return fmt.Errorf("%v: invalid start time %v", e.Kind, e.At)
	}
	if math.IsNaN(e.Duration) || math.IsInf(e.Duration, 1) {
		return fmt.Errorf("%v: invalid duration %v", e.Kind, e.Duration)
	}
	return nil
}

// Plan is a declarative, seed-reproducible fault schedule.
type Plan struct {
	// Seed drives every random fault decision. The same seed and events
	// produce the identical fault sequence against the same rig.
	Seed int64
	// Events are the scheduled faults; order does not matter.
	Events []Event
}

// Validate checks every event.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return nil
}

// Kinds returns the distinct fault kinds the plan schedules, in kind order.
func (p Plan) Kinds() []Kind {
	seen := map[Kind]bool{}
	for _, e := range p.Events {
		seen[e.Kind] = true
	}
	kinds := make([]Kind, 0, len(seen))
	//ravenlint:allow determinism keys are sorted below before use
	for k := range seen {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Injector is one applied plan's live state: per-kind counters of how
// often each fault actually fired. Not safe for concurrent use — the rig's
// step loop owns it, like every other per-rig object.
type Injector struct {
	applied [kindEnd]int
}

// Name implements sim.Snapshotter.
func (in *Injector) Name() string { return "fault-injector" }

// CaptureSnap implements sim.Snapshotter: the per-kind fire counters.
func (in *Injector) CaptureSnap() any { return in.applied }

// RestoreSnap implements sim.Snapshotter.
func (in *Injector) RestoreSnap(st any) error {
	s, ok := st.([kindEnd]int)
	if !ok {
		return fmt.Errorf("fault: injector snapshot has type %T", st)
	}
	in.applied = s
	return nil
}

// count records one applied fault action.
func (in *Injector) count(k Kind) {
	if k > 0 && k < kindEnd {
		in.applied[k]++
	}
}

// Applied returns how many times faults of kind k fired (packets dropped,
// frames corrupted, cycles stalled, ...).
func (in *Injector) Applied(k Kind) int {
	if k <= 0 || k >= kindEnd {
		return 0
	}
	return in.applied[k]
}

// Total returns the number of fault actions across all kinds.
func (in *Injector) Total() int {
	n := 0
	for _, c := range in.applied {
		n += c
	}
	return n
}

// Summary renders the per-kind counters for kinds that fired at least once.
func (in *Injector) Summary() string {
	s := ""
	for _, k := range AllKinds() {
		if c := in.Applied(k); c > 0 {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%v ×%d", k, c)
		}
	}
	if s == "" {
		return "no faults fired"
	}
	return s
}

// Apply wires the plan's faults onto a rig configuration and returns the
// live Injector tracking them. It mirrors inject.VariantConfig.Apply: call
// it after the defensive Guards are set (the write-path faulter is
// installed below them, at the bus level) and before sim.New.
//
// Every fault component Apply installs is stateful (counters, latches, rng
// positions) and is created here, once: a Config with an applied plan
// builds ONE rig. The components register themselves for the rig's
// checkpoint machinery (sim.Config.Stateful / the write chain), so a rig
// carrying dormant faults can be snapshotted and forked bit-identically.
func (p Plan) Apply(cfg *sim.Config) (*Injector, error) {
	if cfg == nil {
		return nil, fmt.Errorf("fault: nil config")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	inj := &Injector{}
	cfg.Stateful = append(cfg.Stateful, inj)
	var transport, write, read, board []Event
	for _, e := range p.Events {
		e.Params = e.Params.sanitized(e.Kind)
		switch e.Kind.boundary() {
		case boundaryTransport:
			transport = append(transport, e)
		case boundaryWrite:
			write = append(write, e)
		case boundaryRead:
			read = append(read, e)
		case boundaryBoard:
			board = append(board, e)
		}
	}

	// Each boundary gets its own seeded source so the fault sequence at
	// one boundary does not depend on how many draws another consumed.
	sub := func(b boundary) int64 { return p.Seed*1_000_003 + int64(b) }

	if len(transport) > 0 {
		prev := cfg.WrapTransport
		fr := newFaultyReceiver(nil, transport, sub(boundaryTransport))
		fr.inj = inj
		cfg.Stateful = append(cfg.Stateful, fr)
		cfg.WrapTransport = func(r itpReceiver) itpReceiver {
			if prev != nil {
				r = prev(r)
			}
			fr.inner = r
			return fr
		}
	}
	if len(write) > 0 {
		ff := newFrameFaulter(write, sub(boundaryWrite))
		ff.inj = inj
		cfg.Guards = append(cfg.Guards, ff)
	}
	if len(read) > 0 {
		prev := cfg.OnFeedbackRead
		rf := newReadFaulter(read, sub(boundaryRead))
		rf.inj = inj
		cfg.Stateful = append(cfg.Stateful, rf)
		cfg.OnFeedbackRead = func(t float64, fb *usb.Feedback) {
			if prev != nil {
				prev(t, fb)
			}
			rf.hook(t, fb)
		}
	}
	if len(board) > 0 {
		prev := cfg.OnBoard
		bf := newBoardFaulter(board, sub(boundaryBoard))
		bf.inj = inj
		cfg.Stateful = append(cfg.Stateful, bf)
		cfg.OnBoard = func(b *usb.Board) {
			if prev != nil {
				prev(b)
			}
			bf.install(b)
		}
	}
	return inj, nil
}
