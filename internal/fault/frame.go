package fault

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"ravenguard/internal/interpose"
	"ravenguard/internal/randx"
	"ravenguard/internal/usb"
)

// frameFaulter is the write-path fault wrapper: bus-level bit flips,
// truncated transfers and stuck DAC channels. It is installed at the
// bottom of the interposition chain (below the guards, via sim.Config
// Guards) because these faults strike the physical bus, after every
// software layer — including the detector — has seen the frame.
//
// It implements sim.Hook so the rig delivers it the per-cycle feedback,
// which it uses only as a clock; interpose.Reslicer provides the
// truncation capability the in-place OnWrite contract lacks.
type frameFaulter struct {
	events []Event    //ravenlint:snapshot-ignore fault schedule, configuration
	rng    *rand.Rand //ravenlint:snapshot-ignore draws through src, whose position is captured
	src    *randx.Source
	inj    *Injector //ravenlint:snapshot-ignore captured as its own snapshotter

	t     float64
	stuck map[int]int16 // event index -> latched stuck value
	trunc int           // pending truncation length for Reslice, -1 = none
}

func newFrameFaulter(events []Event, seed int64) *frameFaulter {
	rng, src := randx.New(seed)
	return &frameFaulter{events: events, rng: rng, src: src, stuck: make(map[int]int16), trunc: -1}
}

// Name implements interpose.Wrapper.
func (f *frameFaulter) Name() string { return "fault-frame" }

// OnFeedback implements sim.Hook: the faulter only reads the clock.
func (f *frameFaulter) OnFeedback(_ usb.Feedback, t float64) { f.t = t }

// OnFeedbackGap keeps the clock running through feedback dropouts.
func (f *frameFaulter) OnFeedbackGap(t float64) { f.t = t }

// OnWrite implements interpose.Wrapper: corrupt the outgoing command frame
// per the active events.
func (f *frameFaulter) OnWrite(buf []byte) interpose.Verdict {
	f.trunc = -1
	if len(buf) != usb.CommandLen {
		return interpose.Pass
	}
	for i, e := range f.events {
		if !e.active(f.t) {
			continue
		}
		switch e.Kind {
		case KindBitFlip:
			if f.hit(e.Params.Rate) {
				for n := 0; n < e.Params.Ticks; n++ {
					bit := f.rng.Intn(len(buf) * 8)
					buf[bit/8] ^= 1 << (bit % 8)
				}
				f.inj.count(KindBitFlip)
			}
		case KindStuckDAC:
			ch := e.Params.Channel
			v, latched := f.stuck[i]
			if !latched {
				if e.Params.Value != 0 {
					v = clampInt16(e.Params.Value)
				} else {
					v = int16(binary.LittleEndian.Uint16(buf[usb.DACBase+2*ch:]))
				}
				f.stuck[i] = v
			}
			binary.LittleEndian.PutUint16(buf[usb.DACBase+2*ch:], uint16(v))
			f.inj.count(KindStuckDAC)
		case KindFrameTruncate:
			if f.hit(e.Params.Rate) {
				f.trunc = f.rng.Intn(len(buf))
				f.inj.count(KindFrameTruncate)
			}
		}
	}
	return interpose.Pass
}

// Reslice implements interpose.Reslicer: apply a pending truncation.
func (f *frameFaulter) Reslice(buf []byte) []byte {
	if f.trunc < 0 || f.trunc > len(buf) {
		return buf
	}
	n := f.trunc
	f.trunc = -1
	return buf[:n]
}

func (f *frameFaulter) hit(rate float64) bool {
	if rate >= 1 {
		return true
	}
	return f.rng.Float64() < rate
}

func clampInt16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// frameState is the frameFaulter's mutable state.
type frameState struct {
	t     float64
	rng   randx.Pos
	stuck map[int]int16
	trunc int
}

// CaptureSnap implements sim.Snapshotter (Name comes from interpose.Wrapper).
func (f *frameFaulter) CaptureSnap() any {
	s := frameState{t: f.t, rng: f.src.Pos(), trunc: f.trunc, stuck: make(map[int]int16, len(f.stuck))}
	for k, v := range f.stuck {
		s.stuck[k] = v
	}
	return s
}

// RestoreSnap implements sim.Snapshotter.
func (f *frameFaulter) RestoreSnap(st any) error {
	s, ok := st.(frameState)
	if !ok {
		return fmt.Errorf("fault: frame snapshot has type %T", st)
	}
	f.t, f.trunc = s.t, s.trunc
	f.src.Restore(s.rng)
	f.stuck = make(map[int]int16, len(s.stuck))
	for k, v := range s.stuck {
		f.stuck[k] = v
	}
	return nil
}
