package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ravenguard/internal/console"
	"ravenguard/internal/sim"
	"ravenguard/internal/usb"
)

// fuzzValue draws an adversarial float: extremes, non-finite values and
// ordinary magnitudes in equal measure.
func fuzzValue(rng *rand.Rand) float64 {
	switch rng.Intn(6) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1 - 2*rng.Intn(2))
	case 2:
		return (rng.Float64() - 0.5) * 1e18
	case 3:
		return -rng.Float64() * 10
	default:
		return rng.Float64() * 8
	}
}

// fuzzEvent builds a schedulable event (valid kind, valid times) with
// arbitrary — including hostile — params.
func fuzzEvent(rng *rand.Rand) Event {
	kinds := AllKinds()
	return Event{
		At:       rng.Float64() * 6,
		Duration: rng.Float64() * 3,
		Kind:     kinds[rng.Intn(len(kinds))],
		Params: Params{
			Channel:   rng.Intn(41) - 20,
			Value:     int32(rng.Uint32()),
			Magnitude: fuzzValue(rng),
			Rate:      fuzzValue(rng),
			Ticks:     rng.Intn(2_000_001) - 1_000_000,
		},
	}
}

func TestPlanArbitraryParamsNeverPanic(t *testing.T) {
	// Valid schedules with hostile params (NaN rates, huge magnitudes,
	// out-of-range channels, negative tick counts) must apply and run a
	// full session without ever panicking.
	if testing.Short() {
		t.Skip("full-session fuzz loop")
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 12; i++ {
		events := make([]Event, 1+rng.Intn(4))
		for j := range events {
			events[j] = fuzzEvent(rng)
		}
		plan := Plan{Seed: rng.Int63(), Events: events}
		cfg := sim.Config{Seed: int64(700 + i), Script: console.StandardScript(2)}
		if _, err := plan.Apply(&cfg); err != nil {
			t.Fatalf("iteration %d: schedulable plan rejected: %v (%+v)", i, err, events)
		}
		rig, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if _, err := rig.Run(0); err != nil {
			t.Fatalf("iteration %d: run failed under %+v: %v", i, events, err)
		}
	}
}

func TestParamsSanitizedAlwaysUsable(t *testing.T) {
	// sanitized must map ANY params — non-finite floats included — into
	// the usable domain for every kind.
	f := func(ch int, value int32, mag, rate float64, ticks int, kindIdx uint8) bool {
		kinds := AllKinds()
		k := kinds[int(kindIdx)%len(kinds)]
		p := Params{Channel: ch, Value: value, Magnitude: mag, Rate: rate, Ticks: ticks}.sanitized(k)
		if p.Channel < 0 || p.Channel >= usb.NumChannels {
			return false
		}
		if !(p.Magnitude > 0) || math.IsInf(p.Magnitude, 0) {
			return false
		}
		if !(p.Rate > 0 && p.Rate <= 1) {
			return false
		}
		return p.Ticks > 0 && p.Ticks <= 10000
	}
	cfg := &quick.Config{Values: nil, MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// testing/quick never generates NaN/Inf floats; cover them explicitly.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		p := Params{Magnitude: v, Rate: v}.sanitized(KindEncoderGlitch)
		if math.IsNaN(p.Magnitude) || math.IsInf(p.Magnitude, 0) || math.IsNaN(p.Rate) {
			t.Fatalf("sanitized leaked non-finite params: %+v", p)
		}
	}
}

func TestEventActiveTotalOverArbitraryTimes(t *testing.T) {
	// active must be a total function, and non-finite schedule fields must
	// never activate an event.
	f := func(at, dur, tt float64) bool {
		e := Event{At: at, Duration: dur, Kind: KindBitFlip}
		act := e.active(tt)
		if math.IsNaN(at) || math.IsNaN(tt) {
			return !act
		}
		if act && tt < at {
			return false // never active before its start
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if (Event{At: math.NaN(), Kind: KindBitFlip}).active(math.Inf(1)) {
		t.Fatal("NaN-start event activated at +Inf")
	}
}

func TestInjectorIgnoresOutOfRangeKinds(t *testing.T) {
	var inj Injector
	inj.count(Kind(-3))
	inj.count(Kind(999))
	if inj.Total() != 0 {
		t.Fatal("out-of-range kinds were counted")
	}
	if inj.Applied(Kind(-3)) != 0 || inj.Applied(Kind(999)) != 0 {
		t.Fatal("out-of-range kind reported applications")
	}
}
