package fault_test

import (
	"strings"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/fault"
	"ravenguard/internal/sim"
)

func TestBoardStallLatchesWatchdogEStop(t *testing.T) {
	// A stalled board stops relaying the watchdog square wave; the PLC's
	// supervision (50 ms window) must latch E-STOP shortly after the stall
	// begins.
	plan := fault.Plan{Seed: 1, Events: []fault.Event{
		{At: 3.0, Duration: 1.0, Kind: fault.KindBoardStall},
	}}
	cfg := sim.Config{Seed: 601, Script: console.StandardScript(5)}
	inj, err := plan.Apply(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	estopAt := -1.0
	rig.Observe(func(si sim.StepInfo) {
		if estopAt < 0 && si.PLCEStop {
			estopAt = si.T
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if !rig.PLC().EStopped() {
		t.Fatal("PLC did not latch although the board stalled for 1 s")
	}
	if cause := rig.PLC().EStopCause(); !strings.Contains(cause, "watchdog") {
		t.Fatalf("E-STOP cause = %q, want watchdog supervision", cause)
	}
	// The latch must land within roughly two supervision windows of the
	// stall onset (50 ms window + sampling slack).
	if estopAt < 3.0 || estopAt > 3.12 {
		t.Fatalf("E-STOP latched at t=%.3f, want within [3.0, 3.12]", estopAt)
	}
	if inj.Applied(fault.KindBoardStall) == 0 {
		t.Fatal("injector recorded no stalled cycles")
	}
	if fc := rig.FaultCounters(); fc.BoardStallDrops == 0 {
		t.Fatal("stalled board dropped no command frames")
	}
}

func TestHoldSafeRidesThroughEncoderDropout(t *testing.T) {
	// Total encoder dropout for half a second with the guard in hold-safe
	// mode: the pipeline must stay numerically sane end to end — every
	// command bounded, every plant state finite, no crash.
	guard, err := core.NewGuard(core.Config{
		Thresholds: core.DefaultThresholds(),
		Mode:       core.ModeHoldSafe,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Seed: 2, Events: []fault.Event{
		{At: 3.0, Duration: 0.5, Kind: fault.KindEncoderDropout, Params: fault.Params{Rate: 1}},
	}}
	cfg := sim.Config{Seed: 602, Script: console.StandardScript(5)}
	cfg.Guards = append(cfg.Guards, guard)
	inj, err := plan.Apply(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	rig.Observe(func(si sim.StepInfo) {
		step++
		if !si.TipTrue.IsFinite() {
			t.Fatalf("step %d: non-finite end-effector position %v", step, si.TipTrue)
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatalf("run aborted under encoder dropout: %v", err)
	}
	if inj.Applied(fault.KindEncoderDropout) == 0 {
		t.Fatal("injector recorded no dropped feedback frames")
	}
	if fc := rig.FaultCounters(); fc.FeedbackDrops == 0 {
		t.Fatal("rig counted no feedback drops despite total dropout")
	}
	if guard.FeedbackGaps() == 0 {
		t.Fatal("guard was never told about the feedback gaps")
	}
}

func TestPlanValidateRejectsBadEvents(t *testing.T) {
	cases := []fault.Plan{
		{Events: []fault.Event{{Kind: 0}}},
		{Events: []fault.Event{{Kind: fault.Kind(99)}}},
		{Events: []fault.Event{{Kind: fault.KindBitFlip, At: -1}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid plan validated", i)
		}
		var cfg sim.Config
		if _, err := p.Apply(&cfg); err == nil {
			t.Fatalf("case %d: invalid plan applied", i)
		}
	}
	if _, err := (fault.Plan{}).Apply(nil); err == nil {
		t.Fatal("nil config accepted")
	}
}

func TestPlanKindsAndInjectorSummary(t *testing.T) {
	p := fault.Plan{Events: []fault.Event{
		{Kind: fault.KindEncoderGlitch},
		{Kind: fault.KindPacketLoss},
		{Kind: fault.KindPacketLoss},
	}}
	kinds := p.Kinds()
	if len(kinds) != 2 || kinds[0] != fault.KindPacketLoss || kinds[1] != fault.KindEncoderGlitch {
		t.Fatalf("Kinds() = %v", kinds)
	}
	var inj fault.Injector
	if got := inj.Summary(); got != "no faults fired" {
		t.Fatalf("empty summary = %q", got)
	}
}

func TestPlanDeterministicAcrossRuns(t *testing.T) {
	// The same plan and rig seed must reproduce the identical degradation
	// statistics and final state.
	run := func() (sim.FaultCounters, int) {
		plan := fault.Plan{Seed: 7, Events: []fault.Event{
			{At: 3.0, Duration: 0.5, Kind: fault.KindPacketLoss, Params: fault.Params{Rate: 0.3}},
			{At: 3.2, Duration: 0.5, Kind: fault.KindEncoderDropout, Params: fault.Params{Rate: 0.4}},
			{At: 3.4, Duration: 0.3, Kind: fault.KindBitFlip},
		}}
		cfg := sim.Config{Seed: 603, Script: console.StandardScript(5)}
		inj, err := plan.Apply(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		rig, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		return rig.FaultCounters(), inj.Total()
	}
	fc1, n1 := run()
	fc2, n2 := run()
	if fc1 != fc2 || n1 != n2 {
		t.Fatalf("non-deterministic: %+v/%d vs %+v/%d", fc1, n1, fc2, n2)
	}
	if n1 == 0 {
		t.Fatal("plan fired no faults")
	}
}
