package fault

import (
	"math"
	"math/rand"

	"ravenguard/internal/control"
	"ravenguard/internal/usb"
)

// feedbackHook builds the read-path fault hook installed as
// sim.Config.OnFeedbackRead: faults of the read system call, corrupting
// the decoded feedback after the hardware produced it and before the
// control software consumes it (the accidental counterpart of Table I's
// "change encoder feedback" attack; the guard, below this layer, still
// sees the true stream).
func feedbackHook(events []Event, rng *rand.Rand, inj *Injector) func(t float64, fb *usb.Feedback) {
	stuck := make(map[int]int32) // event index -> latched stuck value
	return func(t float64, fb *usb.Feedback) {
		for i, e := range events {
			if !e.active(t) {
				continue
			}
			switch e.Kind {
			case KindEncoderStuck:
				ch := e.Params.Channel
				v, latched := stuck[i]
				if !latched {
					if e.Params.Value != 0 {
						v = e.Params.Value
					} else {
						v = fb.Encoder[ch]
					}
					stuck[i] = v
				}
				fb.Encoder[ch] = v
				inj.count(KindEncoderStuck)
			case KindEncoderGlitch:
				if rate := e.Params.Rate; rate >= 1 || rng.Float64() < rate {
					spike := int32(math.Round(e.Params.Magnitude))
					if rng.Intn(2) == 0 {
						spike = -spike
					}
					fb.Encoder[e.Params.Channel] += spike
					inj.count(KindEncoderGlitch)
				}
			}
		}
	}
}

// boardFaulter drives the board-level faults: feedback-frame corruption
// (undecodable frames) and firmware stall. It owns the board's read-fault
// hook and self-clocks on it — the rig reads feedback exactly once per
// control period, so the call counter is the simulated time.
type boardFaulter struct {
	events []Event
	rng    *rand.Rand
	inj    *Injector
	board  *usb.Board
	tick   int
}

func newBoardFaulter(events []Event, rng *rand.Rand, inj *Injector) *boardFaulter {
	return &boardFaulter{events: events, rng: rng, inj: inj}
}

// install binds the faulter to the assembled board (sim.Config.OnBoard).
func (bf *boardFaulter) install(b *usb.Board) {
	bf.board = b
	b.SetReadFault(bf.onRead)
}

// onRead is the board's read-fault hook: advance the clock, drive the
// stall state, and corrupt the raw feedback frame while a dropout event is
// active.
func (bf *boardFaulter) onRead(frame []byte) []byte {
	t := float64(bf.tick) * control.Period
	bf.tick++

	stall := false
	for _, e := range bf.events {
		if !e.active(t) {
			continue
		}
		switch e.Kind {
		case KindBoardStall:
			stall = true
			bf.inj.count(KindBoardStall)
		case KindEncoderDropout:
			if rate := e.Params.Rate; rate >= 1 || bf.rng.Float64() < rate {
				// Truncate the frame: the decoder rejects any length
				// other than usb.FeedbackLen, so the cycle's feedback is
				// lost and the rig degrades to the last good frame.
				if len(frame) > 0 {
					frame = frame[:bf.rng.Intn(len(frame))]
				}
				bf.inj.count(KindEncoderDropout)
			}
		}
	}
	// SetStalled snapshots from board fields only, so flipping it from
	// inside the read hook does not recurse into ReadFeedback.
	bf.board.SetStalled(stall)
	return frame
}
