package fault

import (
	"fmt"
	"math"
	"math/rand"

	"ravenguard/internal/control"
	"ravenguard/internal/randx"
	"ravenguard/internal/usb"
)

// readFaulter is the read-path fault hook installed as
// sim.Config.OnFeedbackRead: faults of the read system call, corrupting
// the decoded feedback after the hardware produced it and before the
// control software consumes it (the accidental counterpart of Table I's
// "change encoder feedback" attack; the guard, below this layer, still
// sees the true stream).
type readFaulter struct {
	events []Event    //ravenlint:snapshot-ignore fault schedule, configuration
	rng    *rand.Rand //ravenlint:snapshot-ignore draws through src, whose position is captured
	src    *randx.Source
	inj    *Injector //ravenlint:snapshot-ignore captured as its own snapshotter

	stuck map[int]int32 // event index -> latched stuck value
}

func newReadFaulter(events []Event, seed int64) *readFaulter {
	rng, src := randx.New(seed)
	return &readFaulter{events: events, rng: rng, src: src, stuck: make(map[int]int32)}
}

// hook corrupts one cycle's decoded feedback per the active events.
func (rf *readFaulter) hook(t float64, fb *usb.Feedback) {
	for i, e := range rf.events {
		if !e.active(t) {
			continue
		}
		switch e.Kind {
		case KindEncoderStuck:
			ch := e.Params.Channel
			v, latched := rf.stuck[i]
			if !latched {
				if e.Params.Value != 0 {
					v = e.Params.Value
				} else {
					v = fb.Encoder[ch]
				}
				rf.stuck[i] = v
			}
			fb.Encoder[ch] = v
			rf.inj.count(KindEncoderStuck)
		case KindEncoderGlitch:
			if rate := e.Params.Rate; rate >= 1 || rf.rng.Float64() < rate {
				spike := int32(math.Round(e.Params.Magnitude))
				if rf.rng.Intn(2) == 0 {
					spike = -spike
				}
				fb.Encoder[e.Params.Channel] += spike
				rf.inj.count(KindEncoderGlitch)
			}
		}
	}
}

// readState is the readFaulter's mutable state.
type readState struct {
	rng   randx.Pos
	stuck map[int]int32
}

// Name implements sim.Snapshotter.
func (rf *readFaulter) Name() string { return "fault-read" }

// CaptureSnap implements sim.Snapshotter.
func (rf *readFaulter) CaptureSnap() any {
	s := readState{rng: rf.src.Pos(), stuck: make(map[int]int32, len(rf.stuck))}
	for k, v := range rf.stuck {
		s.stuck[k] = v
	}
	return s
}

// RestoreSnap implements sim.Snapshotter.
func (rf *readFaulter) RestoreSnap(st any) error {
	s, ok := st.(readState)
	if !ok {
		return fmt.Errorf("fault: read snapshot has type %T", st)
	}
	rf.src.Restore(s.rng)
	rf.stuck = make(map[int]int32, len(s.stuck))
	for k, v := range s.stuck {
		rf.stuck[k] = v
	}
	return nil
}

// boardFaulter drives the board-level faults: feedback-frame corruption
// (undecodable frames) and firmware stall. It owns the board's read-fault
// hook and self-clocks on it — the rig reads feedback exactly once per
// control period, so the call counter is the simulated time.
type boardFaulter struct {
	events []Event    //ravenlint:snapshot-ignore fault schedule, configuration
	rng    *rand.Rand //ravenlint:snapshot-ignore draws through src, whose position is captured
	src    *randx.Source
	inj    *Injector  //ravenlint:snapshot-ignore captured as its own snapshotter
	board  *usb.Board //ravenlint:snapshot-ignore wiring; board state captured by the rig
	tick   int
}

func newBoardFaulter(events []Event, seed int64) *boardFaulter {
	rng, src := randx.New(seed)
	return &boardFaulter{events: events, rng: rng, src: src}
}

// install binds the faulter to the assembled board (sim.Config.OnBoard).
func (bf *boardFaulter) install(b *usb.Board) {
	bf.board = b
	b.SetReadFault(bf.onRead)
}

// onRead is the board's read-fault hook: advance the clock, drive the
// stall state, and corrupt the raw feedback frame while a dropout event is
// active.
func (bf *boardFaulter) onRead(frame []byte) []byte {
	t := float64(bf.tick) * control.Period
	bf.tick++

	stall := false
	for _, e := range bf.events {
		if !e.active(t) {
			continue
		}
		switch e.Kind {
		case KindBoardStall:
			stall = true
			bf.inj.count(KindBoardStall)
		case KindEncoderDropout:
			if rate := e.Params.Rate; rate >= 1 || bf.rng.Float64() < rate {
				// Truncate the frame: the decoder rejects any length
				// other than usb.FeedbackLen, so the cycle's feedback is
				// lost and the rig degrades to the last good frame.
				if len(frame) > 0 {
					frame = frame[:bf.rng.Intn(len(frame))]
				}
				bf.inj.count(KindEncoderDropout)
			}
		}
	}
	// SetStalled snapshots from board fields only, so flipping it from
	// inside the read hook does not recurse into ReadFeedback.
	bf.board.SetStalled(stall)
	return frame
}

// boardState is the boardFaulter's mutable state.
type boardState struct {
	tick int
	rng  randx.Pos
}

// Name implements sim.Snapshotter.
func (bf *boardFaulter) Name() string { return "fault-board" }

// CaptureSnap implements sim.Snapshotter.
func (bf *boardFaulter) CaptureSnap() any {
	return boardState{tick: bf.tick, rng: bf.src.Pos()}
}

// RestoreSnap implements sim.Snapshotter.
func (bf *boardFaulter) RestoreSnap(st any) error {
	s, ok := st.(boardState)
	if !ok {
		return fmt.Errorf("fault: board snapshot has type %T", st)
	}
	bf.tick = s.tick
	bf.src.Restore(s.rng)
	return nil
}
