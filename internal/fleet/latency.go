package fleet

// latencyHist is a fixed-bucket tick-latency histogram: 2 µs buckets to
// ~4 ms, overflow counted separately with the max retained. Fixed buckets
// keep recording allocation-free on the tick path; quantiles are read once
// at report time.
type latencyHist struct {
	bucket   [latBuckets]int64
	count    int64
	overflow int64
	sumNs    int64
	maxNs    int64
}

const (
	latBucketNs = 2_000 // 2 µs resolution
	latBuckets  = 2048  // covers [0, 4.096 ms); slower ticks overflow
)

//ravenlint:noalloc
func (h *latencyHist) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	idx := ns / latBucketNs
	if idx >= latBuckets {
		h.overflow++
	} else {
		h.bucket[idx]++
	}
	h.count++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
}

// merge folds another histogram into h.
func (h *latencyHist) merge(o *latencyHist) {
	for i := range h.bucket {
		h.bucket[i] += o.bucket[i]
	}
	h.count += o.count
	h.overflow += o.overflow
	h.sumNs += o.sumNs
	if o.maxNs > h.maxNs {
		h.maxNs = o.maxNs
	}
}

// quantile returns the q-quantile latency in nanoseconds (bucket
// midpoints; the max for ranks landing in the overflow region).
func (h *latencyHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for i := 0; i < latBuckets; i++ {
		seen += h.bucket[i]
		if seen > rank {
			return (float64(i) + 0.5) * latBucketNs
		}
	}
	return float64(h.maxNs)
}

// overBudget counts recorded ticks at or over budgetNs (bucket
// granularity: the bucket containing budgetNs counts as over).
func (h *latencyHist) overBudget(budgetNs int64) int64 {
	over := h.overflow
	for i := budgetNs / latBucketNs; i < latBuckets; i++ {
		over += h.bucket[i]
	}
	return over
}
