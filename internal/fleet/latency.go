package fleet

import "math/bits"

// latencyHist is a log-linear tick-latency histogram (HDR-style): latencies
// are scaled to 256 ns units; the first 64 buckets are linear, then every
// octave splits into 64 sub-buckets, bounding relative error at ~1.6%
// everywhere. That keeps 256 ns resolution on healthy sub-20 µs ticks while
// still resolving a 2-minute GC stall or scheduler seizure instead of
// saturating (the old fixed 2 µs × 2048 layout lumped everything past
// 4.096 ms into one overflow count). Recording stays allocation-free on the
// tick path; quantiles are read once at report time.
type latencyHist struct {
	bucket   [latBuckets]int64
	count    int64
	overflow int64
	sumNs    int64
	maxNs    int64
}

const (
	latUnitNs   = 256                            // linear resolution: one unit = 256 ns
	latSubBits  = 6                              // 64 sub-buckets per octave
	latSubCount = 1 << latSubBits                // sub-buckets per octave; also linear range
	latOctaves  = 23                             // octaves after the linear range
	latBuckets  = latSubCount * (latOctaves + 1) // 1536: covers to ~137 s
)

// latIndex maps a latency to its bucket, or latBuckets for the (absurd,
// >137 s) overflow region.
//
//ravenlint:noalloc
func latIndex(ns int64) int {
	n := uint64(ns) / latUnitNs
	if n < latSubCount {
		return int(n)
	}
	k := bits.Len64(n) - latSubBits - 1 // whole octaves above the linear range
	if k >= latOctaves {
		return latBuckets
	}
	return latSubCount + latSubCount*k + int(n>>uint(k)) - latSubCount
}

// latMidpointNs returns the midpoint latency of a bucket, the value
// quantiles report for ranks landing in it.
func latMidpointNs(idx int) float64 {
	if idx < latSubCount {
		return (float64(idx) + 0.5) * latUnitNs
	}
	k := (idx - latSubCount) / latSubCount
	m := latSubCount + (idx-latSubCount)%latSubCount
	return (float64(m) + 0.5) * float64(int64(1)<<uint(k)) * latUnitNs
}

//ravenlint:noalloc
func (h *latencyHist) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if idx := latIndex(ns); idx >= latBuckets {
		h.overflow++
	} else {
		h.bucket[idx]++
	}
	h.count++
	h.sumNs += ns
	if ns > h.maxNs {
		h.maxNs = ns
	}
}

// merge folds another histogram into h.
func (h *latencyHist) merge(o *latencyHist) {
	for i := range h.bucket {
		h.bucket[i] += o.bucket[i]
	}
	h.count += o.count
	h.overflow += o.overflow
	h.sumNs += o.sumNs
	if o.maxNs > h.maxNs {
		h.maxNs = o.maxNs
	}
}

// quantile returns the q-quantile latency in nanoseconds (bucket
// midpoints; the max for ranks landing in the overflow region).
func (h *latencyHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for i := 0; i < latBuckets; i++ {
		seen += h.bucket[i]
		if seen > rank {
			return latMidpointNs(i)
		}
	}
	return float64(h.maxNs)
}

// overBudget counts recorded ticks at or over budgetNs (bucket
// granularity: the bucket containing budgetNs counts as over).
func (h *latencyHist) overBudget(budgetNs int64) int64 {
	over := h.overflow
	for i := latIndex(budgetNs); i < latBuckets; i++ {
		over += h.bucket[i]
	}
	return over
}
