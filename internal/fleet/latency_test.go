package fleet

import "testing"

// TestLatIndexLayout pins the log-linear bucket layout: indices are
// monotone in latency, every bucket's midpoint sits within its relative
// error bound, and the linear range keeps exact 256 ns resolution.
func TestLatIndexLayout(t *testing.T) {
	// Linear range: one bucket per 256 ns unit.
	for n := 0; n < latSubCount; n++ {
		ns := int64(n * latUnitNs)
		if got := latIndex(ns); got != n {
			t.Fatalf("latIndex(%d) = %d, want %d", ns, got, n)
		}
	}
	// Monotone, gap-free coverage across the whole range: walking bucket
	// lower bounds visits every index exactly once.
	prev := -1
	for idx := 0; idx < latBuckets; idx++ {
		mid := latMidpointNs(idx)
		got := latIndex(int64(mid))
		if got != idx {
			t.Fatalf("midpoint of bucket %d (%.0f ns) maps to bucket %d", idx, mid, got)
		}
		if got <= prev {
			t.Fatalf("bucket order violated at %d", idx)
		}
		prev = got
	}
	// Relative error: past the linear range, a bucket midpoint is within
	// 1/64 of any latency it absorbs.
	for _, ns := range []int64{20_000, 50_000, 1_000_000, 4_096_000, 5_000_000, 250_000_000, 10_000_000_000, 100_000_000_000} {
		mid := latMidpointNs(latIndex(ns))
		if rel := (mid - float64(ns)) / float64(ns); rel > 1.0/latSubCount || rel < -1.0/latSubCount {
			t.Errorf("latency %d ns lands at midpoint %.0f (rel err %.4f)", ns, mid, rel)
		}
	}
	// >137 s is the overflow region.
	if latIndex(200_000_000_000) != latBuckets {
		t.Errorf("200 s must overflow")
	}
}

// TestLatencyHistStalls checks the failure mode the old fixed-bucket layout
// had: multi-millisecond and multi-second stalls must land in real buckets
// with resolved quantiles, not saturate an overflow counter.
func TestLatencyHistStalls(t *testing.T) {
	var h latencyHist
	for i := 0; i < 9900; i++ {
		h.record(120_000) // healthy 120 µs ticks
	}
	for i := 0; i < 100; i++ {
		h.record(2_500_000_000) // 2.5 s stalls — 610× the old 4.096 ms cap
	}
	if h.overflow != 0 {
		t.Fatalf("overflow = %d, want stalls resolved in buckets", h.overflow)
	}
	p50, p999 := h.quantile(0.50), h.quantile(0.999)
	if rel := p50/120_000 - 1; rel > 0.02 || rel < -0.02 {
		t.Errorf("p50 = %.0f ns, want ~120 µs", p50)
	}
	if rel := p999/2_500_000_000 - 1; rel > 0.02 || rel < -0.02 {
		t.Errorf("p99.9 = %.0f ns, want ~2.5 s", p999)
	}
	if got := h.overBudget(1_000_000); got != 100 {
		t.Errorf("overBudget(1ms) = %d, want the 100 stalls", got)
	}
	if h.maxNs != 2_500_000_000 {
		t.Errorf("maxNs = %d", h.maxNs)
	}

	// merge must fold buckets and extremes.
	var m latencyHist
	m.record(50_000)
	m.merge(&h)
	if m.count != h.count+1 || m.maxNs != h.maxNs {
		t.Errorf("merge lost counts or max")
	}
}
