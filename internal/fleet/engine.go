package fleet

import (
	"fmt"
	"sort"
	"sync"
	"syscall"

	"ravenguard/internal/control"
	"ravenguard/internal/sim"
)

// Config assembles an Engine.
type Config struct {
	// Specs are the sessions to run; Specs[i].StartTick schedules its
	// admission. Session results keep this order.
	Specs []Spec
	// Workers is the shard count; sessions go to workers round-robin
	// (i % Workers). 0 selects 1.
	Workers int
	// Clock times ticks and the wall-clock envelope (nil selects
	// sim.WallClock; tests inject sim.TickClock-style fakes).
	Clock sim.Clock
}

// Report is the fleet run's SLO summary.
type Report struct {
	Sessions int `json:"sessions"`
	Workers  int `json:"workers"`
	// SessionTicks is the total simulated control periods across sessions.
	SessionTicks int64   `json:"session_ticks"`
	WallSeconds  float64 `json:"wall_seconds"`
	// TicksPerSecond is SessionTicks / WallSeconds: how many 1 ms session
	// ticks the process sustained per wall second.
	TicksPerSecond float64 `json:"session_ticks_per_second"`
	// SessionsPerCore is the SLO headline: how many concurrent 1 kHz
	// sessions one core sustains in real time
	// (TicksPerSecond / 1000 / Workers).
	SessionsPerCore float64 `json:"sessions_per_core"`
	// Worker-tick latency against the 1 ms budget: one tick advances every
	// session resident on that worker by one control period.
	WorkerTicks     int64   `json:"worker_ticks"`
	TickP50Ms       float64 `json:"tick_p50_ms"`
	TickP99Ms       float64 `json:"tick_p99_ms"`
	TickMaxMs       float64 `json:"tick_max_ms"`
	TickMeanMs      float64 `json:"tick_mean_ms"`
	TickBudgetMs    float64 `json:"tick_budget_ms"`
	TicksOverBudget int64   `json:"ticks_over_budget"`
	PeakRSSBytes    int64   `json:"peak_rss_bytes"`
	// Fleet-wide guard/safety outcomes.
	Alarms    int `json:"alarms"`
	Mitigated int `json:"mitigated"`
	EStops    int `json:"estops"`
}

// Engine shards a fleet of session specs across workers and runs them to
// completion.
type Engine struct {
	cfg      Config
	sessions []*Session // by original spec index, populated during Run
}

// New validates the config and builds an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("fleet: no sessions")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.WallClock
	}
	for i, sp := range cfg.Specs {
		if sp.StartTick < 0 {
			return nil, fmt.Errorf("fleet: spec %d: negative StartTick %d", i, sp.StartTick)
		}
	}
	return &Engine{cfg: cfg, sessions: make([]*Session, len(cfg.Specs))}, nil
}

// Sessions returns the built sessions in spec order (entries are populated
// during Run; read after Run returns).
func (e *Engine) Sessions() []*Session { return e.sessions }

// assignment is one spec plus its index into the engine's result slice.
type assignment struct {
	spec Spec
	idx  int
}

// Run executes the whole fleet and returns the SLO report. Each worker is
// one goroutine free-running its shard — sessions never interact, so
// workers need no per-tick barrier and per-session results are invariant
// to the worker count.
func (e *Engine) Run() (Report, error) {
	nw := e.cfg.Workers
	shards := make([][]assignment, nw)
	for i, sp := range e.cfg.Specs {
		w := i % nw
		shards[w] = append(shards[w], assignment{spec: sp, idx: i})
	}
	for _, shard := range shards {
		// Admission order within a shard follows StartTick; the stable sort
		// keeps spec order among equal ticks, so scheduling is reproducible.
		sort.SliceStable(shard, func(a, b int) bool {
			return shard[a].spec.StartTick < shard[b].spec.StartTick
		})
	}

	workers := make([]*Worker, nw)
	for wi, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		w, err := NewWorker(len(shard), e.cfg.Clock)
		if err != nil {
			return Report{}, err
		}
		workers[wi] = w
	}

	errs := make([]error, nw)
	start := e.cfg.Clock()
	var wg sync.WaitGroup
	for wi := range workers {
		if workers[wi] == nil {
			continue
		}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			errs[wi] = e.runWorker(workers[wi], shards[wi])
		}(wi)
	}
	wg.Wait()
	wall := e.cfg.Clock() - start
	for _, err := range errs {
		if err != nil {
			return Report{}, err
		}
	}
	return e.report(workers, wall), nil
}

// runWorker drives one worker's shard: admissions due at each tick, the
// lockstep tick itself, and idle fast-forward across gaps where the worker
// has nothing resident yet.
func (e *Engine) runWorker(w *Worker, pending []assignment) error {
	tick := 0
	for {
		for len(pending) > 0 && pending[0].spec.StartTick <= tick {
			s, err := pending[0].spec.Build()
			if err != nil {
				return err
			}
			if err := w.Admit(s); err != nil {
				return err
			}
			e.sessions[pending[0].idx] = s
			pending = pending[1:]
		}
		if w.Resident() == 0 {
			if len(pending) == 0 {
				return nil
			}
			// Idle gap before the next admission: simulated time in an
			// empty worker costs nothing.
			tick = pending[0].spec.StartTick
			continue
		}
		if err := w.Tick(); err != nil {
			return err
		}
		tick++
	}
}

// report aggregates worker histograms and session outcomes.
func (e *Engine) report(workers []*Worker, wallNs int64) Report {
	const budgetNs = int64(control.Period * 1e9) // the 1 ms tick budget

	var hist latencyHist
	for _, w := range workers {
		if w != nil {
			hist.merge(&w.hist)
		}
	}
	r := Report{
		Sessions:        len(e.sessions),
		Workers:         e.cfg.Workers,
		WallSeconds:     float64(wallNs) / 1e9,
		WorkerTicks:     hist.count,
		TickP50Ms:       hist.quantile(0.50) / 1e6,
		TickP99Ms:       hist.quantile(0.99) / 1e6,
		TickMaxMs:       float64(hist.maxNs) / 1e6,
		TickBudgetMs:    float64(budgetNs) / 1e6,
		TicksOverBudget: hist.overBudget(budgetNs),
		PeakRSSBytes:    peakRSSBytes(),
	}
	if hist.count > 0 {
		r.TickMeanMs = float64(hist.sumNs) / float64(hist.count) / 1e6
	}
	for _, s := range e.sessions {
		if s == nil {
			continue
		}
		r.SessionTicks += int64(s.Ticks())
		if g := s.Guard(); g != nil {
			r.Alarms += g.Alarms()
			r.Mitigated += g.Mitigated()
		}
		if s.Rig().PLC().EStopped() {
			r.EStops++
		}
	}
	if r.WallSeconds > 0 {
		r.TicksPerSecond = float64(r.SessionTicks) / r.WallSeconds
		r.SessionsPerCore = r.TicksPerSecond / (1 / control.Period) / float64(r.Workers)
	}
	return r
}

// peakRSSBytes reads the process's peak resident set via getrusage
// (Linux reports ru_maxrss in kilobytes).
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss) * 1024
}
