// Package fleet is the multi-tenant guard service engine: it runs many
// concurrent simulated teleoperation sessions — console script, 1 kHz
// control stack, physical plant, optionally under attack and optionally
// protected by the dynamic model-based guard — inside one process, at a
// density of hundreds to thousands of sessions per core.
//
// Sessions are sharded round-robin across per-core workers. Each worker
// keeps its sessions' plants resident in the lanes of one
// structure-of-arrays stepper (robot.LaneSet) and drives every control
// period as a single lockstep sweep: all sessions' control halves
// (sim.Rig.StepControl), one fused batch integration of every unbraked
// plant, then all bookkeeping halves (sim.Rig.FinishStep) with per-session
// guard decisions folded into a running digest. Admission and retirement
// are dynamic — lanes compact by swaps on session exit — and the
// steady-state tick path is allocation-free.
//
// Determinism: a session run inside a packed fleet produces byte-identical
// guard verdicts and tip trajectories to the same Spec run alone
// (RunStandalone), at any worker count, through admission, parking,
// compaction, and retirement. fleet_test.go pins this at 1 and 8 workers.
package fleet

import (
	"fmt"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/interpose"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
)

// Spec declares one session: what the operator does, whether malware is
// preloaded, and whether the guard is watching. A Spec is pure data — two
// Builds of the same Spec produce bit-identical sessions.
type Spec struct {
	// Seed is the session's reproducibility seed (console jitter, plant
	// noise).
	Seed int64
	// TeleopSeconds is the pedal-down teleoperation time of the standard
	// script (0 selects the sim default of 10 s).
	TeleopSeconds float64
	// TrajIdx selects the surgical-motion profile (0 = circle,
	// 1 = lissajous).
	TrajIdx int

	// Attack selects the injected attack: "none", "A" (unintended user
	// inputs) or "B" (unintended torque commands).
	Attack string
	// AttackValue is scenario B's injected DAC error value.
	AttackValue int16
	// AttackMagnitude is scenario A's injected tip motion per cycle, meters.
	AttackMagnitude float64
	// AttackDuration is the attack activation period in control cycles.
	AttackDuration int
	// AttackDelay is the pedal-down cycles before the attack activates.
	AttackDelay int

	// Guard selects the dynamic-model guard mode: "off", "monitor",
	// "mitigate" or "holdsafe".
	Guard string
	// Thresholds overrides the guard's alarm limits (zero value selects the
	// built-in learned defaults).
	Thresholds core.Thresholds

	// StartTick is the engine tick at which the session is admitted (fleet
	// runs only; RunStandalone ignores it).
	StartTick int
}

// Session is one built session: the assembled rig plus the per-tick
// verdict/trajectory digest the fleet engine maintains.
type Session struct {
	Spec     Spec
	rig      *sim.Rig
	guard    *core.Guard // nil when Spec.Guard is "off"
	injected func() int  // nil when Spec.Attack is "none"
	dig      Digest
	ticks    int
}

// Build assembles the session with the spec's standard script and
// trajectory.
func (sp Spec) Build() (*Session, error) {
	var script console.Script
	if sp.TeleopSeconds > 0 {
		script = console.StandardScript(sp.TeleopSeconds)
	}
	return sp.BuildWith(script, trajectory.Standard()[sp.TrajIdx%len(trajectory.Standard())])
}

// BuildWith assembles the session around an explicit operator script and
// trajectory (e.g. a recorded session replay); the rest of the spec —
// seed, attack, guard — applies unchanged.
func (sp Spec) BuildWith(script console.Script, traj trajectory.Trajectory) (*Session, error) {
	cfg := sim.Config{
		Seed:   sp.Seed,
		Script: script,
		Traj:   traj,
	}

	s := &Session{Spec: sp, dig: NewDigest()}

	switch sp.Guard {
	case "", "off":
	case "monitor", "mitigate", "holdsafe":
		mode := core.ModeMonitor
		switch sp.Guard {
		case "mitigate":
			mode = core.ModeMitigate
		case "holdsafe":
			mode = core.ModeHoldSafe
		}
		th := sp.Thresholds
		if th == (core.Thresholds{}) {
			th = core.DefaultThresholds()
		}
		g, err := core.NewGuard(core.Config{Thresholds: th, Mode: mode})
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		s.guard = g
		cfg.Guards = []sim.Hook{g}
	default:
		return nil, fmt.Errorf("fleet: unknown guard mode %q (want off, monitor, mitigate or holdsafe)", sp.Guard)
	}

	switch sp.Attack {
	case "", "none":
	case "A":
		att, err := inject.NewScenarioA(inject.ScenarioAParams{
			Magnitude:       sp.AttackMagnitude,
			StartAfterTicks: sp.AttackDelay,
			ActivationTicks: sp.AttackDuration,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		cfg.OnInput = att.Hook()
		s.injected = att.Injected
	case "B":
		inj, err := inject.NewScenarioB(inject.ScenarioBParams{
			Value:           sp.AttackValue,
			Channel:         0,
			StartDelayTicks: sp.AttackDelay,
			ActivationTicks: sp.AttackDuration,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		cfg.Preload = []interpose.Wrapper{inj}
		s.injected = inj.Injected
	default:
		return nil, fmt.Errorf("fleet: unknown attack %q (want none, A or B)", sp.Attack)
	}

	rig, err := sim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	s.rig = rig
	return s, nil
}

// Rig exposes the assembled session (for observers and summary queries).
func (s *Session) Rig() *sim.Rig { return s.rig }

// Guard exposes the session's guard, nil when the spec ran unguarded.
func (s *Session) Guard() *core.Guard { return s.guard }

// Injected returns how many frames/inputs the session's attack corrupted
// (0 when the spec ran without an attack).
func (s *Session) Injected() int {
	if s.injected == nil {
		return 0
	}
	return s.injected()
}

// Ticks returns how many control periods the session has run.
func (s *Session) Ticks() int { return s.ticks }

// Sum returns the session's running verdict/trajectory digest.
func (s *Session) Sum() uint64 { return s.dig.Sum() }

// Note folds one completed step into the session digest. The fleet worker
// calls it after FinishStep; standalone drivers register it as a
// sim.Observer (exactly one fold per step, never both).
//
//ravenlint:noalloc
func (s *Session) Note(si sim.StepInfo) {
	var v core.Verdict
	if s.guard != nil {
		v = s.guard.Verdict()
	}
	s.dig.Note(si, v)
	s.ticks++
}

// RunStandalone builds the spec and drives it alone with Rig.Step — the
// reference a packed fleet must reproduce bit-for-bit.
func RunStandalone(sp Spec) (*Session, error) {
	s, err := sp.Build()
	if err != nil {
		return nil, err
	}
	for !s.rig.Done() {
		si, err := s.rig.Step()
		if err != nil {
			return nil, fmt.Errorf("fleet: standalone seed %d: %w", sp.Seed, err)
		}
		s.Note(si)
	}
	return s, nil
}
