package fleet

import (
	"fmt"

	"ravenguard/internal/control"
	"ravenguard/internal/dynamics"
	"ravenguard/internal/robot"
	"ravenguard/internal/sim"
	"ravenguard/internal/usb"
)

// Worker owns one shard of the fleet: a lane set holding its sessions'
// plants plus the session mirror that lane swaps keep aligned. One
// goroutine owns a Worker; shards share nothing, so workers never
// synchronise inside a tick.
type Worker struct {
	set    *robot.LaneSet
	byLane []*Session
	dacs   [][usb.NumChannels]int16
	clock  sim.Clock
	hist   latencyHist

	// Batched guard prediction: Euler-scheme guards run in deferred mode,
	// parking each tick's frame at the guard while its one-step model
	// prediction joins a dense lockstep sweep here. gbs lanes are packed
	// fresh every tick (guards with nothing to predict — pedal up, desynced
	// feedback — simply don't join), so gpend maps packed guard lane k back
	// to the session lane it came from.
	gbs   *dynamics.BatchStepper
	gpend []int
}

// NewWorker builds a worker able to host up to capacity concurrent
// sessions. clock times each tick for the latency SLO (nil selects
// sim.WallClock).
func NewWorker(capacity int, clock sim.Clock) (*Worker, error) {
	set, err := robot.NewLaneSet(capacity)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if clock == nil {
		clock = sim.WallClock
	}
	gbs, err := dynamics.NewBatchStepper(capacity)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	w := &Worker{
		set:    set,
		byLane: make([]*Session, capacity),
		dacs:   make([][usb.NumChannels]int16, capacity),
		clock:  clock,
		gbs:    gbs,
		gpend:  make([]int, capacity),
	}
	set.OnSwap = func(a, b int) {
		w.byLane[a], w.byLane[b] = w.byLane[b], w.byLane[a]
	}
	return w, nil
}

// Admit gives the session a resident lane. Its plant joins the parked tail
// and migrates into the lockstep window on the next tick's reconcile.
// Euler-scheme guards are switched to deferred prediction so Tick can fuse
// their model steps into one batch sweep; an RK4 guard (not produced by any
// fleet spec today) would keep its scalar in-line prediction, since the
// worker's sweep integrates all packed lanes with one scheme.
func (w *Worker) Admit(s *Session) error {
	lane, err := w.set.Admit(s.rig.Plant())
	if err != nil {
		return err
	}
	w.byLane[lane] = s
	if s.guard != nil && !s.guard.SchemeRK4() {
		s.guard.SetDeferredPredict(true)
	}
	return nil
}

// Resident returns the number of sessions currently holding lanes.
func (w *Worker) Resident() int { return w.set.Resident() }

// Session returns the session resident in lane (nil when the lane is free).
func (w *Worker) Session(lane int) *Session {
	if lane < 0 || lane >= w.set.Resident() {
		return nil
	}
	return w.byLane[lane]
}

// Tick drives every resident session through one control period as a
// lockstep sweep: all command halves (which park each deferred guard's
// frame), one fused guard-prediction sweep that resumes the parked writes,
// all supervision halves, partition reconcile, one fused plant batch
// integration, all bookkeeping halves with digest folds, then retirement
// (lane compaction) of sessions whose script ended. A steady-state tick —
// no admission, no retirement — does not touch the heap.
//
//ravenlint:noalloc
func (w *Worker) Tick() error {
	n := w.set.Resident()
	if n == 0 {
		return nil
	}
	start := w.clock()

	// Command halves: console, transport, feedback, controller, board
	// write. Sessions are independent, so lane order is immaterial. A
	// deferred-predict guard returns Hold from inside the board write,
	// leaving the frame parked until the batch sweep below absorbs its
	// prediction.
	for lane := 0; lane < n; lane++ {
		if err := w.byLane[lane].rig.StepCommand(); err != nil {
			return err
		}
	}

	// Fused guard prediction: pack every pending guard's model state into
	// dense batch lanes, advance them all with one lockstep Euler sweep,
	// then absorb each prediction (residual check, fusion, mitigation
	// rewrite) and resume its held write. Bit-identical to the scalar
	// in-line path — the batch Euler kernel is lane-equivalent to
	// Stepper.Step, pinned in internal/dynamics tests.
	np := 0
	for lane := 0; lane < n; lane++ {
		if g := w.byLane[lane].guard; g != nil && g.PredictPending() {
			w.gpend[np] = lane
			np++
		}
	}
	if np > 0 {
		if err := w.gbs.SetLanes(np); err != nil {
			return err
		}
		for k, lane := range w.gpend[:np] {
			w.byLane[lane].guard.PredictInto(w.gbs, k)
		}
		w.gbs.StepEulerAll(control.Period)
		for k, lane := range w.gpend[:np] {
			s := w.byLane[lane]
			s.guard.AbsorbPrediction(w.gbs, k)
			if err := s.rig.ResumeWrite(); err != nil {
				return err
			}
		}
	}

	// Supervision halves: PLC status tick and brake command, after every
	// held frame has reached its board — the same frame/supervision order
	// the scalar StepControl path observes.
	for lane := 0; lane < n; lane++ {
		w.byLane[lane].rig.StepSupervise()
	}
	// Brake transitions re-home lanes; reconcile before the per-lane DACs
	// are gathered so dacs[i] drives the plant actually in lane i.
	w.set.Reconcile()
	for lane := 0; lane < n; lane++ {
		w.dacs[lane] = w.byLane[lane].rig.Board().DACs()
	}
	w.set.Step(w.dacs, control.Period)
	for lane := 0; lane < n; lane++ {
		s := w.byLane[lane]
		s.Note(s.rig.FinishStep())
	}

	// Retirement compacts by swapping the last resident lane down, so the
	// cursor re-examines the lane it just filled.
	for lane := 0; lane < w.set.Resident(); {
		if w.byLane[lane].rig.Done() {
			if _, err := w.set.Retire(lane); err != nil {
				return err
			}
			w.byLane[w.set.Resident()] = nil
		} else {
			lane++
		}
	}

	w.hist.record(w.clock() - start)
	return nil
}
