package fleet

import (
	"fmt"

	"ravenguard/internal/control"
	"ravenguard/internal/robot"
	"ravenguard/internal/sim"
	"ravenguard/internal/usb"
)

// Worker owns one shard of the fleet: a lane set holding its sessions'
// plants plus the session mirror that lane swaps keep aligned. One
// goroutine owns a Worker; shards share nothing, so workers never
// synchronise inside a tick.
type Worker struct {
	set    *robot.LaneSet
	byLane []*Session
	dacs   [][usb.NumChannels]int16
	clock  sim.Clock
	hist   latencyHist
}

// NewWorker builds a worker able to host up to capacity concurrent
// sessions. clock times each tick for the latency SLO (nil selects
// sim.WallClock).
func NewWorker(capacity int, clock sim.Clock) (*Worker, error) {
	set, err := robot.NewLaneSet(capacity)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if clock == nil {
		clock = sim.WallClock
	}
	w := &Worker{
		set:    set,
		byLane: make([]*Session, capacity),
		dacs:   make([][usb.NumChannels]int16, capacity),
		clock:  clock,
	}
	set.OnSwap = func(a, b int) {
		w.byLane[a], w.byLane[b] = w.byLane[b], w.byLane[a]
	}
	return w, nil
}

// Admit gives the session a resident lane. Its plant joins the parked tail
// and migrates into the lockstep window on the next tick's reconcile.
func (w *Worker) Admit(s *Session) error {
	lane, err := w.set.Admit(s.rig.Plant())
	if err != nil {
		return err
	}
	w.byLane[lane] = s
	return nil
}

// Resident returns the number of sessions currently holding lanes.
func (w *Worker) Resident() int { return w.set.Resident() }

// Session returns the session resident in lane (nil when the lane is free).
func (w *Worker) Session(lane int) *Session {
	if lane < 0 || lane >= w.set.Resident() {
		return nil
	}
	return w.byLane[lane]
}

// Tick drives every resident session through one control period as a
// lockstep sweep: all control halves, partition reconcile, one fused batch
// integration, all bookkeeping halves with digest folds, then retirement
// (lane compaction) of sessions whose script ended. A steady-state tick —
// no admission, no retirement — does not touch the heap.
//
//ravenlint:noalloc
func (w *Worker) Tick() error {
	n := w.set.Resident()
	if n == 0 {
		return nil
	}
	start := w.clock()

	// Control halves: console, transport, feedback, controller, PLC, brake
	// command. Sessions are independent, so lane order is immaterial.
	for lane := 0; lane < n; lane++ {
		if err := w.byLane[lane].rig.StepControl(); err != nil {
			return err
		}
	}
	// Brake transitions re-home lanes; reconcile before the per-lane DACs
	// are gathered so dacs[i] drives the plant actually in lane i.
	w.set.Reconcile()
	for lane := 0; lane < n; lane++ {
		w.dacs[lane] = w.byLane[lane].rig.Board().DACs()
	}
	w.set.Step(w.dacs, control.Period)
	for lane := 0; lane < n; lane++ {
		s := w.byLane[lane]
		s.Note(s.rig.FinishStep())
	}

	// Retirement compacts by swapping the last resident lane down, so the
	// cursor re-examines the lane it just filled.
	for lane := 0; lane < w.set.Resident(); {
		if w.byLane[lane].rig.Done() {
			if _, err := w.set.Retire(lane); err != nil {
				return err
			}
			w.byLane[w.set.Resident()] = nil
		} else {
			lane++
		}
	}

	w.hist.record(w.clock() - start)
	return nil
}
