package fleet

import (
	"testing"

	"ravenguard/internal/sim"
)

// testSpecs is a mixed fleet: unguarded clean sessions, monitored and
// mitigated attacks of both scenarios, staggered admissions (mid-run
// admission while earlier sessions run), varied lengths (retirement and
// lane compaction while neighbours keep running), and mitigate-mode
// E-STOPs (mid-life parking of braked plants).
func testSpecs() []Spec {
	mixes := []struct{ attack, guard string }{
		{"none", "off"},
		{"A", "monitor"},
		{"B", "mitigate"},
		{"A", "holdsafe"},
		{"B", "holdsafe"},
		{"none", "mitigate"},
		{"B", "monitor"},
		{"A", "mitigate"},
		{"none", "monitor"},
		{"B", "off"},
		{"A", "off"},
		{"B", "mitigate"},
	}
	specs := make([]Spec, len(mixes))
	for i, m := range mixes {
		specs[i] = Spec{
			Seed:            int64(100 + i),
			TeleopSeconds:   0.4 + 0.15*float64(i%3),
			TrajIdx:         i % 2,
			Attack:          m.attack,
			AttackValue:     20000,
			AttackMagnitude: 4e-4,
			AttackDuration:  64,
			AttackDelay:     150,
			Guard:           m.guard,
			StartTick:       260 * i,
		}
	}
	return specs
}

// TestFleetMatchesStandaloneAnyWorkerCount pins the engine's core
// guarantee: every session run inside a packed fleet — through staggered
// admission, lockstep batch stepping, E-STOP parking, and retirement with
// lane compaction — produces byte-identical guard verdicts, tip
// trajectories, and final plant state to the same Spec run alone, at 1 and
// at 8 workers.
func TestFleetMatchesStandaloneAnyWorkerCount(t *testing.T) {
	specs := testSpecs()
	want := make([]*Session, len(specs))
	for i, sp := range specs {
		s, err := RunStandalone(sp)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	// The mix must actually exercise the interesting machinery: alarms,
	// mitigation E-STOPs (which park plants mid-run), and clean sessions.
	var alarms, estops, clean int
	for _, s := range want {
		if g := s.Guard(); g != nil {
			alarms += g.Alarms()
		}
		if s.Rig().PLC().EStopped() {
			estops++
		} else {
			clean++
		}
	}
	if alarms == 0 || estops == 0 || clean == 0 {
		t.Fatalf("weak fixture: alarms=%d estops=%d clean=%d — want all non-zero", alarms, estops, clean)
	}

	for _, workers := range []int{1, 8} {
		eng, err := New(Config{Specs: specs, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		var totalTicks int64
		for i, s := range eng.Sessions() {
			if s == nil {
				t.Fatalf("workers=%d: session %d never admitted", workers, i)
			}
			if s.Sum() != want[i].Sum() {
				t.Errorf("workers=%d: session %d (attack %s, guard %s) digest %016x, standalone %016x",
					workers, i, s.Spec.Attack, s.Spec.Guard, s.Sum(), want[i].Sum())
			}
			if s.Ticks() != want[i].Ticks() {
				t.Errorf("workers=%d: session %d ran %d ticks, standalone %d", workers, i, s.Ticks(), want[i].Ticks())
			}
			if s.Injected() != want[i].Injected() {
				t.Errorf("workers=%d: session %d injected %d, standalone %d", workers, i, s.Injected(), want[i].Injected())
			}
			if g, wg := s.Guard(), want[i].Guard(); g != nil {
				if g.Alarms() != wg.Alarms() || g.Mitigated() != wg.Mitigated() {
					t.Errorf("workers=%d: session %d guard counted alarms=%d mitigated=%d, standalone alarms=%d mitigated=%d",
						workers, i, g.Alarms(), g.Mitigated(), wg.Alarms(), wg.Mitigated())
				}
			}
			// The retired plant's complete state — integrator anchors and
			// rng position included — must equal the standalone plant's.
			if s.Rig().Plant().CaptureState() != want[i].Rig().Plant().CaptureState() {
				t.Errorf("workers=%d: session %d final plant state diverged from standalone", workers, i)
			}
			totalTicks += int64(s.Ticks())
		}
		if rep.SessionTicks != totalTicks {
			t.Errorf("workers=%d: report counts %d session ticks, sessions ran %d", workers, rep.SessionTicks, totalTicks)
		}
		if rep.Alarms != alarms || rep.EStops != estops {
			t.Errorf("workers=%d: report alarms=%d estops=%d, want %d, %d", workers, rep.Alarms, rep.EStops, alarms, estops)
		}
	}
}

// TestReportSLOFields pins the report arithmetic under a deterministic
// clock: every worker tick reads the clock twice, so latencies are exactly
// the tick step and the quantiles land in that bucket.
func TestReportSLOFields(t *testing.T) {
	const stepNs = 50_000 // 50 µs per clock reading
	specs := []Spec{
		{Seed: 7, TeleopSeconds: 0.3},
		{Seed: 8, TeleopSeconds: 0.3, Attack: "B", AttackValue: 20000, AttackDuration: 64, AttackDelay: 150, Guard: "mitigate"},
	}
	eng, err := New(Config{Specs: specs, Workers: 1, Clock: sim.TickClock(stepNs)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 2 || rep.Workers != 1 {
		t.Fatalf("report sessions=%d workers=%d, want 2, 1", rep.Sessions, rep.Workers)
	}
	if rep.WorkerTicks <= 0 || rep.SessionTicks <= 0 {
		t.Fatalf("report ran nothing: worker ticks %d, session ticks %d", rep.WorkerTicks, rep.SessionTicks)
	}
	// Each tick spans exactly one clock step; quantiles report the bucket
	// midpoint of that step.
	wantMs := latMidpointNs(latIndex(stepNs)) / 1e6
	if rep.TickP50Ms != wantMs || rep.TickP99Ms != wantMs {
		t.Errorf("tick p50=%.4f p99=%.4f ms, want %.4f", rep.TickP50Ms, rep.TickP99Ms, wantMs)
	}
	if rep.TickMaxMs != float64(stepNs)/1e6 {
		t.Errorf("tick max %.4f ms, want %.4f", rep.TickMaxMs, float64(stepNs)/1e6)
	}
	if rep.TickBudgetMs != 1.0 {
		t.Errorf("tick budget %.4f ms, want 1.0", rep.TickBudgetMs)
	}
	if rep.TicksOverBudget != 0 {
		t.Errorf("%d ticks over budget under a 50 µs clock, want 0", rep.TicksOverBudget)
	}
	if rep.WallSeconds <= 0 || rep.TicksPerSecond <= 0 || rep.SessionsPerCore <= 0 {
		t.Errorf("throughput fields not populated: wall=%.3f tps=%.1f spc=%.2f",
			rep.WallSeconds, rep.TicksPerSecond, rep.SessionsPerCore)
	}
	if rep.PeakRSSBytes <= 0 {
		t.Errorf("peak RSS %d, want > 0", rep.PeakRSSBytes)
	}
}

// TestSpecErrors pins Build/New validation.
func TestSpecErrors(t *testing.T) {
	if _, err := (Spec{Seed: 1, Attack: "C"}).Build(); err == nil {
		t.Error("unknown attack built")
	}
	if _, err := (Spec{Seed: 1, Guard: "loud"}).Build(); err == nil {
		t.Error("unknown guard mode built")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(Config{Specs: []Spec{{Seed: 1, StartTick: -5}}}); err == nil {
		t.Error("negative StartTick accepted")
	}
}
