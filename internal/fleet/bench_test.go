package fleet

import (
	"testing"
)

// benchSpecs mirrors the bench.sh fleet mix at n sessions: a third clean,
// a third under scenario B with mitigation, a third under scenario A with
// hold-safe.
func benchSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		sp := Spec{Seed: int64(1000 + i), TeleopSeconds: 4}
		switch i % 3 {
		case 1:
			sp.Attack, sp.Guard = "B", "mitigate"
			sp.AttackValue, sp.AttackDelay, sp.AttackDuration = 20000, 150, 64
		case 2:
			sp.Attack, sp.Guard = "A", "holdsafe"
			sp.AttackMagnitude, sp.AttackDelay, sp.AttackDuration = 0.004, 150, 64
		}
		specs[i] = sp
	}
	return specs
}

// BenchmarkWorkerTick measures one steady-state worker tick over 64
// resident mixed sessions — the fleet engine's hot loop. ns/op divided by
// 64 is the per-session tick cost that bounds sessions/core.
func BenchmarkWorkerTick(b *testing.B) {
	w, err := NewWorker(64, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, sp := range benchSpecs(64) {
		s, err := sp.Build()
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Admit(s); err != nil {
			b.Fatal(err)
		}
	}
	// Warm through homing into teleoperation so the measured ticks exercise
	// the pedal-down path (guard predictions, trajectory evaluation).
	for i := 0; i < 3000; i++ {
		if err := w.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}
