package fleet

import (
	"math"

	"ravenguard/internal/core"
	"ravenguard/internal/sim"
)

// Digest is a running FNV-1a fold over everything a session observably
// decided and did: per-tick guard verdicts (alarm/mitigation/hold-safe
// counters, feedback suspicion) and the ground-truth tip trajectory, plus
// the PLC E-STOP latch and cable state. Two sessions with equal digests
// made the same guard decisions and traced the same tip path bit for bit —
// the fleet engine's equivalence currency (fleet run vs standalone run,
// any worker count).
type Digest struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewDigest returns an empty digest (the FNV-1a offset basis).
func NewDigest() Digest { return Digest{h: fnvOffset64} }

// Sum returns the current digest value.
func (d Digest) Sum() uint64 { return d.h }

// Note folds one step's observables and the guard's decision snapshot.
//
//ravenlint:noalloc
func (d *Digest) Note(si sim.StepInfo, v core.Verdict) {
	d.fold(math.Float64bits(si.TipTrue.X))
	d.fold(math.Float64bits(si.TipTrue.Y))
	d.fold(math.Float64bits(si.TipTrue.Z))
	d.foldBool(si.PLCEStop)
	d.foldBool(si.Broken)
	d.fold(uint64(v.Alarms))
	d.fold(uint64(v.Mitigated))
	d.fold(uint64(v.HeldFrames))
	d.foldBool(v.FbSuspect)
}

// fold mixes 8 bytes, little-endian, FNV-1a.
//
//ravenlint:noalloc
func (d *Digest) fold(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	d.h = h
}

//ravenlint:noalloc
func (d *Digest) foldBool(b bool) {
	if b {
		d.fold(1)
	} else {
		d.fold(0)
	}
}
