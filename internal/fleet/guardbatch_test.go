package fleet

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/interpose"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/usb"
)

// gapSession assembles a guarded, attacked session whose feedback stream
// deterministically drops frames for gapLen cycles starting after cycle
// gapStart: the guard desynchronises over the gap and must resync on the
// next good frame. The main spec-driven equivalence fixture cannot express
// board-level faults, so this builds the rig directly (same package).
func gapSession(t *testing.T, seed int64, teleop float64, mode core.Mode, gapStart, gapLen int) *Session {
	t.Helper()
	g, err := core.NewGuard(core.Config{Thresholds: core.DefaultThresholds(), Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := inject.NewScenarioB(inject.ScenarioBParams{
		Value:           20000,
		Channel:         0,
		StartDelayTicks: 150,
		ActivationTicks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := 0
	cfg := sim.Config{
		Seed:    seed,
		Script:  console.StandardScript(teleop),
		Traj:    trajectory.Standard()[0],
		Guards:  []sim.Hook{g},
		Preload: []interpose.Wrapper{inj},
		OnBoard: func(b *usb.Board) {
			b.SetReadFault(func(frame []byte) []byte {
				tick++
				if tick > gapStart && tick <= gapStart+gapLen {
					return frame[:2] // undecodable length: feedback lost
				}
				return frame
			})
		},
	}
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &Session{Spec: Spec{Seed: seed}, rig: rig, guard: g, injected: inj.Injected, dig: NewDigest()}
}

// TestGuardBatchMatchesScalarAcrossEdges pins the batched guard-prediction
// path against the scalar in-line path at its edges: feedback gaps with
// model resync, hold-safe engagement (held-frame rewrites under cooldown),
// mid-run admission, and post-retirement lane compaction. The scalar
// reference drives the identical rigs standalone; the worker runs them in
// deferred-predict mode with the fused sweep. Digests, guard counters and
// final plant state must match bit-for-bit.
func TestGuardBatchMatchesScalarAcrossEdges(t *testing.T) {
	type build struct {
		seed    int64
		teleop  float64
		mode    core.Mode
		gapAt   int
		gapLen  int
		startAt int // worker tick of admission
	}
	// Varied lengths force retirement (and lane compaction under the
	// surviving sessions); startAt forces mid-run admission; the gap
	// windows land inside pedal-down teleop, around and inside the attack
	// activation, so resync and mitigation interleave.
	builds := []build{
		{seed: 41, teleop: 0.7, mode: core.ModeHoldSafe, gapAt: 400, gapLen: 8, startAt: 0},
		{seed: 42, teleop: 0.4, mode: core.ModeMitigate, gapAt: 330, gapLen: 3, startAt: 0},
		{seed: 43, teleop: 0.55, mode: core.ModeHoldSafe, gapAt: 500, gapLen: 25, startAt: 300},
		{seed: 44, teleop: 0.45, mode: core.ModeMonitor, gapAt: 360, gapLen: 1, startAt: 700},
	}

	// Scalar reference: same construction, driven alone; the guard's
	// deferred mode is never enabled outside a worker.
	want := make([]*Session, len(builds))
	for i, b := range builds {
		s := gapSession(t, b.seed, b.teleop, b.mode, b.gapAt, b.gapLen)
		for !s.rig.Done() {
			si, err := s.rig.Step()
			if err != nil {
				t.Fatal(err)
			}
			s.Note(si)
		}
		want[i] = s
	}
	// The fixture must exercise the machinery it claims to: every session
	// lost feedback, and the guarded-mitigation sessions alarmed and
	// rewrote frames.
	var alarms, mitigated, drops int
	for i, s := range want {
		sum := s.rig.FaultCounters()
		if sum.FeedbackDrops == 0 {
			t.Fatalf("weak fixture: session %d saw no feedback gap", i)
		}
		drops += sum.FeedbackDrops
		alarms += s.guard.Alarms()
		mitigated += s.guard.Mitigated()
	}
	if alarms == 0 || mitigated == 0 {
		t.Fatalf("weak fixture: alarms=%d mitigated=%d — want both non-zero", alarms, mitigated)
	}

	// Fleet run: one worker, deferred guards, staggered admissions.
	w, err := NewWorker(len(builds), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]*Session, len(builds))
	for i, b := range builds {
		got[i] = gapSession(t, b.seed, b.teleop, b.mode, b.gapAt, b.gapLen)
	}
	admitted := 0
	for tick := 0; ; tick++ {
		for i, b := range builds {
			if b.startAt == tick {
				if err := w.Admit(got[i]); err != nil {
					t.Fatal(err)
				}
				admitted++
			}
		}
		if err := w.Tick(); err != nil {
			t.Fatal(err)
		}
		if admitted == len(builds) && w.Resident() == 0 {
			break
		}
		if tick > 100_000 {
			t.Fatal("fleet never drained")
		}
	}

	for i, s := range got {
		if s.Sum() != want[i].Sum() {
			t.Errorf("session %d (mode %v): batched digest %016x, scalar %016x", i, builds[i].mode, s.Sum(), want[i].Sum())
		}
		if s.Ticks() != want[i].Ticks() {
			t.Errorf("session %d: batched ran %d ticks, scalar %d", i, s.Ticks(), want[i].Ticks())
		}
		if s.Injected() != want[i].Injected() {
			t.Errorf("session %d: batched injected %d, scalar %d", i, s.Injected(), want[i].Injected())
		}
		if s.guard.Alarms() != want[i].guard.Alarms() || s.guard.Mitigated() != want[i].guard.Mitigated() {
			t.Errorf("session %d: batched alarms=%d mitigated=%d, scalar alarms=%d mitigated=%d",
				i, s.guard.Alarms(), s.guard.Mitigated(), want[i].guard.Alarms(), want[i].guard.Mitigated())
		}
		if s.rig.FaultCounters().FeedbackDrops != want[i].rig.FaultCounters().FeedbackDrops {
			t.Errorf("session %d: batched dropped %d feedback frames, scalar %d",
				i, s.rig.FaultCounters().FeedbackDrops, want[i].rig.FaultCounters().FeedbackDrops)
		}
		if s.rig.Plant().CaptureState() != want[i].rig.Plant().CaptureState() {
			t.Errorf("session %d: final plant state diverged", i)
		}
		// The worker really ran these guards deferred: batch-swept
		// predictions skip the scalar path's StepTime sampling.
		if n, wn := s.guard.StepTime().N, want[i].guard.StepTime().N; n != 0 || wn == 0 {
			t.Errorf("session %d: batched StepTime N=%d scalar N=%d — deferred sweep not exercised", i, n, wn)
		}
	}
}
