package robot

import (
	"math"
	"testing"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/motor"
	"ravenguard/internal/usb"
)

// bitsEqual compares float slices bit-for-bit, so NaN sentinels (the
// stepper's "not yet anchored" marker) compare equal to themselves.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func checkpointEqual(a, b dynamics.StepperState) bool {
	return bitsEqual(a.Tau[:], b.Tau[:]) && bitsEqual(a.ALp[:], b.ALp[:]) &&
		bitsEqual(a.ASin[:], b.ASin[:]) && bitsEqual(a.ACos[:], b.ACos[:])
}

// driveDACs produces a deterministic, per-plant DAC schedule exciting hard
// stops and (for low break tensions) cable snaps.
func driveDACs(plant, step int) [usb.NumChannels]int16 {
	var dacs [usb.NumChannels]int16
	switch (plant + step/40) % 3 {
	case 0:
		dacs[0] = 22000
		dacs[1] = -9000
	case 1:
		dacs[0] = -28000
		dacs[2] = 15000
	default:
		dacs[1] = 30000
		dacs[3] = 6000 // wrist channel
	}
	return dacs
}

func buildPlants(t *testing.T, n int, breakTension [kinematics.NumJoints]float64) []*Plant {
	t.Helper()
	plants := make([]*Plant, n)
	for i := range plants {
		p, err := NewPlant(Config{
			Params:       dynamics.DefaultParams(),
			Bank:         motor.DefaultBank(),
			Seed:         100 + int64(i),
			BreakTension: breakTension,
		})
		if err != nil {
			t.Fatal(err)
		}
		plants[i] = p
	}
	return plants
}

func assertPlantsEqual(t *testing.T, got, want *Plant, label string) {
	t.Helper()
	if !bitsEqual(got.state.X[:], want.state.X[:]) {
		t.Fatalf("%s: state diverged\n got %v\nwant %v", label, got.state.X, want.state.X)
	}
	if !checkpointEqual(got.model.Checkpoint(), want.model.Checkpoint()) {
		t.Fatalf("%s: stepper internals diverged", label)
	}
	if got.rngSrc.Pos() != want.rngSrc.Pos() {
		t.Fatalf("%s: rng position diverged: %+v vs %+v", label, got.rngSrc.Pos(), want.rngSrc.Pos())
	}
	if got.broken != want.broken {
		t.Fatalf("%s: broken flags %v vs %v", label, got.broken, want.broken)
	}
	if got.t != want.t {
		t.Fatalf("%s: time %v vs %v", label, got.t, want.t)
	}
	if got.wrist.Pos() != want.wrist.Pos() || got.wrist.Vel() != want.wrist.Vel() {
		t.Fatalf("%s: wrist state diverged", label)
	}
}

// TestBatchMatchesScalarBitIdentical drives the same plants through
// Batch.Step and Plant.Step — including brake toggles, hard-stop slams, and
// cable snaps — and requires every lane to be bit-identical at every tick.
func TestBatchMatchesScalarBitIdentical(t *testing.T) {
	const n, steps = 5, 1200
	// Low shoulder break tension so at least one lane snaps a cable.
	breakT := [kinematics.NumJoints]float64{2.0, 6, 60}
	batchPlants := buildPlants(t, n, breakT)
	scalarPlants := buildPlants(t, n, breakT)

	batch, err := NewBatch(n)
	if err != nil {
		t.Fatal(err)
	}
	dacs := make([][usb.NumChannels]int16, n)
	for step := 0; step < steps; step++ {
		for i := range dacs {
			dacs[i] = driveDACs(i, step)
			// Stagger brake release, and re-brake one plant mid-run so the
			// batch sees lanes entering and leaving.
			braked := step < 10*i || (i == 2 && step >= 600 && step < 700)
			batchPlants[i].SetBrakes(braked)
			scalarPlants[i].SetBrakes(braked)
		}
		batch.Step(batchPlants, dacs, 1e-3)
		for i, p := range scalarPlants {
			p.Step(dacs[i], 1e-3)
		}
		for i := range scalarPlants {
			assertPlantsEqual(t, batchPlants[i], scalarPlants[i], "step")
		}
	}
	snapped := false
	for _, p := range scalarPlants {
		if b, _ := p.CableBroken(); b {
			snapped = true
		}
	}
	if !snapped {
		t.Fatal("test did not exercise a cable snap; raise the drive or lower BreakTension")
	}
}

// TestBatchOverflowFallsBackToScalar packs more plants than the batch has
// lanes; the overflow must take the scalar path and still match.
func TestBatchOverflowFallsBackToScalar(t *testing.T) {
	const n = 4
	batchPlants := buildPlants(t, n, [kinematics.NumJoints]float64{})
	scalarPlants := buildPlants(t, n, [kinematics.NumJoints]float64{})
	batch, err := NewBatch(2) // capacity 2 < 4 unbraked plants
	if err != nil {
		t.Fatal(err)
	}
	dacs := make([][usb.NumChannels]int16, n)
	for i := range batchPlants {
		batchPlants[i].SetBrakes(false)
		scalarPlants[i].SetBrakes(false)
	}
	for step := 0; step < 300; step++ {
		for i := range dacs {
			dacs[i] = driveDACs(i, step)
		}
		batch.Step(batchPlants, dacs, 1e-3)
		for i, p := range scalarPlants {
			p.Step(dacs[i], 1e-3)
		}
	}
	for i := range scalarPlants {
		assertPlantsEqual(t, batchPlants[i], scalarPlants[i], "overflow")
	}
}

// TestPlantSnapshotRestore runs a plant to mid-trajectory, captures it,
// runs on, restores into a plant that took a different path, and requires
// the fork to replay the original continuation bit-for-bit.
func TestPlantSnapshotRestore(t *testing.T) {
	ref := buildPlants(t, 1, [kinematics.NumJoints]float64{})[0]
	fork := buildPlants(t, 1, [kinematics.NumJoints]float64{})[0]
	ref.SetBrakes(false)
	for step := 0; step < 500; step++ {
		ref.Step(driveDACs(0, step), 1e-3)
	}
	snap := ref.CaptureState()

	// Drive the fork plant somewhere else entirely first.
	fork.SetBrakes(false)
	for step := 0; step < 137; step++ {
		fork.Step(driveDACs(1, step), 1e-3)
	}
	fork.RestoreState(snap)
	assertPlantsEqual(t, fork, ref, "post-restore")

	for step := 500; step < 900; step++ {
		d := driveDACs(0, step)
		ref.Step(d, 1e-3)
		fork.Step(d, 1e-3)
		assertPlantsEqual(t, fork, ref, "continuation")
	}
}
