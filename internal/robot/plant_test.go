package robot

import (
	"math"
	"testing"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/motor"
	"ravenguard/internal/usb"
)

func newPlant(t *testing.T, seed int64) *Plant {
	t.Helper()
	p, err := NewPlant(Config{
		Params: dynamics.DefaultParams(),
		Bank:   motor.DefaultBank(),
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBrakesHoldAgainstGravity(t *testing.T) {
	p := newPlant(t, 1)
	start := p.JointPos()
	for i := 0; i < 1000; i++ {
		p.Step([usb.NumChannels]int16{}, 1e-3)
	}
	if got := p.JointPos(); got != start {
		t.Fatalf("braked arm moved: %v -> %v", start, got)
	}
}

func TestGravityPullsWhenUnbraked(t *testing.T) {
	p, err := NewPlant(Config{
		Params: dynamics.DefaultParams(),
		Bank:   motor.DefaultBank(),
		Seed:   2,
		StartPose: kinematics.JointPos{
			0.8, 1.0, 0.05, // mid-workspace, where gravity has leverage
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetBrakes(false)
	start := p.JointPos()
	for i := 0; i < 500; i++ {
		p.Step([usb.NumChannels]int16{}, 1e-3)
	}
	moved := math.Abs(p.JointPos()[0]-start[0]) + math.Abs(p.JointPos()[1]-start[1])
	if moved < 1e-4 {
		t.Fatalf("unpowered unbraked arm did not sag (moved %v rad)", moved)
	}
}

func TestPositiveDACAcceleratesMotor(t *testing.T) {
	p := newPlant(t, 3)
	p.SetBrakes(false)
	var dacs [usb.NumChannels]int16
	dacs[0] = 16000
	for i := 0; i < 50; i++ {
		p.Step(dacs, 1e-3)
	}
	if v := p.MotorVel()[0]; v <= 0 {
		t.Fatalf("motor velocity %v after sustained positive DAC", v)
	}
}

func TestHardStopsContainTheArm(t *testing.T) {
	p := newPlant(t, 4)
	p.SetBrakes(false)
	// Slam full-scale torque into every joint for two seconds.
	var dacs [usb.NumChannels]int16
	dacs[0], dacs[1], dacs[2] = 32767, 32767, 32767
	for i := 0; i < 2000; i++ {
		p.Step(dacs, 1e-3)
	}
	lim := kinematics.DefaultLimits()
	jp := p.JointPos()
	for i := 0; i < kinematics.NumJoints; i++ {
		margin := 0.06 * (lim.Max[i] - lim.Min[i])
		if jp[i] > lim.Max[i]+margin || jp[i] < lim.Min[i]-margin {
			t.Fatalf("joint %d at %v escaped hard stops [%v, %v]", i, jp[i], lim.Min[i], lim.Max[i])
		}
	}
}

func TestCableSnapsUnderExtremeTransient(t *testing.T) {
	// Violent alternating full-scale torque at the shoulder winds the
	// motor against the link inertia until the cable tension exceeds the
	// break limit — the failure the paper reports from real attacks.
	p, err := NewPlant(Config{
		Params:       dynamics.DefaultParams(),
		Bank:         motor.DefaultBank(),
		Seed:         5,
		BreakTension: [kinematics.NumJoints]float64{2.0, 2.0, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetBrakes(false)
	var dacs [usb.NumChannels]int16
	for i := 0; i < 4000; i++ {
		if i/25%2 == 0 {
			dacs[0] = 32767
		} else {
			dacs[0] = -32768
		}
		p.Step(dacs, 1e-3)
		if broken, _ := p.CableBroken(); broken {
			return
		}
	}
	t.Fatal("cable never snapped under 4 s of full-scale alternating torque")
}

func TestBrokenCableDecouplesJoint(t *testing.T) {
	p, err := NewPlant(Config{
		Params:       dynamics.DefaultParams(),
		Bank:         motor.DefaultBank(),
		Seed:         6,
		BreakTension: [kinematics.NumJoints]float64{0.5, 99, 999}, // snap joint 0 quickly
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetBrakes(false)
	var dacs [usb.NumChannels]int16
	dacs[0] = 32767
	for i := 0; i < 500; i++ {
		p.Step(dacs, 1e-3)
	}
	broken, which := p.CableBroken()
	if !broken || !which[0] {
		t.Fatalf("setup: joint 0 cable not broken (%v)", which)
	}
	// After the snap, DAC input no longer drives joint 0's link through
	// the cable: its velocity decays under damping.
	vel0 := math.Abs(p.JointVel()[0])
	for i := 0; i < 1000; i++ {
		p.Step(dacs, 1e-3)
	}
	if v := math.Abs(p.JointVel()[0]); v > vel0+0.5 {
		t.Fatalf("broken joint still accelerating: %v -> %v", vel0, v)
	}
}

func TestEncoderCountsTrackMotorPos(t *testing.T) {
	p := newPlant(t, 7)
	counts := p.EncoderCounts()
	mp := p.MotorPos()
	bank := motor.DefaultBank()
	for i := 0; i < kinematics.NumJoints; i++ {
		back := bank[i].AngleFromCounts(counts[i])
		if math.Abs(back-mp[i]) > 2*math.Pi/4000 {
			t.Fatalf("joint %d: encoder %v vs motor %v", i, back, mp[i])
		}
	}
	// Unused channels read zero.
	for ch := kinematics.NumJoints; ch < usb.NumChannels; ch++ {
		if counts[ch] != 0 {
			t.Fatalf("unused channel %d reads %d", ch, counts[ch])
		}
	}
}

func TestParamJitterMakesPlantsDiffer(t *testing.T) {
	a := newPlant(t, 10)
	b := newPlant(t, 11)
	a.SetBrakes(false)
	b.SetBrakes(false)
	var dacs [usb.NumChannels]int16
	dacs[0] = 8000
	for i := 0; i < 300; i++ {
		a.Step(dacs, 1e-3)
		b.Step(dacs, 1e-3)
	}
	if a.JointPos() == b.JointPos() {
		t.Fatal("different seeds produced identical plants")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() kinematics.JointPos {
		p := newPlant(t, 12)
		p.SetBrakes(false)
		var dacs [usb.NumChannels]int16
		dacs[1] = 5000
		for i := 0; i < 200; i++ {
			p.Step(dacs, 1e-3)
		}
		return p.JointPos()
	}
	if run() != run() {
		t.Fatal("same seed produced different runs")
	}
}

func TestTipPositionMatchesFK(t *testing.T) {
	p := newPlant(t, 13)
	want := kinematics.Forward(p.JointPos())
	if got := p.TipPosition(); got != want {
		t.Fatalf("TipPosition = %+v, want FK %+v", got, want)
	}
}

func TestStateStaysFiniteUnderNoise(t *testing.T) {
	p := newPlant(t, 14)
	p.SetBrakes(false)
	var dacs [usb.NumChannels]int16
	for i := 0; i < 5000; i++ {
		p.Step(dacs, 1e-3)
	}
	if !p.TipPosition().IsFinite() {
		t.Fatal("plant state went non-finite")
	}
}

func TestNewPlantRejectsBadBank(t *testing.T) {
	bad := motor.DefaultBank()
	bad[0].TorqueConstant = 0
	if _, err := NewPlant(Config{Params: dynamics.DefaultParams(), Bank: bad}); err == nil {
		t.Fatal("bad bank accepted")
	}
}

func TestNewPlantRejectsBadParams(t *testing.T) {
	p := dynamics.DefaultParams()
	p.Joints[0].LinkInertia = -1
	if _, err := NewPlant(Config{Params: p, Bank: motor.DefaultBank()}); err == nil {
		t.Fatal("bad params accepted")
	}
}
