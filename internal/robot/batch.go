package robot

import (
	"fmt"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/usb"
)

// Batch steps several plants through one control period in lockstep,
// integrating all unbraked plants' RK4 sub-steps through a shared
// structure-of-arrays stepper (see dynamics.BatchStepper). Each plant's
// trajectory — state, rng stream, hard-stop clamping, cable breakage — is
// bit-identical to stepping it alone with Plant.Step; the batch only
// changes how the arithmetic is laid out, not what it computes.
//
// A Batch is not safe for concurrent use: one simulation loop owns it.
type Batch struct {
	bs   *dynamics.BatchStepper
	lane []*Plant
	tau  [][kinematics.NumJoints]float64
}

// NewBatch builds a batch able to co-step up to capacity plants. Plants
// beyond capacity, and plants whose sub-step count differs from the
// batch majority, fall back to their scalar path within the same call —
// results are identical either way.
func NewBatch(capacity int) (*Batch, error) {
	bs, err := dynamics.NewBatchStepper(capacity)
	if err != nil {
		return nil, fmt.Errorf("robot: %w", err)
	}
	return &Batch{
		bs:   bs,
		lane: make([]*Plant, 0, capacity),
		tau:  make([][kinematics.NumJoints]float64, 0, capacity),
	}, nil
}

// Step advances every plant by one control period dt, plant i driven by
// dacs[i]. Braked plants take the cheap holding path individually; the
// rest are densely packed into the SoA stepper and integrated together.
func (b *Batch) Step(plants []*Plant, dacs [][usb.NumChannels]int16, dt float64) {
	b.lane = b.lane[:0]
	b.tau = b.tau[:0]
	substeps := 0
	for i, p := range plants {
		if p.brakes {
			p.stepBraked(dt)
			continue
		}
		if substeps == 0 {
			substeps = p.cfg.Substeps
		}
		if p.cfg.Substeps != substeps || len(b.lane) >= b.bs.Capacity() {
			p.Step(dacs[i], dt)
			continue
		}
		b.tau = append(b.tau, p.prepTick(dacs[i], dt))
		b.lane = append(b.lane, p)
	}
	n := len(b.lane)
	if n == 0 {
		return
	}
	if err := b.bs.SetLanes(n); err != nil {
		panic(err) // unreachable: n <= capacity by construction
	}
	for lane, p := range b.lane {
		p.model.FillLane(b.bs, lane)
		b.bs.SetLaneX(lane, &p.state.X)
	}
	sub := dt / float64(substeps)
	for s := 0; s < substeps; s++ {
		// Disturbance draws happen in plant order each sub-step; every
		// plant draws only from its own rng, so its stream matches the
		// scalar path exactly.
		for lane, p := range b.lane {
			b.bs.SetLaneTau(lane, p.noisyTau(b.tau[lane]))
		}
		b.bs.StepRK4All(sub)
		for lane, p := range b.lane {
			p.t += sub
			laneHardStops(b.bs, lane, p)
			laneCheckCables(b.bs, lane, p)
		}
	}
	for lane, p := range b.lane {
		b.bs.LaneX(lane, &p.state.X)
		p.model.ReadLane(b.bs, lane)
	}
}

// laneHardStops is enforceHardStops applied to one SoA lane: positions
// clamp at the mechanical stops with an inelastic collision. Shared by the
// per-tick repacking Batch and the lane-resident LaneSet.
//
//ravenlint:noalloc
func laneHardStops(bs *dynamics.BatchStepper, lane int, p *Plant) {
	for i := 0; i < kinematics.NumJoints; i++ {
		lp := bs.Component(4*i + 2)
		lv := bs.Component(4*i + 3)
		pos := lp[lane]
		vel := lv[lane]
		if pos < p.hard.Min[i] {
			lp[lane] = p.hard.Min[i]
			if vel < 0 {
				lv[lane] = 0
			}
		} else if pos > p.hard.Max[i] {
			lp[lane] = p.hard.Max[i]
			if vel > 0 {
				lv[lane] = 0
			}
		}
	}
}

// laneCheckCables is checkCables applied to one SoA lane: a joint whose
// cable tension exceeds the break limit snaps.
//
//ravenlint:noalloc
func laneCheckCables(bs *dynamics.BatchStepper, lane int, p *Plant) {
	for i := 0; i < kinematics.NumJoints; i++ {
		if p.broken[i] {
			continue
		}
		jc := &p.cable[i]
		stretch := bs.Component(4 * i)[lane]/jc.ratio - bs.Component(4*i + 2)[lane]
		stretchVel := bs.Component(4*i + 1)[lane]/jc.ratio - bs.Component(4*i + 3)[lane]
		tension := jc.k*stretch + jc.b*stretchVel
		if mathAbs(tension) > jc.breakAt {
			p.broken[i] = true
		}
	}
}
