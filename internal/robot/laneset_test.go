package robot

import (
	"testing"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/motor"
	"ravenguard/internal/usb"
)

// tenant is one scalar/resident plant pair driven through an identical
// DAC + brake program, with a lifecycle window [start, end) in ticks.
type tenant struct {
	scalar *Plant
	packed *Plant
	lane   int // current lane while resident, -1 otherwise
	start  int
	end    int
}

// tenantConfig builds the shared plant config for pair i.
func tenantConfig(i int) Config {
	return Config{
		Params: dynamics.DefaultParams(),
		Bank:   motor.DefaultBank(),
		Seed:   100 + int64(i),
	}
}

// dacProgram is a deterministic per-tenant torque program that sweeps the
// joints without needing a controller.
func dacProgram(i, tick int) [usb.NumChannels]int16 {
	var d [usb.NumChannels]int16
	d[0] = int16((tick*7+i*13)%4001 - 2000)
	d[1] = int16((tick*11+i*5)%3001 - 1500)
	d[2] = int16((tick*3+i*17)%2001 - 1000)
	d[3] = int16((tick + i) % 500)
	return d
}

// braked is the shared brake schedule: braked for the first 3 ticks of a
// tenant's life, a mid-life braked window, free otherwise.
func braked(i, localTick int) bool {
	if localTick < 3 {
		return true
	}
	mid := 40 + 5*i
	return localTick >= mid && localTick < mid+7
}

// TestLaneSetBitIdenticalToScalar pins the residency guarantee: plants
// living in LaneSet lanes — through admission, brake park/unpark cycles,
// lane swaps forced by neighbours' transitions, and retirement with
// compaction — produce bit-identical trajectories to scalar twins stepped
// alone, and a retired plant's full captured state (integrator anchors and
// rng position included) equals its twin's, so scalar stepping resumes
// identically.
func TestLaneSetBitIdenticalToScalar(t *testing.T) {
	const (
		nTenants = 7
		ticks    = 120
		dt       = 1e-3
	)
	set, err := NewLaneSet(nTenants)
	if err != nil {
		t.Fatal(err)
	}
	byLane := make([]*tenant, nTenants)
	set.OnSwap = func(a, b int) {
		byLane[a], byLane[b] = byLane[b], byLane[a]
		if byLane[a] != nil {
			byLane[a].lane = a
		}
		if byLane[b] != nil {
			byLane[b].lane = b
		}
	}

	tenants := make([]*tenant, nTenants)
	for i := range tenants {
		sp, err := NewPlant(tenantConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		pp, err := NewPlant(tenantConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		// Staggered lifecycles: admissions at 0/4/8/..., retirements well
		// before the horizon so post-retirement scalar resume is exercised.
		tenants[i] = &tenant{scalar: sp, packed: pp, lane: -1, start: 4 * i, end: 70 + 6*i}
	}

	dacs := make([][usb.NumChannels]int16, nTenants)
	for tick := 0; tick < ticks; tick++ {
		// Admissions due this tick.
		for i, tn := range tenants {
			if tn.start == tick {
				lane, err := set.Admit(tn.packed)
				if err != nil {
					t.Fatalf("admit tenant %d: %v", i, err)
				}
				tn.lane = lane
				byLane[lane] = tn
			}
		}
		// Control phase: brakes and DACs for every live tenant, twin and
		// resident alike.
		for i, tn := range tenants {
			if tick < tn.start {
				continue
			}
			local := tick - tn.start
			br := braked(i, local)
			d := dacProgram(i, local)
			tn.scalar.SetBrakes(br)
			tn.scalar.Step(d, dt)
			if tn.lane >= 0 {
				tn.packed.SetBrakes(br)
			} else {
				tn.packed.Step(d, dt) // retired: scalar resume
			}
		}
		// Reconcile first: brake transitions re-home lanes, and dacs are
		// addressed by post-reconcile lane.
		set.Reconcile()
		for lane := 0; lane < set.Resident(); lane++ {
			local := tick - byLane[lane].start
			idx := tenantIndex(tenants, byLane[lane])
			dacs[lane] = dacProgram(idx, local)
		}
		set.Step(dacs, dt)

		// Retirements due after this tick.
		for _, tn := range tenants {
			if tn.lane >= 0 && tick+1 >= tn.end {
				retireTenant(t, set, byLane, tn)
			}
		}

		// Per-tick observable state must match exactly for every live pair.
		for i, tn := range tenants {
			if tick < tn.start {
				continue
			}
			if tn.scalar.JointPos() != tn.packed.JointPos() ||
				tn.scalar.MotorPos() != tn.packed.MotorPos() ||
				tn.scalar.JointVel() != tn.packed.JointVel() ||
				tn.scalar.MotorVel() != tn.packed.MotorVel() {
				t.Fatalf("tenant %d diverged at tick %d (lane %d):\nscalar %v\npacked %v",
					i, tick, tn.lane, tn.scalar.JointPos(), tn.packed.JointPos())
			}
			if tn.scalar.EncoderCounts() != tn.packed.EncoderCounts() {
				t.Fatalf("tenant %d encoder counts diverged at tick %d", i, tick)
			}
			if tn.lane < 0 {
				// Retired (or never admitted yet): the complete state —
				// anchors and rng position included — must be equal, so
				// scalar stepping continues bit-identically.
				if tn.scalar.CaptureState() != tn.packed.CaptureState() {
					t.Fatalf("tenant %d full state diverged after retirement at tick %d:\nscalar %+v\npacked %+v",
						i, tick, tn.scalar.CaptureState(), tn.packed.CaptureState())
				}
			}
		}
	}
	if set.Resident() != 0 {
		t.Fatalf("all tenants retired but %d lanes still resident", set.Resident())
	}
}

func tenantIndex(tenants []*tenant, tn *tenant) int {
	for i, c := range tenants {
		if c == tn {
			return i
		}
	}
	return -1
}

func retireTenant(t *testing.T, set *LaneSet, byLane []*tenant, tn *tenant) {
	t.Helper()
	lane := tn.lane
	p, err := set.Retire(lane)
	if err != nil {
		t.Fatal(err)
	}
	if p != tn.packed {
		t.Fatalf("retire of lane %d returned the wrong plant", lane)
	}
	// The retired tenant was swapped to the last resident slot before the
	// shrink; clear it from the mirror.
	byLane[set.Resident()] = nil
	tn.lane = -1
}

// TestLaneSetAdmitErrors pins capacity and sub-step homogeneity checks.
func TestLaneSetAdmitErrors(t *testing.T) {
	set, err := NewLaneSet(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPlant(tenantConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Admit(p1); err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlant(tenantConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Admit(p2); err == nil {
		t.Fatal("admit past capacity succeeded")
	}

	set2, err := NewLaneSet(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set2.Admit(p1); err != nil {
		t.Fatal(err)
	}
	oddCfg := tenantConfig(3)
	oddCfg.Substeps = 10
	odd, err := NewPlant(oddCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set2.Admit(odd); err == nil {
		t.Fatal("admit with mismatched sub-step count succeeded")
	}
}

// TestLaneSetStepAllocs pins the steady-state tick at zero allocations.
func TestLaneSetStepAllocs(t *testing.T) {
	const n = 6
	set, err := NewLaneSet(n)
	if err != nil {
		t.Fatal(err)
	}
	dacs := make([][usb.NumChannels]int16, n)
	for i := 0; i < n; i++ {
		p, err := NewPlant(tenantConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		p.SetBrakes(i%3 == 0) // mixed active/parked steady state
		if _, err := set.Admit(p); err != nil {
			t.Fatal(err)
		}
		dacs[i] = dacProgram(i, 1)
	}
	set.Reconcile()
	set.Step(dacs, 1e-3) // settle the partition
	if avg := testing.AllocsPerRun(200, func() {
		set.Reconcile()
		set.Step(dacs, 1e-3)
	}); avg != 0 {
		t.Fatalf("LaneSet tick allocates %.1f times per tick, want 0", avg)
	}
}
