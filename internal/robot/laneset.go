package robot

import (
	"fmt"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/usb"
)

// LaneSet keeps a fleet of plants resident in the lanes of one
// structure-of-arrays stepper, for workloads where the same plants step
// together tick after tick (the multi-tenant fleet engine). Where Batch
// repacks every plant into lanes each control period — the right trade for
// campaign fan-outs whose membership churns per tick — a LaneSet loads a
// plant's hot state into its lane once at admission and leaves it there
// until the plant parks (brakes engage) or retires, eliminating the
// per-tick copy-in.
//
// Lanes are partitioned into a dense active window [0, Active()) of
// unbraked plants that the fused stage kernels sweep in lockstep, and a
// parked tail [Active(), Resident()) of braked plants holding position on
// the cheap scalar path. Brake transitions move plants across the boundary
// by lane swaps; retirement compacts the tail. Every move is reported
// through the OnSwap callback so callers can mirror a lane→session mapping.
//
// Each plant's trajectory — state, rng stream, hard stops, cable breakage,
// wrist servo, local time — is bit-identical to stepping it alone with
// Plant.Step (pinned by laneset_test.go): residency changes where the
// state lives between ticks, not what any tick computes.
//
// A LaneSet is not safe for concurrent use: one worker loop owns it.
type LaneSet struct {
	bs       *dynamics.BatchStepper
	plants   []*Plant // by lane; [0,active) stepping, [active,resident) parked
	tau      [][kinematics.NumJoints]float64
	active   int
	resident int
	substeps int // homogeneous across admitted plants (0 until first Admit)

	// OnSwap, when set, is invoked after lanes a and b exchange plants —
	// including the self-swap a == b — so callers can mirror the move in
	// their own lane-indexed bookkeeping. Set before the first Admit.
	OnSwap func(a, b int)
}

// NewLaneSet builds a lane set able to host up to capacity resident plants.
func NewLaneSet(capacity int) (*LaneSet, error) {
	bs, err := dynamics.NewBatchStepper(capacity)
	if err != nil {
		return nil, fmt.Errorf("robot: %w", err)
	}
	return &LaneSet{
		bs:     bs,
		plants: make([]*Plant, capacity),
		tau:    make([][kinematics.NumJoints]float64, capacity),
	}, nil
}

// Capacity returns the lane capacity.
func (s *LaneSet) Capacity() int { return len(s.plants) }

// Active returns the number of unbraked plants in the stepping window.
func (s *LaneSet) Active() int { return s.active }

// Resident returns the number of plants currently holding lanes.
func (s *LaneSet) Resident() int { return s.resident }

// Plant returns the plant resident in lane (nil when the lane is free).
func (s *LaneSet) Plant(lane int) *Plant {
	if lane < 0 || lane >= s.resident {
		return nil
	}
	return s.plants[lane]
}

// Admit gives p a resident lane and returns its index. The plant joins the
// parked tail (fresh plants power up with brakes engaged; an unbraked
// admission migrates to the active window on the next Step). All residents
// must share one sub-step count — the lockstep sweep has a single cadence.
func (s *LaneSet) Admit(p *Plant) (int, error) {
	if s.resident >= len(s.plants) {
		return 0, fmt.Errorf("robot: lane set full (%d lanes)", len(s.plants))
	}
	if s.substeps == 0 {
		s.substeps = p.cfg.Substeps
	} else if p.cfg.Substeps != s.substeps {
		return 0, fmt.Errorf("robot: plant sub-step count %d differs from the set's %d", p.cfg.Substeps, s.substeps)
	}
	lane := s.resident
	s.plants[lane] = p
	s.resident++
	return lane, nil
}

// Retire releases lane: the plant's lane state — joint state vector plus
// the integrator's gravity anchors and held torque — is read back into the
// plant so scalar stepping resumes bit-identically, and the freed lane is
// compacted away by swaps. Returns the retired plant.
func (s *LaneSet) Retire(lane int) (*Plant, error) {
	if lane < 0 || lane >= s.resident {
		return nil, fmt.Errorf("robot: retire of non-resident lane %d", lane)
	}
	p := s.plants[lane]
	if lane < s.active {
		s.park(lane)
		lane = s.active // park left the plant as the first parked lane
	}
	s.swap(lane, s.resident-1)
	s.resident--
	s.plants[s.resident] = nil
	return p, nil
}

// swap exchanges lanes a and b — batch data and plant — and reports the
// move.
//
//ravenlint:noalloc
func (s *LaneSet) swap(a, b int) {
	s.bs.SwapLanes(a, b)
	s.plants[a], s.plants[b] = s.plants[b], s.plants[a]
	if s.OnSwap != nil {
		s.OnSwap(a, b)
	}
}

// park moves active lane out of the stepping window after reading its
// state back into the plant (the plant is canonical while braked: the
// scalar holding path mutates it directly).
//
//ravenlint:noalloc
func (s *LaneSet) park(lane int) {
	p := s.plants[lane]
	s.bs.LaneX(lane, &p.state.X)
	p.model.ReadLane(s.bs, lane)
	s.swap(lane, s.active-1)
	s.active--
}

// unpark moves parked lane into the stepping window, loading its lane from
// the plant (constants, anchors, held torque, state vector).
//
//ravenlint:noalloc
func (s *LaneSet) unpark(lane int) {
	s.swap(lane, s.active)
	p := s.plants[s.active]
	p.model.FillLane(s.bs, s.active)
	s.bs.SetLaneX(s.active, &p.state.X)
	s.active++
}

// Reconcile moves plants across the active/parked boundary to match the
// brake states set during the control phase. Call it after brakes may have
// changed and before assembling the per-lane DAC array for Step — the
// swaps it performs re-home lanes (reported via OnSwap), so DACs filled in
// earlier would address the wrong plants.
//
//ravenlint:noalloc
func (s *LaneSet) Reconcile() {
	// Parking swaps an unexamined lane into the cursor, so the cursor only
	// advances past lanes that stay active; unparking swaps an
	// already-examined braked lane outward, so that cursor always advances.
	for lane := 0; lane < s.active; {
		if s.plants[lane].brakes {
			s.park(lane)
		} else {
			lane++
		}
	}
	for lane := s.active; lane < s.resident; lane++ {
		if !s.plants[lane].brakes {
			s.unpark(lane)
		}
	}
}

// Step advances every resident plant by one control period dt, the plant
// in lane i driven by dacs[i] (braked plants ignore theirs). The partition
// must already match the brake states (call Reconcile first). It holds the
// parked tail on the scalar path, integrates the active window through the
// shared SoA kernels, and finally publishes each active lane's state
// vector back to its plant so encoder reads and observers see the fresh
// pose. Steady-state ticks are allocation-free.
//
//ravenlint:noalloc
func (s *LaneSet) Step(dacs [][usb.NumChannels]int16, dt float64) {
	// Parked tail: power-off brakes clamp the motors (scalar path).
	for lane := s.active; lane < s.resident; lane++ {
		s.plants[lane].stepBraked(dt)
	}

	n := s.active
	if n == 0 {
		return
	}
	// Once-per-period prep: DAC→torque and the wrist servo update.
	for lane := 0; lane < n; lane++ {
		s.tau[lane] = s.plants[lane].prepTick(dacs[lane], dt)
	}
	if err := s.bs.SetLanes(n); err != nil {
		panic(err) // unreachable: n <= capacity by construction
	}
	sub := dt / float64(s.substeps)
	for st := 0; st < s.substeps; st++ {
		// Each plant draws disturbances from its own rng, so its stream
		// matches the scalar path no matter how lanes are ordered.
		for lane := 0; lane < n; lane++ {
			s.bs.SetLaneTau(lane, s.plants[lane].noisyTau(s.tau[lane]))
		}
		s.bs.StepRK4All(sub)
		for lane := 0; lane < n; lane++ {
			p := s.plants[lane]
			p.t += sub
			laneHardStops(s.bs, lane, p)
			laneCheckCables(s.bs, lane, p)
		}
	}
	// Publish the fresh state vectors; anchors stay lane-resident until
	// park or retire.
	for lane := 0; lane < n; lane++ {
		s.bs.LaneX(lane, &s.plants[lane].state.X)
	}
}
