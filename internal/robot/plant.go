// Package robot implements the physical plant: the software stand-in for
// the real RAVEN II arm's electromechanics. It integrates the two-mass
// cable-drive dynamics with a 4th-order Runge-Kutta scheme at a 50 us
// sub-step — far finer than the 1 ms control period — and layers on the
// non-idealities a real arm has and the detector's 1 ms model does not:
// per-unit parameter mismatch, stochastic torque disturbances, encoder
// quantisation, joint hard stops, fail-safe brakes, and cable breakage
// under extreme transients (the failure the paper observed when attacks
// caused abrupt jumps).
package robot

import (
	"fmt"
	"math/rand"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/mathx"
	"ravenguard/internal/motor"
	"ravenguard/internal/randx"
	"ravenguard/internal/usb"
	"ravenguard/internal/wrist"
)

// Config assembles a plant.
type Config struct {
	// Params are the nominal dynamic constants; the plant perturbs them by
	// ParamJitter to model the real arm differing from the detector's model.
	Params dynamics.Params
	// Bank are the motor/amplifier/encoder channels (joint order).
	Bank motor.Bank
	// Seed drives all stochastic behaviour; runs are reproducible.
	Seed int64
	// ParamJitter is the relative perturbation applied to each dynamic
	// constant (default 0.03 = +/-3%).
	ParamJitter float64
	// TorqueNoise is the standard deviation of the white disturbance torque
	// added motor-side each sub-step, N m (default 0.0015).
	TorqueNoise float64
	// Substeps is the number of RK4 sub-steps per control period
	// (default 20, i.e. 50 us at 1 ms).
	Substeps int
	// Limits are the joint soft limits; hard stops sit 5% of range beyond.
	Limits kinematics.Limits
	// BreakTension is the cable tension (link-side N m, or N for the
	// prismatic joint) at which each joint's cable snaps. Zero selects
	// defaults.
	BreakTension [kinematics.NumJoints]float64
	// StartPose is the pose the arm rests in at power-up (defaults to the
	// lower workspace corner, where the arm hangs against its stops).
	StartPose kinematics.JointPos
}

func (c *Config) applyDefaults() {
	if c.ParamJitter == 0 {
		c.ParamJitter = 0.03
	}
	if c.TorqueNoise == 0 {
		c.TorqueNoise = 0.0015
	}
	if c.Substeps == 0 {
		c.Substeps = 20
	}
	zero := kinematics.Limits{}
	if c.Limits == zero {
		c.Limits = kinematics.DefaultLimits()
	}
	if c.BreakTension == [kinematics.NumJoints]float64{} {
		c.BreakTension = [kinematics.NumJoints]float64{8, 6, 60}
	}
	if c.StartPose == (kinematics.JointPos{}) {
		c.StartPose = kinematics.JointPos{
			c.Limits.Min[0] + 0.02,
			c.Limits.Min[1] + 0.02,
			c.Limits.Min[2] + 0.002,
		}
	}
}

// Plant is the simulated physical robot arm. It is not safe for concurrent
// use: the simulation loop owns it.
type Plant struct {
	cfg    Config //ravenlint:snapshot-ignore configuration, fixed after NewPlant
	model  *dynamics.Stepper
	state  dynamics.State
	trans  kinematics.Transmission //ravenlint:snapshot-ignore derived from perturbed params at NewPlant
	rng    *rand.Rand              //ravenlint:snapshot-ignore draws through rngSrc, whose position is captured
	rngSrc *randx.Source
	brakes bool
	broken [kinematics.NumJoints]bool
	hard   kinematics.Limits                //ravenlint:snapshot-ignore derived from cfg.Limits at NewPlant
	cable  [kinematics.NumJoints]cableCheck //ravenlint:snapshot-ignore derived from perturbed params at NewPlant
	wrist  *wrist.Servo
	t      float64
}

// cableCheck is the per-joint constants of the cable-tension breakage
// test, hoisted out of the perturbed parameter set at construction so
// checkCables and laneCheckCables don't copy the whole Params struct on
// every 50 us sub-step (a measurable slice of the fleet worker tick).
// Ratio is kept as the divisor — not a reciprocal — so the tension
// arithmetic stays bit-identical to the documented formula.
type cableCheck struct {
	ratio   float64 // transmission ratio N (perturbation-free, but read from the same perturbed set)
	k       float64 // cable stiffness
	b       float64 // cable damping
	breakAt float64 // cfg.BreakTension for the joint
}

// NewPlant builds a plant with per-run perturbed parameters.
func NewPlant(cfg Config) (*Plant, error) {
	cfg.applyDefaults()
	if err := cfg.Bank.Validate(); err != nil {
		return nil, fmt.Errorf("robot: %w", err)
	}
	rng, rngSrc := randx.New(cfg.Seed)
	perturbed := perturb(cfg.Params, cfg.ParamJitter, rng)
	model, err := dynamics.NewStepper(perturbed)
	if err != nil {
		return nil, fmt.Errorf("robot: %w", err)
	}

	// Hard stops 5% of joint range beyond the soft limits.
	hard := cfg.Limits
	for i := 0; i < kinematics.NumJoints; i++ {
		margin := 0.05 * (cfg.Limits.Max[i] - cfg.Limits.Min[i])
		hard.Min[i] -= margin
		hard.Max[i] += margin
	}

	var tr kinematics.Transmission
	for i := 0; i < kinematics.NumJoints; i++ {
		tr.Ratio[i] = perturbed.Joints[i].Ratio
	}

	wristServo, err := wrist.NewServo(wrist.DefaultParams(), wrist.DefaultLimits())
	if err != nil {
		return nil, fmt.Errorf("robot: %w", err)
	}

	p := &Plant{
		cfg:    cfg,
		model:  model,
		trans:  tr,
		rng:    rng,
		rngSrc: rngSrc,
		brakes: true,
		hard:   hard,
		wrist:  wristServo,
	}
	for i := 0; i < kinematics.NumJoints; i++ {
		jp := &perturbed.Joints[i]
		p.cable[i] = cableCheck{
			ratio:   jp.Ratio,
			k:       jp.CableStiffness,
			b:       jp.CableDamping,
			breakAt: cfg.BreakTension[i],
		}
	}
	p.state.SetJointPos(cfg.StartPose, tr)
	return p, nil
}

// perturb scales every physical constant by 1 + jitter*U(-1,1).
func perturb(p dynamics.Params, jitter float64, rng *rand.Rand) dynamics.Params {
	scale := func(v float64) float64 { return v * (1 + jitter*(2*rng.Float64()-1)) }
	for i := range p.Joints {
		j := &p.Joints[i]
		j.MotorInertia = scale(j.MotorInertia)
		j.MotorDamping = scale(j.MotorDamping)
		j.CableStiffness = scale(j.CableStiffness)
		j.CableDamping = scale(j.CableDamping)
		j.LinkInertia = scale(j.LinkInertia)
		j.LinkDamping = scale(j.LinkDamping)
		j.Coulomb = scale(j.Coulomb)
		j.GravConst = scale(j.GravConst)
		// Transmission ratio and gravity phase are geometric, not jittered.
	}
	return p
}

// SetBrakes engages or releases the fail-safe power-off brakes. Engaged
// brakes freeze the arm: a braked joint holds position regardless of DAC
// input (the amplifier outputs are mechanically irrelevant).
func (p *Plant) SetBrakes(on bool) { p.brakes = on }

// BrakesEngaged reports the brake state.
func (p *Plant) BrakesEngaged() bool { return p.brakes }

// Step advances the plant by one control period dt (seconds), driven by the
// DAC values currently latched on the board's first NumJoints channels.
//
//ravenlint:noalloc
func (p *Plant) Step(dacs [usb.NumChannels]int16, dt float64) {
	if p.brakes {
		p.stepBraked(dt)
		return
	}
	tau := p.prepTick(dacs, dt)
	sub := dt / float64(p.cfg.Substeps)
	for s := 0; s < p.cfg.Substeps; s++ {
		noisy := p.noisyTau(tau)
		p.model.SetTorque(noisy)
		p.model.StepRK4(&p.state.X, sub)
		p.t += sub
		p.enforceHardStops()
		p.checkCables()
	}
}

// stepBraked holds the arm for one control period: power-off brakes clamp
// the motors. Velocities are zeroed so releasing the brakes starts from
// rest.
//
//ravenlint:noalloc
func (p *Plant) stepBraked(dt float64) {
	for i := 0; i < kinematics.NumJoints; i++ {
		p.state.X[4*i+1] = 0
		p.state.X[4*i+3] = 0
	}
	p.wrist.Step([wrist.NumJoints]int16{}, dt, true)
	p.t += dt
}

// prepTick performs the once-per-control-period work of an unbraked step:
// DAC-to-torque conversion for the positioning motors and the instrument
// wrist servo update (channels 3..5: light direct-drive joints integrated
// at the control period). It returns the commanded arm torques.
//
//ravenlint:noalloc
func (p *Plant) prepTick(dacs [usb.NumChannels]int16, dt float64) [kinematics.NumJoints]float64 {
	var tau [kinematics.NumJoints]float64
	for i := 0; i < kinematics.NumJoints; i++ {
		tau[i] = p.cfg.Bank[i].DACToTorque(dacs[i])
	}
	var wristDACs [wrist.NumJoints]int16
	for i := 0; i < wrist.NumJoints; i++ {
		wristDACs[i] = dacs[kinematics.NumJoints+i]
	}
	p.wrist.Step(wristDACs, dt, false)
	return tau
}

// noisyTau adds one sub-step's white disturbance torque to the commanded
// torques. The draw happens for every joint — broken ones included — so the
// rng stream is identical whether or not a cable has snapped; a snapped
// cable then decouples motor from link (zero drive, the link coasts).
//
//ravenlint:noalloc
func (p *Plant) noisyTau(tau [kinematics.NumJoints]float64) [kinematics.NumJoints]float64 {
	for i := 0; i < kinematics.NumJoints; i++ {
		tau[i] += p.rng.NormFloat64() * p.cfg.TorqueNoise
		if p.broken[i] {
			tau[i] = 0
		}
	}
	return tau
}

// enforceHardStops clamps link positions at the mechanical stops with an
// inelastic collision (velocity zeroed into the stop).
//
//ravenlint:noalloc
func (p *Plant) enforceHardStops() {
	for i := 0; i < kinematics.NumJoints; i++ {
		pos := p.state.X[4*i+2]
		vel := p.state.X[4*i+3]
		if pos < p.hard.Min[i] {
			p.state.X[4*i+2] = p.hard.Min[i]
			if vel < 0 {
				p.state.X[4*i+3] = 0
			}
		} else if pos > p.hard.Max[i] {
			p.state.X[4*i+2] = p.hard.Max[i]
			if vel > 0 {
				p.state.X[4*i+3] = 0
			}
		}
	}
}

// checkCables snaps a cable whose tension exceeds the break limit.
//
//ravenlint:noalloc
func (p *Plant) checkCables() {
	for i := 0; i < kinematics.NumJoints; i++ {
		if p.broken[i] {
			continue
		}
		jc := &p.cable[i]
		stretch := p.state.X[4*i]/jc.ratio - p.state.X[4*i+2]
		stretchVel := p.state.X[4*i+1]/jc.ratio - p.state.X[4*i+3]
		tension := jc.k*stretch + jc.b*stretchVel
		if mathAbs(tension) > jc.breakAt {
			p.broken[i] = true
		}
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// CableBroken reports whether any joint's cable has snapped, and which.
func (p *Plant) CableBroken() (any bool, which [kinematics.NumJoints]bool) {
	for _, b := range p.broken {
		if b {
			return true, p.broken
		}
	}
	return false, p.broken
}

// JointPos returns the true link-side joint positions.
func (p *Plant) JointPos() kinematics.JointPos { return p.state.JointPos() }

// JointVel returns the true link-side joint velocities.
func (p *Plant) JointVel() [kinematics.NumJoints]float64 { return p.state.JointVel() }

// MotorPos returns the true motor shaft angles.
func (p *Plant) MotorPos() kinematics.MotorPos { return p.state.MotorPos() }

// MotorVel returns the true motor shaft velocities.
func (p *Plant) MotorVel() [kinematics.NumJoints]float64 { return p.state.MotorVel() }

// TipPosition returns the true end-effector position (from link states).
func (p *Plant) TipPosition() mathx.Vec3 {
	return kinematics.Forward(p.state.JointPos())
}

// EncoderCounts returns the quantised motor encoder counts as the board
// reads them: positioning motors on channels 0..2, instrument joints on
// channels 3..5; the remaining channels read zero.
func (p *Plant) EncoderCounts() [usb.NumChannels]int32 {
	var counts [usb.NumChannels]int32
	mp := p.state.MotorPos()
	for i := 0; i < kinematics.NumJoints; i++ {
		counts[i] = p.cfg.Bank[i].EncoderCounts(mp[i])
	}
	wp := p.wrist.Pos()
	for i := 0; i < wrist.NumJoints; i++ {
		counts[kinematics.NumJoints+i] = wrist.EncoderCounts(wp[i])
	}
	return counts
}

// WristPos returns the true instrument-joint positions (roll, wrist
// pitch, grasp).
func (p *Plant) WristPos() [wrist.NumJoints]float64 { return p.wrist.Pos() }

// ToolOrientation returns the instrument's orientation matrix.
func (p *Plant) ToolOrientation() mathx.Mat3 { return wrist.Orientation(p.wrist.Pos()) }

// Transmission returns the plant's (perturbed) transmission ratios; the
// control software uses the nominal ones, which is part of the model
// mismatch.
func (p *Plant) Transmission() kinematics.Transmission { return p.trans }

// Time returns the plant-local simulated time in seconds.
func (p *Plant) Time() float64 { return p.t }

// State is the plant's complete mutable state, for checkpoint/restore.
// Configuration (perturbed parameters, bank, limits) is derived
// deterministically from Config at construction and stays with the target
// plant.
type State struct {
	X        [dynamics.StateDim]float64
	Model    dynamics.StepperState
	Rng      randx.Pos
	Brakes   bool
	Broken   [kinematics.NumJoints]bool
	T        float64
	WristPos [wrist.NumJoints]float64
	WristVel [wrist.NumJoints]float64
}

// CaptureState snapshots everything that evolves during simulation: the
// two-mass joint states, the integrator's internal latches (torque and
// gravity anchors), the disturbance rng position, brakes, cable breakage,
// local time, and the instrument servo states.
func (p *Plant) CaptureState() State {
	return State{
		X:        p.state.X,
		Model:    p.model.Checkpoint(),
		Rng:      p.rngSrc.Pos(),
		Brakes:   p.brakes,
		Broken:   p.broken,
		T:        p.t,
		WristPos: p.wrist.Pos(),
		WristVel: p.wrist.Vel(),
	}
}

// RestoreState rewinds the plant to a captured state. The restored rng
// stream continues bit-identically to the run the snapshot was taken from.
func (p *Plant) RestoreState(s State) {
	p.state.X = s.X
	p.model.RestoreCheckpoint(s.Model)
	p.rngSrc.Restore(s.Rng)
	p.brakes = s.Brakes
	p.broken = s.Broken
	p.t = s.T
	p.wrist.SetState(s.WristPos, s.WristVel)
}
