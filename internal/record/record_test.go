package record

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
)

func capture(t *testing.T) Recording {
	t.Helper()
	rec, err := Capture(sim.Config{
		Seed:   301,
		Script: console.StandardScript(4),
		Traj:   trajectory.Standard()[0],
	}, "test-session")
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestCaptureRecordsTicks(t *testing.T) {
	rec := capture(t)
	if len(rec.Ticks) < 6000 {
		t.Fatalf("recorded %d ticks, want a full session", len(rec.Ticks))
	}
	if rec.Header.Period != 1e-3 {
		t.Fatalf("period = %v", rec.Header.Period)
	}
	starts := 0
	for _, tk := range rec.Ticks {
		if tk.Start {
			starts++
		}
	}
	if starts != 1 {
		t.Fatalf("start pressed %d times in recording", starts)
	}
}

func TestSerialisationRoundTrip(t *testing.T) {
	rec := capture(t)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header != rec.Header {
		t.Fatalf("header round trip: %+v vs %+v", back.Header, rec.Header)
	}
	if len(back.Ticks) != len(rec.Ticks) {
		t.Fatalf("ticks %d vs %d", len(back.Ticks), len(rec.Ticks))
	}
	if back.Ticks[5000] != rec.Ticks[5000] {
		t.Fatalf("tick 5000 differs: %+v vs %+v", back.Ticks[5000], rec.Ticks[5000])
	}
}

func TestSaveLoad(t *testing.T) {
	rec := capture(t)
	path := t.TempDir() + "/session.jsonl"
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ticks) != len(rec.Ticks) {
		t.Fatalf("ticks %d vs %d", len(back.Ticks), len(rec.Ticks))
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":99,"period_s":0.001}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := Read(strings.NewReader(`{"version":1,"period_s":0}`)); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestScriptReconstruction(t *testing.T) {
	script := console.Script{
		StartAt:    0.05,
		HomingWait: 2.5,
		Segments: []console.Segment{
			{Duration: 2, PedalDown: true},
			{Duration: 1, PedalDown: false},
			{Duration: 1.5, PedalDown: true},
		},
	}
	rec, err := Capture(sim.Config{Seed: 302, Script: script}, "scripted")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.Script()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(got.Segments))
	}
	for i, seg := range got.Segments {
		want := script.Segments[i]
		if seg.PedalDown != want.PedalDown {
			t.Fatalf("segment %d pedal = %v", i, seg.PedalDown)
		}
		if math.Abs(seg.Duration-want.Duration) > 0.05 {
			t.Fatalf("segment %d duration %v, want ~%v", i, seg.Duration, want.Duration)
		}
	}
	// The reconstructed homing wait covers homing (2 s) and sits near the
	// scripted 2.5 s.
	if got.HomingWait < 2 || got.HomingWait > 3 {
		t.Fatalf("homing wait %v", got.HomingWait)
	}
}

func TestScriptErrors(t *testing.T) {
	if _, err := (Recording{}).Script(); err == nil {
		t.Fatal("empty recording accepted")
	}
	rec := Recording{Header: Header{Version: 1, Period: 1e-3},
		Ticks: []Tick{{T: 0.001}, {T: 0.002}}}
	if _, err := rec.Script(); err == nil {
		t.Fatal("recording without start accepted")
	}
}

func TestReplayTrajectoryMatchesOriginal(t *testing.T) {
	rec := capture(t)
	replay, err := rec.Trajectory()
	if err != nil {
		t.Fatal(err)
	}
	orig := trajectory.Standard()[0]
	// The replayed displacement must match the original trajectory's at
	// several pedal-time points (the console differentiates what the
	// recorder integrated).
	for _, tt := range []float64{0.5, 1.0, 2.0, 3.5} {
		got := replay.Pos(tt)
		want := orig.Pos(tt)
		if got.DistanceTo(want) > 1e-6 {
			t.Fatalf("replay at t=%v: %+v, want %+v", tt, got, want)
		}
	}
	if replay.Duration() < 3.9 || replay.Duration() > 4.1 {
		t.Fatalf("replay duration %v, want ~4 s", replay.Duration())
	}
}

func TestReplayedSessionReproducesMotion(t *testing.T) {
	rec := capture(t)
	replay, err := rec.Trajectory()
	if err != nil {
		t.Fatal(err)
	}
	script, err := rec.Script()
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{Seed: 301, Script: script, Traj: replay})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	// The replayed session's final tip must land near the recorded one.
	last := rec.Ticks[len(rec.Ticks)-1]
	tip := rig.Plant().TipPosition()
	d := math.Sqrt((tip.X-last.TipX)*(tip.X-last.TipX) +
		(tip.Y-last.TipY)*(tip.Y-last.TipY) +
		(tip.Z-last.TipZ)*(tip.Z-last.TipZ))
	if d > 0.002 {
		t.Fatalf("replayed session ended %v m from the recorded end", d)
	}
}

func TestReplayClampsBeyondEnd(t *testing.T) {
	rec := capture(t)
	replay, err := rec.Trajectory()
	if err != nil {
		t.Fatal(err)
	}
	end := replay.Pos(replay.Duration())
	if got := replay.Pos(replay.Duration() + 100); got != end {
		t.Fatalf("replay extrapolated beyond its end: %+v vs %+v", got, end)
	}
	if got := replay.Pos(-5); got != (replay.Pos(0)) {
		t.Fatalf("negative time: %+v", got)
	}
}

func TestTrajectoryErrors(t *testing.T) {
	if _, err := (Recording{}).Trajectory(); err == nil {
		t.Fatal("empty recording accepted")
	}
	rec := Recording{Header: Header{Version: 1, Period: 1e-3},
		Ticks: []Tick{{T: 0.001, Pedal: false}}}
	if _, err := rec.Trajectory(); err == nil {
		t.Fatal("motionless recording accepted")
	}
}
