// Package record captures and replays teleoperation sessions. The paper's
// master-console emulator "generat[es] user input packets based on
// previously collected trajectories of surgical movements made by a human
// operator"; this package provides the collection half — recording the
// operator-input stream and the robot's response from a live session —
// and the replay half: turning a recording back into the trajectory and
// session script the console emulator consumes, so captured procedures
// can be re-run under attack deterministically.
package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ravenguard/internal/console"
	"ravenguard/internal/control"
	"ravenguard/internal/mathx"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

// FormatVersion identifies the on-disk recording format.
const FormatVersion = 1

// Header is the first JSON line of a recording.
type Header struct {
	Version int     `json:"version"`
	Period  float64 `json:"period_s"`
	Label   string  `json:"label,omitempty"`
}

// Tick is one control cycle's recorded data.
type Tick struct {
	T         float64    `json:"t"`
	Pedal     bool       `json:"pedal"`
	Start     bool       `json:"start,omitempty"`
	Delta     [3]float64 `json:"delta"`
	OriDelta  [3]float64 `json:"ori,omitempty"`
	TipX      float64    `json:"tip_x"`
	TipY      float64    `json:"tip_y"`
	TipZ      float64    `json:"tip_z"`
	State     string     `json:"state"`
	DAC       [3]int16   `json:"dac"`
	PLCEStop  bool       `json:"estop,omitempty"`
	GuardNote string     `json:"note,omitempty"`
}

// Recording is a full captured session.
type Recording struct {
	Header Header
	Ticks  []Tick
}

// Recorder accumulates a session; attach Observe to a rig.
type Recorder struct {
	rec Recording
}

// NewRecorder starts an empty recording with the given label.
func NewRecorder(label string) *Recorder {
	return &Recorder{rec: Recording{Header: Header{
		Version: FormatVersion,
		Period:  control.Period,
		Label:   label,
	}}}
}

// Observe returns the observer to register on a rig.
func (r *Recorder) Observe() sim.Observer {
	return func(si sim.StepInfo) {
		r.rec.Ticks = append(r.rec.Ticks, Tick{
			T:        si.T,
			Pedal:    si.Input.PedalDown,
			Start:    si.Input.StartButton,
			Delta:    [3]float64{si.Input.Delta.X, si.Input.Delta.Y, si.Input.Delta.Z},
			OriDelta: si.Input.OriDelta,
			TipX:     si.TipTrue.X,
			TipY:     si.TipTrue.Y,
			TipZ:     si.TipTrue.Z,
			State:    si.Ctrl.State.String(),
			DAC:      [3]int16{si.Ctrl.DAC[0], si.Ctrl.DAC[1], si.Ctrl.DAC[2]},
			PLCEStop: si.PLCEStop,
		})
	}
}

// Recording returns the captured session.
func (r *Recorder) Recording() Recording { return r.rec }

// Write serialises the recording as JSON lines: a header line followed by
// one line per tick.
func (rec Recording) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(rec.Header); err != nil {
		return fmt.Errorf("record: header: %w", err)
	}
	for i, tk := range rec.Ticks {
		if err := enc.Encode(tk); err != nil {
			return fmt.Errorf("record: tick %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Save writes the recording to a file.
func (rec Recording) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("record: %w", err)
	}
	if err := rec.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a JSONL recording.
func Read(r io.Reader) (Recording, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var rec Recording
	if err := dec.Decode(&rec.Header); err != nil {
		return Recording{}, fmt.Errorf("record: header: %w", err)
	}
	if rec.Header.Version != FormatVersion {
		return Recording{}, fmt.Errorf("record: unsupported version %d", rec.Header.Version)
	}
	if rec.Header.Period <= 0 {
		return Recording{}, fmt.Errorf("record: non-positive period %v", rec.Header.Period)
	}
	for {
		var tk Tick
		if err := dec.Decode(&tk); err == io.EOF {
			break
		} else if err != nil {
			return Recording{}, fmt.Errorf("record: tick %d: %w", len(rec.Ticks), err)
		}
		rec.Ticks = append(rec.Ticks, tk)
	}
	return rec, nil
}

// Load reads a recording from a file.
func Load(path string) (Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return Recording{}, fmt.Errorf("record: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Script reconstructs the operator's session timeline (start button and
// pedal segments) from the recording, suitable for console.New.
func (rec Recording) Script() (console.Script, error) {
	if len(rec.Ticks) == 0 {
		return console.Script{}, fmt.Errorf("record: empty recording")
	}
	dt := rec.Header.Period
	var s console.Script
	startSeen := false
	for _, tk := range rec.Ticks {
		if tk.Start {
			s.StartAt = tk.T
			startSeen = true
			break
		}
	}
	if !startSeen {
		return console.Script{}, fmt.Errorf("record: recording has no start-button press")
	}

	// First pedal-down marks the end of the homing wait.
	firstPedal := -1.0
	for _, tk := range rec.Ticks {
		if tk.Pedal {
			firstPedal = tk.T
			break
		}
	}
	if firstPedal < 0 {
		return console.Script{}, fmt.Errorf("record: recording never reaches teleoperation")
	}
	s.HomingWait = firstPedal - s.StartAt

	// Segment the pedal timeline from there on.
	cur := console.Segment{PedalDown: true}
	for _, tk := range rec.Ticks {
		if tk.T < firstPedal {
			continue
		}
		if tk.Pedal == cur.PedalDown {
			cur.Duration += dt
			continue
		}
		s.Segments = append(s.Segments, cur)
		cur = console.Segment{PedalDown: tk.Pedal, Duration: dt}
	}
	if cur.Duration > 0 {
		s.Segments = append(s.Segments, cur)
	}
	return s, nil
}

// Trajectory builds a replayable tip-motion profile from the recorded
// operator deltas: the displacement after t seconds of pedal-down time.
// It implements trajectory.Trajectory.
type Trajectory struct {
	name string
	dt   float64
	// cum[i] is the cumulative displacement after i pedal-down ticks.
	cum []mathx.Vec3
	// oriCum[i] likewise for the instrument joints.
	oriCum [][3]float64
}

var (
	_ trajectory.Trajectory = (*Trajectory)(nil)
	_ trajectory.OriProfile = (*Trajectory)(nil)
)

// Trajectory extracts the replayable motion from the recording.
func (rec Recording) Trajectory() (*Trajectory, error) {
	if len(rec.Ticks) == 0 {
		return nil, fmt.Errorf("record: empty recording")
	}
	tr := &Trajectory{
		name: fmt.Sprintf("replay(%s)", rec.Header.Label),
		dt:   rec.Header.Period,
		cum:  []mathx.Vec3{{}},
	}
	tr.oriCum = [][3]float64{{}}
	var acc mathx.Vec3
	var oriAcc [3]float64
	for _, tk := range rec.Ticks {
		if !tk.Pedal {
			continue
		}
		acc = acc.Add(mathx.Vec3{X: tk.Delta[0], Y: tk.Delta[1], Z: tk.Delta[2]})
		for i := range oriAcc {
			oriAcc[i] += tk.OriDelta[i]
		}
		tr.cum = append(tr.cum, acc)
		tr.oriCum = append(tr.oriCum, oriAcc)
	}
	if len(tr.cum) < 2 {
		return nil, fmt.Errorf("record: recording has no pedal-down motion")
	}
	return tr, nil
}

// Pos implements trajectory.Trajectory: displacement after t seconds of
// pedal-down time, linearly interpolated and clamped at the recording end.
func (tr *Trajectory) Pos(t float64) mathx.Vec3 {
	idx, frac := tr.locate(t)
	if idx >= len(tr.cum)-1 {
		return tr.cum[len(tr.cum)-1]
	}
	a, b := tr.cum[idx], tr.cum[idx+1]
	return a.Add(b.Sub(a).Scale(frac))
}

// Ori implements trajectory.OriProfile.
func (tr *Trajectory) Ori(t float64) [3]float64 {
	idx, frac := tr.locate(t)
	if idx >= len(tr.oriCum)-1 {
		return tr.oriCum[len(tr.oriCum)-1]
	}
	var out [3]float64
	a, b := tr.oriCum[idx], tr.oriCum[idx+1]
	for i := range out {
		out[i] = a[i] + (b[i]-a[i])*frac
	}
	return out
}

func (tr *Trajectory) locate(t float64) (int, float64) {
	if t <= 0 {
		return 0, 0
	}
	ticks := t / tr.dt
	idx := int(ticks)
	return idx, ticks - float64(idx)
}

// Name implements trajectory.Trajectory.
func (tr *Trajectory) Name() string { return tr.name }

// Duration returns the pedal-down length of the replay in seconds.
func (tr *Trajectory) Duration() float64 {
	return float64(len(tr.cum)-1) * tr.dt
}

// Capture runs one session and records it — a convenience for building
// replay corpora.
func Capture(cfg sim.Config, label string) (Recording, error) {
	rig, err := sim.New(cfg)
	if err != nil {
		return Recording{}, err
	}
	rec := NewRecorder(label)
	rig.Observe(rec.Observe())
	if _, err := rig.Run(0); err != nil {
		return Recording{}, err
	}
	if rig.Controller().State() == statemachine.EStop {
		rec.rec.Header.Label += " (ended in E-STOP)"
	}
	return rec.Recording(), nil
}
