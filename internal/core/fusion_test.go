package core

import (
	"testing"

	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/usb"
)

// syncGuard builds a guard synced at the workspace center.
func syncGuard(t *testing.T, cfg Config) *Guard {
	t.Helper()
	g, err := NewGuard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.OnFeedback(feedbackAt(t, kinematics.DefaultLimits().Center()), 0)
	return g
}

// pedalFrame builds a Pedal Down command frame with the given shoulder DAC.
func pedalFrame(dac0 int16) []byte {
	cmd := usb.Command{StateNibble: statemachine.PedalDown.Nibble()}
	cmd.DAC[0] = dac0
	f := cmd.Encode()
	return f[:]
}

func TestFusionAnyMoreSensitiveThanAll(t *testing.T) {
	// A short violent burst crosses the acceleration threshold instantly
	// but needs several frames for the velocity thresholds: FusionAny must
	// alarm no later (and typically earlier) than FusionAll.
	alarmAfter := func(fusion Fusion) int {
		g := syncGuard(t, Config{Thresholds: DefaultThresholds(), Fusion: fusion})
		for i := 1; i <= 50; i++ {
			g.OnWrite(pedalFrame(28000))
			if g.Alarms() > 0 {
				return i
			}
		}
		return -1
	}
	all := alarmAfter(FusionAll)
	anyN := alarmAfter(FusionAny)
	if anyN < 0 {
		t.Fatal("FusionAny never alarmed on a 28000-count burst")
	}
	if all >= 0 && anyN > all {
		t.Fatalf("FusionAny alarmed later (%d) than FusionAll (%d)", anyN, all)
	}
	if anyN != 1 {
		t.Fatalf("FusionAny alarm latency = %d frames, want 1 (acceleration-only)", anyN)
	}
}

func TestGuardOnSampleOnlyDuringTeleop(t *testing.T) {
	samples := 0
	g, err := NewGuard(Config{OnSample: func(Sample) { samples++ }})
	if err != nil {
		t.Fatal(err)
	}
	g.OnFeedback(feedbackAt(t, kinematics.DefaultLimits().Center()), 0)

	up := usb.Command{StateNibble: statemachine.PedalUp.Nibble()}
	upF := up.Encode()
	for i := 0; i < 10; i++ {
		g.OnWrite(upF[:])
	}
	if samples != 0 {
		t.Fatalf("%d samples emitted while braked", samples)
	}

	initCmd := usb.Command{StateNibble: statemachine.Init.Nibble()}
	initF := initCmd.Encode()
	for i := 0; i < 10; i++ {
		g.OnWrite(initF[:])
	}
	if samples != 0 {
		t.Fatalf("%d samples emitted during homing (would skew learned thresholds)", samples)
	}

	for i := 0; i < 10; i++ {
		g.OnWrite(pedalFrame(100))
	}
	if samples != 10 {
		t.Fatalf("samples = %d during teleop, want 10", samples)
	}
}

func TestHoldSafeReplacesWithLaggedPayload(t *testing.T) {
	g := syncGuard(t, Config{Thresholds: DefaultThresholds(), Mode: ModeHoldSafe})
	// Feed a healthy history the hold can reach back into.
	for i := 0; i < 40; i++ {
		g.OnWrite(pedalFrame(int16(100 + i)))
	}
	// Attack: the frame must be rewritten, and the held value must come
	// from >= safeLag frames ago, not from the most recent ones.
	buf := pedalFrame(28000)
	if v := g.OnWrite(buf); v != interpose.Pass {
		t.Fatal("hold-safe must pass the (rewritten) frame")
	}
	if g.Mitigated() == 0 {
		t.Fatal("no mitigation recorded")
	}
	cmd, err := usb.DecodeCommand(buf)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.DAC[0] == 28000 {
		t.Fatal("malicious payload not replaced")
	}
	// History was 100..139; the lag-16 hold must pick one of the older
	// entries (100..123), never the newest.
	if cmd.DAC[0] < 100 || cmd.DAC[0] > 123 {
		t.Fatalf("held DAC %d outside the lagged window [100,123]", cmd.DAC[0])
	}
}

func TestHoldSafeWithNoHistoryZeroes(t *testing.T) {
	g := syncGuard(t, Config{Thresholds: DefaultThresholds(), Mode: ModeHoldSafe})
	buf := pedalFrame(28000)
	g.OnWrite(buf)
	cmd, err := usb.DecodeCommand(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Mitigated() > 0 && cmd.DAC[0] != 0 {
		t.Fatalf("history-less hold kept DAC %d, want 0", cmd.DAC[0])
	}
}

func TestHeldFramesCounter(t *testing.T) {
	g := syncGuard(t, Config{Thresholds: DefaultThresholds(), Mode: ModeHoldSafe, HoldCooldownTicks: 10})
	for i := 0; i < 40; i++ {
		g.OnWrite(pedalFrame(100))
	}
	for i := 0; i < 5; i++ {
		g.OnWrite(pedalFrame(28000))
	}
	if g.HeldFrames() < 5 {
		t.Fatalf("HeldFrames = %d, want >= 5 (alarm + cooldown)", g.HeldFrames())
	}
}
