package core

import (
	"strings"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/inject"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
)

func TestGuardDefeatsWatchdogSpoof(t *testing.T) {
	// The watchdog-spoof attack forges a healthy heartbeat so the
	// software's halt never reaches the PLC — defeating every software-
	// level response. The guard sits below the malicious wrappers and
	// talks to the PLC directly (the trusted-hardware path the paper
	// argues for), so it still mitigates.
	runRange := func(guarded bool) (tipRange float64, plcStopped bool, cause string) {
		cfg := sim.Config{
			Seed:   801,
			Script: console.StandardScript(6),
			Traj:   trajectory.Standard()[0],
		}
		vc := inject.VariantConfig{Variant: inject.VariantWatchdogSpoof, StartAt: 4.0, Magnitude: 24000}
		if _, err := vc.Apply(&cfg); err != nil {
			t.Fatal(err)
		}
		var guard *Guard
		if guarded {
			g, err := NewGuard(Config{Thresholds: DefaultThresholds(), Mode: ModeMitigate})
			if err != nil {
				t.Fatal(err)
			}
			guard = g
			cfg.Guards = []sim.Hook{g}
		}
		rig, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var first, have = rig.Plant().TipPosition(), false
		rig.Observe(func(si sim.StepInfo) {
			if si.T < 4.0 { // measure from attack onset, past homing travel
				return
			}
			if !have {
				first = si.TipTrue
				have = true
			}
			if d := si.TipTrue.DistanceTo(first); d > tipRange {
				tipRange = d
			}
		})
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		_ = guard
		return tipRange, rig.PLC().EStopped(), rig.PLC().EStopCause()
	}

	unguardedRange, unguardedStopped, _ := runRange(false)
	if unguardedStopped {
		t.Fatal("setup: spoof failed to suppress the PLC halt on the unguarded robot")
	}
	guardedRange, guardedStopped, cause := runRange(true)
	if !guardedStopped {
		t.Fatal("guard failed to halt the spoofed attack")
	}
	if !strings.Contains(cause, "dynamic-model guard") {
		t.Fatalf("halt cause = %q", cause)
	}
	// The guarded robot's total excursion is a fraction of the unguarded
	// one, which is dragged to its hard stops.
	if guardedRange >= unguardedRange/2 {
		t.Fatalf("guard barely contained the spoofed attack: %.1f mm vs %.1f mm unguarded",
			guardedRange*1e3, unguardedRange*1e3)
	}
}
