// Package core implements the paper's primary contribution: dynamic
// model-based detection and mitigation of malicious commands in a
// teleoperated surgical robot (Section IV, Figure 7b).
//
// The Guard sits at the bottom of the write-interposition chain — the
// place the paper argues for: "at lower layers of the control structure
// and just before the commands are going to be executed on the physical
// robot" — below any maliciously preloaded wrapper, standing in for the
// trusted hardware module the paper proposes. For every DAC command frame
// it:
//
//  1. runs the robot's dynamic model one control period ahead to estimate
//     the next motor velocities/accelerations and joint velocities that
//     executing the command would produce;
//  2. compares the estimates against thresholds learned from the
//     99.8–99.9th percentile of fault-free operation;
//  3. fuses the three per-joint alarms (motor acceleration AND motor
//     velocity AND joint velocity) to suppress false alarms from model
//     inaccuracy and trajectory noise;
//  4. in mitigation mode, neutralises the offending frame (zeroing its DAC
//     payload) and forces the system into the E-STOP state before the
//     command can manifest in the physical robot.
//
// The model is kept synchronised with the physical system through the same
// encoder feedback stream the control software reads.
package core

import (
	"encoding/binary"
	"fmt"

	"ravenguard/internal/dynamics"
	"ravenguard/internal/estimator"
	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/motor"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/stats"
	"ravenguard/internal/usb"
)

// Mode selects the guard's response to an alarm.
type Mode int

// Modes.
const (
	// ModeMonitor raises alarms but lets every frame through (shadow
	// deployment; used to score detection without mitigation, and by the
	// threshold learner).
	ModeMonitor Mode = iota + 1
	// ModeMitigate neutralises alarming frames and forces E-STOP (the
	// paper's "stopping the commands from execution and put the control
	// software into a safe state (E-STOP)").
	ModeMitigate
	// ModeHoldSafe is the paper's alternative mitigation: "correcting the
	// malicious control command by forcing the robot to stay in a
	// previously safe state". Alarming frames have their DAC payload
	// replaced with the last frame that passed all checks; the session
	// continues rather than halting.
	ModeHoldSafe
)

// Fusion selects how the three per-joint alarm variables combine into one
// alarm decision.
type Fusion int

// Fusion strategies.
const (
	// FusionAll is the paper's design: alert only when motor acceleration
	// AND motor velocity AND joint velocity all exceed their thresholds on
	// the same joint — "to reduce false alarms due to model inaccuracies
	// and natural noise in the trajectory".
	FusionAll Fusion = iota + 1
	// FusionAny alerts when any single variable exceeds its threshold
	// (the ablation baseline: more sensitive, more false alarms).
	FusionAny
)

// Thresholds are the per-joint alarm limits on the model's one-step-ahead
// estimates: motor velocity (rad/s), motor acceleration (rad/s^2) and
// joint velocity (rad/s; m/s for the prismatic joint).
type Thresholds struct {
	MotorVel   [kinematics.NumJoints]float64
	MotorAccel [kinematics.NumJoints]float64
	JointVel   [kinematics.NumJoints]float64
}

// Validate rejects non-positive limits.
func (th Thresholds) Validate() error {
	for i := 0; i < kinematics.NumJoints; i++ {
		if th.MotorVel[i] <= 0 || th.MotorAccel[i] <= 0 || th.JointVel[i] <= 0 {
			return fmt.Errorf("core: thresholds for joint %d must be positive", i)
		}
	}
	return nil
}

// Sample is one control cycle's worth of model estimates, exported to the
// threshold learner and to experiment traces.
type Sample struct {
	T          float64
	MotorVel   [kinematics.NumJoints]float64 // |estimated|, rad/s
	MotorAccel [kinematics.NumJoints]float64 // |estimated|, rad/s^2
	JointVel   [kinematics.NumJoints]float64 // |estimated|
}

// Config assembles a Guard.
type Config struct {
	// Integrator is "euler" (the paper's best runtime/accuracy trade) or
	// "rk4". Default "euler".
	Integrator string
	// Params are the nominal dynamic constants (the design model — NOT the
	// plant's perturbed reality).
	Params dynamics.Params
	// Bank holds the motor channel constants.
	Bank motor.Bank
	// Trans converts between motor and joint coordinates.
	Trans kinematics.Transmission
	// Thresholds are the learned alarm limits. Required in ModeMitigate
	// and for alarm scoring; a zero value disables alarming (pure model
	// tracking, as the learner uses).
	Thresholds Thresholds
	// Mode defaults to ModeMonitor.
	Mode Mode
	// Fusion defaults to FusionAll (the paper's three-way AND).
	Fusion Fusion
	// Resync selects how the model absorbs encoder feedback:
	// "proportional" (default; the paper's plain resynchronisation with
	// gain ResyncGain) or "kalman" (a per-joint steady-state Kalman
	// filter, following the UKF line of work the paper cites).
	Resync string
	// ResyncGain is the per-cycle fraction of the position/velocity
	// innovation applied to the model state (default 0.1; proportional
	// mode only).
	ResyncGain float64
	// InnovationLimit flags the feedback stream as suspect when the
	// motor-position innovation exceeds this many radians for
	// InnovationRun consecutive cycles — a residual check that catches
	// encoder-feedback tampering (Table I's read-path attack). Zero
	// selects 0.05 rad over 5 cycles.
	InnovationLimit float64
	// InnovationRun is the consecutive-cycle count for the residual check.
	InnovationRun int
	// HoldCooldownTicks is how many cycles ModeHoldSafe keeps replacing
	// payloads after an alarm before re-evaluating the envelope; without
	// it the alarm clears as soon as the held commands calm the model and
	// the next malicious frame slips through (default 50).
	HoldCooldownTicks int
	// OnSample, when set, receives every cycle's estimates.
	OnSample func(Sample)
	// EStop, when set, is invoked once on the first mitigated frame (the
	// rig wires it to the PLC's emergency-stop latch).
	EStop func(cause string)
	// Clock times the one-step-ahead model evaluation for the
	// detection-latency statistics (StepTime). Defaults to sim.WallClock;
	// deterministic campaigns may inject sim.TickClock or their own.
	Clock sim.Clock
}

func (c *Config) applyDefaults() {
	if c.Integrator == "" {
		c.Integrator = "euler"
	}
	if c.Params == (dynamics.Params{}) {
		c.Params = dynamics.DefaultParams()
	}
	if c.Bank == (motor.Bank{}) {
		c.Bank = motor.DefaultBank()
	}
	if c.Trans == (kinematics.Transmission{}) {
		c.Trans = kinematics.DefaultTransmission()
	}
	if c.ResyncGain == 0 {
		c.ResyncGain = 0.1
	}
	if c.Mode == 0 {
		c.Mode = ModeMonitor
	}
	if c.Clock == nil {
		c.Clock = sim.WallClock
	}
	if c.Fusion == 0 {
		c.Fusion = FusionAll
	}
	if c.HoldCooldownTicks == 0 {
		c.HoldCooldownTicks = 50
	}
	if c.Resync == "" {
		c.Resync = "proportional"
	}
	if c.InnovationLimit == 0 {
		c.InnovationLimit = 0.05
	}
	if c.InnovationRun == 0 {
		c.InnovationRun = 5
	}
}

// Guard is the dynamic model-based detector/mitigator. It implements
// sim.Hook. Not safe for concurrent use: the control loop owns it.
type Guard struct {
	cfg   Config //ravenlint:snapshot-ignore configuration, fixed after New
	model *dynamics.Stepper
	rk4   bool //ravenlint:snapshot-ignore derived from cfg.Integrator at New
	state dynamics.State
	// armed (thresholds are non-zero) is derived from cfg.Thresholds at New
	// and never changes afterwards.
	armed  bool //ravenlint:snapshot-ignore derived from cfg.Thresholds at New
	synced bool // model snapped to first feedback

	prevFbMpos kinematics.MotorPos
	havePrevFb bool

	kalman      [kinematics.NumJoints]*estimator.Kalman
	innovStreak int
	fbSuspect   bool
	innovStats  stats.Running

	gapPending   bool // a feedback frame was lost since the last good one
	feedbackGaps int

	alarms    int
	mitigated int
	estopSent bool
	lastEst   Sample
	stepTime  stats.Running // wall-clock ns per model step

	// safeRing holds recent passing teleop payloads for ModeHoldSafe. On
	// alarm the payload from safeLag frames ago is held: the most recent
	// passing frames may already be corrupted (the fused alarm needs a few
	// cycles of velocity build-up to fire), so the hold must reach back
	// past the detection latency.
	safeRing     [safeRingLen][usb.NumChannels]int16
	safeCount    int
	lastSafeHold int // frames replaced with the safe payload
	holdCooldown int // remaining cycles of unconditional holding

	// Deferred-prediction seam (the fleet's batched guard sweep). With
	// deferred set, OnWrite stops at the model-advance step: it parks the
	// frame on the interposition chain with Hold and latches the
	// prediction inputs below. The fleet worker then packs every pending
	// guard's model into one SoA BatchStepper, advances all lanes in one
	// fused sweep, and calls AbsorbPrediction to finish each held write.
	// The pend* fields live only between OnWrite and AbsorbPrediction
	// within a single control period — never across a tick, so snapshots
	// (taken between ticks) need not capture them.
	deferred    bool                          //ravenlint:snapshot-ignore execution-mode wiring set at fleet admission, fixed during a run
	pendPredict bool                          //ravenlint:snapshot-ignore transient within one control period
	pendBuf     []byte                        //ravenlint:snapshot-ignore transient within one control period
	pendDAC     [usb.NumChannels]int16        //ravenlint:snapshot-ignore transient within one control period
	pendTau     [kinematics.NumJoints]float64 //ravenlint:snapshot-ignore transient within one control period
	pendPrev    [kinematics.NumJoints]float64 //ravenlint:snapshot-ignore transient within one control period
	pendTeleop  bool                          //ravenlint:snapshot-ignore transient within one control period
}

// safeRingLen and safeLag size the hold-safe history: the fused alarm's
// worst observed latency is under 16 cycles.
const (
	safeRingLen = 32
	safeLag     = 16
)

var _ sim.Hook = (*Guard)(nil)

// NewGuard builds the guard.
func NewGuard(cfg Config) (*Guard, error) {
	cfg.applyDefaults()
	if !dynamics.ValidScheme(cfg.Integrator) {
		return nil, fmt.Errorf("core: unknown integrator %q (want \"euler\" or \"rk4\")", cfg.Integrator)
	}
	model, err := dynamics.NewStepper(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Bank.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	armed := cfg.Thresholds != (Thresholds{})
	if armed {
		if err := cfg.Thresholds.Validate(); err != nil {
			return nil, err
		}
	}
	if (cfg.Mode == ModeMitigate || cfg.Mode == ModeHoldSafe) && !armed {
		return nil, fmt.Errorf("core: mitigation modes require thresholds")
	}
	g := &Guard{cfg: cfg, model: model, rk4: cfg.Integrator == "rk4", armed: armed}
	switch cfg.Resync {
	case "proportional":
	case "kalman":
		for i := 0; i < kinematics.NumJoints; i++ {
			kf, err := estimator.NewKalman(estimator.KalmanConfig{Ratio: cfg.Trans.Ratio[i]})
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			g.kalman[i] = kf
		}
	default:
		return nil, fmt.Errorf("core: unknown resync scheme %q (want \"proportional\" or \"kalman\")", cfg.Resync)
	}
	return g, nil
}

// Name implements interpose.Wrapper.
func (g *Guard) Name() string { return "dynamic-model-guard" }

// SetEStop installs the emergency-stop callback after construction (the
// simulation rig wires it to the PLC latch; see sim.New).
func (g *Guard) SetEStop(f func(cause string)) { g.cfg.EStop = f }

// Alarms returns how many frames raised an alarm.
func (g *Guard) Alarms() int { return g.alarms }

// Mitigated returns how many frames were neutralised.
func (g *Guard) Mitigated() int { return g.mitigated }

// Verdict is a compact snapshot of the guard's cumulative decisions, cheap
// to sample every control period (the fleet engine folds one per tick into
// its session digests).
type Verdict struct {
	Alarms     int
	Mitigated  int
	HeldFrames int
	FbSuspect  bool
}

// Verdict returns the current decision snapshot.
//
//ravenlint:noalloc
func (g *Guard) Verdict() Verdict {
	return Verdict{
		Alarms:     g.alarms,
		Mitigated:  g.mitigated,
		HeldFrames: g.lastSafeHold,
		FbSuspect:  g.fbSuspect,
	}
}

// LastEstimates returns the most recent cycle's model estimates.
func (g *Guard) LastEstimates() Sample { return g.lastEst }

// StepTime returns the wall-clock statistics of the model step in
// nanoseconds (the Figure 8 "Avg. Time/Step" measurement).
func (g *Guard) StepTime() stats.Summary { return g.stepTime.Summarize() }

// ModelState exposes the model's current estimate of the full state
// (for the Figure 8 model-vs-robot comparison).
func (g *Guard) ModelState() (kinematics.MotorPos, kinematics.JointPos) {
	return g.state.MotorPos(), g.state.JointPos()
}

// OnFeedback implements sim.Hook: it synchronises the model with the
// encoder stream. The first frame snaps the model onto the measured pose;
// later frames apply a proportional innovation so model drift (parameter
// mismatch, unmodelled friction) stays bounded without masking the fast
// transients the detector must see.
func (g *Guard) OnFeedback(fb usb.Feedback, _ float64) {
	var mposMeas kinematics.MotorPos
	for i := 0; i < kinematics.NumJoints; i++ {
		mposMeas[i] = g.cfg.Bank[i].AngleFromCounts(fb.Encoder[i])
	}
	if !g.synced {
		jp := g.cfg.Trans.ToJoint(mposMeas)
		g.state.SetJointPos(jp, g.cfg.Trans)
		g.synced = true
		g.prevFbMpos = mposMeas
		g.havePrevFb = true
		g.gapPending = false
		return
	}

	worstInnov := 0.0
	for i := 0; i < kinematics.NumJoints; i++ {
		innov := estimator.Innovation(estimator.JointState{MotorPos: g.state.X[4*i]}, mposMeas[i])
		if innov > worstInnov {
			worstInnov = innov
		}
	}

	if g.gapPending {
		// First frame after a feedback gap: the measurement may be many
		// cycles newer than the last one the filters saw, so neither the
		// finite-difference velocity innovation nor the tamper residual is
		// meaningful. Resynchronise instead — hard-snap the positions when
		// the model drifted past the innovation limit during the gap, and
		// restart the velocity differencing from this frame.
		g.gapPending = false
		if worstInnov > g.cfg.InnovationLimit {
			jp := g.cfg.Trans.ToJoint(mposMeas)
			g.state.SetJointPos(jp, g.cfg.Trans)
		}
		g.innovStreak = 0
		g.prevFbMpos = mposMeas
		g.havePrevFb = true
		return
	}

	// Residual check: a persistent large innovation means the encoder
	// stream and the model disagree far beyond model error — either the
	// model diverged or the feedback is being tampered with on the read
	// path (Table I). The flag is advisory; consumers decide the response.
	g.innovStats.Add(worstInnov)
	if worstInnov > g.cfg.InnovationLimit {
		g.innovStreak++
		if g.innovStreak >= g.cfg.InnovationRun {
			g.fbSuspect = true
		}
	} else {
		g.innovStreak = 0
	}

	const dt = 1e-3
	if g.kalman[0] != nil {
		for i := 0; i < kinematics.NumJoints; i++ {
			pred := estimator.JointState{
				MotorPos: g.state.X[4*i],
				MotorVel: g.state.X[4*i+1],
				LinkPos:  g.state.X[4*i+2],
				LinkVel:  g.state.X[4*i+3],
			}
			corr := g.kalman[i].Update(pred, mposMeas[i], dt)
			g.state.X[4*i] = corr.MotorPos
			g.state.X[4*i+1] = corr.MotorVel
			g.state.X[4*i+2] = corr.LinkPos
			g.state.X[4*i+3] = corr.LinkVel
		}
	} else {
		gain := g.cfg.ResyncGain
		jmeas := g.cfg.Trans.ToJoint(mposMeas)
		for i := 0; i < kinematics.NumJoints; i++ {
			// Positions: proportional pull toward the measurement.
			g.state.X[4*i] += gain * (mposMeas[i] - g.state.X[4*i])
			g.state.X[4*i+2] += gain * (jmeas[i] - g.state.X[4*i+2])
		}
		if g.havePrevFb {
			for i := 0; i < kinematics.NumJoints; i++ {
				vmeas := (mposMeas[i] - g.prevFbMpos[i]) / dt
				g.state.X[4*i+1] += gain * (vmeas - g.state.X[4*i+1])
				g.state.X[4*i+3] += gain * (vmeas/g.cfg.Trans.Ratio[i] - g.state.X[4*i+3])
			}
		}
	}
	g.prevFbMpos = mposMeas
	g.havePrevFb = true
}

// OnFeedbackGap implements sim.FeedbackGapObserver: the rig reports a lost
// (undecodable) feedback frame. The model keeps dead-reckoning on its own
// integration; the next good frame triggers a resynchronisation rather
// than being misread as a one-cycle jump (which would spike the velocity
// innovation and could raise a false tamper flag).
func (g *Guard) OnFeedbackGap(float64) {
	g.feedbackGaps++
	g.gapPending = true
}

// FeedbackGaps returns how many feedback-frame losses the rig reported.
func (g *Guard) FeedbackGaps() int { return g.feedbackGaps }

// FeedbackSuspect reports whether the innovation residual has flagged the
// encoder stream as inconsistent with the model (possible read-path
// tampering).
func (g *Guard) FeedbackSuspect() bool { return g.fbSuspect }

// InnovationStats returns the residual statistics (radians of motor
// position).
func (g *Guard) InnovationStats() stats.Summary { return g.innovStats.Summarize() }

// OnWrite implements interpose.Wrapper: estimate the command's physical
// consequence before it executes, and neutralise it when it would violate
// the learned safety envelope. In deferred-prediction mode the
// model-advance step is batched across sessions instead: the frame parks
// on the chain (Hold) and AbsorbPrediction finishes the decision after
// the fleet worker's fused sweep.
func (g *Guard) OnWrite(buf []byte) interpose.Verdict {
	dac, tau, teleop, predict := g.beginWrite(buf)
	if !predict {
		return interpose.Pass
	}
	if g.deferred {
		g.pendPredict = true
		g.pendBuf = buf
		g.pendDAC = dac
		g.pendTau = tau
		g.pendPrev = g.state.MotorVel()
		g.pendTeleop = teleop
		return interpose.Hold
	}
	prevMotorVel := g.state.MotorVel()
	start := g.cfg.Clock()
	g.model.SetTorque(tau)
	g.model.Step(g.rk4, &g.state.X, predictDT)
	g.stepTime.Add(float64(g.cfg.Clock() - start))
	return g.finishWrite(buf, dac, prevMotorVel, teleop)
}

// predictDT is the one-step-ahead horizon: one control period.
const predictDT = 1e-3

// beginWrite is the pre-prediction half of OnWrite: decode the frame,
// gate on machine state and model sync, and convert the DAC payload to
// torques. predict reports whether a model advance is required; when
// false the frame passes with no further work (and the model's
// velocities are frozen if the brakes hold the arm).
//
//ravenlint:noalloc
func (g *Guard) beginWrite(buf []byte) (dac [usb.NumChannels]int16, tau [kinematics.NumJoints]float64, teleop, predict bool) {
	cmd, err := usb.DecodeCommand(buf)
	if err != nil {
		return dac, tau, false, false // not a command frame; nothing to check
	}

	st, ok := statemachine.FromNibble(cmd.StateNibble)
	if !ok || (st != statemachine.PedalDown && st != statemachine.Init) {
		// Brakes engaged: commands cannot move the arm. Freeze the model's
		// velocities the way the brakes freeze the robot's.
		for i := 0; i < kinematics.NumJoints; i++ {
			g.state.X[4*i+1] = 0
			g.state.X[4*i+3] = 0
		}
		return dac, tau, false, false
	}
	if !g.synced {
		return dac, tau, false, false // no feedback yet; cannot estimate
	}
	// During Init the model tracks the homing motion but neither samples
	// nor alarms: the threat model triggers attacks in Pedal Down (the
	// only state where the console drives the arm), and homing's fast
	// sweep would otherwise inflate the learned teleoperation envelope.
	teleop = st == statemachine.PedalDown

	// One-step-ahead simulation of the command.
	for i := 0; i < kinematics.NumJoints; i++ {
		tau[i] = g.cfg.Bank[i].DACToTorque(cmd.DAC[i])
	}
	return cmd.DAC, tau, teleop, true
}

// finishWrite is the post-prediction half of OnWrite: derive the estimate
// sample from the advanced model state, fuse the alarms, and apply the
// configured mitigation to the frame. dac is the frame's decoded DAC
// payload and prevMotorVel the model's motor velocity before the
// advance. It never drops or holds the frame.
func (g *Guard) finishWrite(buf []byte, dac [usb.NumChannels]int16, prevMotorVel [kinematics.NumJoints]float64, teleop bool) interpose.Verdict {
	var est Sample
	mv := g.state.MotorVel()
	jv := g.state.JointVel()
	for i := 0; i < kinematics.NumJoints; i++ {
		est.MotorVel[i] = abs(mv[i])
		est.MotorAccel[i] = abs((mv[i] - prevMotorVel[i]) / predictDT)
		est.JointVel[i] = abs(jv[i])
	}
	g.lastEst = est
	if !teleop {
		return interpose.Pass
	}
	if g.cfg.OnSample != nil {
		g.cfg.OnSample(est)
	}

	if !g.armed {
		return interpose.Pass
	}

	// Inside a hold-safe cooldown the payload is replaced unconditionally:
	// the robot is being forced to stay in the previously safe state. The
	// hold releases only when the cooldown has drained AND the incoming
	// command's estimated acceleration is back inside the envelope — a
	// still-active attacker re-triggers the hold on the first frame, from
	// the acceleration spike alone (velocity needs several frames to
	// rebuild, so the fused alarm would miss it).
	if g.cfg.Mode == ModeHoldSafe && g.holdCooldown > 0 {
		g.holdCooldown--
		if g.holdCooldown == 0 && g.accelSuspicious(est) {
			g.holdCooldown = g.cfg.HoldCooldownTicks
		}
		g.holdPayload(buf)
		return interpose.Pass
	}

	// Alarm fusion (Section IV.C): with FusionAll, all three variables
	// must indicate abnormality on the same joint.
	alarm := false
	for i := 0; i < kinematics.NumJoints; i++ {
		accelHit := est.MotorAccel[i] > g.cfg.Thresholds.MotorAccel[i]
		mvelHit := est.MotorVel[i] > g.cfg.Thresholds.MotorVel[i]
		jvelHit := est.JointVel[i] > g.cfg.Thresholds.JointVel[i]
		switch g.cfg.Fusion {
		case FusionAny:
			alarm = accelHit || mvelHit || jvelHit
		default:
			alarm = accelHit && mvelHit && jvelHit
		}
		if alarm {
			break
		}
	}
	if !alarm {
		g.safeRing[g.safeCount%safeRingLen] = dac
		g.safeCount++
		return interpose.Pass
	}
	g.alarms++

	switch g.cfg.Mode {
	case ModeMitigate:
		// Neutralise the frame in place (zero DAC payload) so the motors
		// receive a safe command rather than retaining the dangerous one,
		// and latch the emergency stop.
		for ch := 0; ch < usb.NumChannels; ch++ {
			off := usb.DACBase + 2*ch
			buf[off] = 0
			buf[off+1] = 0
		}
		g.mitigated++
		if !g.estopSent && g.cfg.EStop != nil {
			g.estopSent = true
			g.cfg.EStop("dynamic-model guard: estimated motion exceeds safety envelope")
		}
	case ModeHoldSafe:
		// Replace the payload with the last command that stayed inside the
		// envelope and keep holding for the cooldown window; the procedure
		// continues rather than halting. The feedback resync absorbs the
		// difference between the modelled and the held command.
		g.holdPayload(buf)
		g.holdCooldown = g.cfg.HoldCooldownTicks
	}
	return interpose.Pass
}

// SetDeferredPredict switches the guard between immediate (scalar) and
// deferred (batched) prediction. With deferral on, OnWrite returns
// interpose.Hold for every frame that needs a model advance and the
// owner must drive PredictInto / AbsorbPrediction before resuming the
// chain — the fleet worker does this once per tick for all its resident
// sessions. Deferred predictions skip the per-step wall-clock StepTime
// sample: one fused sweep has no meaningful per-session duration.
func (g *Guard) SetDeferredPredict(on bool) { g.deferred = on }

// SchemeRK4 reports whether the guard's model integrates with RK4 (true)
// or explicit Euler (false). The fleet worker batches only scheme-
// homogeneous guards into one sweep.
func (g *Guard) SchemeRK4() bool { return g.rk4 }

// PredictPending reports whether OnWrite parked a frame this control
// period and a batched model advance is owed.
//
//ravenlint:noalloc
func (g *Guard) PredictPending() bool { return g.pendPredict }

// PredictInto packs the pending one-step-ahead prediction into lane of
// bs: the model constants and integrator latches via FillLane, the
// current model state vector, and the held frame's commanded torques.
// Must only be called while PredictPending.
//
//ravenlint:noalloc
func (g *Guard) PredictInto(bs *dynamics.BatchStepper, lane int) {
	g.model.FillLane(bs, lane)
	bs.SetLaneX(lane, &g.state.X)
	bs.SetLaneTau(lane, g.pendTau)
}

// AbsorbPrediction reads the advanced lane back into the model — the
// state vector plus the integrator's torque and gravity-anchor latches,
// exactly the writeback FillLane mirrors — and finishes the held write's
// decision: estimate sample, alarm fusion, and any mitigation rewrite of
// the parked frame. The caller resumes the interposition chain
// afterwards (interpose.Chain.ResumeHeld), delivering the possibly
// rewritten frame to the board. The batched lane advance is bit-identical
// to the scalar Step the guard would have run, so every downstream
// decision is too.
//
//ravenlint:noalloc
func (g *Guard) AbsorbPrediction(bs *dynamics.BatchStepper, lane int) {
	bs.LaneX(lane, &g.state.X)
	g.model.ReadLane(bs, lane)
	g.pendPredict = false
	buf := g.pendBuf
	g.pendBuf = nil
	g.finishWrite(buf, g.pendDAC, g.pendPrev, g.pendTeleop)
}

// State is the guard's complete mutable state, for checkpoint/restore:
// the tracking model (state vector plus the integrator's torque and
// gravity-anchor latches), the feedback-resync filters, residual-check
// accumulators, alarm/mitigation counters, and the hold-safe history.
// Configuration (thresholds, mode, fusion, callbacks) stays with the
// target guard.
type State struct {
	Model  dynamics.StepperState
	X      [dynamics.StateDim]float64
	Synced bool

	PrevFbMpos kinematics.MotorPos
	HavePrevFb bool

	Kalman      [kinematics.NumJoints]estimator.Kalman
	InnovStreak int
	FbSuspect   bool
	InnovStats  stats.Running

	GapPending   bool
	FeedbackGaps int

	Alarms    int
	Mitigated int
	EStopSent bool
	LastEst   Sample
	StepTime  stats.Running

	SafeRing     [safeRingLen][usb.NumChannels]int16
	SafeCount    int
	LastSafeHold int
	HoldCooldown int
}

// CaptureSnap implements sim.Snapshotter (Name is the wrapper name).
func (g *Guard) CaptureSnap() any {
	s := State{
		Model:  g.model.Checkpoint(),
		X:      g.state.X,
		Synced: g.synced,

		PrevFbMpos: g.prevFbMpos,
		HavePrevFb: g.havePrevFb,

		InnovStreak: g.innovStreak,
		FbSuspect:   g.fbSuspect,
		InnovStats:  g.innovStats,

		GapPending:   g.gapPending,
		FeedbackGaps: g.feedbackGaps,

		Alarms:    g.alarms,
		Mitigated: g.mitigated,
		EStopSent: g.estopSent,
		LastEst:   g.lastEst,
		StepTime:  g.stepTime,

		SafeRing:     g.safeRing,
		SafeCount:    g.safeCount,
		LastSafeHold: g.lastSafeHold,
		HoldCooldown: g.holdCooldown,
	}
	if g.kalman[0] != nil {
		for i := 0; i < kinematics.NumJoints; i++ {
			s.Kalman[i] = *g.kalman[i]
		}
	}
	return s
}

// RestoreSnap implements sim.Snapshotter.
func (g *Guard) RestoreSnap(st any) error {
	s, ok := st.(State)
	if !ok {
		return fmt.Errorf("core: guard snapshot has type %T", st)
	}
	g.model.RestoreCheckpoint(s.Model)
	g.state.X = s.X
	g.synced = s.Synced

	g.prevFbMpos = s.PrevFbMpos
	g.havePrevFb = s.HavePrevFb

	if g.kalman[0] != nil {
		for i := 0; i < kinematics.NumJoints; i++ {
			*g.kalman[i] = s.Kalman[i]
		}
	}
	g.innovStreak = s.InnovStreak
	g.fbSuspect = s.FbSuspect
	g.innovStats = s.InnovStats

	g.gapPending = s.GapPending
	g.feedbackGaps = s.FeedbackGaps

	g.alarms = s.Alarms
	g.mitigated = s.Mitigated
	g.estopSent = s.EStopSent
	g.lastEst = s.LastEst
	g.stepTime = s.StepTime

	g.safeRing = s.SafeRing
	g.safeCount = s.SafeCount
	g.lastSafeHold = s.LastSafeHold
	g.holdCooldown = s.HoldCooldown
	return nil
}

// accelSuspicious reports whether any joint's estimated acceleration alone
// exceeds its threshold (the hold-release probe).
func (g *Guard) accelSuspicious(est Sample) bool {
	for i := 0; i < kinematics.NumJoints; i++ {
		if est.MotorAccel[i] > g.cfg.Thresholds.MotorAccel[i] {
			return true
		}
	}
	return false
}

// holdPayload overwrites the frame's DAC payload with a command from
// before the detection latency window (or zeros when history is too
// shallow).
func (g *Guard) holdPayload(buf []byte) {
	if g.safeCount > safeLag {
		idx := (g.safeCount - 1 - safeLag) % safeRingLen
		held := g.safeRing[idx]
		for ch := 0; ch < usb.NumChannels; ch++ {
			binary.LittleEndian.PutUint16(buf[usb.DACBase+2*ch:], uint16(held[ch]))
		}
	} else {
		for ch := 0; ch < usb.NumChannels; ch++ {
			off := usb.DACBase + 2*ch
			buf[off] = 0
			buf[off+1] = 0
		}
	}
	g.mitigated++
	g.lastSafeHold++
}

// HeldFrames returns how many frames ModeHoldSafe replaced with the last
// safe command.
func (g *Guard) HeldFrames() int { return g.lastSafeHold }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
