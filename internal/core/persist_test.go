package core

import (
	"strings"
	"testing"
)

func TestThresholdsSaveLoadRoundTrip(t *testing.T) {
	th := DefaultThresholds()
	path := t.TempDir() + "/thresholds.json"
	if err := th.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadThresholds(path)
	if err != nil {
		t.Fatal(err)
	}
	if back != th {
		t.Fatalf("round trip: %+v vs %+v", back, th)
	}
}

func TestReadThresholdsRejects(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"garbage", "not json"},
		{"wrong version", `{"version":9,"motor_vel_rad_s":[1,1,1],"motor_accel_rad_s2":[1,1,1],"joint_vel":[1,1,1]}`},
		{"non-positive limit", `{"version":1,"motor_vel_rad_s":[0,1,1],"motor_accel_rad_s2":[1,1,1],"joint_vel":[1,1,1]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadThresholds(strings.NewReader(tt.json)); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestLoadThresholdsMissingFile(t *testing.T) {
	if _, err := LoadThresholds(t.TempDir() + "/nope.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
