package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// thresholdsFile is the on-disk JSON schema for learned thresholds.
type thresholdsFile struct {
	Version    int        `json:"version"`
	MotorVel   [3]float64 `json:"motor_vel_rad_s"`
	MotorAccel [3]float64 `json:"motor_accel_rad_s2"`
	JointVel   [3]float64 `json:"joint_vel"`
}

// thresholdsFileVersion identifies the serialisation format.
const thresholdsFileVersion = 1

// Write serialises the thresholds as JSON.
func (th Thresholds) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(thresholdsFile{
		Version:    thresholdsFileVersion,
		MotorVel:   th.MotorVel,
		MotorAccel: th.MotorAccel,
		JointVel:   th.JointVel,
	}); err != nil {
		return fmt.Errorf("core: encode thresholds: %w", err)
	}
	return nil
}

// Save writes the thresholds to a JSON file.
func (th Thresholds) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := th.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadThresholds parses thresholds from JSON and validates them.
func ReadThresholds(r io.Reader) (Thresholds, error) {
	var tf thresholdsFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return Thresholds{}, fmt.Errorf("core: decode thresholds: %w", err)
	}
	if tf.Version != thresholdsFileVersion {
		return Thresholds{}, fmt.Errorf("core: unsupported thresholds version %d", tf.Version)
	}
	th := Thresholds{MotorVel: tf.MotorVel, MotorAccel: tf.MotorAccel, JointVel: tf.JointVel}
	if err := th.Validate(); err != nil {
		return Thresholds{}, err
	}
	return th, nil
}

// LoadThresholds reads thresholds from a JSON file.
func LoadThresholds(path string) (Thresholds, error) {
	f, err := os.Open(path)
	if err != nil {
		return Thresholds{}, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return ReadThresholds(f)
}
