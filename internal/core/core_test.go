package core

import (
	"strings"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/inject"
	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/mathx"
	"ravenguard/internal/motor"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/usb"
)

func TestNewGuardValidation(t *testing.T) {
	if _, err := NewGuard(Config{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if _, err := NewGuard(Config{Integrator: "simpson"}); err == nil {
		t.Fatal("unknown integrator accepted")
	}
	if _, err := NewGuard(Config{Mode: ModeMitigate}); err == nil {
		t.Fatal("mitigation without thresholds accepted")
	}
	bad := DefaultThresholds()
	bad.MotorVel[1] = -1
	if _, err := NewGuard(Config{Thresholds: bad}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	badBank := motor.DefaultBank()
	badBank[0].EncoderCPR = 0
	if _, err := NewGuard(Config{Bank: badBank}); err == nil {
		t.Fatal("bad bank accepted")
	}
}

func TestGuardIgnoresNonCommandFrames(t *testing.T) {
	g, err := NewGuard(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v := g.OnWrite([]byte{1, 2, 3}); v != interpose.Pass {
		t.Fatal("non-command frame not passed through")
	}
}

func TestGuardPassesWithoutFeedbackSync(t *testing.T) {
	g, err := NewGuard(Config{Thresholds: DefaultThresholds()})
	if err != nil {
		t.Fatal(err)
	}
	cmd := usb.Command{StateNibble: statemachine.PedalDown.Nibble(), DAC: [usb.NumChannels]int16{32767}}
	frame := cmd.Encode()
	if v := g.OnWrite(frame[:]); v != interpose.Pass {
		t.Fatal("unsynced guard must pass")
	}
	if g.Alarms() != 0 {
		t.Fatal("unsynced guard alarmed")
	}
}

func TestGuardFreezesModelWhenBraked(t *testing.T) {
	g, err := NewGuard(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Sync at a pose, then drive the model with pedal-down frames to
	// build velocity, then send a Pedal-Up frame.
	g.OnFeedback(feedbackAt(t, kinematics.DefaultLimits().Center()), 0)
	cmd := usb.Command{StateNibble: statemachine.PedalDown.Nibble(), DAC: [usb.NumChannels]int16{20000}}
	frame := cmd.Encode()
	for i := 0; i < 20; i++ {
		g.OnWrite(frame[:])
	}
	mp, _ := g.ModelState()
	_ = mp
	up := usb.Command{StateNibble: statemachine.PedalUp.Nibble()}
	upFrame := up.Encode()
	g.OnWrite(upFrame[:])
	if v := g.LastEstimates(); false {
		_ = v
	}
	mv, jv := g.state.MotorVel(), g.state.JointVel()
	for i := 0; i < kinematics.NumJoints; i++ {
		if mv[i] != 0 || jv[i] != 0 {
			t.Fatalf("braked model kept velocity: %v %v", mv, jv)
		}
	}
}

// feedbackAt builds an encoder feedback frame for a joint pose.
func feedbackAt(t *testing.T, jp kinematics.JointPos) usb.Feedback {
	t.Helper()
	bank := motor.DefaultBank()
	mp := kinematics.DefaultTransmission().ToMotor(jp)
	var fb usb.Feedback
	for i := 0; i < kinematics.NumJoints; i++ {
		fb.Encoder[i] = bank[i].EncoderCounts(mp[i])
	}
	return fb
}

func TestGuardNoAlarmsFaultFree(t *testing.T) {
	guard, err := NewGuard(Config{Thresholds: DefaultThresholds()})
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{
		Seed:   91,
		Script: console.StandardScript(6),
		Traj:   trajectory.Standard()[0],
		Guards: []sim.Hook{guard},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if guard.Alarms() != 0 {
		t.Fatalf("fault-free run raised %d alarms", guard.Alarms())
	}
}

func TestGuardDetectsScenarioB(t *testing.T) {
	guard, err := NewGuard(Config{Thresholds: DefaultThresholds()})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := inject.NewScenarioB(inject.ScenarioBParams{
		Value: 16000, Channel: 0, StartDelayTicks: 1000, ActivationTicks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{
		Seed:    92,
		Script:  console.StandardScript(5),
		Traj:    trajectory.Standard()[0],
		Guards:  []sim.Hook{guard},
		Preload: []interpose.Wrapper{inj},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if inj.Injected() == 0 {
		t.Fatal("attack never activated")
	}
	if guard.Alarms() == 0 {
		t.Fatal("guard missed a 16000-count 64 ms torque injection")
	}
	// Monitor mode must not have disturbed the robot.
	if rig.PLC().EStopped() {
		t.Fatal("monitor-mode guard latched E-STOP")
	}
}

func TestGuardDetectsScenarioA(t *testing.T) {
	guard, err := NewGuard(Config{Thresholds: DefaultThresholds()})
	if err != nil {
		t.Fatal(err)
	}
	att, err := inject.NewScenarioA(inject.ScenarioAParams{
		Magnitude: 2e-4, StartAfterTicks: 1000, ActivationTicks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{
		Seed:    93,
		Script:  console.StandardScript(5),
		Traj:    trajectory.Standard()[1],
		Guards:  []sim.Hook{guard},
		OnInput: att.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if guard.Alarms() == 0 {
		t.Fatal("guard missed a 0.2 mm/cycle input injection")
	}
}

func TestGuardMitigationReducesImpact(t *testing.T) {
	run := func(mode Mode) (maxDev float64, mitigated int) {
		guard, err := NewGuard(Config{Thresholds: DefaultThresholds(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := inject.NewScenarioB(inject.ScenarioBParams{
			Value: 16000, Channel: 0, StartDelayTicks: 1000, ActivationTicks: 128,
		})
		if err != nil {
			t.Fatal(err)
		}
		rig, err := sim.New(sim.Config{
			Seed:    94,
			Script:  console.StandardScript(5),
			Traj:    trajectory.Standard()[0],
			Guards:  []sim.Hook{guard},
			Preload: []interpose.Wrapper{inj},
		})
		if err != nil {
			t.Fatal(err)
		}
		halted := false
		rig.Observe(func(si sim.StepInfo) {
			if halted {
				return
			}
			if si.Ctrl.State == statemachine.PedalDown {
				if d := si.TipTrue.DistanceTo(si.Ctrl.TipDesired); d > maxDev {
					maxDev = d
				}
			}
			if si.PLCEStop {
				halted = true
			}
		})
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		return maxDev, guard.Mitigated()
	}
	devMon, _ := run(ModeMonitor)
	devMit, mitigated := run(ModeMitigate)
	if mitigated == 0 {
		t.Fatal("mitigation mode never neutralised a frame")
	}
	if devMit >= devMon {
		t.Fatalf("mitigation did not reduce impact: %.3f mm vs %.3f mm", devMit*1e3, devMon*1e3)
	}
}

func TestGuardMitigationLatchesEStopViaRig(t *testing.T) {
	guard, err := NewGuard(Config{Thresholds: DefaultThresholds(), Mode: ModeMitigate})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := inject.NewScenarioB(inject.ScenarioBParams{
		Value: 20000, Channel: 0, StartDelayTicks: 1000, ActivationTicks: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{
		Seed:    95,
		Script:  console.StandardScript(5),
		Traj:    trajectory.Standard()[0],
		Guards:  []sim.Hook{guard},
		Preload: []interpose.Wrapper{inj},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	if guard.Mitigated() == 0 {
		t.Fatal("no mitigation occurred")
	}
	if !rig.PLC().EStopped() {
		t.Fatal("mitigation did not latch the PLC E-STOP")
	}
	if !strings.Contains(rig.PLC().EStopCause(), "dynamic-model guard") {
		t.Fatalf("E-STOP cause = %q", rig.PLC().EStopCause())
	}
}

func TestGuardModelTracksPlant(t *testing.T) {
	guard, err := NewGuard(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{
		Seed:   96,
		Script: console.StandardScript(6),
		Traj:   trajectory.Standard()[1],
		Guards: []sim.Hook{guard},
	})
	if err != nil {
		t.Fatal(err)
	}
	worstJ := 0.0
	rig.Observe(func(si sim.StepInfo) {
		if si.T < 3.5 {
			return
		}
		_, jp := guard.ModelState()
		for i := 0; i < kinematics.NumJoints; i++ {
			if d := mathx.Clamp(jp[i]-si.JposTrue[i], -1e9, 1e9); d < 0 {
				d = -d
				if d > worstJ {
					worstJ = d
				}
			} else if d > worstJ {
				worstJ = d
			}
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	// Worst joint tracking error under 0.01 rad (~0.6 deg): the model is
	// usable for one-step-ahead estimation.
	if worstJ > 0.01 {
		t.Fatalf("worst model joint error %v rad", worstJ)
	}
	if guard.StepTime().N == 0 {
		t.Fatal("no step-time samples recorded")
	}
}

func TestGuardRK4AndEulerBothTrack(t *testing.T) {
	for _, scheme := range []string{"euler", "rk4"} {
		guard, err := NewGuard(Config{Integrator: scheme})
		if err != nil {
			t.Fatal(err)
		}
		rig, err := sim.New(sim.Config{
			Seed:   97,
			Script: console.StandardScript(3),
			Traj:   trajectory.Standard()[0],
			Guards: []sim.Hook{guard},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rig.Run(0); err != nil {
			t.Fatal(err)
		}
		_, jp := guard.ModelState()
		for i := 0; i < kinematics.NumJoints; i++ {
			d := jp[i] - rig.Plant().JointPos()[i]
			if d < -0.02 || d > 0.02 {
				t.Fatalf("%s: joint %d model error %v rad at session end", scheme, i, d)
			}
		}
	}
}

func TestLearnSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("learning is slow")
	}
	th, err := Learn(LearnConfig{Runs: 4, TeleopSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Validate(); err != nil {
		t.Fatalf("learned thresholds invalid: %v", err)
	}
	// Learned thresholds must be in the same decade as the baked-in ones.
	def := DefaultThresholds()
	for i := 0; i < kinematics.NumJoints; i++ {
		if th.MotorVel[i] > def.MotorVel[i]*10 || th.MotorVel[i] < def.MotorVel[i]/10 {
			t.Fatalf("joint %d motor-vel threshold %v far from default %v", i, th.MotorVel[i], def.MotorVel[i])
		}
	}
}

func TestDefaultThresholdsValid(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
}
