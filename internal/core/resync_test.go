package core

import (
	"math"
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/motor"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/usb"
)

func TestNewGuardRejectsUnknownResync(t *testing.T) {
	if _, err := NewGuard(Config{Resync: "ukf"}); err == nil {
		t.Fatal("unknown resync scheme accepted")
	}
}

// modelError runs a fault-free session with a guard using the given resync
// scheme and returns the mean absolute motor-position model error.
func modelError(t *testing.T, resync string) float64 {
	t.Helper()
	guard, err := NewGuard(Config{Resync: resync})
	if err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(sim.Config{
		Seed:   401,
		Script: console.StandardScript(5),
		Traj:   trajectory.Standard()[0],
		Guards: []sim.Hook{guard},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	rig.Observe(func(si sim.StepInfo) {
		if si.T < 3 {
			return
		}
		mp, _ := guard.ModelState()
		for i := 0; i < kinematics.NumJoints; i++ {
			sum += math.Abs(mp[i] - si.MposTrue[i])
		}
		n += kinematics.NumJoints
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	return sum / float64(n)
}

func TestKalmanResyncTracksPlant(t *testing.T) {
	prop := modelError(t, "proportional")
	kalman := modelError(t, "kalman")
	// Both schemes must keep the model usable (< 1 deg motor error), and
	// the Kalman filter should not be dramatically worse.
	if prop > 0.02 {
		t.Fatalf("proportional resync error %v rad", prop)
	}
	if kalman > 0.02 {
		t.Fatalf("kalman resync error %v rad", kalman)
	}
	if kalman > 4*prop {
		t.Fatalf("kalman error %v far above proportional %v", kalman, prop)
	}
}

func TestInnovationResidualFlagsEncoderTampering(t *testing.T) {
	// Table I's read-path attack: corrupt the encoder feedback the control
	// software sees. The guard (in trusted hardware) sees true feedback —
	// but if an attacker tampers with the shared stream, the innovation
	// residual must flag it. Simulate by feeding the guard a forged frame
	// series directly.
	guard, err := NewGuard(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Sync at a pose.
	trans := kinematics.DefaultTransmission()
	pose := kinematics.DefaultLimits().Center()
	honest := feedbackFor(pose, trans)
	guard.OnFeedback(honest, 0)
	for i := 0; i < 20; i++ {
		guard.OnFeedback(honest, float64(i)*1e-3)
	}
	if guard.FeedbackSuspect() {
		t.Fatal("honest feedback flagged as suspect")
	}
	// Now tamper: +2000 counts (~3 rad of motor) on channel 0.
	forged := honest
	forged.Encoder[0] += 2000
	for i := 0; i < 10; i++ {
		guard.OnFeedback(forged, float64(20+i)*1e-3)
	}
	if !guard.FeedbackSuspect() {
		t.Fatalf("tampered feedback not flagged; innovation stats: %v", guard.InnovationStats())
	}
}

func TestInnovationTransientDoesNotFlag(t *testing.T) {
	// A single corrupted frame (below the run-length requirement) must not
	// latch the suspect flag.
	guard, err := NewGuard(Config{})
	if err != nil {
		t.Fatal(err)
	}
	trans := kinematics.DefaultTransmission()
	pose := kinematics.DefaultLimits().Center()
	honest := feedbackFor(pose, trans)
	guard.OnFeedback(honest, 0)
	for i := 0; i < 10; i++ {
		guard.OnFeedback(honest, float64(i)*1e-3)
	}
	forged := honest
	forged.Encoder[0] += 300        // ~0.47 rad: above the limit but survivable
	guard.OnFeedback(forged, 0.011) // one glitch
	for i := 0; i < 10; i++ {
		guard.OnFeedback(honest, 0.012+float64(i)*1e-3)
	}
	if guard.FeedbackSuspect() {
		t.Fatal("single glitch latched the suspect flag")
	}
}

func feedbackFor(jp kinematics.JointPos, trans kinematics.Transmission) usb.Feedback {
	bank := defaultBankForTest()
	mp := trans.ToMotor(jp)
	var fb usb.Feedback
	for i := 0; i < kinematics.NumJoints; i++ {
		fb.Encoder[i] = bank[i].EncoderCounts(mp[i])
	}
	return fb
}

func defaultBankForTest() motor.Bank { return motor.DefaultBank() }
