package dynamics

import (
	"math"
	"testing"
	"testing/quick"

	"ravenguard/internal/kinematics"
)

// harmonic oscillator x” = -w^2 x, exact solution x(t) = cos(w t).
func oscillator(w float64) Deriv {
	return func(_ float64, x, dx []float64) {
		dx[0] = x[1]
		dx[1] = -w * w * x[0]
	}
}

func TestRK4OrderOfAccuracy(t *testing.T) {
	// Halving the step of RK4 must reduce the error by roughly 2^4.
	w := 2 * math.Pi
	errAt := func(dt float64) float64 {
		x := []float64{1, 0}
		integ := NewRK4(2)
		steps := int(math.Round(1 / dt))
		for s := 0; s < steps; s++ {
			integ.Step(oscillator(w), float64(s)*dt, x, dt)
		}
		return math.Abs(x[0] - math.Cos(w))
	}
	e1 := errAt(0.01)
	e2 := errAt(0.005)
	ratio := e1 / e2
	if ratio < 8 || ratio > 40 {
		t.Fatalf("RK4 error ratio on halving = %v, want ~16", ratio)
	}
}

func TestEulerFirstOrderAccuracy(t *testing.T) {
	// Exponential decay x' = -x has exact solution e^{-t}; Euler's global
	// error at t=1 is O(dt), so halving the step halves the error.
	decay := func(_ float64, x, dx []float64) { dx[0] = -x[0] }
	errAt := func(dt float64) float64 {
		x := []float64{1}
		integ := NewEuler(1)
		steps := int(math.Round(1 / dt))
		for s := 0; s < steps; s++ {
			integ.Step(decay, float64(s)*dt, x, dt)
		}
		return math.Abs(x[0] - math.Exp(-1))
	}
	e1 := errAt(0.001)
	e2 := errAt(0.0005)
	ratio := e1 / e2
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("Euler error ratio on halving = %v, want ~2", ratio)
	}
}

func TestRK4MoreAccurateThanEuler(t *testing.T) {
	w := 2 * math.Pi
	run := func(integ Integrator) float64 {
		x := []float64{1, 0}
		dt := 0.01
		for s := 0; s < 100; s++ {
			integ.Step(oscillator(w), float64(s)*dt, x, dt)
		}
		return math.Abs(x[0] - math.Cos(w))
	}
	eEuler := run(NewEuler(2))
	eRK4 := run(NewRK4(2))
	if eRK4 >= eEuler {
		t.Fatalf("RK4 error %v not smaller than Euler error %v", eRK4, eEuler)
	}
}

func TestLinearExactForBoth(t *testing.T) {
	// x' = c is integrated exactly by Euler and RK4.
	c := 3.7
	lin := func(_ float64, x, dx []float64) { dx[0] = c }
	for _, integ := range []Integrator{NewEuler(1), NewRK4(1)} {
		x := []float64{0}
		for s := 0; s < 10; s++ {
			integ.Step(lin, 0, x, 0.1)
		}
		if math.Abs(x[0]-c) > 1e-12 {
			t.Fatalf("%s: x = %v, want %v", integ.Name(), x[0], c)
		}
	}
}

func TestIntegratorDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewEuler(2).Step(oscillator(1), 0, []float64{1}, 0.01)
}

func TestNewIntegrator(t *testing.T) {
	if ig, err := NewIntegrator("euler", 4); err != nil || ig.Name() != "Euler" {
		t.Fatalf("euler: %v %v", ig, err)
	}
	if ig, err := NewIntegrator("rk4", 4); err != nil || ig == nil {
		t.Fatalf("rk4: %v %v", ig, err)
	}
	if _, err := NewIntegrator("heun", 4); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejectsBadConstants(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero motor inertia", func(p *Params) { p.Joints[0].MotorInertia = 0 }},
		{"negative link inertia", func(p *Params) { p.Joints[1].LinkInertia = -1 }},
		{"zero stiffness", func(p *Params) { p.Joints[2].CableStiffness = 0 }},
		{"zero ratio", func(p *Params) { p.Joints[0].Ratio = 0 }},
		{"negative damping", func(p *Params) { p.Joints[1].LinkDamping = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("Validate accepted bad params")
			}
			if _, err := NewModel(p); err == nil {
				t.Fatal("NewModel accepted bad params")
			}
		})
	}
}

func TestModelEquilibriumHoldsWithGravityCompensation(t *testing.T) {
	// With torque exactly compensating gravity through the cable, the state
	// derivative at a matching (stretched-cable) equilibrium must vanish.
	p := DefaultParams()
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	jp := kinematics.JointPos{0.8, 1.0, 0.05}
	var x [StateDim]float64
	var tau [kinematics.NumJoints]float64
	for i := 0; i < kinematics.NumJoints; i++ {
		jc := p.Joints[i]
		grav := jc.GravConst
		if jc.GravSin {
			grav = jc.GravConst * math.Sin(jp[i]+jc.GravPhase)
		}
		// Link equilibrium: cable force = gravity (zero velocity).
		stretch := grav / jc.CableStiffness
		x[idxLinkPos(i)] = jp[i]
		x[idxMotorPos(i)] = (jp[i] + stretch) * jc.Ratio
		// Motor equilibrium: tau = cable/N.
		tau[i] = grav / jc.Ratio
	}
	m.SetTorque(tau)
	var dx [StateDim]float64
	m.Deriv(0, x[:], dx[:])
	for i, d := range dx {
		if math.Abs(d) > 1e-9 {
			t.Fatalf("derivative[%d] = %v at equilibrium, want 0", i, d)
		}
	}
}

func TestModelTorqueAcceleratesMotor(t *testing.T) {
	m, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var x [StateDim]float64
	m.SetTorque([kinematics.NumJoints]float64{0.1, 0, 0})
	var dx [StateDim]float64
	m.Deriv(0, x[:], dx[:])
	if dx[idxMotorVel(0)] <= 0 {
		t.Fatalf("positive torque gave motor accel %v", dx[idxMotorVel(0)])
	}
	// Other joints see only gravity effects on the link, no motor accel
	// from torque.
	if dx[idxMotorVel(1)] != 0 {
		t.Fatalf("joint 1 motor accel = %v with zero torque and zero stretch", dx[idxMotorVel(1)])
	}
}

func TestModelEulerStableAtControlStep(t *testing.T) {
	// The detector integrates the model with Euler at the 1 ms control
	// period; the paper relies on that being stable. Start from a
	// disturbed state and verify the state stays bounded over 5 seconds.
	m, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	st.SetJointPos(kinematics.JointPos{0.8, 1.0, 0.05}, kinematics.DefaultTransmission())
	st.X[idxMotorVel(0)] += 5 // rad/s kick
	integ := NewEuler(StateDim)
	m.SetTorque([kinematics.NumJoints]float64{})
	for s := 0; s < 5000; s++ {
		integ.Step(m.Deriv, float64(s)*1e-3, st.X[:], 1e-3)
	}
	for i, v := range st.X {
		if math.IsNaN(v) || math.Abs(v) > 1e3 {
			t.Fatalf("state[%d] = %v after 5 s: Euler unstable at 1 ms", i, v)
		}
	}
}

func TestStateAccessorsRoundTrip(t *testing.T) {
	tr := kinematics.DefaultTransmission()
	jp := kinematics.JointPos{0.5, 0.9, 0.03}
	var st State
	st.SetJointPos(jp, tr)
	if got := st.JointPos(); got != jp {
		t.Fatalf("JointPos = %v, want %v", got, jp)
	}
	wantMP := tr.ToMotor(jp)
	if got := st.MotorPos(); got != wantMP {
		t.Fatalf("MotorPos = %v, want %v", got, wantMP)
	}
	if v := st.JointVel(); v != [kinematics.NumJoints]float64{} {
		t.Fatalf("JointVel = %v, want zeros", v)
	}
	if v := st.MotorVel(); v != [kinematics.NumJoints]float64{} {
		t.Fatalf("MotorVel = %v, want zeros", v)
	}
}

func TestSmoothSignProperties(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		s := smoothSign(v)
		if s < -1 || s > 1 {
			return false
		}
		return s*v >= 0 // same sign as argument
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if smoothSign(1) < 0.99 {
		t.Fatal("smoothSign saturates too slowly")
	}
}

func TestPassiveModelDissipatesEnergy(t *testing.T) {
	// Physics sanity: with zero input torque and gravity disabled, the
	// two-mass model is passive — its total mechanical energy (kinetic +
	// cable elastic) must decay monotonically (within integration noise).
	p := DefaultParams()
	for i := range p.Joints {
		p.Joints[i].GravConst = 0
		p.Joints[i].Coulomb = 0 // smooth friction only, keeps energy C1
	}
	m, err := NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	var st State
	st.SetJointPos(kinematics.JointPos{0.8, 1.0, 0.05}, kinematics.DefaultTransmission())
	st.X[idxMotorVel(0)] = 8
	st.X[idxLinkVel(1)] = 1.5
	st.X[idxMotorVel(2)] = 4

	energy := func() float64 {
		e := 0.0
		for i := 0; i < kinematics.NumJoints; i++ {
			jc := p.Joints[i]
			stretch := st.X[idxMotorPos(i)]/jc.Ratio - st.X[idxLinkPos(i)]
			e += 0.5*jc.MotorInertia*st.X[idxMotorVel(i)]*st.X[idxMotorVel(i)] +
				0.5*jc.LinkInertia*st.X[idxLinkVel(i)]*st.X[idxLinkVel(i)] +
				0.5*jc.CableStiffness*stretch*stretch
		}
		return e
	}

	integ := NewRK4(StateDim)
	m.SetTorque([kinematics.NumJoints]float64{})
	prev := energy()
	start := prev
	for s := 0; s < 20000; s++ {
		integ.Step(m.Deriv, float64(s)*5e-5, st.X[:], 5e-5)
		if s%200 == 0 {
			e := energy()
			if e > prev*1.0001 {
				t.Fatalf("energy grew at step %d: %v -> %v", s, prev, e)
			}
			prev = e
		}
	}
	if final := energy(); final > start*0.5 {
		t.Fatalf("energy barely decayed over 1 s: %v -> %v", start, final)
	}
}
