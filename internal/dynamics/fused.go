package dynamics

import (
	"fmt"
	"math"

	"ravenguard/internal/kinematics"
)

// This file is the hot-path kernel of the repository: the fused
// fixed-step integrators used by the plant's 50 us RK4 sub-step loop and
// by the guard's one-step-ahead prediction, both of which must fit far
// inside the 1 ms control period (Section V of the paper makes the
// Euler-vs-RK4 runtime a headline trade-off). The generic
// Integrator/Deriv path in integrator.go remains as the readable
// reference implementation — the equivalence tests in fused_test.go pin
// the two together — but it pays a method-value closure allocation and
// interface dispatch on every step. The Stepper instead:
//
//   - exploits that the two-mass model has no cross-joint coupling: each
//     joint's four states run their whole RK4 step in locals, never
//     touching memory between stages, and StepRK4 interleaves the three
//     joints' independent stage chains so the out-of-order core overlaps
//     them;
//   - keeps what scratch remains in fixed-size stack values (0 allocs/op);
//   - precomputes the reciprocals of the inertias and transmission
//     ratios so the derivative is division-free;
//   - replaces the tanh-smoothed Coulomb signum with a division-free
//     polynomial inside the smoothing band (8.2e-11 worst error), a
//     2^k·2^f exponential decomposition on the mid band (~3e-15, see
//     tanhMid) and the exact ±1 beyond saturation;
//   - evaluates the gravity sine/cosine only when the link has moved
//     more than anchorRad from the last evaluation, reconstructing
//     intermediate values from the anchor by a fifth-order expansion
//     (< 2e-13 error), with a range-reduced polynomial sincos (~5e-14)
//     when it does re-anchor.
//
// The fused and reference paths therefore agree to float tolerance, not
// bit-for-bit; fused_test.go bounds the divergence at ~5e-11 over a 10 s
// 1 kHz teleop trace — noise relative to the pipeline's ~1e-3 detection
// thresholds. Every approximation boundary degrades gracefully: NaN
// states propagate and cannot poison the anchor, and arguments outside a
// polynomial's domain fall back to math.Tanh/math.Sincos.

// fusedJoint is one joint's constants, reshaped for the derivative's
// inner loop: reciprocals instead of divisors, flat fields instead of the
// documented JointParams layout.
type fusedJoint struct {
	invRatio  float64 // 1/N
	k         float64 // cable stiffness
	b         float64 // cable damping
	bm        float64 // motor damping
	invJm     float64 // 1/Jm
	bl        float64 // link damping
	coulomb   float64
	invJl     float64 // 1/Jl
	gravConst float64
	gravPhase float64
	gravSin   bool

	// Gravity anchor: the amplitude-scaled sine/cosine of the gravity
	// angle, evaluated at link position aLp. While the link stays within
	// anchorRad of aLp — hundreds of consecutive steps at realistic
	// joint speeds — gravAt reconstructs the gravity torque from the
	// anchor by a fifth-order expansion instead of calling fastSinCos.
	// aLp starts (and, after a NaN state, becomes) NaN, which fails the
	// freshness check and forces a re-anchor. Mutated by Step*; part of
	// why a Stepper is not safe for concurrent use.
	aLp  float64
	aSin float64 // gravConst * sin(aLp + gravPhase)
	aCos float64 // gravConst * cos(aLp + gravPhase)
}

// accelG evaluates one joint's accelerations (motor, link) given the
// held torque, the joint's four states and the precomputed link-side
// load (gravity plus Coulomb friction):
//
//	cable  = K*(mpos/N - lpos) + B*(mvel/N - lvel)
//	Jm a_m = tau - Bm*mvel - cable/N
//	Jl a_l = cable - Bl*lvel - load
//
// The load — the only transcendental part of the derivative — is hoisted
// to the caller so this body is pure arithmetic and small enough for the
// inliner: the RK4 stage loop calls it 12 times per step.
//
//ravenlint:noalloc
func (j *fusedJoint) accelG(tau, mpos, mvel, lpos, lvel, load float64) (am, al float64) {
	stretch := mpos*j.invRatio - lpos
	stretchVel := mvel*j.invRatio - lvel
	cable := j.k*stretch + j.b*stretchVel
	am = (tau - j.bm*mvel - cable*j.invRatio) * j.invJm
	al = (cable - j.bl*lvel - load) * j.invJl
	return am, al
}

// friction is the joint's tanh-smoothed Coulomb term at link velocity
// lvel (see model.go's smoothSign). The step loops spell the same
// computation out by hand — tanhBand2 branch between tanhPoly and
// tanhTail — because a single function holding both the polynomial and
// the fallback call exceeds the inline budget; this method is the
// readable form, used where a few nanoseconds don't matter.
//
//ravenlint:noalloc
func (j *fusedJoint) friction(lvel float64) float64 {
	return j.coulomb * fastTanh(lvel*invSmooth)
}

// anchorRad2 is the square of the anchor freshness radius (0.01 rad).
// Within that radius gravAt's fifth-order expansion is exact to
// ~d^6/720 < 2e-13 even with a stage offset on top, so the anchor only
// needs refreshing after the link has actually travelled.
const anchorRad2 = 1e-4

// anchor returns the link's offset from the joint's gravity anchor,
// re-anchoring first if the link has moved more than anchorRad away —
// or if either the anchor or lpos is NaN, since a NaN offset fails the
// freshness comparison. Prismatic joints keep an anchor too, even
// though gravAt ignores their offset: walking the anchor along with the
// link costs a cheap reanchor call every ~anchorRad of travel and keeps
// this body small enough to inline.
//
//ravenlint:noalloc
func (j *fusedJoint) anchor(lpos float64) float64 {
	d := lpos - j.aLp
	if d*d < anchorRad2 {
		return d
	}
	j.reanchor(lpos)
	return 0
}

// reanchor moves the gravity anchor to link position lpos, re-evaluating
// the sine/cosine there for the sinusoidal joints. Kept out of line: it
// is the rare path of anchor, and letting its body inline into anchor
// would push anchor itself past the inline budget.
//
//go:noinline
//ravenlint:noalloc
func (j *fusedJoint) reanchor(lpos float64) {
	j.aLp = lpos
	if !j.gravSin {
		return
	}
	sn, cs := fastSinCos(lpos + j.gravPhase)
	j.aSin, j.aCos = j.gravConst*sn, j.gravConst*cs
}

// gravAt evaluates the gravity torque at angle offset d from the joint's
// anchor, using the fifth-order expansion
//
//	sin(a+d) = sin a (1 - d²/2 + d⁴/24) + cos a (d - d³/6 + d⁵/120)
//
// whose truncation error d^6/720 is < 2e-13 within the anchor radius.
//
//ravenlint:noalloc
func (j *fusedJoint) gravAt(d float64) float64 {
	if !j.gravSin {
		return j.gravConst
	}
	z := d * d
	return j.aSin*(1-z*(0.5-z*(1.0/24))) + j.aCos*d*(1-z*((1.0/6)-z*(1.0/120)))
}

// Stepper is the fused dynamics kernel: the two-mass model and both
// fixed-step integration schemes in one object. Not safe for concurrent
// use; each simulation loop owns its own.
type Stepper struct {
	joints [kinematics.NumJoints]fusedJoint
	tau    [kinematics.NumJoints]float64
	params Params //ravenlint:snapshot-ignore construction constants, never mutated
}

// NewStepper builds the kernel, validating the parameters.
func NewStepper(p Params) (*Stepper, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}
	s := &Stepper{params: p}
	for i := range p.Joints {
		jp := &p.Joints[i]
		s.joints[i] = fusedJoint{
			invRatio:  1 / jp.Ratio,
			k:         jp.CableStiffness,
			b:         jp.CableDamping,
			bm:        jp.MotorDamping,
			invJm:     1 / jp.MotorInertia,
			bl:        jp.LinkDamping,
			coulomb:   jp.Coulomb,
			invJl:     1 / jp.LinkInertia,
			gravConst: jp.GravConst,
			gravPhase: jp.GravPhase,
			gravSin:   jp.GravSin,
			aLp:       math.NaN(), // no anchor until the first step
		}
	}
	return s, nil
}

// Params returns the constants the kernel was built from.
func (s *Stepper) Params() Params { return s.params }

// SetTorque fixes the motor torque input (zero-order hold) for subsequent
// steps.
//
//ravenlint:noalloc
func (s *Stepper) SetTorque(tau [kinematics.NumJoints]float64) { s.tau = tau }

// Torque returns the currently applied motor torques.
func (s *Stepper) Torque() [kinematics.NumJoints]float64 { return s.tau }

// StepEuler advances x in place by one explicit Euler step.
//
//ravenlint:noalloc
func (s *Stepper) StepEuler(x *[StateDim]float64, dt float64) {
	for i := 0; i < kinematics.NumJoints; i++ {
		j := &s.joints[i]
		base := 4 * i
		mp, mv := x[base], x[base+1]
		lp, lv := x[base+2], x[base+3]
		d0 := j.anchor(lp)
		u := lv * lv
		var fr float64
		if u < tanhBandV2 {
			fr = tanhPolyVel(lv, u)
		} else {
			fr = tanhTail(lv * invSmooth)
		}
		am, al := j.accelG(s.tau[i], mp, mv, lp, lv, j.gravAt(d0)+j.coulomb*fr)
		x[base] = mp + dt*mv
		x[base+1] = mv + dt*am
		x[base+2] = lp + dt*lv
		x[base+3] = lv + dt*al
	}
}

// StepRK4 advances x in place by one classical 4th-order Runge-Kutta
// step. The body is written stage-major with the three joints spelled
// out (suffixes a, b, c) rather than joint-major in a loop: each stage's
// link acceleration depends on the previous stage's through a ~50-cycle
// chain (friction polynomial included), and interleaving the three
// independent joints' chains in program order lets the out-of-order core
// overlap them, where the joint-at-a-time form left it idling down one
// serial chain at a time — measured ~2x on BenchmarkFusedStepRK4. The
// friction band branch is spelled out per joint per stage because a
// helper holding both the polynomial and the tanhTail fallback call
// would exceed the inline budget (see tanhPolyVel). Gravity comes from
// each joint's anchor via gravAt, with the stage position offsets added
// onto the anchor offset d0.
//
//ravenlint:noalloc
func (s *Stepper) StepRK4(x *[StateDim]float64, dt float64) {
	h2, h6 := dt/2, dt/6
	ja, jb, jc := &s.joints[0], &s.joints[1], &s.joints[2]
	taua, taub, tauc := s.tau[0], s.tau[1], s.tau[2]
	mpa, mva, lpa, lva := x[0], x[1], x[2], x[3]
	mpb, mvb, lpb, lvb := x[4], x[5], x[6], x[7]
	mpc, mvc, lpc, lvc := x[8], x[9], x[10], x[11]
	d0a, d0b, d0c := ja.anchor(lpa), jb.anchor(lpb), jc.anchor(lpc)

	ua, ub, uc := lva*lva, lvb*lvb, lvc*lvc
	var fra, frb, frc float64
	if ua < tanhBandV2 {
		fra = tanhPolyVel(lva, ua)
	} else {
		fra = tanhTail(lva * invSmooth)
	}
	if ub < tanhBandV2 {
		frb = tanhPolyVel(lvb, ub)
	} else {
		frb = tanhTail(lvb * invSmooth)
	}
	if uc < tanhBandV2 {
		frc = tanhPolyVel(lvc, uc)
	} else {
		frc = tanhTail(lvc * invSmooth)
	}
	am1a, al1a := ja.accelG(taua, mpa, mva, lpa, lva, ja.gravAt(d0a)+ja.coulomb*fra)
	am1b, al1b := jb.accelG(taub, mpb, mvb, lpb, lvb, jb.gravAt(d0b)+jb.coulomb*frb)
	am1c, al1c := jc.accelG(tauc, mpc, mvc, lpc, lvc, jc.gravAt(d0c)+jc.coulomb*frc)

	mv2a, lv2a := mva+h2*am1a, lva+h2*al1a
	mv2b, lv2b := mvb+h2*am1b, lvb+h2*al1b
	mv2c, lv2c := mvc+h2*am1c, lvc+h2*al1c
	ua, ub, uc = lv2a*lv2a, lv2b*lv2b, lv2c*lv2c
	if ua < tanhBandV2 {
		fra = tanhPolyVel(lv2a, ua)
	} else {
		fra = tanhTail(lv2a * invSmooth)
	}
	if ub < tanhBandV2 {
		frb = tanhPolyVel(lv2b, ub)
	} else {
		frb = tanhTail(lv2b * invSmooth)
	}
	if uc < tanhBandV2 {
		frc = tanhPolyVel(lv2c, uc)
	} else {
		frc = tanhTail(lv2c * invSmooth)
	}
	am2a, al2a := ja.accelG(taua, mpa+h2*mva, mv2a, lpa+h2*lva, lv2a, ja.gravAt(d0a+h2*lva)+ja.coulomb*fra)
	am2b, al2b := jb.accelG(taub, mpb+h2*mvb, mv2b, lpb+h2*lvb, lv2b, jb.gravAt(d0b+h2*lvb)+jb.coulomb*frb)
	am2c, al2c := jc.accelG(tauc, mpc+h2*mvc, mv2c, lpc+h2*lvc, lv2c, jc.gravAt(d0c+h2*lvc)+jc.coulomb*frc)

	mv3a, lv3a := mva+h2*am2a, lva+h2*al2a
	mv3b, lv3b := mvb+h2*am2b, lvb+h2*al2b
	mv3c, lv3c := mvc+h2*am2c, lvc+h2*al2c
	ua, ub, uc = lv3a*lv3a, lv3b*lv3b, lv3c*lv3c
	if ua < tanhBandV2 {
		fra = tanhPolyVel(lv3a, ua)
	} else {
		fra = tanhTail(lv3a * invSmooth)
	}
	if ub < tanhBandV2 {
		frb = tanhPolyVel(lv3b, ub)
	} else {
		frb = tanhTail(lv3b * invSmooth)
	}
	if uc < tanhBandV2 {
		frc = tanhPolyVel(lv3c, uc)
	} else {
		frc = tanhTail(lv3c * invSmooth)
	}
	am3a, al3a := ja.accelG(taua, mpa+h2*mv2a, mv3a, lpa+h2*lv2a, lv3a, ja.gravAt(d0a+h2*lv2a)+ja.coulomb*fra)
	am3b, al3b := jb.accelG(taub, mpb+h2*mv2b, mv3b, lpb+h2*lv2b, lv3b, jb.gravAt(d0b+h2*lv2b)+jb.coulomb*frb)
	am3c, al3c := jc.accelG(tauc, mpc+h2*mv2c, mv3c, lpc+h2*lv2c, lv3c, jc.gravAt(d0c+h2*lv2c)+jc.coulomb*frc)

	mv4a, lv4a := mva+dt*am3a, lva+dt*al3a
	mv4b, lv4b := mvb+dt*am3b, lvb+dt*al3b
	mv4c, lv4c := mvc+dt*am3c, lvc+dt*al3c
	ua, ub, uc = lv4a*lv4a, lv4b*lv4b, lv4c*lv4c
	if ua < tanhBandV2 {
		fra = tanhPolyVel(lv4a, ua)
	} else {
		fra = tanhTail(lv4a * invSmooth)
	}
	if ub < tanhBandV2 {
		frb = tanhPolyVel(lv4b, ub)
	} else {
		frb = tanhTail(lv4b * invSmooth)
	}
	if uc < tanhBandV2 {
		frc = tanhPolyVel(lv4c, uc)
	} else {
		frc = tanhTail(lv4c * invSmooth)
	}
	am4a, al4a := ja.accelG(taua, mpa+dt*mv3a, mv4a, lpa+dt*lv3a, lv4a, ja.gravAt(d0a+dt*lv3a)+ja.coulomb*fra)
	am4b, al4b := jb.accelG(taub, mpb+dt*mv3b, mv4b, lpb+dt*lv3b, lv4b, jb.gravAt(d0b+dt*lv3b)+jb.coulomb*frb)
	am4c, al4c := jc.accelG(tauc, mpc+dt*mv3c, mv4c, lpc+dt*lv3c, lv4c, jc.gravAt(d0c+dt*lv3c)+jc.coulomb*frc)

	x[0] = mpa + h6*(mva+2*mv2a+2*mv3a+mv4a)
	x[1] = mva + h6*(am1a+2*am2a+2*am3a+am4a)
	x[2] = lpa + h6*(lva+2*lv2a+2*lv3a+lv4a)
	x[3] = lva + h6*(al1a+2*al2a+2*al3a+al4a)
	x[4] = mpb + h6*(mvb+2*mv2b+2*mv3b+mv4b)
	x[5] = mvb + h6*(am1b+2*am2b+2*am3b+am4b)
	x[6] = lpb + h6*(lvb+2*lv2b+2*lv3b+lv4b)
	x[7] = lvb + h6*(al1b+2*al2b+2*al3b+al4b)
	x[8] = mpc + h6*(mvc+2*mv2c+2*mv3c+mv4c)
	x[9] = mvc + h6*(am1c+2*am2c+2*am3c+am4c)
	x[10] = lpc + h6*(lvc+2*lv2c+2*lv3c+lv4c)
	x[11] = lvc + h6*(al1c+2*al2c+2*al3c+al4c)
}

// StepperState is the mutable part of a Stepper: the held torque and the
// per-joint gravity anchors. Capturing it alongside the state vector makes a
// checkpointed run bit-identical on resume — a restored kernel that merely
// re-anchored at the current link position would evaluate gravity from a
// different expansion point than the straight run (~2e-13 divergence, enough
// to break bit-for-bit fork equivalence).
type StepperState struct {
	Tau  [kinematics.NumJoints]float64
	ALp  [kinematics.NumJoints]float64
	ASin [kinematics.NumJoints]float64
	ACos [kinematics.NumJoints]float64
}

// Checkpoint captures the kernel's mutable state.
func (s *Stepper) Checkpoint() StepperState {
	var st StepperState
	st.Tau = s.tau
	for i := range s.joints {
		st.ALp[i] = s.joints[i].aLp
		st.ASin[i] = s.joints[i].aSin
		st.ACos[i] = s.joints[i].aCos
	}
	return st
}

// RestoreCheckpoint restores state captured by Checkpoint.
func (s *Stepper) RestoreCheckpoint(st StepperState) {
	s.tau = st.Tau
	for i := range s.joints {
		s.joints[i].aLp = st.ALp[i]
		s.joints[i].aSin = st.ASin[i]
		s.joints[i].aCos = st.ACos[i]
	}
}

// Step advances x by one step of the named scheme: rk4 selects StepRK4,
// otherwise StepEuler. It lets callers hold one branch flag instead of an
// interface value.
//
//ravenlint:noalloc
func (s *Stepper) Step(rk4 bool, x *[StateDim]float64, dt float64) {
	if rk4 {
		s.StepRK4(x, dt)
	} else {
		s.StepEuler(x, dt)
	}
}

// invSmooth is the reciprocal of the smoothSign tanh band (see model.go);
// constant arithmetic keeps it exact.
const invSmooth = 1 / 0.02

// tanhBand2 is the square of the half-width of fastTanh's polynomial
// band: tanhPoly is valid for x² < tanhBand2, i.e. |x| < 5/8.
const tanhBand2 = 0.390625

// tanhBandV2 is the same band expressed on link velocity: tanhPolyVel is
// valid for v² < tanhBandV2, i.e. |v| < 5/8 · 0.02.
const tanhBandV2 = tanhBand2 / (invSmooth * invSmooth)

// tanhPolyVel evaluates smoothSign(v) = tanh(v/0.02) directly from the
// link velocity: it is tanhPoly with the 1/0.02 argument scaling folded
// into the coefficients (ck · 50·2500^k), so the step loops go from v to
// friction without first materializing v/0.02. Callers pass u = v² and
// must have checked u < tanhBandV2. Same 8.2e-11 worst error as
// tanhPoly; the two differ only in rounding, at ~1 ulp.
//
//ravenlint:noalloc
func tanhPolyVel(v, u float64) float64 {
	p := 2.600474304296876e+19
	p = p*u - 3.984975920707703e+16
	p = p*u + 42368662216806.414
	p = p*u - 42144443625.64386
	p = p*u + 41666201.69052964
	p = p*u - 41666.66219649304
	p = p*u + 49.999999992955466
	return v * p
}

// tanhPoly evaluates tanh on |x| < 5/8 — the band the stage loop
// actually sits in whenever a link moves slower than the smoothing
// velocity — as a degree-13 odd polynomial, the Chebyshev fit of
// tanh(x)/x in t = x² on the band, with worst error 8.2e-11 absolute:
// friction-torque noise of coulomb·8e-11 N·m, far below the model's
// parameter tolerances. A division-based Padé approximant would be one
// ulp accurate, but twelve of these run per RK4 step and the divider is
// the one unit the stage loop would serialize on; the polynomial is
// pure fused-multiply-add material. Callers pass t so the banding
// branch and this body stay separately inlinable: one function holding
// the polynomial, the branch, and the tanhTail fallback call would
// exceed the inline budget.
//
//ravenlint:noalloc
func tanhPoly(x, t float64) float64 {
	p := 0.0021303085500800007
	p = p*t - 0.008161230685609377
	p = p*t + 0.021692755055004884
	p = p*t - 0.053944887840824136
	p = p*t + 0.13333184540969484
	p = p*t - 0.3333332975719443
	p = p*t + 0.9999999998591094
	return x * p
}

// fastTanh composes tanhPoly and tanhTail into a drop-in tanh for the
// Coulomb smoothing term. NaN propagates through both paths. The step
// loops inline the same banding branch by hand instead of calling this
// (see friction).
//
//ravenlint:noalloc
func fastTanh(x float64) float64 {
	t := x * x
	if t < tanhBand2 {
		return tanhPoly(x, t)
	}
	return tanhTail(x)
}

// tanhTail handles |x| >= 5/8 for fastTanh. For |x| >= 20, tanh(x)
// differs from ±1 by < 1e-17, far below half an ulp of 1.0, so returning
// ±1 is value-identical to math.Tanh while skipping its exp evaluation —
// and saturation is the common case once a joint moves faster than the
// Coulomb smoothing band. The remaining mid band goes to tanhMid.
//
//ravenlint:noalloc
func tanhTail(x float64) float64 {
	if x >= 20 {
		return 1
	}
	if x <= -20 {
		return -1
	}
	return tanhMid(x)
}

// Constants for tanhMid's 2^t decomposition: log2(e) to convert the
// exponent to base 2, and ln 2 to map the fractional part back to exp's
// Taylor domain.
const (
	tanhLog2E = 1.4426950408889634
	tanhLn2   = 0.6931471805599453
)

// tanhMid evaluates tanh on the mid band 5/8 <= |x| < 20 — homing sweeps
// and attack transients park link velocities here for thousands of
// consecutive substeps, and the fleet profile showed the math.Tanh call
// it replaces dominating the whole worker tick. It uses the identity
//
//	tanh(x) = sgn(x) · (1 - 2s/(1+s)),  s = e^(-2|x|)
//
// and computes s as 2^t, t = -2|x|·log2(e) ∈ (-57.8, -1.8]: split
// t = k + f with k = RoundToEven(t) and f ∈ [-1/2, 1/2], evaluate
// 2^f = e^(f·ln2) by a degree-12 Taylor polynomial (truncation < 2e-16
// relative), and apply 2^k by adding k to the exponent bits — exact, and
// s ≥ e^(-40) keeps the result far from the subnormal range. The
// argument-conversion rounding bounds the overall error at ~3e-15
// absolute, within the kernel's documented float-tolerance contract
// (fastSin and the friction polynomial sit at 5e-14 and 8e-11). One
// division remains, but only one evaluation runs per joint per stage
// against the twelve polynomial evaluations, so it does not serialize
// the stage chains the way a Padé friction would. Arguments outside the
// band — including NaN, which fails the range check — fall back to
// math.Tanh.
//
//ravenlint:noalloc
func tanhMid(x float64) float64 {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	if !(ax < 20) {
		return math.Tanh(x) // out-of-contract caller; also catches NaN
	}
	t := -2 * ax * tanhLog2E
	k := math.RoundToEven(t)
	w := (t - k) * tanhLn2
	p := 2.08767569878681e-09 // 1/12!
	p = p*w + 2.505210838544172e-08
	p = p*w + 2.7557319223985888e-07
	p = p*w + 2.755731922398589e-06
	p = p*w + 2.48015873015873e-05
	p = p*w + 1.984126984126984e-04
	p = p*w + 1.3888888888888889e-03
	p = p*w + 8.333333333333333e-03
	p = p*w + 4.1666666666666664e-02
	p = p*w + 1.6666666666666666e-01
	p = p*w + 0.5
	p = p*w + 1
	p = p*w + 1
	s := math.Float64frombits(math.Float64bits(p) + uint64(int64(k))<<52)
	r := 1 - 2*s/(1+s)
	if x < 0 {
		return -r
	}
	return r
}

// Cody-Waite two-part representation of 2π for the fastSin argument
// reduction: twoPiHi is 2π rounded to float64, twoPiLo the remainder.
const (
	twoPiHi   = 6.283185307179586
	twoPiLo   = 2.4492935982947064e-16
	invTwoPi  = 1 / (2 * math.Pi)
	halfPi    = math.Pi / 2
	onePi     = math.Pi
	sinMaxArg = 1 << 40 // beyond this the two-part reduction loses the angle
)

// fastSin is a range-reduced odd-polynomial sine: reduce to [-π, π] by
// subtracting the nearest multiple of 2π (in two parts, so the reduction
// stays exact for the workspace-scale angles the model sees), fold into
// [-π/2, π/2], then evaluate the Taylor series through x^17 (truncation
// error ≈ 4e-14 at π/2). Arguments too large for the two-part reduction
// fall back to math.Sin.
//
//ravenlint:noalloc
func fastSin(x float64) float64 {
	if x > sinMaxArg || x < -sinMaxArg {
		return math.Sin(x) // also catches NaN/Inf
	}
	q := math.RoundToEven(x * invTwoPi)
	r := x - q*twoPiHi
	r -= q * twoPiLo
	if r > halfPi {
		r = onePi - r
	} else if r < -halfPi {
		r = -onePi - r
	}
	z := r * r
	p := 2.8114572543455206e-15 // 1/17!
	p = p*z - 7.647163731819816e-13
	p = p*z + 1.6059043836821613e-10
	p = p*z - 2.505210838544172e-08
	p = p*z + 2.7557319223985893e-06
	p = p*z - 1.984126984126984e-04
	p = p*z + 8.333333333333333e-03
	p = p*z - 1.6666666666666666e-01
	return r + r*(z*p)
}

// fastSinCos returns sin(x) and cos(x) with the same reduction as
// fastSin: fold into [-π/2, π/2] (the fold keeps the sine and negates the
// cosine), then Taylor polynomials through x^17 / x^16.
//
//ravenlint:noalloc
func fastSinCos(x float64) (sin, cos float64) {
	if x > sinMaxArg || x < -sinMaxArg {
		return math.Sincos(x) // also catches NaN/Inf
	}
	q := math.RoundToEven(x * invTwoPi)
	r := x - q*twoPiHi
	r -= q * twoPiLo
	negCos := false
	if r > halfPi {
		r = onePi - r
		negCos = true
	} else if r < -halfPi {
		r = -onePi - r
		negCos = true
	}
	z := r * r
	p := 2.8114572543455206e-15 // 1/17!
	p = p*z - 7.647163731819816e-13
	p = p*z + 1.6059043836821613e-10
	p = p*z - 2.505210838544172e-08
	p = p*z + 2.7557319223985893e-06
	p = p*z - 1.984126984126984e-04
	p = p*z + 8.333333333333333e-03
	p = p*z - 1.6666666666666666e-01
	sin = r + r*(z*p)

	c := 4.779477332387385e-14 // 1/16!
	c = c*z - 1.1470745597729725e-11
	c = c*z + 2.08767569878681e-09
	c = c*z - 2.755731922398589e-07
	c = c*z + 2.48015873015873e-05
	c = c*z - 1.3888888888888889e-03
	c = c*z + 4.1666666666666664e-02 // 1/4!
	cos = 1 - 0.5*z + z*z*c
	if negCos {
		cos = -cos
	}
	return sin, cos
}
