package dynamics

import (
	"fmt"
	"math"

	"ravenguard/internal/kinematics"
)

// StateDim is the dimension of the full manipulator state vector: for each
// of the three positioning joints, (motor angle, motor velocity, link
// position, link velocity).
const StateDim = 4 * kinematics.NumJoints

// State vector layout helpers. Index i is a joint index in
// [0, kinematics.NumJoints).
func idxMotorPos(i int) int { return 4 * i }
func idxMotorVel(i int) int { return 4*i + 1 }
func idxLinkPos(i int) int  { return 4*i + 2 }
func idxLinkVel(i int) int  { return 4*i + 3 }

// State is a convenience view over the flat ODE state vector.
type State struct {
	X [StateDim]float64
}

// MotorPos returns the motor shaft angles (radians).
func (s *State) MotorPos() kinematics.MotorPos {
	var mp kinematics.MotorPos
	for i := 0; i < kinematics.NumJoints; i++ {
		mp[i] = s.X[idxMotorPos(i)]
	}
	return mp
}

// MotorVel returns the motor shaft velocities (rad/s).
func (s *State) MotorVel() [kinematics.NumJoints]float64 {
	var v [kinematics.NumJoints]float64
	for i := 0; i < kinematics.NumJoints; i++ {
		v[i] = s.X[idxMotorVel(i)]
	}
	return v
}

// JointPos returns the link-side joint positions (rad, rad, m).
func (s *State) JointPos() kinematics.JointPos {
	var jp kinematics.JointPos
	for i := 0; i < kinematics.NumJoints; i++ {
		jp[i] = s.X[idxLinkPos(i)]
	}
	return jp
}

// JointVel returns the link-side joint velocities (rad/s, rad/s, m/s).
func (s *State) JointVel() [kinematics.NumJoints]float64 {
	var v [kinematics.NumJoints]float64
	for i := 0; i < kinematics.NumJoints; i++ {
		v[i] = s.X[idxLinkVel(i)]
	}
	return v
}

// SetJointPos sets link positions and the corresponding motor positions
// assuming a relaxed cable (motor consistent with link through the
// transmission), zero velocities. Used to initialise both plant and model at
// a known pose.
func (s *State) SetJointPos(jp kinematics.JointPos, tr kinematics.Transmission) {
	mp := tr.ToMotor(jp)
	for i := 0; i < kinematics.NumJoints; i++ {
		s.X[idxMotorPos(i)] = mp[i]
		s.X[idxMotorVel(i)] = 0
		s.X[idxLinkPos(i)] = jp[i]
		s.X[idxLinkVel(i)] = 0
	}
}

// JointParams are the physical constants of one joint's two-mass model.
// The motor rotor (inertia Jm) drives the link (inertia Jl, reflected
// through transmission ratio N) through an elastic cable of stiffness K and
// damping B. Gravity acts on the link side.
type JointParams struct {
	// Motor side.
	MotorInertia float64 // Jm, kg m^2 (rotor + capstan)
	MotorDamping float64 // Bm, N m s/rad viscous

	// Transmission.
	Ratio          float64 // N, motor units per joint unit
	CableStiffness float64 // K, N m/rad (revolute) or N/m (prismatic), link side
	CableDamping   float64 // B, same unit family as K but per velocity

	// Link side.
	LinkInertia float64 // Jl, kg m^2 (revolute) or kg (prismatic)
	LinkDamping float64 // Bl, viscous
	Coulomb     float64 // link-side Coulomb friction magnitude

	// Gravity model: torque = GravConst * sin(pos + GravPhase) for revolute
	// joints; constant force GravConst for the prismatic joint (GravSin
	// false).
	GravConst float64
	GravPhase float64
	GravSin   bool
}

// Params bundles the three joints' constants.
type Params struct {
	Joints [kinematics.NumJoints]JointParams
}

// Validate returns an error when any constant is non-physical (zero or
// negative inertia/stiffness, negative damping).
func (p Params) Validate() error {
	for i, j := range p.Joints {
		switch {
		case j.MotorInertia <= 0:
			return fmt.Errorf("dynamics: joint %d motor inertia %v must be > 0", i, j.MotorInertia)
		case j.LinkInertia <= 0:
			return fmt.Errorf("dynamics: joint %d link inertia %v must be > 0", i, j.LinkInertia)
		case j.CableStiffness <= 0:
			return fmt.Errorf("dynamics: joint %d cable stiffness %v must be > 0", i, j.CableStiffness)
		case j.Ratio == 0:
			return fmt.Errorf("dynamics: joint %d transmission ratio must be nonzero", i)
		case j.MotorDamping < 0 || j.LinkDamping < 0 || j.CableDamping < 0 || j.Coulomb < 0:
			return fmt.Errorf("dynamics: joint %d damping/friction must be >= 0", i)
		}
	}
	return nil
}

// DefaultParams returns the nominal RAVEN II constants used by the
// detector's model: MAXON RE40 motors on the two rotational axes, RE30 on
// the insertion axis, link properties from the CAD-derived values the paper
// describes, coefficients tuned (per the paper, following Haghighipanah et
// al.) so the model tracks the plant.
func DefaultParams() Params {
	tr := kinematics.DefaultTransmission()
	return Params{Joints: [kinematics.NumJoints]JointParams{
		kinematics.Shoulder: {
			MotorInertia:   142e-7, // RE40 rotor, kg m^2
			MotorDamping:   2e-5,
			Ratio:          tr.Ratio[kinematics.Shoulder],
			CableStiffness: 900, // N m/rad, link side
			CableDamping:   3.0,
			LinkInertia:    0.045, // kg m^2 about the shoulder axis
			LinkDamping:    0.4,
			Coulomb:        0.08,
			GravConst:      1.2, // m g r for the distal mass
			GravPhase:      0,
			GravSin:        true,
		},
		kinematics.Elbow: {
			MotorInertia:   142e-7,
			MotorDamping:   2e-5,
			Ratio:          tr.Ratio[kinematics.Elbow],
			CableStiffness: 650,
			CableDamping:   2.2,
			LinkInertia:    0.021,
			LinkDamping:    0.25,
			Coulomb:        0.05,
			GravConst:      0.8,
			GravPhase:      -0.4,
			GravSin:        true,
		},
		kinematics.Insert: {
			MotorInertia:   33.5e-7, // RE30 rotor
			MotorDamping:   1e-5,
			Ratio:          tr.Ratio[kinematics.Insert],
			CableStiffness: 14000, // N/m along the tool axis
			CableDamping:   45,
			LinkInertia:    0.18, // kg, instrument + carriage mass
			LinkDamping:    6.0,
			Coulomb:        0.7, // N sliding friction
			GravConst:      0.9, // N, component of weight along tool axis
			GravSin:        false,
		},
	}}
}

// Model evaluates the manipulator ODE for a given torque input. The torque
// input is held constant across a step (zero-order hold, matching the 1 kHz
// DAC update of the control loop).
type Model struct {
	params Params
	torque [kinematics.NumJoints]float64 // motor torques, N m, zero-order hold
}

// NewModel builds a Model, validating the parameters.
func NewModel(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{params: p}, nil
}

// Params returns the model constants.
func (m *Model) Params() Params { return m.params }

// SetTorque fixes the motor torque input (N m per motor) for subsequent
// derivative evaluations.
func (m *Model) SetTorque(tau [kinematics.NumJoints]float64) { m.torque = tau }

// Torque returns the currently applied motor torques.
func (m *Model) Torque() [kinematics.NumJoints]float64 { return m.torque }

// Deriv evaluates the two-mass dynamics:
//
//	cable  = K*(mpos/N - lpos) + B*(mvel/N - lvel)
//	Jm a_m = tau - Bm*mvel - cable/N
//	Jl a_l = cable - Bl*lvel - coulomb*sign(lvel) - grav(lpos)
func (m *Model) Deriv(_ float64, x, dx []float64) {
	for i := 0; i < kinematics.NumJoints; i++ {
		p := &m.params.Joints[i]
		mpos, mvel := x[idxMotorPos(i)], x[idxMotorVel(i)]
		lpos, lvel := x[idxLinkPos(i)], x[idxLinkVel(i)]

		stretch := mpos/p.Ratio - lpos
		stretchVel := mvel/p.Ratio - lvel
		cable := p.CableStiffness*stretch + p.CableDamping*stretchVel

		grav := p.GravConst
		if p.GravSin {
			grav = p.GravConst * math.Sin(lpos+p.GravPhase)
		}
		coulomb := p.Coulomb * smoothSign(lvel)

		dx[idxMotorPos(i)] = mvel
		dx[idxMotorVel(i)] = (m.torque[i] - p.MotorDamping*mvel - cable/p.Ratio) / p.MotorInertia
		dx[idxLinkPos(i)] = lvel
		dx[idxLinkVel(i)] = (cable - p.LinkDamping*lvel - coulomb - grav) / p.LinkInertia
	}
}

// smoothSign is a tanh-smoothed signum that keeps the ODE Lipschitz at zero
// velocity (a hard signum makes fixed-step integrators chatter).
func smoothSign(v float64) float64 { return math.Tanh(v / 0.02) }
