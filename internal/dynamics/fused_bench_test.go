package dynamics

import (
	"testing"

	"ravenguard/internal/kinematics"
)

func benchFused(b *testing.B, rk4 bool) {
	s, err := NewStepper(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	var st State
	st.SetJointPos(kinematics.DefaultLimits().Center(), kinematics.DefaultTransmission())
	s.SetTorque([3]float64{0.01, 0.01, 0.005})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(rk4, &st.X, 1e-3)
	}
}

func BenchmarkFusedStepEuler(b *testing.B) { benchFused(b, false) }
func BenchmarkFusedStepRK4(b *testing.B)   { benchFused(b, true) }
