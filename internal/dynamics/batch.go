package dynamics

import (
	"fmt"
	"sync"

	"ravenguard/internal/kinematics"
)

// defaultBatchBlock is the lane-block width new batch steppers start with
// (0 = unblocked full-width stages). Campaign entry points set it once from
// a flag before any stepping starts.
var defaultBatchBlock struct {
	mu sync.Mutex
	w  int
}

// SetBatchBlock sets the lane-block width batch steppers are constructed
// with: the stage-major step loops then process lanes in tiles of w, which
// bounds the stage working set to the cache instead of streaming every
// scratch array across the full lane count per stage. w <= 0 restores the
// unblocked default. Lanes are independent and each lane's operation order
// is unchanged by tiling, so results are bit-identical at every width.
func SetBatchBlock(w int) {
	if w < 0 {
		w = 0
	}
	defaultBatchBlock.mu.Lock()
	defaultBatchBlock.w = w
	defaultBatchBlock.mu.Unlock()
}

// BatchBlock returns the current default lane-block width (0 = unblocked).
func BatchBlock() int {
	defaultBatchBlock.mu.Lock()
	defer defaultBatchBlock.mu.Unlock()
	return defaultBatchBlock.w
}

// BatchStepper steps N homogeneous two-mass plants in lockstep through the
// fused RK4/Euler stages in structure-of-arrays layout: one slice per state
// component across all lanes, so each stage is a contiguous loop over lanes
// the out-of-order core can overlap. One lane's arithmetic is exactly the
// scalar Stepper's — same fusedJoint constants, same anchor/friction-band
// branches, same operation order — so a single lane's output is bit-identical
// to stepping the lane's Stepper directly (pinned by batch_test.go).
//
// The intended use is the campaign fan-out phase: all forks of one shared
// prefix are stepped together, one lane per fork. Lanes are repacked per
// control tick (forks brake, halt, or finish independently), so filling a
// lane copies the per-joint constants and gravity anchors from the lane's
// own Stepper and reading it back returns the mutated anchors; the copies
// are a few dozen floats per lane per tick, noise against the 20 RK4
// sub-steps between repacks.
//
// All scratch is preallocated at construction: steady-state stepping is
// 0 allocs/op (guarded by the allocation regression tests).
type BatchStepper struct {
	capacity int
	n        int
	block    int // lane-block width of the stage loops (0 = full width)
	joints   [kinematics.NumJoints][]fusedJoint // [joint][lane]
	tau      [kinematics.NumJoints][]float64    // [joint][lane]
	x        [StateDim][]float64                // [component][lane]

	// Per-stage scratch, reused joint by joint.
	d0, am1, al1, am2, al2, am3, al3, am4, al4 []float64
	mv2, lv2, mv3, lv3, mv4, lv4               []float64
}

// NewBatchStepper allocates a batch with room for capacity lanes.
func NewBatchStepper(capacity int) (*BatchStepper, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dynamics: batch capacity %d must be > 0", capacity)
	}
	b := &BatchStepper{capacity: capacity, block: BatchBlock()}
	for j := 0; j < kinematics.NumJoints; j++ {
		b.joints[j] = make([]fusedJoint, capacity)
		b.tau[j] = make([]float64, capacity)
	}
	for c := 0; c < StateDim; c++ {
		b.x[c] = make([]float64, capacity)
	}
	for _, p := range []*[]float64{
		&b.d0, &b.am1, &b.al1, &b.am2, &b.al2, &b.am3, &b.al3, &b.am4, &b.al4,
		&b.mv2, &b.lv2, &b.mv3, &b.lv3, &b.mv4, &b.lv4,
	} {
		*p = make([]float64, capacity)
	}
	return b, nil
}

// Capacity returns the lane capacity.
func (b *BatchStepper) Capacity() int { return b.capacity }

// Lanes returns the number of active lanes.
func (b *BatchStepper) Lanes() int { return b.n }

// SetLanes sets the number of active lanes for subsequent steps.
func (b *BatchStepper) SetLanes(n int) error {
	if n < 0 || n > b.capacity {
		return fmt.Errorf("dynamics: %d lanes exceed batch capacity %d", n, b.capacity)
	}
	b.n = n
	return nil
}

// SetBlock overrides this batch's lane-block width (0 = full width). Lanes
// are independent, so the width only moves work between cache levels —
// every width produces the same bits (pinned by batch_test.go).
func (b *BatchStepper) SetBlock(w int) {
	if w < 0 {
		w = 0
	}
	b.block = w
}

// Block returns this batch's lane-block width (0 = full width).
func (b *BatchStepper) Block() int { return b.block }

// FillLane loads lane of the batch from this kernel: per-joint constants,
// gravity anchors, and held torque. The lane then steps exactly as this
// Stepper would.
//
//ravenlint:noalloc
func (s *Stepper) FillLane(b *BatchStepper, lane int) {
	for j := 0; j < kinematics.NumJoints; j++ {
		b.joints[j][lane] = s.joints[j]
		b.tau[j][lane] = s.tau[j]
	}
}

// ReadLane writes the lane's mutated kernel state (gravity anchors, held
// torque) back into this Stepper, so scalar stepping can resume from where
// the batch left off.
//
//ravenlint:noalloc
func (s *Stepper) ReadLane(b *BatchStepper, lane int) {
	for j := 0; j < kinematics.NumJoints; j++ {
		jl := &b.joints[j][lane]
		s.joints[j].aLp, s.joints[j].aSin, s.joints[j].aCos = jl.aLp, jl.aSin, jl.aCos
		s.tau[j] = b.tau[j][lane]
	}
}

// SetLaneTau sets lane's held motor torques (zero-order hold).
func (b *BatchStepper) SetLaneTau(lane int, tau [kinematics.NumJoints]float64) {
	for j := 0; j < kinematics.NumJoints; j++ {
		b.tau[j][lane] = tau[j]
	}
}

// SetLaneX loads lane's state vector.
func (b *BatchStepper) SetLaneX(lane int, x *[StateDim]float64) {
	for c := 0; c < StateDim; c++ {
		b.x[c][lane] = x[c]
	}
}

// LaneX stores lane's state vector into x.
func (b *BatchStepper) LaneX(lane int, x *[StateDim]float64) {
	for c := 0; c < StateDim; c++ {
		x[c] = b.x[c][lane]
	}
}

// SwapLanes exchanges the complete per-lane data — joint constants and
// anchors, held torques, state vector — of lanes a and b. Lanes are
// independent, so a swap only relabels which index a plant occupies: every
// lane's subsequent arithmetic is unchanged. The fleet engine uses swaps to
// keep the active (unbraked) lanes a dense prefix window so the stage
// kernels never straddle parked lanes.
//
//ravenlint:noalloc
func (b *BatchStepper) SwapLanes(la, lb int) {
	if la == lb {
		return
	}
	for j := 0; j < kinematics.NumJoints; j++ {
		b.joints[j][la], b.joints[j][lb] = b.joints[j][lb], b.joints[j][la]
		b.tau[j][la], b.tau[j][lb] = b.tau[j][lb], b.tau[j][la]
	}
	for c := 0; c < StateDim; c++ {
		b.x[c][la], b.x[c][lb] = b.x[c][lb], b.x[c][la]
	}
}

// CopyLane overwrites lane dst's per-lane data with src's. The source lane
// is left intact; callers compacting a retired lane typically copy the last
// active lane down and then shrink the active count.
//
//ravenlint:noalloc
func (b *BatchStepper) CopyLane(dst, src int) {
	if dst == src {
		return
	}
	for j := 0; j < kinematics.NumJoints; j++ {
		b.joints[j][dst] = b.joints[j][src]
		b.tau[j][dst] = b.tau[j][src]
	}
	for c := 0; c < StateDim; c++ {
		b.x[c][dst] = b.x[c][src]
	}
}

// RemoveLane retires lane from the active set: the last active lane is
// copied into its slot and the active count shrinks by one. It returns the
// index of the lane that moved into the slot (the previous last lane), or
// -1 when the removed lane was itself the last — callers maintaining a
// lane→session mapping apply exactly that one move. Surviving lanes'
// trajectories are unaffected: each lane's arithmetic depends only on its
// own data (pinned by batch_compact_test.go).
//
//ravenlint:noalloc
func (b *BatchStepper) RemoveLane(lane int) int {
	last := b.n - 1
	if lane < 0 || lane > last {
		return -1
	}
	b.n = last
	if lane == last {
		return -1
	}
	b.CopyLane(lane, last)
	return last
}

// Component returns the shared slice of one state component across lanes
// (index by the flat state layout: 4*joint+{0:motor pos, 1:motor vel,
// 2:link pos, 3:link vel}). Callers may mutate entries in place — the
// plant's hard-stop and cable checks run between sub-steps this way
// without copying lanes out and back.
func (b *BatchStepper) Component(c int) []float64 { return b.x[c][:b.n] }

// StepEulerAll advances every active lane by one explicit Euler step,
// replicating Stepper.StepEuler's per-joint operation order per lane.
// Lanes run in tiles of the configured block width.
//
//ravenlint:noalloc
func (b *BatchStepper) StepEulerAll(dt float64) {
	w := b.block
	if w <= 0 || w > b.n {
		w = b.n
	}
	for lo := 0; lo < b.n; lo += w {
		hi := lo + w
		if hi > b.n {
			hi = b.n
		}
		b.stepEulerLanes(dt, lo, hi)
	}
}

// stepEulerLanes is the Euler kernel over the lane tile [lo, hi).
//
//ravenlint:noalloc
func (b *BatchStepper) stepEulerLanes(dt float64, lo, hi int) {
	for jIdx := 0; jIdx < kinematics.NumJoints; jIdx++ {
		js := b.joints[jIdx][:hi]
		tau := b.tau[jIdx][:hi]
		base := 4 * jIdx
		mp, mv := b.x[base][:hi], b.x[base+1][:hi]
		lp, lv := b.x[base+2][:hi], b.x[base+3][:hi]
		for l := lo; l < hi; l++ {
			j := &js[l]
			d0 := j.anchor(lp[l])
			u := lv[l] * lv[l]
			var fr float64
			if u < tanhBandV2 {
				fr = tanhPolyVel(lv[l], u)
			} else {
				fr = tanhTail(lv[l] * invSmooth)
			}
			am, al := j.accelG(tau[l], mp[l], mv[l], lp[l], lv[l], j.gravAt(d0)+j.coulomb*fr)
			mp[l] += dt * mv[l]
			lp[l] += dt * lv[l]
			mv[l] += dt * am
			lv[l] += dt * al
		}
	}
}

// StepRK4All advances every active lane by one classical RK4 step. The body
// is stage-major with a contiguous lane loop per stage: lanes are
// independent, so adjacent lanes' ~50-cycle stage chains overlap in the
// out-of-order core the same way StepRK4's hand-interleaved joints do —
// with the interleave width set by the batch size instead of fixed at
// three. Per lane the operation order matches Stepper.StepRK4 exactly
// (anchor, friction band branch, accelG, stage offsets through gravAt), so
// each lane's result is bit-identical to the scalar kernel's.
//
// Lanes run in tiles of the configured block width: at wide fan-outs the
// five stage sweeps otherwise stream ~20 scratch/state arrays across the
// full lane count per joint, evicting each stage's inputs before the next
// stage reads them.
//
//ravenlint:noalloc
func (b *BatchStepper) StepRK4All(dt float64) {
	w := b.block
	if w <= 0 || w > b.n {
		w = b.n
	}
	for lo := 0; lo < b.n; lo += w {
		hi := lo + w
		if hi > b.n {
			hi = b.n
		}
		b.stepRK4Lanes(dt, lo, hi)
	}
}

// stepRK4Lanes is the RK4 kernel over the lane tile [lo, hi).
//
//ravenlint:noalloc
func (b *BatchStepper) stepRK4Lanes(dt float64, lo, hi int) {
	h2, h6 := dt/2, dt/6
	for jIdx := 0; jIdx < kinematics.NumJoints; jIdx++ {
		js := b.joints[jIdx][:hi]
		tau := b.tau[jIdx][:hi]
		base := 4 * jIdx
		mp, mv := b.x[base][:hi], b.x[base+1][:hi]
		lp, lv := b.x[base+2][:hi], b.x[base+3][:hi]
		d0 := b.d0[:hi]
		am1, al1 := b.am1[:hi], b.al1[:hi]
		am2, al2 := b.am2[:hi], b.al2[:hi]
		am3, al3 := b.am3[:hi], b.al3[:hi]
		am4, al4 := b.am4[:hi], b.al4[:hi]
		mv2, lv2 := b.mv2[:hi], b.lv2[:hi]
		mv3, lv3 := b.mv3[:hi], b.lv3[:hi]
		mv4, lv4 := b.mv4[:hi], b.lv4[:hi]

		for l := lo; l < hi; l++ {
			j := &js[l]
			d0[l] = j.anchor(lp[l])
			u := lv[l] * lv[l]
			var fr float64
			if u < tanhBandV2 {
				fr = tanhPolyVel(lv[l], u)
			} else {
				fr = tanhTail(lv[l] * invSmooth)
			}
			am1[l], al1[l] = j.accelG(tau[l], mp[l], mv[l], lp[l], lv[l], j.gravAt(d0[l])+j.coulomb*fr)
		}

		for l := lo; l < hi; l++ {
			j := &js[l]
			mv2[l], lv2[l] = mv[l]+h2*am1[l], lv[l]+h2*al1[l]
			u := lv2[l] * lv2[l]
			var fr float64
			if u < tanhBandV2 {
				fr = tanhPolyVel(lv2[l], u)
			} else {
				fr = tanhTail(lv2[l] * invSmooth)
			}
			am2[l], al2[l] = j.accelG(tau[l], mp[l]+h2*mv[l], mv2[l], lp[l]+h2*lv[l], lv2[l], j.gravAt(d0[l]+h2*lv[l])+j.coulomb*fr)
		}

		for l := lo; l < hi; l++ {
			j := &js[l]
			mv3[l], lv3[l] = mv[l]+h2*am2[l], lv[l]+h2*al2[l]
			u := lv3[l] * lv3[l]
			var fr float64
			if u < tanhBandV2 {
				fr = tanhPolyVel(lv3[l], u)
			} else {
				fr = tanhTail(lv3[l] * invSmooth)
			}
			am3[l], al3[l] = j.accelG(tau[l], mp[l]+h2*mv2[l], mv3[l], lp[l]+h2*lv2[l], lv3[l], j.gravAt(d0[l]+h2*lv2[l])+j.coulomb*fr)
		}

		for l := lo; l < hi; l++ {
			j := &js[l]
			mv4[l], lv4[l] = mv[l]+dt*am3[l], lv[l]+dt*al3[l]
			u := lv4[l] * lv4[l]
			var fr float64
			if u < tanhBandV2 {
				fr = tanhPolyVel(lv4[l], u)
			} else {
				fr = tanhTail(lv4[l] * invSmooth)
			}
			am4[l], al4[l] = j.accelG(tau[l], mp[l]+dt*mv3[l], mv4[l], lp[l]+dt*lv3[l], lv4[l], j.gravAt(d0[l]+dt*lv3[l])+j.coulomb*fr)
		}

		for l := lo; l < hi; l++ {
			mp[l] += h6 * (mv[l] + 2*mv2[l] + 2*mv3[l] + mv4[l])
			lp[l] += h6 * (lv[l] + 2*lv2[l] + 2*lv3[l] + lv4[l])
			mv[l] += h6 * (am1[l] + 2*am2[l] + 2*am3[l] + am4[l])
			lv[l] += h6 * (al1[l] + 2*al2[l] + 2*al3[l] + al4[l])
		}
	}
}

// StepAll advances every active lane by one step of the named scheme.
//
//ravenlint:noalloc
func (b *BatchStepper) StepAll(rk4 bool, dt float64) {
	if rk4 {
		b.StepRK4All(dt)
	} else {
		b.StepEulerAll(dt)
	}
}
