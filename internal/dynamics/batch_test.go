package dynamics

import (
	"fmt"
	"math/rand"
	"testing"
)

// perturbedParams returns per-lane parameter sets jittered around the
// defaults, mimicking the per-run plant perturbation.
func perturbedParams(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	p := DefaultParams()
	for i := range p.Joints {
		j := &p.Joints[i]
		s := func(v float64) float64 { return v * (1 + 0.03*(2*rng.Float64()-1)) }
		j.MotorInertia = s(j.MotorInertia)
		j.CableStiffness = s(j.CableStiffness)
		j.LinkInertia = s(j.LinkInertia)
		j.Coulomb = s(j.Coulomb)
		j.GravConst = s(j.GravConst)
	}
	return p
}

// driveBoth steps a scalar Stepper and one batch lane through the same
// torque program and asserts bit-identical states after every step.
func driveBoth(t *testing.T, rk4 bool, lanes, lane int, seed int64) {
	t.Helper()
	params := make([]Params, lanes)
	for i := range params {
		params[i] = perturbedParams(seed + int64(i))
	}
	scalars := make([]*Stepper, lanes)
	for i := range scalars {
		var err error
		scalars[i], err = NewStepper(params[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	ref, err := NewStepper(params[lane])
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewBatchStepper(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.SetLanes(lanes); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed * 31))
	xs := make([]State, lanes)
	var refX State
	const dt = 50e-6
	for step := 0; step < 4000; step++ {
		// Torques that sweep the joints through re-anchoring distances and
		// both friction-band branches.
		for l := 0; l < lanes; l++ {
			var tau [3]float64
			for j := range tau {
				tau[j] = 0.5 * (2*rng.Float64() - 1)
			}
			scalars[l].SetTorque(tau)
			scalars[l].FillLane(batch, l)
			batch.SetLaneX(l, &xs[l].X)
			if l == lane {
				ref.RestoreCheckpoint(scalars[l].Checkpoint())
				ref.SetTorque(tau)
			}
		}
		ref.Step(rk4, &refX.X, dt)
		batch.StepAll(rk4, dt)
		for l := 0; l < lanes; l++ {
			batch.LaneX(l, &xs[l].X)
			scalars[l].ReadLane(batch, l)
		}
		if xs[lane].X != refX.X {
			t.Fatalf("scheme rk4=%v: lane %d diverged from scalar at step %d:\nbatch  %v\nscalar %v",
				rk4, lane, step, xs[lane].X, refX.X)
		}
		if ck, rck := scalars[lane].Checkpoint(), ref.Checkpoint(); ck != rck {
			t.Fatalf("scheme rk4=%v: lane %d anchor state diverged at step %d: %+v vs %+v",
				rk4, lane, step, ck, rck)
		}
	}
}

// TestBatchSingleLaneBitIdentical pins the tentpole guarantee: a batch lane
// is bit-identical to the scalar Stepper, for both schemes, at several lane
// positions and batch widths (neighbouring lanes must not perturb it).
func TestBatchSingleLaneBitIdentical(t *testing.T) {
	for _, rk4 := range []bool{true, false} {
		driveBoth(t, rk4, 1, 0, 11)
		driveBoth(t, rk4, 5, 0, 12)
		driveBoth(t, rk4, 5, 2, 13)
		driveBoth(t, rk4, 5, 4, 14)
		driveBoth(t, rk4, 11, 7, 15)
	}
}

// TestBatchBlockBitIdentical pins the lane-blocking guarantee: stepping
// with any block width produces the same bits as the unblocked full-width
// stages, for both schemes (tiling reorders work across independent lanes,
// never within one).
func TestBatchBlockBitIdentical(t *testing.T) {
	const lanes = 11
	for _, rk4 := range []bool{true, false} {
		var ref []State
		for _, block := range []int{0, 1, 2, 3, 5, 16} {
			batch, err := NewBatchStepper(lanes)
			if err != nil {
				t.Fatal(err)
			}
			batch.SetBlock(block)
			if err := batch.SetLanes(lanes); err != nil {
				t.Fatal(err)
			}
			steppers := make([]*Stepper, lanes)
			for i := range steppers {
				steppers[i], err = NewStepper(perturbedParams(int64(20 + i)))
				if err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(21))
			xs := make([]State, lanes)
			for step := 0; step < 1000; step++ {
				for l := 0; l < lanes; l++ {
					var tau [3]float64
					for j := range tau {
						tau[j] = 0.5 * (2*rng.Float64() - 1)
					}
					steppers[l].SetTorque(tau)
					steppers[l].FillLane(batch, l)
					batch.SetLaneX(l, &xs[l].X)
				}
				batch.StepAll(rk4, 50e-6)
				for l := 0; l < lanes; l++ {
					batch.LaneX(l, &xs[l].X)
					steppers[l].ReadLane(batch, l)
				}
			}
			if ref == nil {
				ref = xs
				continue
			}
			for l := 0; l < lanes; l++ {
				if xs[l].X != ref[l].X {
					t.Fatalf("rk4=%v block=%d: lane %d diverged from unblocked stages", rk4, block, l)
				}
			}
		}
	}
}

// TestBatchBlockDefaultPlumbs pins that SetBatchBlock reaches newly
// constructed steppers.
func TestBatchBlockDefaultPlumbs(t *testing.T) {
	SetBatchBlock(7)
	defer SetBatchBlock(0)
	b, err := NewBatchStepper(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Block() != 7 {
		t.Fatalf("batch block = %d, want 7", b.Block())
	}
	SetBatchBlock(-3)
	if BatchBlock() != 0 {
		t.Fatalf("negative width should reset to 0, got %d", BatchBlock())
	}
}

// TestBatchStepperAllocs pins that steady-state batch stepping is
// allocation-free, matching the single-lane kernel's budget.
func TestBatchStepperAllocs(t *testing.T) {
	const lanes = 8
	batch, err := NewBatchStepper(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.SetLanes(lanes); err != nil {
		t.Fatal(err)
	}
	steppers := make([]*Stepper, lanes)
	for i := range steppers {
		steppers[i], err = NewStepper(perturbedParams(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		steppers[i].SetTorque([3]float64{0.1, -0.05, 0.2})
		steppers[i].FillLane(batch, i)
		var x State
		batch.SetLaneX(i, &x.X)
	}
	allocs := testing.AllocsPerRun(200, func() {
		batch.StepRK4All(50e-6)
		batch.StepEulerAll(50e-6)
	})
	if allocs != 0 {
		t.Fatalf("batch stepping allocates %v allocs/op, want 0", allocs)
	}
}

func benchBatch(b *testing.B, lanes, block int) {
	batch, err := NewBatchStepper(lanes)
	if err != nil {
		b.Fatal(err)
	}
	batch.SetBlock(block)
	if err := batch.SetLanes(lanes); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < lanes; i++ {
		s, err := NewStepper(perturbedParams(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		s.SetTorque([3]float64{0.1, -0.05, 0.2})
		s.FillLane(batch, i)
		var x State
		batch.SetLaneX(i, &x.X)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.StepRK4All(50e-6)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/lane")
}

func BenchmarkBatchStepRK4(b *testing.B) {
	for _, lanes := range []int{1, 4, 11} {
		b.Run(fmt.Sprintf("lanes%d", lanes), func(b *testing.B) {
			benchBatch(b, lanes, 0)
		})
	}
}

// BenchmarkBatchBlockSweep measures the lane-block widths at the campaign
// fan-out sizes (11 = fault-campaign kinds, 44 = a full policy matrix,
// 128 = a wide sweep); the winner per campaign feeds labrunner -laneblock.
func BenchmarkBatchBlockSweep(b *testing.B) {
	for _, lanes := range []int{11, 44, 128} {
		for _, block := range []int{0, 4, 8, 16, 32} {
			if block >= lanes {
				continue
			}
			b.Run(fmt.Sprintf("lanes%d/block%d", lanes, block), func(b *testing.B) {
				benchBatch(b, lanes, block)
			})
		}
	}
}
