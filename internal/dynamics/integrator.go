// Package dynamics implements the continuous-time dynamic model of the
// RAVEN II manipulator used both by the physical-plant simulator and by the
// paper's detection framework: a two-mass (motor / cable / link) second-order
// ODE per positioning joint, together with the two fixed-step integration
// schemes the paper compares — explicit Euler and 4th-order Runge-Kutta
// (Figure 8).
package dynamics

import "fmt"

// Human-readable scheme names, shared by the integrators' Name methods
// and every report/benchmark that matches on them — matching on a copied
// string literal has already caused a benchmark to silently measure
// nothing.
const (
	EulerName = "Euler"
	RK4Name   = "4th Order Runge Kutta"
)

// SchemeName maps a configuration scheme string ("euler" or "rk4") to
// its human-readable name, defaulting to the scheme itself for unknown
// values.
func SchemeName(scheme string) string {
	switch scheme {
	case "euler":
		return EulerName
	case "rk4":
		return RK4Name
	}
	return scheme
}

// ValidScheme reports whether scheme is a configuration name NewIntegrator
// (and the fused Stepper's callers) accept.
func ValidScheme(scheme string) bool {
	return scheme == "euler" || scheme == "rk4"
}

// Deriv computes the time derivative of state x at time t into dx.
// dx and x always have equal length; implementations must not retain either
// slice.
type Deriv func(t float64, x, dx []float64)

// Integrator advances an ODE state by a fixed step.
type Integrator interface {
	// Step advances x (in place) from time t by dt using f.
	Step(f Deriv, t float64, x []float64, dt float64)
	// Name returns the scheme's human-readable name for reports.
	Name() string
}

// Euler is the explicit (forward) Euler scheme: one derivative evaluation
// per step. The paper found it the best runtime/accuracy trade-off at a
// 1 ms step for the RAVEN model.
type Euler struct {
	scratch []float64
}

var _ Integrator = (*Euler)(nil)

// NewEuler returns an Euler integrator for states of dimension n.
func NewEuler(n int) *Euler { return &Euler{scratch: make([]float64, n)} }

// Step advances x in place by one Euler step.
func (e *Euler) Step(f Deriv, t float64, x []float64, dt float64) {
	if len(x) != len(e.scratch) {
		panic(fmt.Sprintf("dynamics: Euler state dim %d, want %d", len(x), len(e.scratch)))
	}
	f(t, x, e.scratch)
	for i := range x {
		x[i] += dt * e.scratch[i]
	}
}

// Name implements Integrator.
func (e *Euler) Name() string { return EulerName }

// RK4 is the classical 4th-order Runge-Kutta scheme: four derivative
// evaluations per step, ~3x the cost of Euler but 4th-order accurate.
type RK4 struct {
	k1, k2, k3, k4, tmp []float64
}

var _ Integrator = (*RK4)(nil)

// NewRK4 returns an RK4 integrator for states of dimension n.
func NewRK4(n int) *RK4 {
	return &RK4{
		k1:  make([]float64, n),
		k2:  make([]float64, n),
		k3:  make([]float64, n),
		k4:  make([]float64, n),
		tmp: make([]float64, n),
	}
}

// Step advances x in place by one RK4 step.
func (r *RK4) Step(f Deriv, t float64, x []float64, dt float64) {
	n := len(r.k1)
	if len(x) != n {
		panic(fmt.Sprintf("dynamics: RK4 state dim %d, want %d", len(x), n))
	}
	f(t, x, r.k1)
	for i := 0; i < n; i++ {
		r.tmp[i] = x[i] + dt/2*r.k1[i]
	}
	f(t+dt/2, r.tmp, r.k2)
	for i := 0; i < n; i++ {
		r.tmp[i] = x[i] + dt/2*r.k2[i]
	}
	f(t+dt/2, r.tmp, r.k3)
	for i := 0; i < n; i++ {
		r.tmp[i] = x[i] + dt*r.k3[i]
	}
	f(t+dt, r.tmp, r.k4)
	for i := 0; i < n; i++ {
		x[i] += dt / 6 * (r.k1[i] + 2*r.k2[i] + 2*r.k3[i] + r.k4[i])
	}
}

// Name implements Integrator.
func (r *RK4) Name() string { return RK4Name }

// NewIntegrator constructs an integrator by scheme name ("euler" or "rk4")
// for states of dimension n. Unknown names return an error so configuration
// typos fail loudly.
func NewIntegrator(scheme string, n int) (Integrator, error) {
	switch scheme {
	case "euler":
		return NewEuler(n), nil
	case "rk4":
		return NewRK4(n), nil
	default:
		return nil, fmt.Errorf("dynamics: unknown integrator scheme %q (want \"euler\" or \"rk4\")", scheme)
	}
}
