package dynamics

import (
	"math"
	"testing"

	"ravenguard/internal/kinematics"
)

// tracedTorque is a deterministic torque profile that sweeps each joint
// through rest, the Coulomb smoothing band, and saturation: slow
// sinusoids with distinct frequencies plus a bias, evaluated identically
// for the reference and fused paths.
func tracedTorque(tick int, dt float64) [kinematics.NumJoints]float64 {
	t := float64(tick) * dt
	return [kinematics.NumJoints]float64{
		0.8 * math.Sin(2*math.Pi*0.7*t),
		0.02 + 0.6*math.Sin(2*math.Pi*1.1*t+1.0),
		0.3 * math.Sin(2*math.Pi*0.4*t+2.0),
	}
}

// stepReference advances the interface-dispatch reference path by one
// step: the Model's Deriv closure under a NewIntegrator scheme.
func stepReference(t *testing.T, scheme string) func(tau [kinematics.NumJoints]float64, x []float64, dt float64) {
	t.Helper()
	model, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	integ, err := NewIntegrator(scheme, StateDim)
	if err != nil {
		t.Fatal(err)
	}
	return func(tau [kinematics.NumJoints]float64, x []float64, dt float64) {
		model.SetTorque(tau)
		integ.Step(model.Deriv, 0, x, dt)
	}
}

// testFusedEquivalence runs a 10 s teleop-scale trace through both the
// reference and the fused path and bounds their divergence. The two are
// not bit-identical by design — the fused kernel multiplies by
// precomputed reciprocals, uses polynomial sin/tanh, and expands gravity
// around an anchor — so the bound is a float tolerance, far tighter than
// any behavioral threshold in the detection pipeline (the guard's
// tightest alarm threshold is ~1e-3).
func testFusedEquivalence(t *testing.T, rk4 bool, scheme string, tol float64) {
	t.Helper()
	const (
		dt    = 1e-3
		steps = 10000 // 10 s at the 1 kHz control rate
	)
	ref := stepReference(t, scheme)
	fused, err := NewStepper(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var refState, fusedState State
	refState.SetJointPos(kinematics.DefaultLimits().Center(), kinematics.DefaultTransmission())
	fusedState = refState

	var maxDiff float64
	for tick := 0; tick < steps; tick++ {
		tau := tracedTorque(tick, dt)
		ref(tau, refState.X[:], dt)
		fused.SetTorque(tau)
		fused.Step(rk4, &fusedState.X, dt)
		for i := range refState.X {
			if d := math.Abs(refState.X[i] - fusedState.X[i]); d > maxDiff {
				maxDiff = d
			}
		}
		for i := range refState.X {
			if math.IsNaN(fusedState.X[i]) {
				t.Fatalf("tick %d: fused state[%d] is NaN", tick, i)
			}
		}
	}
	t.Logf("max |reference - fused| over %d steps: %.3e", steps, maxDiff)
	if maxDiff > tol {
		t.Fatalf("fused %s diverged from reference: max diff %.3e > tol %.3e", scheme, maxDiff, tol)
	}
}

func TestFusedMatchesReferenceRK4(t *testing.T) {
	testFusedEquivalence(t, true, "rk4", 1e-6)
}

func TestFusedMatchesReferenceEuler(t *testing.T) {
	testFusedEquivalence(t, false, "euler", 1e-6)
}

// TestFusedReanchorAfterJump teleports the link position far outside the
// gravity anchor radius and checks the next step against a fresh Stepper
// that never held a stale anchor: the re-anchor path must make history
// invisible.
func TestFusedReanchorAfterJump(t *testing.T) {
	warm, err := NewStepper(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	st.SetJointPos(kinematics.DefaultLimits().Center(), kinematics.DefaultTransmission())
	warm.SetTorque([3]float64{0.4, -0.2, 0.1})
	for i := 0; i < 100; i++ {
		warm.StepRK4(&st.X, 1e-3)
	}
	// Teleport every link well past anchorRad.
	for i := 0; i < kinematics.NumJoints; i++ {
		st.X[4*i+2] += 0.5
	}
	cold, err := NewStepper(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cold.SetTorque(warm.Torque())
	coldState := st
	warm.StepRK4(&st.X, 1e-3)
	cold.StepRK4(&coldState.X, 1e-3)
	for i := range st.X {
		if st.X[i] != coldState.X[i] {
			t.Fatalf("state[%d] after jump: warm %v != cold %v", i, st.X[i], coldState.X[i])
		}
	}
}

// TestFusedNaNRecovery feeds the stepper a NaN state — as fault
// injection can produce — and checks that NaN propagates (no panic, no
// silent masking) and that a subsequent finite state steps identically
// to a fresh Stepper: the NaN must not poison the gravity anchor.
func TestFusedNaNRecovery(t *testing.T) {
	s, err := NewStepper(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s.SetTorque([3]float64{0.1, 0.1, 0.05})
	var bad State
	for i := range bad.X {
		bad.X[i] = math.NaN()
	}
	s.StepRK4(&bad.X, 1e-3)
	for i := range bad.X {
		if !math.IsNaN(bad.X[i]) {
			t.Fatalf("state[%d]: NaN input produced finite output %v", i, bad.X[i])
		}
	}

	var good State
	good.SetJointPos(kinematics.DefaultLimits().Center(), kinematics.DefaultTransmission())
	fresh, err := NewStepper(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetTorque(s.Torque())
	freshState := good
	s.StepRK4(&good.X, 1e-3)
	fresh.StepRK4(&freshState.X, 1e-3)
	for i := range good.X {
		if good.X[i] != freshState.X[i] {
			t.Fatalf("state[%d] after NaN recovery: %v != fresh %v", i, good.X[i], freshState.X[i])
		}
	}
}

// TestFastTanh sweeps fastTanh against math.Tanh across the polynomial
// band, the math.Tanh mid band, and the saturated range, and checks the
// special values the kernel relies on.
func TestFastTanh(t *testing.T) {
	var maxErr float64
	for i := -300000; i <= 300000; i++ {
		x := float64(i) * 1e-4 // [-30, 30]
		if d := math.Abs(fastTanh(x) - math.Tanh(x)); d > maxErr {
			maxErr = d
		}
	}
	t.Logf("max |fastTanh - math.Tanh| on [-30,30]: %.3e", maxErr)
	if maxErr > 1e-10 {
		t.Fatalf("fastTanh error %.3e exceeds 1e-10", maxErr)
	}
	if fastTanh(0) != 0 {
		t.Fatalf("fastTanh(0) = %v, want exactly 0", fastTanh(0))
	}
	if fastTanh(math.Inf(1)) != 1 || fastTanh(math.Inf(-1)) != -1 {
		t.Fatal("fastTanh(±Inf) must saturate to ±1")
	}
	if !math.IsNaN(fastTanh(math.NaN())) {
		t.Fatal("fastTanh(NaN) must be NaN")
	}
	// The saturated shortcut must be value-identical to math.Tanh.
	for _, x := range []float64{20, 25, -20, -1e9} {
		if fastTanh(x) != math.Tanh(x) {
			t.Fatalf("fastTanh(%v) = %v differs from math.Tanh = %v", x, fastTanh(x), math.Tanh(x))
		}
	}
}

// TestTanhPolyVel checks the velocity-folded polynomial against the
// x-domain one across the friction band.
func TestTanhPolyVel(t *testing.T) {
	var maxErr float64
	for i := -12400; i <= 12400; i++ {
		v := float64(i) * 1e-6 // inside |v| < 0.0125
		got := tanhPolyVel(v, v*v)
		want := math.Tanh(v * invSmooth)
		if d := math.Abs(got - want); d > maxErr {
			maxErr = d
		}
	}
	t.Logf("max |tanhPolyVel - math.Tanh| on the band: %.3e", maxErr)
	if maxErr > 1e-10 {
		t.Fatalf("tanhPolyVel error %.3e exceeds 1e-10", maxErr)
	}
}

// TestTanhMid sweeps the mid-band exponential-decomposition kernel
// against math.Tanh at a much tighter bound than the full-range fastTanh
// test: the 2^k·2^f construction should be good to a few ulps of the
// result, not merely to the 1e-10 friction tolerance.
func TestTanhMid(t *testing.T) {
	var maxErr float64
	for i := 6250; i <= 200000; i++ {
		x := float64(i) * 1e-4 // [0.625, 20]
		for _, v := range []float64{x, -x} {
			if d := math.Abs(tanhMid(v) - math.Tanh(v)); d > maxErr {
				maxErr = d
			}
		}
	}
	t.Logf("max |tanhMid - math.Tanh| on the mid band: %.3e", maxErr)
	if maxErr > 1e-13 {
		t.Fatalf("tanhMid error %.3e exceeds 1e-13", maxErr)
	}
	// The out-of-contract fallback must stay exact for the values the
	// band branches can hand it under unusual inputs.
	for _, v := range []float64{math.NaN(), 25, -1e9, math.Inf(1)} {
		got, want := tanhMid(v), math.Tanh(v)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("tanhMid(%v) = %v, want math.Tanh fallback %v", v, got, want)
		}
	}
}

// TestFastSinCos sweeps the polynomial sine/cosine against the stdlib
// over several workspace-scale ranges plus the large-argument fallback.
func TestFastSinCos(t *testing.T) {
	errAt := func(x float64) float64 {
		s, c := fastSinCos(x)
		d := math.Abs(s - math.Sin(x))
		if e := math.Abs(c - math.Cos(x)); e > d {
			d = e
		}
		if e := math.Abs(fastSin(x) - math.Sin(x)); e > d {
			d = e
		}
		return d
	}
	// Workspace-scale angles — what the gravity model actually sees.
	var maxErr float64
	for i := -80000; i <= 80000; i++ {
		if d := errAt(float64(i) * 1e-4); d > maxErr { // [-8, 8]: fold edges included
			maxErr = d
		}
	}
	t.Logf("max sin/cos error on [-8,8]: %.3e", maxErr)
	if maxErr > 1e-12 {
		t.Fatalf("fastSinCos error %.3e exceeds 1e-12", maxErr)
	}
	// Far range: the two-part reduction inherits the ~ulp(x) phase
	// uncertainty of the argument itself, so only a loose bound holds.
	maxErr = 0
	for i := 0; i <= 10000; i++ {
		if d := errAt(1e3 * float64(i)); d > maxErr {
			maxErr = d
		}
	}
	t.Logf("max sin/cos error on [0,1e7]: %.3e", maxErr)
	if maxErr > 1e-8 {
		t.Fatalf("far-range fastSinCos error %.3e exceeds 1e-8", maxErr)
	}
	if s, c := fastSinCos(math.NaN()); !math.IsNaN(s) || !math.IsNaN(c) {
		t.Fatal("fastSinCos(NaN) must be NaN")
	}
	if !math.IsNaN(fastSin(math.Inf(1))) {
		t.Fatal("fastSin(+Inf) must be NaN")
	}
}

// TestNewStepperValidates mirrors NewModel's parameter validation.
func TestNewStepperValidates(t *testing.T) {
	p := DefaultParams()
	p.Joints[1].MotorInertia = 0
	if _, err := NewStepper(p); err == nil {
		t.Fatal("NewStepper accepted zero motor inertia")
	}
}
