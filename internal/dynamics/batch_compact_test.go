package dynamics

import (
	"math/rand"
	"testing"
)

// compactHarness drives n resident lanes alongside n scalar reference
// steppers, with lane data resident in the batch (no per-step repack), so
// swap/remove moves can be interleaved with stepping and every surviving
// lane checked against its own scalar twin.
type compactHarness struct {
	t     *testing.T
	rk4   bool
	batch *BatchStepper
	// scalar[i] is the reference for the plant currently in lane i; ids[i]
	// labels it so moves can be asserted.
	scalar []*Stepper
	refX   []State
	ids    []int
	rng    *rand.Rand
}

func newCompactHarness(t *testing.T, rk4 bool, capacity, lanes int, seed int64) *compactHarness {
	t.Helper()
	batch, err := NewBatchStepper(capacity)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.SetLanes(lanes); err != nil {
		t.Fatal(err)
	}
	h := &compactHarness{
		t:     t,
		rk4:   rk4,
		batch: batch,
		rng:   rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < lanes; i++ {
		s, err := NewStepper(perturbedParams(seed + int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		s.FillLane(batch, i)
		var x State
		batch.SetLaneX(i, &x.X)
		h.scalar = append(h.scalar, s)
		h.refX = append(h.refX, State{})
		h.ids = append(h.ids, i)
	}
	return h
}

// step advances every lane and its scalar twin by k sub-steps under a fresh
// torque program, then asserts bit-identity lane by lane.
func (h *compactHarness) step(k int) {
	h.t.Helper()
	const dt = 50e-6
	n := h.batch.Lanes()
	for s := 0; s < k; s++ {
		for l := 0; l < n; l++ {
			var tau [3]float64
			for j := range tau {
				tau[j] = 0.5 * (2*h.rng.Float64() - 1)
			}
			h.scalar[l].SetTorque(tau)
			h.batch.SetLaneTau(l, tau)
		}
		h.batch.StepAll(h.rk4, dt)
		for l := 0; l < n; l++ {
			h.scalar[l].Step(h.rk4, &h.refX[l].X, dt)
		}
	}
	for l := 0; l < n; l++ {
		var got State
		h.batch.LaneX(l, &got.X)
		if got.X != h.refX[l].X {
			h.t.Fatalf("rk4=%v: lane %d (plant %d) diverged from its scalar twin after compaction ops:\nbatch  %v\nscalar %v",
				h.rk4, l, h.ids[l], got.X, h.refX[l].X)
		}
	}
}

// swap mirrors BatchStepper.SwapLanes on the reference bookkeeping.
func (h *compactHarness) swap(a, b int) {
	h.batch.SwapLanes(a, b)
	h.scalar[a], h.scalar[b] = h.scalar[b], h.scalar[a]
	h.refX[a], h.refX[b] = h.refX[b], h.refX[a]
	h.ids[a], h.ids[b] = h.ids[b], h.ids[a]
}

// remove mirrors BatchStepper.RemoveLane and asserts the reported move.
func (h *compactHarness) remove(lane int) {
	h.t.Helper()
	last := h.batch.Lanes() - 1
	moved := h.batch.RemoveLane(lane)
	wantMoved := last
	if lane == last {
		wantMoved = -1
	}
	if moved != wantMoved {
		h.t.Fatalf("RemoveLane(%d) of %d lanes reported move from %d, want %d", lane, last+1, moved, wantMoved)
	}
	if lane != last {
		h.scalar[lane], h.refX[lane], h.ids[lane] = h.scalar[last], h.refX[last], h.ids[last]
	}
	h.scalar = h.scalar[:last]
	h.refX = h.refX[:last]
	h.ids = h.ids[:last]
}

// TestBatchCompactionBitIdentical pins the compaction guarantee the fleet
// engine rests on: interleaving SwapLanes/RemoveLane/CopyLane with stepping
// leaves every surviving lane's trajectory bit-identical to its scalar twin
// — a retired neighbour can never perturb a survivor.
func TestBatchCompactionBitIdentical(t *testing.T) {
	for _, rk4 := range []bool{true, false} {
		h := newCompactHarness(t, rk4, 8, 7, 40)
		h.step(200)

		// Swap interior lanes, step, swap boundary lanes, step.
		h.swap(1, 5)
		h.step(150)
		h.swap(0, h.batch.Lanes()-1)
		h.step(150)

		// Retire an interior lane (last lane moves down), the new last lane
		// (no move), then lane 0.
		h.remove(2)
		h.step(150)
		h.remove(h.batch.Lanes() - 1)
		h.step(150)
		h.remove(0)
		h.step(150)

		// Re-admit into the freed tail slot via CopyLane from a template
		// lane, then diverge it with its own torques: survivors unharmed.
		n := h.batch.Lanes()
		if err := h.batch.SetLanes(n + 1); err != nil {
			t.Fatal(err)
		}
		h.batch.CopyLane(n, 0)
		// The twin needs lane 0's joint constants (ids[0] names the plant
		// there now) plus its mutable anchors/torque via the checkpoint.
		twin, err := NewStepper(perturbedParams(40 + int64(h.ids[0])))
		if err != nil {
			t.Fatal(err)
		}
		twin.RestoreCheckpoint(h.scalar[0].Checkpoint())
		h.scalar = append(h.scalar, twin)
		h.refX = append(h.refX, h.refX[0])
		h.ids = append(h.ids, 100)
		h.step(200)
	}
}

// TestRemoveLaneBounds pins the edge semantics: removing out-of-range lanes
// is a no-op reporting -1.
func TestRemoveLaneBounds(t *testing.T) {
	b, err := NewBatchStepper(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetLanes(2); err != nil {
		t.Fatal(err)
	}
	if got := b.RemoveLane(2); got != -1 || b.Lanes() != 2 {
		t.Fatalf("RemoveLane(2) on 2 lanes: moved=%d lanes=%d, want -1, 2", got, b.Lanes())
	}
	if got := b.RemoveLane(-1); got != -1 || b.Lanes() != 2 {
		t.Fatalf("RemoveLane(-1): moved=%d lanes=%d, want -1, 2", got, b.Lanes())
	}
	if got := b.RemoveLane(1); got != -1 || b.Lanes() != 1 {
		t.Fatalf("RemoveLane(last): moved=%d lanes=%d, want -1, 1", got, b.Lanes())
	}
	if got := b.RemoveLane(0); got != -1 || b.Lanes() != 0 {
		t.Fatalf("RemoveLane(only): moved=%d lanes=%d, want -1, 0", got, b.Lanes())
	}
}
