// Package inject is the attack injection engine of the paper's simulation
// framework (Figure 7a): it programs attack scenarios onto a simulation rig
// by installing malicious wrappers and hooks at the layer each attack
// targets, "with different values and activation periods ... at different
// times during a running trajectory".
//
// Two scenarios carry the quantitative evaluation:
//
//   - Scenario A injects unintended user inputs after they are received by
//     the control software (malicious desired end-effector motions).
//   - Scenario B injects unintended motor torque commands after the
//     software safety checks have passed, via the malicious write wrapper.
//
// The Table I variant matrix is implemented in variants.go.
package inject

import (
	"fmt"

	"ravenguard/internal/control"
	"ravenguard/internal/malware"
	"ravenguard/internal/mathx"
	"ravenguard/internal/sim"
)

// ScenarioAParams parameterises an unintended-user-input attack.
type ScenarioAParams struct {
	// Magnitude is the malicious per-cycle tip displacement, meters per
	// control period (the "injected error value" axis of Figure 9 for
	// scenario A).
	Magnitude float64
	// Dir is the direction of the malicious motion; zero means +X.
	Dir mathx.Vec3
	// StartAfterTicks is how many pedal-down cycles to wait before
	// activating — striking mid-procedure.
	StartAfterTicks int
	// ActivationTicks is the activation period in control cycles; 0 means
	// stay active forever once triggered.
	ActivationTicks int
}

// Validate rejects non-physical parameters.
func (p ScenarioAParams) Validate() error {
	if p.Magnitude < 0 {
		return fmt.Errorf("inject: negative magnitude %v", p.Magnitude)
	}
	if p.StartAfterTicks < 0 || p.ActivationTicks < 0 {
		return fmt.Errorf("inject: negative timing")
	}
	return nil
}

// ScenarioA is a live scenario-A attack bound to one run.
type ScenarioA struct {
	params   ScenarioAParams //ravenlint:snapshot-ignore attack configuration, fixed after NewScenarioA
	dir      mathx.Vec3      //ravenlint:snapshot-ignore derived from params at NewScenarioA
	seen     int
	injected int
}

// NewScenarioA builds the attack.
func NewScenarioA(p ScenarioAParams) (*ScenarioA, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dir := p.Dir
	if dir.Norm() == 0 {
		dir = mathx.Vec3{X: 1}
	}
	return &ScenarioA{params: p, dir: dir.Unit()}, nil
}

// Hook returns the input hook to install as sim.Config.OnInput. The hook
// only acts while the pedal is down — inputs in other states do not move
// the robot, as the paper notes about trigger timing.
func (a *ScenarioA) Hook() sim.InputHook {
	return func(_ float64, in *control.Input) {
		if !in.PedalDown {
			return
		}
		a.seen++
		if a.seen <= a.params.StartAfterTicks {
			return
		}
		if a.params.ActivationTicks > 0 && a.injected >= a.params.ActivationTicks {
			return
		}
		in.Delta = in.Delta.Add(a.dir.Scale(a.params.Magnitude))
		a.injected++
	}
}

// Injected reports how many cycles were corrupted.
func (a *ScenarioA) Injected() int { return a.injected }

// scenarioAState is the attack's mutable state.
type scenarioAState struct {
	seen, injected int
}

// Name implements sim.Snapshotter.
func (a *ScenarioA) Name() string { return "scenario-a" }

// CaptureSnap implements sim.Snapshotter.
func (a *ScenarioA) CaptureSnap() any {
	return scenarioAState{seen: a.seen, injected: a.injected}
}

// RestoreSnap implements sim.Snapshotter.
func (a *ScenarioA) RestoreSnap(st any) error {
	s, ok := st.(scenarioAState)
	if !ok {
		return fmt.Errorf("inject: scenario-A snapshot has type %T", st)
	}
	a.seen, a.injected = s.seen, s.injected
	return nil
}

// ScenarioBParams parameterises an unintended-torque-command attack: the
// malicious write wrapper corrupting DAC values after the safety check.
type ScenarioBParams struct {
	// Value is the DAC corruption (offset counts, the "injected error
	// value" axis of Figure 9 for scenario B).
	Value int16
	// Channel is the motor channel to corrupt.
	Channel int
	// StartDelayTicks delays activation after Pedal Down is first seen.
	StartDelayTicks int
	// ActivationTicks is the activation period in control cycles (frames).
	ActivationTicks int
	// Set replaces the DAC value instead of offsetting it.
	Set bool
	// RandomByte uses the paper's original corruption: overwrite one
	// random non-state byte per frame (ignores Value/Channel/Set).
	RandomByte bool
	// Seed drives RandomByte.
	Seed int64
}

// Validate rejects bad parameters.
func (p ScenarioBParams) Validate() error {
	if p.Channel < 0 || p.Channel > 7 {
		return fmt.Errorf("inject: channel %d out of range", p.Channel)
	}
	if p.StartDelayTicks < 0 || p.ActivationTicks < 0 {
		return fmt.Errorf("inject: negative timing")
	}
	return nil
}

// NewScenarioB builds the malicious injector wrapper to preload on the
// write chain (sim.Config.Preload).
func NewScenarioB(p ScenarioBParams) (*malware.Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mode := malware.ModeDACOffset
	if p.Set {
		mode = malware.ModeDACSet
	}
	if p.RandomByte {
		mode = malware.ModeRandomByte
	}
	return malware.NewInjector(malware.InjectorConfig{
		TriggerByte0:    0x0F, // Pedal Down, from the offline analysis
		Mode:            mode,
		Channel:         p.Channel,
		Value:           p.Value,
		StartDelayTicks: p.StartDelayTicks,
		ActivationTicks: p.ActivationTicks,
		Seed:            p.Seed,
	}), nil
}
