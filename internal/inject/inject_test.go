package inject

import (
	"testing"

	"ravenguard/internal/console"
	"ravenguard/internal/control"
	"ravenguard/internal/mathx"

	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

func TestScenarioAValidation(t *testing.T) {
	if _, err := NewScenarioA(ScenarioAParams{Magnitude: -1}); err == nil {
		t.Fatal("negative magnitude accepted")
	}
	if _, err := NewScenarioA(ScenarioAParams{StartAfterTicks: -1}); err == nil {
		t.Fatal("negative timing accepted")
	}
	a, err := NewScenarioA(ScenarioAParams{Magnitude: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if a.dir != (mathx.Vec3{X: 1}) {
		t.Fatalf("default direction = %+v", a.dir)
	}
}

func TestScenarioAHookOnlyActsOnPedalDown(t *testing.T) {
	a, err := NewScenarioA(ScenarioAParams{Magnitude: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	hook := a.Hook()
	in := control.Input{PedalDown: false}
	hook(0, &in)
	if in.Delta.Norm() != 0 || a.Injected() != 0 {
		t.Fatal("hook acted with pedal up")
	}
	in = control.Input{PedalDown: true}
	hook(0, &in)
	if in.Delta.X != 1e-4 || a.Injected() != 1 {
		t.Fatalf("hook inactive on pedal down: %+v", in.Delta)
	}
}

func TestScenarioAWindow(t *testing.T) {
	a, err := NewScenarioA(ScenarioAParams{Magnitude: 1e-4, StartAfterTicks: 2, ActivationTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	hook := a.Hook()
	touched := 0
	for i := 0; i < 10; i++ {
		in := control.Input{PedalDown: true}
		hook(0, &in)
		if in.Delta.Norm() > 0 {
			touched++
		}
	}
	if touched != 3 || a.Injected() != 3 {
		t.Fatalf("touched %d frames, injected %d; want 3", touched, a.Injected())
	}
}

func TestScenarioBValidation(t *testing.T) {
	if _, err := NewScenarioB(ScenarioBParams{Channel: 9}); err == nil {
		t.Fatal("bad channel accepted")
	}
	if _, err := NewScenarioB(ScenarioBParams{ActivationTicks: -1}); err == nil {
		t.Fatal("negative timing accepted")
	}
	if _, err := NewScenarioB(ScenarioBParams{Value: 100}); err != nil {
		t.Fatal(err)
	}
}

// runVariant assembles and runs a session with the given variant applied
// mid-procedure, returning summary observations.
type variantOutcome struct {
	finalState   statemachine.State
	plcEStop     bool
	ikFails      int
	safetyTrips  int
	maxDev       float64 // vs controller's own desired tip
	brakedInDown int     // ticks where PLC braked while software says Pedal Down
	tipRange     float64 // total spread of true tip positions over the run
}

func runVariant(t *testing.T, v Variant, magnitude float64) variantOutcome {
	t.Helper()
	cfg := sim.Config{
		Seed:   700 + int64(v),
		Script: console.StandardScript(6),
		Traj:   trajectory.Standard()[0],
	}
	vc := VariantConfig{Variant: v, StartAt: 4.0, Magnitude: magnitude, Seed: int64(v)}
	if _, err := vc.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	rig, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out variantOutcome
	var first mathx.Vec3
	haveFirst := false
	rig.Observe(func(si sim.StepInfo) {
		if si.Ctrl.State == statemachine.PedalDown {
			if d := si.TipTrue.DistanceTo(si.Ctrl.TipDesired); d > out.maxDev {
				out.maxDev = d
			}
			if rig.PLC().BrakesEngaged() {
				out.brakedInDown++
			}
			if !haveFirst {
				first = si.TipTrue
				haveFirst = true
			}
		}
		if haveFirst {
			if d := si.TipTrue.DistanceTo(first); d > out.tipRange {
				out.tipRange = d
			}
		}
	})
	if _, err := rig.Run(0); err != nil {
		t.Fatal(err)
	}
	out.finalState = rig.Controller().State()
	out.plcEStop = rig.PLC().EStopped()
	out.ikFails = rig.Controller().IKFails()
	out.safetyTrips = rig.Controller().SafetyTrips()
	return out
}

func TestVariantPortChangeFreezesRobot(t *testing.T) {
	out := runVariant(t, VariantPortChange, 0)
	// With datagrams diverted the pedal reads released: the robot drops to
	// Pedal Up and stays there (unwanted state).
	if out.finalState != statemachine.PedalUp {
		t.Fatalf("final state = %v, want Pedal Up (console lost)", out.finalState)
	}
}

func TestVariantPacketContentHijacks(t *testing.T) {
	out := runVariant(t, VariantPacketContent, 2e-5)
	// The hijack is silent: the robot keeps operating (no E-STOP, no
	// safety trip) while executing the attacker's motion instead of the
	// surgeon's.
	if out.plcEStop {
		t.Fatal("hijack latched an E-STOP; it should stay silent")
	}
	if out.safetyTrips != 0 {
		t.Fatalf("hijack tripped the safety checks %d times", out.safetyTrips)
	}
	if out.finalState == statemachine.EStop {
		t.Fatalf("final state = %v", out.finalState)
	}
}

func TestVariantMathDriftCausesIKFailures(t *testing.T) {
	out := runVariant(t, VariantMathDrift, -0.9)
	if out.ikFails == 0 {
		t.Fatal("math drift produced no IK failures")
	}
}

func TestVariantPLCStateEngagesBrakesMidOperation(t *testing.T) {
	out := runVariant(t, VariantPLCState, 0)
	if out.brakedInDown == 0 {
		t.Fatal("PLC-state corruption never engaged brakes during Pedal Down")
	}
}

func TestVariantMotorCommandDeviates(t *testing.T) {
	out := runVariant(t, VariantMotorCommand, 16000)
	if out.maxDev < 0.0005 {
		t.Fatalf("motor-command corruption barely moved the arm: %v m", out.maxDev)
	}
}

func TestVariantEncoderFeedbackDisturbs(t *testing.T) {
	out := runVariant(t, VariantEncoderFeedback, 4000)
	// Phantom encoder error makes the PID chase a ghost: either visible
	// deviation or a safety trip.
	if out.maxDev < 0.0005 && out.safetyTrips == 0 && !out.plcEStop {
		t.Fatalf("encoder corruption had no observable effect: %+v", out)
	}
}

func TestVariantWatchdogSpoofDefeatsPLCPath(t *testing.T) {
	// With the watchdog and state nibble forged, the software's halt never
	// reaches the PLC: the brakes stay released and the corrupted torque
	// drives the arm far beyond what any halting path would allow.
	out := runVariant(t, VariantWatchdogSpoof, 24000)
	if out.plcEStop {
		t.Fatal("PLC latched despite the spoofed watchdog")
	}
	// With the halt path defeated, the unopposed torque drags the arm far
	// across the workspace (the software's E-STOP cannot engage brakes).
	if out.tipRange < 0.005 {
		t.Fatalf("spoofed attack moved the arm only %.3f mm overall", out.tipRange*1e3)
	}
}

func TestVariantStringsAndList(t *testing.T) {
	if len(AllVariants()) != 7 {
		t.Fatalf("AllVariants = %d", len(AllVariants()))
	}
	for _, v := range AllVariants() {
		if v.String() == "" {
			t.Fatalf("variant %d has empty name", v)
		}
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant has empty name")
	}
}

func TestVariantApplyUnknown(t *testing.T) {
	cfg := sim.Config{}
	if _, err := (VariantConfig{Variant: Variant(99)}).Apply(&cfg); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
