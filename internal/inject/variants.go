package inject

import (
	"fmt"

	"ravenguard/internal/control"
	"ravenguard/internal/interpose"
	"ravenguard/internal/mathx"
	"ravenguard/internal/sim"
	"ravenguard/internal/usb"
)

// Variant enumerates the attack variants of paper Table I, categorised by
// the control-structure layer they target.
type Variant int

// Table I rows.
const (
	// VariantPortChange targets the socket communication (bind /
	// recv_from): datagrams are diverted so the robot stops hearing the
	// console. Observed impact: unwanted state (stale inputs, frozen arm).
	VariantPortChange Variant = iota + 1
	// VariantPacketContent targets socket communication: packet contents
	// are replaced with attacker-chosen motion. Observed impact: hijacked
	// trajectory.
	VariantPacketContent
	// VariantMathDrift targets the math library (sin/cos): a drift added
	// to trigonometric results skews the kinematics until inverse
	// kinematics fails. Observed impact: unwanted state (IK-fail).
	VariantMathDrift
	// VariantPLCState targets the software/hardware interface (read/
	// write): the state byte relayed to the PLC is corrupted. Observed
	// impact: homing failure / unwanted brake behaviour.
	VariantPLCState
	// VariantMotorCommand targets the software/physical interface: motor
	// commands corrupted after the safety check (= scenario B). Observed
	// impact: abrupt jump / unwanted state (E-STOP).
	VariantMotorCommand
	// VariantEncoderFeedback targets the software/physical interface:
	// encoder feedback corrupted on the read path. Observed impact:
	// abrupt jump / unwanted state (E-STOP).
	VariantEncoderFeedback
	// VariantWatchdogSpoof targets the software/hardware interface: the
	// wrapper keeps forging a healthy watchdog square wave and an engaged
	// state nibble after the control software has detected an unsafe
	// command and tried to halt — defeating the PLC's supervision channel
	// (an extension beyond Table I demonstrating why the paper wants the
	// defense *below* the wrapper layer).
	VariantWatchdogSpoof
)

// String names the variant as Table I does.
func (v Variant) String() string {
	switch v {
	case VariantPortChange:
		return "socket: change port number"
	case VariantPacketContent:
		return "socket: change packet content"
	case VariantMathDrift:
		return "math: add drift to sin/cos"
	case VariantPLCState:
		return "hw interface: change robot state in PLC"
	case VariantMotorCommand:
		return "physical: change motor commands"
	case VariantEncoderFeedback:
		return "physical: change encoder feedback"
	case VariantWatchdogSpoof:
		return "hw interface: spoof watchdog + state"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// AllVariants lists the Table I rows in order.
func AllVariants() []Variant {
	return []Variant{
		VariantPortChange, VariantPacketContent, VariantMathDrift,
		VariantPLCState, VariantMotorCommand, VariantEncoderFeedback,
		VariantWatchdogSpoof,
	}
}

// VariantConfig parameterises a Table I variant attack.
type VariantConfig struct {
	Variant Variant
	// StartAt is the activation time, seconds into the session.
	StartAt float64
	// Magnitude scales the corruption where applicable (DAC counts for
	// motor/encoder variants, meters for trajectory hijack, radians for
	// math drift).
	Magnitude float64
	// Seed drives any randomness.
	Seed int64
}

// Apply installs the variant onto a rig configuration. It returns a
// human-readable description of what was installed.
func (vc VariantConfig) Apply(cfg *sim.Config) (string, error) {
	switch vc.Variant {
	case VariantPortChange:
		// Diverting the port means the robot hears nothing: drop every
		// input after StartAt (pedal reads as released, deltas vanish).
		prev := cfg.OnInput
		cfg.OnInput = chainInput(prev, func(t float64, in *control.Input) {
			if t >= vc.StartAt {
				*in = control.Input{}
			}
		})
		return "console datagrams diverted (robot receives nothing)", nil

	case VariantPacketContent:
		mag := vc.Magnitude
		if mag == 0 {
			mag = 1e-4
		}
		prev := cfg.OnInput
		cfg.OnInput = chainInput(prev, func(t float64, in *control.Input) {
			if t >= vc.StartAt && in.PedalDown {
				// Replace the surgeon's motion with the attacker's: a
				// steady pull, hijacking the trajectory.
				in.Delta = mathx.Vec3{X: mag}
			}
		})
		return "packet contents replaced (trajectory hijack)", nil

	case VariantMathDrift:
		// A growing drift on the control software's sin/cos evaluations:
		// small values skew the inverse-kinematics solution (the arm
		// wanders), large values push the arccosine argument out of range
		// and IK fails outright — Table I's "Unwanted state (IK-fail)".
		drift := vc.Magnitude
		if drift == 0 {
			// A decayed sine (sin 52deg + drift < 0) collapses the
			// arccosine domain: inverse kinematics fails outright and the
			// arm freezes at its last valid setpoint.
			drift = -0.9
		}
		start := vc.StartAt
		cfg.Control.TrigDrift = func(t float64) float64 {
			if t < start {
				return 0
			}
			return drift
		}
		return "trigonometry drift injected into control software's math calls", nil

	case VariantPLCState:
		cfg.Preload = append(cfg.Preload, &stateByteRewriter{startAt: vc.StartAt})
		return "state byte relayed to PLC forced to E-STOP nibble", nil

	case VariantMotorCommand:
		mag := int16(8000)
		if vc.Magnitude != 0 {
			mag = int16(vc.Magnitude)
		}
		inj, err := NewScenarioB(ScenarioBParams{Value: mag, Channel: 0, ActivationTicks: 0, Seed: vc.Seed})
		if err != nil {
			return "", err
		}
		cfg.Preload = append(cfg.Preload, inj)
		return "motor DAC commands corrupted after safety check", nil

	case VariantEncoderFeedback:
		mag := int32(2000)
		if vc.Magnitude != 0 {
			mag = int32(vc.Magnitude)
		}
		prevFb := cfg.OnFeedbackRead
		cfg.OnFeedbackRead = func(t float64, fb *usb.Feedback) {
			if prevFb != nil {
				prevFb(t, fb)
			}
			if t >= vc.StartAt {
				fb.Encoder[0] += mag
			}
		}
		return "encoder feedback corrupted on read path", nil

	case VariantWatchdogSpoof:
		// Combine a motor-command attack with a wrapper that forges a
		// healthy watchdog and a Pedal Down state nibble on every frame,
		// so the software's halt (stopped watchdog, E-STOP nibble) never
		// reaches the PLC: brakes stay released while the attack runs.
		mag := int16(24000)
		if vc.Magnitude != 0 {
			mag = int16(vc.Magnitude)
		}
		inj, err := NewScenarioB(ScenarioBParams{Value: mag, Channel: 0, ActivationTicks: 0, Seed: vc.Seed})
		if err != nil {
			return "", err
		}
		// The spoofer resolves first so the injector sees the forged
		// Pedal Down nibble and keeps corrupting even after the software
		// tries to halt.
		cfg.Preload = append(cfg.Preload, &watchdogSpoofer{}, inj)
		return "watchdog + state spoofed while motor commands corrupted", nil

	default:
		return "", fmt.Errorf("inject: unknown variant %d", int(vc.Variant))
	}
}

// watchdogSpoofer forges a healthy square wave and a Pedal Down nibble on
// every outgoing frame once the robot has been seen in Pedal Down — the
// same trigger condition the injector uses, so the spoof covers the attack
// from its first frame.
type watchdogSpoofer struct {
	armed bool
	ticks int
}

var _ interpose.Wrapper = (*watchdogSpoofer)(nil)

func (w *watchdogSpoofer) Name() string { return "watchdog-spoofer" }

// spooferState is the spoofer's mutable state.
type spooferState struct {
	armed bool
	ticks int
}

// CaptureSnap implements sim.Snapshotter.
func (w *watchdogSpoofer) CaptureSnap() any { return spooferState{armed: w.armed, ticks: w.ticks} }

// RestoreSnap implements sim.Snapshotter.
func (w *watchdogSpoofer) RestoreSnap(st any) error {
	s, ok := st.(spooferState)
	if !ok {
		return fmt.Errorf("inject: spoofer snapshot has type %T", st)
	}
	w.armed, w.ticks = s.armed, s.ticks
	return nil
}

func (w *watchdogSpoofer) OnWrite(buf []byte) interpose.Verdict {
	if len(buf) != usb.CommandLen {
		return interpose.Pass
	}
	if !w.armed {
		if buf[usb.StateByte]&usb.StateMask == 0x0F {
			w.armed = true
		} else {
			return interpose.Pass
		}
	}
	w.ticks++
	b := byte(0x0F) // Pedal Down nibble
	if (w.ticks/10)%2 == 1 {
		b |= usb.WatchdogBit // forged healthy square wave
	}
	buf[usb.StateByte] = b
	return interpose.Pass
}

func chainInput(prev sim.InputHook, next sim.InputHook) sim.InputHook {
	if prev == nil {
		return next
	}
	return func(t float64, in *control.Input) {
		prev(t, in)
		next(t, in)
	}
}

// stateByteRewriter is the PLC-state variant's wrapper: it rewrites the
// state nibble of command frames headed to the board, so the PLC sees a
// state the software is not in.
type stateByteRewriter struct {
	startAt float64 //ravenlint:snapshot-ignore attack configuration, fixed at construction
	ticks   int
}

var _ interpose.Wrapper = (*stateByteRewriter)(nil)

func (w *stateByteRewriter) Name() string { return "plc-state-rewriter" }

// CaptureSnap implements sim.Snapshotter.
func (w *stateByteRewriter) CaptureSnap() any { return w.ticks }

// RestoreSnap implements sim.Snapshotter.
func (w *stateByteRewriter) RestoreSnap(st any) error {
	ticks, ok := st.(int)
	if !ok {
		return fmt.Errorf("inject: state-rewriter snapshot has type %T", st)
	}
	w.ticks = ticks
	return nil
}

func (w *stateByteRewriter) OnWrite(buf []byte) interpose.Verdict {
	w.ticks++
	if len(buf) != usb.CommandLen {
		return interpose.Pass
	}
	if float64(w.ticks)*control.Period < w.startAt {
		return interpose.Pass
	}
	// Force the E-STOP nibble while preserving the watchdog bit; the PLC
	// engages brakes although the software believes it is operating.
	wd := buf[usb.StateByte] & usb.WatchdogBit
	buf[usb.StateByte] = wd // E-STOP nibble is 0x00
	return interpose.Pass
}
