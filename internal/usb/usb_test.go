package usb

import (
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	cmd := Command{
		StateNibble: 0x0F,
		Watchdog:    true,
		Seq:         42,
		DAC:         [NumChannels]int16{100, -200, 32767, -32768, 0, 7, -7, 1},
	}
	frame := cmd.Encode()
	got, err := DecodeCommand(frame[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != cmd {
		t.Fatalf("round trip: got %+v, want %+v", got, cmd)
	}
}

func TestCommandRoundTripQuick(t *testing.T) {
	f := func(nib, seq byte, wd bool, d0, d1, d2, d3 int16) bool {
		cmd := Command{
			StateNibble: nib & StateMask,
			Watchdog:    wd,
			Seq:         seq,
			DAC:         [NumChannels]int16{d0, d1, d2, d3, d0, d1, d2, d3},
		}
		frame := cmd.Encode()
		got, err := DecodeCommand(frame[:])
		return err == nil && got == cmd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByte0Layout(t *testing.T) {
	// The attack's state inference depends on Byte 0 = state nibble +
	// watchdog in bit 4: 0x0F with watchdog set must read 0x1F.
	cmd := Command{StateNibble: 0x0F, Watchdog: true}
	frame := cmd.Encode()
	if frame[StateByte] != 0x1F {
		t.Fatalf("Byte 0 = %#02x, want 0x1F", frame[StateByte])
	}
	cmd.Watchdog = false
	frame = cmd.Encode()
	if frame[StateByte] != 0x0F {
		t.Fatalf("Byte 0 = %#02x, want 0x0F", frame[StateByte])
	}
}

func TestDecodeCommandWrongLength(t *testing.T) {
	if _, err := DecodeCommand(make([]byte, CommandLen-1)); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, err := DecodeCommand(make([]byte, CommandLen+1)); err == nil {
		t.Fatal("long frame accepted")
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	fb := Feedback{
		StatusEcho: 0x17,
		Seq:        9,
		Encoder:    [NumChannels]int32{1, -1, 1 << 30, -(1 << 30), 0, 5, -5, 123456},
	}
	frame := fb.Encode()
	got, err := DecodeFeedback(frame[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != fb {
		t.Fatalf("round trip: got %+v, want %+v", got, fb)
	}
}

func TestDecodeFeedbackWrongLength(t *testing.T) {
	if _, err := DecodeFeedback(make([]byte, FeedbackLen+3)); err == nil {
		t.Fatal("wrong-length feedback accepted")
	}
}

func TestBoardAppliesCommandsWithoutIntegrityCheck(t *testing.T) {
	// The vulnerability under study: the board latches whatever DAC values
	// arrive, including values far beyond the software safety threshold.
	b := NewBoard()
	cmd := Command{StateNibble: 0x0F, Seq: 1, DAC: [NumChannels]int16{32767, -32768}}
	frame := cmd.Encode()
	if err := b.Receive(frame[:]); err != nil {
		t.Fatal(err)
	}
	if b.DAC(0) != 32767 || b.DAC(1) != -32768 {
		t.Fatalf("board DACs = %v", b.DACs())
	}
}

func TestBoardDropsMalformedFrames(t *testing.T) {
	b := NewBoard()
	good := Command{Seq: 1, DAC: [NumChannels]int16{5}}.Encode()
	if err := b.Receive(good[:]); err != nil {
		t.Fatal(err)
	}
	if err := b.Receive([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed frame accepted")
	}
	if b.DAC(0) != 5 {
		t.Fatal("malformed frame disturbed the latched command")
	}
	rx, bad := b.Stats()
	if rx != 1 || bad != 1 {
		t.Fatalf("stats = %d, %d", rx, bad)
	}
}

func TestBoardStatusRelay(t *testing.T) {
	b := NewBoard()
	if _, ok := b.StatusByte(); ok {
		t.Fatal("status available before any command")
	}
	cmd := Command{StateNibble: 0x0F, Watchdog: true, Seq: 3}
	frame := cmd.Encode()
	if err := b.Receive(frame[:]); err != nil {
		t.Fatal(err)
	}
	status, ok := b.StatusByte()
	if !ok || status != 0x1F {
		t.Fatalf("status = %#02x, %v", status, ok)
	}
	if b.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", b.LastSeq())
	}
}

func TestBoardFeedbackPath(t *testing.T) {
	b := NewBoard()
	cmd := Command{StateNibble: 0x07, Seq: 11}
	frame := cmd.Encode()
	if err := b.Receive(frame[:]); err != nil {
		t.Fatal(err)
	}
	counts := [NumChannels]int32{100, 200, -300}
	b.SetEncoders(counts)
	fbFrame := b.ReadFeedback()
	fb, err := DecodeFeedback(fbFrame[:])
	if err != nil {
		t.Fatal(err)
	}
	if fb.Encoder != counts {
		t.Fatalf("encoders = %v", fb.Encoder)
	}
	if fb.Seq != 11 {
		t.Fatalf("feedback seq = %d", fb.Seq)
	}
	if fb.StatusEcho != 0x07 {
		t.Fatalf("status echo = %#02x", fb.StatusEcho)
	}
}

func TestBoardDACOutOfRangeChannel(t *testing.T) {
	b := NewBoard()
	if b.DAC(-1) != 0 || b.DAC(NumChannels) != 0 {
		t.Fatal("out-of-range channel must read 0")
	}
}
