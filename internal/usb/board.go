package usb

import "fmt"

// Board emulates one custom 8-channel USB interface board: the commodity
// programmable device that receives command frames from the control
// software, drives the DACs feeding the motor amplifiers, reads the motor
// encoders back, and relays the state/watchdog byte to the PLC safety
// processor.
//
// The board trusts its input completely. It does not validate DAC values
// against safety limits and does not authenticate the sender — the paper's
// fuzzing result ("the integrity of the packets is not checked after the
// USB boards receive them") is reproduced by construction.
type Board struct {
	lastCmd     Command
	haveCmd     bool
	encoders    [NumChannels]int32
	encoderSeq  byte
	rxCount     int
	malformedRx int

	// stalled models a hung board firmware: command frames are ignored
	// (so the relayed status byte — and with it the watchdog square wave —
	// freezes) and the feedback frame is frozen at its stall-entry value.
	stalled    bool
	stallFrame []byte
	stallDrops int

	// readFault, when set, may corrupt the raw feedback frame on its way
	// to the control software — the board-level accidental-fault hook
	// (see internal/fault). It may return a frame of any length;
	// wrong-length frames are undecodable upstream.
	readFault func(frame []byte) []byte //ravenlint:snapshot-ignore fault-hook wiring; hook state is its own snapshotter

	// fbScratch backs the frame ReadFeedback returns, so the per-cycle
	// read stays allocation-free. The frame is only valid until the next
	// ReadFeedback call — the control loop decodes it immediately.
	fbScratch [FeedbackLen]byte //ravenlint:snapshot-ignore per-read scratch, valid only until the next read
}

// NewBoard returns a board with all DACs at zero.
func NewBoard() *Board { return &Board{} }

// errBoardStalled is pre-allocated: a stalled board rejects a frame every
// control cycle for the stall's whole duration.
var errBoardStalled = fmt.Errorf("usb: board stalled: frame ignored")

// Receive accepts one command frame exactly as a write() to the board's
// endpoint would. Malformed (wrong-length) frames are counted and dropped,
// matching hardware that ignores short transfers; well-formed frames are
// applied without any further checking.
func (b *Board) Receive(frame []byte) error {
	if b.stalled {
		b.stallDrops++
		return errBoardStalled
	}
	cmd, err := DecodeCommand(frame)
	if err != nil {
		b.malformedRx++
		// Returned unwrapped: a stall or corruption fault rejects a frame
		// every cycle, and each wrap would be a fresh heap error.
		return err
	}
	b.lastCmd = cmd
	b.haveCmd = true
	b.rxCount++
	return nil
}

// DAC returns the value currently driving channel ch's amplifier.
// Channels with no command yet received sit at zero.
func (b *Board) DAC(ch int) int16 {
	if !b.haveCmd || ch < 0 || ch >= NumChannels {
		return 0
	}
	return b.lastCmd.DAC[ch]
}

// DACs returns all channel outputs.
func (b *Board) DACs() [NumChannels]int16 {
	if !b.haveCmd {
		return [NumChannels]int16{}
	}
	return b.lastCmd.DAC
}

// StatusByte returns the last received Byte 0 (state nibble + watchdog bit)
// as relayed to the PLC safety processor, and whether any command has been
// received yet.
func (b *Board) StatusByte() (byte, bool) {
	if !b.haveCmd {
		return 0, false
	}
	status := b.lastCmd.StateNibble
	if b.lastCmd.Watchdog {
		status |= WatchdogBit
	}
	return status, true
}

// LastSeq returns the sequence number of the last executed command.
func (b *Board) LastSeq() byte { return b.lastCmd.Seq }

// SetEncoders latches the encoder counts read from the motors; the plant
// calls this each control tick.
func (b *Board) SetEncoders(counts [NumChannels]int32) {
	b.encoders = counts
	b.encoderSeq = b.lastCmd.Seq
}

// ReadFeedback produces the feedback frame the control software reads back
// each cycle. A stalled board ships the frame frozen at stall entry; an
// installed read-fault hook may then corrupt the bytes (or change the
// length, making the frame undecodable).
func (b *Board) ReadFeedback() []byte {
	frame := b.fbScratch[:]
	if b.stalled {
		frame = append(frame[:0], b.stallFrame...)
	} else {
		b.fbScratch = b.liveFeedback().Encode()
	}
	if b.readFault != nil {
		frame = b.readFault(frame)
	}
	return frame
}

// liveFeedback composes the current (un-stalled, un-faulted) feedback.
func (b *Board) liveFeedback() Feedback {
	status, _ := b.StatusByte()
	return Feedback{
		StatusEcho: status,
		Seq:        b.encoderSeq,
		Encoder:    b.encoders,
	}
}

// SetReadFault installs (or, with nil, removes) the board-level feedback
// corruption hook. The hook runs on every ReadFeedback, exactly once per
// control cycle, and may return a mutated or resized frame.
func (b *Board) SetReadFault(f func(frame []byte) []byte) { b.readFault = f }

// SetStalled drives the board in or out of the hung-firmware state. On
// entry the current feedback frame is latched; while stalled, received
// command frames are counted and discarded, so the status byte the PLC
// supervises stops changing and the watchdog square wave goes flat.
func (b *Board) SetStalled(stalled bool) {
	if stalled && !b.stalled {
		f := b.liveFeedback().Encode()
		b.stallFrame = append([]byte(nil), f[:]...)
	}
	b.stalled = stalled
}

// Stalled reports whether the board is in the hung-firmware state.
func (b *Board) Stalled() bool { return b.stalled }

// StallDrops returns how many command frames a stalled board discarded.
func (b *Board) StallDrops() int { return b.stallDrops }

// Stats returns (frames accepted, malformed frames dropped).
func (b *Board) Stats() (received, malformed int) {
	return b.rxCount, b.malformedRx
}

// State is the board's mutable state, for checkpoint/restore. The
// read-fault hook is configuration and stays with the target board.
type State struct {
	LastCmd     Command
	HaveCmd     bool
	Encoders    [NumChannels]int32
	EncoderSeq  byte
	RxCount     int
	MalformedRx int
	Stalled     bool
	StallFrame  []byte
	StallDrops  int
}

// CaptureState returns a copy of the board's mutable state.
func (b *Board) CaptureState() State {
	s := State{
		LastCmd: b.lastCmd, HaveCmd: b.haveCmd,
		Encoders: b.encoders, EncoderSeq: b.encoderSeq,
		RxCount: b.rxCount, MalformedRx: b.malformedRx,
		Stalled: b.stalled, StallDrops: b.stallDrops,
	}
	if b.stallFrame != nil {
		s.StallFrame = append([]byte(nil), b.stallFrame...)
	}
	return s
}

// RestoreState rewinds the board to a captured state.
func (b *Board) RestoreState(s State) {
	b.lastCmd, b.haveCmd = s.LastCmd, s.HaveCmd
	b.encoders, b.encoderSeq = s.Encoders, s.EncoderSeq
	b.rxCount, b.malformedRx = s.RxCount, s.MalformedRx
	b.stalled, b.stallDrops = s.Stalled, s.StallDrops
	b.stallFrame = nil
	if s.StallFrame != nil {
		b.stallFrame = append([]byte(nil), s.StallFrame...)
	}
}
