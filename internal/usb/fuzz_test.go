package usb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeCommandArbitraryBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		frame := make([]byte, CommandLen)
		rng.Read(frame)
		cmd, err := DecodeCommand(frame)
		if err != nil {
			t.Fatalf("well-sized random frame rejected: %v", err)
		}
		// Re-encoding must reproduce the wire bytes except any high bits
		// of Byte 0 beyond the defined layout (the codec masks them).
		back := cmd.Encode()
		for b := 1; b < CommandLen; b++ {
			if back[b] != frame[b] {
				t.Fatalf("byte %d changed across decode/encode: %#02x -> %#02x", b, frame[b], back[b])
			}
		}
		if back[0]&(StateMask|WatchdogBit) != frame[0]&(StateMask|WatchdogBit) {
			t.Fatalf("Byte 0 layout bits changed: %#02x -> %#02x", frame[0], back[0])
		}
	}
}

func TestDecodeFeedbackArbitraryBytesRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := make([]byte, FeedbackLen)
		rng.Read(frame)
		fb, err := DecodeFeedback(frame)
		if err != nil {
			return false
		}
		back := fb.Encode()
		for i := range frame {
			if back[i] != frame[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFeedbackWrongLengthErrorsCleanly(t *testing.T) {
	// Any frame that is not exactly FeedbackLen bytes — the shapes the
	// fault injector's dropout produces — must yield an error, never a
	// panic or a half-decoded feedback.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(2 * FeedbackLen)
		if n == FeedbackLen {
			n++
		}
		junk := make([]byte, n)
		rng.Read(junk)
		fb, err := DecodeFeedback(junk)
		if err == nil {
			t.Fatalf("length-%d frame decoded", n)
		}
		if fb != (Feedback{}) {
			t.Fatalf("length-%d frame returned non-zero feedback %+v alongside error", n, fb)
		}
	}
	if _, err := DecodeFeedback(nil); err == nil {
		t.Fatal("nil frame decoded")
	}
}

func TestBoardReadFaultGarbageNeverPanics(t *testing.T) {
	// A hostile read-fault hook may hand back garbage of any length;
	// ReadFeedback must pass it through untouched and the decode stage
	// must fail cleanly.
	b := NewBoard()
	rng := rand.New(rand.NewSource(13))
	b.SetReadFault(func(frame []byte) []byte {
		junk := make([]byte, rng.Intn(64))
		rng.Read(junk)
		return junk
	})
	for i := 0; i < 2000; i++ {
		frame := b.ReadFeedback()
		if _, err := DecodeFeedback(frame); err == nil && len(frame) != FeedbackLen {
			t.Fatalf("length-%d frame decoded", len(frame))
		}
	}
}

func TestBoardStallFreezesFeedbackAndDropsCommands(t *testing.T) {
	// A stalled board must freeze its feedback frame, reject incoming
	// command frames (counting them) and resume cleanly afterwards.
	b := NewBoard()
	b.SetEncoders([NumChannels]int32{100, 200, 300})
	before := b.ReadFeedback()

	b.SetStalled(true)
	if !b.Stalled() {
		t.Fatal("board not stalled after SetStalled(true)")
	}
	good := Command{StateNibble: 0x0F, Seq: 3, DAC: [NumChannels]int16{42}}.Encode()
	if err := b.Receive(good[:]); err == nil {
		t.Fatal("stalled board accepted a command frame")
	}
	if b.StallDrops() != 1 {
		t.Fatalf("StallDrops = %d, want 1", b.StallDrops())
	}
	b.SetEncoders([NumChannels]int32{999, 999, 999})
	frozen := b.ReadFeedback()
	for i := range before {
		if frozen[i] != before[i] {
			t.Fatalf("stalled feedback changed at byte %d: %#02x -> %#02x", i, before[i], frozen[i])
		}
	}

	b.SetStalled(false)
	if err := b.Receive(good[:]); err != nil {
		t.Fatalf("recovered board rejected a good frame: %v", err)
	}
	fb, err := DecodeFeedback(b.ReadFeedback())
	if err != nil {
		t.Fatal(err)
	}
	if fb.Encoder[0] != 999 {
		t.Fatalf("recovered feedback still frozen: %+v", fb)
	}
}

func TestBoardSurvivesGarbageStream(t *testing.T) {
	// A board fed random garbage of random lengths must never panic and
	// must keep serving its last well-formed command.
	b := NewBoard()
	good := Command{StateNibble: 0x0F, Seq: 9, DAC: [NumChannels]int16{123}}.Encode()
	if err := b.Receive(good[:]); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		if n == CommandLen {
			n++ // keep every frame malformed in this storm
		}
		junk := make([]byte, n)
		rng.Read(junk)
		_ = b.Receive(junk) // errors expected; must not disturb state
	}
	if b.DAC(0) != 123 || b.LastSeq() != 9 {
		t.Fatalf("garbage storm disturbed the latched command: DAC0=%d seq=%d", b.DAC(0), b.LastSeq())
	}
	if rx, bad := b.Stats(); rx != 1 || bad != 2000 {
		t.Fatalf("stats = %d/%d", rx, bad)
	}
}
