package usb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeCommandArbitraryBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		frame := make([]byte, CommandLen)
		rng.Read(frame)
		cmd, err := DecodeCommand(frame)
		if err != nil {
			t.Fatalf("well-sized random frame rejected: %v", err)
		}
		// Re-encoding must reproduce the wire bytes except any high bits
		// of Byte 0 beyond the defined layout (the codec masks them).
		back := cmd.Encode()
		for b := 1; b < CommandLen; b++ {
			if back[b] != frame[b] {
				t.Fatalf("byte %d changed across decode/encode: %#02x -> %#02x", b, frame[b], back[b])
			}
		}
		if back[0]&(StateMask|WatchdogBit) != frame[0]&(StateMask|WatchdogBit) {
			t.Fatalf("Byte 0 layout bits changed: %#02x -> %#02x", frame[0], back[0])
		}
	}
}

func TestDecodeFeedbackArbitraryBytesRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := make([]byte, FeedbackLen)
		rng.Read(frame)
		fb, err := DecodeFeedback(frame)
		if err != nil {
			return false
		}
		back := fb.Encode()
		for i := range frame {
			if back[i] != frame[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoardSurvivesGarbageStream(t *testing.T) {
	// A board fed random garbage of random lengths must never panic and
	// must keep serving its last well-formed command.
	b := NewBoard()
	good := Command{StateNibble: 0x0F, Seq: 9, DAC: [NumChannels]int16{123}}.Encode()
	if err := b.Receive(good[:]); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		if n == CommandLen {
			n++ // keep every frame malformed in this storm
		}
		junk := make([]byte, n)
		rng.Read(junk)
		_ = b.Receive(junk) // errors expected; must not disturb state
	}
	if b.DAC(0) != 123 || b.LastSeq() != 9 {
		t.Fatalf("garbage storm disturbed the latched command: DAC0=%d seq=%d", b.DAC(0), b.LastSeq())
	}
	if rx, bad := b.Stats(); rx != 1 || bad != 2000 {
		t.Fatalf("stats = %d/%d", rx, bad)
	}
}
