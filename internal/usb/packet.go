// Package usb implements the packet protocol spoken between the RAVEN
// control software and the custom 8-channel USB interface boards, and an
// emulation of the board itself.
//
// The command packet is the 18-byte frame whose byte-level structure the
// paper's attacker reverse-engineers (Figures 5-6): Byte 0 carries the
// operational-state nibble in its low four bits and the square-wave
// watchdog signal in bit 4; Byte 1 is a free-running sequence counter; the
// remaining 16 bytes are eight little-endian int16 DAC commands, one per
// motor channel. Crucially — and this is the vulnerability attack scenario
// B exploits — the board performs no integrity check on received frames:
// whatever DAC values arrive are applied to the motor amplifiers.
package usb

import (
	"encoding/binary"
	"fmt"
)

// Decode errors are pre-allocated sentinels: under frame-corruption faults
// a decode failure fires every control cycle, and formatting a fresh error
// each time dominated campaign allocation profiles. Callers only branch on
// err != nil (malformed frames are counted and dropped, like the hardware).
var (
	ErrCommandFrameLen  = fmt.Errorf("usb: command frame length mismatch (want %d)", CommandLen)
	ErrFeedbackFrameLen = fmt.Errorf("usb: feedback frame length mismatch (want %d)", FeedbackLen)
)

// Geometry of the command frame.
const (
	CommandLen  = 18 // bytes per command packet
	NumChannels = 8  // DAC/encoder channels per board

	// StateByte is the offset of the state/watchdog byte that leaks the
	// robot's operational state to anyone who can observe the write path.
	StateByte = 0
	// SeqByte is the offset of the sequence counter.
	SeqByte = 1
	// DACBase is the offset of the first DAC channel.
	DACBase = 2

	// WatchdogBit is the bit of Byte 0 that carries the PLC watchdog
	// square wave ("the fifth bit toggles periodically between 0 and 1").
	WatchdogBit = 0x10
	// StateMask extracts the operational-state nibble from Byte 0.
	StateMask = 0x0F
)

// Command is the decoded form of a command frame.
type Command struct {
	StateNibble byte // low 4 bits of Byte 0
	Watchdog    bool // bit 4 of Byte 0
	Seq         byte // Byte 1
	DAC         [NumChannels]int16
}

// Encode serialises the command into an 18-byte frame.
func (c Command) Encode() [CommandLen]byte {
	var frame [CommandLen]byte
	frame[StateByte] = c.StateNibble & StateMask
	if c.Watchdog {
		frame[StateByte] |= WatchdogBit
	}
	frame[SeqByte] = c.Seq
	for ch := 0; ch < NumChannels; ch++ {
		binary.LittleEndian.PutUint16(frame[DACBase+2*ch:], uint16(c.DAC[ch]))
	}
	return frame
}

// DecodeCommand parses an 18-byte frame. It returns an error only for a
// wrong length: the board itself accepts any content (no integrity check),
// so neither does the decoder.
func DecodeCommand(frame []byte) (Command, error) {
	if len(frame) != CommandLen {
		return Command{}, ErrCommandFrameLen
	}
	var c Command
	c.StateNibble = frame[StateByte] & StateMask
	c.Watchdog = frame[StateByte]&WatchdogBit != 0
	c.Seq = frame[SeqByte]
	for ch := 0; ch < NumChannels; ch++ {
		c.DAC[ch] = int16(binary.LittleEndian.Uint16(frame[DACBase+2*ch:]))
	}
	return c, nil
}

// Geometry of the feedback frame (board -> control software): a status echo,
// the sequence number of the last executed command, and eight little-endian
// int32 encoder counts.
const (
	FeedbackLen     = 2 + 4*NumChannels
	FeedbackEncBase = 2
)

// Feedback is the decoded form of a feedback frame read back from the board.
type Feedback struct {
	StatusEcho byte // echo of the last command's Byte 0
	Seq        byte
	Encoder    [NumChannels]int32 // quadrature counts per channel
}

// Encode serialises the feedback frame.
func (f Feedback) Encode() [FeedbackLen]byte {
	var frame [FeedbackLen]byte
	frame[0] = f.StatusEcho
	frame[1] = f.Seq
	for ch := 0; ch < NumChannels; ch++ {
		binary.LittleEndian.PutUint32(frame[FeedbackEncBase+4*ch:], uint32(f.Encoder[ch]))
	}
	return frame
}

// DecodeFeedback parses a feedback frame.
func DecodeFeedback(frame []byte) (Feedback, error) {
	if len(frame) != FeedbackLen {
		return Feedback{}, ErrFeedbackFrameLen
	}
	var f Feedback
	f.StatusEcho = frame[0]
	f.Seq = frame[1]
	for ch := 0; ch < NumChannels; ch++ {
		f.Encoder[ch] = int32(binary.LittleEndian.Uint32(frame[FeedbackEncBase+4*ch:]))
	}
	return f, nil
}
