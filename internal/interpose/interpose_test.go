package interpose

import (
	"errors"
	"testing"
)

// recorder is a wrapper that records frames and can mutate or drop them.
type recorder struct {
	name   string
	seen   [][]byte
	mutate func(buf []byte) Verdict
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) OnWrite(buf []byte) Verdict {
	cp := make([]byte, len(buf))
	copy(cp, buf)
	r.seen = append(r.seen, cp)
	if r.mutate != nil {
		return r.mutate(buf)
	}
	return Pass
}

func TestPassThrough(t *testing.T) {
	var got []byte
	c := NewChain(func(buf []byte) error {
		got = append([]byte(nil), buf...)
		return nil
	})
	if err := c.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("target saw %v", got)
	}
}

func TestWrapperObservesAndMutates(t *testing.T) {
	// The malicious-wrapper power: see the buffer, change a byte, and the
	// target receives the changed frame.
	var got []byte
	c := NewChain(func(buf []byte) error {
		got = append([]byte(nil), buf...)
		return nil
	})
	evil := &recorder{name: "evil", mutate: func(buf []byte) Verdict {
		buf[1] = 0xAA
		return Pass
	}}
	c.Preload(evil)
	if err := c.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got[1] != 0xAA {
		t.Fatalf("mutation lost: target saw %v", got)
	}
	if len(evil.seen) != 1 {
		t.Fatalf("wrapper saw %d frames", len(evil.seen))
	}
}

func TestDropStopsPropagation(t *testing.T) {
	reached := false
	c := NewChain(func(buf []byte) error { reached = true; return nil })
	below := &recorder{name: "below"}
	c.Append(below)
	c.Preload(&recorder{name: "dropper", mutate: func([]byte) Verdict { return Drop }})
	if err := c.Write([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("dropped frame reached the target")
	}
	if len(below.seen) != 0 {
		t.Fatal("dropped frame reached a lower wrapper")
	}
	if _, dropped := c.Stats(); dropped != 1 {
		t.Fatalf("dropped count = %d", dropped)
	}
}

func TestPreloadOrderFirstLoadedRunsFirst(t *testing.T) {
	var order []string
	mk := func(name string) *recorder {
		return &recorder{name: name, mutate: func([]byte) Verdict {
			order = append(order, name)
			return Pass
		}}
	}
	c := NewChain(func([]byte) error { return nil })
	c.Preload(mk("first"))
	c.Preload(mk("second")) // preloaded later resolves earlier
	if err := c.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("invocation order = %v", order)
	}
}

func TestAppendRunsBelowPreloads(t *testing.T) {
	var order []string
	mk := func(name string) *recorder {
		return &recorder{name: name, mutate: func([]byte) Verdict {
			order = append(order, name)
			return Pass
		}}
	}
	c := NewChain(func([]byte) error { return nil })
	c.Append(mk("guard"))
	c.Preload(mk("malware"))
	if err := c.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if order[0] != "malware" || order[1] != "guard" {
		t.Fatalf("order = %v: guard must sit below malware", order)
	}
}

func TestGuardSeesMalwareMutation(t *testing.T) {
	// Crucial placement property: a defense appended at the bottom sees
	// the frame AFTER the malicious wrapper modified it.
	c := NewChain(func([]byte) error { return nil })
	guard := &recorder{name: "guard"}
	c.Append(guard)
	c.Preload(&recorder{name: "malware", mutate: func(buf []byte) Verdict {
		buf[0] = 0xFF
		return Pass
	}})
	if err := c.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if guard.seen[0][0] != 0xFF {
		t.Fatalf("guard saw %#02x, want the post-attack value 0xFF", guard.seen[0][0])
	}
}

func TestRemove(t *testing.T) {
	c := NewChain(func([]byte) error { return nil })
	c.Preload(&recorder{name: "a"})
	c.Preload(&recorder{name: "b"})
	if !c.Remove("a") {
		t.Fatal("Remove(a) failed")
	}
	if c.Remove("a") {
		t.Fatal("Remove(a) succeeded twice")
	}
	if ws := c.Wrappers(); len(ws) != 1 || ws[0] != "b" {
		t.Fatalf("wrappers = %v", ws)
	}
}

func TestNoTarget(t *testing.T) {
	c := NewChain(nil)
	if err := c.Write([]byte{1}); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestTargetErrorWrapped(t *testing.T) {
	wantErr := errors.New("bus stall")
	c := NewChain(func([]byte) error { return wantErr })
	if err := c.Write([]byte{1}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped bus stall", err)
	}
}

func TestStatsCountWrites(t *testing.T) {
	c := NewChain(func([]byte) error { return nil })
	for i := 0; i < 7; i++ {
		if err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if writes, _ := c.Stats(); writes != 7 {
		t.Fatalf("writes = %d", writes)
	}
}

// TestHoldResume pins the held-frame seam: a Hold parks the frame at the
// holder, ResumeHeld delivers the holder's final buffer mutations to the
// wrappers below and the target, and the chain stats end up identical to
// a straight Pass.
func TestHoldResume(t *testing.T) {
	var got []byte
	below := &recorder{name: "below"}
	holder := &recorder{name: "holder", mutate: func(buf []byte) Verdict { return Hold }}
	c := NewChain(func(buf []byte) error {
		got = append([]byte(nil), buf...)
		return nil
	})
	c.Append(holder).Append(below)

	frame := []byte{1, 2, 3}
	if err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	if got != nil || len(below.seen) != 0 {
		t.Fatal("held frame must not propagate before ResumeHeld")
	}
	if !c.HoldPending() {
		t.Fatal("HoldPending must report the parked frame")
	}
	// A second write while held is a caller bug, not a silent drop.
	if err := c.Write([]byte{9}); !errors.Is(err, ErrHeldFrame) {
		t.Fatalf("write while held: err = %v, want ErrHeldFrame", err)
	}
	frame[1] = 42 // the holder finishing its mutation before resume
	if err := c.ResumeHeld(); err != nil {
		t.Fatal(err)
	}
	if c.HoldPending() {
		t.Fatal("HoldPending must clear after resume")
	}
	if len(below.seen) != 1 || below.seen[0][1] != 42 {
		t.Fatalf("wrapper below saw %v, want the mutated frame", below.seen)
	}
	if len(got) != 3 || got[1] != 42 {
		t.Fatalf("target saw %v, want the mutated frame", got)
	}
	// One successful write (the rejected while-held attempt is uncounted).
	if writes, dropped := c.Stats(); writes != 1 || dropped != 0 {
		t.Fatalf("stats = %d writes %d dropped; hold+resume must count like a pass", writes, dropped)
	}
	if err := c.ResumeHeld(); !errors.Is(err, ErrHeldFrame) {
		t.Fatalf("resume with nothing held: err = %v, want ErrHeldFrame", err)
	}
}

// TestHoldThenDropBelow checks a frame resumed into a dropping wrapper is
// counted dropped, exactly as the scalar path would.
func TestHoldThenDropBelow(t *testing.T) {
	holder := &recorder{name: "holder", mutate: func(buf []byte) Verdict { return Hold }}
	dropper := &recorder{name: "dropper", mutate: func(buf []byte) Verdict { return Drop }}
	reached := false
	c := NewChain(func(buf []byte) error { reached = true; return nil })
	c.Append(holder).Append(dropper)
	if err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.ResumeHeld(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("dropped frame reached the target")
	}
	if _, dropped := c.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}
