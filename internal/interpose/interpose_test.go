package interpose

import (
	"errors"
	"testing"
)

// recorder is a wrapper that records frames and can mutate or drop them.
type recorder struct {
	name   string
	seen   [][]byte
	mutate func(buf []byte) Verdict
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) OnWrite(buf []byte) Verdict {
	cp := make([]byte, len(buf))
	copy(cp, buf)
	r.seen = append(r.seen, cp)
	if r.mutate != nil {
		return r.mutate(buf)
	}
	return Pass
}

func TestPassThrough(t *testing.T) {
	var got []byte
	c := NewChain(func(buf []byte) error {
		got = append([]byte(nil), buf...)
		return nil
	})
	if err := c.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("target saw %v", got)
	}
}

func TestWrapperObservesAndMutates(t *testing.T) {
	// The malicious-wrapper power: see the buffer, change a byte, and the
	// target receives the changed frame.
	var got []byte
	c := NewChain(func(buf []byte) error {
		got = append([]byte(nil), buf...)
		return nil
	})
	evil := &recorder{name: "evil", mutate: func(buf []byte) Verdict {
		buf[1] = 0xAA
		return Pass
	}}
	c.Preload(evil)
	if err := c.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got[1] != 0xAA {
		t.Fatalf("mutation lost: target saw %v", got)
	}
	if len(evil.seen) != 1 {
		t.Fatalf("wrapper saw %d frames", len(evil.seen))
	}
}

func TestDropStopsPropagation(t *testing.T) {
	reached := false
	c := NewChain(func(buf []byte) error { reached = true; return nil })
	below := &recorder{name: "below"}
	c.Append(below)
	c.Preload(&recorder{name: "dropper", mutate: func([]byte) Verdict { return Drop }})
	if err := c.Write([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("dropped frame reached the target")
	}
	if len(below.seen) != 0 {
		t.Fatal("dropped frame reached a lower wrapper")
	}
	if _, dropped := c.Stats(); dropped != 1 {
		t.Fatalf("dropped count = %d", dropped)
	}
}

func TestPreloadOrderFirstLoadedRunsFirst(t *testing.T) {
	var order []string
	mk := func(name string) *recorder {
		return &recorder{name: name, mutate: func([]byte) Verdict {
			order = append(order, name)
			return Pass
		}}
	}
	c := NewChain(func([]byte) error { return nil })
	c.Preload(mk("first"))
	c.Preload(mk("second")) // preloaded later resolves earlier
	if err := c.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("invocation order = %v", order)
	}
}

func TestAppendRunsBelowPreloads(t *testing.T) {
	var order []string
	mk := func(name string) *recorder {
		return &recorder{name: name, mutate: func([]byte) Verdict {
			order = append(order, name)
			return Pass
		}}
	}
	c := NewChain(func([]byte) error { return nil })
	c.Append(mk("guard"))
	c.Preload(mk("malware"))
	if err := c.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if order[0] != "malware" || order[1] != "guard" {
		t.Fatalf("order = %v: guard must sit below malware", order)
	}
}

func TestGuardSeesMalwareMutation(t *testing.T) {
	// Crucial placement property: a defense appended at the bottom sees
	// the frame AFTER the malicious wrapper modified it.
	c := NewChain(func([]byte) error { return nil })
	guard := &recorder{name: "guard"}
	c.Append(guard)
	c.Preload(&recorder{name: "malware", mutate: func(buf []byte) Verdict {
		buf[0] = 0xFF
		return Pass
	}})
	if err := c.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if guard.seen[0][0] != 0xFF {
		t.Fatalf("guard saw %#02x, want the post-attack value 0xFF", guard.seen[0][0])
	}
}

func TestRemove(t *testing.T) {
	c := NewChain(func([]byte) error { return nil })
	c.Preload(&recorder{name: "a"})
	c.Preload(&recorder{name: "b"})
	if !c.Remove("a") {
		t.Fatal("Remove(a) failed")
	}
	if c.Remove("a") {
		t.Fatal("Remove(a) succeeded twice")
	}
	if ws := c.Wrappers(); len(ws) != 1 || ws[0] != "b" {
		t.Fatalf("wrappers = %v", ws)
	}
}

func TestNoTarget(t *testing.T) {
	c := NewChain(nil)
	if err := c.Write([]byte{1}); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("err = %v, want ErrNoTarget", err)
	}
}

func TestTargetErrorWrapped(t *testing.T) {
	wantErr := errors.New("bus stall")
	c := NewChain(func([]byte) error { return wantErr })
	if err := c.Write([]byte{1}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped bus stall", err)
	}
}

func TestStatsCountWrites(t *testing.T) {
	c := NewChain(func([]byte) error { return nil })
	for i := 0; i < 7; i++ {
		if err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if writes, _ := c.Stats(); writes != 7 {
		t.Fatalf("writes = %d", writes)
	}
}
