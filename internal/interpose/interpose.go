// Package interpose emulates the Linux dynamic-linker interposition
// mechanism (LD_PRELOAD / /etc/ld.so.preload) that the paper's malware uses
// to wrap the write system call: a chain of wrappers sits between the
// control software's USB write and the interface board, each able to
// observe the buffer, mutate it, drop it, or pass it through — exactly the
// powers a preloaded shared library has over a wrapped libc call.
//
// The chain is also where defenses live: the paper's dynamic model-based
// detector is inserted at the bottom of the chain (closest to the
// hardware), below any malicious wrapper, reflecting its proposed placement
// "at lower layers of the control structure and just before the commands
// are going to be executed on the physical robot".
package interpose

import "errors"

// Verdict is a wrapper's decision about a frame.
type Verdict int

// Verdicts.
const (
	// Pass forwards the (possibly mutated) frame to the next wrapper.
	Pass Verdict = iota + 1
	// Drop silently discards the frame; the underlying write never happens.
	Drop
	// Hold parks the frame at the returning wrapper: Write returns nil
	// without the frame reaching the wrappers below or the target, and
	// the chain records where propagation stopped. The caller finishes
	// the write later with ResumeHeld — the seam the fleet's batched
	// guard prediction runs in. A held frame is neither counted dropped
	// nor written twice; Stats after ResumeHeld are identical to a
	// straight Pass.
	Hold
)

// Wrapper observes and may mutate one outgoing frame. buf is the frame
// contents; wrappers may modify it in place (that is the whole point of the
// attack). Returning Drop stops propagation.
type Wrapper interface {
	// Name identifies the wrapper in diagnostics.
	Name() string
	// OnWrite is invoked for every frame written down the chain.
	OnWrite(buf []byte) Verdict
}

// Reslicer is an optional extension of Wrapper: after OnWrite returns
// Pass, a wrapper that also implements Reslicer may replace the frame
// outright — including changing its length. In-place mutation cannot
// express a truncated bus transfer; accidental-fault wrappers (see
// internal/fault) use this to hand the board a short frame, exactly as a
// failing transfer would.
type Reslicer interface {
	// Reslice returns the frame to forward in place of buf (possibly buf
	// itself, possibly shorter). Returning nil forwards an empty frame.
	Reslice(buf []byte) []byte
}

// WriterFunc adapts a function to the final write target (the "real"
// system call).
type WriterFunc func(buf []byte) error

// Chain is an ordered interposition stack over a write target. Wrappers are
// invoked in the order they were preloaded (index 0 first), mirroring the
// loader's symbol-resolution order. The zero value is unusable; use
// NewChain.
type Chain struct {
	wrappers []Wrapper
	target   WriterFunc
	writes   int
	dropped  int

	// Held-frame latch: set when a wrapper returns Hold, consumed by
	// ResumeHeld. Per-tick transient, never live across a control period
	// (the rig resumes every held write within the same step).
	heldBuf  []byte //ravenlint:snapshot-ignore transient within one control period; nil at every snapshot boundary
	heldNext int    //ravenlint:snapshot-ignore index of the wrapper below the holder; meaningless while heldBuf is nil
}

// ErrNoTarget is returned when a chain without a target is written to.
var ErrNoTarget = errors.New("interpose: chain has no write target")

// NewChain builds a chain over the given target write function.
func NewChain(target WriterFunc) *Chain {
	return &Chain{target: target}
}

// Preload pushes a wrapper onto the chain ahead of previously loaded ones,
// the way a new LD_PRELOAD entry resolves before existing libraries. It
// returns the chain for fluent setup.
func (c *Chain) Preload(w Wrapper) *Chain {
	c.wrappers = append([]Wrapper{w}, c.wrappers...)
	return c
}

// Append adds a wrapper at the bottom of the chain (closest to the target);
// this is where hardware-side defenses such as the dynamic-model detector
// are installed, below any malicious preload.
func (c *Chain) Append(w Wrapper) *Chain {
	c.wrappers = append(c.wrappers, w)
	return c
}

// Remove detaches the first wrapper with the given name, reporting whether
// one was found.
func (c *Chain) Remove(name string) bool {
	for i, w := range c.wrappers {
		if w.Name() == name {
			c.wrappers = append(c.wrappers[:i], c.wrappers[i+1:]...)
			return true
		}
	}
	return false
}

// Wrappers lists the names currently installed, top (first-invoked) first.
func (c *Chain) Wrappers() []string {
	names := make([]string, len(c.wrappers))
	for i, w := range c.wrappers {
		names[i] = w.Name()
	}
	return names
}

// ErrHeldFrame is returned when a write is attempted while a previous
// frame is still held, or ResumeHeld is called with nothing held.
var ErrHeldFrame = errors.New("interpose: held-frame state mismatch")

// Write pushes one frame down the chain. Each wrapper may mutate buf in
// place, drop it, or hold it for the caller to resume. The frame reaches
// the target only if every wrapper passes it. A copy is NOT taken: like
// the real syscall path, everyone sees the same buffer.
func (c *Chain) Write(buf []byte) error {
	if c.target == nil {
		return ErrNoTarget
	}
	if c.heldBuf != nil {
		return ErrHeldFrame
	}
	c.writes++
	for i, w := range c.wrappers {
		switch w.OnWrite(buf) {
		case Drop:
			c.dropped++
			return nil
		case Hold:
			c.heldBuf = buf
			c.heldNext = i
			return nil
		}
		if rs, ok := w.(Reslicer); ok {
			buf = rs.Reslice(buf)
		}
	}
	// The target's error is returned as-is: wrapping would allocate on
	// every rejected frame, and fault campaigns reject frames for whole
	// stall windows. Targets already name themselves in their errors.
	return c.target(buf)
}

// HoldPending reports whether a frame is parked awaiting ResumeHeld.
//
//ravenlint:noalloc
func (c *Chain) HoldPending() bool { return c.heldBuf != nil }

// ResumeHeld finishes the write a wrapper parked with Hold, continuing
// exactly as if the holder had returned Pass: the holder's Reslicer (if
// any) applies, then the wrappers below it run, then the target. The
// holder is expected to have finished mutating the buffer — the guard's
// mitigation rewrites happen in AbsorbPrediction, before the rig resumes
// the write. Returns ErrHeldFrame when nothing is held.
//
//ravenlint:noalloc
func (c *Chain) ResumeHeld() error {
	buf := c.heldBuf
	if buf == nil {
		return ErrHeldFrame
	}
	i := c.heldNext
	c.heldBuf = nil
	if rs, ok := c.wrappers[i].(Reslicer); ok {
		buf = rs.Reslice(buf)
	}
	for _, w := range c.wrappers[i+1:] {
		switch w.OnWrite(buf) {
		case Drop:
			c.dropped++
			return nil
		case Hold:
			// A second hold below the first would deadlock the tick;
			// treat it as a drop so the frame cannot leak.
			c.dropped++
			return nil
		}
		if rs, ok := w.(Reslicer); ok {
			buf = rs.Reslice(buf)
		}
	}
	return c.target(buf)
}

// Stats returns (total writes entering the chain, frames dropped by
// wrappers).
func (c *Chain) Stats() (writes, dropped int) { return c.writes, c.dropped }

// SetStats restores the chain counters (checkpoint/restore).
func (c *Chain) SetStats(writes, dropped int) { c.writes, c.dropped = writes, dropped }

// Each visits every installed wrapper, top (first-invoked) first. The rig's
// checkpoint machinery uses this to reach stateful wrappers (malware,
// fault injectors, the guard) without the chain knowing their types.
func (c *Chain) Each(f func(w Wrapper)) {
	for _, w := range c.wrappers {
		f(w)
	}
}
