package interpose

import (
	"errors"
	"testing"
)

// Error-path pins for the held-frame protocol, independent of the fleet
// worker that normally drives it: the ErrHeldFrame refusals and the
// second-Hold degradation are load-bearing for the heldframe lint rules
// ("Chain.Write returns ErrHeldFrame at runtime", "double hold degrades
// to a dropped frame"), so each is held in place by a unit test here.

// TestWriteWhileHeldLeavesFrameParked: the rejected write must not count,
// must not disturb the parked frame, and the park must stay resumable.
func TestWriteWhileHeldLeavesFrameParked(t *testing.T) {
	holder := &recorder{name: "holder", mutate: func(buf []byte) Verdict { return Hold }}
	var got []byte
	c := NewChain(func(buf []byte) error {
		got = append([]byte(nil), buf...)
		return nil
	})
	c.Append(holder)

	first := []byte{1, 2, 3}
	if err := c.Write(first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Write([]byte{9}); !errors.Is(err, ErrHeldFrame) {
			t.Fatalf("write %d while held: err = %v, want ErrHeldFrame", i, err)
		}
	}
	if !c.HoldPending() {
		t.Fatal("rejected writes must not consume the parked frame")
	}
	if err := c.ResumeHeld(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("target saw %v, want the originally parked frame", got)
	}
	// Only the parked write counts; the three refusals never entered the
	// chain.
	if writes, dropped := c.Stats(); writes != 1 || dropped != 0 {
		t.Fatalf("stats = %d writes %d dropped, want 1/0", writes, dropped)
	}
}

// TestResumeWithNothingHeld: ResumeHeld on an idle chain — fresh, and
// again after a completed pass-through write — is a protocol error.
func TestResumeWithNothingHeld(t *testing.T) {
	c := NewChain(func(buf []byte) error { return nil })
	if err := c.ResumeHeld(); !errors.Is(err, ErrHeldFrame) {
		t.Fatalf("resume on fresh chain: err = %v, want ErrHeldFrame", err)
	}
	if err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.ResumeHeld(); !errors.Is(err, ErrHeldFrame) {
		t.Fatalf("resume after pass-through write: err = %v, want ErrHeldFrame", err)
	}
}

// TestSecondHoldBelowResumeDegradesToDrop: a wrapper below the holder
// answering Hold during ResumeHeld would deadlock the tick (nobody is
// left to resume it), so the chain degrades the frame to a counted drop,
// clears the latch, and keeps serving writes.
func TestSecondHoldBelowResumeDegradesToDrop(t *testing.T) {
	top := &recorder{name: "top", mutate: func(buf []byte) Verdict { return Hold }}
	below := &recorder{name: "below", mutate: func(buf []byte) Verdict { return Hold }}
	reached := 0
	c := NewChain(func(buf []byte) error { reached++; return nil })
	c.Append(top).Append(below)

	if err := c.Write([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.ResumeHeld(); err != nil {
		t.Fatalf("resume into a second hold must degrade, not error: %v", err)
	}
	if reached != 0 {
		t.Fatal("double-held frame reached the target")
	}
	if c.HoldPending() {
		t.Fatal("latch must clear after the degradation; a stuck latch wedges every later write")
	}
	if writes, dropped := c.Stats(); writes != 1 || dropped != 1 {
		t.Fatalf("stats = %d writes %d dropped, want the degraded frame counted dropped (1/1)", writes, dropped)
	}

	// The chain stays usable: stop the below wrapper holding and the next
	// write completes end to end.
	below.mutate = func(buf []byte) Verdict { return Pass }
	if err := c.Write([]byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := c.ResumeHeld(); err != nil {
		t.Fatal(err)
	}
	if reached != 1 {
		t.Fatalf("post-degradation write reached target %d times, want 1", reached)
	}
}
