package console

import (
	"math"
	"testing"

	"ravenguard/internal/itp"
	"ravenguard/internal/trajectory"
)

func drain(t *testing.T, tr *itp.MemTransport) []itp.Packet {
	t.Helper()
	var out []itp.Packet
	for {
		p, ok, err := tr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

func runSession(t *testing.T, script Script, traj trajectory.Trajectory) []itp.Packet {
	t.Helper()
	tr := itp.NewMemTransport()
	c, err := New(script, traj, tr)
	if err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		if _, err := c.Tick(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	return drain(t, tr)
}

func TestStartButtonSentOnce(t *testing.T) {
	pkts := runSession(t, StandardScript(1), trajectory.Rest{})
	starts := 0
	for _, p := range pkts {
		if p.Start {
			starts++
		}
	}
	if starts != 1 {
		t.Fatalf("start button pressed %d times, want 1", starts)
	}
}

func TestPedalTimeline(t *testing.T) {
	script := Script{
		StartAt:    0.05,
		HomingWait: 1.0,
		Segments: []Segment{
			{Duration: 0.5, PedalDown: true},
			{Duration: 0.25, PedalDown: false},
			{Duration: 0.5, PedalDown: true},
		},
	}
	pkts := runSession(t, script, trajectory.Rest{})
	// Pedal must be up before StartAt+HomingWait.
	for i, p := range pkts {
		tm := float64(i+1) * 1e-3
		if tm < 1.04 && p.PedalDown {
			t.Fatalf("pedal down at t=%.3f, before teleop begins", tm)
		}
	}
	// Count pedal-down packets: 0.5 + 0.5 seconds at 1 kHz = ~1000.
	down := 0
	for _, p := range pkts {
		if p.PedalDown {
			down++
		}
	}
	if down < 950 || down > 1050 {
		t.Fatalf("pedal-down packets = %d, want ~1000", down)
	}
}

func TestDeltasIntegrateToTrajectory(t *testing.T) {
	traj := trajectory.Circle{Radius: 0.01, Freq: 0.25}
	pkts := runSession(t, StandardScript(2), traj)
	sumX, sumY := 0.0, 0.0
	for _, p := range pkts {
		sumX += p.Delta.X
		sumY += p.Delta.Y
	}
	// Sum of deltas over 2 s of pedal-down equals Pos(2)-Pos(0).
	want := traj.Pos(2)
	if math.Abs(sumX-want.X) > 1e-9 || math.Abs(sumY-want.Y) > 1e-9 {
		t.Fatalf("integrated deltas (%v,%v), want (%v,%v)", sumX, sumY, want.X, want.Y)
	}
}

func TestPedalUpPausesTrajectory(t *testing.T) {
	// With a pause in the middle, the trajectory clock stops: total
	// integrated motion equals Pos(totalPedalDownTime).
	traj := trajectory.Circle{Radius: 0.01, Freq: 0.25}
	script := Script{
		StartAt:    0.05,
		HomingWait: 0.5,
		Segments: []Segment{
			{Duration: 1, PedalDown: true},
			{Duration: 3, PedalDown: false},
			{Duration: 1, PedalDown: true},
		},
	}
	pkts := runSession(t, script, traj)
	var sum float64
	for _, p := range pkts {
		sum += p.Delta.Y
	}
	want := traj.Pos(2).Y // 2 s of pedal-down total
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("integrated Y = %v, want %v", sum, want)
	}
}

func TestNoDeltaWhilePedalUp(t *testing.T) {
	pkts := runSession(t, StandardScript(1), trajectory.Circle{Radius: 0.01, Freq: 0.25})
	for i, p := range pkts {
		if !p.PedalDown && p.Delta.Norm() != 0 {
			t.Fatalf("packet %d: delta %v while pedal up", i, p.Delta)
		}
	}
}

func TestSequenceMonotone(t *testing.T) {
	pkts := runSession(t, StandardScript(1), trajectory.Rest{})
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Seq != pkts[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, pkts[i-1].Seq, pkts[i].Seq)
		}
	}
}

func TestScriptValidate(t *testing.T) {
	bad := []Script{
		{StartAt: -1},
		{HomingWait: -0.5},
		{Segments: []Segment{{Duration: 0, PedalDown: true}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("script %d accepted", i)
		}
	}
	if err := StandardScript(10).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsNil(t *testing.T) {
	tr := itp.NewMemTransport()
	if _, err := New(StandardScript(1), nil, tr); err == nil {
		t.Fatal("nil trajectory accepted")
	}
	if _, err := New(StandardScript(1), trajectory.Rest{}, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
}

func TestTotalDuration(t *testing.T) {
	s := StandardScript(10)
	want := 0.05 + 2.5 + 10
	if got := s.TotalDuration(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalDuration = %v, want %v", got, want)
	}
}
