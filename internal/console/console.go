// Package console implements the master-console emulator of the paper's
// simulation framework (Figure 7a): it "mimics the teleoperation console
// functionality by generating user input packets based on previously
// collected trajectories of surgical movements" and streams them to the
// control software over the ITP transport.
//
// A Script describes the session timeline — when the start button is
// pressed, when the foot pedal goes down and comes up — so different runs
// exercise the operational state machine differently (Figure 6's nine runs).
package console

import (
	"fmt"

	"ravenguard/internal/itp"
	"ravenguard/internal/trajectory"
)

// Segment is one pedal phase of a session.
type Segment struct {
	// Duration of the segment, seconds.
	Duration float64
	// PedalDown during this segment.
	PedalDown bool
}

// Script is the operator's session timeline. The console presses the start
// button at StartAt, waits HomingWait for initialisation, then plays the
// Segments in order. After the last segment it keeps the pedal up.
//
// EStopAt/RestartAt model an operator slapping the emergency-stop button
// mid-procedure and restarting: at EStopAt the console sends the E-STOP
// flag (and stops driving), at RestartAt it presses start again and, after
// another HomingWait, resumes the remaining segments.
type Script struct {
	StartAt    float64 // press the start button at this time, seconds
	HomingWait float64 // wait after start before the first segment
	Segments   []Segment
	EStopAt    float64 // press the emergency stop at this time (0 = never)
	RestartAt  float64 // press start again at this time (requires EStopAt)
}

// Validate rejects non-physical scripts.
func (s Script) Validate() error {
	if s.StartAt < 0 || s.HomingWait < 0 {
		return fmt.Errorf("console: negative script times")
	}
	for i, seg := range s.Segments {
		if seg.Duration <= 0 {
			return fmt.Errorf("console: segment %d duration %v must be > 0", i, seg.Duration)
		}
	}
	if s.EStopAt < 0 || s.RestartAt < 0 {
		return fmt.Errorf("console: negative emergency-stop times")
	}
	if s.EStopAt > 0 && s.RestartAt > 0 && s.RestartAt <= s.EStopAt {
		return fmt.Errorf("console: restart at %v not after emergency stop at %v", s.RestartAt, s.EStopAt)
	}
	if s.RestartAt > 0 && s.EStopAt == 0 {
		return fmt.Errorf("console: restart scheduled without an emergency stop")
	}
	return nil
}

// TotalDuration returns the full session length in seconds, including the
// pause a mid-session emergency stop and restart inserts.
func (s Script) TotalDuration() float64 {
	t := s.StartAt + s.HomingWait
	for _, seg := range s.Segments {
		t += seg.Duration
	}
	if s.EStopAt > 0 && s.RestartAt > 0 {
		t += (s.RestartAt - s.EStopAt) + s.HomingWait
	}
	return t
}

// StandardScript returns a typical session: start immediately, wait 2.5 s
// for homing, then a single teleoperation phase of the given length.
func StandardScript(teleop float64) Script {
	return Script{
		StartAt:    0.05,
		HomingWait: 2.5,
		Segments:   []Segment{{Duration: teleop, PedalDown: true}},
	}
}

// Console replays a trajectory according to a script. Not safe for
// concurrent use.
type Console struct {
	script Script                //ravenlint:snapshot-ignore configuration, fixed after New
	traj   trajectory.Trajectory //ravenlint:snapshot-ignore configuration, fixed after New
	ori    trajectory.OriProfile //ravenlint:snapshot-ignore wrist profile, set during assembly
	out    itp.Sender            //ravenlint:snapshot-ignore transport wiring; queued datagrams captured by the rig

	seq       uint32
	t         float64 // session time
	telT      float64 // accumulated pedal-down (trajectory) time
	segOffset float64 // accumulated segment-eligible time
	started   bool
	estopSent bool
	restarted bool
}

// New builds a console streaming into out. The instrument wrist follows
// the standard weave profile; use SetWrist to change it.
func New(script Script, traj trajectory.Trajectory, out itp.Sender) (*Console, error) {
	if err := script.Validate(); err != nil {
		return nil, err
	}
	if traj == nil || out == nil {
		return nil, fmt.Errorf("console: nil trajectory or transport")
	}
	return &Console{script: script, traj: traj, ori: trajectory.StandardWrist(), out: out}, nil
}

// SetWrist selects the instrument-joint motion profile (nil holds still).
func (c *Console) SetWrist(ori trajectory.OriProfile) {
	if ori == nil {
		ori = trajectory.RestWrist{}
	}
	c.ori = ori
}

// segmentPedal reports the pedal state at the given accumulated eligible
// time offset into the segment schedule.
func (c *Console) segmentPedal(off float64) bool {
	for _, seg := range c.script.Segments {
		if off < seg.Duration {
			return seg.PedalDown
		}
		off -= seg.Duration
	}
	return false
}

// inEStopPause reports whether the script's emergency-stop window covers
// session time t (from the stop until homing completes after the restart).
func (c *Console) inEStopPause(t float64) bool {
	if c.script.EStopAt <= 0 || t < c.script.EStopAt {
		return false
	}
	if c.script.RestartAt <= 0 {
		return true // stopped for good
	}
	return t < c.script.RestartAt+c.script.HomingWait
}

// Tick advances the console by dt seconds and emits one ITP datagram (the
// console streams at the control rate). It returns the packet sent.
func (c *Console) Tick(dt float64) (itp.Packet, error) {
	c.seq++
	p := itp.Packet{Seq: c.seq}

	switch {
	case !c.started && c.t >= c.script.StartAt:
		p.Start = true
		c.started = true
	case c.script.EStopAt > 0 && !c.estopSent && c.t >= c.script.EStopAt:
		p.EStop = true
		c.estopSent = true
	case c.estopSent && !c.restarted && c.script.RestartAt > 0 && c.t >= c.script.RestartAt:
		p.Start = true
		c.restarted = true
	}

	// Evaluate schedule positions at the tick midpoint: accumulated float
	// time sits within one ulp of segment boundaries, and the midpoint
	// keeps each tick firmly inside the segment it belongs to.
	eligible := c.t+dt/2 >= c.script.StartAt+c.script.HomingWait && !c.inEStopPause(c.t+dt/2)
	if eligible && c.segmentPedal(c.segOffset+dt/2) {
		p.PedalDown = true
		// Differentiate the trajectory over the pedal-down clock, so
		// lifting the pedal pauses the motion rather than skipping ahead.
		from := c.traj.Pos(c.telT)
		to := c.traj.Pos(c.telT + dt)
		p.Delta = to.Sub(from)
		oriFrom := c.ori.Ori(c.telT)
		oriTo := c.ori.Ori(c.telT + dt)
		for i := range p.OriDelta {
			p.OriDelta[i] = oriTo[i] - oriFrom[i]
		}
		c.telT += dt
	}
	if eligible {
		c.segOffset += dt
	}

	c.t += dt
	if err := c.out.Send(p); err != nil {
		return itp.Packet{}, fmt.Errorf("console: %w", err)
	}
	return p, nil
}

// State is the console's mutable session state, for checkpoint/restore.
// The script and trajectory are configuration; a fork restores State into a
// console built from the same script.
type State struct {
	Seq       uint32
	T         float64
	TelT      float64
	SegOffset float64
	Started   bool
	EStopSent bool
	Restarted bool
}

// CaptureState returns the console's mutable state.
func (c *Console) CaptureState() State {
	return State{
		Seq: c.seq, T: c.t, TelT: c.telT, SegOffset: c.segOffset,
		Started: c.started, EStopSent: c.estopSent, Restarted: c.restarted,
	}
}

// RestoreState rewinds the console to a captured state.
func (c *Console) RestoreState(s State) {
	c.seq, c.t, c.telT, c.segOffset = s.Seq, s.T, s.TelT, s.SegOffset
	c.started, c.estopSent, c.restarted = s.Started, s.EStopSent, s.Restarted
}

// Time returns the console's session clock.
func (c *Console) Time() float64 { return c.t }

// Done reports whether the scripted session is over.
func (c *Console) Done() bool { return c.t >= c.script.TotalDuration() }
