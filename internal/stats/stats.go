// Package stats implements the statistical primitives the evaluation
// pipeline needs: streaming moment accumulation (Welford), order statistics
// (percentiles used by the threshold learner), and simple summaries for the
// tables the paper reports (min/max/mean/std in Table II, percentile
// thresholds in Section IV.C).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean, variance (Welford's online algorithm),
// minimum and maximum of a stream of observations without storing them.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 if no observations were added.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 if none were added.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 if none were added.
func (r *Running) Max() float64 { return r.max }

// Summary is a value snapshot of a Running accumulator, convenient for
// table rows.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Std  float64
}

// Summarize returns a snapshot of r.
func (r *Running) Summarize() Summary {
	return Summary{N: r.n, Min: r.min, Max: r.max, Mean: r.mean, Std: r.Std()}
}

// String formats the summary the way Table II rows are printed.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g max=%.3g mean=%.3g std=%.3g",
		s.N, s.Min, s.Max, s.Mean, s.Std)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns an error for an empty
// input or out-of-range p. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted returns the p-th percentile of an already ascending-sorted
// slice. It avoids the copy/sort that Percentile performs, for hot paths
// that compute many percentiles of the same sample.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanAbs returns the mean of |x| over xs, or 0 for an empty slice. It is
// the "average of mean absolute errors" aggregation used in Figure 8.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}
