package stats

import (
	"encoding/json"
	"fmt"
)

// This file makes the streaming accumulators mergeable across shard
// boundaries. Two things matter for the sharded campaign runner:
//
//  1. partial aggregates must cross process boundaries as JSON frames, so
//     Running (and the Forest below) serialize losslessly;
//  2. merged results must be BIT-IDENTICAL to the single-process run, so
//     the reduction over a campaign's job-index space is defined as a
//     fixed-shape binary tree over the global indices (Forest), not as a
//     left fold — floating-point addition is not associative, but a fixed
//     tree makes the merge schedule a function of the index space alone,
//     independent of how the space was cut into shards or chunks.

// runningJSON is the wire form of a Running accumulator.
type runningJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON serializes the accumulator state losslessly.
func (r Running) MarshalJSON() ([]byte, error) {
	return json.Marshal(runningJSON{N: r.n, Mean: r.mean, M2: r.m2, Min: r.min, Max: r.max})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (r *Running) UnmarshalJSON(data []byte) error {
	var w runningJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Running{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}

// Merge folds other into r using Chan et al.'s parallel update, as if r had
// observed r's stream followed by other's. Count, min and max merge
// exactly; mean and m2 merge deterministically (the result is a pure
// function of the two operands) but are not bit-equal to having Added the
// observations one by one — use a Forest when partition-independent bit
// identity is required.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	n := r.n + other.n
	delta := other.mean - r.mean
	r.mean += delta * float64(other.n) / float64(n)
	r.m2 += other.m2 + delta*delta*float64(r.n)*float64(other.n)/float64(n)
	r.n = n
}

// forestNode is one complete, canonically aligned subtree: it covers
// leaves [pos, pos+span) with span a power of two and pos a multiple of
// span (alignment is relative to global index 0, not to the forest's own
// start, so shards cut at arbitrary offsets build the same subtrees).
type forestNode struct {
	pos  int
	span int
	acc  Running
}

// Forest reduces an indexed stream of observations through a fixed-shape
// binary tree over the global index space: leaf i is merged with its
// sibling exactly when both halves of the canonically aligned parent
// [k*2^j, (k+1)*2^j) are complete, mirroring a binary counter. Because the
// merge schedule depends only on the indices — never on where the stream
// was cut — a Forest built over [lo, hi) in one piece is bit-identical to
// merging Forests built over any contiguous partition of [lo, hi), in any
// merge order the adjacency allows. That is what lets sharded campaigns
// report the same Mean/Std bits as the single-process run.
//
// A Forest holds at most O(log n) pending subtrees.
type Forest struct {
	start int
	n     int
	nodes []forestNode
}

// NewForest returns an empty forest whose first leaf has global index
// start.
func NewForest(start int) *Forest {
	return &Forest{start: start}
}

// Start returns the global index of the forest's first leaf.
func (f *Forest) Start() int { return f.start }

// End returns one past the global index of the forest's last leaf.
func (f *Forest) End() int { return f.start + f.n }

// N returns the number of observations added.
func (f *Forest) N() int { return f.n }

// Add appends the observation at the next global index and carries any
// completed sibling pairs.
func (f *Forest) Add(x float64) {
	var leaf Running
	leaf.Add(x)
	f.nodes = append(f.nodes, forestNode{pos: f.start + f.n, span: 1, acc: leaf})
	f.n++
	f.carry()
}

// carry merges trailing sibling pairs: two adjacent equal-span subtrees
// combine exactly when they are the two halves of a canonically aligned
// parent.
func (f *Forest) carry() {
	for len(f.nodes) >= 2 {
		a := &f.nodes[len(f.nodes)-2]
		b := &f.nodes[len(f.nodes)-1]
		if a.span != b.span || a.pos+a.span != b.pos || a.pos%(2*a.span) != 0 {
			return
		}
		a.acc.Merge(b.acc)
		a.span *= 2
		f.nodes = f.nodes[:len(f.nodes)-1]
	}
}

// Merge appends g, which must cover the index range immediately following
// f's, and carries the junction. g is consumed: it must not be used
// afterwards.
func (f *Forest) Merge(g *Forest) error {
	if g.start != f.End() {
		return fmt.Errorf("stats: forest merge gap: have [%d,%d), merging [%d,%d)",
			f.start, f.End(), g.start, g.End())
	}
	for i := range g.nodes {
		f.nodes = append(f.nodes, g.nodes[i])
		f.carry()
	}
	f.n += g.n
	return nil
}

// Fold collapses the pending subtrees right-to-left into one accumulator.
// The final forest for a range is canonical — the same for every partition
// of the range — so the fold, and every statistic derived from it, is too.
func (f *Forest) Fold() Running {
	if len(f.nodes) == 0 {
		return Running{}
	}
	acc := f.nodes[len(f.nodes)-1].acc
	for i := len(f.nodes) - 2; i >= 0; i-- {
		left := f.nodes[i].acc
		left.Merge(acc)
		acc = left
	}
	return acc
}

// Summarize returns the canonical summary of all observations.
func (f *Forest) Summarize() Summary {
	acc := f.Fold()
	return acc.Summarize()
}

// forestJSON is the wire form of a Forest.
type forestJSON struct {
	Start int              `json:"start"`
	Nodes []forestNodeJSON `json:"nodes"`
}

type forestNodeJSON struct {
	Pos  int     `json:"pos"`
	Span int     `json:"span"`
	Acc  Running `json:"acc"`
}

// MarshalJSON serializes the forest losslessly (pending subtrees and all),
// so partial forests stream between shard processes as compact frames.
func (f *Forest) MarshalJSON() ([]byte, error) {
	w := forestJSON{Start: f.start, Nodes: make([]forestNodeJSON, len(f.nodes))}
	for i, n := range f.nodes {
		w.Nodes[i] = forestNodeJSON{Pos: n.pos, Span: n.span, Acc: n.acc}
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a forest serialized by MarshalJSON.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var w forestJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	f.start = w.Start
	f.n = 0
	f.nodes = f.nodes[:0]
	for _, n := range w.Nodes {
		f.nodes = append(f.nodes, forestNode{pos: n.Pos, span: n.Span, acc: n.Acc})
		f.n += n.Span
	}
	return nil
}
