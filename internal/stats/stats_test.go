package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningAgainstClosedForm(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if !approx(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", r.Mean())
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, / 7.
	if !approx(r.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningZeroAndOneObservation(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Fatal("zero-value Running must report zeros")
	}
	r.Add(42)
	if r.Mean() != 42 || r.Variance() != 0 || r.Min() != 42 || r.Max() != 42 {
		t.Fatalf("single observation summary wrong: %+v", r.Summarize())
	}
}

func TestRunningMatchesBatchQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			r.Add(xs[i])
		}
		mean := Mean(xs)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		wantVar := varSum / float64(n-1)
		return approx(r.Mean(), mean, 1e-9) && approx(r.Variance(), wantVar, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !approx(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty slice must error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("negative p must error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("p > 100 must error")
	}
}

func TestPercentileMonotoneQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestPercentileSingleElement(t *testing.T) {
	got, err := Percentile([]float64{7}, 99.85)
	if err != nil || got != 7 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-1, 1, -3, 3}); got != 2 {
		t.Fatalf("MeanAbs = %v", got)
	}
	if MeanAbs(nil) != 0 {
		t.Fatal("MeanAbs(nil) must be 0")
	}
}

func TestSummaryString(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	if s := r.Summarize().String(); s == "" {
		t.Fatal("empty summary string")
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
