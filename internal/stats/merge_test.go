package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// forestValues builds a deterministic but awkward observation stream:
// wildly mixed magnitudes so that any change in float summation order is
// certain to flip result bits.
func forestValues(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.3) * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return xs
}

// buildForest accumulates xs[lo:hi] into a forest starting at global
// index lo.
func buildForest(xs []float64, lo, hi int) *Forest {
	f := NewForest(lo)
	for _, x := range xs[lo:hi] {
		f.Add(x)
	}
	return f
}

// TestForestPartitionIndependence pins the property the sharded campaign
// runner leans on: reducing [0,n) in one piece is bit-identical to
// reducing any contiguous partition of [0,n) and merging the pieces.
func TestForestPartitionIndependence(t *testing.T) {
	const n = 257 // deliberately not a power of two
	xs := forestValues(n)
	whole := buildForest(xs, 0, n)
	want := whole.Fold()

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		// Random partition into 1..8 contiguous pieces.
		k := 1 + rng.Intn(8)
		cuts := map[int]bool{0: true, n: true}
		for len(cuts) < k+1 {
			cuts[rng.Intn(n)] = true
		}
		bounds := make([]int, 0, len(cuts))
		for b := 0; b < n+1; b++ {
			if cuts[b] {
				bounds = append(bounds, b)
			}
		}
		pieces := make([]*Forest, 0, len(bounds)-1)
		for i := 0; i+1 < len(bounds); i++ {
			pieces = append(pieces, buildForest(xs, bounds[i], bounds[i+1]))
		}
		merged := pieces[0]
		for _, p := range pieces[1:] {
			if err := merged.Merge(p); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		got := merged.Fold()
		if got != want {
			t.Fatalf("trial %d (bounds %v): partitioned fold diverged\nwant %+v\ngot  %+v",
				trial, bounds, want, got)
		}
	}
}

// TestForestMergeOrderIndependence: adjacent merges may be performed in
// any order the adjacency allows (the shard merger receives frames in
// arbitrary arrival order and folds whichever neighbours are available).
func TestForestMergeOrderIndependence(t *testing.T) {
	const n = 100
	xs := forestValues(n)
	want := buildForest(xs, 0, n).Fold()

	// Three pieces merged right-to-left first: a + (b + c).
	a, b, c := buildForest(xs, 0, 33), buildForest(xs, 33, 70), buildForest(xs, 70, n)
	if err := b.Merge(c); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Fold(); got != want {
		t.Fatalf("right-to-left merge diverged\nwant %+v\ngot  %+v", want, got)
	}
}

func TestForestMergeRejectsGaps(t *testing.T) {
	xs := forestValues(30)
	a, c := buildForest(xs, 0, 10), buildForest(xs, 20, 30)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging non-adjacent forests should fail")
	}
}

func TestForestJSONRoundTrip(t *testing.T) {
	xs := forestValues(57)
	f := buildForest(xs, 13, 57)
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var g Forest
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if g.Start() != f.Start() || g.N() != f.N() {
		t.Fatalf("round trip lost range: want [%d,%d), got [%d,%d)", f.Start(), f.End(), g.Start(), g.End())
	}
	if got, want := g.Fold(), f.Fold(); got != want {
		t.Fatalf("round trip changed fold\nwant %+v\ngot  %+v", want, got)
	}

	// A round-tripped forest must keep merging bit-identically.
	more := NewForest(g.End())
	more.Add(1.5)
	if err := g.Merge(more); err != nil {
		t.Fatal(err)
	}
	f2 := buildForest(xs, 13, 57)
	f2ext := NewForest(f2.End())
	f2ext.Add(1.5)
	if err := f2.Merge(f2ext); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Fold(), f2.Fold(); got != want {
		t.Fatalf("post-round-trip merge diverged\nwant %+v\ngot  %+v", want, got)
	}
}

func TestForestCompactness(t *testing.T) {
	// The pending-subtree forest must stay logarithmic: that is what keeps
	// streamed partial aggregates compact at any trial count.
	f := NewForest(0)
	for i := 0; i < 1<<16; i++ {
		f.Add(float64(i))
	}
	if len(f.nodes) > 17 {
		t.Fatalf("forest holds %d pending subtrees for 2^16 leaves, want <= 17", len(f.nodes))
	}
}

func TestRunningMergeCounts(t *testing.T) {
	var a, b Running
	for i := 0; i < 5; i++ {
		a.Add(float64(i))
	}
	for i := 5; i < 12; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	if a.N() != 12 {
		t.Fatalf("merged N = %d, want 12", a.N())
	}
	if a.Min() != 0 || a.Max() != 11 {
		t.Fatalf("merged min/max = %v/%v, want 0/11", a.Min(), a.Max())
	}
	if math.Abs(a.Mean()-5.5) > 1e-12 {
		t.Fatalf("merged mean = %v, want 5.5", a.Mean())
	}
	// Variance of 0..11 is 13 (unbiased).
	if math.Abs(a.Variance()-13) > 1e-9 {
		t.Fatalf("merged variance = %v, want 13", a.Variance())
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	b.Add(3)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("empty.Merge(one) = %+v", a.Summarize())
	}
	var c Running
	a.Merge(c)
	if a.N() != 1 {
		t.Fatalf("merge of empty changed N: %d", a.N())
	}
}

func TestRunningJSONRoundTrip(t *testing.T) {
	var r Running
	for _, x := range forestValues(9) {
		r.Add(x)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var s Running
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if r != s {
		t.Fatalf("round trip changed accumulator\nwant %+v\ngot  %+v", r.Summarize(), s.Summarize())
	}
}
