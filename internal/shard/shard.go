// Package shard scales a campaign across worker processes: it partitions
// the campaign's deterministic job-index space into contiguous ranges, one
// per worker, and merges the partial aggregates the workers stream back as
// JSON frames.
//
// The contract that makes this exact rather than approximate: a campaign's
// partial aggregate over a job range must merge with its neighbour into
// the same bits the single-process reduction over the union would produce
// (integer counters and maxima are exact by nature; mean/std streams go
// through stats.Forest, whose fixed-shape reduction tree is a function of
// the job indices alone). Given that, the merged result of any shard
// count, chunk size, and frame arrival order is byte-identical to the
// in-process runner — sharding only trades wall-clock for processes.
package shard

import (
	"fmt"
	"sort"
)

// Range is a half-open interval [Lo, Hi) of job indices.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of jobs in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// String renders the range as "lo:hi".
func (r Range) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// Split partitions [0, n) into k contiguous near-equal ranges (the first
// n%k ranges are one job longer). k must be positive; empty ranges appear
// only when k > n.
func Split(n, k int) []Range {
	if k < 1 {
		k = 1
	}
	if n < 0 {
		n = 0
	}
	out := make([]Range, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// Of returns shard i of k over [0, n).
func Of(n, i, k int) (Range, error) {
	if k < 1 {
		return Range{}, fmt.Errorf("shard: shard count %d must be >= 1", k)
	}
	if i < 0 || i >= k {
		return Range{}, fmt.Errorf("shard: shard index %d out of range [0,%d)", i, k)
	}
	return Split(n, k)[i], nil
}

// ParseSpec parses a "i/k" shard specification.
func ParseSpec(s string) (i, k int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &k); err != nil {
		return 0, 0, fmt.Errorf("shard: bad shard spec %q, want i/n (e.g. 0/4)", s)
	}
	if k < 1 || i < 0 || i >= k {
		return 0, 0, fmt.Errorf("shard: bad shard spec %q: index must be in [0,%d)", s, k)
	}
	return i, k, nil
}

// Chunks cuts r into consecutive pieces of at most size jobs. Workers
// process one chunk at a time, emit its partial frame, and drop the
// per-trial state — that is what keeps worker memory flat at any trial
// count. size <= 0 returns r whole.
func Chunks(r Range, size int) []Range {
	if size <= 0 || r.Len() <= size {
		if r.Len() <= 0 {
			return nil
		}
		return []Range{r}
	}
	out := make([]Range, 0, (r.Len()+size-1)/size)
	for lo := r.Lo; lo < r.Hi; lo += size {
		hi := lo + size
		if hi > r.Hi {
			hi = r.Hi
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// part is one contiguous merged piece held by a Merger.
type part[P any] struct {
	r Range
	p P
}

// Part is one contiguous merged piece of a Merger's coverage, exposed for
// journal compaction: the partial aggregate of the covered range.
type Part[P any] struct {
	Range   Range
	Partial P
}

// Merger folds partial aggregates, arriving in any order, into full
// coverage of [0, jobs). Adjacent pieces coalesce eagerly, so the merger
// holds at most one piece per coverage gap — memory stays flat no matter
// how many frames stream through.
type Merger[P any] struct {
	jobs    int
	merge   func(dst, src P) (P, error)
	parts   []part[P] // sorted by Lo, disjoint, maximally coalesced
	covered int
	dropped int // already-covered duplicates observed and discarded
}

// NewMerger builds a merger for a job space of the given size. merge must
// combine the partials of two adjacent ranges (dst immediately left of
// src) into the partial of their union.
func NewMerger[P any](jobs int, merge func(dst, src P) (P, error)) *Merger[P] {
	return &Merger[P]{jobs: jobs, merge: merge}
}

// Observe folds in the partial for one job range. A range that is already
// fully covered — a retried worker's duplicate frame, a chunk replayed
// from a journal — is a no-op: campaign partials are deterministic per
// range, so the duplicate carries no new information and is dropped
// (counted by Dropped). Ranges that only *partially* overlap existing
// coverage are rejected: they would double-count the overlapped jobs,
// and the aligned chunk grids every dispatcher uses can never produce
// them, so one appearing means misconfigured inputs.
func (m *Merger[P]) Observe(r Range, p P) error {
	if r.Lo < 0 || r.Hi > m.jobs || r.Lo > r.Hi {
		return fmt.Errorf("shard: partial range %v outside job space [0,%d)", r, m.jobs)
	}
	if r.Len() == 0 {
		return nil
	}
	// Find the insertion point; drop fully-covered duplicates, reject
	// partial overlap with either neighbour. Parts are maximally
	// coalesced, so any fully-covered range lies inside a single part.
	i := sort.Search(len(m.parts), func(i int) bool { return m.parts[i].r.Lo >= r.Lo })
	if i > 0 && m.parts[i-1].r.Hi > r.Lo {
		if m.parts[i-1].r.Hi >= r.Hi {
			m.dropped++
			return nil
		}
		return fmt.Errorf("shard: partial range %v overlaps %v", r, m.parts[i-1].r)
	}
	if i < len(m.parts) && m.parts[i].r.Lo < r.Hi {
		if m.parts[i].r.Lo == r.Lo && m.parts[i].r.Hi >= r.Hi {
			m.dropped++
			return nil
		}
		return fmt.Errorf("shard: partial range %v overlaps %v", r, m.parts[i].r)
	}
	m.parts = append(m.parts, part[P]{})
	copy(m.parts[i+1:], m.parts[i:])
	m.parts[i] = part[P]{r: r, p: p}
	m.covered += r.Len()

	// Coalesce with the right neighbour, then the left one. The merge
	// operation is exact for adjacent ranges, so eager coalescing in
	// arrival order cannot change the final bits.
	if i+1 < len(m.parts) && m.parts[i].r.Hi == m.parts[i+1].r.Lo {
		merged, err := m.merge(m.parts[i].p, m.parts[i+1].p)
		if err != nil {
			return err
		}
		m.parts[i] = part[P]{r: Range{Lo: m.parts[i].r.Lo, Hi: m.parts[i+1].r.Hi}, p: merged}
		m.parts = append(m.parts[:i+1], m.parts[i+2:]...)
	}
	if i > 0 && m.parts[i-1].r.Hi == m.parts[i].r.Lo {
		merged, err := m.merge(m.parts[i-1].p, m.parts[i].p)
		if err != nil {
			return err
		}
		m.parts[i-1] = part[P]{r: Range{Lo: m.parts[i-1].r.Lo, Hi: m.parts[i].r.Hi}, p: merged}
		m.parts = append(m.parts[:i], m.parts[i+1:]...)
	}
	return nil
}

// Covered returns how many jobs the observed partials cover so far.
func (m *Merger[P]) Covered() int { return m.covered }

// Dropped returns how many already-covered duplicate ranges Observe has
// discarded (retried workers re-emitting a chunk, journal replays).
func (m *Merger[P]) Dropped() int { return m.dropped }

// Missing returns the uncovered gaps of the job space, in ascending
// order. A resuming coordinator dispatches exactly these ranges.
func (m *Merger[P]) Missing() []Range {
	var gaps []Range
	lo := 0
	for _, pt := range m.parts {
		if pt.r.Lo > lo {
			gaps = append(gaps, Range{Lo: lo, Hi: pt.r.Lo})
		}
		lo = pt.r.Hi
	}
	if lo < m.jobs {
		gaps = append(gaps, Range{Lo: lo, Hi: m.jobs})
	}
	return gaps
}

// Parts returns the merged coverage so far as maximally-coalesced pieces
// in ascending order — what a journal compaction persists.
func (m *Merger[P]) Parts() []Part[P] {
	out := make([]Part[P], len(m.parts))
	for i, pt := range m.parts {
		out[i] = Part[P]{Range: pt.r, Partial: pt.p}
	}
	return out
}

// Result returns the merged partial for the full job space. It fails while
// coverage has gaps (a shard is missing or still running).
func (m *Merger[P]) Result() (P, error) {
	var zero P
	if m.jobs == 0 {
		return zero, nil
	}
	if m.covered != m.jobs || len(m.parts) != 1 {
		missing := ""
		for _, g := range m.Missing() {
			missing += fmt.Sprintf(" %v", g)
		}
		return zero, fmt.Errorf("shard: incomplete coverage, missing job ranges:%s", missing)
	}
	return m.parts[0].p, nil
}
