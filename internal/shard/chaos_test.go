package shard

import (
	"strings"
	"testing"
)

func TestChaosDecideDeterministicAndSeedSensitive(t *testing.T) {
	p := ChaosPlan{Seed: 7, Crash: 0.2, Truncate: 0.1, Garbage: 0.1, Stall: 0.1}
	q := p
	q.Seed = 8
	differs := false
	for lo := 0; lo < 512; lo += 4 {
		r := Range{lo, lo + 4}
		if p.Decide(r, 0) != p.Decide(r, 0) {
			t.Fatalf("Decide not deterministic at %v", r)
		}
		if p.Decide(r, 0) != q.Decide(r, 0) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 produced identical chaos schedules")
	}
}

func TestChaosAttemptGating(t *testing.T) {
	p := ChaosPlan{Seed: 3, Crash: 1}
	for lo := 0; lo < 64; lo += 4 {
		r := Range{lo, lo + 4}
		if p.Decide(r, 0) != ChaosCrash {
			t.Fatalf("crash=1 plan spared %v on first attempt", r)
		}
		if p.Decide(r, 1) != ChaosNone {
			t.Fatalf("attempt 1 failed with default Attempts=1 at %v", r)
		}
	}
	p.Attempts = 3
	if p.Decide(Range{0, 4}, 2) != ChaosCrash {
		t.Fatal("Attempts=3 plan spared attempt 2")
	}
	if p.Decide(Range{0, 4}, 3) != ChaosNone {
		t.Fatal("Attempts=3 plan failed attempt 3")
	}
}

func TestChaosRatePartition(t *testing.T) {
	p := ChaosPlan{Seed: 11, Crash: 0.25, Truncate: 0.25, Garbage: 0.25, Stall: 0.25}
	counts := map[ChaosAction]int{}
	const n = 4000
	for lo := 0; lo < n; lo++ {
		counts[p.Decide(Range{lo, lo + 1}, 0)]++
	}
	if counts[ChaosNone] != 0 {
		t.Fatalf("rates summing to 1 still produced %d ChaosNone", counts[ChaosNone])
	}
	for _, a := range []ChaosAction{ChaosCrash, ChaosTruncate, ChaosGarbage, ChaosStall} {
		frac := float64(counts[a]) / n
		if frac < 0.20 || frac > 0.30 {
			t.Fatalf("action %v frequency %.3f, want ~0.25", a, frac)
		}
	}

	if (ChaosPlan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	if got := (ChaosPlan{}).Decide(Range{0, 4}, 0); got != ChaosNone {
		t.Fatalf("zero plan decided %v", got)
	}
}

func TestChaosValidate(t *testing.T) {
	for name, p := range map[string]ChaosPlan{
		"negative rate":     {Crash: -0.1},
		"rate above one":    {Stall: 1.5},
		"sum above one":     {Crash: 0.6, Garbage: 0.6},
		"negative attempts": {Crash: 0.1, Attempts: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: plan accepted", name)
		}
	}
	if err := (ChaosPlan{Crash: 0.5, Stall: 0.5}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParseChaosPlan(t *testing.T) {
	p, err := ParseChaosPlan("seed=7,crash=0.2,trunc=0.1,garbage=0.1,stall=0.1,attempts=2")
	if err != nil {
		t.Fatal(err)
	}
	want := ChaosPlan{Seed: 7, Crash: 0.2, Truncate: 0.1, Garbage: 0.1, Stall: 0.1, Attempts: 2}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}

	// String() re-serializes to something ParseChaosPlan accepts and that
	// round-trips to the same plan.
	back, err := ParseChaosPlan(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip %+v != %+v via %q", back, p, p.String())
	}

	zero, err := ParseChaosPlan("")
	if err != nil || zero.Enabled() {
		t.Fatalf("empty spec: %+v err=%v", zero, err)
	}

	for _, bad := range []string{"boom=1", "crash", "crash=x", "crash=2", "attempts=-1"} {
		if _, err := ParseChaosPlan(bad); err == nil {
			t.Errorf("ParseChaosPlan(%q) accepted", bad)
		}
	}
	if _, err := ParseChaosPlan("boom=1"); err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Fatalf("unknown-key error unhelpful: %v", err)
	}
}
