package shard

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
)

// WorkerStats aggregates resource usage across a coordinator's workers.
type WorkerStats struct {
	// PeakRSSBytes is the largest resident set any single worker reached.
	// With streaming aggregation it stays flat as the trial count grows —
	// the property the coordinator reports so regressions are visible.
	PeakRSSBytes int64
	// TotalCPU is the summed user+system CPU seconds across workers.
	TotalCPU float64
}

// accountUsage folds one exited process's rusage into the stats.
func (s *WorkerStats) accountUsage(ps *os.ProcessState) {
	if ps == nil {
		return
	}
	if ru, ok := ps.SysUsage().(*syscall.Rusage); ok {
		// Linux reports ru_maxrss in kilobytes.
		if rss := int64(ru.Maxrss) * 1024; rss > s.PeakRSSBytes {
			s.PeakRSSBytes = rss
		}
	}
	s.TotalCPU += ps.UserTime().Seconds() + ps.SystemTime().Seconds()
}

// exitDescription renders a worker's exit status for error context: the
// exit code, or the signal that killed it.
func exitDescription(ps *os.ProcessState) string {
	if ps == nil {
		return "no exit status"
	}
	if ws, ok := ps.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		return fmt.Sprintf("killed by signal %s", ws.Signal())
	}
	return fmt.Sprintf("exit code %d", ps.ExitCode())
}

// describeRange renders the last frame range a worker delivered, for
// pinning which part of the job space a failure interrupted.
func describeRange(r Range, any bool) string {
	if !any {
		return "no frames received"
	}
	return fmt.Sprintf("last frame range %v", r)
}

// RunWorkers spawns one worker process per argv(i) for i in [0, k),
// streams every frame the workers write on stdout to onFrame (calls are
// serialized; arrival order across workers is arbitrary, which is safe
// because partial-aggregate merges are order-insensitive), and waits for
// all of them. Worker stderr passes through to the coordinator's stderr.
// The first failure kills the remaining workers; its error names the
// failing shard, its exit code or fatal signal, and the last frame range
// it delivered, so the lost slice of the job space is attributable. A
// truncated trailing line on a dying worker's stdout is not itself fatal
// — the worker's exit status carries the real cause, and the chunk the
// partial line would have covered surfaces as a coverage gap.
//
// RunWorkers is the fail-fast fan-out (one static shard per worker). For
// campaigns that must survive worker failure, use Supervise, which
// re-dispatches chunk-granular work to respawned workers.
func RunWorkers(k int, argv func(i int) []string, onFrame func(Frame) error) (WorkerStats, error) {
	if k < 1 {
		return WorkerStats{}, fmt.Errorf("shard: worker count %d must be >= 1", k)
	}
	var (
		mu        sync.Mutex // guards onFrame, firstErr, lastRange, and kill fan-out
		firstErr  error
		cmds      = make([]*exec.Cmd, k)
		lastRange = make([]Range, k)
		gotFrame  = make([]bool, k)
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil && err != nil {
			firstErr = err
			for _, c := range cmds {
				if c != nil && c.Process != nil {
					_ = c.Process.Kill()
				}
			}
		}
	}

	for i := 0; i < k; i++ {
		args := argv(i)
		if len(args) == 0 {
			return WorkerStats{}, fmt.Errorf("shard: empty argv for worker %d", i)
		}
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			fail(err)
			break
		}
		if err := cmd.Start(); err != nil {
			fail(fmt.Errorf("shard: start worker %d: %w", i, err))
			break
		}
		cmds[i] = cmd
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := ReadFrames(out, func(f Frame) error {
				mu.Lock()
				defer mu.Unlock()
				lastRange[i], gotFrame[i] = f.Range, true
				if firstErr != nil {
					return firstErr
				}
				return onFrame(f)
			})
			if errors.Is(err, ErrTruncatedTail) {
				// The worker died mid-frame; Wait reports the death with
				// its exit status. The half-written chunk is simply lost.
				return
			}
			if err != nil {
				mu.Lock()
				ctx := describeRange(lastRange[i], gotFrame[i])
				mu.Unlock()
				fail(fmt.Errorf("shard: worker %d: %s: %w", i, ctx, err))
			}
		}(i)
	}
	wg.Wait()

	var stats WorkerStats
	for i, cmd := range cmds {
		if cmd == nil {
			continue
		}
		err := cmd.Wait()
		mu.Lock()
		aborted := firstErr != nil
		ctx := describeRange(lastRange[i], gotFrame[i])
		mu.Unlock()
		if err != nil && !aborted {
			fail(fmt.Errorf("shard: worker %d: %s; %s: %w",
				i, exitDescription(cmd.ProcessState), ctx, err))
		}
		stats.accountUsage(cmd.ProcessState)
	}
	mu.Lock()
	err := firstErr
	mu.Unlock()
	return stats, err
}
