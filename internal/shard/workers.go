package shard

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
)

// WorkerStats aggregates resource usage across a coordinator's workers.
type WorkerStats struct {
	// PeakRSSBytes is the largest resident set any single worker reached.
	// With streaming aggregation it stays flat as the trial count grows —
	// the property the coordinator reports so regressions are visible.
	PeakRSSBytes int64
	// TotalCPU is the summed user+system CPU seconds across workers.
	TotalCPU float64
}

// RunWorkers spawns one worker process per argv(i) for i in [0, k),
// streams every frame the workers write on stdout to onFrame (calls are
// serialized; arrival order across workers is arbitrary, which is safe
// because partial-aggregate merges are order-insensitive), and waits for
// all of them. Worker stderr passes through to the coordinator's stderr.
// The first failure kills the remaining workers.
func RunWorkers(k int, argv func(i int) []string, onFrame func(Frame) error) (WorkerStats, error) {
	if k < 1 {
		return WorkerStats{}, fmt.Errorf("shard: worker count %d must be >= 1", k)
	}
	var (
		mu       sync.Mutex // guards onFrame, firstErr, and kill fan-out
		firstErr error
		cmds     = make([]*exec.Cmd, k)
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil && err != nil {
			firstErr = err
			for _, c := range cmds {
				if c != nil && c.Process != nil {
					_ = c.Process.Kill()
				}
			}
		}
	}

	for i := 0; i < k; i++ {
		args := argv(i)
		if len(args) == 0 {
			return WorkerStats{}, fmt.Errorf("shard: empty argv for worker %d", i)
		}
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			fail(err)
			break
		}
		if err := cmd.Start(); err != nil {
			fail(fmt.Errorf("shard: start worker %d: %w", i, err))
			break
		}
		cmds[i] = cmd
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := ReadFrames(out, func(f Frame) error {
				mu.Lock()
				defer mu.Unlock()
				if firstErr != nil {
					return firstErr
				}
				return onFrame(f)
			})
			if err != nil {
				fail(fmt.Errorf("shard: worker %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()

	var stats WorkerStats
	for i, cmd := range cmds {
		if cmd == nil {
			continue
		}
		err := cmd.Wait()
		mu.Lock()
		aborted := firstErr != nil
		mu.Unlock()
		if err != nil && !aborted {
			fail(fmt.Errorf("shard: worker %d: %w", i, err))
		}
		if ps := cmd.ProcessState; ps != nil {
			if ru, ok := ps.SysUsage().(*syscall.Rusage); ok {
				// Linux reports ru_maxrss in kilobytes.
				if rss := int64(ru.Maxrss) * 1024; rss > stats.PeakRSSBytes {
					stats.PeakRSSBytes = rss
				}
			}
			stats.TotalCPU += ps.UserTime().Seconds() + ps.SystemTime().Seconds()
		}
	}
	mu.Lock()
	err := firstErr
	mu.Unlock()
	return stats, err
}
