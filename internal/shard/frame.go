package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// FrameVersion is the wire version of the partial-aggregate frame format.
const FrameVersion = 1

// Frame is one streamed partial aggregate: the mergeable reduction of one
// chunk of one shard's job range, emitted as a single JSON line on the
// worker's stdout. Workers emit a frame per chunk and then forget the
// chunk, so neither side of the pipe retains per-trial state.
type Frame struct {
	V        int             `json:"v"`
	Campaign string          `json:"campaign"`
	Shard    int             `json:"shard"`
	Shards   int             `json:"shards"`
	Range    Range           `json:"range"`
	Partial  json.RawMessage `json:"partial"`
}

// WriteFrame emits one frame as a JSON line.
func WriteFrame(w io.Writer, f Frame) error {
	if f.V == 0 {
		f.V = FrameVersion
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("shard: encode frame: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("shard: write frame: %w", err)
	}
	return nil
}

// ReadFrames decodes line-delimited frames from r, calling fn for each.
// Blank lines are skipped; anything else that is not a frame is an error
// (a worker's stdout must carry frames only).
func ReadFrames(r io.Reader, fn func(Frame) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("shard: bad frame %q: %w", truncate(string(line), 120), err)
		}
		if f.V != FrameVersion {
			return fmt.Errorf("shard: frame version %d, want %d", f.V, FrameVersion)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return sc.Err()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
