package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// FrameVersion is the wire version of the partial-aggregate frame format.
const FrameVersion = 1

// Frame is one streamed partial aggregate: the mergeable reduction of one
// chunk of one shard's job range, emitted as a single JSON line on the
// worker's stdout. Workers emit a frame per chunk and then forget the
// chunk, so neither side of the pipe retains per-trial state.
type Frame struct {
	V        int             `json:"v"`
	Campaign string          `json:"campaign"`
	Shard    int             `json:"shard"`
	Shards   int             `json:"shards"`
	Range    Range           `json:"range"`
	Partial  json.RawMessage `json:"partial"`
}

// ErrTruncatedTail reports a frame stream that ends mid-line: the worker
// died between starting and finishing a frame write. The bytes of the
// partial line are dropped; the chunk they would have covered is simply
// not covered, which coverage tracking (Merger.Missing, the supervisor's
// chunk table) turns into a re-dispatch rather than a campaign abort.
var ErrTruncatedTail = errors.New("shard: frame stream ends mid-line (worker died mid-write)")

// WriteFrame emits one frame as a JSON line.
func WriteFrame(w io.Writer, f Frame) error {
	if f.V == 0 {
		f.V = FrameVersion
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("shard: encode frame: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("shard: write frame: %w", err)
	}
	return nil
}

// decodeFrame decodes one newline-stripped frame line, checking the wire
// version.
func decodeFrame(line []byte) (Frame, error) {
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return Frame{}, fmt.Errorf("shard: bad frame %q: %w", truncate(string(line), 120), err)
	}
	if f.V != FrameVersion {
		return Frame{}, fmt.Errorf("shard: frame version %d, want %d", f.V, FrameVersion)
	}
	return f, nil
}

// ReadFrames decodes line-delimited frames from r, calling fn for each.
// Blank lines are skipped; a newline-terminated line that is not a frame
// is an error (a worker's stdout must carry frames only). A partial
// trailing line that fails to decode means the writer died mid-frame:
// ReadFrames returns ErrTruncatedTail, after having delivered every
// complete frame before it — callers treat the lost chunk as uncovered
// (to be re-dispatched or reported missing), not as a fatal stream error.
func ReadFrames(r io.Reader, fn func(Frame) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	for {
		line, rerr := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			f, derr := decodeFrame(trimmed)
			if derr != nil {
				if rerr != nil {
					// The stream ended inside this line: a dying worker's
					// half-written frame, not coordinator-fatal garbage.
					return fmt.Errorf("%w: dropped %d trailing bytes", ErrTruncatedTail, len(line))
				}
				return derr
			}
			if err := fn(f); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
