package shard

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedWorker is an in-process Worker whose per-dispatch behaviour is
// a test-provided function. Events are delivered synchronously into the
// supervisor's buffered channel, which keeps the failure schedules
// deterministic without real processes or sleeps.
type scriptedWorker struct {
	slot, inc int
	ev        chan<- WorkerEvent
	behave    func(w *scriptedWorker, r Range, attempt int)

	mu   sync.Mutex
	dead bool
}

func (w *scriptedWorker) send(ev WorkerEvent) {
	ev.Slot, ev.Inc = w.slot, w.inc
	w.ev <- ev
}

func (w *scriptedWorker) frame(r Range) {
	p, _ := json.Marshal(sumOver(r))
	w.send(WorkerEvent{Kind: EventFrame, Frame: Frame{
		V: FrameVersion, Campaign: "toy", Shards: 1, Range: r, Partial: p,
	}})
}

func (w *scriptedWorker) garbage() {
	w.send(WorkerEvent{Kind: EventGarbage, Err: errors.New("stdout line is not a frame")})
}

// exit delivers the incarnation's final event exactly once.
func (w *scriptedWorker) exit(err error) {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	w.mu.Unlock()
	w.send(WorkerEvent{Kind: EventExit, Err: err, RSSBytes: 1 << 20, CPUSeconds: 0.01})
}

func (w *scriptedWorker) Dispatch(r Range, attempt int) error {
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if dead {
		return errors.New("dispatch to dead worker")
	}
	w.behave(w, r, attempt)
	return nil
}

func (w *scriptedWorker) Close() { w.exit(nil) }
func (w *scriptedWorker) Term()  { w.exit(errors.New("terminated")) }
func (w *scriptedWorker) Kill()  { w.exit(errors.New("killed")) }

func scriptedSpawner(behave func(w *scriptedWorker, r Range, attempt int)) func(int, int, chan<- WorkerEvent) (Worker, error) {
	return func(slot, inc int, ev chan<- WorkerEvent) (Worker, error) {
		return &scriptedWorker{slot: slot, inc: inc, ev: ev, behave: behave}, nil
	}
}

// sumFrames builds a merger plus the OnFrame hook feeding it.
func sumFrames(jobs int) (*Merger[sumPartial], func(Frame) error) {
	m := NewMerger(jobs, mergeSum)
	return m, func(f Frame) error {
		var p sumPartial
		if err := json.Unmarshal(f.Partial, &p); err != nil {
			return err
		}
		return m.Observe(f.Range, p)
	}
}

func mustResult(t *testing.T, m *Merger[sumPartial], jobs int) {
	t.Helper()
	got, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := sumOver(Range{0, jobs}); got != want {
		t.Fatalf("merged result %+v, want %+v", got, want)
	}
}

func TestSuperviseHappyPath(t *testing.T) {
	const jobs = 40
	m, onFrame := sumFrames(jobs)
	st, err := Supervise(SupervisorConfig{
		Chunks:  Chunks(Range{0, jobs}, 4),
		Workers: 3,
		Clock:   func() int64 { return 0 },
		Spawn:   scriptedSpawner(func(w *scriptedWorker, r Range, _ int) { w.frame(r) }),
		OnFrame: onFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, jobs)
	if st.Frames != 10 || st.Retries != 0 || st.Respawns != 0 {
		t.Fatalf("stats = %+v, want 10 clean frames", st)
	}
	if st.Recovered() {
		t.Fatalf("clean run reported recovery: %+v", st)
	}
	if st.PeakRSSBytes <= 0 || st.TotalCPU <= 0 {
		t.Fatalf("worker usage not aggregated: %+v", st)
	}
}

func TestSuperviseNoWork(t *testing.T) {
	st, err := Supervise(SupervisorConfig{
		Workers: 2,
		Clock:   func() int64 { return 0 },
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, _ int) {
			t.Errorf("dispatch on an empty campaign: %v", r)
		}),
		OnFrame: func(Frame) error { return nil },
		Chunks:  []Range{{3, 3}}, // empty ranges are not work
	})
	if err != nil || st.Frames != 0 {
		t.Fatalf("empty campaign: stats %+v, err %v", st, err)
	}
}

func TestSuperviseConfigValidation(t *testing.T) {
	clock := Clock(func() int64 { return 0 })
	spawn := scriptedSpawner(func(w *scriptedWorker, r Range, _ int) { w.frame(r) })
	onFrame := func(Frame) error { return nil }
	for name, cfg := range map[string]SupervisorConfig{
		"no workers":           {Clock: clock, Spawn: spawn, OnFrame: onFrame},
		"no clock":             {Workers: 1, Spawn: spawn, OnFrame: onFrame},
		"no spawn":             {Workers: 1, Clock: clock, OnFrame: onFrame},
		"no onframe":           {Workers: 1, Clock: clock, Spawn: spawn},
		"deadline needs tick":  {Workers: 1, Clock: clock, Spawn: spawn, OnFrame: onFrame, Deadline: 1},
		"backoff needs tick":   {Workers: 1, Clock: clock, Spawn: spawn, OnFrame: onFrame, Backoff: 1},
	} {
		if _, err := Supervise(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

// TestSuperviseRecoversFromCrashes pins the tentpole guarantee: worker
// crashes cost the affected chunks a re-dispatch on a respawned worker,
// and the merged result stays bit-identical to a failure-free run.
func TestSuperviseRecoversFromCrashes(t *testing.T) {
	const jobs = 40
	m, onFrame := sumFrames(jobs)
	st, err := Supervise(SupervisorConfig{
		Chunks:      Chunks(Range{0, jobs}, 4),
		Workers:     2,
		MaxAttempts: 3,
		Clock:       func() int64 { return 0 },
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, attempt int) {
			if attempt == 0 && r.Lo%8 == 0 {
				w.exit(errors.New("exit code 3"))
				return
			}
			w.frame(r)
		}),
		OnFrame: onFrame,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, jobs)
	if st.Retries != 5 || st.Respawns != 5 {
		t.Fatalf("stats = %+v, want 5 retries and 5 respawns", st)
	}
	if !st.Recovered() {
		t.Fatalf("crashy run reported no recovery: %+v", st)
	}
}

func TestSuperviseKillsPoisonedWorkers(t *testing.T) {
	const jobs = 24
	m, onFrame := sumFrames(jobs)
	st, err := Supervise(SupervisorConfig{
		Chunks:  Chunks(Range{0, jobs}, 4),
		Workers: 2,
		Clock:   func() int64 { return 0 },
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, attempt int) {
			if attempt == 0 && r.Lo == 12 {
				w.garbage()
				return
			}
			w.frame(r)
		}),
		OnFrame: onFrame,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, jobs)
	if st.Garbage != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 garbage event and 1 retry", st)
	}
}

func TestSupervisePoisonsUndispatchedRangeFrames(t *testing.T) {
	const jobs = 16
	m, onFrame := sumFrames(jobs)
	st, err := Supervise(SupervisorConfig{
		Chunks:  Chunks(Range{0, jobs}, 4),
		Workers: 1,
		Clock:   func() int64 { return 0 },
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, attempt int) {
			if attempt == 0 && r.Lo == 0 {
				// A frame for a range the coordinator never dispatched:
				// protocol breach, the worker must not be trusted.
				w.frame(Range{1, 3})
				return
			}
			w.frame(r)
		}),
		OnFrame: onFrame,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, jobs)
	if st.Retries < 1 {
		t.Fatalf("stats = %+v, want the breached chunk re-dispatched", st)
	}
}

func TestSuperviseDropsDuplicateFrames(t *testing.T) {
	const jobs = 20
	m, onFrame := sumFrames(jobs)
	st, err := Supervise(SupervisorConfig{
		Chunks:  Chunks(Range{0, jobs}, 4),
		Workers: 2,
		Clock:   func() int64 { return 0 },
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, _ int) {
			w.frame(r)
			if r.Lo == 4 {
				w.frame(r) // a retried worker re-emitting its chunk
			}
		}),
		OnFrame: onFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, jobs)
	if st.Frames != 5 || st.DupFrames != 1 {
		t.Fatalf("stats = %+v, want 5 novel + 1 duplicate frame", st)
	}
}

// TestSuperviseAbortsDeterministicFailure pins the transient-vs-
// deterministic distinction: a chunk that fails on every fresh worker is
// a bug in the experiment, and the campaign must abort with an error
// naming the job range instead of retrying forever.
func TestSuperviseAbortsDeterministicFailure(t *testing.T) {
	const jobs = 16
	_, onFrame := sumFrames(jobs)
	_, err := Supervise(SupervisorConfig{
		Chunks:      Chunks(Range{0, jobs}, 4),
		Workers:     2,
		MaxAttempts: 3,
		Clock:       func() int64 { return 0 },
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, _ int) {
			if r.Lo == 8 {
				w.exit(errors.New("segmentation fault"))
				return
			}
			w.frame(r)
		}),
		OnFrame: onFrame,
		Logf:    t.Logf,
	})
	if !errors.Is(err, ErrChunkFailed) {
		t.Fatalf("err = %v, want ErrChunkFailed", err)
	}
	for _, frag := range []string{"8:12", "3 times", "segmentation fault"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

func TestSuperviseAbortsOnRepeatedSpawnFailure(t *testing.T) {
	boom := errors.New("fork: resource temporarily unavailable")
	_, err := Supervise(SupervisorConfig{
		Chunks:      Chunks(Range{0, 8}, 4),
		Workers:     1,
		MaxAttempts: 3,
		Clock:       func() int64 { return 0 },
		Spawn: func(slot, inc int, ev chan<- WorkerEvent) (Worker, error) {
			return nil, boom
		},
		OnFrame: func(Frame) error { return nil },
		Logf:    t.Logf,
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the spawn failure", err)
	}
}

func TestSuperviseOnFrameErrorAborts(t *testing.T) {
	sentinel := errors.New("downstream merge refused the frame")
	_, err := Supervise(SupervisorConfig{
		Chunks:  Chunks(Range{0, 8}, 4),
		Workers: 1,
		Clock:   func() int64 { return 0 },
		Spawn:   scriptedSpawner(func(w *scriptedWorker, r Range, _ int) { w.frame(r) }),
		OnFrame: func(Frame) error { return sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the OnFrame error", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	s := &supervisor{cfg: SupervisorConfig{Backoff: 100, BackoffCap: 800}}
	want := []int64{100, 200, 400, 800, 800, 800}
	for i, w := range want {
		if got := s.backoffFor(i + 1); got != w {
			t.Fatalf("backoffFor(%d) = %d, want %d", i+1, got, w)
		}
	}
	flat := &supervisor{cfg: SupervisorConfig{}}
	if got := flat.backoffFor(3); got != 0 {
		t.Fatalf("backoffFor without Backoff = %d, want 0", got)
	}
}

// tickerChan adapts a real ticker to the supervisor's Tick channel for
// the wall-clock tests below (test-only: the non-test supervisor code
// never touches ambient time).
func tickerChan(t *testing.T, every time.Duration) <-chan struct{} {
	t.Helper()
	tick := make(chan struct{})
	done := make(chan struct{})
	tkr := time.NewTicker(every)
	t.Cleanup(func() { close(done); tkr.Stop() })
	go func() {
		for {
			select {
			case <-tkr.C:
				select {
				case tick <- struct{}{}:
				case <-done:
					return
				}
			case <-done:
				return
			}
		}
	}()
	return tick
}

func wallClock(t *testing.T) Clock {
	t.Helper()
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}

// TestSuperviseStragglerReassigned pins hang recovery: a worker that
// accepts a chunk and never frames is detected by the per-chunk frame
// deadline, killed, and its chunk re-dispatched elsewhere.
func TestSuperviseStragglerReassigned(t *testing.T) {
	const jobs = 24
	m, onFrame := sumFrames(jobs)
	st, err := Supervise(SupervisorConfig{
		Chunks:   Chunks(Range{0, jobs}, 4),
		Workers:  2,
		Clock:    wallClock(t),
		Tick:     tickerChan(t, 2*time.Millisecond),
		Deadline: int64(30 * time.Millisecond),
		Grace:    int64(5 * time.Millisecond),
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, attempt int) {
			if attempt == 0 && r.Lo == 8 {
				return // hang: no frame, no exit, until killed
			}
			w.frame(r)
		}),
		OnFrame: onFrame,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, jobs)
	if st.Stragglers < 1 || st.Retries < 1 {
		t.Fatalf("stats = %+v, want the hung chunk detected and retried", st)
	}
}

// TestSuperviseBackoffDelaysRetry pins that a failed chunk's re-dispatch
// waits out the capped exponential backoff.
func TestSuperviseBackoffDelaysRetry(t *testing.T) {
	const backoff = 20 * time.Millisecond
	var mu sync.Mutex
	var dispatchedAt []time.Duration
	start := time.Now()
	m, onFrame := sumFrames(4)
	_, err := Supervise(SupervisorConfig{
		Chunks:  []Range{{0, 4}},
		Workers: 1,
		Clock:   wallClock(t),
		Tick:    tickerChan(t, 2*time.Millisecond),
		Backoff: int64(backoff),
		Spawn: scriptedSpawner(func(w *scriptedWorker, r Range, attempt int) {
			mu.Lock()
			dispatchedAt = append(dispatchedAt, time.Since(start))
			mu.Unlock()
			if attempt == 0 {
				w.exit(errors.New("transient crash"))
				return
			}
			w.frame(r)
		}),
		OnFrame: onFrame,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, m, 4)
	mu.Lock()
	defer mu.Unlock()
	if len(dispatchedAt) != 2 {
		t.Fatalf("dispatches = %v, want exactly 2", dispatchedAt)
	}
	if gap := dispatchedAt[1] - dispatchedAt[0]; gap < backoff {
		t.Fatalf("retry after %v, want at least the %v backoff", gap, backoff)
	}
}

// TestExecSpawnerRunsProcesses drives the supervisor over real worker
// processes speaking the dispatch protocol: /bin/sh loops reading
// "lo:hi:attempt" lines and answering with frame lines, with seeded
// failures (crash, stdout garbage, mid-frame death) on first attempts.
func TestExecSpawnerRunsProcesses(t *testing.T) {
	const jobs = 24
	script := `
while IFS=: read lo hi at; do
  if [ "$at" = "0" ] && [ "$lo" = "4" ]; then exit 3; fi
  if [ "$at" = "0" ] && [ "$lo" = "8" ]; then echo "stdout noise, not a frame"; exit 0; fi
  if [ "$at" = "0" ] && [ "$lo" = "12" ]; then printf '{"v":1,"campaign":"toy","ra'; exit 0; fi
  echo "{\"v\":1,\"campaign\":\"toy\",\"shard\":0,\"shards\":1,\"range\":{\"lo\":$lo,\"hi\":$hi},\"partial\":{\"Sum\":1}}"
done
`
	m := NewMerger(jobs, mergeSum)
	st, err := Supervise(SupervisorConfig{
		Chunks:  Chunks(Range{0, jobs}, 4),
		Workers: 2,
		Clock:   func() int64 { return 0 },
		Spawn: ExecSpawner(func(slot, inc int) []string {
			return []string{"/bin/sh", "-c", script}
		}),
		OnFrame: func(f Frame) error {
			var p sumPartial
			if err := json.Unmarshal(f.Partial, &p); err != nil {
				return err
			}
			return m.Observe(f.Range, p)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Covered() != jobs {
		t.Fatalf("covered %d of %d jobs; missing %v", m.Covered(), jobs, m.Missing())
	}
	got, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sum != 6 { // six chunks, Sum:1 each
		t.Fatalf("merged sum = %d, want 6", got.Sum)
	}
	if st.Retries < 3 || st.Garbage < 1 {
		t.Fatalf("stats = %+v, want crash+garbage+truncation each retried", st)
	}
	if st.PeakRSSBytes <= 0 {
		t.Fatalf("process usage not accounted: %+v", st)
	}
}
