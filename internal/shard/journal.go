// The coordinator journal: a versioned, append-only file of frame lines
// that makes a campaign's coordinator restartable. Every accepted chunk
// partial is appended and periodically fsync'd; a killed coordinator
// resumes by replaying the journal into a fresh Merger, compacting the
// file down to the coalesced covered ranges, and dispatching only the
// uncovered gaps. Because chunk partials are deterministic, anything the
// journal lost (unsynced tail, a line truncated mid-write by the kill)
// costs only that chunk's re-execution — never correctness.
package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// JournalVersion is the journal file-format version.
const JournalVersion = 1

// journalMagic identifies the header line.
const journalMagic = "ravenguard-campaign-journal"

// JournalHeader is the first line of a journal: what campaign the frames
// belong to and how it was sized, so a resume with mismatched flags is
// rejected instead of silently merging incompatible partials.
type JournalHeader struct {
	V        int    `json:"v"`
	Journal  string `json:"journal"`
	Campaign string `json:"campaign"`
	Jobs     int    `json:"jobs"`
	// Config is an opaque digest of every flag that shapes the job-index
	// space and per-job work (seed, sizing overrides); it must match
	// exactly on resume.
	Config string `json:"config,omitempty"`
}

// Journal is an open, appendable campaign journal.
type Journal struct {
	f       *os.File
	w       *bufio.Writer
	pending int
	// FlushEvery bounds how many appended frames may sit unsynced; every
	// FlushEvery-th append flushes and fsyncs. 1 syncs every frame.
	FlushEvery int
}

// ErrJournalExists reports a refused overwrite of an existing journal.
var ErrJournalExists = errors.New("shard: journal already exists (resume it, or remove it for a fresh run)")

// CreateJournal starts a fresh journal at path, writing and syncing the
// header. It refuses to clobber an existing file — hours of covered
// ranges should never vanish because a -resume flag was forgotten.
func CreateJournal(path string, h JournalHeader, flushEvery int) (*Journal, error) {
	h.V = JournalVersion
	h.Journal = journalMagic
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrJournalExists, path)
		}
		return nil, err
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), FlushEvery: flushEvery}
	data, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shard: encode journal header: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Append records one accepted frame, fsyncing every FlushEvery frames.
func (j *Journal) Append(f Frame) error {
	if f.V == 0 {
		f.V = FrameVersion
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("shard: encode journal frame: %w", err)
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	j.pending++
	if j.FlushEvery > 0 && j.pending >= j.FlushEvery {
		return j.Sync()
	}
	return nil
}

// Sync flushes buffered frames and fsyncs the file.
func (j *Journal) Sync() error {
	j.pending = 0
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	serr := j.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// LoadJournal reads a journal written by a previous (possibly killed)
// coordinator: the header, then every decodable frame line. truncated
// reports whether the file ended mid-line — the shape a kill leaves —
// in which case the partial tail is dropped and its chunk resurfaces as
// an uncovered range.
func LoadJournal(path string) (h JournalHeader, frames []Frame, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return JournalHeader{}, nil, false, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 64*1024)
	header, rerr := br.ReadBytes('\n')
	if rerr != nil && rerr != io.EOF {
		return JournalHeader{}, nil, false, rerr
	}
	if jerr := json.Unmarshal(bytes.TrimSpace(header), &h); jerr != nil || h.Journal != journalMagic {
		return JournalHeader{}, nil, false, fmt.Errorf("shard: %s is not a campaign journal", path)
	}
	if h.V != JournalVersion {
		return JournalHeader{}, nil, false, fmt.Errorf("shard: journal version %d, want %d", h.V, JournalVersion)
	}
	if rerr == io.EOF {
		return h, nil, false, nil
	}

	err = ReadFrames(br, func(f Frame) error {
		frames = append(frames, f)
		return nil
	})
	if errors.Is(err, ErrTruncatedTail) {
		return h, frames, true, nil
	}
	if err != nil {
		return JournalHeader{}, nil, false, fmt.Errorf("shard: journal %s: %w", path, err)
	}
	return h, frames, false, nil
}

// CompactJournal atomically rewrites path as header + the given frames
// (a resuming coordinator passes its Merger's coalesced Parts), syncs
// it, and reopens it for appending. The rename keeps a window-free
// guarantee: at every instant the path holds either the old journal or
// the complete compacted one.
func CompactJournal(path string, h JournalHeader, frames []Frame, flushEvery int) (*Journal, error) {
	h.V = JournalVersion
	h.Journal = journalMagic
	tmp := path + ".compact"
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	j, err := CreateJournal(tmp, h, flushEvery)
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		if err := j.Append(f); err != nil {
			j.f.Close()
			return nil, err
		}
	}
	if err := j.Sync(); err != nil {
		j.f.Close()
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		j.f.Close()
		return nil, err
	}
	// Fsync the directory so the rename itself is durable.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return j, nil
}
