// Control-plane chaos: seed-reproducible failure injection for the
// campaign supervisor, mirroring internal/fault's philosophy one level
// up. Where fault.Plan corrupts the simulated robot's pipeline, a
// ChaosPlan corrupts the experiment infrastructure itself — worker
// crashes, mid-frame deaths, stdout garbage, stalls — so the supervision
// layer's recovery guarantees are testable the same way the rig's are:
// same seed, same failures, and the merged campaign output must stay
// byte-identical to a failure-free run.
package shard

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ChaosAction is one control-plane failure a worker inflicts on itself
// when it reaches a chaotic chunk.
type ChaosAction int

// Chaos actions, in decode order.
const (
	// ChaosNone runs the chunk normally.
	ChaosNone ChaosAction = iota
	// ChaosCrash exits nonzero before emitting the chunk's frame — a
	// worker process crash mid-campaign.
	ChaosCrash
	// ChaosTruncate writes part of the chunk's frame line and dies — the
	// stdout shape of a mid-frame SIGKILL.
	ChaosTruncate
	// ChaosGarbage writes a non-frame line on stdout and dies — a
	// corrupted stream the coordinator must refuse to trust.
	ChaosGarbage
	// ChaosStall hangs without emitting anything — straggler-deadline
	// fodder for the supervisor's kill-and-reassign path.
	ChaosStall
)

// String names the action.
func (a ChaosAction) String() string {
	switch a {
	case ChaosNone:
		return "none"
	case ChaosCrash:
		return "crash"
	case ChaosTruncate:
		return "truncate"
	case ChaosGarbage:
		return "garbage"
	case ChaosStall:
		return "stall"
	default:
		return fmt.Sprintf("ChaosAction(%d)", int(a))
	}
}

// ChaosPlan is a declarative, seed-reproducible schedule of control-plane
// failures. Decide is a pure function of (Seed, chunk range, attempt), so
// the same plan reproduces the same failure sequence in any process and
// any dispatch order — no shared RNG stream to position.
//
// Failures hit only dispatch attempts below Attempts (default 1), so a
// retried chunk always eventually succeeds: chaos exercises the recovery
// machinery without being able to starve the campaign. Setting Attempts
// at or above the supervisor's retry cap forces the permanent-failure
// path instead.
type ChaosPlan struct {
	Seed int64
	// Crash, Truncate, Garbage, Stall are per-(chunk, attempt)
	// probabilities of each action; their sum must be at most 1.
	Crash    float64
	Truncate float64
	Garbage  float64
	Stall    float64
	// Attempts bounds which dispatch attempts can fail (0 means 1).
	Attempts int
}

// Enabled reports whether the plan can produce any failure.
func (p ChaosPlan) Enabled() bool {
	return p.Crash > 0 || p.Truncate > 0 || p.Garbage > 0 || p.Stall > 0
}

// Validate checks the rates.
func (p ChaosPlan) Validate() error {
	sum := 0.0
	for _, r := range []float64{p.Crash, p.Truncate, p.Garbage, p.Stall} {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("shard: chaos rate %v outside [0,1]", r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("shard: chaos rates sum to %v > 1", sum)
	}
	if p.Attempts < 0 {
		return fmt.Errorf("shard: chaos attempts %d must be >= 0", p.Attempts)
	}
	return nil
}

// attempts returns the effective failing-attempt bound.
func (p ChaosPlan) attempts() int {
	if p.Attempts <= 0 {
		return 1
	}
	return p.Attempts
}

// Decide returns the action for one dispatch of chunk r on the given
// attempt ordinal (0 = first try).
func (p ChaosPlan) Decide(r Range, attempt int) ChaosAction {
	if !p.Enabled() || attempt >= p.attempts() {
		return ChaosNone
	}
	u := chaosUnit(uint64(p.Seed), uint64(int64(r.Lo)), uint64(int64(attempt)))
	switch {
	case u < p.Crash:
		return ChaosCrash
	case u < p.Crash+p.Truncate:
		return ChaosTruncate
	case u < p.Crash+p.Truncate+p.Garbage:
		return ChaosGarbage
	case u < p.Crash+p.Truncate+p.Garbage+p.Stall:
		return ChaosStall
	default:
		return ChaosNone
	}
}

// chaosUnit hashes (seed, lo, attempt) to a uniform value in [0, 1) with
// splitmix64 finalization — stateless, so decisions are independent of
// evaluation order.
func chaosUnit(seed, lo, attempt uint64) float64 {
	x := seed ^ lo*0x9e3779b97f4a7c15 ^ attempt*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// ParseChaosPlan parses the flag form of a plan:
// "seed=7,crash=0.2,trunc=0.1,garbage=0.1,stall=0.1,attempts=1".
// Unknown keys are rejected; omitted keys default to zero. The empty
// string parses to the zero (disabled) plan.
func ParseChaosPlan(s string) (ChaosPlan, error) {
	var p ChaosPlan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return ChaosPlan{}, fmt.Errorf("shard: chaos spec %q: want key=value, got %q", s, kv)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "crash":
			p.Crash, err = strconv.ParseFloat(val, 64)
		case "trunc", "truncate":
			p.Truncate, err = strconv.ParseFloat(val, 64)
		case "garbage":
			p.Garbage, err = strconv.ParseFloat(val, 64)
		case "stall":
			p.Stall, err = strconv.ParseFloat(val, 64)
		case "attempts":
			p.Attempts, err = strconv.Atoi(val)
		default:
			return ChaosPlan{}, fmt.Errorf("shard: chaos spec: unknown key %q (have seed, crash, trunc, garbage, stall, attempts)", key)
		}
		if err != nil {
			return ChaosPlan{}, fmt.Errorf("shard: chaos spec %q: %v", kv, err)
		}
	}
	if err := p.Validate(); err != nil {
		return ChaosPlan{}, err
	}
	return p, nil
}

// String renders the plan back into ParseChaosPlan's flag form.
func (p ChaosPlan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	add("crash", p.Crash)
	add("trunc", p.Truncate)
	add("garbage", p.Garbage)
	add("stall", p.Stall)
	if p.Attempts > 0 {
		parts = append(parts, fmt.Sprintf("attempts=%d", p.Attempts))
	}
	return strings.Join(parts, ",")
}
