package shard

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
)

// ExecSpawner adapts argv-built worker processes to the supervisor's
// Spawn hook. Each incarnation runs argv(slot, inc) with a dispatch pipe
// on stdin (one "lo:hi:attempt" line per chunk), a frame stream on
// stdout, and stderr passed through. The stdout reader tolerates the
// failure shapes a dying worker produces: a truncated trailing line is
// dropped (the chunk is simply not covered), a newline-terminated
// non-frame line raises EventGarbage, and process death ends with an
// EventExit carrying the exit code or fatal signal plus rusage
// accounting.
func ExecSpawner(argv func(slot, inc int) []string) func(slot, inc int, ev chan<- WorkerEvent) (Worker, error) {
	return func(slot, inc int, ev chan<- WorkerEvent) (Worker, error) {
		args := argv(slot, inc)
		if len(args) == 0 {
			return nil, fmt.Errorf("shard: empty argv for worker slot %d", slot)
		}
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("shard: start worker slot %d: %w", slot, err)
		}
		w := &procWorker{slot: slot, inc: inc, cmd: cmd, stdin: stdin, ev: ev}
		go w.read(stdout)
		return w, nil
	}
}

// procWorker is one supervised worker process.
type procWorker struct {
	slot, inc int
	cmd       *exec.Cmd
	ev        chan<- WorkerEvent

	mu     sync.Mutex
	stdin  io.WriteCloser
	closed bool
}

// Dispatch writes one job line. Failing means the process side of the
// pipe is gone; the supervisor treats the worker as dying and waits for
// its exit event.
func (w *procWorker) Dispatch(r Range, attempt int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("shard: worker %d/inc %d: stdin closed", w.slot, w.inc)
	}
	_, err := fmt.Fprintf(w.stdin, "%d:%d:%d\n", r.Lo, r.Hi, attempt)
	return err
}

// Close ends the dispatch stream; an idle worker exits cleanly on EOF.
func (w *procWorker) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		_ = w.stdin.Close()
	}
}

// Term sends SIGTERM (and closes stdin, so a worker that finishes its
// current chunk also sees end-of-work).
func (w *procWorker) Term() {
	w.Close()
	if p := w.cmd.Process; p != nil {
		_ = p.Signal(syscall.SIGTERM)
	}
}

// Kill sends SIGKILL.
func (w *procWorker) Kill() {
	w.Close()
	if p := w.cmd.Process; p != nil {
		_ = p.Kill()
	}
}

// read streams stdout into events, then reaps the process. It always
// ends with exactly one EventExit.
func (w *procWorker) read(out io.Reader) {
	br := bufio.NewReaderSize(out, 64*1024)
	var poisoned error
	for poisoned == nil {
		line, rerr := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			f, derr := decodeFrame(trimmed)
			switch {
			case derr == nil:
				w.ev <- WorkerEvent{Slot: w.slot, Inc: w.inc, Kind: EventFrame, Frame: f}
			case rerr != nil:
				// Truncated tail: the worker died mid-frame. Drop the
				// partial line; the chunk stays uncovered and is
				// re-dispatched.
			default:
				poisoned = derr
				w.ev <- WorkerEvent{Slot: w.slot, Inc: w.inc, Kind: EventGarbage, Err: derr}
			}
		}
		if rerr != nil {
			break
		}
	}
	if poisoned != nil {
		// The stream is untrusted; drain until the kill lands so the
		// worker cannot block on a full pipe.
		_, _ = io.Copy(io.Discard, br)
	}

	werr := w.cmd.Wait()
	ev := WorkerEvent{Slot: w.slot, Inc: w.inc, Kind: EventExit}
	if werr != nil {
		ev.Err = fmt.Errorf("%s: %w", exitDescription(w.cmd.ProcessState), werr)
	}
	if ps := w.cmd.ProcessState; ps != nil {
		if ru, ok := ps.SysUsage().(*syscall.Rusage); ok {
			ev.RSSBytes = int64(ru.Maxrss) * 1024 // Linux: kilobytes
		}
		ev.CPUSeconds = ps.UserTime().Seconds() + ps.SystemTime().Seconds()
	}
	w.ev <- ev
}
