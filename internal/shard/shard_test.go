package shard

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func TestSplitCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 3}, {1, 1}, {7, 7}, {3, 8}, {1000, 7}, {0, 3},
	} {
		rs := Split(tc.n, tc.k)
		if len(rs) != tc.k {
			t.Fatalf("Split(%d,%d) returned %d ranges", tc.n, tc.k, len(rs))
		}
		lo := 0
		maxLen, minLen := 0, tc.n+1
		for _, r := range rs {
			if r.Lo != lo {
				t.Fatalf("Split(%d,%d): gap/overlap at %v", tc.n, tc.k, r)
			}
			lo = r.Hi
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
		}
		if lo != tc.n {
			t.Fatalf("Split(%d,%d) covers [0,%d)", tc.n, tc.k, lo)
		}
		if tc.n >= tc.k && maxLen-minLen > 1 {
			t.Fatalf("Split(%d,%d) unbalanced: lens %d..%d", tc.n, tc.k, minLen, maxLen)
		}
	}
}

func TestOfMatchesSplit(t *testing.T) {
	rs := Split(23, 5)
	for i := range rs {
		r, err := Of(23, i, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r != rs[i] {
			t.Fatalf("Of(23,%d,5) = %v, Split gives %v", i, r, rs[i])
		}
	}
	if _, err := Of(23, 5, 5); err == nil {
		t.Fatal("Of with index == count should fail")
	}
	if _, err := Of(23, -1, 5); err == nil {
		t.Fatal("Of with negative index should fail")
	}
}

func TestParseSpec(t *testing.T) {
	i, k, err := ParseSpec("2/8")
	if err != nil || i != 2 || k != 8 {
		t.Fatalf("ParseSpec(2/8) = %d,%d,%v", i, k, err)
	}
	for _, bad := range []string{"", "3", "3/", "/4", "4/4", "-1/4", "a/b"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestChunks(t *testing.T) {
	cs := Chunks(Range{Lo: 5, Hi: 22}, 6)
	want := []Range{{5, 11}, {11, 17}, {17, 22}}
	if !reflect.DeepEqual(cs, want) {
		t.Fatalf("Chunks = %v, want %v", cs, want)
	}
	if cs := Chunks(Range{Lo: 3, Hi: 3}, 6); cs != nil {
		t.Fatalf("Chunks of empty range = %v, want nil", cs)
	}
	if cs := Chunks(Range{Lo: 0, Hi: 4}, 0); !reflect.DeepEqual(cs, []Range{{0, 4}}) {
		t.Fatalf("Chunks with size 0 = %v, want whole range", cs)
	}
}

// sumPartial is a toy exactly-mergeable partial: the sum of job indices.
type sumPartial struct{ Sum int }

func mergeSum(a, b sumPartial) (sumPartial, error) {
	return sumPartial{Sum: a.Sum + b.Sum}, nil
}

func sumOver(r Range) sumPartial {
	s := 0
	for i := r.Lo; i < r.Hi; i++ {
		s += i
	}
	return sumPartial{Sum: s}
}

func TestMergerOutOfOrderAndPermuted(t *testing.T) {
	const jobs = 97
	want := sumOver(Range{0, jobs}).Sum
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		chunks := Chunks(Range{0, jobs}, 1+rng.Intn(13))
		perm := rng.Perm(len(chunks))
		m := NewMerger(jobs, mergeSum)
		for step, pi := range perm {
			if _, err := m.Result(); err == nil && step < len(perm) {
				// Result must refuse until coverage completes (unless the
				// permutation is already done, checked below).
				if m.Covered() != jobs {
					t.Fatal("Result succeeded on partial coverage")
				}
			}
			if err := m.Observe(chunks[pi], sumOver(chunks[pi])); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		got, err := m.Result()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Sum != want {
			t.Fatalf("trial %d: merged sum %d, want %d", trial, got.Sum, want)
		}
	}
}

func TestMergerRejectsOverlap(t *testing.T) {
	m := NewMerger(10, mergeSum)
	if err := m.Observe(Range{0, 6}, sumOver(Range{0, 6})); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(Range{5, 10}, sumOver(Range{5, 10})); err == nil {
		t.Fatal("overlapping partial should be rejected")
	}
	if err := m.Observe(Range{0, 6}, sumOver(Range{0, 6})); err == nil {
		t.Fatal("duplicate partial should be rejected")
	}
	if err := m.Observe(Range{-1, 2}, sumPartial{}); err == nil {
		t.Fatal("out-of-space partial should be rejected")
	}
}

func TestMergerReportsMissingRanges(t *testing.T) {
	m := NewMerger(10, mergeSum)
	if err := m.Observe(Range{3, 6}, sumOver(Range{3, 6})); err != nil {
		t.Fatal(err)
	}
	_, err := m.Result()
	if err == nil {
		t.Fatal("Result on gappy coverage should fail")
	}
	for _, frag := range []string{"0:3", "6:10"} {
		if !bytes.Contains([]byte(err.Error()), []byte(frag)) {
			t.Fatalf("error %q does not name missing range %s", err, frag)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	partial, _ := json.Marshal(sumPartial{Sum: 41})
	frames := []Frame{
		{Campaign: "faultcampaign", Shard: 0, Shards: 2, Range: Range{0, 3}, Partial: partial},
		{Campaign: "faultcampaign", Shard: 1, Shards: 2, Range: Range{3, 6}, Partial: partial},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	var got []Frame
	if err := ReadFrames(&buf, func(f Frame) error { got = append(got, f); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i, f := range got {
		if f.V != FrameVersion || f.Campaign != "faultcampaign" || f.Range != frames[i].Range {
			t.Fatalf("frame %d mismatch: %+v", i, f)
		}
		var p sumPartial
		if err := json.Unmarshal(f.Partial, &p); err != nil {
			t.Fatal(err)
		}
		if p.Sum != 41 {
			t.Fatalf("frame %d partial = %+v", i, p)
		}
	}
}

func TestReadFramesRejectsGarbage(t *testing.T) {
	err := ReadFrames(bytes.NewBufferString("not json\n"), func(Frame) error { return nil })
	if err == nil {
		t.Fatal("garbage line should fail")
	}
	err = ReadFrames(bytes.NewBufferString(`{"v":99,"campaign":"x","shard":0,"shards":1,"range":{"lo":0,"hi":1},"partial":{}}`+"\n"),
		func(Frame) error { return nil })
	if err == nil {
		t.Fatal("wrong frame version should fail")
	}
}

func TestRunWorkers(t *testing.T) {
	// Spawn /bin/sh workers that each print one well-formed frame.
	stats, err := RunWorkers(2, func(i int) []string {
		frame, _ := json.Marshal(Frame{
			V: FrameVersion, Campaign: "toy", Shard: i, Shards: 2,
			Range:   Range{Lo: i * 3, Hi: i*3 + 3},
			Partial: json.RawMessage(`{"Sum":1}`),
		})
		return []string{"/bin/sh", "-c", "echo '" + string(frame) + "'"}
	}, func(f Frame) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakRSSBytes <= 0 {
		t.Fatalf("peak RSS not measured: %+v", stats)
	}
}

func TestRunWorkersPropagatesFailure(t *testing.T) {
	_, err := RunWorkers(2, func(i int) []string {
		if i == 1 {
			return []string{"/bin/sh", "-c", "exit 3"}
		}
		return []string{"/bin/sh", "-c", "sleep 0.05"}
	}, func(f Frame) error { return nil })
	if err == nil {
		t.Fatal("worker failure should propagate")
	}
}
