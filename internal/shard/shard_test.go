package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestSplitCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 3}, {1, 1}, {7, 7}, {3, 8}, {1000, 7}, {0, 3},
	} {
		rs := Split(tc.n, tc.k)
		if len(rs) != tc.k {
			t.Fatalf("Split(%d,%d) returned %d ranges", tc.n, tc.k, len(rs))
		}
		lo := 0
		maxLen, minLen := 0, tc.n+1
		for _, r := range rs {
			if r.Lo != lo {
				t.Fatalf("Split(%d,%d): gap/overlap at %v", tc.n, tc.k, r)
			}
			lo = r.Hi
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
		}
		if lo != tc.n {
			t.Fatalf("Split(%d,%d) covers [0,%d)", tc.n, tc.k, lo)
		}
		if tc.n >= tc.k && maxLen-minLen > 1 {
			t.Fatalf("Split(%d,%d) unbalanced: lens %d..%d", tc.n, tc.k, minLen, maxLen)
		}
	}
}

func TestOfMatchesSplit(t *testing.T) {
	rs := Split(23, 5)
	for i := range rs {
		r, err := Of(23, i, 5)
		if err != nil {
			t.Fatal(err)
		}
		if r != rs[i] {
			t.Fatalf("Of(23,%d,5) = %v, Split gives %v", i, r, rs[i])
		}
	}
	if _, err := Of(23, 5, 5); err == nil {
		t.Fatal("Of with index == count should fail")
	}
	if _, err := Of(23, -1, 5); err == nil {
		t.Fatal("Of with negative index should fail")
	}
}

func TestParseSpec(t *testing.T) {
	i, k, err := ParseSpec("2/8")
	if err != nil || i != 2 || k != 8 {
		t.Fatalf("ParseSpec(2/8) = %d,%d,%v", i, k, err)
	}
	for _, bad := range []string{"", "3", "3/", "/4", "4/4", "-1/4", "a/b"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestChunks(t *testing.T) {
	cs := Chunks(Range{Lo: 5, Hi: 22}, 6)
	want := []Range{{5, 11}, {11, 17}, {17, 22}}
	if !reflect.DeepEqual(cs, want) {
		t.Fatalf("Chunks = %v, want %v", cs, want)
	}
	if cs := Chunks(Range{Lo: 3, Hi: 3}, 6); cs != nil {
		t.Fatalf("Chunks of empty range = %v, want nil", cs)
	}
	if cs := Chunks(Range{Lo: 0, Hi: 4}, 0); !reflect.DeepEqual(cs, []Range{{0, 4}}) {
		t.Fatalf("Chunks with size 0 = %v, want whole range", cs)
	}
}

// sumPartial is a toy exactly-mergeable partial: the sum of job indices.
type sumPartial struct{ Sum int }

func mergeSum(a, b sumPartial) (sumPartial, error) {
	return sumPartial{Sum: a.Sum + b.Sum}, nil
}

func sumOver(r Range) sumPartial {
	s := 0
	for i := r.Lo; i < r.Hi; i++ {
		s += i
	}
	return sumPartial{Sum: s}
}

func TestMergerOutOfOrderAndPermuted(t *testing.T) {
	const jobs = 97
	want := sumOver(Range{0, jobs}).Sum
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		chunks := Chunks(Range{0, jobs}, 1+rng.Intn(13))
		perm := rng.Perm(len(chunks))
		m := NewMerger(jobs, mergeSum)
		for step, pi := range perm {
			if _, err := m.Result(); err == nil && step < len(perm) {
				// Result must refuse until coverage completes (unless the
				// permutation is already done, checked below).
				if m.Covered() != jobs {
					t.Fatal("Result succeeded on partial coverage")
				}
			}
			if err := m.Observe(chunks[pi], sumOver(chunks[pi])); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		got, err := m.Result()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Sum != want {
			t.Fatalf("trial %d: merged sum %d, want %d", trial, got.Sum, want)
		}
	}
}

func TestMergerRejectsPartialOverlap(t *testing.T) {
	m := NewMerger(10, mergeSum)
	if err := m.Observe(Range{0, 6}, sumOver(Range{0, 6})); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(Range{5, 10}, sumOver(Range{5, 10})); err == nil {
		t.Fatal("partially overlapping partial should be rejected")
	}
	if err := m.Observe(Range{4, 8}, sumOver(Range{4, 8})); err == nil {
		t.Fatal("partial straddling the covered boundary should be rejected")
	}
	if err := m.Observe(Range{-1, 2}, sumPartial{}); err == nil {
		t.Fatal("out-of-space partial should be rejected")
	}
}

// TestMergerDropsCoveredDuplicates pins the retry-replay contract: a
// chunk re-observed after a worker retry (or journal replay) is a no-op
// — coverage, part structure, and the final Result bits are unchanged.
func TestMergerDropsCoveredDuplicates(t *testing.T) {
	const jobs = 12
	m := NewMerger(jobs, mergeSum)
	for _, r := range []Range{{0, 4}, {4, 8}} {
		if err := m.Observe(r, sumOver(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Exact duplicate of an original chunk, a range inside the coalesced
	// part, and the whole coalesced part itself: all already covered.
	for _, dup := range []Range{{0, 4}, {4, 8}, {2, 6}, {0, 8}, {5, 5}} {
		if err := m.Observe(dup, sumOver(dup)); err != nil {
			t.Fatalf("re-observing covered %v: %v", dup, err)
		}
	}
	if m.Covered() != 8 {
		t.Fatalf("Covered = %d after duplicates, want 8", m.Covered())
	}
	if m.Dropped() != 4 {
		// The empty range is not counted as a drop.
		t.Fatalf("Dropped = %d, want 4", m.Dropped())
	}
	if err := m.Observe(Range{8, jobs}, sumOver(Range{8, jobs})); err != nil {
		t.Fatal(err)
	}
	got, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := sumOver(Range{0, jobs}); got != want {
		t.Fatalf("Result after duplicates = %+v, want %+v", got, want)
	}
}

func TestMergerMissingAndParts(t *testing.T) {
	m := NewMerger(20, mergeSum)
	for _, r := range []Range{{2, 5}, {5, 8}, {12, 15}} {
		if err := m.Observe(r, sumOver(r)); err != nil {
			t.Fatal(err)
		}
	}
	wantGaps := []Range{{0, 2}, {8, 12}, {15, 20}}
	if got := m.Missing(); !reflect.DeepEqual(got, wantGaps) {
		t.Fatalf("Missing = %v, want %v", got, wantGaps)
	}
	parts := m.Parts()
	wantParts := []Range{{2, 8}, {12, 15}}
	if len(parts) != len(wantParts) {
		t.Fatalf("Parts = %v, want ranges %v", parts, wantParts)
	}
	for i, p := range parts {
		if p.Range != wantParts[i] {
			t.Fatalf("part %d range = %v, want %v", i, p.Range, wantParts[i])
		}
		if p.Partial != sumOver(p.Range) {
			t.Fatalf("part %d partial = %+v, want %+v", i, p.Partial, sumOver(p.Range))
		}
	}
}

func TestMergerReportsMissingRanges(t *testing.T) {
	m := NewMerger(10, mergeSum)
	if err := m.Observe(Range{3, 6}, sumOver(Range{3, 6})); err != nil {
		t.Fatal(err)
	}
	_, err := m.Result()
	if err == nil {
		t.Fatal("Result on gappy coverage should fail")
	}
	for _, frag := range []string{"0:3", "6:10"} {
		if !bytes.Contains([]byte(err.Error()), []byte(frag)) {
			t.Fatalf("error %q does not name missing range %s", err, frag)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	partial, _ := json.Marshal(sumPartial{Sum: 41})
	frames := []Frame{
		{Campaign: "faultcampaign", Shard: 0, Shards: 2, Range: Range{0, 3}, Partial: partial},
		{Campaign: "faultcampaign", Shard: 1, Shards: 2, Range: Range{3, 6}, Partial: partial},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	var got []Frame
	if err := ReadFrames(&buf, func(f Frame) error { got = append(got, f); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i, f := range got {
		if f.V != FrameVersion || f.Campaign != "faultcampaign" || f.Range != frames[i].Range {
			t.Fatalf("frame %d mismatch: %+v", i, f)
		}
		var p sumPartial
		if err := json.Unmarshal(f.Partial, &p); err != nil {
			t.Fatal(err)
		}
		if p.Sum != 41 {
			t.Fatalf("frame %d partial = %+v", i, p)
		}
	}
}

func TestReadFramesRejectsGarbage(t *testing.T) {
	err := ReadFrames(bytes.NewBufferString("not json\n"), func(Frame) error { return nil })
	if err == nil {
		t.Fatal("garbage line should fail")
	}
	err = ReadFrames(bytes.NewBufferString(`{"v":99,"campaign":"x","shard":0,"shards":1,"range":{"lo":0,"hi":1},"partial":{}}`+"\n"),
		func(Frame) error { return nil })
	if err == nil {
		t.Fatal("wrong frame version should fail")
	}
}

// TestReadFramesTruncatedTail pins the worker-died-mid-write shape: the
// complete frames before the torn line are all delivered, and the tail
// surfaces as ErrTruncatedTail (chunk lost) rather than a generic decode
// failure (campaign abort).
func TestReadFramesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	whole := Range{0, 3}
	partial, _ := json.Marshal(sumPartial{Sum: 3})
	if err := WriteFrame(&buf, Frame{Campaign: "toy", Shards: 1, Range: whole, Partial: partial}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"v":1,"campaign":"toy","ran`) // no trailing newline

	var got []Frame
	err := ReadFrames(&buf, func(f Frame) error { got = append(got, f); return nil })
	if !errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("err = %v, want ErrTruncatedTail", err)
	}
	if len(got) != 1 || got[0].Range != whole {
		t.Fatalf("frames before the torn tail = %+v, want the one complete frame", got)
	}

	// A complete final frame merely missing its newline is still a frame.
	buf.Reset()
	if err := WriteFrame(&buf, Frame{Campaign: "toy", Shards: 1, Range: whole, Partial: partial}); err != nil {
		t.Fatal(err)
	}
	buf.Truncate(buf.Len() - 1)
	got = nil
	if err := ReadFrames(&buf, func(f Frame) error { got = append(got, f); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("newline-less complete frame dropped: %+v", got)
	}
}

func TestRunWorkers(t *testing.T) {
	// Spawn /bin/sh workers that each print one well-formed frame.
	stats, err := RunWorkers(2, func(i int) []string {
		frame, _ := json.Marshal(Frame{
			V: FrameVersion, Campaign: "toy", Shard: i, Shards: 2,
			Range:   Range{Lo: i * 3, Hi: i*3 + 3},
			Partial: json.RawMessage(`{"Sum":1}`),
		})
		return []string{"/bin/sh", "-c", "echo '" + string(frame) + "'"}
	}, func(f Frame) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakRSSBytes <= 0 {
		t.Fatalf("peak RSS not measured: %+v", stats)
	}
}

func TestRunWorkersPropagatesFailure(t *testing.T) {
	_, err := RunWorkers(2, func(i int) []string {
		if i == 1 {
			return []string{"/bin/sh", "-c", "exit 3"}
		}
		return []string{"/bin/sh", "-c", "sleep 0.05"}
	}, func(f Frame) error { return nil })
	if err == nil {
		t.Fatal("worker failure should propagate")
	}
}
