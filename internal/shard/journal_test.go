package shard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testFrame(r Range) Frame {
	p, _ := json.Marshal(sumOver(r))
	return Frame{V: FrameVersion, Campaign: "toy", Shards: 1, Range: r, Partial: p}
}

func testHeader() JournalHeader {
	return JournalHeader{Campaign: "toy", Jobs: 12, Config: "seed=1"}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := CreateJournal(path, testHeader(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ranges := []Range{{0, 4}, {4, 8}, {8, 12}}
	for _, r := range ranges {
		if err := j.Append(testFrame(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	h, frames, truncated, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("clean journal reported a truncated tail")
	}
	if h.Campaign != "toy" || h.Jobs != 12 || h.Config != "seed=1" || h.V != JournalVersion {
		t.Fatalf("header = %+v", h)
	}
	if len(frames) != len(ranges) {
		t.Fatalf("loaded %d frames, want %d", len(frames), len(ranges))
	}
	m := NewMerger(12, mergeSum)
	for _, f := range frames {
		var p sumPartial
		if err := json.Unmarshal(f.Partial, &p); err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(f.Range, p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := sumOver(Range{0, 12}); got != want {
		t.Fatalf("replayed result %+v, want %+v", got, want)
	}
}

func TestJournalRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := CreateJournal(path, testHeader(), 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := CreateJournal(path, testHeader(), 1); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("err = %v, want ErrJournalExists", err)
	}
}

func TestJournalHeaderOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := CreateJournal(path, testHeader(), 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	h, frames, truncated, err := LoadJournal(path)
	if err != nil || truncated || len(frames) != 0 {
		t.Fatalf("header-only journal: %+v frames=%v truncated=%v err=%v", h, frames, truncated, err)
	}
}

// TestJournalTruncatedTail pins the kill shape: a coordinator murdered
// mid-Append leaves a partial trailing line, which resume must treat as
// "that chunk is uncovered", not as corruption.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := CreateJournal(path, testHeader(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testFrame(Range{0, 4})); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"campaign":"toy","ra`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, frames, truncated, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("mid-line tail not reported as truncated")
	}
	if len(frames) != 1 || frames[0].Range != (Range{0, 4}) {
		t.Fatalf("frames = %+v, want the one complete frame", frames)
	}
}

func TestLoadJournalRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	notJournal := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(notJournal, []byte("just some text\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadJournal(notJournal); err == nil {
		t.Fatal("non-journal file accepted")
	}

	wrongVersion := filepath.Join(dir, "old.journal")
	line := `{"v":99,"journal":"` + journalMagic + `","campaign":"toy","jobs":1}` + "\n"
	if err := os.WriteFile(wrongVersion, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadJournal(wrongVersion); err == nil {
		t.Fatal("wrong journal version accepted")
	}
}

// TestCompactJournal pins the resume-time rewrite: the journal shrinks to
// the coalesced covered parts, stays appendable, and the rewrite is
// atomic (the temp file never lingers).
func TestCompactJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := CreateJournal(path, testHeader(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Range{{0, 4}, {4, 8}, {8, 12}, {0, 4}} { // one duplicate
		if err := j.Append(testFrame(r)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, frames, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(12, mergeSum)
	for _, f := range frames {
		var p sumPartial
		if err := json.Unmarshal(f.Partial, &p); err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(f.Range, p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Dropped() != 1 {
		t.Fatalf("replay dropped %d duplicates, want 1", m.Dropped())
	}
	var compacted []Frame
	for _, pt := range m.Parts() {
		p, _ := json.Marshal(pt.Partial)
		compacted = append(compacted, Frame{Campaign: "toy", Shards: 1, Range: pt.Range, Partial: p})
	}

	j2, err := CompactJournal(path, testHeader(), compacted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(testFrame(Range{4, 8})); err != nil { // post-compaction append works
		t.Fatal(err)
	}
	j2.Close()

	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Fatalf("compaction temp file left behind: %v", err)
	}
	h, got, truncated, err := LoadJournal(path)
	if err != nil || truncated {
		t.Fatalf("reload: truncated=%v err=%v", truncated, err)
	}
	if h.Campaign != "toy" {
		t.Fatalf("header = %+v", h)
	}
	// One coalesced part (the 4 appends covered [0,12) contiguously) plus
	// the post-compaction append.
	if len(got) != 2 || got[0].Range != (Range{0, 12}) || got[1].Range != (Range{4, 8}) {
		t.Fatalf("compacted frames = %+v", got)
	}
}

func TestJournalFlushEveryBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := CreateJournal(path, testHeader(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(testFrame(Range{0, 4})); err != nil {
		t.Fatal(err)
	}
	// With FlushEvery=100 the frame sits in the bufio buffer: the on-disk
	// file holds only the (synced) header line so far.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := json.Marshal(JournalHeader{V: JournalVersion, Journal: journalMagic, Campaign: "toy", Jobs: 12, Config: "seed=1"})
	if fi.Size() != int64(len(h)+1) {
		t.Fatalf("journal grew to %d bytes before FlushEvery; unsynced appends should stay buffered", fi.Size())
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	fi2, _ := os.Stat(path)
	if fi2.Size() <= fi.Size() {
		t.Fatal("Sync did not flush the buffered frame")
	}
}
