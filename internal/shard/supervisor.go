// The supervision layer: a chunk-granular dispatcher that makes
// campaigns survive worker crashes, hangs, poisoned streams, and (with a
// Journal) coordinator restarts — while staying bit-identical to a clean
// in-process run. The recovery argument is the same determinism contract
// the merge layer rests on: a chunk's partial aggregate is a pure
// function of its job range, so lost chunks can be re-run anywhere, and
// duplicate frames from retried workers carry no new information and are
// dropped by coverage.
package shard

import (
	"errors"
	"fmt"
)

// Clock returns a monotonic timestamp in nanoseconds — the injectable
// sim.Clock discipline applied to the control plane. The supervisor
// never reads the wall clock itself: production passes sim.WallClock,
// tests pass a scripted clock, and the determinism analyzer keeps this
// package free of ambient time.
type Clock func() int64

// WorkerEventKind tags a supervised worker's lifecycle events.
type WorkerEventKind int

// Worker event kinds.
const (
	// EventFrame delivers one decoded partial-aggregate frame.
	EventFrame WorkerEventKind = iota + 1
	// EventGarbage reports an undecodable (newline-terminated) line on
	// the worker's stdout: the stream can no longer be trusted to frame
	// correctly, so the supervisor kills the worker and re-dispatches its
	// outstanding chunk.
	EventGarbage
	// EventExit reports that the worker terminated; Err is nil for a
	// clean exit after end-of-work, and carries exit context otherwise.
	// It is always the last event a worker incarnation emits.
	EventExit
)

// WorkerEvent is one event from a supervised worker incarnation.
type WorkerEvent struct {
	Slot int // worker slot [0, Workers)
	Inc  int // incarnation id, unique across respawns
	Kind WorkerEventKind

	Frame Frame // EventFrame
	Err   error // EventGarbage: decode error; EventExit: exit context

	// Exit resource accounting (EventExit, real processes only).
	RSSBytes   int64
	CPUSeconds float64
}

// Worker is one supervised worker incarnation. Implementations deliver
// WorkerEvents to the channel handed to their Spawn function, ending
// with exactly one EventExit.
type Worker interface {
	// Dispatch asks the worker to run one chunk; attempt is the chunk's
	// retry ordinal (0 = first try).
	Dispatch(r Range, attempt int) error
	// Close tells the worker no more work is coming (graceful shutdown:
	// close stdin); an idle worker must then exit cleanly.
	Close()
	// Term asks the worker to stop now (SIGTERM for processes).
	Term()
	// Kill forcibly terminates the worker (SIGKILL).
	Kill()
}

// SupervisorStats counts what the supervision layer absorbed.
type SupervisorStats struct {
	Frames     int // novel frames accepted
	DupFrames  int // duplicate frames dropped by coverage
	Garbage    int // poisoned-stream events
	Retries    int // chunk re-dispatches after a failure
	Respawns   int // worker incarnations beyond the initial set
	Stragglers int // workers killed for missing a chunk deadline

	// Worker resource usage, aggregated across incarnations.
	PeakRSSBytes int64
	TotalCPU     float64
}

// Recovered reports whether the supervision layer absorbed any failure.
func (st SupervisorStats) Recovered() bool {
	return st.DupFrames > 0 || st.Garbage > 0 || st.Retries > 0 ||
		st.Respawns > 0 || st.Stragglers > 0
}

// SupervisorConfig configures Supervise.
type SupervisorConfig struct {
	// Chunks is the work list: the job ranges to cover. On a fresh run
	// this is Chunks(Range{0, jobs}, chunkSize); on a resume it is the
	// journal's uncovered gaps, re-chunked.
	Chunks []Range
	// Workers is the number of worker slots to keep filled.
	Workers int
	// MaxAttempts is how many times one chunk may be dispatched before
	// its failure is declared deterministic and the campaign aborts with
	// an error naming the job range (0 means 4).
	MaxAttempts int
	// Clock is the time source for deadlines and backoff (required).
	Clock Clock
	// Tick delivers periodic wakeups for deadline/backoff polling. It is
	// required when Deadline or Backoff is set: without it the supervisor
	// only acts on worker events and could wait forever on a hung worker.
	Tick <-chan struct{}
	// Deadline is the per-chunk frame-arrival budget in Clock units; a
	// dispatched chunk older than this marks its worker a straggler,
	// which is killed (Term, then Kill after Grace) and its chunk
	// re-dispatched. 0 disables straggler detection.
	Deadline int64
	// Backoff is the base delay in Clock units before a failed chunk is
	// re-dispatched, doubling per attempt up to BackoffCap. 0 retries
	// immediately.
	Backoff    int64
	BackoffCap int64
	// Grace is the Term-to-Kill escalation delay in Clock units for
	// workers that ignore a graceful stop (0 means immediate Kill).
	Grace int64
	// Spawn starts worker incarnation inc in the given slot, delivering
	// its events to ev.
	Spawn func(slot, inc int, ev chan<- WorkerEvent) (Worker, error)
	// OnFrame receives each novel (coverage-advancing) frame, serialized
	// in arrival order. An error aborts the campaign.
	OnFrame func(Frame) error
	// Logf, when non-nil, receives recovery diagnostics (retries,
	// respawns, stragglers) — stderr in the coordinator, test logs in
	// tests.
	Logf func(format string, args ...any)
}

// chunk dispatch states.
const (
	chunkPending = iota
	chunkDispatched
	chunkDone
)

// supChunk is the supervisor's view of one work item.
type supChunk struct {
	r          Range
	state      int
	attempts   int   // dispatches so far
	eligibleAt int64 // backoff gate while pending
	deadlineAt int64 // straggler gate while dispatched
}

// supWorker is one live worker incarnation.
type supWorker struct {
	slot     int
	inc      int
	w        Worker
	chunk    int // index into chunks, -1 when idle
	stopping bool
	killAt   int64
	killed   bool
}

// supSlot tracks one worker slot across incarnations.
type supSlot struct {
	inc       int // current incarnation, -1 while awaiting respawn
	respawnAt int64
	fails     int // consecutive spawn failures
}

type supervisor struct {
	cfg    SupervisorConfig
	events chan WorkerEvent
	chunks []supChunk
	byLo   map[int]int // chunk lookup: Range.Lo -> index (ranges are disjoint)
	slots  []supSlot
	byInc  map[int]*supWorker // event lookup only — never iterated
	live   []*supWorker       // iteration order: spawn order
	nextID int
	done   int
	stats  SupervisorStats

	shuttingDown bool
	fatal        error
}

// ErrChunkFailed wraps a chunk whose failure persisted across the retry
// budget — a deterministic failure, not a transient one.
var ErrChunkFailed = errors.New("shard: chunk failed deterministically")

// Supervise runs the chunk list to completion across respawnable
// workers, returning once every chunk's frame has been accepted (or a
// deterministic failure / OnFrame error aborted the campaign). It is the
// fault-tolerant counterpart of RunWorkers: worker crashes, hangs,
// truncated frames and garbage output cost only the affected chunks'
// re-execution, never the campaign.
func Supervise(cfg SupervisorConfig) (SupervisorStats, error) {
	if cfg.Workers < 1 {
		return SupervisorStats{}, fmt.Errorf("shard: worker count %d must be >= 1", cfg.Workers)
	}
	if cfg.Clock == nil || cfg.Spawn == nil || cfg.OnFrame == nil {
		return SupervisorStats{}, fmt.Errorf("shard: supervisor needs Clock, Spawn and OnFrame")
	}
	if (cfg.Deadline > 0 || cfg.Backoff > 0) && cfg.Tick == nil {
		return SupervisorStats{}, fmt.Errorf("shard: Deadline/Backoff require a Tick channel to poll them")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = cfg.Backoff * 16
	}

	s := &supervisor{
		cfg:    cfg,
		events: make(chan WorkerEvent, 4*cfg.Workers+16),
		chunks: make([]supChunk, 0, len(cfg.Chunks)),
		byLo:   make(map[int]int, len(cfg.Chunks)),
		slots:  make([]supSlot, cfg.Workers),
		byInc:  make(map[int]*supWorker),
	}
	for _, r := range cfg.Chunks {
		if r.Len() <= 0 {
			continue
		}
		s.byLo[r.Lo] = len(s.chunks)
		s.chunks = append(s.chunks, supChunk{r: r})
	}
	for i := range s.slots {
		s.slots[i].inc = -1
	}

	if len(s.chunks) == 0 {
		return s.stats, nil
	}

	for {
		s.reap()
		if len(s.live) == 0 && (s.fatal != nil || s.done == len(s.chunks)) {
			return s.stats, s.fatal
		}
		if len(s.live) == 0 && s.cfg.Tick == nil {
			// No workers and nothing to wake us: Spawn just failed. Poll
			// events and retry immediately; the consecutive-failure budget
			// in reap bounds this loop.
			select {
			case ev := <-s.events:
				s.handle(ev)
			default:
			}
			continue
		}
		select {
		case ev := <-s.events:
			s.handle(ev)
		case <-s.cfg.Tick:
		}
	}
}

func (s *supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// abort latches the first fatal error and starts a hard shutdown.
func (s *supervisor) abort(err error) {
	if s.fatal == nil {
		s.fatal = err
	}
	s.shuttingDown = true
}

// backoffFor returns the capped exponential re-dispatch delay for a
// chunk's n-th retry (n >= 1).
func (s *supervisor) backoffFor(n int) int64 {
	if s.cfg.Backoff <= 0 {
		return 0
	}
	d := s.cfg.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= s.cfg.BackoffCap {
			return s.cfg.BackoffCap
		}
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	return d
}

// requeue returns a dispatched chunk to the pending pool after a failed
// attempt, or aborts if the chunk has exhausted its budget — at that
// point the failure is deterministic (the same range failed MaxAttempts
// times on fresh workers), and the error names the job range.
func (s *supervisor) requeue(ci int, now int64, cause error) {
	c := &s.chunks[ci]
	if c.state != chunkDispatched {
		return
	}
	if c.attempts >= s.cfg.MaxAttempts {
		s.abort(fmt.Errorf("%w: job range %v failed %d times, last cause: %v",
			ErrChunkFailed, c.r, c.attempts, cause))
		return
	}
	backoff := s.backoffFor(c.attempts)
	c.state = chunkPending
	c.eligibleAt = now + backoff
	s.stats.Retries++
	s.logf("shard: re-dispatching job range %v (attempt %d/%d, backoff %dms): %v",
		c.r, c.attempts, s.cfg.MaxAttempts, backoff/1e6, cause)
}

// releaseChunk detaches a dying worker from its outstanding chunk and
// requeues it.
func (s *supervisor) releaseChunk(ws *supWorker, now int64, cause error) {
	if ws.chunk >= 0 {
		s.requeue(ws.chunk, now, cause)
		ws.chunk = -1
	}
}

// stopWorker initiates a stop: graceful Term first, hard Kill after
// Grace (or immediately without a Tick channel to schedule escalation).
func (s *supervisor) stopWorker(ws *supWorker, now int64, hard bool) {
	if ws.killed {
		return
	}
	if hard || s.cfg.Tick == nil {
		ws.killed = true
		ws.stopping = true
		ws.w.Kill()
		return
	}
	if !ws.stopping {
		ws.stopping = true
		ws.killAt = now + s.cfg.Grace
		ws.w.Term()
	}
}

// dropLive removes an exited worker from the iteration list.
func (s *supervisor) dropLive(ws *supWorker) {
	for i, w := range s.live {
		if w == ws {
			s.live = append(s.live[:i], s.live[i+1:]...)
			return
		}
	}
}

// handle processes one worker event.
func (s *supervisor) handle(ev WorkerEvent) {
	now := s.cfg.Clock()
	ws := s.byInc[ev.Inc]
	switch ev.Kind {
	case EventFrame:
		ci, ok := s.byLo[ev.Frame.Range.Lo]
		if !ok || s.chunks[ci].r != ev.Frame.Range {
			// A frame for a range we never dispatched: protocol breach —
			// treat like garbage from this worker.
			s.logf("shard: worker %d/inc %d: frame for undispatched range %v", ev.Slot, ev.Inc, ev.Frame.Range)
			s.poison(ws, now, fmt.Errorf("frame for undispatched range %v", ev.Frame.Range))
			return
		}
		c := &s.chunks[ci]
		if c.state == chunkDone {
			// A retried chunk completed twice (e.g. a straggler finished
			// right after its replacement was dispatched): coverage says
			// the bits are already merged — drop the duplicate.
			s.stats.DupFrames++
			if ws != nil && ws.chunk == ci {
				ws.chunk = -1
			}
			return
		}
		if s.shuttingDown {
			return
		}
		if err := s.cfg.OnFrame(ev.Frame); err != nil {
			s.abort(fmt.Errorf("shard: observe frame %v: %w", ev.Frame.Range, err))
			return
		}
		c.state = chunkDone
		s.done++
		s.stats.Frames++
		// Idle whichever worker delivered it; a stale incarnation's frame
		// leaves the retry dispatchee running — its duplicate is dropped
		// when it lands.
		if ws != nil && ws.chunk == ci {
			ws.chunk = -1
		}
	case EventGarbage:
		if ws == nil {
			return
		}
		s.stats.Garbage++
		s.logf("shard: worker %d/inc %d: poisoned stdout: %v", ev.Slot, ev.Inc, ev.Err)
		s.poison(ws, now, ev.Err)
	case EventExit:
		if ws == nil {
			return
		}
		delete(s.byInc, ev.Inc)
		s.dropLive(ws)
		if ev.RSSBytes > s.stats.PeakRSSBytes {
			s.stats.PeakRSSBytes = ev.RSSBytes
		}
		s.stats.TotalCPU += ev.CPUSeconds
		cause := ev.Err
		if cause == nil {
			cause = errWorkerExitedEarly
		}
		s.releaseChunk(ws, now, fmt.Errorf("worker %d/inc %d: %w", ev.Slot, ev.Inc, cause))
		slot := &s.slots[ws.slot]
		if slot.inc == ev.Inc {
			slot.inc = -1
			slot.respawnAt = now
			if ev.Err != nil && !ws.stopping {
				s.logf("shard: worker %d/inc %d died: %v", ev.Slot, ev.Inc, ev.Err)
			}
		}
	}
}

var errWorkerExitedEarly = errors.New("worker exited before delivering the chunk's frame")

// poison kills a worker whose output can no longer be trusted and
// requeues its outstanding chunk.
func (s *supervisor) poison(ws *supWorker, now int64, cause error) {
	if ws == nil {
		return
	}
	s.releaseChunk(ws, now, cause)
	s.stopWorker(ws, now, true)
}

// reap advances everything the clock gates: shutdown, straggler
// deadlines, kill escalation, respawns, and dispatching pending chunks
// to idle workers.
func (s *supervisor) reap() {
	now := s.cfg.Clock()

	if s.fatal == nil && s.done == len(s.chunks) {
		s.shuttingDown = true
	}
	if s.shuttingDown {
		for _, ws := range s.live {
			if s.fatal != nil {
				s.stopWorker(ws, now, true)
				continue
			}
			if !ws.stopping {
				// Graceful: end-of-work; idle workers exit on their own.
				ws.stopping = true
				ws.killAt = now + s.cfg.Grace
				ws.w.Close()
				if s.cfg.Tick == nil {
					ws.killed = true
					ws.w.Kill()
				}
			}
		}
	}

	// Straggler detection: dispatched chunks past their frame deadline.
	if s.cfg.Deadline > 0 && !s.shuttingDown {
		for _, ws := range s.live {
			if ws.chunk < 0 || ws.stopping || now < s.chunks[ws.chunk].deadlineAt {
				continue
			}
			s.stats.Stragglers++
			s.logf("shard: worker %d/inc %d hung on job range %v (no frame within %dms); killing and reassigning",
				ws.slot, ws.inc, s.chunks[ws.chunk].r, s.cfg.Deadline/1e6)
			s.releaseChunk(ws, now, fmt.Errorf("no frame within the %dms deadline", s.cfg.Deadline/1e6))
			s.stopWorker(ws, now, false)
		}
	}

	// Term -> Kill escalation for workers that ignored a graceful stop.
	for _, ws := range s.live {
		if ws.stopping && !ws.killed && now >= ws.killAt {
			ws.killed = true
			ws.w.Kill()
		}
	}

	if s.shuttingDown {
		return
	}

	// Respawn empty slots while work remains.
	if s.done < len(s.chunks) {
		for i := range s.slots {
			slot := &s.slots[i]
			if slot.inc != -1 || now < slot.respawnAt {
				continue
			}
			inc := s.nextID
			s.nextID++
			w, err := s.cfg.Spawn(i, inc, s.events)
			if err != nil {
				slot.fails++
				if slot.fails >= s.cfg.MaxAttempts {
					s.abort(fmt.Errorf("shard: spawning worker for slot %d failed %d times: %w", i, slot.fails, err))
					return
				}
				slot.respawnAt = now + s.backoffFor(slot.fails)
				s.logf("shard: spawn worker slot %d: %v (retrying)", i, err)
				continue
			}
			slot.fails = 0
			slot.inc = inc
			if inc >= s.cfg.Workers {
				s.stats.Respawns++
			}
			ws := &supWorker{slot: i, inc: inc, w: w, chunk: -1}
			s.byInc[inc] = ws
			s.live = append(s.live, ws)
		}
	}

	// Dispatch pending, eligible chunks to idle workers.
	for _, ws := range s.live {
		if ws.chunk >= 0 || ws.stopping {
			continue
		}
		ci := s.nextPending(now)
		if ci < 0 {
			break
		}
		c := &s.chunks[ci]
		if err := ws.w.Dispatch(c.r, c.attempts); err != nil {
			// The worker's stdin is gone — it is dead or dying. The chunk
			// stays pending; the exit event recycles the slot.
			s.logf("shard: dispatch %v to worker %d/inc %d: %v", c.r, ws.slot, ws.inc, err)
			s.stopWorker(ws, now, true)
			continue
		}
		c.state = chunkDispatched
		c.attempts++
		c.deadlineAt = now + s.cfg.Deadline
		ws.chunk = ci
	}
}

// nextPending returns the lowest-indexed pending chunk whose backoff has
// expired, or -1.
func (s *supervisor) nextPending(now int64) int {
	for i := range s.chunks {
		c := &s.chunks[i]
		if c.state == chunkPending && now >= c.eligibleAt {
			return i
		}
	}
	return -1
}
