package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"ravenguard/internal/inject"
	"ravenguard/internal/metrics"
)

// Table4Config parameterises the E4 experiment (paper Table IV): detection
// performance of the dynamic-model guard versus RAVEN's built-in checks.
// The paper scored 1,925 scenario-A and 1,361 scenario-B runs.
type Table4Config struct {
	RunsA int
	RunsB int
	// FaultFreeFrac is the fraction of fault-free (negative) runs mixed in
	// (default 0.15).
	FaultFreeFrac float64
	BaseSeed      int64
}

// Table4Cell is one detector's scores for one scenario.
type Table4Cell struct {
	Technique string
	Confusion metrics.Confusion
}

// Table4Scenario is one scenario's pair of rows.
type Table4Scenario struct {
	Name      string
	Runs      int
	Positives int
	Dyn       Table4Cell
	Raven     Table4Cell
}

// Table4Result is both scenarios.
type Table4Result struct {
	A Table4Scenario
	B Table4Scenario
}

// scenarioAGrid returns the attack parameter grid for scenario A: per-cycle
// malicious tip displacements from 50 um (50 mm/s, the edge of plausible
// surgical motion) up to 0.8 mm (a hard commanded jump).
func scenarioAGrid() ([]float64, []int) {
	return []float64{5e-5, 1e-4, 2e-4, 4e-4, 8e-4},
		[]int{8, 16, 32, 64, 128, 256}
}

// scenarioBGrid returns the attack parameter grid for scenario B. The
// upper values model the paper's random-byte corruption flipping high
// DAC bytes (large instantaneous command errors).
func scenarioBGrid() ([]int16, []int) {
	return []int16{2000, 4000, 8000, 12000, 16000, 20000, 24000, 28000},
		[]int{2, 4, 8, 16, 32, 64, 128, 256}
}

// RunTable4 executes the detection campaign.
func RunTable4(cfg Table4Config) (Table4Result, error) {
	if cfg.RunsA == 0 {
		cfg.RunsA = 1925
	}
	if cfg.RunsB == 0 {
		cfg.RunsB = 1361
	}
	if cfg.FaultFreeFrac == 0 {
		cfg.FaultFreeFrac = 0.15
	}

	a, err := runScenarioACampaign(cfg)
	if err != nil {
		return Table4Result{}, err
	}
	b, err := runScenarioBCampaign(cfg)
	if err != nil {
		return Table4Result{}, err
	}
	return Table4Result{A: a, B: b}, nil
}

func runScenarioACampaign(cfg Table4Config) (Table4Scenario, error) {
	rng := rand.New(rand.NewSource(cfg.BaseSeed + 101))
	mags, durs := scenarioAGrid()
	trials := make([]Trial, 0, cfg.RunsA)
	for i := 0; i < cfg.RunsA; i++ {
		trial := Trial{
			Seed:     cfg.BaseSeed + int64(1000+i%97), // reuse a seed pool: references are cached
			TrajIdx:  i % 2,
			Scenario: ScenarioA,
			A: inject.ScenarioAParams{
				Magnitude:       mags[i%len(mags)],
				StartAfterTicks: 500 + rng.Intn(2000),
				ActivationTicks: durs[(i/len(mags))%len(durs)],
			},
		}
		if rng.Float64() < cfg.FaultFreeFrac {
			trial.Scenario = ScenarioNone
		}
		trials = append(trials, trial)
	}
	results, err := runTrials(trials)
	if err != nil {
		return Table4Scenario{}, fmt.Errorf("experiment: table4 A: %w", err)
	}
	return scoreScenario("A (User inputs)", results), nil
}

func runScenarioBCampaign(cfg Table4Config) (Table4Scenario, error) {
	rng := rand.New(rand.NewSource(cfg.BaseSeed + 202))
	vals, durs := scenarioBGrid()
	trials := make([]Trial, 0, cfg.RunsB)
	for i := 0; i < cfg.RunsB; i++ {
		trial := Trial{
			Seed:     cfg.BaseSeed + int64(3000+i%97),
			TrajIdx:  i % 2,
			Scenario: ScenarioB,
			B: inject.ScenarioBParams{
				Value:           vals[i%len(vals)],
				Channel:         i % 3,
				StartDelayTicks: 500 + rng.Intn(2000),
				ActivationTicks: durs[(i/len(vals))%len(durs)],
				Seed:            int64(i),
			},
		}
		if rng.Float64() < cfg.FaultFreeFrac {
			trial.Scenario = ScenarioNone
		}
		trials = append(trials, trial)
	}
	results, err := runTrials(trials)
	if err != nil {
		return Table4Scenario{}, fmt.Errorf("experiment: table4 B: %w", err)
	}
	return scoreScenario("B (Torque commands)", results), nil
}

// scoreScenario accumulates trial results into a Table IV scenario block.
func scoreScenario(name string, results []Result) Table4Scenario {
	sc := Table4Scenario{Name: name, Runs: len(results)}
	sc.Dyn.Technique = "Dynamic Model"
	sc.Raven.Technique = "RAVEN"
	for _, res := range results {
		if res.Impact {
			sc.Positives++
		}
		sc.Dyn.Confusion.Observe(res.Impact, res.DynPreemptive)
		sc.Raven.Confusion.Observe(res.Impact, res.RavenDetected)
	}
	return sc
}

// Write renders the paper's Table IV.
func (r Table4Result) Write(w io.Writer) {
	fmt.Fprintln(w, "TABLE IV. Dynamic-model based detection performance vs RAVEN detector")
	fmt.Fprintf(w, "%-22s %-15s %7s %7s %7s %7s\n", "Attack Scenario", "Technique", "ACC", "TPR", "FPR", "F1")
	for _, sc := range []Table4Scenario{r.A, r.B} {
		for _, cell := range []Table4Cell{sc.Dyn, sc.Raven} {
			c := cell.Confusion
			fmt.Fprintf(w, "%-22s %-15s %7.1f %7.1f %7.1f %7.1f\n",
				sc.Name, cell.Technique, c.Accuracy(), c.TPR(), c.FPR(), c.F1())
		}
		fmt.Fprintf(w, "  (%d runs, %d with adverse impact)\n", sc.Runs, sc.Positives)
	}
	avgACC := (r.A.Dyn.Confusion.Accuracy() + r.B.Dyn.Confusion.Accuracy()) / 2
	avgF1 := (r.A.Dyn.Confusion.F1() + r.B.Dyn.Confusion.F1()) / 2
	fmt.Fprintf(w, "Dynamic model average: ACC=%.1f F1=%.1f (paper: ACC=90, F1=82)\n", avgACC, avgF1)
}
