package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"ravenguard/internal/inject"
	"ravenguard/internal/metrics"
)

// Table4Config parameterises the E4 experiment (paper Table IV): detection
// performance of the dynamic-model guard versus RAVEN's built-in checks.
// The paper scored 1,925 scenario-A and 1,361 scenario-B runs.
type Table4Config struct {
	RunsA int
	RunsB int
	// FaultFreeFrac is the fraction of fault-free (negative) runs mixed in
	// (default 0.15).
	FaultFreeFrac float64
	BaseSeed      int64
}

// Table4Cell is one detector's scores for one scenario.
type Table4Cell struct {
	Technique string
	Confusion metrics.Confusion
}

// Table4Scenario is one scenario's pair of rows.
type Table4Scenario struct {
	Name      string
	Runs      int
	Positives int
	Dyn       Table4Cell
	Raven     Table4Cell
}

// Table4Result is both scenarios.
type Table4Result struct {
	A Table4Scenario
	B Table4Scenario
}

// scenarioAGrid returns the attack parameter grid for scenario A: per-cycle
// malicious tip displacements from 50 um (50 mm/s, the edge of plausible
// surgical motion) up to 0.8 mm (a hard commanded jump).
func scenarioAGrid() ([]float64, []int) {
	return []float64{5e-5, 1e-4, 2e-4, 4e-4, 8e-4},
		[]int{8, 16, 32, 64, 128, 256}
}

// scenarioBGrid returns the attack parameter grid for scenario B. The
// upper values model the paper's random-byte corruption flipping high
// DAC bytes (large instantaneous command errors).
func scenarioBGrid() ([]int16, []int) {
	return []int16{2000, 4000, 8000, 12000, 16000, 20000, 24000, 28000},
		[]int{2, 4, 8, 16, 32, 64, 128, 256}
}

// applyDefaults fills the campaign's default sizing in place.
func (cfg *Table4Config) applyDefaults() {
	if cfg.RunsA == 0 {
		cfg.RunsA = 1925
	}
	if cfg.RunsB == 0 {
		cfg.RunsB = 1361
	}
	if cfg.FaultFreeFrac == 0 {
		cfg.FaultFreeFrac = 0.15
	}
}

// Table4Jobs is the size of the campaign's shardable job space: the
// scenario-A trials at global indices [0, RunsA), the scenario-B trials at
// [RunsA, RunsA+RunsB).
func Table4Jobs(cfg Table4Config) int {
	cfg.applyDefaults()
	return cfg.RunsA + cfg.RunsB
}

// Table4Block is the mergeable partial score of one scenario: pure counts,
// so adjacent ranges merge exactly.
type Table4Block struct {
	Runs      int               `json:"runs"`
	Positives int               `json:"positives"`
	Dyn       metrics.Confusion `json:"dyn"`
	Raven     metrics.Confusion `json:"raven"`
}

func (b *Table4Block) merge(other Table4Block) {
	b.Runs += other.Runs
	b.Positives += other.Positives
	b.Dyn.Merge(other.Dyn)
	b.Raven.Merge(other.Raven)
}

// Table4Partial is the campaign's partial aggregate over one job range.
type Table4Partial struct {
	A Table4Block `json:"a"`
	B Table4Block `json:"b"`
}

// RunTable4 executes the detection campaign.
func RunTable4(cfg Table4Config) (Table4Result, error) {
	cfg.applyDefaults()
	p, err := RunTable4Range(cfg, 0, Table4Jobs(cfg))
	if err != nil {
		return Table4Result{}, err
	}
	return FinalizeTable4(p), nil
}

// RunTable4Range runs the trials at global indices [lo, hi) and returns
// their partial score. Trial parameters regenerate deterministically from
// the config for any range (the parameter rng streams replay from the
// start, which costs only the skipped draws), and the scores are pure
// counts, so partials of any contiguous partition merge into the same
// numbers the whole-campaign run produces.
func RunTable4Range(cfg Table4Config, lo, hi int) (Table4Partial, error) {
	cfg.applyDefaults()
	jobs := cfg.RunsA + cfg.RunsB
	if lo < 0 || hi > jobs || lo > hi {
		return Table4Partial{}, fmt.Errorf("experiment: table4 range %d:%d outside [0,%d)", lo, hi, jobs)
	}
	var p Table4Partial
	if aHi := min(hi, cfg.RunsA); lo < aHi {
		results, err := runTrials(scenarioATrials(cfg, lo, aHi))
		if err != nil {
			return Table4Partial{}, fmt.Errorf("experiment: table4 A: %w", err)
		}
		p.A = scoreBlock(results)
	}
	if bLo := max(lo-cfg.RunsA, 0); cfg.RunsA < hi {
		results, err := runTrials(scenarioBTrials(cfg, bLo, hi-cfg.RunsA))
		if err != nil {
			return Table4Partial{}, fmt.Errorf("experiment: table4 B: %w", err)
		}
		p.B = scoreBlock(results)
	}
	return p, nil
}

// mergeTable4Partials combines the partial scores of two adjacent ranges.
func mergeTable4Partials(a, b Table4Partial) (Table4Partial, error) {
	a.A.merge(b.A)
	a.B.merge(b.B)
	return a, nil
}

// FinalizeTable4 renders a full-coverage partial as the paper's table.
func FinalizeTable4(p Table4Partial) Table4Result {
	return Table4Result{
		A: finalizeScenario("A (User inputs)", p.A),
		B: finalizeScenario("B (Torque commands)", p.B),
	}
}

func finalizeScenario(name string, b Table4Block) Table4Scenario {
	return Table4Scenario{
		Name:      name,
		Runs:      b.Runs,
		Positives: b.Positives,
		Dyn:       Table4Cell{Technique: "Dynamic Model", Confusion: b.Dyn},
		Raven:     Table4Cell{Technique: "RAVEN", Confusion: b.Raven},
	}
}

// scenarioATrials builds the scenario-A trials at indices [lo, hi). The
// parameter rng is replayed from index 0 so every index draws the same
// values regardless of the requested range.
func scenarioATrials(cfg Table4Config, lo, hi int) []Trial {
	rng := rand.New(rand.NewSource(cfg.BaseSeed + 101))
	mags, durs := scenarioAGrid()
	trials := make([]Trial, 0, hi-lo)
	for i := 0; i < hi; i++ {
		start := 500 + rng.Intn(2000)
		faultFree := rng.Float64() < cfg.FaultFreeFrac
		if i < lo {
			continue
		}
		trial := Trial{
			Seed:     cfg.BaseSeed + int64(1000+i%97), // reuse a seed pool: references are cached
			TrajIdx:  i % 2,
			Scenario: ScenarioA,
			A: inject.ScenarioAParams{
				Magnitude:       mags[i%len(mags)],
				StartAfterTicks: start,
				ActivationTicks: durs[(i/len(mags))%len(durs)],
			},
		}
		if faultFree {
			trial.Scenario = ScenarioNone
		}
		trials = append(trials, trial)
	}
	return trials
}

// scenarioBTrials builds the scenario-B trials at indices [lo, hi).
func scenarioBTrials(cfg Table4Config, lo, hi int) []Trial {
	rng := rand.New(rand.NewSource(cfg.BaseSeed + 202))
	vals, durs := scenarioBGrid()
	trials := make([]Trial, 0, hi-lo)
	for i := 0; i < hi; i++ {
		start := 500 + rng.Intn(2000)
		faultFree := rng.Float64() < cfg.FaultFreeFrac
		if i < lo {
			continue
		}
		trial := Trial{
			Seed:     cfg.BaseSeed + int64(3000+i%97),
			TrajIdx:  i % 2,
			Scenario: ScenarioB,
			B: inject.ScenarioBParams{
				Value:           vals[i%len(vals)],
				Channel:         i % 3,
				StartDelayTicks: start,
				ActivationTicks: durs[(i/len(vals))%len(durs)],
				Seed:            int64(i),
			},
		}
		if faultFree {
			trial.Scenario = ScenarioNone
		}
		trials = append(trials, trial)
	}
	return trials
}

// scoreBlock accumulates trial results into a mergeable scenario block.
func scoreBlock(results []Result) Table4Block {
	var b Table4Block
	b.Runs = len(results)
	for _, res := range results {
		if res.Impact {
			b.Positives++
		}
		b.Dyn.Observe(res.Impact, res.DynPreemptive)
		b.Raven.Observe(res.Impact, res.RavenDetected)
	}
	return b
}

// Write renders the paper's Table IV.
func (r Table4Result) Write(w io.Writer) {
	fmt.Fprintln(w, "TABLE IV. Dynamic-model based detection performance vs RAVEN detector")
	fmt.Fprintf(w, "%-22s %-15s %7s %7s %7s %7s\n", "Attack Scenario", "Technique", "ACC", "TPR", "FPR", "F1")
	for _, sc := range []Table4Scenario{r.A, r.B} {
		for _, cell := range []Table4Cell{sc.Dyn, sc.Raven} {
			c := cell.Confusion
			fmt.Fprintf(w, "%-22s %-15s %7.1f %7.1f %7.1f %7.1f\n",
				sc.Name, cell.Technique, c.Accuracy(), c.TPR(), c.FPR(), c.F1())
		}
		fmt.Fprintf(w, "  (%d runs, %d with adverse impact)\n", sc.Runs, sc.Positives)
	}
	avgACC := (r.A.Dyn.Confusion.Accuracy() + r.B.Dyn.Confusion.Accuracy()) / 2
	avgF1 := (r.A.Dyn.Confusion.F1() + r.B.Dyn.Confusion.F1()) / 2
	fmt.Fprintf(w, "Dynamic model average: ACC=%.1f F1=%.1f (paper: ACC=90, F1=82)\n", avgACC, avgF1)
}
