package experiment

import (
	"fmt"
	"io"
	"net"
	"os"

	"ravenguard/internal/core"
	"ravenguard/internal/interpose"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/malware"
	"ravenguard/internal/motor"
	"ravenguard/internal/sim"
	"ravenguard/internal/stats"
	"ravenguard/internal/usb"
)

// Table2Config parameterises the E1 experiment (paper Table II): the
// performance overhead of the malicious write-wrapper, measured as the
// execution time of the write path over many calls.
type Table2Config struct {
	// Calls per configuration (paper: 50,000).
	Calls int
	// Clock times each write; defaults to sim.WallClock. Tests inject a
	// deterministic clock so the summary statistics are reproducible.
	Clock sim.Clock
}

// Table2Row is one row of Table II.
type Table2Row struct {
	Name    string
	Summary stats.Summary // microseconds
}

// Table2Result holds the three measured configurations plus an extension
// row: the dynamic-model guard's own cost on the same write path.
type Table2Result struct {
	Baseline  Table2Row
	Logging   Table2Row
	Injection Table2Row
	// Guard is not in the paper's table; it answers the symmetrical
	// question the paper's real-time discussion raises — what the
	// *defense* adds per write (one Euler model step + threshold checks).
	Guard Table2Row
}

// RunTable2 measures the real write path: each call performs an actual
// write(2) of an 18-byte USB frame to /dev/null through the interposition
// chain — bare, with the eavesdropping (logging + UDP exfiltration)
// wrapper, and with the triggered-injection wrapper. The absolute numbers
// depend on the host; the paper's shape is that logging costs roughly an
// order of magnitude more than injection, which costs little over baseline.
func RunTable2(cfg Table2Config) (Table2Result, error) {
	if cfg.Calls == 0 {
		cfg.Calls = 50000
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.WallClock
	}

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		return Table2Result{}, fmt.Errorf("experiment: open %s: %w", os.DevNull, err)
	}
	defer devnull.Close()

	target := func(buf []byte) error {
		_, werr := devnull.Write(buf)
		return werr
	}

	frame := usb.Command{
		StateNibble: 0x0F,
		Watchdog:    true,
		DAC:         [usb.NumChannels]int16{1200, -3400, 560},
	}.Encode()

	measure := func(chain *interpose.Chain) (stats.Summary, error) {
		var acc stats.Running
		buf := make([]byte, len(frame))
		for i := 0; i < cfg.Calls; i++ {
			copy(buf, frame[:]) // injection mutates in place; restore
			start := cfg.Clock()
			if err := chain.Write(buf); err != nil {
				return stats.Summary{}, err
			}
			acc.Add(float64(cfg.Clock()-start) / 1e3)
		}
		return acc.Summarize(), nil
	}

	var out Table2Result

	base, err := measure(interpose.NewChain(target))
	if err != nil {
		return Table2Result{}, err
	}
	out.Baseline = Table2Row{Name: "Baseline System Call", Summary: base}

	// Logging wrapper: exfiltrates every frame to a local UDP sink, the
	// way the Phase-1 malware ships captures to the attacker's server.
	sinkAddr, closeSink, err := startUDPSink()
	if err != nil {
		return Table2Result{}, err
	}
	defer closeSink()
	exfil, err := malware.NewUDPExfil(sinkAddr)
	if err != nil {
		return Table2Result{}, err
	}
	defer exfil.Close()
	logChain := interpose.NewChain(target).Preload(malware.NewLogger(exfil))
	logging, err := measure(logChain)
	if err != nil {
		return Table2Result{}, err
	}
	out.Logging = Table2Row{Name: "With Malicious Wrapper: Logging", Summary: logging}

	// Injection wrapper: inspects Byte 0 and overwrites a DAC value.
	injChain := interpose.NewChain(target).Preload(malware.NewInjector(malware.InjectorConfig{
		Mode:    malware.ModeDACOffset,
		Channel: 0,
		Value:   5000,
	}))
	injection, err := measure(injChain)
	if err != nil {
		return Table2Result{}, err
	}
	out.Injection = Table2Row{Name: "With Malicious Wrapper: Injection", Summary: injection}

	// Extension row: the dynamic-model guard on the write path. It must be
	// synced to a pose before it models anything.
	guard, err := core.NewGuard(core.Config{Thresholds: core.DefaultThresholds()})
	if err != nil {
		return Table2Result{}, err
	}
	guard.OnFeedback(feedbackAtPose(), 0)
	guardChain := interpose.NewChain(target).Append(guard)
	guarded, err := measure(guardChain)
	if err != nil {
		return Table2Result{}, err
	}
	out.Guard = Table2Row{Name: "With Dynamic-Model Guard (defense)", Summary: guarded}

	return out, nil
}

// feedbackAtPose builds an encoder frame at the workspace center.
func feedbackAtPose() usb.Feedback {
	bank := motor.DefaultBank()
	mp := kinematics.DefaultTransmission().ToMotor(kinematics.DefaultLimits().Center())
	var fb usb.Feedback
	for i := 0; i < kinematics.NumJoints; i++ {
		fb.Encoder[i] = bank[i].EncoderCounts(mp[i])
	}
	return fb
}

// startUDPSink opens a local UDP listener that discards datagrams.
func startUDPSink() (addr string, closeFn func(), err error) {
	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return "", nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 256)
		for {
			if _, _, err := conn.ReadFromUDP(buf); err != nil {
				return
			}
		}
	}()
	return conn.LocalAddr().String(), func() {
		conn.Close()
		<-done
	}, nil
}

// Write renders the result as the paper's Table II.
func (r Table2Result) Write(w io.Writer) {
	fmt.Fprintln(w, "TABLE II. PERFORMANCE OVERHEAD OF MALICIOUS SYSTEM CALL (microseconds)")
	fmt.Fprintf(w, "%-36s %8s %8s %8s %8s\n", "", "Min", "Max", "Mean", "Std")
	for _, row := range []Table2Row{r.Baseline, r.Logging, r.Injection, r.Guard} {
		s := row.Summary
		fmt.Fprintf(w, "%-36s %8.2f %8.2f %8.2f %8.2f\n", row.Name, s.Min, s.Max, s.Mean, s.Std)
	}
	fmt.Fprintf(w, "(n = %d calls per row; overhead of logging vs baseline: %.1fx, injection vs baseline: %.2fx)\n",
		r.Baseline.Summary.N,
		ratio(r.Logging.Summary.Mean, r.Baseline.Summary.Mean),
		ratio(r.Injection.Summary.Mean, r.Baseline.Summary.Mean))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
