package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ravenguard/internal/fault"
)

// withWorkers runs f under a fixed pool size and restores the default.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestRunJobsOrderedResults(t *testing.T) {
	withWorkers(t, 8, func() {
		got, err := runJobs(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}

func TestRunJobsFirstErrorAborts(t *testing.T) {
	withWorkers(t, 4, func() {
		var (
			mu  sync.Mutex
			ran []int
		)
		boom := errors.New("boom")
		_, err := runJobs(1000, func(i int) (int, error) {
			mu.Lock()
			ran = append(ran, i)
			mu.Unlock()
			if i == 5 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want wrapped %v", err, boom)
		}
		// After the failure, scheduling must stop: far fewer than 1000 jobs
		// may run (the failing job plus whatever was already in flight).
		if len(ran) >= 1000 {
			t.Fatalf("all %d jobs ran despite an early error", len(ran))
		}
	})
}

func TestRunJobsLowestIndexedError(t *testing.T) {
	// Force every job through one worker so both failures definitely run;
	// the returned error must be the lowest-indexed one.
	withWorkers(t, 1, func() {
		calls := 0
		_, err := runJobs(4, func(i int) (int, error) {
			calls++
			if i == 2 {
				return 0, errors.New("late failure")
			}
			if i == 1 {
				return 0, errors.New("early failure")
			}
			return i, nil
		})
		if err == nil || err.Error() != "early failure" {
			t.Fatalf("err = %v, want the lowest-indexed failure", err)
		}
		if calls >= 4 {
			t.Fatalf("scheduling did not stop after the first failure (%d calls)", calls)
		}
	})
}

func TestRunJobsEmpty(t *testing.T) {
	got, err := runJobs(0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("runJobs(0) = %v, %v", got, err)
	}
}

func TestWorkersKnob(t *testing.T) {
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(-1) // negative resets to the default like 0
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(0)
}

// TestCampaignsSeedIdenticalAcrossWorkerCounts runs a small fault campaign
// (the richest reduction: matrix classification + confusion counts) and
// Figure 6 (rng-scripted captures + cross-run inference) at one worker and
// at eight, requiring bit-identical results: parallelism must only trade
// wall-clock for CPU.
func TestCampaignsSeedIdenticalAcrossWorkerCounts(t *testing.T) {
	cfg := FaultCampaignConfig{
		BaseSeed: 17,
		Seeds:    1,
		Teleop:   4,
		Kinds:    []fault.Kind{fault.KindPacketLoss, fault.KindEncoderDropout},
	}

	var serialFault, parallelFault FaultCampaignResult
	var serialFig6, parallelFig6 Fig6Result
	withWorkers(t, 1, func() {
		var err error
		if serialFault, err = RunFaultCampaign(cfg); err != nil {
			t.Fatal(err)
		}
		if serialFig6, err = RunFig6(7); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if parallelFault, err = RunFaultCampaign(cfg); err != nil {
			t.Fatal(err)
		}
		if parallelFig6, err = RunFig6(7); err != nil {
			t.Fatal(err)
		}
	})

	if !reflect.DeepEqual(serialFault, parallelFault) {
		t.Fatalf("fault campaign differs across worker counts:\nworkers=1: %+v\nworkers=8: %+v",
			serialFault, parallelFault)
	}
	if !reflect.DeepEqual(serialFig6, parallelFig6) {
		t.Fatalf("fig6 differs across worker counts:\nworkers=1: %+v\nworkers=8: %+v",
			serialFig6, parallelFig6)
	}
}
