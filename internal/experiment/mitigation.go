package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/mathx"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/stats"
)

// MitigationConfig sizes the mitigation-strategy comparison (an extension
// experiment: the paper names both strategies — halting via E-STOP and
// holding the last safe state — without quantifying the trade; this
// experiment does).
type MitigationConfig struct {
	// Attacks per arm (default 60).
	Attacks int
	// Value/Duration of the scenario-B attack used for the comparison.
	Value    int16
	Duration int
	BaseSeed int64
}

func (c *MitigationConfig) applyDefaults() {
	if c.Attacks == 0 {
		c.Attacks = 60
	}
	if c.Value == 0 {
		c.Value = 18000
	}
	if c.Duration == 0 {
		c.Duration = 128
	}
}

// MitigationArm is one strategy's outcomes.
type MitigationArm struct {
	Name string
	// JumpRate is the fraction of attacks that still produced a >1 mm
	// unintended jump: a windowed measure (the deviation from the
	// reference changing by more than 1 mm within 50 ms), so that a
	// mitigation that *pauses* the robot is charged lag, not a jump.
	JumpRate float64
	// CompletionRate is the fraction of sessions that finished the
	// procedure (no E-STOP): the availability the paper worries about
	// ("practically make the robot unavailable to the surgical team").
	CompletionRate float64
	// Lag summarises the peak cumulative deviation from the reference
	// (mm) — the catch-up cost of pausing mitigations.
	Lag stats.Summary
	// Jump summarises the peak windowed displacement (mm).
	Jump stats.Summary
}

// jumpWindowTicks is the window of the jump oracle (50 ms at 1 kHz).
const jumpWindowTicks = 50

// MitigationResult compares the arms.
type MitigationResult struct {
	Config MitigationConfig
	Arms   []MitigationArm
}

// mitigationRun is what one attacked session produced.
type mitigationRun struct {
	maxLag    float64 // peak cumulative deviation from the reference, m
	maxJump   float64 // peak windowed displacement, m
	completed bool    // session finished without E-STOP
}

// runMitigationOne attacks one session under one guard mode (0 = no
// guard).
func runMitigationOne(cfg MitigationConfig, mode core.Mode, i int) (mitigationRun, error) {
	trial := Trial{Seed: cfg.BaseSeed + int64(8000+i%37), TrajIdx: i % 2}
	ref, err := trial.reference()
	if err != nil {
		return mitigationRun{}, err
	}

	simCfg := sim.Config{
		Seed:   trial.Seed,
		Script: trial.script(),
		Traj:   trial.trajectory(),
	}
	inj, err := inject.NewScenarioB(inject.ScenarioBParams{
		Value:           cfg.Value,
		Channel:         i % 3,
		StartDelayTicks: 500 + 53*(i%31),
		ActivationTicks: cfg.Duration,
		Seed:            int64(i),
	})
	if err != nil {
		return mitigationRun{}, err
	}
	simCfg.Preload = append(simCfg.Preload, inj)

	if mode != 0 {
		guard, err := core.NewGuard(core.Config{
			Thresholds: core.DefaultThresholds(),
			Mode:       mode,
		})
		if err != nil {
			return mitigationRun{}, err
		}
		simCfg.Guards = append(simCfg.Guards, guard)
	}

	rig, err := sim.New(simCfg)
	if err != nil {
		return mitigationRun{}, err
	}
	var (
		rec    mitigationRun
		step   int
		halted bool
		// devRing holds the recent deviation vectors for the windowed
		// jump measure.
		devRing [jumpWindowTicks]mathx.Vec3
	)
	rig.Observe(func(si sim.StepInfo) {
		// Measure only while the system is live: after a halt the
		// reference keeps moving while the robot is frozen, which is
		// divergence, not motion.
		if !halted && step < len(ref) {
			dev := si.TipTrue.Sub(ref[step])
			if lag := dev.Norm(); lag > rec.maxLag {
				rec.maxLag = lag
			}
			if step >= jumpWindowTicks {
				if j := dev.Sub(devRing[step%jumpWindowTicks]).Norm(); j > rec.maxJump {
					rec.maxJump = j
				}
			}
			devRing[step%jumpWindowTicks] = dev
		}
		if si.PLCEStop {
			halted = true
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return mitigationRun{}, err
	}
	rec.completed = !rig.PLC().EStopped() && rig.Controller().State() != statemachine.EStop
	return rec, nil
}

// mitigationArms lists the compared regimes, in reporting order.
var mitigationArms = []struct {
	name string
	mode core.Mode // 0 = no guard
}{
	{"no guard (RAVEN only)", 0},
	{"guard: E-STOP mitigation", core.ModeMitigate},
	{"guard: hold-last-safe", core.ModeHoldSafe},
}

// RunMitigationComparison attacks identical sessions under three regimes:
// no guard (RAVEN's built-in response only), guard with E-STOP mitigation,
// and guard with hold-last-safe mitigation. All (arm, attack) sessions fan
// out onto the worker pool; each arm's statistics reduce in attack order.
func RunMitigationComparison(cfg MitigationConfig) (MitigationResult, error) {
	cfg.applyDefaults()
	out := MitigationResult{Config: cfg}
	arms := mitigationArms
	recs, err := runJobs(len(arms)*cfg.Attacks, func(i int) (mitigationRun, error) {
		return runMitigationOne(cfg, arms[i/cfg.Attacks].mode, i%cfg.Attacks)
	})
	if err != nil {
		return MitigationResult{}, err
	}

	for ai, armSpec := range arms {
		arm := MitigationArm{Name: armSpec.name}
		jumps, completions := 0, 0
		// Lag/Jump reduce through the index-aligned forest (not a left
		// fold), so sharded sweeps merge to the same bits — see
		// stats.Forest.
		lags, jumpSizes := stats.NewForest(0), stats.NewForest(0)
		for i := 0; i < cfg.Attacks; i++ {
			rec := recs[ai*cfg.Attacks+i]
			if rec.maxJump > AdverseJumpThreshold {
				jumps++
			}
			if rec.completed {
				completions++
			}
			lags.Add(rec.maxLag * 1e3)
			jumpSizes.Add(rec.maxJump * 1e3)
		}
		arm.JumpRate = float64(jumps) / float64(cfg.Attacks)
		arm.CompletionRate = float64(completions) / float64(cfg.Attacks)
		arm.Lag = lags.Summarize()
		arm.Jump = jumpSizes.Summarize()
		out.Arms = append(out.Arms, arm)
	}
	return out, nil
}

// mitigationPrefixSteps is the sweep's fork point: 3.0 s. The earliest
// scenario-B activation is 500 triggered (pedal-down) frames after the
// pedal drops at ~2.55 s, i.e. ~3.05 s — so at 3.0 s every injector is
// still dormant and the session head is independent of the attack value.
const mitigationPrefixSteps = 3000

// mitState is the windowed-jump observer's carried state.
type mitState struct {
	halted  bool
	step    int
	devRing [jumpWindowTicks]mathx.Vec3
}

// observeMitigation attaches the lag/jump observer, resuming from the
// carried state (st and rec mutate in place).
func observeMitigation(rig *sim.Rig, ref []mathx.Vec3, st *mitState, rec *mitigationRun) {
	rig.Observe(func(si sim.StepInfo) {
		// Measure only while the system is live: after a halt the
		// reference keeps moving while the robot is frozen, which is
		// divergence, not motion.
		if !st.halted && st.step < len(ref) {
			dev := si.TipTrue.Sub(ref[st.step])
			if lag := dev.Norm(); lag > rec.maxLag {
				rec.maxLag = lag
			}
			if st.step >= jumpWindowTicks {
				if j := dev.Sub(st.devRing[st.step%jumpWindowTicks]).Norm(); j > rec.maxJump {
					rec.maxJump = j
				}
			}
			st.devRing[st.step%jumpWindowTicks] = dev
		}
		if si.PLCEStop {
			st.halted = true
		}
		st.step++
	})
}

// mitigationSessionRig builds one attacked session rig with the given
// injection value (mirrors runMitigationOne's construction).
func mitigationSessionRig(cfg MitigationConfig, mode core.Mode, i int, value int16) (*sim.Rig, error) {
	trial := Trial{Seed: cfg.BaseSeed + int64(8000+i%37), TrajIdx: i % 2}
	simCfg := sim.Config{
		Seed:   trial.Seed,
		Script: trial.script(),
		Traj:   trial.trajectory(),
	}
	inj, err := inject.NewScenarioB(inject.ScenarioBParams{
		Value:           value,
		Channel:         i % 3,
		StartDelayTicks: 500 + 53*(i%31),
		ActivationTicks: cfg.Duration,
		Seed:            int64(i),
	})
	if err != nil {
		return nil, err
	}
	simCfg.Preload = append(simCfg.Preload, inj)
	if mode != 0 {
		guard, err := core.NewGuard(core.Config{
			Thresholds: core.DefaultThresholds(),
			Mode:       mode,
		})
		if err != nil {
			return nil, err
		}
		simCfg.Guards = append(simCfg.Guards, guard)
	}
	return sim.New(simCfg)
}

// mitPrefix is one (arm, attack) group's shared session head. The rig it
// simulated the head on is carried along (with its observer state, held by
// pointer so the fan sees the prefix observer's writes): the rig was built
// with values[0] and already sits at the fork state, so the fan continues
// it as the first fork lane instead of building and restoring a fresh rig.
type mitPrefix struct {
	rig  *sim.Rig
	snap sim.Snapshot
	ref  []mathx.Vec3
	rec  *mitigationRun // partial lag/jump maxima at the fork point
	st   *mitState
}

// MitigationSweepJobs is the size of the sweep's shardable job space: one
// job per attack index (each covering every arm × value session).
func MitigationSweepJobs(cfg MitigationConfig) int {
	cfg.applyDefaults()
	return cfg.Attacks
}

// MitigationArmPartial is one (value, arm) cell's mergeable aggregate over
// an attack-index range: counters plus the index-aligned lag/jump forests,
// so partials of any contiguous partition merge to the bits of the
// whole-range run.
type MitigationArmPartial struct {
	Attacks     int           `json:"attacks"`
	Jumps       int           `json:"jumps"`
	Completions int           `json:"completions"`
	Lag         *stats.Forest `json:"lag"`
	Jump        *stats.Forest `json:"jump"`
}

// MitigationPartial is the sweep's partial aggregate over one attack-index
// range: the (value, arm) cell grid, value-major.
type MitigationPartial struct {
	Values []int16                `json:"values"`
	Arms   []MitigationArmPartial `json:"arms"`
}

// RunMitigationSweep runs the mitigation comparison for several attack
// values at once, returning one MitigationResult per value (in input
// order), byte-identical to calling RunMitigationComparison per value.
//
// The attacked sessions differ across values only in the value the
// injector writes once it activates — and every injector is still dormant
// at mitigationPrefixSteps — so each (arm, attack) session head is
// simulated once, snapshotted, and forked into one rig per value; the
// forks then step together through the structure-of-arrays batch stepper.
func RunMitigationSweep(values []int16, cfg MitigationConfig) ([]MitigationResult, error) {
	cfg.applyDefaults()
	p, err := RunMitigationSweepRange(values, cfg, 0, cfg.Attacks)
	if err != nil {
		return nil, err
	}
	return FinalizeMitigationSweep(cfg, p)
}

// RunMitigationSweepRange runs the sweep's sessions at attack indices
// [lo, hi) — the campaign's shardable job space.
func RunMitigationSweepRange(values []int16, cfg MitigationConfig, lo, hi int) (MitigationPartial, error) {
	cfg.applyDefaults()
	if len(values) == 0 {
		values = []int16{cfg.Value}
	}
	if lo < 0 || hi > cfg.Attacks || lo > hi {
		return MitigationPartial{}, fmt.Errorf("experiment: mitigation range %d:%d outside [0,%d)", lo, hi, cfg.Attacks)
	}
	span := hi - lo
	arms := mitigationArms
	out := MitigationPartial{Values: append([]int16{}, values...)}
	if span == 0 {
		return out, nil
	}
	groups, err := runGroups(len(arms)*span,
		func(g int) (mitPrefix, error) {
			mode, i := arms[g/span].mode, lo+g%span
			trial := Trial{Seed: cfg.BaseSeed + int64(8000+i%37), TrajIdx: i % 2}
			p := mitPrefix{rec: &mitigationRun{}, st: &mitState{}}
			ref, err := trial.reference()
			if err != nil {
				return p, err
			}
			p.ref = ref
			rig, err := mitigationSessionRig(cfg, mode, i, values[0])
			if err != nil {
				return p, err
			}
			observeMitigation(rig, ref, p.st, p.rec)
			if _, err := rig.Run(mitigationPrefixSteps); err != nil {
				return p, err
			}
			p.rig = rig
			if len(values) > 1 {
				p.snap, err = rig.Snapshot()
			}
			return p, err
		},
		func(int) int { return 1 },
		func(g, _ int, p mitPrefix) ([]mitigationRun, error) {
			mode, i := arms[g/span].mode, lo+g%span
			rigs := make([]*sim.Rig, len(values))
			recs := make([]mitigationRun, len(values))
			states := make([]mitState, len(values))
			// The prefix rig was built with values[0] and is already at the
			// fork state: continue it as lane 0 (its observer keeps writing
			// into p.rec/p.st). The remaining values fork via the snapshot.
			rigs[0] = p.rig
			for vi := 1; vi < len(values); vi++ {
				rig, err := mitigationSessionRig(cfg, mode, i, values[vi])
				if err != nil {
					return nil, err
				}
				if err := rig.Restore(p.snap); err != nil {
					return nil, err
				}
				recs[vi] = *p.rec
				states[vi] = *p.st // arrays copy by value: each fork owns its ring
				observeMitigation(rig, p.ref, &states[vi], &recs[vi])
				rigs[vi] = rig
			}
			if err := sim.RunLockstep(rigs); err != nil {
				return nil, err
			}
			recs[0] = *p.rec
			for vi, rig := range rigs {
				recs[vi].completed = !rig.PLC().EStopped() && rig.Controller().State() != statemachine.EStop
			}
			return recs, nil
		})
	if err != nil {
		return MitigationPartial{}, err
	}

	for range values {
		for range arms {
			out.Arms = append(out.Arms, MitigationArmPartial{
				Attacks: span,
				Lag:     stats.NewForest(lo),
				Jump:    stats.NewForest(lo),
			})
		}
	}
	for vi := range values {
		for ai := range arms {
			cell := &out.Arms[vi*len(arms)+ai]
			for s := 0; s < span; s++ {
				rec := groups[ai*span+s][0][vi]
				if rec.maxJump > AdverseJumpThreshold {
					cell.Jumps++
				}
				if rec.completed {
					cell.Completions++
				}
				cell.Lag.Add(rec.maxLag * 1e3)
				cell.Jump.Add(rec.maxJump * 1e3)
			}
		}
	}
	return out, nil
}

// mergeMitigationPartials combines the partial grids of two adjacent
// attack-index ranges.
func mergeMitigationPartials(a, b MitigationPartial) (MitigationPartial, error) {
	if len(a.Arms) == 0 {
		return b, nil
	}
	if len(b.Arms) == 0 {
		return a, nil
	}
	if len(a.Arms) != len(b.Arms) || len(a.Values) != len(b.Values) {
		return MitigationPartial{}, fmt.Errorf("experiment: mitigation merge: %d/%d vs %d/%d cells/values",
			len(a.Arms), len(a.Values), len(b.Arms), len(b.Values))
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return MitigationPartial{}, fmt.Errorf("experiment: mitigation merge: value %d is %d vs %d", i, a.Values[i], b.Values[i])
		}
	}
	for i := range a.Arms {
		x, y := &a.Arms[i], b.Arms[i]
		x.Attacks += y.Attacks
		x.Jumps += y.Jumps
		x.Completions += y.Completions
		if err := x.Lag.Merge(y.Lag); err != nil {
			return MitigationPartial{}, err
		}
		if err := x.Jump.Merge(y.Jump); err != nil {
			return MitigationPartial{}, err
		}
	}
	return a, nil
}

// FinalizeMitigationSweep renders a full-coverage partial as the per-value
// comparison results.
func FinalizeMitigationSweep(cfg MitigationConfig, p MitigationPartial) ([]MitigationResult, error) {
	cfg.applyDefaults()
	arms := mitigationArms
	if len(p.Arms) != len(p.Values)*len(arms) {
		return nil, fmt.Errorf("experiment: mitigation finalize: %d cells for %d values", len(p.Arms), len(p.Values))
	}
	results := make([]MitigationResult, len(p.Values))
	for vi, v := range p.Values {
		vcfg := cfg
		vcfg.Value = v
		out := MitigationResult{Config: vcfg}
		for ai, armSpec := range arms {
			cell := p.Arms[vi*len(arms)+ai]
			arm := MitigationArm{Name: armSpec.name}
			arm.JumpRate = float64(cell.Jumps) / float64(cell.Attacks)
			arm.CompletionRate = float64(cell.Completions) / float64(cell.Attacks)
			arm.Lag = cell.Lag.Summarize()
			arm.Jump = cell.Jump.Summarize()
			out.Arms = append(out.Arms, arm)
		}
		results[vi] = out
	}
	return results, nil
}

// Write renders the comparison.
func (r MitigationResult) Write(w io.Writer) {
	fmt.Fprintf(w, "MITIGATION COMPARISON (scenario B, value=%d, period=%d ms, %d attacks/arm)\n",
		r.Config.Value, r.Config.Duration, r.Config.Attacks)
	fmt.Fprintf(w, "%-28s %10s %12s %18s %18s\n", "Strategy", "P(jump)", "P(complete)", "jump mean/max mm", "lag mean/max mm")
	for _, arm := range r.Arms {
		fmt.Fprintf(w, "%-28s %10.2f %12.2f %9.2f /%6.2f %9.2f /%6.2f\n",
			arm.Name, arm.JumpRate, arm.CompletionRate,
			arm.Jump.Mean, arm.Jump.Max, arm.Lag.Mean, arm.Lag.Max)
	}
}
