package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/fault"
	"ravenguard/internal/metrics"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

// GuardPolicy is the guard-mode axis of the fault campaign.
type GuardPolicy int

// Guard policies.
const (
	// PolicyOff runs without the dynamic-model guard (RAVEN's built-in
	// checks and the PLC watchdog stay active). Its runs establish the
	// per-fault ground truth for the guarded cells.
	PolicyOff GuardPolicy = iota + 1
	// PolicyMonitor runs the guard in shadow mode.
	PolicyMonitor
	// PolicyMitigate lets the guard neutralise frames and force E-STOP.
	PolicyMitigate
	// PolicyHoldSafe lets the guard hold the last safe command instead.
	PolicyHoldSafe
)

// String names the policy.
func (p GuardPolicy) String() string {
	switch p {
	case PolicyOff:
		return "off"
	case PolicyMonitor:
		return "monitor"
	case PolicyMitigate:
		return "mitigate"
	case PolicyHoldSafe:
		return "holdsafe"
	default:
		return fmt.Sprintf("GuardPolicy(%d)", int(p))
	}
}

func (p GuardPolicy) guardMode() core.Mode {
	switch p {
	case PolicyMitigate:
		return core.ModeMitigate
	case PolicyHoldSafe:
		return core.ModeHoldSafe
	default:
		return core.ModeMonitor
	}
}

// AllPolicies lists the campaign's guard policies, ground-truth runs first.
func AllPolicies() []GuardPolicy {
	return []GuardPolicy{PolicyOff, PolicyMonitor, PolicyMitigate, PolicyHoldSafe}
}

// FaultOutcome classifies how one faulted run ended.
type FaultOutcome int

// Fault outcomes, in classification precedence order.
const (
	// OutcomeCrash means the run panicked — the robustness failure the
	// campaign exists to prove absent.
	OutcomeCrash FaultOutcome = iota + 1
	// OutcomeFalseAlarm means the guard alarmed although the fault caused
	// no adverse impact in the unguarded run.
	OutcomeFalseAlarm
	// OutcomeEStop means the run ended halted (guard mitigation, RAVEN
	// checks or the PLC watchdog) — a safe, if disruptive, end state.
	OutcomeEStop
	// OutcomeMissedImpact means the fault caused an adverse impact and
	// nothing alarmed or halted.
	OutcomeMissedImpact
	// OutcomeRodeThrough means the system absorbed the fault: no crash,
	// no halt, no false alarm, no unhandled impact.
	OutcomeRodeThrough
)

// String names the outcome.
func (o FaultOutcome) String() string {
	switch o {
	case OutcomeCrash:
		return "crash"
	case OutcomeFalseAlarm:
		return "false-alarm"
	case OutcomeEStop:
		return "e-stop"
	case OutcomeMissedImpact:
		return "missed-impact"
	case OutcomeRodeThrough:
		return "rode-through"
	default:
		return fmt.Sprintf("FaultOutcome(%d)", int(o))
	}
}

// FaultCampaignConfig sizes the fault-kind × guard-policy matrix.
type FaultCampaignConfig struct {
	// BaseSeed seeds the rigs (run i uses BaseSeed+i) and the fault plans.
	BaseSeed int64
	// Seeds is the number of seeded runs per cell (default 3).
	Seeds int
	// Teleop is the pedal-down duration per run in seconds (default 6).
	Teleop float64
	// Kinds restricts the fault kinds exercised (default fault.AllKinds()).
	Kinds []fault.Kind
}

// FaultCell aggregates the seeded runs of one fault kind under one guard
// policy.
type FaultCell struct {
	Kind   fault.Kind
	Policy GuardPolicy
	Seeds  int

	// Outcome counts across the cell's seeds.
	Crashes, FalseAlarms, EStops, Missed, RodeThrough int
	// Detected counts runs in which the guard alarmed (useful under
	// PolicyMonitor, where a correct detection still ends rode-through).
	Detected int
	// FaultsApplied sums the injector counters: how many fault actions
	// actually fired across the cell's runs.
	FaultsApplied int
	// MaxDevMM is the peak deviation from the fault-free reference across
	// the cell's runs, millimeters, measured up to the first halt.
	MaxDevMM float64
}

// Outcomes renders the cell's outcome counts compactly.
func (c FaultCell) Outcomes() string {
	s := ""
	add := func(n int, label string) {
		if n == 0 {
			return
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%d×%s", n, label)
	}
	add(c.Crashes, OutcomeCrash.String())
	add(c.FalseAlarms, OutcomeFalseAlarm.String())
	add(c.EStops, OutcomeEStop.String())
	add(c.Missed, OutcomeMissedImpact.String())
	add(c.RodeThrough, OutcomeRodeThrough.String())
	if s == "" {
		return "-"
	}
	return s
}

// FaultCampaignResult is the full matrix plus the guard's detection score.
type FaultCampaignResult struct {
	Cells []FaultCell
	// Confusion scores the guard across every guarded, non-crashed run:
	// truth is the adverse impact observed in the same fault's unguarded
	// run, the prediction is the guard alarming.
	Confusion metrics.Confusion
}

// faultRun is what one seeded run produced.
type faultRun struct {
	crashed bool
	alarm   bool
	halted  bool
	impact  bool
	maxDev  float64
	applied int
}

// campaignFaultAt is when the fault window opens: mid-teleoperation, after
// homing (console.StandardScript starts pedal-down around t=2.6 s).
const campaignFaultAt = 3.5

// campaignPlan schedules one representative event for kind k. The window
// sits inside the teleoperation segment even at the quick campaign's
// shortest session.
func campaignPlan(k fault.Kind, seed int64) fault.Plan {
	e := fault.Event{At: campaignFaultAt, Duration: 1.0, Kind: k}
	switch k {
	case fault.KindPacketLoss:
		// A total loss burst; short enough that the stale-input hold
		// carries the arm through.
		e.Duration = 0.6
	case fault.KindFrameTruncate:
		// Partial truncation so most frames still reach the board and the
		// watchdog keeps getting petted.
		e.Params.Rate = 0.2
	case fault.KindStuckDAC, fault.KindEncoderStuck:
		e.Params.Channel = 0
		e.Duration = 0.6
	case fault.KindEncoderDropout:
		// Half the feedback frames become undecodable.
		e.Params.Rate = 0.5
	case fault.KindBoardStall:
		// Long enough to starve the 50 ms watchdog many times over.
		e.Duration = 0.4
	}
	return fault.Plan{Seed: seed, Events: []fault.Event{e}}
}

// runOne executes one seeded run of kind k under policy pol. A panic
// anywhere in the pipeline is caught and reported as a crashed run.
func (c FaultCampaignConfig) runOne(k fault.Kind, pol GuardPolicy, seedIdx int) (rec faultRun, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec = faultRun{crashed: true}
			err = nil
		}
	}()

	rigSeed := c.BaseSeed + int64(seedIdx)
	ref, err := (Trial{Seed: rigSeed, TrajIdx: 0, Teleop: c.Teleop}).reference()
	if err != nil {
		return rec, err
	}

	cfg := sim.Config{
		Seed:   rigSeed,
		Script: console.StandardScript(c.Teleop),
		Traj:   trajectory.Standard()[0],
	}
	var guard *core.Guard
	if pol != PolicyOff {
		guard, err = core.NewGuard(core.Config{
			Thresholds: core.DefaultThresholds(),
			Mode:       pol.guardMode(),
		})
		if err != nil {
			return rec, err
		}
		cfg.Guards = append(cfg.Guards, guard)
	}
	// Apply after the guard so the write-path faulter lands below it, at
	// the bus.
	inj, err := campaignPlan(k, c.BaseSeed*1000+int64(seedIdx)).Apply(&cfg)
	if err != nil {
		return rec, err
	}
	rig, err := sim.New(cfg)
	if err != nil {
		return rec, err
	}

	halted, step := false, 0
	rig.Observe(func(si sim.StepInfo) {
		if !halted && step < len(ref) {
			if d := si.TipTrue.DistanceTo(ref[step]); d > rec.maxDev {
				rec.maxDev = d
			}
		}
		if si.PLCEStop {
			halted = true
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return rec, err
	}

	rec.applied = inj.Total()
	rec.alarm = guard != nil && guard.Alarms() > 0
	rec.halted = rig.PLC().EStopped() || rig.Controller().State() == statemachine.EStop
	rec.impact = rec.maxDev > AdverseJumpThreshold
	return rec, nil
}

// classifyFaultOutcome maps one run to its outcome. truthImpact is the
// adverse impact the same fault caused in the unguarded run.
func classifyFaultOutcome(rec faultRun, truthImpact bool) FaultOutcome {
	switch {
	case rec.crashed:
		return OutcomeCrash
	case rec.alarm && !truthImpact:
		return OutcomeFalseAlarm
	case rec.halted:
		return OutcomeEStop
	case truthImpact && !rec.alarm:
		return OutcomeMissedImpact
	default:
		return OutcomeRodeThrough
	}
}

// RunFaultCampaign executes the fault-kind × guard-policy matrix. Every
// cell's runs are independent (each derives from BaseSeed and its matrix
// coordinates alone), so they fan out onto the worker pool; classification
// then walks the records single-threaded in the fixed matrix order, so the
// same configuration reproduces the identical matrix at any worker count.
func RunFaultCampaign(c FaultCampaignConfig) (FaultCampaignResult, error) {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Teleop <= 0 {
		c.Teleop = 6
	}
	kinds := c.Kinds
	if len(kinds) == 0 {
		kinds = fault.AllKinds()
	}

	type faultJob struct {
		kind fault.Kind
		pol  GuardPolicy
		seed int
	}
	jobs := make([]faultJob, 0, len(kinds)*len(AllPolicies())*c.Seeds)
	for _, k := range kinds {
		for _, pol := range AllPolicies() {
			for s := 0; s < c.Seeds; s++ {
				jobs = append(jobs, faultJob{k, pol, s})
			}
		}
	}
	recs, err := runJobs(len(jobs), func(i int) (faultRun, error) {
		j := jobs[i]
		rec, err := c.runOne(j.kind, j.pol, j.seed)
		if err != nil {
			return faultRun{}, fmt.Errorf("experiment: fault campaign %v/%v seed %d: %w", j.kind, j.pol, j.seed, err)
		}
		return rec, nil
	})
	if err != nil {
		return FaultCampaignResult{}, err
	}

	var out FaultCampaignResult
	idx := 0
	for range kinds {
		truth := make([]bool, c.Seeds)
		for _, pol := range AllPolicies() {
			cell := FaultCell{Kind: jobs[idx].kind, Policy: pol, Seeds: c.Seeds}
			for s := 0; s < c.Seeds; s++ {
				rec := recs[idx]
				idx++
				if pol == PolicyOff {
					truth[s] = rec.impact
				}
				switch classifyFaultOutcome(rec, truth[s]) {
				case OutcomeCrash:
					cell.Crashes++
				case OutcomeFalseAlarm:
					cell.FalseAlarms++
				case OutcomeEStop:
					cell.EStops++
				case OutcomeMissedImpact:
					cell.Missed++
				case OutcomeRodeThrough:
					cell.RodeThrough++
				}
				if rec.alarm {
					cell.Detected++
				}
				cell.FaultsApplied += rec.applied
				if mm := rec.maxDev * 1e3; mm > cell.MaxDevMM {
					cell.MaxDevMM = mm
				}
				if pol != PolicyOff && !rec.crashed {
					out.Confusion.Observe(truth[s], rec.alarm)
				}
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// Crashes returns the total crash-outcome count across the matrix.
func (r FaultCampaignResult) Crashes() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Crashes
	}
	return n
}

// KindsExercised reports whether every campaigned kind fired at least one
// fault action in at least one cell.
func (r FaultCampaignResult) KindsExercised() bool {
	fired := map[fault.Kind]bool{}
	scheduled := map[fault.Kind]bool{}
	for _, c := range r.Cells {
		scheduled[c.Kind] = true
		if c.FaultsApplied > 0 {
			fired[c.Kind] = true
		}
	}
	for k := range scheduled {
		if !fired[k] {
			return false
		}
	}
	return true
}

// Write renders the matrix.
func (r FaultCampaignResult) Write(w io.Writer) {
	fmt.Fprintln(w, "FAULT CAMPAIGN. Accidental-fault kinds × guard policies (seeded runs per cell)")
	fmt.Fprintf(w, "%-36s %-9s %-36s %8s %7s %10s\n", "Fault kind", "Guard", "Outcomes", "Detected", "Faults", "MaxDev(mm)")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-36s %-9s %-36s %8d %7d %10.2f\n",
			c.Kind, c.Policy, c.Outcomes(), c.Detected, c.FaultsApplied, c.MaxDevMM)
	}
	fmt.Fprintf(w, "Guarded-run detection vs unguarded impact: TP=%d FP=%d TN=%d FN=%d (acc %.1f%%, TPR %.1f%%, FPR %.1f%%)\n",
		r.Confusion.TP, r.Confusion.FP, r.Confusion.TN, r.Confusion.FN,
		r.Confusion.Accuracy(), r.Confusion.TPR(), r.Confusion.FPR())
	fmt.Fprintf(w, "Crash outcomes: %d; every fault kind exercised: %v\n", r.Crashes(), r.KindsExercised())
}
