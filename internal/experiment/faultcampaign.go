package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/console"
	"ravenguard/internal/control"
	"ravenguard/internal/core"
	"ravenguard/internal/fault"
	"ravenguard/internal/mathx"
	"ravenguard/internal/metrics"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

// GuardPolicy is the guard-mode axis of the fault campaign.
type GuardPolicy int

// Guard policies.
const (
	// PolicyOff runs without the dynamic-model guard (RAVEN's built-in
	// checks and the PLC watchdog stay active). Its runs establish the
	// per-fault ground truth for the guarded cells.
	PolicyOff GuardPolicy = iota + 1
	// PolicyMonitor runs the guard in shadow mode.
	PolicyMonitor
	// PolicyMitigate lets the guard neutralise frames and force E-STOP.
	PolicyMitigate
	// PolicyHoldSafe lets the guard hold the last safe command instead.
	PolicyHoldSafe
)

// String names the policy.
func (p GuardPolicy) String() string {
	switch p {
	case PolicyOff:
		return "off"
	case PolicyMonitor:
		return "monitor"
	case PolicyMitigate:
		return "mitigate"
	case PolicyHoldSafe:
		return "holdsafe"
	default:
		return fmt.Sprintf("GuardPolicy(%d)", int(p))
	}
}

func (p GuardPolicy) guardMode() core.Mode {
	switch p {
	case PolicyMitigate:
		return core.ModeMitigate
	case PolicyHoldSafe:
		return core.ModeHoldSafe
	default:
		return core.ModeMonitor
	}
}

// AllPolicies lists the campaign's guard policies, ground-truth runs first.
func AllPolicies() []GuardPolicy {
	return []GuardPolicy{PolicyOff, PolicyMonitor, PolicyMitigate, PolicyHoldSafe}
}

// FaultOutcome classifies how one faulted run ended.
type FaultOutcome int

// Fault outcomes, in classification precedence order.
const (
	// OutcomeCrash means the run panicked — the robustness failure the
	// campaign exists to prove absent.
	OutcomeCrash FaultOutcome = iota + 1
	// OutcomeFalseAlarm means the guard alarmed although the fault caused
	// no adverse impact in the unguarded run.
	OutcomeFalseAlarm
	// OutcomeEStop means the run ended halted (guard mitigation, RAVEN
	// checks or the PLC watchdog) — a safe, if disruptive, end state.
	OutcomeEStop
	// OutcomeMissedImpact means the fault caused an adverse impact and
	// nothing alarmed or halted.
	OutcomeMissedImpact
	// OutcomeRodeThrough means the system absorbed the fault: no crash,
	// no halt, no false alarm, no unhandled impact.
	OutcomeRodeThrough
)

// String names the outcome.
func (o FaultOutcome) String() string {
	switch o {
	case OutcomeCrash:
		return "crash"
	case OutcomeFalseAlarm:
		return "false-alarm"
	case OutcomeEStop:
		return "e-stop"
	case OutcomeMissedImpact:
		return "missed-impact"
	case OutcomeRodeThrough:
		return "rode-through"
	default:
		return fmt.Sprintf("FaultOutcome(%d)", int(o))
	}
}

// FaultCampaignConfig sizes the fault-kind × guard-policy matrix.
type FaultCampaignConfig struct {
	// BaseSeed seeds the rigs (run i uses BaseSeed+i) and the fault plans.
	BaseSeed int64
	// Seeds is the number of seeded runs per cell (default 3).
	Seeds int
	// Teleop is the pedal-down duration per run in seconds (default 6).
	Teleop float64
	// Kinds restricts the fault kinds exercised (default fault.AllKinds()).
	Kinds []fault.Kind
}

// FaultCell aggregates the seeded runs of one fault kind under one guard
// policy.
type FaultCell struct {
	Kind   fault.Kind
	Policy GuardPolicy
	Seeds  int

	// Outcome counts across the cell's seeds.
	Crashes, FalseAlarms, EStops, Missed, RodeThrough int
	// Detected counts runs in which the guard alarmed (useful under
	// PolicyMonitor, where a correct detection still ends rode-through).
	Detected int
	// FaultsApplied sums the injector counters: how many fault actions
	// actually fired across the cell's runs.
	FaultsApplied int
	// MaxDevMM is the peak deviation from the fault-free reference across
	// the cell's runs, millimeters, measured up to the first halt.
	MaxDevMM float64
}

// Outcomes renders the cell's outcome counts compactly.
func (c FaultCell) Outcomes() string {
	s := ""
	add := func(n int, label string) {
		if n == 0 {
			return
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%d×%s", n, label)
	}
	add(c.Crashes, OutcomeCrash.String())
	add(c.FalseAlarms, OutcomeFalseAlarm.String())
	add(c.EStops, OutcomeEStop.String())
	add(c.Missed, OutcomeMissedImpact.String())
	add(c.RodeThrough, OutcomeRodeThrough.String())
	if s == "" {
		return "-"
	}
	return s
}

// FaultCampaignResult is the full matrix plus the guard's detection score.
type FaultCampaignResult struct {
	Cells []FaultCell
	// Confusion scores the guard across every guarded, non-crashed run:
	// truth is the adverse impact observed in the same fault's unguarded
	// run, the prediction is the guard alarming.
	Confusion metrics.Confusion
}

// faultRun is what one seeded run produced.
type faultRun struct {
	crashed bool
	alarm   bool
	halted  bool
	impact  bool
	maxDev  float64
	applied int
}

// campaignFaultAt is when the fault window opens: mid-teleoperation, after
// homing (console.StandardScript starts pedal-down around t=2.6 s).
const campaignFaultAt = 3.5

// campaignPlan schedules one representative event for kind k. The window
// sits inside the teleoperation segment even at the quick campaign's
// shortest session.
func campaignPlan(k fault.Kind, seed int64) fault.Plan {
	e := fault.Event{At: campaignFaultAt, Duration: 1.0, Kind: k}
	switch k {
	case fault.KindPacketLoss:
		// A total loss burst; short enough that the stale-input hold
		// carries the arm through.
		e.Duration = 0.6
	case fault.KindFrameTruncate:
		// Partial truncation so most frames still reach the board and the
		// watchdog keeps getting petted.
		e.Params.Rate = 0.2
	case fault.KindStuckDAC, fault.KindEncoderStuck:
		e.Params.Channel = 0
		e.Duration = 0.6
	case fault.KindEncoderDropout:
		// Half the feedback frames become undecodable.
		e.Params.Rate = 0.5
	case fault.KindBoardStall:
		// Long enough to starve the 50 ms watchdog many times over.
		e.Duration = 0.4
	}
	return fault.Plan{Seed: seed, Events: []fault.Event{e}}
}

// runOne executes one seeded run of kind k under policy pol. A panic
// anywhere in the pipeline is caught and reported as a crashed run.
func (c FaultCampaignConfig) runOne(k fault.Kind, pol GuardPolicy, seedIdx int) (rec faultRun, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec = faultRun{crashed: true}
			err = nil
		}
	}()

	rigSeed := c.BaseSeed + int64(seedIdx)
	ref, err := (Trial{Seed: rigSeed, TrajIdx: 0, Teleop: c.Teleop}).reference()
	if err != nil {
		return rec, err
	}

	cfg := sim.Config{
		Seed:   rigSeed,
		Script: console.StandardScript(c.Teleop),
		Traj:   trajectory.Standard()[0],
	}
	var guard *core.Guard
	if pol != PolicyOff {
		guard, err = core.NewGuard(core.Config{
			Thresholds: core.DefaultThresholds(),
			Mode:       pol.guardMode(),
		})
		if err != nil {
			return rec, err
		}
		cfg.Guards = append(cfg.Guards, guard)
	}
	// Apply after the guard so the write-path faulter lands below it, at
	// the bus.
	inj, err := campaignPlan(k, c.BaseSeed*1000+int64(seedIdx)).Apply(&cfg)
	if err != nil {
		return rec, err
	}
	rig, err := sim.New(cfg)
	if err != nil {
		return rec, err
	}

	halted, step := false, 0
	rig.Observe(func(si sim.StepInfo) {
		if !halted && step < len(ref) {
			if d := si.TipTrue.DistanceTo(ref[step]); d > rec.maxDev {
				rec.maxDev = d
			}
		}
		if si.PLCEStop {
			halted = true
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return rec, err
	}

	rec.applied = inj.Total()
	rec.alarm = guard != nil && guard.Alarms() > 0
	rec.halted = rig.PLC().EStopped() || rig.Controller().State() == statemachine.EStop
	rec.impact = rec.maxDev > AdverseJumpThreshold
	return rec, nil
}

// classifyFaultOutcome maps one run to its outcome. truthImpact is the
// adverse impact the same fault caused in the unguarded run.
func classifyFaultOutcome(rec faultRun, truthImpact bool) FaultOutcome {
	switch {
	case rec.crashed:
		return OutcomeCrash
	case rec.alarm && !truthImpact:
		return OutcomeFalseAlarm
	case rec.halted:
		return OutcomeEStop
	case truthImpact && !rec.alarm:
		return OutcomeMissedImpact
	default:
		return OutcomeRodeThrough
	}
}

// applyDefaults fills the campaign's default sizing in place.
func (c *FaultCampaignConfig) applyDefaults() {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Teleop <= 0 {
		c.Teleop = 6
	}
	if len(c.Kinds) == 0 {
		c.Kinds = fault.AllKinds()
	}
}

// RunFaultCampaign executes the fault-kind × guard-policy matrix.
//
// The matrix is run on the two-level plan: one group per (policy, seed)
// cell column. Its prefix job simulates the session head once under a
// dormant UNION of every kind's fault plan (no event opens before
// campaignFaultAt, and dormant faulters are behavioral identities, so the
// head is the same physics every kind would have computed) and snapshots
// it at the fork point. The fan job then forks the snapshot into one rig
// per fault kind — each with only its own kind's plan, which restores
// cleanly because per-boundary fault rng streams derive from Plan.Seed
// alone — and steps them together through the structure-of-arrays batch
// stepper. Classification walks the records single-threaded in the fixed
// legacy matrix order, so the same configuration reproduces the identical
// matrix at any worker count, byte-for-byte equal to running every cell
// straight through.
func RunFaultCampaign(c FaultCampaignConfig) (FaultCampaignResult, error) {
	c.applyDefaults()
	return RunFaultCampaignRange(c, 0, c.Seeds)
}

// RunFaultCampaignRange runs the matrix restricted to the seed indices
// [lo, hi) — the campaign's shardable job space. Each seed's column covers
// every policy (the PolicyOff ground truth a seed's guarded runs classify
// against is computed in the same range), so per-seed sub-matrices merge
// exactly: counters add, deviation maxima max, and the merged result of
// any contiguous partition of [0, Seeds) is byte-identical to the
// single-range run.
func RunFaultCampaignRange(c FaultCampaignConfig, lo, hi int) (FaultCampaignResult, error) {
	c.applyDefaults()
	if lo < 0 || hi > c.Seeds || lo > hi {
		return FaultCampaignResult{}, fmt.Errorf("experiment: fault campaign range %d:%d outside [0,%d)", lo, hi, c.Seeds)
	}
	span := hi - lo
	kinds := c.Kinds
	policies := AllPolicies()
	if span == 0 {
		return FaultCampaignResult{}, nil
	}

	groups, err := runGroups(len(policies)*span,
		func(g int) (fcPrefix, error) {
			return c.campaignPrefix(kinds, policies[g/span], lo+g%span)
		},
		func(int) int { return 1 },
		func(g, _ int, p fcPrefix) ([]faultRun, error) {
			recs, err := c.campaignFan(kinds, p)
			if err != nil {
				return nil, fmt.Errorf("experiment: fault campaign %v seed %d: %w", p.pol, p.seedIdx, err)
			}
			return recs, nil
		})
	if err != nil {
		return FaultCampaignResult{}, err
	}

	// Reduce in the legacy kind-major matrix order.
	var out FaultCampaignResult
	for ki, k := range kinds {
		truth := make([]bool, span)
		for pi, pol := range policies {
			cell := FaultCell{Kind: k, Policy: pol, Seeds: span}
			for s := 0; s < span; s++ {
				rec := groups[pi*span+s][0][ki]
				if pol == PolicyOff {
					truth[s] = rec.impact
				}
				switch classifyFaultOutcome(rec, truth[s]) {
				case OutcomeCrash:
					cell.Crashes++
				case OutcomeFalseAlarm:
					cell.FalseAlarms++
				case OutcomeEStop:
					cell.EStops++
				case OutcomeMissedImpact:
					cell.Missed++
				case OutcomeRodeThrough:
					cell.RodeThrough++
				}
				if rec.alarm {
					cell.Detected++
				}
				cell.FaultsApplied += rec.applied
				if mm := rec.maxDev * 1e3; mm > cell.MaxDevMM {
					cell.MaxDevMM = mm
				}
				if pol != PolicyOff && !rec.crashed {
					out.Confusion.Observe(truth[s], rec.alarm)
				}
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// fcPrefix is the shared product of one (policy, seed) group's prefix job:
// the fork-point snapshot plus the observer state every kind's
// continuation starts from.
type fcPrefix struct {
	crashed bool // the shared head panicked: every kind's run crashes
	pol     GuardPolicy
	seedIdx int
	snap    sim.Snapshot
	ref     []mathx.Vec3

	// Observer state at the fork point (identical for every kind, since
	// the head is fault-free physics).
	maxDev float64
	halted bool
	step   int
}

// campaignPrefixSteps is the fork point: the last step at which every
// scheduled fault is still provably dormant (two steps of margin before
// the campaignFaultAt window opens).
func campaignPrefixSteps() int {
	return int(campaignFaultAt/control.Period) - 2
}

// campaignPrefix simulates one (policy, seed) group's shared session head
// under the dormant union plan and snapshots it. A panic means every run
// of the group crashes (each kind would have computed the same head).
func (c FaultCampaignConfig) campaignPrefix(kinds []fault.Kind, pol GuardPolicy, seedIdx int) (out fcPrefix, err error) {
	out = fcPrefix{pol: pol, seedIdx: seedIdx}
	defer func() {
		if r := recover(); r != nil {
			out = fcPrefix{crashed: true, pol: pol, seedIdx: seedIdx}
			err = nil
		}
	}()

	rigSeed := c.BaseSeed + int64(seedIdx)
	out.ref, err = (Trial{Seed: rigSeed, TrajIdx: 0, Teleop: c.Teleop}).reference()
	if err != nil {
		return out, err
	}

	union := fault.Plan{Seed: c.BaseSeed*1000 + int64(seedIdx)}
	for _, k := range kinds {
		union.Events = append(union.Events, campaignPlan(k, union.Seed).Events...)
	}
	rig, _, _, err := c.campaignRig(union, pol, seedIdx)
	if err != nil {
		return out, err
	}
	ref := out.ref
	rig.Observe(func(si sim.StepInfo) {
		if !out.halted && out.step < len(ref) {
			if d := si.TipTrue.DistanceTo(ref[out.step]); d > out.maxDev {
				out.maxDev = d
			}
		}
		if si.PLCEStop {
			out.halted = true
		}
		out.step++
	})
	if _, err := rig.Run(campaignPrefixSteps()); err != nil {
		return out, err
	}
	out.snap, err = rig.Snapshot()
	return out, err
}

// campaignRig builds one campaign rig: guard per policy (applied first, so
// the write-path faulter lands below it at the bus), then the fault plan.
func (c FaultCampaignConfig) campaignRig(plan fault.Plan, pol GuardPolicy, seedIdx int) (*sim.Rig, *core.Guard, *fault.Injector, error) {
	cfg := sim.Config{
		Seed:   c.BaseSeed + int64(seedIdx),
		Script: console.StandardScript(c.Teleop),
		Traj:   trajectory.Standard()[0],
	}
	var guard *core.Guard
	if pol != PolicyOff {
		var err error
		guard, err = core.NewGuard(core.Config{
			Thresholds: core.DefaultThresholds(),
			Mode:       pol.guardMode(),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		cfg.Guards = append(cfg.Guards, guard)
	}
	inj, err := plan.Apply(&cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	rig, err := sim.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return rig, guard, inj, nil
}

// campaignFan forks one group's snapshot into a rig per fault kind and
// steps the cohort in lockstep through the batch stepper. If anything in
// the shared cohort panics, it falls back to running each kind's
// continuation individually so the crash lands on the kind that caused it
// (legacy per-run semantics).
func (c FaultCampaignConfig) campaignFan(kinds []fault.Kind, p fcPrefix) ([]faultRun, error) {
	recs := make([]faultRun, len(kinds))
	if p.crashed {
		for i := range recs {
			recs[i] = faultRun{crashed: true}
		}
		return recs, nil
	}

	ok, err := c.fanLockstep(kinds, p, recs)
	if err != nil {
		return nil, err
	}
	if !ok {
		for i, k := range kinds {
			recs[i] = c.fanOne(k, p)
		}
	}
	return recs, nil
}

// fanContinue restores one kind's rig from the group snapshot and attaches
// the continuation observer (seeded with the carried prefix state).
func (c FaultCampaignConfig) fanContinue(k fault.Kind, p fcPrefix, rec *faultRun) (*sim.Rig, func(), error) {
	plan := campaignPlan(k, c.BaseSeed*1000+int64(p.seedIdx))
	rig, guard, inj, err := c.campaignRig(plan, p.pol, p.seedIdx)
	if err != nil {
		return nil, nil, err
	}
	if err := rig.Restore(p.snap); err != nil {
		return nil, nil, err
	}
	rec.maxDev = p.maxDev
	halted, step, ref := p.halted, p.step, p.ref
	rig.Observe(func(si sim.StepInfo) {
		if !halted && step < len(ref) {
			if d := si.TipTrue.DistanceTo(ref[step]); d > rec.maxDev {
				rec.maxDev = d
			}
		}
		if si.PLCEStop {
			halted = true
		}
		step++
	})
	finish := func() {
		rec.applied = inj.Total()
		rec.alarm = guard != nil && guard.Alarms() > 0
		rec.halted = rig.PLC().EStopped() || rig.Controller().State() == statemachine.EStop
		rec.impact = rec.maxDev > AdverseJumpThreshold
	}
	return rig, finish, nil
}

// fanLockstep runs every kind's continuation together. Construction errors
// propagate; a panic anywhere mid-cohort returns ok=false (the cohort's
// rigs are unsalvageable, the caller reruns kinds individually).
func (c FaultCampaignConfig) fanLockstep(kinds []fault.Kind, p fcPrefix, recs []faultRun) (ok bool, err error) {
	rigs := make([]*sim.Rig, len(kinds))
	finishers := make([]func(), len(kinds))
	for i, k := range kinds {
		rigs[i], finishers[i], err = c.fanContinue(k, p, &recs[i])
		if err != nil {
			return false, err
		}
	}
	defer func() {
		if r := recover(); r != nil {
			ok, err = false, nil
		}
	}()
	if err := sim.RunLockstep(rigs); err != nil {
		return false, err
	}
	for _, finish := range finishers {
		finish()
	}
	return true, nil
}

// fanOne runs one kind's continuation alone, catching panics as crashed
// runs; construction errors also read as crashes here because the cohort
// pass already vouched for the configuration.
func (c FaultCampaignConfig) fanOne(k fault.Kind, p fcPrefix) (rec faultRun) {
	defer func() {
		if r := recover(); r != nil {
			rec = faultRun{crashed: true}
		}
	}()
	rig, finish, err := c.fanContinue(k, p, &rec)
	if err != nil {
		return faultRun{crashed: true}
	}
	if _, err := rig.Run(0); err != nil {
		return faultRun{crashed: true}
	}
	finish()
	return rec
}

// runFaultCampaignStraight is the pre-forking implementation: every
// (kind, policy, seed) run simulates its full session from t=0. Kept as
// the byte-identity oracle and the "before" baseline for the campaign
// benchmarks.
func runFaultCampaignStraight(c FaultCampaignConfig) (FaultCampaignResult, error) {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Teleop <= 0 {
		c.Teleop = 6
	}
	kinds := c.Kinds
	if len(kinds) == 0 {
		kinds = fault.AllKinds()
	}

	type faultJob struct {
		kind fault.Kind
		pol  GuardPolicy
		seed int
	}
	jobs := make([]faultJob, 0, len(kinds)*len(AllPolicies())*c.Seeds)
	for _, k := range kinds {
		for _, pol := range AllPolicies() {
			for s := 0; s < c.Seeds; s++ {
				jobs = append(jobs, faultJob{k, pol, s})
			}
		}
	}
	recs, err := runJobs(len(jobs), func(i int) (faultRun, error) {
		j := jobs[i]
		rec, err := c.runOne(j.kind, j.pol, j.seed)
		if err != nil {
			return faultRun{}, fmt.Errorf("experiment: fault campaign %v/%v seed %d: %w", j.kind, j.pol, j.seed, err)
		}
		return rec, nil
	})
	if err != nil {
		return FaultCampaignResult{}, err
	}

	var out FaultCampaignResult
	idx := 0
	for range kinds {
		truth := make([]bool, c.Seeds)
		for _, pol := range AllPolicies() {
			cell := FaultCell{Kind: jobs[idx].kind, Policy: pol, Seeds: c.Seeds}
			for s := 0; s < c.Seeds; s++ {
				rec := recs[idx]
				idx++
				if pol == PolicyOff {
					truth[s] = rec.impact
				}
				switch classifyFaultOutcome(rec, truth[s]) {
				case OutcomeCrash:
					cell.Crashes++
				case OutcomeFalseAlarm:
					cell.FalseAlarms++
				case OutcomeEStop:
					cell.EStops++
				case OutcomeMissedImpact:
					cell.Missed++
				case OutcomeRodeThrough:
					cell.RodeThrough++
				}
				if rec.alarm {
					cell.Detected++
				}
				cell.FaultsApplied += rec.applied
				if mm := rec.maxDev * 1e3; mm > cell.MaxDevMM {
					cell.MaxDevMM = mm
				}
				if pol != PolicyOff && !rec.crashed {
					out.Confusion.Observe(truth[s], rec.alarm)
				}
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// mergeFaultCampaignResults combines the partial matrices of two adjacent
// seed ranges: outcome counters add, deviation maxima max, confusion cells
// add — all exact operations, so the merge is bit-identical to having run
// the union range in one piece.
func mergeFaultCampaignResults(a, b FaultCampaignResult) (FaultCampaignResult, error) {
	if len(a.Cells) == 0 {
		return b, nil
	}
	if len(b.Cells) == 0 {
		return a, nil
	}
	if len(a.Cells) != len(b.Cells) {
		return FaultCampaignResult{}, fmt.Errorf("experiment: fault campaign merge: %d vs %d cells", len(a.Cells), len(b.Cells))
	}
	out := FaultCampaignResult{Cells: make([]FaultCell, len(a.Cells))}
	for i := range a.Cells {
		x, y := a.Cells[i], b.Cells[i]
		if x.Kind != y.Kind || x.Policy != y.Policy {
			return FaultCampaignResult{}, fmt.Errorf("experiment: fault campaign merge: cell %d is %v/%v vs %v/%v",
				i, x.Kind, x.Policy, y.Kind, y.Policy)
		}
		x.Seeds += y.Seeds
		x.Crashes += y.Crashes
		x.FalseAlarms += y.FalseAlarms
		x.EStops += y.EStops
		x.Missed += y.Missed
		x.RodeThrough += y.RodeThrough
		x.Detected += y.Detected
		x.FaultsApplied += y.FaultsApplied
		if y.MaxDevMM > x.MaxDevMM {
			x.MaxDevMM = y.MaxDevMM
		}
		out.Cells[i] = x
	}
	out.Confusion = a.Confusion
	out.Confusion.Merge(b.Confusion)
	return out, nil
}

// Crashes returns the total crash-outcome count across the matrix.
func (r FaultCampaignResult) Crashes() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Crashes
	}
	return n
}

// KindsExercised reports whether every campaigned kind fired at least one
// fault action in at least one cell.
func (r FaultCampaignResult) KindsExercised() bool {
	fired := map[fault.Kind]bool{}
	scheduled := map[fault.Kind]bool{}
	for _, c := range r.Cells {
		scheduled[c.Kind] = true
		if c.FaultsApplied > 0 {
			fired[c.Kind] = true
		}
	}
	// fired is a subset of scheduled (both are keyed by cell kind), so
	// full coverage is a size comparison — no map iteration whose order
	// could leak into the result.
	return len(fired) == len(scheduled)
}

// Write renders the matrix.
func (r FaultCampaignResult) Write(w io.Writer) {
	fmt.Fprintln(w, "FAULT CAMPAIGN. Accidental-fault kinds × guard policies (seeded runs per cell)")
	fmt.Fprintf(w, "%-36s %-9s %-36s %8s %7s %10s\n", "Fault kind", "Guard", "Outcomes", "Detected", "Faults", "MaxDev(mm)")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-36s %-9s %-36s %8d %7d %10.2f\n",
			c.Kind, c.Policy, c.Outcomes(), c.Detected, c.FaultsApplied, c.MaxDevMM)
	}
	fmt.Fprintf(w, "Guarded-run detection vs unguarded impact: TP=%d FP=%d TN=%d FN=%d (acc %.1f%%, TPR %.1f%%, FPR %.1f%%)\n",
		r.Confusion.TP, r.Confusion.FP, r.Confusion.TN, r.Confusion.FN,
		r.Confusion.Accuracy(), r.Confusion.TPR(), r.Confusion.FPR())
	fmt.Fprintf(w, "Crash outcomes: %d; every fault kind exercised: %v\n", r.Crashes(), r.KindsExercised())
}
