package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"ravenguard/internal/analysis"
	"ravenguard/internal/console"
	"ravenguard/internal/interpose"
	"ravenguard/internal/malware"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/usb"
)

// captureRun executes one session with the Phase-1 eavesdropping malware
// preloaded and returns the captured USB command frames plus the
// ground-truth state timeline (for validating the inference).
func captureRun(seed int64, script console.Script) (frames [][]byte, truth []statemachine.State, err error) {
	exfil := malware.NewMemExfil()
	logger := malware.NewLogger(exfil)
	rig, err := sim.New(sim.Config{
		Seed:    seed,
		Script:  script,
		Traj:    trajectory.Standard()[seed%2],
		Preload: []interpose.Wrapper{logger},
	})
	if err != nil {
		return nil, nil, err
	}
	rig.Observe(func(si sim.StepInfo) { truth = append(truth, si.Ctrl.State) })
	if _, err := rig.Run(0); err != nil {
		return nil, nil, err
	}
	return exfil.Frames(), truth, nil
}

// Fig5Result is the per-byte profile of one captured run (paper Figure 5).
type Fig5Result struct {
	Frames   int
	Profiles []analysis.ByteProfile
	// Byte0Raw and Byte0Masked are the distinct-value counts of Byte 0
	// before and after removing the toggling watchdog bit — the paper's
	// "8 different values ... if we take that bit out, only 4".
	Byte0Raw    int
	Byte0Masked int
	Watchdog    byte
}

// RunFig5 captures one session and profiles its USB frames byte by byte.
func RunFig5(seed int64) (Fig5Result, error) {
	script := console.Script{
		StartAt:    0.05,
		HomingWait: 2.5,
		Segments: []console.Segment{
			{Duration: 4, PedalDown: true},
			{Duration: 1.5, PedalDown: false},
			{Duration: 4, PedalDown: true},
		},
	}
	frames, _, err := captureRun(seed, script)
	if err != nil {
		return Fig5Result{}, err
	}
	profiles, err := analysis.Profile(frames)
	if err != nil {
		return Fig5Result{}, err
	}
	mask, _, err := analysis.FindTogglingBit(frames, usb.StateByte)
	if err != nil {
		return Fig5Result{}, err
	}
	masked := make(map[byte]bool)
	for _, f := range frames {
		masked[f[usb.StateByte]&^mask] = true
	}
	return Fig5Result{
		Frames:      len(frames),
		Profiles:    profiles,
		Byte0Raw:    profiles[usb.StateByte].Distinct,
		Byte0Masked: len(masked),
		Watchdog:    mask,
	}, nil
}

// Write renders the Figure 5 summary: one row per byte.
func (r Fig5Result) Write(w io.Writer) {
	fmt.Fprintf(w, "FIGURE 5. USB packet byte profile over one run (%d frames)\n", r.Frames)
	fmt.Fprintf(w, "%-8s %10s %10s  %s\n", "Byte", "Distinct", "Toggles", "Character")
	for _, p := range r.Profiles {
		character := "constant"
		switch {
		case p.Index == usb.StateByte:
			character = "STATE BYTE (low nibble = operational state, bit 4 = watchdog)"
		case p.Index == usb.SeqByte:
			character = "sequence counter (wraps, many values)"
		case p.Distinct > 16:
			character = "motor command (flickers among many values)"
		case p.Distinct > 1:
			character = "few values"
		}
		fmt.Fprintf(w, "Byte %-3d %10d %10d  %s\n", p.Index, p.Distinct, p.Toggles, character)
	}
	fmt.Fprintf(w, "Byte 0: %d raw values -> %d after masking toggling bit %#02x (paper: 8 -> 4)\n",
		r.Byte0Raw, r.Byte0Masked, r.Watchdog)
}

// Fig6Run is one of the nine runs of Figure 6.
type Fig6Run struct {
	Seed     int64
	Segments []analysis.Segment
	// TruthMatches reports whether the inferred state timeline matches the
	// ground-truth state machine timeline segment-for-segment.
	TruthMatches bool
}

// Fig6Result aggregates the nine-run experiment and the final inference.
type Fig6Result struct {
	Runs      []Fig6Run
	Inference analysis.Inference
}

// fig6Capture is one randomized session's captured frames and ground truth.
type fig6Capture struct {
	frames [][]byte
	truth  []statemachine.State
}

// RunFig6 captures nine sessions with randomized pedal timing (like the
// paper's nine runs), infers the state byte / watchdog bit / Pedal Down
// trigger, and validates the inferred timelines against ground truth. The
// scripts are drawn from the seeded rng sequentially (their randomness is
// order-dependent), then the captures fan out onto the worker pool.
func RunFig6(baseSeed int64) (Fig6Result, error) {
	rng := rand.New(rand.NewSource(baseSeed))
	const runs = 9
	scripts := make([]console.Script, runs)
	for run := 0; run < runs; run++ {
		script := console.Script{
			StartAt:    0.05,
			HomingWait: 2.5,
			Segments: []console.Segment{
				{Duration: 1 + 3*rng.Float64(), PedalDown: true},
			},
		}
		if rng.Intn(2) == 0 {
			script.Segments = append(script.Segments,
				console.Segment{Duration: 0.5 + rng.Float64(), PedalDown: false},
				console.Segment{Duration: 1 + 2*rng.Float64(), PedalDown: true},
			)
		}
		scripts[run] = script
	}

	caps, err := runJobs(runs, func(i int) (fig6Capture, error) {
		frames, truth, err := captureRun(baseSeed+int64(i), scripts[i])
		return fig6Capture{frames: frames, truth: truth}, err
	})
	if err != nil {
		return Fig6Result{}, err
	}
	var (
		captures [][][]byte
		truths   [][]statemachine.State
		result   Fig6Result
	)
	for _, c := range caps {
		captures = append(captures, c.frames)
		truths = append(truths, c.truth)
	}

	inf, err := analysis.Infer(captures)
	if err != nil {
		return Fig6Result{}, err
	}
	result.Inference = inf

	for run, frames := range captures {
		segs := analysis.SegmentStates(frames, inf.StateByte, inf.WatchdogMask)
		result.Runs = append(result.Runs, Fig6Run{
			Seed:         baseSeed + int64(run),
			Segments:     segs,
			TruthMatches: timelineMatches(segs, truths[run]),
		})
	}
	return result, nil
}

// timelineMatches checks the inferred segments against the ground-truth
// per-tick state sequence: same number of maximal runs, same decoded state.
func timelineMatches(segs []analysis.Segment, truth []statemachine.State) bool {
	var truthSegs []statemachine.State
	for i, st := range truth {
		if i == 0 || st != truth[i-1] {
			truthSegs = append(truthSegs, st)
		}
	}
	if len(segs) != len(truthSegs) {
		return false
	}
	for i, s := range segs {
		st, ok := statemachine.FromNibble(s.Value)
		if !ok || st != truthSegs[i] {
			return false
		}
	}
	return true
}

// Write renders the Figure 6 summary.
func (r Fig6Result) Write(w io.Writer) {
	fmt.Fprintln(w, "FIGURE 6. Byte 0 state patterns over nine runs")
	fmt.Fprintf(w, "Inference: state byte = %d, watchdog mask = %#02x (half-period %.1f frames), Pedal Down value = %#02x\n",
		r.Inference.StateByte, r.Inference.WatchdogMask, r.Inference.HalfPeriod, r.Inference.PedalDownByte)
	for i, run := range r.Runs {
		fmt.Fprintf(w, "run %d (seed %d): ", i+1, run.Seed)
		for j, s := range run.Segments {
			if j > 0 {
				fmt.Fprint(w, " -> ")
			}
			st, _ := statemachine.FromNibble(s.Value)
			fmt.Fprintf(w, "%s[%d]", st, s.Len)
		}
		fmt.Fprintf(w, "  truth-match=%v\n", run.TruthMatches)
	}
}
