// Package experiment is the evaluation harness: it reproduces every table
// and figure of the paper's evaluation (see DESIGN.md's experiment index)
// on top of the simulation framework of Figure 7a.
//
// The central primitive is the attack trial: one scripted teleoperation
// session run twice from the same seed — once clean (the reference) and
// once with an attack installed and the dynamic-model guard watching in
// shadow mode — so the adverse physical impact of the attack can be
// measured as the end-effector's deviation from the reference trajectory,
// and both detectors (the paper's dynamic-model guard and RAVEN's built-in
// safety checks) can be scored against that ground truth.
package experiment

import (
	"fmt"
	"sync"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/interpose"
	"ravenguard/internal/mathx"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/usb"
)

// AdverseJumpThreshold is the paper's injury criterion from expert
// surgeons: an unintended end-effector displacement of one millimeter.
const AdverseJumpThreshold = 0.001

// Scenario selects the attack family of a trial.
type Scenario int

// Scenarios.
const (
	// ScenarioNone runs fault-free (negative trials for FPR).
	ScenarioNone Scenario = iota + 1
	// ScenarioA injects unintended user inputs.
	ScenarioA
	// ScenarioB injects unintended motor torque commands.
	ScenarioB
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioNone:
		return "fault-free"
	case ScenarioA:
		return "A (user inputs)"
	case ScenarioB:
		return "B (torque commands)"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Trial specifies one attack run.
type Trial struct {
	Seed     int64
	TrajIdx  int     // index into trajectory.Standard()
	Teleop   float64 // pedal-down seconds (default 5)
	Scenario Scenario

	// Scenario A parameters.
	A inject.ScenarioAParams
	// Scenario B parameters.
	B inject.ScenarioBParams

	// Thresholds for the dynamic-model guard (zero = DefaultThresholds).
	Thresholds core.Thresholds
	// Integrator for the guard (default "euler").
	Integrator string
	// Resync selects the guard's model-feedback fusion ("proportional" or
	// "kalman"; empty = proportional).
	Resync string
	// Fusion selects the guard's alarm fusion (used by the ablation
	// experiments; zero value keeps the paper's all-three-AND fusion).
	Fusion core.Fusion
	// GuardAboveMalware preloads the guard ABOVE the malicious wrapper
	// instead of appending it at the hardware boundary (placement
	// ablation: the guard then checks commands before the attacker
	// modifies them, reintroducing the TOCTOU gap).
	GuardAboveMalware bool
}

// Result is what one trial produced.
type Result struct {
	// Impact is the ground truth: the attack produced an unintended
	// end-effector jump beyond the 1 mm criterion (measured against the
	// same-seed fault-free reference, up to the moment the system halted).
	Impact bool
	// MaxDeviation is the peak deviation from the reference, meters.
	MaxDeviation float64
	// DynDetected reports the dynamic-model guard alarming.
	DynDetected bool
	// DynPreemptive reports the guard alarming before the impact
	// manifested (first alarm tick <= first tick deviation crossed 1 mm).
	DynPreemptive bool
	// RavenDetected reports RAVEN's built-in checks firing (software DAC/
	// joint-limit check, which also drops the watchdog).
	RavenDetected bool
	// Halted reports the run ending in E-STOP (unwanted halt state).
	Halted bool
	// InjectedFrames is how many cycles the attack actually corrupted.
	InjectedFrames int
	// AlarmTick and ImpactTick are the step indices of first alarm and
	// first >1 mm deviation (-1 when absent).
	AlarmTick  int
	ImpactTick int
}

// script returns the trial's session script.
func (tr Trial) script() console.Script {
	teleop := tr.Teleop
	if teleop == 0 {
		teleop = 5
	}
	return console.StandardScript(teleop)
}

func (tr Trial) trajectory() trajectory.Trajectory {
	std := trajectory.Standard()
	return std[((tr.TrajIdx%len(std))+len(std))%len(std)]
}

// refCache memoises fault-free tip traces keyed by (seed, trajIdx, teleop).
type refKey struct {
	seed    int64
	trajIdx int
	teleop  float64
}

type refCache struct {
	mu sync.Mutex
	m  map[refKey][]mathx.Vec3
}

var _refs = &refCache{m: make(map[refKey][]mathx.Vec3)}

// reference returns (computing if needed) the fault-free tip trace for the
// trial's seed/trajectory/script.
func (tr Trial) reference() ([]mathx.Vec3, error) {
	key := refKey{tr.Seed, tr.TrajIdx, tr.Teleop}
	_refs.mu.Lock()
	if trace, ok := _refs.m[key]; ok {
		_refs.mu.Unlock()
		return trace, nil
	}
	_refs.mu.Unlock()

	rig, err := sim.New(sim.Config{
		Seed:   tr.Seed,
		Script: tr.script(),
		Traj:   tr.trajectory(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: reference: %w", err)
	}
	var trace []mathx.Vec3
	rig.Observe(func(si sim.StepInfo) { trace = append(trace, si.TipTrue) })
	if _, err := rig.Run(0); err != nil {
		return nil, fmt.Errorf("experiment: reference: %w", err)
	}

	_refs.mu.Lock()
	_refs.m[key] = trace
	_refs.mu.Unlock()
	return trace, nil
}

// ResetReferenceCache clears the memoised fault-free traces (tests).
func ResetReferenceCache() {
	_refs.mu.Lock()
	_refs.m = make(map[refKey][]mathx.Vec3)
	_refs.mu.Unlock()
}

// storeReference publishes a fault-free tip trace that a forking campaign
// assembled as a by-product (prefix tips + forked reference tail), so
// later trials with the same key skip the reference run entirely.
func storeReference(key refKey, trace []mathx.Vec3) {
	_refs.mu.Lock()
	if _, ok := _refs.m[key]; !ok {
		_refs.m[key] = trace
	}
	_refs.mu.Unlock()
}

// installAttack instantiates the trial's attack onto cfg and returns a
// function reporting how many frames were corrupted. Each call builds
// fresh (stateful) attack instances, so the counterfactual and scored runs
// get identical but independent attacks.
func (tr Trial) installAttack(cfg *sim.Config) (func() int, error) {
	switch tr.Scenario {
	case ScenarioNone:
		return func() int { return 0 }, nil
	case ScenarioA:
		att, err := inject.NewScenarioA(tr.A)
		if err != nil {
			return nil, err
		}
		cfg.OnInput = att.Hook()
		cfg.Stateful = append(cfg.Stateful, att)
		return att.Injected, nil
	case ScenarioB:
		inj, err := inject.NewScenarioB(tr.B)
		if err != nil {
			return nil, err
		}
		cfg.Preload = append(cfg.Preload, inj)
		return inj.Injected, nil
	default:
		return nil, fmt.Errorf("experiment: unknown scenario %d", int(tr.Scenario))
	}
}

// counterfactualImpact measures the attack's physical effect with every
// safety response disabled (no software checks, no guard): the ground
// truth "adverse impact that would manifest absent mitigation". It returns
// the peak deviation from the reference and the tick it first crossed the
// 1 mm criterion (-1 if never).
func (tr Trial) counterfactualImpact(ref []mathx.Vec3) (float64, int, error) {
	cfg := sim.Config{
		Seed:   tr.Seed,
		Script: tr.script(),
		Traj:   tr.trajectory(),
	}
	cfg.Control.SafetyChecksOff = true
	if _, err := tr.installAttack(&cfg); err != nil {
		return 0, -1, err
	}
	rig, err := sim.New(cfg)
	if err != nil {
		return 0, -1, err
	}
	maxDev, impactTick, step := 0.0, -1, 0
	rig.Observe(func(si sim.StepInfo) {
		if step < len(ref) {
			d := si.TipTrue.DistanceTo(ref[step])
			if d > maxDev {
				maxDev = d
			}
			if impactTick < 0 && d > AdverseJumpThreshold {
				impactTick = step
			}
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return 0, -1, err
	}
	return maxDev, impactTick, nil
}

// Run executes the trial and scores it: the ground truth comes from the
// counterfactual (unprotected) run, the detector verdicts from the scored
// run with RAVEN's checks active and the guard monitoring.
func (tr Trial) Run() (Result, error) {
	ref, err := tr.reference()
	if err != nil {
		return Result{}, err
	}

	var truthDev float64
	truthTick := -1
	if tr.Scenario != ScenarioNone {
		truthDev, truthTick, err = tr.counterfactualImpact(ref)
		if err != nil {
			return Result{}, err
		}
	}

	th := tr.Thresholds
	if th == (core.Thresholds{}) {
		th = core.DefaultThresholds()
	}
	guard, err := core.NewGuard(core.Config{
		Integrator: tr.Integrator,
		Thresholds: th,
		Mode:       core.ModeMonitor,
		Fusion:     tr.Fusion,
		Resync:     tr.Resync,
	})
	if err != nil {
		return Result{}, err
	}

	cfg := sim.Config{
		Seed:   tr.Seed,
		Script: tr.script(),
		Traj:   tr.trajectory(),
	}
	injectedFrames, err := tr.installAttack(&cfg)
	if err != nil {
		return Result{}, err
	}
	if tr.GuardAboveMalware && tr.Scenario == ScenarioB {
		// Placement ablation: the guard resolves before the malware, so it
		// checks frames before the attacker mutates them (the TOCTOU gap).
		cfg.Preload = append([]interpose.Wrapper{guard}, cfg.Preload...)
	}

	return tr.runScored(cfg, guard, ref, truthDev, truthTick, injectedFrames)
}

// feedbackOnly adapts a guard that is already preloaded on the write chain
// so it can still receive encoder feedback through the Guards list without
// being invoked twice per write.
type feedbackOnly struct {
	g *core.Guard
}

var _ sim.Hook = feedbackOnly{}

func (f feedbackOnly) Name() string { return "guard-feedback-tap" }

func (f feedbackOnly) OnWrite([]byte) interpose.Verdict { return interpose.Pass }

func (f feedbackOnly) OnFeedback(fb usb.Feedback, t float64) { f.g.OnFeedback(fb, t) }

func (tr Trial) runScored(cfg sim.Config, guard *core.Guard, ref []mathx.Vec3, truthDev float64, truthTick int, injected func() int) (Result, error) {
	if !tr.GuardAboveMalware {
		cfg.Guards = append(cfg.Guards, guard)
	} else {
		cfg.Guards = append(cfg.Guards, feedbackOnly{guard})
	}

	rig, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		AlarmTick:    -1,
		ImpactTick:   truthTick,
		MaxDeviation: truthDev,
		Impact:       truthTick >= 0,
	}
	step := 0
	rig.Observe(func(si sim.StepInfo) {
		if res.AlarmTick < 0 && guard.Alarms() > 0 {
			res.AlarmTick = step
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return Result{}, err
	}

	res.DynDetected = guard.Alarms() > 0
	// Preemptive: the alarm fires no later than the impact would have
	// manifested in the unprotected system.
	res.DynPreemptive = res.DynDetected && (!res.Impact || (res.AlarmTick >= 0 && res.AlarmTick <= res.ImpactTick))
	res.RavenDetected = rig.Controller().SafetyTrips() > 0
	res.Halted = rig.PLC().EStopped() || rig.Controller().State() == statemachine.EStop
	res.InjectedFrames = injected()
	return res, nil
}
