package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
)

// PersistenceConfig sizes the availability-under-persistent-malware
// experiment. The paper observes that a wrapper loaded through the user's
// shell profile "will be reloaded to the system on each run of the robot
// even after restarting the system ... and practically make the robot
// unavailable to the surgical team". This experiment measures exactly
// that: N consecutive surgery attempts with the malware present on every
// one, under three protection regimes.
type PersistenceConfig struct {
	// Attempts is the number of consecutive surgery attempts (default 20).
	Attempts int
	// Value/Duration of the scenario-B injection active on every attempt.
	Value    int16
	Duration int
	BaseSeed int64
}

func (c *PersistenceConfig) applyDefaults() {
	if c.Attempts == 0 {
		c.Attempts = 20
	}
	if c.Value == 0 {
		c.Value = 16000
	}
	if c.Duration == 0 {
		c.Duration = 128
	}
}

// PersistenceArm is one protection regime's availability outcome.
type PersistenceArm struct {
	Name string
	// Completed is how many attempts finished the procedure (no E-STOP).
	Completed int
	Attempts  int
}

// Availability returns the completed fraction.
func (a PersistenceArm) Availability() float64 {
	if a.Attempts == 0 {
		return 0
	}
	return float64(a.Completed) / float64(a.Attempts)
}

// PersistenceResult compares the regimes.
type PersistenceResult struct {
	Config PersistenceConfig
	Arms   []PersistenceArm
}

// RunPersistence measures availability across consecutive attempts.
func RunPersistence(cfg PersistenceConfig) (PersistenceResult, error) {
	cfg.applyDefaults()
	out := PersistenceResult{Config: cfg}
	arms := []struct {
		name string
		mode core.Mode // 0 = no guard
	}{
		{"no guard (RAVEN only)", 0},
		{"guard: E-STOP mitigation", core.ModeMitigate},
		{"guard: hold-last-safe", core.ModeHoldSafe},
	}
	for _, armSpec := range arms {
		arm := PersistenceArm{Name: armSpec.name, Attempts: cfg.Attempts}
		for i := 0; i < cfg.Attempts; i++ {
			trial := Trial{Seed: cfg.BaseSeed + int64(8500+i), TrajIdx: i % 2}
			simCfg := sim.Config{
				Seed:   trial.Seed,
				Script: trial.script(),
				Traj:   trial.trajectory(),
			}
			// The persistent malware triggers on every attempt.
			inj, err := inject.NewScenarioB(inject.ScenarioBParams{
				Value:           cfg.Value,
				Channel:         i % 3,
				StartDelayTicks: 400 + 97*(i%17),
				ActivationTicks: cfg.Duration,
				Seed:            int64(i),
			})
			if err != nil {
				return PersistenceResult{}, err
			}
			simCfg.Preload = append(simCfg.Preload, inj)
			if armSpec.mode != 0 {
				guard, err := core.NewGuard(core.Config{
					Thresholds: core.DefaultThresholds(),
					Mode:       armSpec.mode,
				})
				if err != nil {
					return PersistenceResult{}, err
				}
				simCfg.Guards = append(simCfg.Guards, guard)
			}
			rig, err := sim.New(simCfg)
			if err != nil {
				return PersistenceResult{}, err
			}
			if _, err := rig.Run(0); err != nil {
				return PersistenceResult{}, err
			}
			if !rig.PLC().EStopped() && rig.Controller().State() != statemachine.EStop {
				arm.Completed++
			}
		}
		out.Arms = append(out.Arms, arm)
	}
	return out, nil
}

// Write renders the availability comparison.
func (r PersistenceResult) Write(w io.Writer) {
	fmt.Fprintf(w, "AVAILABILITY UNDER PERSISTENT MALWARE (every attempt attacked, value=%d, period=%d ms)\n",
		r.Config.Value, r.Config.Duration)
	fmt.Fprintf(w, "%-28s %12s %14s\n", "Protection", "Completed", "Availability")
	for _, arm := range r.Arms {
		fmt.Fprintf(w, "%-28s %8d/%-3d %13.0f%%\n",
			arm.Name, arm.Completed, arm.Attempts, arm.Availability()*100)
	}
	fmt.Fprintln(w, `(the paper: a persistent wrapper "would practically make the robot unavailable";`)
	fmt.Fprintln(w, ` hold-safe mitigation restores availability without accepting the attack's motion)`)
}
