package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/console"
	"ravenguard/internal/inject"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

// Table1Row is one attack variant and its observed impact, reproduced live.
type Table1Row struct {
	Variant     inject.Variant
	Installed   string // what the engine installed
	Impact      string // classified observed impact
	FinalState  statemachine.State
	MaxDevMM    float64
	IKFails     int
	SafetyTrips int
	PLCEStopped bool
}

// Table1Result is the variant matrix.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 executes every Table I variant against a standard session and
// classifies the observed impact the way the paper's Table I reports them.
// Variants are independent (one rig each) and fan out onto the worker
// pool; rows land in variant order.
func RunTable1(baseSeed int64) (Table1Result, error) {
	variants := inject.AllVariants()
	rows, err := runJobs(len(variants), func(i int) (Table1Row, error) {
		return table1Row(baseSeed, variants[i])
	})
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{Rows: rows}, nil
}

// table1Row runs one variant's session and classifies its impact.
func table1Row(baseSeed int64, v inject.Variant) (Table1Row, error) {
	cfg := sim.Config{
		Seed:   baseSeed + int64(v),
		Script: console.StandardScript(6),
		Traj:   trajectory.Standard()[0],
	}
	vc := inject.VariantConfig{Variant: v, StartAt: 4.0, Seed: int64(v)}
	installed, err := vc.Apply(&cfg)
	if err != nil {
		return Table1Row{}, err
	}
	rig, err := sim.New(cfg)
	if err != nil {
		return Table1Row{}, err
	}

	// Reference trace for deviation classification.
	refTrial := Trial{Seed: cfg.Seed, TrajIdx: 0, Teleop: 6}
	ref, err := refTrial.reference()
	if err != nil {
		return Table1Row{}, err
	}

	row := Table1Row{Variant: v, Installed: installed}
	step := 0
	halted := false
	brakedInDown := 0
	rig.Observe(func(si sim.StepInfo) {
		if !halted && step < len(ref) {
			if d := si.TipTrue.DistanceTo(ref[step]); d > row.MaxDevMM/1e3 {
				row.MaxDevMM = d * 1e3
			}
		}
		if si.PLCEStop {
			halted = true
		}
		if si.Ctrl.State == statemachine.PedalDown && rig.PLC().BrakesEngaged() {
			brakedInDown++
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return Table1Row{}, err
	}
	row.FinalState = rig.Controller().State()
	row.IKFails = rig.Controller().IKFails()
	row.SafetyTrips = rig.Controller().SafetyTrips()
	row.PLCEStopped = rig.PLC().EStopped()
	row.Impact = classifyImpact(row, brakedInDown)
	return row, nil
}

// classifyImpact maps run observables to the paper's impact labels. The
// order matters: root causes (IK failure, brake desync, lost console) are
// reported ahead of their downstream symptoms (deviation from the
// reference trajectory, cascaded E-STOP).
func classifyImpact(row Table1Row, brakedInDown int) string {
	switch {
	case row.IKFails > 0:
		return "Unwanted state (IK-fail)"
	case brakedInDown > 0:
		return "Brake engagement mid-operation (PLC desync)"
	case row.Variant == inject.VariantPortChange && row.FinalState == statemachine.PedalUp:
		return "Unwanted state (console lost, frozen arm)"
	case row.Variant == inject.VariantPacketContent && row.MaxDevMM > AdverseJumpThreshold*1e3:
		return "Hijacked trajectory"
	case row.PLCEStopped || row.FinalState == statemachine.EStop:
		if row.MaxDevMM > AdverseJumpThreshold*1e3 {
			return "Abrupt jump + Unwanted state (E-STOP)"
		}
		return "Unwanted state (E-STOP)"
	case row.MaxDevMM > AdverseJumpThreshold*1e3:
		return "Abrupt jump"
	default:
		return "No observable impact"
	}
}

// Write renders the variant matrix.
func (r Table1Result) Write(w io.Writer) {
	fmt.Fprintln(w, "TABLE I. Attack variants on the robot control structure and observed impact")
	fmt.Fprintf(w, "%-44s %-42s %10s %8s %6s %6s\n", "Variant (target layer)", "Observed impact", "MaxDev(mm)", "IKfails", "Trips", "E-STOP")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-44s %-42s %10.2f %8d %6d %6v\n",
			row.Variant, row.Impact, row.MaxDevMM, row.IKFails, row.SafetyTrips, row.PLCEStopped)
	}
}
