package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/console"
	"ravenguard/internal/inject"
	"ravenguard/internal/mathx"
	"ravenguard/internal/sim"
	"ravenguard/internal/statemachine"
	"ravenguard/internal/trajectory"
)

// Table1Row is one attack variant and its observed impact, reproduced live.
type Table1Row struct {
	Variant     inject.Variant
	Installed   string // what the engine installed
	Impact      string // classified observed impact
	FinalState  statemachine.State
	MaxDevMM    float64
	IKFails     int
	SafetyTrips int
	PLCEStopped bool
}

// Table1Result is the variant matrix.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Jobs is the size of Table I's shardable job space: one job per
// attack variant.
func Table1Jobs() int { return len(inject.AllVariants()) }

// RunTable1 executes every Table I variant against a standard session and
// classifies the observed impact the way the paper's Table I reports them.
//
// Each variant is one group on the two-level plan: the prefix job
// simulates the attacked session once up to the variant's activation point
// (where the attack is still provably inert, so the head is shared physics)
// and snapshots it; the fan jobs fork the snapshot into the fault-free
// reference continuation and the attacked continuation. Rows are
// byte-identical to running each session straight through.
func RunTable1(baseSeed int64) (Table1Result, error) {
	return RunTable1Range(baseSeed, 0, Table1Jobs())
}

// RunTable1Range runs the variant indices [lo, hi) — Table I's shardable
// job space. Each variant's row is independent, so the partial tables of
// adjacent ranges merge by concatenation, byte-identical to the
// single-range run.
func RunTable1Range(baseSeed int64, lo, hi int) (Table1Result, error) {
	all := inject.AllVariants()
	if lo < 0 || hi > len(all) || lo > hi {
		return Table1Result{}, fmt.Errorf("experiment: table1 range %d:%d outside [0,%d)", lo, hi, len(all))
	}
	variants := all[lo:hi]
	if len(variants) == 0 {
		return Table1Result{}, nil
	}
	type prefixOut struct {
		rig       *sim.Rig // the attacked rig, paused at the fork point
		snap      sim.Snapshot
		steps     *[]table1Step
		installed string
		seed      int64
	}
	type fanOut struct {
		refTail []mathx.Vec3
		row     Table1Row
		steps   *[]table1Step
	}
	groups, err := runGroups(len(variants),
		func(g int) (prefixOut, error) {
			v := variants[g]
			cfg := sim.Config{
				Seed:   baseSeed + int64(v),
				Script: console.StandardScript(6),
				Traj:   trajectory.Standard()[0],
			}
			vc := inject.VariantConfig{Variant: v, StartAt: 4.0, Seed: int64(v)}
			installed, err := vc.Apply(&cfg)
			if err != nil {
				return prefixOut{}, err
			}
			rig, err := sim.New(cfg)
			if err != nil {
				return prefixOut{}, err
			}
			buf := make([]table1Step, 0, table1SessionCap)
			steps := &buf
			observeTable1(rig, steps)
			if _, err := rig.Run(table1PrefixSteps(v)); err != nil {
				return prefixOut{}, err
			}
			snap, err := rig.Snapshot()
			if err != nil {
				return prefixOut{}, err
			}
			return prefixOut{rig: rig, snap: snap, steps: steps, installed: installed, seed: cfg.Seed}, nil
		},
		func(int) int { return 2 },
		func(g, j int, p prefixOut) (fanOut, error) {
			if j == 0 {
				// Fork the fault-free reference off the dormant prefix: the
				// snapshot's extra attack-component states are ignored.
				refRig, err := sim.New(sim.Config{
					Seed:   p.seed,
					Script: console.StandardScript(6),
					Traj:   trajectory.Standard()[0],
				})
				if err != nil {
					return fanOut{}, err
				}
				if err := refRig.Restore(p.snap); err != nil {
					return fanOut{}, err
				}
				tail := make([]mathx.Vec3, 0, table1SessionCap)
				refRig.Observe(func(si sim.StepInfo) { tail = append(tail, si.TipTrue) })
				if _, err := refRig.Run(0); err != nil {
					return fanOut{}, err
				}
				return fanOut{refTail: tail}, nil
			}
			// Continue the attacked session to the end of the script.
			if _, err := p.rig.Run(0); err != nil {
				return fanOut{}, err
			}
			return fanOut{
				steps: p.steps,
				row: Table1Row{
					Variant:     variants[g],
					Installed:   p.installed,
					FinalState:  p.rig.Controller().State(),
					IKFails:     p.rig.Controller().IKFails(),
					SafetyTrips: p.rig.Controller().SafetyTrips(),
					PLCEStopped: p.rig.PLC().EStopped(),
				},
			}, nil
		})
	if err != nil {
		return Table1Result{}, err
	}

	rows := make([]Table1Row, len(variants))
	for g, fans := range groups {
		v := variants[g]
		row := fans[1].row
		steps := *fans[1].steps
		pre := table1PrefixSteps(v)
		// The attacked prefix IS the reference prefix (the attack was
		// inert), so the full reference is prefix tips + forked tail.
		ref := make([]mathx.Vec3, 0, pre+len(fans[0].refTail))
		for _, s := range steps[:pre] {
			ref = append(ref, s.tip)
		}
		ref = append(ref, fans[0].refTail...)
		storeReference(refKey{seed: baseSeed + int64(v), trajIdx: 0, teleop: 6}, ref)

		halted := false
		brakedInDown := 0
		for i, s := range steps {
			if !halted && i < len(ref) {
				if d := s.tip.DistanceTo(ref[i]); d > row.MaxDevMM/1e3 {
					row.MaxDevMM = d * 1e3
				}
			}
			if s.plcEStop {
				halted = true
			}
			if s.downAndBraked {
				brakedInDown++
			}
		}
		row.Impact = classifyImpact(row, brakedInDown)
		rows[g] = row
	}
	return Table1Result{Rows: rows}, nil
}

// mergeTable1Results concatenates the partial tables of two adjacent
// variant ranges.
func mergeTable1Results(a, b Table1Result) (Table1Result, error) {
	return Table1Result{Rows: append(append([]Table1Row{}, a.Rows...), b.Rows...)}, nil
}

// table1SessionCap bounds the step count of one 6 s Table I session
// (~975 steps/s), so the step and reference-tail recorders allocate once
// instead of regrowing through the run.
const table1SessionCap = 6200

// table1Step is one observed step of an attacked session, recorded so the
// row can be classified once the reference trace is assembled.
type table1Step struct {
	tip           mathx.Vec3
	plcEStop      bool
	downAndBraked bool
}

// observeTable1 records the per-step observables row classification needs.
func observeTable1(rig *sim.Rig, steps *[]table1Step) {
	rig.Observe(func(si sim.StepInfo) {
		*steps = append(*steps, table1Step{
			tip:           si.TipTrue,
			plcEStop:      si.PLCEStop,
			downAndBraked: si.Ctrl.State == statemachine.PedalDown && rig.PLC().BrakesEngaged(),
		})
	})
}

// table1PrefixSteps is how many steps of a variant's session are provably
// attack-free: every variant is inert before its trigger, so the session
// head can be simulated once and forked into both continuations.
func table1PrefixSteps(v inject.Variant) int {
	switch v {
	case inject.VariantMotorCommand, inject.VariantWatchdogSpoof:
		// These trigger on the first Pedal Down frame (t ≈ 2.55 s).
		return 2450
	default:
		// The rest arm at StartAt = 4.0 s.
		return 3900
	}
}

// runTable1Straight is the pre-forking implementation: one full attacked
// session plus one full fault-free reference per variant, no shared
// prefix. Kept as the byte-identity oracle and the "before" baseline for
// the campaign benchmarks.
func runTable1Straight(baseSeed int64) (Table1Result, error) {
	variants := inject.AllVariants()
	rows, err := runJobs(len(variants), func(i int) (Table1Row, error) {
		return table1Row(baseSeed, variants[i])
	})
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{Rows: rows}, nil
}

// table1Row runs one variant's session and classifies its impact.
func table1Row(baseSeed int64, v inject.Variant) (Table1Row, error) {
	cfg := sim.Config{
		Seed:   baseSeed + int64(v),
		Script: console.StandardScript(6),
		Traj:   trajectory.Standard()[0],
	}
	vc := inject.VariantConfig{Variant: v, StartAt: 4.0, Seed: int64(v)}
	installed, err := vc.Apply(&cfg)
	if err != nil {
		return Table1Row{}, err
	}
	rig, err := sim.New(cfg)
	if err != nil {
		return Table1Row{}, err
	}

	// Reference trace for deviation classification.
	refTrial := Trial{Seed: cfg.Seed, TrajIdx: 0, Teleop: 6}
	ref, err := refTrial.reference()
	if err != nil {
		return Table1Row{}, err
	}

	row := Table1Row{Variant: v, Installed: installed}
	step := 0
	halted := false
	brakedInDown := 0
	rig.Observe(func(si sim.StepInfo) {
		if !halted && step < len(ref) {
			if d := si.TipTrue.DistanceTo(ref[step]); d > row.MaxDevMM/1e3 {
				row.MaxDevMM = d * 1e3
			}
		}
		if si.PLCEStop {
			halted = true
		}
		if si.Ctrl.State == statemachine.PedalDown && rig.PLC().BrakesEngaged() {
			brakedInDown++
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return Table1Row{}, err
	}
	row.FinalState = rig.Controller().State()
	row.IKFails = rig.Controller().IKFails()
	row.SafetyTrips = rig.Controller().SafetyTrips()
	row.PLCEStopped = rig.PLC().EStopped()
	row.Impact = classifyImpact(row, brakedInDown)
	return row, nil
}

// classifyImpact maps run observables to the paper's impact labels. The
// order matters: root causes (IK failure, brake desync, lost console) are
// reported ahead of their downstream symptoms (deviation from the
// reference trajectory, cascaded E-STOP).
func classifyImpact(row Table1Row, brakedInDown int) string {
	switch {
	case row.IKFails > 0:
		return "Unwanted state (IK-fail)"
	case brakedInDown > 0:
		return "Brake engagement mid-operation (PLC desync)"
	case row.Variant == inject.VariantPortChange && row.FinalState == statemachine.PedalUp:
		return "Unwanted state (console lost, frozen arm)"
	case row.Variant == inject.VariantPacketContent && row.MaxDevMM > AdverseJumpThreshold*1e3:
		return "Hijacked trajectory"
	case row.PLCEStopped || row.FinalState == statemachine.EStop:
		if row.MaxDevMM > AdverseJumpThreshold*1e3 {
			return "Abrupt jump + Unwanted state (E-STOP)"
		}
		return "Unwanted state (E-STOP)"
	case row.MaxDevMM > AdverseJumpThreshold*1e3:
		return "Abrupt jump"
	default:
		return "No observable impact"
	}
}

// Write renders the variant matrix.
func (r Table1Result) Write(w io.Writer) {
	fmt.Fprintln(w, "TABLE I. Attack variants on the robot control structure and observed impact")
	fmt.Fprintf(w, "%-44s %-42s %10s %8s %6s %6s\n", "Variant (target layer)", "Observed impact", "MaxDev(mm)", "IKfails", "Trips", "E-STOP")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-44s %-42s %10.2f %8d %6d %6v\n",
			row.Variant, row.Impact, row.MaxDevMM, row.IKFails, row.SafetyTrips, row.PLCEStopped)
	}
}
