package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/inject"
	"ravenguard/internal/metrics"
)

// Fig9Config parameterises the E5 experiment (paper Figure 9): the
// probability of adverse impact and of detection as functions of injected
// error value and attack activation period, for scenario B. Each cell is
// estimated from at least Reps repetitions (paper: >= 20).
type Fig9Config struct {
	Values    []int16 // injected DAC error values
	Durations []int   // activation periods, control cycles (= ms)
	Reps      int     // repetitions per cell (default 20)
	BaseSeed  int64
}

func (c *Fig9Config) applyDefaults() {
	if len(c.Values) == 0 {
		c.Values = []int16{2000, 4000, 8000, 12000, 16000, 20000, 24000, 28000}
	}
	if len(c.Durations) == 0 {
		c.Durations = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	if c.Reps == 0 {
		c.Reps = 20
	}
}

// Fig9Cell is one (value, duration) grid point.
type Fig9Cell struct {
	Value    int16
	Duration int
	PImpact  metrics.Proportion // P(adverse impact: >1 mm jump)
	PDyn     metrics.Proportion // P(preemptive detection, dynamic model)
	PRaven   metrics.Proportion // P(detection, RAVEN safety checks)
}

// Fig9Result is the full grid.
type Fig9Result struct {
	Cells []Fig9Cell
	Reps  int
}

// RunFig9 sweeps the grid. Cells run concurrently trial-by-trial.
func RunFig9(cfg Fig9Config) (Fig9Result, error) {
	cfg.applyDefaults()
	var (
		trials []Trial
		cells  []Fig9Cell
	)
	for _, v := range cfg.Values {
		for _, d := range cfg.Durations {
			cells = append(cells, Fig9Cell{Value: v, Duration: d})
			for rep := 0; rep < cfg.Reps; rep++ {
				trials = append(trials, Trial{
					Seed:     cfg.BaseSeed + int64(5000+rep), // pooled seeds: references cached
					TrajIdx:  rep % 2,
					Scenario: ScenarioB,
					B: inject.ScenarioBParams{
						Value:           v,
						Channel:         rep % 3,
						StartDelayTicks: 500 + 37*rep,
						ActivationTicks: d,
						Seed:            int64(rep),
					},
				})
			}
		}
	}
	results, err := runTrials(trials)
	if err != nil {
		return Fig9Result{}, fmt.Errorf("experiment: fig9: %w", err)
	}
	for i, res := range results {
		cell := &cells[i/cfg.Reps]
		cell.PImpact.Observe(res.Impact)
		cell.PDyn.Observe(res.DynPreemptive)
		cell.PRaven.Observe(res.RavenDetected)
	}
	return Fig9Result{Cells: cells, Reps: cfg.Reps}, nil
}

// Write renders the grid as three aligned tables (the paper's two subplots
// show these series against the two axes).
func (r Fig9Result) Write(w io.Writer) {
	fmt.Fprintf(w, "FIGURE 9. Attack impact/detection probability vs injected error value and activation period (%d reps/cell)\n", r.Reps)
	fmt.Fprintf(w, "%-8s %-10s %10s %12s %12s\n", "Value", "Period(ms)", "P(impact)", "P(dyn det.)", "P(RAVEN det.)")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8d %-10d %10.2f %12.2f %12.2f\n",
			c.Value, c.Duration, c.PImpact.Value(), c.PDyn.Value(), c.PRaven.Value())
	}

	// The paper's headline observations, checked on the data:
	var dynAboveRaven, cells int
	var ravenBelowImpact int
	for _, c := range r.Cells {
		cells++
		if c.PDyn.Value() >= c.PRaven.Value() {
			dynAboveRaven++
		}
		if c.PRaven.Value() <= c.PImpact.Value()+1e-9 {
			ravenBelowImpact++
		}
	}
	fmt.Fprintf(w, "Cells where dynamic-model detection >= RAVEN detection: %d/%d\n", dynAboveRaven, cells)
	fmt.Fprintf(w, "Cells where RAVEN detection <= adverse-impact probability: %d/%d\n", ravenBelowImpact, cells)
}
