package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/inject"
	"ravenguard/internal/metrics"
)

// Fig9Config parameterises the E5 experiment (paper Figure 9): the
// probability of adverse impact and of detection as functions of injected
// error value and attack activation period, for scenario B. Each cell is
// estimated from at least Reps repetitions (paper: >= 20).
type Fig9Config struct {
	Values    []int16 // injected DAC error values
	Durations []int   // activation periods, control cycles (= ms)
	Reps      int     // repetitions per cell (default 20)
	BaseSeed  int64
}

func (c *Fig9Config) applyDefaults() {
	if len(c.Values) == 0 {
		c.Values = []int16{2000, 4000, 8000, 12000, 16000, 20000, 24000, 28000}
	}
	if len(c.Durations) == 0 {
		c.Durations = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	if c.Reps == 0 {
		c.Reps = 20
	}
}

// Fig9Cell is one (value, duration) grid point.
type Fig9Cell struct {
	Value    int16
	Duration int
	PImpact  metrics.Proportion // P(adverse impact: >1 mm jump)
	PDyn     metrics.Proportion // P(preemptive detection, dynamic model)
	PRaven   metrics.Proportion // P(detection, RAVEN safety checks)
}

// Fig9Result is the full grid.
type Fig9Result struct {
	Cells []Fig9Cell
	Reps  int
}

// Fig9Jobs is the size of the grid's shardable job space: one job per
// (cell, repetition), cell-major.
func Fig9Jobs(cfg Fig9Config) int {
	cfg.applyDefaults()
	return len(cfg.Values) * len(cfg.Durations) * cfg.Reps
}

// Fig9Partial is the grid's partial aggregate over one job range: the full
// cell grid with only the in-range repetitions observed. Proportions are
// pure counts, so partials of any contiguous partition merge into the same
// numbers the whole-grid run produces.
type Fig9Partial struct {
	Cells []Fig9Cell `json:"cells"`
}

// fig9Grid returns the zeroed cell grid in reporting order.
func fig9Grid(cfg Fig9Config) []Fig9Cell {
	cells := make([]Fig9Cell, 0, len(cfg.Values)*len(cfg.Durations))
	for _, v := range cfg.Values {
		for _, d := range cfg.Durations {
			cells = append(cells, Fig9Cell{Value: v, Duration: d})
		}
	}
	return cells
}

// fig9Trial builds the trial at one global job index: cell idx/Reps,
// repetition idx%Reps. Parameters are a pure function of the index, so any
// range regenerates its trials directly.
func fig9Trial(cfg Fig9Config, idx int) Trial {
	ci, rep := idx/cfg.Reps, idx%cfg.Reps
	v := cfg.Values[ci/len(cfg.Durations)]
	d := cfg.Durations[ci%len(cfg.Durations)]
	return Trial{
		Seed:     cfg.BaseSeed + int64(5000+rep), // pooled seeds: references cached
		TrajIdx:  rep % 2,
		Scenario: ScenarioB,
		B: inject.ScenarioBParams{
			Value:           v,
			Channel:         rep % 3,
			StartDelayTicks: 500 + 37*rep,
			ActivationTicks: d,
			Seed:            int64(rep),
		},
	}
}

// RunFig9 sweeps the grid. Cells run concurrently trial-by-trial.
func RunFig9(cfg Fig9Config) (Fig9Result, error) {
	cfg.applyDefaults()
	p, err := RunFig9Range(cfg, 0, Fig9Jobs(cfg))
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{Cells: p.Cells, Reps: cfg.Reps}, nil
}

// RunFig9Range runs the grid's trials at global indices [lo, hi) and
// returns their partial grid.
func RunFig9Range(cfg Fig9Config, lo, hi int) (Fig9Partial, error) {
	cfg.applyDefaults()
	jobs := Fig9Jobs(cfg)
	if lo < 0 || hi > jobs || lo > hi {
		return Fig9Partial{}, fmt.Errorf("experiment: fig9 range %d:%d outside [0,%d)", lo, hi, jobs)
	}
	trials := make([]Trial, 0, hi-lo)
	for idx := lo; idx < hi; idx++ {
		trials = append(trials, fig9Trial(cfg, idx))
	}
	results, err := runTrials(trials)
	if err != nil {
		return Fig9Partial{}, fmt.Errorf("experiment: fig9: %w", err)
	}
	cells := fig9Grid(cfg)
	for j, res := range results {
		cell := &cells[(lo+j)/cfg.Reps]
		cell.PImpact.Observe(res.Impact)
		cell.PDyn.Observe(res.DynPreemptive)
		cell.PRaven.Observe(res.RavenDetected)
	}
	return Fig9Partial{Cells: cells}, nil
}

// mergeFig9Partials combines the partial grids of two adjacent ranges.
func mergeFig9Partials(a, b Fig9Partial) (Fig9Partial, error) {
	if len(a.Cells) == 0 {
		return b, nil
	}
	if len(b.Cells) == 0 {
		return a, nil
	}
	if len(a.Cells) != len(b.Cells) {
		return Fig9Partial{}, fmt.Errorf("experiment: fig9 merge: %d vs %d cells", len(a.Cells), len(b.Cells))
	}
	out := Fig9Partial{Cells: make([]Fig9Cell, len(a.Cells))}
	for i := range a.Cells {
		x, y := a.Cells[i], b.Cells[i]
		if x.Value != y.Value || x.Duration != y.Duration {
			return Fig9Partial{}, fmt.Errorf("experiment: fig9 merge: cell %d is %d/%d vs %d/%d",
				i, x.Value, x.Duration, y.Value, y.Duration)
		}
		x.PImpact.Merge(y.PImpact)
		x.PDyn.Merge(y.PDyn)
		x.PRaven.Merge(y.PRaven)
		out.Cells[i] = x
	}
	return out, nil
}

// Write renders the grid as three aligned tables (the paper's two subplots
// show these series against the two axes).
func (r Fig9Result) Write(w io.Writer) {
	fmt.Fprintf(w, "FIGURE 9. Attack impact/detection probability vs injected error value and activation period (%d reps/cell)\n", r.Reps)
	fmt.Fprintf(w, "%-8s %-10s %10s %12s %12s\n", "Value", "Period(ms)", "P(impact)", "P(dyn det.)", "P(RAVEN det.)")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8d %-10d %10.2f %12.2f %12.2f\n",
			c.Value, c.Duration, c.PImpact.Value(), c.PDyn.Value(), c.PRaven.Value())
	}

	// The paper's headline observations, checked on the data:
	var dynAboveRaven, cells int
	var ravenBelowImpact int
	for _, c := range r.Cells {
		cells++
		if c.PDyn.Value() >= c.PRaven.Value() {
			dynAboveRaven++
		}
		if c.PRaven.Value() <= c.PImpact.Value()+1e-9 {
			ravenBelowImpact++
		}
	}
	fmt.Fprintf(w, "Cells where dynamic-model detection >= RAVEN detection: %d/%d\n", dynAboveRaven, cells)
	fmt.Fprintf(w, "Cells where RAVEN detection <= adverse-impact probability: %d/%d\n", ravenBelowImpact, cells)
}
