package experiment

import "testing"

// End-to-end campaign benchmarks, forked vs straight. Each iteration
// clears the reference cache so every run pays the full campaign cost
// (references included) — the same work a cold labrunner invocation does.

func BenchmarkTable1Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetReferenceCache()
		if _, err := RunTable1(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1CampaignStraight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetReferenceCache()
		if _, err := runTable1Straight(1); err != nil {
			b.Fatal(err)
		}
	}
}

// The fault campaign at the -quick size (all 11 kinds, 1 seed, 4 s of
// teleoperation): 44 full sessions straight, vs 4 shared heads + 44
// batch-stepped continuations forked.
func benchFaultCfg() FaultCampaignConfig {
	return FaultCampaignConfig{BaseSeed: 1, Seeds: 1, Teleop: 4}
}

func BenchmarkFaultCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetReferenceCache()
		if _, err := RunFaultCampaign(benchFaultCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultCampaignStraight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetReferenceCache()
		if _, err := runFaultCampaignStraight(benchFaultCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// The mitigation sweep at labrunner's three values, -quick attack count.
func BenchmarkMitigationSweep(b *testing.B) {
	values := []int16{12000, 16000, 20000}
	for i := 0; i < b.N; i++ {
		ResetReferenceCache()
		if _, err := RunMitigationSweep(values, MitigationConfig{Attacks: 12, BaseSeed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMitigationSweepStraight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetReferenceCache()
		for _, v := range []int16{12000, 16000, 20000} {
			if _, err := RunMitigationComparison(MitigationConfig{Attacks: 12, Value: v, BaseSeed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
