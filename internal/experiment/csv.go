package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteFig9CSV exports the Figure 9 probability grid as CSV for external
// plotting (value, period_ms, p_impact, p_dyn, p_raven).
func WriteFig9CSV(w io.Writer, res Fig9Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"value", "period_ms", "p_impact", "p_dyn_detect", "p_raven_detect", "reps"}); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, c := range res.Cells {
		rec := []string{
			strconv.Itoa(int(c.Value)),
			strconv.Itoa(c.Duration),
			strconv.FormatFloat(c.PImpact.Value(), 'f', 4, 64),
			strconv.FormatFloat(c.PDyn.Value(), 'f', 4, 64),
			strconv.FormatFloat(c.PRaven.Value(), 'f', 4, 64),
			strconv.Itoa(c.PImpact.N()),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV exports the Table IV confusion metrics as CSV.
func WriteTable4CSV(w io.Writer, res Table4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "technique", "acc", "tpr", "fpr", "f1", "tp", "fp", "tn", "fn"}); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, sc := range []Table4Scenario{res.A, res.B} {
		for _, cell := range []Table4Cell{sc.Dyn, sc.Raven} {
			c := cell.Confusion
			rec := []string{
				sc.Name,
				cell.Technique,
				strconv.FormatFloat(c.Accuracy(), 'f', 2, 64),
				strconv.FormatFloat(c.TPR(), 'f', 2, 64),
				strconv.FormatFloat(c.FPR(), 'f', 2, 64),
				strconv.FormatFloat(c.F1(), 'f', 2, 64),
				strconv.Itoa(c.TP), strconv.Itoa(c.FP), strconv.Itoa(c.TN), strconv.Itoa(c.FN),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("experiment: csv: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig8CSV exports the model-validation rows as CSV.
func WriteFig8CSV(w io.Writer, res Fig8Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"integrator", "avg_step_ms", "j1_mpos_deg", "j1_jpos_deg", "j2_mpos_deg", "j2_jpos_deg", "j3_mpos_deg", "j3_jpos_mm"}); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, row := range res.Rows {
		rec := []string{
			row.Integrator,
			strconv.FormatFloat(row.AvgStepMs, 'f', 6, 64),
			strconv.FormatFloat(row.MposErrDeg[0], 'f', 4, 64),
			strconv.FormatFloat(row.JposErrDeg[0], 'f', 4, 64),
			strconv.FormatFloat(row.MposErrDeg[1], 'f', 4, 64),
			strconv.FormatFloat(row.JposErrDeg[1], 'f', 4, 64),
			strconv.FormatFloat(row.MposErrDeg[2], 'f', 4, 64),
			strconv.FormatFloat(row.JposErr3MM, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLatencyCSV exports the detection-latency profile as CSV.
func WriteLatencyCSV(w io.Writer, res LatencyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"value", "detected", "runs", "latency_mean_ms", "latency_max_ms", "margin_mean_ms"}); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, row := range res.Rows {
		rec := []string{
			strconv.Itoa(int(row.Value)),
			strconv.Itoa(row.Detected),
			strconv.Itoa(row.Runs),
			strconv.FormatFloat(row.Latency.Mean, 'f', 2, 64),
			strconv.FormatFloat(row.Latency.Max, 'f', 2, 64),
			strconv.FormatFloat(row.ImpactMargin.Mean, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMitigationCSV exports the mitigation comparison as CSV.
func WriteMitigationCSV(w io.Writer, res MitigationResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "value", "period_ms", "p_jump", "p_complete", "jump_mean_mm", "jump_max_mm", "lag_mean_mm", "lag_max_mm"}); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, arm := range res.Arms {
		rec := []string{
			arm.Name,
			strconv.Itoa(int(res.Config.Value)),
			strconv.Itoa(res.Config.Duration),
			strconv.FormatFloat(arm.JumpRate, 'f', 3, 64),
			strconv.FormatFloat(arm.CompletionRate, 'f', 3, 64),
			strconv.FormatFloat(arm.Jump.Mean, 'f', 3, 64),
			strconv.FormatFloat(arm.Jump.Max, 'f', 3, 64),
			strconv.FormatFloat(arm.Lag.Mean, 'f', 3, 64),
			strconv.FormatFloat(arm.Lag.Max, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
