package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/metrics"
)

// AblationConfig sizes the ablation campaigns (smaller than Table IV).
type AblationConfig struct {
	Runs     int // attack trials per arm (default 120)
	BaseSeed int64
}

func (c *AblationConfig) applyDefaults() {
	if c.Runs == 0 {
		c.Runs = 120
	}
}

// AblationArm is one configuration's scores.
type AblationArm struct {
	Name      string
	Confusion metrics.Confusion
}

// AblationResult is a named set of arms.
type AblationResult struct {
	Title string
	Arms  []AblationArm
}

// ablationCampaign scores one guard configuration over a mixed scenario-B
// campaign (attacks of varying size plus fault-free runs).
func ablationCampaign(cfg AblationConfig, mutate func(*Trial)) (metrics.Confusion, error) {
	vals, durs := scenarioBGrid()
	trials := make([]Trial, 0, cfg.Runs)
	for i := 0; i < cfg.Runs; i++ {
		trial := Trial{
			Seed:     cfg.BaseSeed + int64(7000+i%31),
			TrajIdx:  i % 2,
			Scenario: ScenarioB,
			B: inject.ScenarioBParams{
				Value:           vals[i%len(vals)],
				Channel:         i % 3,
				StartDelayTicks: 500 + 61*(i%29),
				ActivationTicks: durs[(i/len(vals))%len(durs)],
				Seed:            int64(i),
			},
		}
		if i%7 == 0 {
			trial.Scenario = ScenarioNone
		}
		if mutate != nil {
			mutate(&trial)
		}
		trials = append(trials, trial)
	}
	results, err := runTrials(trials)
	if err != nil {
		return metrics.Confusion{}, err
	}
	var conf metrics.Confusion
	for _, res := range results {
		conf.Observe(res.Impact, res.DynPreemptive)
	}
	return conf, nil
}

// RunAblationFusion compares the paper's three-way AND alarm fusion with a
// single-variable OR (any threshold crossing alarms).
func RunAblationFusion(cfg AblationConfig) (AblationResult, error) {
	cfg.applyDefaults()
	out := AblationResult{Title: "Alarm fusion: all-three-AND (paper) vs any-variable-OR"}
	for _, arm := range []struct {
		name   string
		fusion core.Fusion
	}{
		{"fusion=ALL (paper)", core.FusionAll},
		{"fusion=ANY", core.FusionAny},
	} {
		conf, err := ablationCampaign(cfg, func(t *Trial) { t.Fusion = arm.fusion })
		if err != nil {
			return AblationResult{}, err
		}
		out.Arms = append(out.Arms, AblationArm{Name: arm.name, Confusion: conf})
	}
	return out, nil
}

// RunAblationPercentile compares threshold strictness: scaling the learned
// thresholds down (more sensitive) and up (less sensitive) against the
// paper's 99.8-99.9th percentile choice.
func RunAblationPercentile(cfg AblationConfig) (AblationResult, error) {
	cfg.applyDefaults()
	out := AblationResult{Title: "Threshold scale around the learned 99.85th percentile"}
	for _, arm := range []struct {
		name  string
		scale float64
	}{
		{"thresholds x0.5 (looser trigger)", 0.5},
		{"thresholds x1.0 (paper)", 1.0},
		{"thresholds x2.0 (stricter trigger)", 2.0},
	} {
		th := core.DefaultThresholds()
		for i := range th.MotorVel {
			th.MotorVel[i] *= arm.scale
			th.MotorAccel[i] *= arm.scale
			th.JointVel[i] *= arm.scale
		}
		conf, err := ablationCampaign(cfg, func(t *Trial) { t.Thresholds = th })
		if err != nil {
			return AblationResult{}, err
		}
		out.Arms = append(out.Arms, AblationArm{Name: arm.name, Confusion: conf})
	}
	return out, nil
}

// RunAblationResync compares the guard's model-feedback fusion schemes:
// the paper's plain proportional resynchronisation against the per-joint
// steady-state Kalman filter (following the UKF work the paper cites).
func RunAblationResync(cfg AblationConfig) (AblationResult, error) {
	cfg.applyDefaults()
	out := AblationResult{Title: "Model resync: proportional (paper) vs steady-state Kalman"}
	for _, arm := range []struct {
		name   string
		resync string
	}{
		{"resync=proportional (paper)", "proportional"},
		{"resync=kalman", "kalman"},
	} {
		conf, err := ablationCampaign(cfg, func(t *Trial) { t.Resync = arm.resync })
		if err != nil {
			return AblationResult{}, err
		}
		out.Arms = append(out.Arms, AblationArm{Name: arm.name, Confusion: conf})
	}
	return out, nil
}

// RunAblationPlacement compares installing the guard below the malicious
// wrapper (the paper's hardware-boundary placement) with installing it
// above (where it checks commands before the attacker mutates them — the
// TOCTOU gap RAVEN's own checks suffer from).
func RunAblationPlacement(cfg AblationConfig) (AblationResult, error) {
	cfg.applyDefaults()
	out := AblationResult{Title: "Detector placement: below vs above the malicious wrapper (TOCTOU)"}
	for _, arm := range []struct {
		name  string
		above bool
	}{
		{"guard at hardware boundary (paper)", false},
		{"guard above malware (pre-attack check)", true},
	} {
		conf, err := ablationCampaign(cfg, func(t *Trial) { t.GuardAboveMalware = arm.above })
		if err != nil {
			return AblationResult{}, err
		}
		out.Arms = append(out.Arms, AblationArm{Name: arm.name, Confusion: conf})
	}
	return out, nil
}

// Write renders one ablation.
func (r AblationResult) Write(w io.Writer) {
	fmt.Fprintf(w, "ABLATION: %s\n", r.Title)
	fmt.Fprintf(w, "%-42s %7s %7s %7s %7s\n", "Arm", "ACC", "TPR", "FPR", "F1")
	for _, arm := range r.Arms {
		c := arm.Confusion
		fmt.Fprintf(w, "%-42s %7.1f %7.1f %7.1f %7.1f\n", arm.Name, c.Accuracy(), c.TPR(), c.FPR(), c.F1())
	}
}
