package experiment

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ravenguard/internal/fault"
	"ravenguard/internal/shard"
)

// The supervised coordinator must stay byte-identical to the in-process
// run through every failure it absorbs: chunk partials are deterministic
// per job range, so crashes, torn frames, poisoned streams and
// coordinator kills can only cost re-execution, never bits. These tests
// pin that through the same Supervise/Merger/Journal path labrunner's
// -shards coordinator uses, with in-process chaos workers running the
// real campaign ranges.

// chaosWorker is a supervised in-process worker: each dispatch runs the
// campaign range on a goroutine (like a worker process would), except
// where the chaos plan says to die first.
type chaosWorker struct {
	spec      CampaignShard
	plan      shard.ChaosPlan
	slot, inc int
	ev        chan<- shard.WorkerEvent

	mu   sync.Mutex
	dead bool
}

func (w *chaosWorker) send(ev shard.WorkerEvent) {
	ev.Slot, ev.Inc = w.slot, w.inc
	w.ev <- ev
}

func (w *chaosWorker) exit(err error) {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	w.mu.Unlock()
	w.send(shard.WorkerEvent{Kind: shard.EventExit, Err: err, RSSBytes: 1 << 20, CPUSeconds: 0.01})
}

func (w *chaosWorker) Dispatch(r shard.Range, attempt int) error {
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if dead {
		return errors.New("dispatch to dead worker")
	}
	go func() {
		switch w.plan.Decide(r, attempt) {
		case shard.ChaosCrash, shard.ChaosTruncate:
			// In process, a torn frame and a crash land the same way: the
			// incarnation dies without delivering the chunk.
			w.exit(errors.New("chaos: worker crash"))
			return
		case shard.ChaosGarbage:
			w.send(shard.WorkerEvent{Kind: shard.EventGarbage, Err: errors.New("chaos: poisoned stream")})
			return
		case shard.ChaosStall:
			return // silent forever; only a straggler deadline reaps this
		}
		p, err := w.spec.RunRange(r.Lo, r.Hi)
		if err != nil {
			w.exit(err)
			return
		}
		w.send(shard.WorkerEvent{Kind: shard.EventFrame, Frame: shard.Frame{
			V: shard.FrameVersion, Campaign: w.spec.Name, Shards: 1, Range: r, Partial: p,
		}})
	}()
	return nil
}

func (w *chaosWorker) Close() { w.exit(nil) }
func (w *chaosWorker) Term()  { w.exit(errors.New("terminated")) }
func (w *chaosWorker) Kill()  { w.exit(errors.New("killed")) }

func chaosSpawner(spec CampaignShard, plan shard.ChaosPlan) func(int, int, chan<- shard.WorkerEvent) (shard.Worker, error) {
	return func(slot, inc int, ev chan<- shard.WorkerEvent) (shard.Worker, error) {
		return &chaosWorker{spec: spec, plan: plan, slot: slot, inc: inc, ev: ev}, nil
	}
}

// TestSupervisedChaosEquivalence pins the tentpole guarantee at 1 and 8
// workers: a campaign supervised under seeded chaos — with chunks lost
// to crashes, a torn frame, and a poisoned stream, all retried on
// respawned workers — merges to the same bytes as the clean
// single-range run, and renders the same report.
func TestSupervisedChaosEquivalence(t *testing.T) {
	spec := FaultCampaignShard(FaultCampaignConfig{
		BaseSeed: 60, Seeds: 4, Teleop: 4,
		Kinds: fault.AllKinds()[:2],
	})
	ResetReferenceCache()
	whole, err := spec.RunRange(0, spec.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	var wholeReport strings.Builder
	if err := spec.Render(&wholeReport, whole); err != nil {
		t.Fatal(err)
	}

	// Seed 7 over the 1-job chunk grid {0,1,2,3} schedules, in order:
	// truncate, clean, garbage, crash — every non-stall failure kind once
	// (stall needs a deadline clock; the supervisor's straggler tests own
	// that path).
	plan := shard.ChaosPlan{Seed: 7, Crash: 0.35, Truncate: 0.15, Garbage: 0.30}
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			ResetReferenceCache()
			m := shard.NewMerger(spec.Jobs, spec.Merge)
			st, err := shard.Supervise(shard.SupervisorConfig{
				Chunks:  shard.Chunks(shard.Range{Lo: 0, Hi: spec.Jobs}, 1),
				Workers: workers,
				Clock:   func() int64 { return 0 },
				Spawn:   chaosSpawner(spec, plan),
				OnFrame: func(f shard.Frame) error { return m.Observe(f.Range, f.Partial) },
				Logf:    t.Logf,
			})
			if err != nil {
				t.Fatalf("%d workers: %v", workers, err)
			}
			if st.Retries != 3 || st.Respawns != 3 || st.Garbage != 1 {
				t.Fatalf("%d workers: stats %+v, want 3 retries, 3 respawns, 1 garbage", workers, st)
			}
			merged, err := m.Result()
			if err != nil {
				t.Fatalf("%d workers: %v", workers, err)
			}
			if !bytes.Equal(whole, merged) {
				t.Fatalf("%d workers: chaos run diverged from clean run\nwhole:  %s\nmerged: %s",
					workers, whole, merged)
			}
			var report strings.Builder
			if err := spec.Render(&report, merged); err != nil {
				t.Fatal(err)
			}
			if report.String() != wholeReport.String() {
				t.Fatalf("%d workers: rendered report diverged", workers)
			}
		})
	}
}

// TestSupervisedJournalResumeEquivalence pins coordinator restartability:
// a journaled campaign killed mid-run resumes from the journal — replay,
// compact, dispatch only the uncovered ranges, at a different worker
// count — and the final result is byte-identical to the clean run.
func TestSupervisedJournalResumeEquivalence(t *testing.T) {
	spec := Table4Shard(Table4Config{RunsA: 6, RunsB: 6, BaseSeed: 70})
	ResetReferenceCache()
	whole, err := spec.RunRange(0, spec.Jobs)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.journal")
	header := shard.JournalHeader{Campaign: spec.Name, Jobs: spec.Jobs, Config: "seed=70"}
	const chunkSize = 2

	// Phase 1: journaled run, coordinator "killed" after two accepted
	// frames (the same OnFrame halt labrunner's -dieafter hook uses).
	killed := errors.New("coordinator killed mid-campaign")
	jnl, err := shard.CreateJournal(path, header, 1)
	if err != nil {
		t.Fatal(err)
	}
	m1 := shard.NewMerger(spec.Jobs, spec.Merge)
	frames := 0
	ResetReferenceCache()
	withWorkers(t, 2, func() {
		_, err = shard.Supervise(shard.SupervisorConfig{
			Chunks:  shard.Chunks(shard.Range{Lo: 0, Hi: spec.Jobs}, chunkSize),
			Workers: 2,
			Clock:   func() int64 { return 0 },
			Spawn:   chaosSpawner(spec, shard.ChaosPlan{}),
			OnFrame: func(f shard.Frame) error {
				if err := m1.Observe(f.Range, f.Partial); err != nil {
					return err
				}
				if err := jnl.Append(f); err != nil {
					return err
				}
				if frames++; frames >= 2 {
					return killed
				}
				return nil
			},
		})
	})
	if !errors.Is(err, killed) {
		t.Fatalf("phase 1 err = %v, want the kill sentinel", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume — replay the journal, compact it, supervise only
	// the uncovered ranges at a different worker count.
	h, replay, truncated, err := shard.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if truncated || h.Campaign != spec.Name || h.Jobs != spec.Jobs || h.Config != "seed=70" {
		t.Fatalf("journal header %+v truncated=%v", h, truncated)
	}
	if len(replay) != 2 {
		t.Fatalf("journal holds %d frames, want the 2 accepted before the kill", len(replay))
	}
	m2 := shard.NewMerger(spec.Jobs, spec.Merge)
	for _, f := range replay {
		if err := m2.Observe(f.Range, f.Partial); err != nil {
			t.Fatal(err)
		}
	}
	var compacted []shard.Frame
	for _, pt := range m2.Parts() {
		compacted = append(compacted, shard.Frame{
			Campaign: spec.Name, Shards: 1, Range: pt.Range, Partial: pt.Partial,
		})
	}
	jnl2, err := shard.CompactJournal(path, header, compacted, 1)
	if err != nil {
		t.Fatal(err)
	}
	var gaps []shard.Range
	for _, gap := range m2.Missing() {
		gaps = append(gaps, shard.Chunks(gap, chunkSize)...)
	}
	if len(gaps) == 0 {
		t.Fatal("nothing left to resume; the kill came too late to test anything")
	}
	ResetReferenceCache()
	withWorkers(t, 8, func() {
		_, err = shard.Supervise(shard.SupervisorConfig{
			Chunks:  gaps,
			Workers: 8,
			Clock:   func() int64 { return 0 },
			Spawn:   chaosSpawner(spec, shard.ChaosPlan{}),
			OnFrame: func(f shard.Frame) error {
				if err := m2.Observe(f.Range, f.Partial); err != nil {
					return err
				}
				return jnl2.Append(f)
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl2.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := m2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, merged) {
		t.Fatalf("resumed run diverged from clean run\nwhole:  %s\nmerged: %s", whole, merged)
	}

	// The finished journal must itself replay to the same bits: a third
	// coordinator resuming a *completed* campaign re-renders it without
	// dispatching anything.
	_, final, _, err := shard.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	m3 := shard.NewMerger(spec.Jobs, spec.Merge)
	for _, f := range final {
		if err := m3.Observe(f.Range, f.Partial); err != nil {
			t.Fatal(err)
		}
	}
	if missing := m3.Missing(); len(missing) != 0 {
		t.Fatalf("finished journal leaves gaps %v", missing)
	}
	replayed, err := m3.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, replayed) {
		t.Fatal("journal replay of the finished campaign diverged from the clean run")
	}
}
