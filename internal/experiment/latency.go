package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/core"
	"ravenguard/internal/inject"
	"ravenguard/internal/interpose"
	"ravenguard/internal/sim"
	"ravenguard/internal/stats"
)

// LatencyConfig sizes the detection-latency experiment (extension): how
// many control cycles pass between the first corrupted frame reaching the
// write path and the guard's first alarm. The paper claims preemptive
// detection "before they manifest in the physical system"; this quantifies
// the margin.
type LatencyConfig struct {
	// Values are the scenario-B DAC error values to profile.
	Values []int16
	// RunsPerValue (default 20).
	RunsPerValue int
	BaseSeed     int64
}

func (c *LatencyConfig) applyDefaults() {
	if len(c.Values) == 0 {
		c.Values = []int16{8000, 12000, 16000, 20000, 24000, 28000}
	}
	if c.RunsPerValue == 0 {
		c.RunsPerValue = 20
	}
}

// LatencyRow is one value's latency distribution.
type LatencyRow struct {
	Value    int16
	Detected int // runs where the guard alarmed at all
	Runs     int
	// Latency in control cycles (= ms), over detected runs.
	Latency stats.Summary
	// ImpactMargin is mean (impact tick - alarm tick) over runs where the
	// unprotected system would have crossed the 1 mm criterion: how much
	// earlier the guard fires than the injury would occur. Negative means
	// the alarm came too late.
	ImpactMargin stats.Summary
}

// LatencyResult is the full profile.
type LatencyResult struct {
	Rows []LatencyRow
}

// latencyTicks is one run's three tick marks.
type latencyTicks struct {
	start, alarm, impact int
}

// RunLatency profiles detection latency for scenario-B attacks. All
// (value, rep) runs fan out onto the worker pool; each row's statistics
// reduce in rep order, so the profile is identical at any worker count.
func RunLatency(cfg LatencyConfig) (LatencyResult, error) {
	cfg.applyDefaults()
	reps := cfg.RunsPerValue
	ticks, err := runJobs(len(cfg.Values)*reps, func(i int) (latencyTicks, error) {
		v, rep := cfg.Values[i/reps], i%reps
		trial := Trial{
			Seed:     cfg.BaseSeed + int64(9000+rep%23),
			TrajIdx:  rep % 2,
			Scenario: ScenarioB,
			B: inject.ScenarioBParams{
				Value:           v,
				Channel:         rep % 3,
				StartDelayTicks: 500 + 41*rep,
				ActivationTicks: 256,
				Seed:            int64(rep),
			},
		}
		startTick, alarmTick, impactTick, err := latencyTrial(trial)
		return latencyTicks{startTick, alarmTick, impactTick}, err
	})
	if err != nil {
		return LatencyResult{}, err
	}

	var out LatencyResult
	for vi, v := range cfg.Values {
		row := LatencyRow{Value: v, Runs: reps}
		var lat, margin stats.Running
		for rep := 0; rep < reps; rep++ {
			tk := ticks[vi*reps+rep]
			if tk.alarm >= 0 && tk.start >= 0 {
				row.Detected++
				lat.Add(float64(tk.alarm - tk.start))
				if tk.impact >= 0 {
					margin.Add(float64(tk.impact - tk.alarm))
				}
			}
		}
		row.Latency = lat.Summarize()
		row.ImpactMargin = margin.Summarize()
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// latencyTrial runs the scored session tracking when the attack started,
// when the guard alarmed, and when the counterfactual impact would have
// manifested.
func latencyTrial(tr Trial) (startTick, alarmTick, impactTick int, err error) {
	ref, err := tr.reference()
	if err != nil {
		return -1, -1, -1, err
	}
	_, impactTick, err = tr.counterfactualImpact(ref)
	if err != nil {
		return -1, -1, -1, err
	}

	guard, err := core.NewGuard(core.Config{
		Thresholds: core.DefaultThresholds(),
		Mode:       core.ModeMonitor,
	})
	if err != nil {
		return -1, -1, -1, err
	}
	inj, err := inject.NewScenarioB(tr.B)
	if err != nil {
		return -1, -1, -1, err
	}
	rig, err := sim.New(sim.Config{
		Seed:    tr.Seed,
		Script:  tr.script(),
		Traj:    tr.trajectory(),
		Preload: []interpose.Wrapper{inj},
		Guards:  []sim.Hook{guard},
	})
	if err != nil {
		return -1, -1, -1, err
	}
	startTick, alarmTick = -1, -1
	step := 0
	rig.Observe(func(si sim.StepInfo) {
		if startTick < 0 && inj.Injected() > 0 {
			startTick = step
		}
		if alarmTick < 0 && guard.Alarms() > 0 {
			alarmTick = step
		}
		step++
	})
	if _, err := rig.Run(0); err != nil {
		return -1, -1, -1, err
	}
	return startTick, alarmTick, impactTick, nil
}

// Write renders the latency profile.
func (r LatencyResult) Write(w io.Writer) {
	fmt.Fprintln(w, "DETECTION LATENCY (scenario B, 256 ms activation)")
	fmt.Fprintf(w, "%-8s %10s %16s %16s %22s\n", "Value", "Detected", "latency mean ms", "latency max ms", "margin-to-injury ms")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %7d/%-3d %16.1f %16.0f %22.0f\n",
			row.Value, row.Detected, row.Runs,
			row.Latency.Mean, row.Latency.Max, row.ImpactMargin.Mean)
	}
}
