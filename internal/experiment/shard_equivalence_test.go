package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ravenguard/internal/fault"
	"ravenguard/internal/shard"
)

// The sharded campaign runners must be byte-identical to the in-process
// runs: for every ported campaign, the JSON partials of any shard split,
// chunked and merged in an arbitrary arrival order, must equal the
// single-range partial byte for byte — at any worker count. These tests
// pin that through the same CampaignShard wire path labrunner's worker and
// coordinator modes use.

// shardedResult runs spec split into k shards the way k worker processes
// would: each shard's range is cut into chunks, every chunk runs with a
// cold reference cache, and the chunk partials merge in reversed arrival
// order (the merge must be order-insensitive).
func shardedResult(t *testing.T, spec CampaignShard, k int) json.RawMessage {
	t.Helper()
	type frame struct {
		r shard.Range
		p json.RawMessage
	}
	var frames []frame
	for _, r := range shard.Split(spec.Jobs, k) {
		chunkSize := r.Len() / 2
		if chunkSize < 1 {
			chunkSize = 1
		}
		for _, ch := range shard.Chunks(r, chunkSize) {
			ResetReferenceCache()
			p, err := spec.RunRange(ch.Lo, ch.Hi)
			if err != nil {
				t.Fatalf("%s: shard %d/%d chunk %v: %v", spec.Name, k, k, ch, err)
			}
			frames = append(frames, frame{r: ch, p: p})
		}
	}
	m := shard.NewMerger(spec.Jobs, spec.Merge)
	for i := len(frames) - 1; i >= 0; i-- {
		if err := m.Observe(frames[i].r, frames[i].p); err != nil {
			t.Fatalf("%s: merge %v: %v", spec.Name, frames[i].r, err)
		}
	}
	out, err := m.Result()
	if err != nil {
		t.Fatalf("%s: merged result: %v", spec.Name, err)
	}
	return out
}

// assertShardIdentity pins spec's merged shard output against the
// single-range run for every shard count in ks.
func assertShardIdentity(t *testing.T, spec CampaignShard, ks []int) {
	t.Helper()
	ResetReferenceCache()
	whole, err := spec.RunRange(0, spec.Jobs)
	if err != nil {
		t.Fatalf("%s: whole range: %v", spec.Name, err)
	}
	var wholeReport strings.Builder
	if err := spec.Render(&wholeReport, whole); err != nil {
		t.Fatalf("%s: render: %v", spec.Name, err)
	}
	for _, k := range ks {
		merged := shardedResult(t, spec, k)
		if !bytes.Equal(whole, merged) {
			t.Fatalf("%s: %d-shard merge diverged from single-range run\nwhole:  %s\nmerged: %s",
				spec.Name, k, whole, merged)
		}
		var mergedReport strings.Builder
		if err := spec.Render(&mergedReport, merged); err != nil {
			t.Fatalf("%s: render merged: %v", spec.Name, err)
		}
		if wholeReport.String() != mergedReport.String() {
			t.Fatalf("%s: %d-shard merged report diverged from single-range report", spec.Name, k)
		}
	}
}

func TestFaultCampaignShardIdentity(t *testing.T) {
	spec := FaultCampaignShard(FaultCampaignConfig{
		BaseSeed: 60, Seeds: 3, Teleop: 4,
		Kinds: fault.AllKinds()[:3],
	})
	withWorkers(t, 1, func() { assertShardIdentity(t, spec, []int{2}) })
	withWorkers(t, 8, func() { assertShardIdentity(t, spec, []int{3}) })
}

func TestTable1ShardIdentity(t *testing.T) {
	spec := Table1Shard(50)
	withWorkers(t, 1, func() { assertShardIdentity(t, spec, []int{2}) })
	withWorkers(t, 8, func() { assertShardIdentity(t, spec, []int{3}) })
}

func TestTable4ShardIdentity(t *testing.T) {
	spec := Table4Shard(Table4Config{RunsA: 4, RunsB: 4, BaseSeed: 70})
	// The 1/2/3-shard coverage is split across the worker counts: every
	// shard count is pinned, without re-running the whole campaign for the
	// full cross product (these tests re-simulate the campaign once per
	// shard count, which adds up under -race on one core).
	withWorkers(t, 1, func() { assertShardIdentity(t, spec, []int{1, 2}) })
	withWorkers(t, 8, func() { assertShardIdentity(t, spec, []int{3}) })
}

func TestFig9ShardIdentity(t *testing.T) {
	spec := Fig9Shard(Fig9Config{
		Values: []int16{8000}, Durations: []int{32, 128}, Reps: 3, BaseSeed: 80,
	})
	withWorkers(t, 1, func() { assertShardIdentity(t, spec, []int{1, 2}) })
	withWorkers(t, 8, func() { assertShardIdentity(t, spec, []int{3}) })
}

func TestMitigationShardIdentity(t *testing.T) {
	spec := MitigationShard([]int16{12000, 20000}, MitigationConfig{Attacks: 3, BaseSeed: 90})
	withWorkers(t, 1, func() { assertShardIdentity(t, spec, []int{1, 2}) })
	withWorkers(t, 8, func() { assertShardIdentity(t, spec, []int{3}) })
}

// TestMitigationSweepRangeMatchesFinalize pins the typed path the sharded
// sweep rides: the finalized full-range partial must equal RunMitigationSweep.
func TestMitigationSweepRangeMatchesFinalize(t *testing.T) {
	values := []int16{12000, 20000}
	cfg := MitigationConfig{Attacks: 4, BaseSeed: 90}
	ResetReferenceCache()
	swept, err := RunMitigationSweep(values, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ResetReferenceCache()
	a, err := RunMitigationSweepRange(values, cfg, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMitigationSweepRange(values, cfg, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mergeMitigationPartials(a, b)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := FinalizeMitigationSweep(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(swept) {
		t.Fatalf("merged %d results, swept %d", len(merged), len(swept))
	}
	for i := range swept {
		if swept[i].Config != merged[i].Config || len(swept[i].Arms) != len(merged[i].Arms) {
			t.Fatalf("result %d config/arms diverged", i)
		}
		for ai := range swept[i].Arms {
			if swept[i].Arms[ai] != merged[i].Arms[ai] {
				t.Fatalf("result %d arm %d diverged:\nswept:  %+v\nmerged: %+v",
					i, ai, swept[i].Arms[ai], merged[i].Arms[ai])
			}
		}
	}
}
