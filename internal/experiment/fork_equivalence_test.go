package experiment

import (
	"reflect"
	"testing"
)

// The forked campaign runners must be byte-identical to the straight
// (pre-forking) implementations at any worker count. These tests pin that:
// every campaign is run both ways at 1 and 8 workers and compared with
// DeepEqual (all result fields are plain values).

func TestFaultCampaignForkedMatchesStraight(t *testing.T) {
	cfg := FaultCampaignConfig{BaseSeed: 60, Seeds: 1, Teleop: 4}
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			ResetReferenceCache()
			straight, err := runFaultCampaignStraight(cfg)
			if err != nil {
				t.Fatalf("workers=%d: straight: %v", workers, err)
			}
			ResetReferenceCache()
			forked, err := RunFaultCampaign(cfg)
			if err != nil {
				t.Fatalf("workers=%d: forked: %v", workers, err)
			}
			if !reflect.DeepEqual(straight, forked) {
				t.Fatalf("workers=%d: forked fault campaign diverged from straight run\nstraight: %+v\nforked:   %+v",
					workers, straight, forked)
			}
		})
	}
}

func TestFig6SeedIdenticalAcrossWorkerCounts(t *testing.T) {
	// Fig 5/6 ride the two-level scheduler through runJobs; their nine
	// captured sessions must not depend on the worker count.
	var results []Fig6Result
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			ResetReferenceCache()
			r, err := RunFig6(33)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			results = append(results, r)
		})
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("RunFig6 diverged between 1 and 8 workers")
	}
}

func TestMitigationSweepMatchesPerValueComparisons(t *testing.T) {
	values := []int16{12000, 20000}
	cfg := MitigationConfig{Attacks: 4, BaseSeed: 90}
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			ResetReferenceCache()
			straight := make([]MitigationResult, len(values))
			for vi, v := range values {
				vcfg := cfg
				vcfg.Value = v
				r, err := RunMitigationComparison(vcfg)
				if err != nil {
					t.Fatalf("workers=%d: comparison value=%d: %v", workers, v, err)
				}
				straight[vi] = r
			}
			ResetReferenceCache()
			swept, err := RunMitigationSweep(values, cfg)
			if err != nil {
				t.Fatalf("workers=%d: sweep: %v", workers, err)
			}
			if !reflect.DeepEqual(straight, swept) {
				t.Fatalf("workers=%d: sweep diverged from per-value comparisons\nstraight: %+v\nswept:    %+v",
					workers, straight, swept)
			}
		})
	}
}

func TestTable1ForkedMatchesStraight(t *testing.T) {
	for _, workers := range []int{1, 8} {
		withWorkers(t, workers, func() {
			ResetReferenceCache()
			straight, err := runTable1Straight(50)
			if err != nil {
				t.Fatalf("workers=%d: straight: %v", workers, err)
			}
			ResetReferenceCache()
			forked, err := RunTable1(50)
			if err != nil {
				t.Fatalf("workers=%d: forked: %v", workers, err)
			}
			if !reflect.DeepEqual(straight, forked) {
				t.Fatalf("workers=%d: forked Table 1 diverged from straight run\nstraight: %+v\nforked:   %+v",
					workers, straight, forked)
			}
		})
	}
}
