package experiment

import (
	"runtime"
	"sync"
)

// runTrials executes trials concurrently on up to GOMAXPROCS workers and
// returns results in input order. Trials are fully independent (each owns
// its rigs); the shared reference cache is internally locked. The first
// error aborts the batch.
func runTrials(trials []Trial) ([]Result, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(trials) {
		workers = len(trials)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, len(trials))
	errs := make([]error, len(trials))
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(trials) {
					return
				}
				results[i], errs[i] = trials[i].Run()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
