package experiment

import (
	"runtime"
	"sync"
)

// The campaign worker pool. Every campaign in this package decomposes into
// independent jobs (each job owns its rigs; the shared reference cache is
// internally locked), runs them on this pool, and reduces the results
// single-threaded in input-index order — so a campaign's output is
// seed-identical at any worker count: parallelism only trades wall-clock
// for CPU.
var (
	workersMu  sync.Mutex
	numWorkers int // 0 = GOMAXPROCS
)

// SetWorkers sets the pool size used by every campaign; 0 restores the
// GOMAXPROCS default. Safe to call between campaigns (labrunner's -workers
// flag lands here).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workersMu.Lock()
	numWorkers = n
	workersMu.Unlock()
}

// Workers returns the effective pool size.
func Workers() int {
	workersMu.Lock()
	n := numWorkers
	workersMu.Unlock()
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes n independent jobs concurrently and returns their
// results in input order. Each job must derive everything it needs from
// its index (fixed job order is what makes campaigns deterministic).
//
// First error aborts the batch: no new jobs are scheduled once one has
// failed (in-flight jobs finish), and the lowest-indexed error is
// returned.
func runJobs[T any](n int, run func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		next   int
		failed bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failed || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if results[i], errs[i] = run(i); errs[i] != nil {
					mu.Lock()
					failed = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runTrials executes trials concurrently and returns results in input
// order.
func runTrials(trials []Trial) ([]Result, error) {
	return runJobs(len(trials), func(i int) (Result, error) {
		return trials[i].Run()
	})
}
