package experiment

import (
	"runtime"
	"sync"
)

// The campaign worker pool. Every campaign in this package decomposes into
// independent jobs (each job owns its rigs; the shared reference cache is
// internally locked), runs them on this pool, and reduces the results
// single-threaded in input-index order — so a campaign's output is
// seed-identical at any worker count: parallelism only trades wall-clock
// for CPU.
var (
	workersMu  sync.Mutex
	numWorkers int // 0 = GOMAXPROCS
)

// SetWorkers sets the pool size used by every campaign; 0 restores the
// GOMAXPROCS default. Safe to call between campaigns (labrunner's -workers
// flag lands here).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workersMu.Lock()
	numWorkers = n
	workersMu.Unlock()
}

// Workers returns the effective pool size.
func Workers() int {
	workersMu.Lock()
	n := numWorkers
	workersMu.Unlock()
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runGroups executes a two-level job plan: `groups` independent groups,
// each with one prefix job producing a shared value P, followed by
// fanCount(g) fan-out jobs that consume that value. Fan-out jobs become
// schedulable the moment their group's prefix completes, so groups
// pipeline freely across the pool; results land [group][fan] indexed, so a
// campaign's output is seed-identical at any worker count.
//
// This is the shape of a snapshot-forking campaign: the prefix job runs
// the shared session head once and snapshots it, the fan jobs fork the
// snapshot into per-variant continuations.
//
// First error aborts the plan: no new jobs are scheduled once one has
// failed (in-flight jobs finish), and the error of the lowest-indexed job
// (group-major, prefix before its fans) is returned.
func runGroups[P, T any](groups int, prefix func(g int) (P, error), fanCount func(g int) int, fan func(g, j int, p P) (T, error)) ([][]T, error) {
	prefixes := make([]P, groups)
	prefixErrs := make([]error, groups)
	results := make([][]T, groups)
	fanErrs := make([][]error, groups)
	totalJobs := groups
	for g := 0; g < groups; g++ {
		n := fanCount(g)
		if n < 0 {
			n = 0
		}
		results[g] = make([]T, n)
		fanErrs[g] = make([]error, n)
		totalJobs += n
	}

	workers := Workers()
	if workers > totalJobs {
		workers = totalJobs
	}
	if workers < 1 {
		workers = 1
	}

	type fanJob struct{ g, j int }
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		nextPrefix int
		inFlight   int // prefix jobs running (their fans are not queued yet)
		ready      []fanJob
		failed     bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for {
				switch {
				case failed:
					cond.Broadcast()
					return
				case len(ready) > 0:
					job := ready[0]
					ready = ready[1:]
					p := prefixes[job.g]
					mu.Unlock()
					res, err := fan(job.g, job.j, p)
					mu.Lock()
					results[job.g][job.j] = res
					if fanErrs[job.g][job.j] = err; err != nil {
						failed = true
						cond.Broadcast()
					}
				case nextPrefix < groups:
					g := nextPrefix
					nextPrefix++
					inFlight++
					mu.Unlock()
					p, err := prefix(g)
					mu.Lock()
					prefixes[g] = p
					inFlight--
					if prefixErrs[g] = err; err != nil {
						failed = true
					} else {
						for j := range results[g] {
							ready = append(ready, fanJob{g, j})
						}
					}
					cond.Broadcast()
				case inFlight > 0:
					// A running prefix may still enqueue fan jobs.
					cond.Wait()
				default:
					cond.Broadcast()
					return
				}
			}
		}()
	}
	wg.Wait()
	for g := 0; g < groups; g++ {
		if prefixErrs[g] != nil {
			return nil, prefixErrs[g]
		}
		for _, err := range fanErrs[g] {
			if err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// runJobs executes n independent jobs concurrently and returns their
// results in input order: a degenerate one-level plan (every group is a
// bare prefix with a single trivial fan). Each job must derive everything
// it needs from its index (fixed job order is what makes campaigns
// deterministic). First error aborts the batch as in runGroups.
func runJobs[T any](n int, run func(i int) (T, error)) ([]T, error) {
	grouped, err := runGroups(n,
		func(g int) (struct{}, error) { return struct{}{}, nil },
		func(int) int { return 1 },
		func(g, _ int, _ struct{}) (T, error) { return run(g) })
	if err != nil {
		return nil, err
	}
	results := make([]T, n)
	for i, gr := range grouped {
		results[i] = gr[0]
	}
	return results, nil
}

// runTrials executes trials concurrently and returns results in input
// order.
func runTrials(trials []Trial) ([]Result, error) {
	return runJobs(len(trials), func(i int) (Result, error) {
		return trials[i].Run()
	})
}
