package experiment

import (
	"fmt"
	"io"
	"math"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/dynamics"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
)

// Fig8Config parameterises the E3 experiment (paper Figure 8): validation
// of the dynamic model against the (simulated) robot, comparing the 4th
// order Runge-Kutta and explicit Euler solvers at a 1 ms step.
type Fig8Config struct {
	// Runs of model-alongside-robot (paper: 10).
	Runs int
	// TeleopSeconds per run (default 6).
	TeleopSeconds float64
	// BaseSeed for the runs.
	BaseSeed int64
}

// Fig8Row is one integrator's results: per-step runtime and per-joint mean
// absolute errors of motor and joint positions.
type Fig8Row struct {
	Integrator  string
	AvgStepMs   float64                       // wall-clock per model step, ms
	MposErrDeg  [kinematics.NumJoints]float64 // mean |model - robot| motor position, degrees
	JposErrDeg  [2]float64                    // joints 1-2 (rotational), degrees
	JposErr3MM  float64                       // joint 3 (translational), millimeters
	SampleCount int
}

// Fig8Result holds both solvers' rows.
type Fig8Result struct {
	Rows []Fig8Row
}

// fig8Partial is one session's error/runtime accumulators.
type fig8Partial struct {
	mposErr [kinematics.NumJoints]float64
	jposErr [kinematics.NumJoints]float64
	samples int
	stepMs  float64
}

// runFig8One runs one model-alongside-robot session under one integrator.
func runFig8One(cfg Fig8Config, scheme string, run int) (fig8Partial, error) {
	var p fig8Partial
	guard, err := core.NewGuard(core.Config{Integrator: scheme})
	if err != nil {
		return p, err
	}
	rig, err := sim.New(sim.Config{
		Seed:   cfg.BaseSeed + int64(run),
		Script: console.StandardScript(cfg.TeleopSeconds),
		Traj:   trajectory.Standard()[run%2],
		Guards: []sim.Hook{guard},
	})
	if err != nil {
		return p, err
	}
	rig.Observe(func(si sim.StepInfo) {
		if si.T < 3.0 { // compare once teleoperation is underway
			return
		}
		mp, jp := guard.ModelState()
		for i := 0; i < kinematics.NumJoints; i++ {
			p.mposErr[i] += math.Abs(mp[i] - si.MposTrue[i])
			p.jposErr[i] += math.Abs(jp[i] - si.JposTrue[i])
		}
		p.samples++
	})
	if _, err := rig.Run(0); err != nil {
		return p, err
	}
	p.stepMs = guard.StepTime().Mean / 1e6
	return p, nil
}

// RunFig8 runs the model in parallel with the plant over several sessions
// for each integrator and aggregates "the average of mean absolute errors
// estimated for each trajectory". All (integrator, run) sessions fan out
// onto the worker pool together; the reduction walks them in fixed order.
func RunFig8(cfg Fig8Config) (Fig8Result, error) {
	if cfg.Runs == 0 {
		cfg.Runs = 10
	}
	if cfg.TeleopSeconds == 0 {
		cfg.TeleopSeconds = 6
	}

	schemes := []string{"rk4", "euler"}
	parts, err := runJobs(len(schemes)*cfg.Runs, func(i int) (fig8Partial, error) {
		return runFig8One(cfg, schemes[i/cfg.Runs], i%cfg.Runs)
	})
	if err != nil {
		return Fig8Result{}, err
	}

	var result Fig8Result
	for si, scheme := range schemes {
		var (
			mposErr [kinematics.NumJoints]float64
			jposErr [kinematics.NumJoints]float64
			samples int
			stepMs  float64
		)
		for run := 0; run < cfg.Runs; run++ {
			p := parts[si*cfg.Runs+run]
			for i := 0; i < kinematics.NumJoints; i++ {
				mposErr[i] += p.mposErr[i]
				jposErr[i] += p.jposErr[i]
			}
			samples += p.samples
			stepMs += p.stepMs
		}
		if samples == 0 {
			return Fig8Result{}, fmt.Errorf("experiment: fig8 collected no samples")
		}
		row := Fig8Row{
			Integrator:  dynamics.SchemeName(scheme),
			AvgStepMs:   stepMs / float64(cfg.Runs),
			SampleCount: samples,
		}
		for i := 0; i < kinematics.NumJoints; i++ {
			row.MposErrDeg[i] = deg(mposErr[i] / float64(samples))
		}
		row.JposErrDeg[0] = deg(jposErr[0] / float64(samples))
		row.JposErrDeg[1] = deg(jposErr[1] / float64(samples))
		row.JposErr3MM = jposErr[2] / float64(samples) * 1e3
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func deg(rad float64) float64 { return rad * 180 / math.Pi }

// Write renders the Figure 8 table.
func (r Fig8Result) Write(w io.Writer) {
	fmt.Fprintln(w, "FIGURE 8. Dynamic model validation (step size 1 ms)")
	fmt.Fprintf(w, "%-24s %12s %11s %11s %11s %11s %11s %12s\n",
		"Integration Method", "AvgTime/Step", "J1 mpos", "J1 jpos", "J2 mpos", "J2 jpos", "J3 mpos", "J3 jpos")
	fmt.Fprintf(w, "%-24s %12s %11s %11s %11s %11s %11s %12s\n",
		"", "(ms)", "(deg)", "(deg)", "(deg)", "(deg)", "(deg)", "(mm)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %12.5f %11.4f %11.4f %11.4f %11.4f %11.4f %12.4f\n",
			row.Integrator, row.AvgStepMs,
			row.MposErrDeg[0], row.JposErrDeg[0],
			row.MposErrDeg[1], row.JposErrDeg[1],
			row.MposErrDeg[2], row.JposErr3MM)
	}
	if len(r.Rows) == 2 && r.Rows[1].AvgStepMs > 0 {
		fmt.Fprintf(w, "(RK4/Euler runtime ratio: %.1fx; paper: 0.032/0.011 = 2.9x)\n",
			r.Rows[0].AvgStepMs/r.Rows[1].AvgStepMs)
	}
}
