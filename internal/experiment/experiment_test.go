package experiment

import (
	"strings"
	"testing"

	"ravenguard/internal/inject"
)

func TestTrialFaultFree(t *testing.T) {
	res, err := Trial{Seed: 11, Scenario: ScenarioNone}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Impact {
		t.Fatalf("fault-free trial reported impact (dev %.3f mm)", res.MaxDeviation*1e3)
	}
	if res.RavenDetected {
		t.Fatal("fault-free trial tripped RAVEN checks")
	}
	if res.Halted {
		t.Fatal("fault-free trial halted")
	}
}

func TestTrialLargeTorqueAttack(t *testing.T) {
	res, err := Trial{
		Seed:     12,
		Scenario: ScenarioB,
		B: inject.ScenarioBParams{
			Value: 20000, Channel: 0, StartDelayTicks: 800, ActivationTicks: 128,
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Impact {
		t.Fatalf("20000x128 attack produced no counterfactual impact (dev %.3f mm)", res.MaxDeviation*1e3)
	}
	if !res.DynDetected {
		t.Fatal("dynamic-model guard missed a 20000x128 attack")
	}
	if !res.DynPreemptive {
		t.Fatalf("detection not preemptive: alarm tick %d, impact tick %d", res.AlarmTick, res.ImpactTick)
	}
	if res.InjectedFrames == 0 {
		t.Fatal("attack never activated")
	}
}

func TestTrialSmallTorqueAttackHarmless(t *testing.T) {
	res, err := Trial{
		Seed:     13,
		Scenario: ScenarioB,
		B: inject.ScenarioBParams{
			Value: 1000, Channel: 0, StartDelayTicks: 800, ActivationTicks: 4,
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Impact {
		t.Fatalf("1000x4 attack reported impact (dev %.3f mm)", res.MaxDeviation*1e3)
	}
}

func TestTrialScenarioA(t *testing.T) {
	res, err := Trial{
		Seed:     14,
		Scenario: ScenarioA,
		A: inject.ScenarioAParams{
			Magnitude: 4e-4, StartAfterTicks: 800, ActivationTicks: 64,
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Impact {
		t.Fatalf("0.4 mm/cycle input attack produced no impact (dev %.3f mm)", res.MaxDeviation*1e3)
	}
	if !res.DynDetected {
		t.Fatal("dynamic-model guard missed the input attack")
	}
}

func TestTrialUnknownScenario(t *testing.T) {
	if _, err := (Trial{Seed: 1, Scenario: Scenario(99)}).Run(); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestScenarioStrings(t *testing.T) {
	for _, s := range []Scenario{ScenarioNone, ScenarioA, ScenarioB, Scenario(99)} {
		if s.String() == "" {
			t.Fatalf("Scenario(%d) has empty name", s)
		}
	}
}

func TestReferenceCacheReuse(t *testing.T) {
	ResetReferenceCache()
	tr := Trial{Seed: 15, Scenario: ScenarioNone}
	a, err := tr.reference()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.reference()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("reference not served from cache")
	}
}

func TestRunTable2Small(t *testing.T) {
	res, err := RunTable2(Table2Config{Calls: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Summary.N != 2000 {
		t.Fatalf("baseline N = %d", res.Baseline.Summary.N)
	}
	// Shape: logging (UDP egress per call) costs more than the bare write;
	// injection adds little.
	if res.Logging.Summary.Mean <= res.Baseline.Summary.Mean {
		t.Fatalf("logging mean %.2f us not above baseline %.2f us",
			res.Logging.Summary.Mean, res.Baseline.Summary.Mean)
	}
	if res.Injection.Summary.Mean >= res.Logging.Summary.Mean {
		t.Fatalf("injection mean %.2f us not below logging %.2f us",
			res.Injection.Summary.Mean, res.Logging.Summary.Mean)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "TABLE II") {
		t.Fatal("report missing header")
	}
}

func TestRunFig5(t *testing.T) {
	res, err := RunFig5(21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Byte0Raw < 4 || res.Byte0Raw > 8 {
		t.Fatalf("Byte 0 raw distinct = %d, want 4..8", res.Byte0Raw)
	}
	if res.Byte0Masked != 4 {
		t.Fatalf("Byte 0 masked distinct = %d, want the 4 operational states", res.Byte0Masked)
	}
	if res.Watchdog != 0x10 {
		t.Fatalf("watchdog mask = %#02x", res.Watchdog)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "STATE BYTE") {
		t.Fatal("report does not flag the state byte")
	}
}

func TestRunFig6(t *testing.T) {
	res, err := RunFig6(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 9 {
		t.Fatalf("runs = %d, want 9", len(res.Runs))
	}
	if res.Inference.PedalDownByte != 0x0F {
		t.Fatalf("inferred Pedal Down byte = %#02x", res.Inference.PedalDownByte)
	}
	matches := 0
	for _, run := range res.Runs {
		if run.TruthMatches {
			matches++
		}
	}
	if matches < 8 {
		t.Fatalf("only %d/9 inferred timelines match ground truth", matches)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "Pedal Down value = 0x0f") {
		t.Fatalf("report: %s", sb.String())
	}
}

func TestRunFig8Small(t *testing.T) {
	res, err := RunFig8(Fig8Config{Runs: 2, TeleopSeconds: 3, BaseSeed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rk4, euler := res.Rows[0], res.Rows[1]
	if rk4.Integrator == euler.Integrator {
		t.Fatal("both rows same integrator")
	}
	// RK4 costs more per step than Euler (paper: 0.032 vs 0.011 ms) — but
	// wall-clock ratios are noisy on a loaded machine, so only log an
	// inversion; the dedicated benchmarks carry the timing claim.
	if rk4.AvgStepMs <= euler.AvgStepMs {
		t.Logf("note: RK4 %.5f ms/step measured below Euler %.5f (machine load?)", rk4.AvgStepMs, euler.AvgStepMs)
	}
	if rk4.AvgStepMs <= 0 || euler.AvgStepMs <= 0 {
		t.Fatal("non-positive step time measured")
	}
	// Both track within a degree at a 1 ms step.
	for _, row := range res.Rows {
		for i, e := range row.MposErrDeg {
			if e > 5 {
				t.Fatalf("%s: motor %d error %.2f deg", row.Integrator, i, e)
			}
		}
		if row.JposErr3MM > 5 {
			t.Fatalf("%s: insertion error %.2f mm", row.Integrator, row.JposErr3MM)
		}
	}
}

func TestRunTable4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	res, err := RunTable4(Table4Config{RunsA: 30, RunsB: 30, BaseSeed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if res.A.Dyn.Confusion.Total() != 30 || res.B.Dyn.Confusion.Total() != 30 {
		t.Fatalf("campaign sizes wrong: %d/%d", res.A.Dyn.Confusion.Total(), res.B.Dyn.Confusion.Total())
	}
	// Directional check (the paper's headline): the dynamic model catches
	// at least as many impactful attacks as RAVEN's built-in checks.
	if res.B.Dyn.Confusion.TPR() < res.B.Raven.Confusion.TPR() {
		t.Fatalf("dyn TPR %.1f below RAVEN %.1f in scenario B",
			res.B.Dyn.Confusion.TPR(), res.B.Raven.Confusion.TPR())
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "TABLE IV") {
		t.Fatal("report missing header")
	}
}

func TestRunFig9Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	res, err := RunFig9(Fig9Config{
		Values:    []int16{4000, 20000},
		Durations: []int{4, 128},
		Reps:      4,
		BaseSeed:  61,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Monotone shape: the big/long cell must have at least the impact and
	// detection probability of the small/short cell.
	small, big := res.Cells[0], res.Cells[3]
	if big.PImpact.Value() < small.PImpact.Value() {
		t.Fatalf("impact probability not increasing: %.2f -> %.2f", small.PImpact.Value(), big.PImpact.Value())
	}
	if big.PDyn.Value() < small.PDyn.Value() {
		t.Fatalf("detection probability not increasing: %.2f -> %.2f", small.PDyn.Value(), big.PDyn.Value())
	}
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("variant matrix is slow")
	}
	res, err := RunTable1(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 variants", len(res.Rows))
	}
	want := map[inject.Variant]string{
		inject.VariantMathDrift:  "IK-fail",
		inject.VariantPortChange: "console lost",
	}
	for _, row := range res.Rows {
		if row.Impact == "No observable impact" {
			t.Errorf("variant %q had no observable impact", row.Variant)
		}
		if frag, ok := want[row.Variant]; ok && !strings.Contains(row.Impact, frag) {
			t.Errorf("variant %q impact = %q, want fragment %q", row.Variant, row.Impact, frag)
		}
	}
}

func TestMitigationComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison is slow")
	}
	res, err := RunMitigationComparison(MitigationConfig{Attacks: 12, Value: 16000, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	noGuard, estop, hold := res.Arms[0], res.Arms[1], res.Arms[2]
	// Both mitigations must cut the jump rate versus the unprotected robot.
	if estop.JumpRate >= noGuard.JumpRate {
		t.Fatalf("E-STOP mitigation did not reduce jumps: %.2f vs %.2f", estop.JumpRate, noGuard.JumpRate)
	}
	if hold.JumpRate >= noGuard.JumpRate {
		t.Fatalf("hold-safe mitigation did not reduce jumps: %.2f vs %.2f", hold.JumpRate, noGuard.JumpRate)
	}
	// Hold-safe's selling point: availability.
	if hold.CompletionRate <= estop.CompletionRate {
		t.Fatalf("hold-safe completion %.2f not above E-STOP %.2f", hold.CompletionRate, estop.CompletionRate)
	}
}

func TestAblationPlacementShowsTOCTOU(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := RunAblationPlacement(AblationConfig{Runs: 40, BaseSeed: 71})
	if err != nil {
		t.Fatal(err)
	}
	below, above := res.Arms[0].Confusion, res.Arms[1].Confusion
	// The guard above the malware checks pre-attack frames: it must miss
	// attacks the hardware-boundary guard catches.
	if above.TPR() >= below.TPR() {
		t.Fatalf("placement ablation shows no TOCTOU effect: above TPR %.1f vs below %.1f",
			above.TPR(), below.TPR())
	}
}

func TestRunPersistenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("persistence campaign is slow")
	}
	res, err := RunPersistence(PersistenceConfig{Attempts: 6, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	noGuard, estop, hold := res.Arms[0], res.Arms[1], res.Arms[2]
	// The paper's observation: persistent malware makes the robot nearly
	// unavailable without (and even with) halting mitigations; hold-safe
	// restores availability.
	if hold.Availability() <= noGuard.Availability() {
		t.Fatalf("hold-safe availability %.2f not above no-guard %.2f",
			hold.Availability(), noGuard.Availability())
	}
	if hold.Availability() <= estop.Availability() {
		t.Fatalf("hold-safe availability %.2f not above E-STOP %.2f",
			hold.Availability(), estop.Availability())
	}
}

func TestAblationResyncBothUsable(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := RunAblationResync(AblationConfig{Runs: 30, BaseSeed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if arm.Confusion.TPR() < 50 {
			t.Errorf("%s: TPR %.1f below 50 — resync scheme unusable", arm.Name, arm.Confusion.TPR())
		}
	}
}
