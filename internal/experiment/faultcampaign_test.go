package experiment

import (
	"reflect"
	"strings"
	"testing"

	"ravenguard/internal/fault"
)

func TestFaultCampaignDeterministicAndCrashFree(t *testing.T) {
	// A small campaign run twice from the same seed must produce the
	// identical matrix, with zero crash outcomes and every scheduled fault
	// kind actually firing.
	cfg := FaultCampaignConfig{
		BaseSeed: 11,
		Seeds:    1,
		Teleop:   4,
		Kinds: []fault.Kind{
			fault.KindPacketLoss,
			fault.KindEncoderDropout,
			fault.KindBoardStall,
		},
	}
	first, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunFaultCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("campaign not reproducible:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if got := len(first.Cells); got != len(cfg.Kinds)*len(AllPolicies()) {
		t.Fatalf("%d cells, want %d", got, len(cfg.Kinds)*len(AllPolicies()))
	}
	if n := first.Crashes(); n != 0 {
		t.Fatalf("%d crash outcomes in the matrix", n)
	}
	if !first.KindsExercised() {
		t.Fatal("a scheduled fault kind never fired")
	}
	// The board stall must end every one of its runs in E-STOP (the
	// watchdog latch), under every guard policy.
	for _, c := range first.Cells {
		if c.Kind == fault.KindBoardStall && c.EStops != c.Seeds {
			t.Fatalf("board-stall cell %v ended %d/%d runs in E-STOP", c.Policy, c.EStops, c.Seeds)
		}
	}
}

func TestFaultOutcomeClassification(t *testing.T) {
	cases := []struct {
		rec   faultRun
		truth bool
		want  FaultOutcome
	}{
		{faultRun{crashed: true, alarm: true, halted: true}, true, OutcomeCrash},
		{faultRun{alarm: true}, false, OutcomeFalseAlarm},
		{faultRun{alarm: true, halted: true}, false, OutcomeFalseAlarm},
		{faultRun{halted: true}, false, OutcomeEStop},
		{faultRun{alarm: true, halted: true}, true, OutcomeEStop},
		{faultRun{impact: true}, true, OutcomeMissedImpact},
		{faultRun{}, false, OutcomeRodeThrough},
		{faultRun{alarm: true, impact: true}, true, OutcomeRodeThrough}, // monitor-mode TP
	}
	for i, c := range cases {
		if got := classifyFaultOutcome(c.rec, c.truth); got != c.want {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestFaultCellOutcomesRendering(t *testing.T) {
	c := FaultCell{EStops: 2, RodeThrough: 1}
	if got := c.Outcomes(); !strings.Contains(got, "2×e-stop") || !strings.Contains(got, "1×rode-through") {
		t.Fatalf("Outcomes() = %q", got)
	}
	if got := (FaultCell{}).Outcomes(); got != "-" {
		t.Fatalf("empty Outcomes() = %q", got)
	}
}
