package experiment

import (
	"fmt"
	"io"

	"ravenguard/internal/console"
	"ravenguard/internal/core"
	"ravenguard/internal/kinematics"
	"ravenguard/internal/sim"
	"ravenguard/internal/trajectory"
	"ravenguard/internal/viz"
)

// Fig8Trace holds the model-vs-robot trajectories of Figure 8's plots:
// per-joint position traces of the dynamic model running in parallel with
// the (simulated) robot on the same control inputs.
type Fig8Trace struct {
	T     []float64
	Model [kinematics.NumJoints][]float64
	Robot [kinematics.NumJoints][]float64
}

// RunFig8Trace records one session's model and robot joint trajectories
// (decimated to every 10th cycle to keep plots light).
func RunFig8Trace(seed int64, integrator string) (Fig8Trace, error) {
	guard, err := core.NewGuard(core.Config{Integrator: integrator})
	if err != nil {
		return Fig8Trace{}, err
	}
	rig, err := sim.New(sim.Config{
		Seed:   seed,
		Script: console.StandardScript(8),
		Traj:   trajectory.Standard()[1],
		Guards: []sim.Hook{guard},
	})
	if err != nil {
		return Fig8Trace{}, err
	}
	var tr Fig8Trace
	step := 0
	rig.Observe(func(si sim.StepInfo) {
		step++
		if step%10 != 0 {
			return
		}
		_, jp := guard.ModelState()
		tr.T = append(tr.T, si.T)
		for i := 0; i < kinematics.NumJoints; i++ {
			tr.Model[i] = append(tr.Model[i], jp[i])
			tr.Robot[i] = append(tr.Robot[i], si.JposTrue[i])
		}
	})
	if _, err := rig.Run(0); err != nil {
		return Fig8Trace{}, err
	}
	if len(tr.T) == 0 {
		return Fig8Trace{}, fmt.Errorf("experiment: fig8 trace collected no samples")
	}
	return tr, nil
}

// WriteSVG renders one joint's model-vs-robot trace.
func (tr Fig8Trace) WriteSVG(w io.Writer, joint int) error {
	if joint < 0 || joint >= kinematics.NumJoints {
		return fmt.Errorf("experiment: joint %d out of range", joint)
	}
	unit := "rad"
	scale := 1.0
	if joint == kinematics.Insert {
		unit = "mm"
		scale = 1e3
	}
	model := viz.TimelineSeries{Name: "dynamic model", T: tr.T}
	robot := viz.TimelineSeries{Name: "robot", T: tr.T}
	for i := range tr.T {
		model.Values = append(model.Values, tr.Model[joint][i]*scale)
		robot.Values = append(robot.Values, tr.Robot[joint][i]*scale)
	}
	return viz.WriteTimelineSVG(w, viz.PathPlotConfig{
		Title: fmt.Sprintf("Figure 8: joint %d trajectory, model vs robot (%s)", joint+1, unit),
	}, nil, robot, model)
}
