package experiment

import (
	"strings"
	"testing"

	"ravenguard/internal/metrics"
)

func TestWriteFig9CSV(t *testing.T) {
	res := Fig9Result{Reps: 2}
	cell := Fig9Cell{Value: 8000, Duration: 64}
	cell.PImpact.Observe(true)
	cell.PImpact.Observe(false)
	cell.PDyn.Observe(true)
	cell.PDyn.Observe(true)
	cell.PRaven.Observe(false)
	cell.PRaven.Observe(false)
	res.Cells = append(res.Cells, cell)

	var sb strings.Builder
	if err := WriteFig9CSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "8000,64,0.5000,1.0000,0.0000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteTable4CSV(t *testing.T) {
	res := Table4Result{
		A: Table4Scenario{
			Name: "A",
			Dyn:  Table4Cell{Technique: "Dynamic Model", Confusion: metrics.Confusion{TP: 9, FN: 1, TN: 8, FP: 2}},
			Raven: Table4Cell{Technique: "RAVEN",
				Confusion: metrics.Confusion{TP: 5, FN: 5, TN: 10, FP: 0}},
		},
		B: Table4Scenario{Name: "B"},
	}
	var sb strings.Builder
	if err := WriteTable4CSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Dynamic Model,85.00,90.00,20.00") {
		t.Fatalf("csv = %q", out)
	}
	if strings.Count(out, "\n") != 5 { // header + 4 rows
		t.Fatalf("rows = %d", strings.Count(out, "\n"))
	}
}

func TestWriteFig8CSV(t *testing.T) {
	res := Fig8Result{Rows: []Fig8Row{
		{Integrator: "Euler", AvgStepMs: 0.0002, MposErrDeg: [3]float64{0.5, 0.3, 0.2},
			JposErrDeg: [2]float64{0.05, 0.03}, JposErr3MM: 0.05},
	}}
	var sb strings.Builder
	if err := WriteFig8CSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Euler,0.000200") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestFig8TraceSVG(t *testing.T) {
	tr, err := RunFig8Trace(881, "euler")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.T) < 100 {
		t.Fatalf("trace has %d samples", len(tr.T))
	}
	var sb strings.Builder
	if err := tr.WriteSVG(&sb, 2); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"<svg", "dynamic model", "robot", "(mm)"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	if err := tr.WriteSVG(&sb, 99); err == nil {
		t.Fatal("out-of-range joint accepted")
	}
}

func TestWriteLatencyCSV(t *testing.T) {
	res := LatencyResult{Rows: []LatencyRow{{Value: 16000, Detected: 18, Runs: 20}}}
	var sb strings.Builder
	if err := WriteLatencyCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "16000,18,20") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestWriteMitigationCSV(t *testing.T) {
	res := MitigationResult{
		Config: MitigationConfig{Value: 16000, Duration: 128},
		Arms:   []MitigationArm{{Name: "guard: hold-last-safe", JumpRate: 0.33, CompletionRate: 0.83}},
	}
	var sb strings.Builder
	if err := WriteMitigationCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "guard: hold-last-safe,16000,128,0.330,0.830") {
		t.Fatalf("csv = %q", sb.String())
	}
}
