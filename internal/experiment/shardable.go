package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// CampaignShard is a campaign in shardable form: a deterministic job-index
// space, a range runner producing a JSON partial aggregate, an
// adjacent-range merge, and a renderer for the full-coverage result. The
// contract (see internal/shard): the merged partial of any contiguous
// partition of [0, Jobs), in any adjacency-respecting order, is
// byte-identical to RunRange(0, Jobs) — counters and maxima merge exactly,
// mean/std streams reduce through the index-aligned stats.Forest, and the
// JSON wire form round-trips float64 values losslessly.
type CampaignShard struct {
	// Name identifies the campaign in streamed frames; workers and
	// coordinators must agree on it.
	Name string
	// Jobs is the size of the job-index space.
	Jobs int
	// TrialsPerJob is how many simulated sessions one job costs —
	// the throughput denominator coordinators report.
	TrialsPerJob int
	// RunRange runs jobs [lo, hi) and returns their partial aggregate.
	RunRange func(lo, hi int) (json.RawMessage, error)
	// Merge combines the partials of two adjacent ranges (a immediately
	// left of b).
	Merge func(a, b json.RawMessage) (json.RawMessage, error)
	// Render finalizes a full-coverage partial and writes the report.
	Render func(w io.Writer, full json.RawMessage) error
}

// shardify adapts a typed campaign (range runner, adjacent merge,
// renderer) to the JSON-framed CampaignShard form.
func shardify[P any](name string, jobs, trialsPerJob int,
	run func(lo, hi int) (P, error),
	merge func(a, b P) (P, error),
	render func(w io.Writer, p P) error,
) CampaignShard {
	decode := func(raw json.RawMessage) (P, error) {
		var p P
		if err := json.Unmarshal(raw, &p); err != nil {
			return p, fmt.Errorf("experiment: %s partial: %w", name, err)
		}
		return p, nil
	}
	encode := func(p P) (json.RawMessage, error) {
		data, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s partial: %w", name, err)
		}
		return data, nil
	}
	return CampaignShard{
		Name:         name,
		Jobs:         jobs,
		TrialsPerJob: trialsPerJob,
		RunRange: func(lo, hi int) (json.RawMessage, error) {
			p, err := run(lo, hi)
			if err != nil {
				return nil, err
			}
			return encode(p)
		},
		Merge: func(a, b json.RawMessage) (json.RawMessage, error) {
			pa, err := decode(a)
			if err != nil {
				return nil, err
			}
			pb, err := decode(b)
			if err != nil {
				return nil, err
			}
			m, err := merge(pa, pb)
			if err != nil {
				return nil, err
			}
			return encode(m)
		},
		Render: func(w io.Writer, full json.RawMessage) error {
			p, err := decode(full)
			if err != nil {
				return err
			}
			return render(w, p)
		},
	}
}

// FaultCampaignShard is the fault campaign in shardable form (job = seed
// index; each job runs every policy × kind session of one seed).
func FaultCampaignShard(c FaultCampaignConfig) CampaignShard {
	c.applyDefaults()
	return shardify("faultcampaign", c.Seeds, len(AllPolicies())*len(c.Kinds),
		func(lo, hi int) (FaultCampaignResult, error) { return RunFaultCampaignRange(c, lo, hi) },
		mergeFaultCampaignResults,
		func(w io.Writer, p FaultCampaignResult) error { p.Write(w); return nil },
	)
}

// Table1Shard is Table I in shardable form (job = attack variant).
func Table1Shard(baseSeed int64) CampaignShard {
	return shardify("table1", Table1Jobs(), 2,
		func(lo, hi int) (Table1Result, error) { return RunTable1Range(baseSeed, lo, hi) },
		mergeTable1Results,
		func(w io.Writer, p Table1Result) error { p.Write(w); return nil },
	)
}

// Table4Shard is Table IV in shardable form (job = trial index; scenario A
// at [0, RunsA), scenario B at [RunsA, RunsA+RunsB)).
func Table4Shard(cfg Table4Config) CampaignShard {
	cfg.applyDefaults()
	return shardify("table4", Table4Jobs(cfg), 1,
		func(lo, hi int) (Table4Partial, error) { return RunTable4Range(cfg, lo, hi) },
		mergeTable4Partials,
		func(w io.Writer, p Table4Partial) error { FinalizeTable4(p).Write(w); return nil },
	)
}

// Fig9Shard is Figure 9 in shardable form (job = cell repetition,
// cell-major).
func Fig9Shard(cfg Fig9Config) CampaignShard {
	cfg.applyDefaults()
	return shardify("fig9", Fig9Jobs(cfg), 1,
		func(lo, hi int) (Fig9Partial, error) { return RunFig9Range(cfg, lo, hi) },
		mergeFig9Partials,
		func(w io.Writer, p Fig9Partial) error {
			Fig9Result{Cells: p.Cells, Reps: cfg.Reps}.Write(w)
			return nil
		},
	)
}

// MitigationShard is the mitigation sweep in shardable form (job = attack
// index; each job runs every arm × value session of one attack).
func MitigationShard(values []int16, cfg MitigationConfig) CampaignShard {
	cfg.applyDefaults()
	if len(values) == 0 {
		values = []int16{cfg.Value}
	}
	return shardify("mitigation", MitigationSweepJobs(cfg), len(mitigationArms)*len(values),
		func(lo, hi int) (MitigationPartial, error) { return RunMitigationSweepRange(values, cfg, lo, hi) },
		mergeMitigationPartials,
		func(w io.Writer, p MitigationPartial) error {
			results, err := FinalizeMitigationSweep(cfg, p)
			if err != nil {
				return err
			}
			for _, res := range results {
				res.Write(w)
				fmt.Fprintln(w)
			}
			return nil
		},
	)
}
