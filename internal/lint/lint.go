// Package lint is ravenlint's engine: a stdlib-only static-analysis
// framework (go/parser + go/types, driven off `go list -json -export`)
// with six repo-specific checks that turn this repository's runtime
// invariants into build breaks:
//
//   - determinism: the deterministic-replay packages must not read wall
//     clocks, draw from the shared package-level math/rand stream, or
//     leak map iteration order into outputs or snapshots;
//   - snapshot: every capture/restore pair must cover every mutable
//     field of its type, so a field added without a checkpoint entry is
//     caught before forks silently diverge;
//   - noalloc: functions annotated `//ravenlint:noalloc` must contain no
//     allocating constructs — the static complement to the
//     testing.AllocsPerRun guards;
//   - heldframe: flow-aware enforcement of the interpose.Hold protocol —
//     every parked prediction is absorbed and resumed on all non-error
//     paths, no write-while-held, no double hold, and every deferral
//     opt-in implements the full PredictInto/AbsorbPrediction seam;
//   - mergepurity: every reducer reachable from shard.Merger /
//     stats.Forest / metrics Merge methods is order-insensitive;
//   - noalloc-escape: evidence for the noalloc annotations — drives
//     `go build -gcflags=-m` per annotated package and fails when the
//     compiler reports a heap escape inside an annotated function.
//
// Escape hatches are explicit and carry a reason:
//
//	//ravenlint:allow <check> <reason>            (same line or line above)
//	//ravenlint:snapshot-ignore <reason>          (on a struct field)
//	//ravenlint:noalloc                           (opt a function in)
//
// The framework deliberately avoids golang.org/x/tools: go.mod stays
// dependency-free, and the checks need only syntax trees, type
// information, positions, and (for noalloc-escape) the compiler's own
// diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Check names.
const (
	CheckDeterminism   = "determinism"
	CheckSnapshot      = "snapshot"
	CheckNoalloc       = "noalloc"
	CheckHeldFrame     = "heldframe"
	CheckMergePurity   = "mergepurity"
	CheckNoallocEscape = "noalloc-escape"
	// CheckAnnotation reports malformed ravenlint annotations (for
	// example an allow with no reason). It cannot be suppressed.
	CheckAnnotation = "annotation"
)

// Severity levels. Every finding fails the build (exit 1); severity
// distinguishes invariant violations from annotation hygiene so CI
// summaries and dashboards can group them.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one finding, positioned at the offending construct. The
// field order here is the documented, stable `-json` schema; the CLI
// emits findings sorted by (file, line, col, message) so CI diffs are
// deterministic.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	allows    []allowAnnot
	annotDiag []Diagnostic
}

// diag builds a Diagnostic at pos. Invariant violations are errors;
// annotation hygiene findings are warnings (they still fail the run).
func (p *Package) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	severity := SeverityError
	if check == CheckAnnotation {
		severity = SeverityWarning
	}
	return Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Check:    check,
		Severity: severity,
		Message:  fmt.Sprintf(format, args...),
	}
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// suppressed reports whether an allow annotation covers the diagnostic:
// an `//ravenlint:allow <check> <reason>` on the same line, on the line
// directly above, or in the doc comment of the enclosing function.
func (p *Package) suppressed(d Diagnostic, pos token.Pos) bool {
	if d.Check == CheckAnnotation {
		return false
	}
	for _, a := range p.allows {
		if a.check != d.Check || a.file != d.File {
			continue
		}
		if a.line == d.Line || a.line == d.Line-1 {
			return true
		}
	}
	// Function-doc-level allows cover the whole body.
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || !(fd.Pos() <= pos && pos <= fd.End()) {
			continue
		}
		for _, c := range fd.Doc.List {
			if ann, ok := parseAnnotation(c.Text); ok && ann.kind == annotAllow && ann.check == d.Check {
				return true
			}
		}
	}
	return false
}

// Run applies the analyzers to the packages, filters allow-suppressed
// findings, appends malformed-annotation diagnostics, and returns the
// remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, p.annotDiag...)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				pos := findPos(p, d)
				if !p.suppressed(d, pos) {
					out = append(out, d)
				}
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by position (then message) so output —
// textual or -json — is deterministic for CI diffs.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		return ds[i].Message < ds[j].Message
	})
}

// findPos recovers a token.Pos for a diagnostic from its file:line:col,
// for enclosing-function suppression lookups.
func findPos(p *Package, d Diagnostic) token.Pos {
	var pos token.Pos
	p.Fset.Iterate(func(f *token.File) bool {
		if f.Name() != d.File {
			return true
		}
		if d.Line >= 1 && d.Line <= f.LineCount() {
			pos = f.LineStart(d.Line)
		}
		return false
	})
	return pos
}

// AllChecks lists every check name in canonical order.
var AllChecks = []string{
	CheckDeterminism, CheckSnapshot, CheckNoalloc,
	CheckHeldFrame, CheckMergePurity, CheckNoallocEscape,
}

// Selection is the outcome of parsing a -checks list: the AST analyzers
// to run, plus whether the build-driven noalloc-escape check was
// selected — that one drives the compiler per annotated package (see
// EscapeCheck) instead of walking a type-checked Package.
type Selection struct {
	Analyzers []*Analyzer
	Escape    bool
}

// Select parses the comma-separated checks list (empty or "all" selects
// every check). scoped applies the repository package scopes — the
// determinism analyzer over the deterministic-replay packages, heldframe
// over the hold-protocol packages, mergepurity over the reducer
// packages. Unscoped runs them over every loaded package, which is what
// the fixture tests want.
func Select(checks string, scoped bool) (Selection, error) {
	var detMatch, hfMatch, mpMatch func(string) bool
	if scoped {
		detMatch, hfMatch, mpMatch = MatchDeterministic, MatchHeldFrame, MatchReducer
	}
	all := map[string]*Analyzer{
		CheckDeterminism: DeterminismAnalyzer(detMatch),
		CheckSnapshot:    SnapshotAnalyzer(),
		CheckNoalloc:     NoallocAnalyzer(),
		CheckHeldFrame:   HeldFrameAnalyzer(hfMatch),
		CheckMergePurity: MergePurityAnalyzer(mpMatch),
	}
	names := AllChecks
	if checks != "" && checks != "all" {
		names = strings.Split(checks, ",")
	}
	var sel Selection
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == CheckNoallocEscape {
			sel.Escape = true
			continue
		}
		a, ok := all[name]
		if !ok {
			return Selection{}, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(AllChecks, ", "))
		}
		sel.Analyzers = append(sel.Analyzers, a)
	}
	return sel, nil
}

// Analyzers returns the AST analyzer set selected by the checks list.
// match, when non-nil, scopes the package-scoped analyzers (determinism,
// heldframe, mergepurity) to the import paths it accepts; nil runs them
// everywhere. Kept for test harnesses that drive one analyzer over one
// fixture; the CLI uses Select.
func Analyzers(checks string, match func(importPath string) bool) ([]*Analyzer, error) {
	sel, err := Select(checks, false)
	if err != nil {
		return nil, err
	}
	if match != nil {
		for _, a := range sel.Analyzers {
			a := a
			switch a.Name {
			case CheckDeterminism, CheckHeldFrame, CheckMergePurity:
				inner := a.Run
				a.Run = func(p *Package) []Diagnostic {
					if !match(p.ImportPath) {
						return nil
					}
					return inner(p)
				}
			}
		}
	}
	return sel.Analyzers, nil
}
