// Package lint is ravenlint's engine: a stdlib-only static-analysis
// framework (go/parser + go/types, driven off `go list -json -export`)
// with three repo-specific analyzers that turn this repository's runtime
// invariants into build breaks:
//
//   - determinism: the deterministic-replay packages must not read wall
//     clocks, draw from the shared package-level math/rand stream, or
//     leak map iteration order into outputs or snapshots;
//   - snapshot: every capture/restore pair must cover every mutable
//     field of its type, so a field added without a checkpoint entry is
//     caught before forks silently diverge;
//   - noalloc: functions annotated `//ravenlint:noalloc` must contain no
//     allocating constructs — the static complement to the
//     testing.AllocsPerRun guards.
//
// Escape hatches are explicit and carry a reason:
//
//	//ravenlint:allow <check> <reason>            (same line or line above)
//	//ravenlint:snapshot-ignore <reason>          (on a struct field)
//	//ravenlint:noalloc                           (opt a function in)
//
// The framework deliberately avoids golang.org/x/tools: go.mod stays
// dependency-free, and the three analyzers need only syntax trees, type
// information, and positions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Check names.
const (
	CheckDeterminism = "determinism"
	CheckSnapshot    = "snapshot"
	CheckNoalloc     = "noalloc"
	// CheckAnnotation reports malformed ravenlint annotations (for
	// example an allow with no reason). It cannot be suppressed.
	CheckAnnotation = "annotation"
)

// Diagnostic is one finding, positioned at the offending construct.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	allows    []allowAnnot
	annotDiag []Diagnostic
}

// diag builds a Diagnostic at pos.
func (p *Package) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// suppressed reports whether an allow annotation covers the diagnostic:
// an `//ravenlint:allow <check> <reason>` on the same line, on the line
// directly above, or in the doc comment of the enclosing function.
func (p *Package) suppressed(d Diagnostic, pos token.Pos) bool {
	if d.Check == CheckAnnotation {
		return false
	}
	for _, a := range p.allows {
		if a.check != d.Check || a.file != d.File {
			continue
		}
		if a.line == d.Line || a.line == d.Line-1 {
			return true
		}
	}
	// Function-doc-level allows cover the whole body.
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || !(fd.Pos() <= pos && pos <= fd.End()) {
			continue
		}
		for _, c := range fd.Doc.List {
			if ann, ok := parseAnnotation(c.Text); ok && ann.kind == annotAllow && ann.check == d.Check {
				return true
			}
		}
	}
	return false
}

// Run applies the analyzers to the packages, filters allow-suppressed
// findings, appends malformed-annotation diagnostics, and returns the
// remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		out = append(out, p.annotDiag...)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				pos := findPos(p, d)
				if !p.suppressed(d, pos) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// findPos recovers a token.Pos for a diagnostic from its file:line:col,
// for enclosing-function suppression lookups.
func findPos(p *Package, d Diagnostic) token.Pos {
	var pos token.Pos
	p.Fset.Iterate(func(f *token.File) bool {
		if f.Name() != d.File {
			return true
		}
		if d.Line >= 1 && d.Line <= f.LineCount() {
			pos = f.LineStart(d.Line)
		}
		return false
	})
	return pos
}

// Analyzers returns the analyzer set selected by the comma-separated
// checks list (empty or "all" selects every check). match scopes the
// determinism analyzer to the deterministic-replay packages; nil means
// every package.
func Analyzers(checks string, match func(importPath string) bool) ([]*Analyzer, error) {
	all := map[string]*Analyzer{
		CheckDeterminism: DeterminismAnalyzer(match),
		CheckSnapshot:    SnapshotAnalyzer(),
		CheckNoalloc:     NoallocAnalyzer(),
	}
	if checks == "" || checks == "all" {
		return []*Analyzer{all[CheckDeterminism], all[CheckSnapshot], all[CheckNoalloc]}, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := all[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have determinism, snapshot, noalloc)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
