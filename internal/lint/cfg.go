package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is a minimal intra-function control-flow graph, built for the
// flow-aware analyzers (heldframe today). It deliberately models only what
// those analyzers need:
//
//   - one node per executed statement "head" (an if's init+cond, a for's
//     init+cond, a range's operand, a case clause's exprs), so every
//     expression is owned by exactly one node;
//   - normal exit vs error exit: a return whose results include a non-nil
//     error value, and a panic call, leave via errExit. Protocol checks
//     exempt error paths — an aborted tick tears the whole session down,
//     so "the held frame was never resumed" is not a protocol violation
//     there;
//   - nested function literals are NOT traversed: a closure's body runs at
//     some other time (or never), so its statements are not on this
//     function's paths. Analyzers walk literals as separate functions.
//
// goto is not modelled (the repository has none); a goto conservatively
// routes to the error exit so all-paths checks cannot claim a path that
// does not exist.
type cfgNode struct {
	// owned are the AST regions whose expressions execute at this node,
	// in execution order.
	owned []ast.Node
	succs []*cfgNode

	exit    bool // the function's single normal exit
	errExit bool // the function's single error/panic exit
}

type cfg struct {
	entry   *cfgNode
	exit    *cfgNode
	errExit *cfgNode
	nodes   []*cfgNode
}

type loopCtx struct {
	label        string
	breakTarget  *cfgNode
	continueTarg *cfgNode // nil for switch/select contexts
}

type cfgBuilder struct {
	p     *Package
	g     *cfg
	loops []loopCtx
}

// buildCFG constructs the graph for one function body.
func buildCFG(p *Package, body *ast.BlockStmt) *cfg {
	g := &cfg{}
	g.exit = &cfgNode{exit: true}
	g.errExit = &cfgNode{errExit: true}
	g.entry = &cfgNode{}
	g.nodes = append(g.nodes, g.entry, g.exit, g.errExit)
	b := &cfgBuilder{p: p, g: g}
	frontier := b.stmts(body.List, g.entry)
	if frontier != nil {
		frontier.succs = append(frontier.succs, g.exit)
	}
	return g
}

func (b *cfgBuilder) newNode(owned ...ast.Node) *cfgNode {
	n := &cfgNode{}
	for _, o := range owned {
		if o != nil {
			n.owned = append(n.owned, o)
		}
	}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// stmts threads a statement list from pred, returning the live frontier
// (nil when control cannot fall off the end).
func (b *cfgBuilder) stmts(list []ast.Stmt, pred *cfgNode) *cfgNode {
	cur := pred
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/branch: still build nodes so
			// analyzers can see the statements, but leave them unwired
			// from the live path.
			cur = b.newNode()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt wires one statement after pred and returns the fall-through
// frontier (nil if control never falls through).
func (b *cfgBuilder) stmt(s ast.Stmt, pred *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, pred)

	case *ast.LabeledStmt:
		return b.labeled(s, pred)

	case *ast.IfStmt:
		head := b.newNode(s.Init, s.Cond)
		pred.succs = append(pred.succs, head)
		join := b.newNode()
		if thenEnd := b.stmts(s.Body.List, head); thenEnd != nil {
			thenEnd.succs = append(thenEnd.succs, join)
		}
		if s.Else != nil {
			if elseEnd := b.stmt(s.Else, head); elseEnd != nil {
				elseEnd.succs = append(elseEnd.succs, join)
			}
		} else {
			head.succs = append(head.succs, join)
		}
		return join

	case *ast.ForStmt:
		return b.forLoop(s, pred, "")

	case *ast.RangeStmt:
		return b.rangeLoop(s, pred, "")

	case *ast.SwitchStmt:
		return b.switchLike(pred, "", []ast.Node{s.Init, s.Tag}, s.Body)

	case *ast.TypeSwitchStmt:
		return b.switchLike(pred, "", []ast.Node{s.Init, s.Assign}, s.Body)

	case *ast.SelectStmt:
		return b.selectStmt(s, pred, "")

	case *ast.ReturnStmt:
		n := b.newNode(s)
		pred.succs = append(pred.succs, n)
		if returnsNonNilError(b.p, s) {
			n.succs = append(n.succs, b.g.errExit)
		} else {
			n.succs = append(n.succs, b.g.exit)
		}
		return nil

	case *ast.BranchStmt:
		n := b.newNode()
		pred.succs = append(pred.succs, n)
		switch s.Tok {
		case token.BREAK:
			if t := b.findLoop(s.Label, false); t != nil {
				n.succs = append(n.succs, t.breakTarget)
			} else {
				n.succs = append(n.succs, b.g.errExit)
			}
		case token.CONTINUE:
			if t := b.findLoop(s.Label, true); t != nil {
				n.succs = append(n.succs, t.continueTarg)
			} else {
				n.succs = append(n.succs, b.g.errExit)
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchLike; a stray fallthrough
			// (invalid Go) falls to the error exit.
			return n
		default: // goto: unmodelled, conservatively an abnormal exit
			n.succs = append(n.succs, b.g.errExit)
		}
		return nil

	case *ast.ExprStmt:
		n := b.newNode(s)
		pred.succs = append(pred.succs, n)
		if isPanicCall(b.p, s.X) {
			n.succs = append(n.succs, b.g.errExit)
			return nil
		}
		return n

	default:
		// Assignments, declarations, defers, go statements, sends,
		// inc/dec, empty statements: straight-line nodes.
		n := b.newNode(s)
		pred.succs = append(pred.succs, n)
		return n
	}
}

func (b *cfgBuilder) labeled(s *ast.LabeledStmt, pred *cfgNode) *cfgNode {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		return b.forLoop(inner, pred, s.Label.Name)
	case *ast.RangeStmt:
		return b.rangeLoop(inner, pred, s.Label.Name)
	case *ast.SwitchStmt:
		return b.switchLike(pred, s.Label.Name, []ast.Node{inner.Init, inner.Tag}, inner.Body)
	case *ast.TypeSwitchStmt:
		return b.switchLike(pred, s.Label.Name, []ast.Node{inner.Init, inner.Assign}, inner.Body)
	case *ast.SelectStmt:
		return b.selectStmt(inner, pred, s.Label.Name)
	default:
		return b.stmt(s.Stmt, pred)
	}
}

func (b *cfgBuilder) forLoop(s *ast.ForStmt, pred *cfgNode, label string) *cfgNode {
	head := b.newNode(s.Init, s.Cond)
	post := b.newNode(s.Post)
	exit := b.newNode()
	pred.succs = append(pred.succs, head)
	if s.Cond != nil {
		head.succs = append(head.succs, exit)
	}
	// An infinite `for {}` still gets the exit edge reachable via break.
	b.loops = append(b.loops, loopCtx{label: label, breakTarget: exit, continueTarg: post})
	if bodyEnd := b.stmts(s.Body.List, head); bodyEnd != nil {
		bodyEnd.succs = append(bodyEnd.succs, post)
	}
	b.loops = b.loops[:len(b.loops)-1]
	post.succs = append(post.succs, head)
	return exit
}

func (b *cfgBuilder) rangeLoop(s *ast.RangeStmt, pred *cfgNode, label string) *cfgNode {
	head := b.newNode(s.X)
	exit := b.newNode()
	pred.succs = append(pred.succs, head)
	head.succs = append(head.succs, exit) // zero iterations
	b.loops = append(b.loops, loopCtx{label: label, breakTarget: exit, continueTarg: head})
	if bodyEnd := b.stmts(s.Body.List, head); bodyEnd != nil {
		bodyEnd.succs = append(bodyEnd.succs, head)
	}
	b.loops = b.loops[:len(b.loops)-1]
	return exit
}

func (b *cfgBuilder) switchLike(pred *cfgNode, label string, headOwned []ast.Node, body *ast.BlockStmt) *cfgNode {
	head := b.newNode(headOwned...)
	pred.succs = append(pred.succs, head)
	join := b.newNode()
	b.loops = append(b.loops, loopCtx{label: label, breakTarget: join})

	// Build each clause's entry node first, so fallthrough can jump to
	// the next clause's body.
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	entries := make([]*cfgNode, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		owned := make([]ast.Node, len(cc.List))
		for j, e := range cc.List {
			owned[j] = e
		}
		entries[i] = b.newNode(owned...)
		head.succs = append(head.succs, entries[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.succs = append(head.succs, join)
	}
	for i, cc := range clauses {
		bodyList := cc.Body
		fallsThrough := false
		if n := len(bodyList); n > 0 {
			if br, ok := bodyList[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				bodyList = bodyList[:n-1]
			}
		}
		end := b.stmts(bodyList, entries[i])
		if end == nil {
			continue
		}
		if fallsThrough && i+1 < len(entries) {
			end.succs = append(end.succs, entries[i+1])
		} else {
			end.succs = append(end.succs, join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	return join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, pred *cfgNode, label string) *cfgNode {
	head := b.newNode()
	pred.succs = append(pred.succs, head)
	join := b.newNode()
	b.loops = append(b.loops, loopCtx{label: label, breakTarget: join})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		entry := b.newNode(cc.Comm)
		head.succs = append(head.succs, entry)
		if end := b.stmts(cc.Body, entry); end != nil {
			end.succs = append(end.succs, join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	return join
}

// findLoop resolves break/continue to its target context. continueOnly
// restricts the search to loops (continue cannot target a switch).
func (b *cfgBuilder) findLoop(label *ast.Ident, continueOnly bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		c := &b.loops[i]
		if continueOnly && c.continueTarg == nil {
			continue
		}
		if label == nil || c.label == label.Name {
			return c
		}
	}
	return nil
}

// returnsNonNilError reports whether a return carries an error value that
// is not the nil literal — the shape of an early error bail-out.
func returnsNonNilError(p *Package, s *ast.ReturnStmt) bool {
	for _, res := range s.Results {
		tv, ok := p.Info.Types[res]
		if !ok || tv.Type == nil {
			continue
		}
		if !types.Implements(tv.Type, errorInterface()) && !isErrorType(tv.Type) {
			continue
		}
		if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}

var errType = types.Universe.Lookup("error").Type()

func errorInterface() *types.Interface {
	return errType.Underlying().(*types.Interface)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, errType)
}

// isPanicCall reports whether the expression is a call of the panic
// builtin.
func isPanicCall(p *Package, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// ownedCalls visits every call expression in the node's owned regions, in
// source order, skipping nested function literals (their bodies are not on
// this function's paths).
func (n *cfgNode) ownedCalls(visit func(*ast.CallExpr)) {
	for _, region := range n.owned {
		ast.Inspect(region, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				// Owned regions are statement heads; nested blocks belong
				// to other nodes (if/for bodies wired separately).
				return false
			case *ast.CallExpr:
				visit(x)
			}
			return true
		})
	}
}
