// Package annotfix holds deliberately malformed ravenlint directives;
// TestMalformedAnnotations asserts each is reported as a
// non-suppressible annotation diagnostic.
package annotfix

// MissingCheck has an allow with no check name.
func MissingCheck() {
	//ravenlint:allow
}

// MissingReason has an allow with a check but no justification.
func MissingReason() {
	//ravenlint:allow determinism
}

// Unknown uses a directive kind that does not exist.
func Unknown() {
	//ravenlint:nosuchdirective whatever
}

// BareIgnore is a snapshot-ignore without a reason.
type BareIgnore struct {
	n int //ravenlint:snapshot-ignore
}
