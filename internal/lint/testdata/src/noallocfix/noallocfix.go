// Package noallocfix exercises the noalloc analyzer: every rejected
// construct inside annotated functions, a clean annotated function, an
// unannotated allocator, and an allow-waived append.
package noallocfix

import "fmt"

type vec struct{ x, y float64 }

// Clean is annotated and allocation-free: value composite literals and
// arithmetic stay on the stack.
//
//ravenlint:noalloc
func Clean(a, b vec) vec {
	return vec{x: a.x + b.x, y: a.y + b.y}
}

// Unchecked is not annotated: it may allocate freely.
func Unchecked(n int) []int {
	return make([]int, n)
}

// Hot trips each allocating construct once.
//
//ravenlint:noalloc
func Hot(n int, s string, xs []int) {
	_ = make([]int, n) // want `make allocates`
	_ = new(vec)       // want `new allocates`
	_ = append(xs, n)  // want `append may grow the backing array`
	_ = &vec{x: 1}     // want `address of composite literal escapes`
	_ = []int{n}       // want `slice literal allocates its backing array`
	_ = map[int]int{}  // want `map literal allocates`
	_ = []byte(s)      // want `\[\]byte\(string\) conversion copies and allocates`
	fmt.Println(n)     // want `fmt\.Println allocates`
}

// Boxed converts a non-pointer-shaped value to an interface.
//
//ravenlint:noalloc
func Boxed(v vec) interface{} {
	return v // want `conversion of non-pointer .*vec to interface .* allocates a box`
}

// Captured returns a closure over its parameter.
//
//ravenlint:noalloc
func Captured(n int) func() int {
	return func() int { return n } // want `closure captures "n"`
}

// Waived allows one measured-safe construct with a reason.
//
//ravenlint:noalloc
func Waived(xs []int, n int) []int {
	//ravenlint:allow noalloc caller preallocated to capacity
	return append(xs, n)
}

// Spawn launches a goroutine (which also captures its channel).
//
//ravenlint:noalloc
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement allocates a goroutine stack` `closure captures "ch"`
}

// Concat builds a string at runtime.
//
//ravenlint:noalloc
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}
