// Package escfix exercises the noalloc-escape check: functions annotated
// //ravenlint:noalloc whose bodies the compiler proves to heap-allocate.
// Expectations live in `// wantescape` comments matched by line (the
// findings come from `go build -gcflags=-m`, not from an AST pass, so
// the golden harness for this fixture matches compiler positions).
package escfix

// Sum is annotated and genuinely allocation-free: nothing escapes.
//
//ravenlint:noalloc
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Grow is annotated but returns a fresh slice: the make escapes.
//
//ravenlint:noalloc
func Grow(n int) []int {
	buf := make([]int, n) // wantescape `escapes to heap`
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// Node is a linked-list cell for the moved-to-heap case.
type Node struct {
	Next *Node
	V    int
}

// Leak is annotated but returns the address of a local: moved to heap.
//
//ravenlint:noalloc
func Leak(v int) *Node {
	n := Node{V: v} // wantescape `moved to heap`
	return &n
}

// Boxed is annotated and escapes via interface boxing, but the escape is
// waived with a reasoned allow — no finding.
//
//ravenlint:noalloc
func Boxed(v int) any {
	//ravenlint:allow noalloc-escape fixture demonstrates suppression
	return v
}

// Unannotated escapes freely: no annotation, no findings.
func Unannotated(n int) []int {
	return make([]int, n)
}
