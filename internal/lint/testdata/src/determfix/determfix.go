// Package determfix exercises the determinism analyzer: wall-clock
// reads, package-level math/rand draws, and order-leaking map iteration,
// each with a clean counterpart and an annotation-suppressed case.
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// Tick reads the wall clock.
func Tick() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since reads the wall clock`
}

// GlobalDraw draws from the shared package-level source.
func GlobalDraw() int {
	return rand.Intn(6) // want `package-level rand\.Intn draws from the global source`
}

// SeededDraw draws from a seeded stream: constructors and *rand.Rand
// methods are allowed.
func SeededDraw(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// AllowedTick is waived with a reasoned annotation.
func AllowedTick() int64 {
	//ravenlint:allow determinism fixture demonstrates suppression
	return time.Now().UnixNano()
}

// Total folds map values in iteration order; the analyzer cannot prove
// the fold commutes, so the range is flagged.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order can reach output`
		total += v
	}
	return total
}

// Copy is the benign map-copy idiom: the body only stores into a map,
// which is order-insensitive.
func Copy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SortedKeys collects then sorts; the collection order leak is waived at
// the range statement because the sort erases it.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//ravenlint:allow determinism keys are sorted below before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
