// Package snapfix exercises the snapshot-completeness analyzer: a fully
// covered capture/restore pair, pairs missing a field on one or both
// sides, an ignored config field, and a wrong-shaped non-pair.
package snapfix

// Good's pair covers every field: no findings. The cfg field is opted
// out as construction-time configuration.
type Good struct {
	pos float64
	vel float64
	cfg int //ravenlint:snapshot-ignore configuration, fixed at construction
}

// GoodSnap is Good's checkpoint record.
type GoodSnap struct {
	Pos, Vel float64
}

// CaptureSnap checkpoints both mutable fields.
func (g *Good) CaptureSnap() GoodSnap { return GoodSnap{Pos: g.pos, Vel: g.vel} }

// RestoreSnap rewinds both mutable fields.
func (g *Good) RestoreSnap(s GoodSnap) {
	g.pos = s.Pos
	g.vel = s.Vel
}

// Leaky drops vel from the capture side: after a fork the restored copy
// silently reverts it. This is the single-missing-field demonstration.
type Leaky struct {
	pos float64
	vel float64 // want `field Leaky\.vel is not referenced in CaptureSnap`
}

func (l *Leaky) CaptureSnap() [2]float64 { return [2]float64{l.pos, 0} }

func (l *Leaky) RestoreSnap(s [2]float64) {
	l.pos = s[0]
	l.vel = s[1]
}

// HalfRestore captures both fields but forgets one when restoring.
type HalfRestore struct {
	a int
	b int // want `field HalfRestore\.b is not referenced in RestoreState`
}

func (h *HalfRestore) CaptureState() (int, int) { return h.a, h.b }

func (h *HalfRestore) RestoreState(s [2]int) { h.a = s[0] }

// Orphan misses a field on both sides of a Snapshot/Restore pair.
type Orphan struct {
	x int
	y int // want `field Orphan\.y is not referenced in Snapshot or Restore`
}

func (o *Orphan) Snapshot() int { return o.x }

func (o *Orphan) Restore(v int) { o.x = v }

// NotAPair has capture-like method names of the wrong shape (parameter
// on the capture side, none on the restore side), so the analyzer leaves
// the type alone even though z is never checkpointed.
type NotAPair struct {
	z int
}

func (n *NotAPair) CaptureSnap(into *int) { *into = n.z }

func (n *NotAPair) RestoreSnap() {}
