// Package mergefix exercises the mergepurity analyzer. It models shard
// reducers structurally — Merge methods, merge-named helpers, function
// values passed to NewMerger / merge parameters, and composite-literal
// Merge fields — and plants each way order sensitivity sneaks into one:
// map iteration, wall clocks, global rand, package-level mutable state,
// and direct float accumulation.
package mergefix

import (
	"math/rand"
	"time"
)

// Totals is a partial aggregate folded across shards.
type Totals struct {
	Frames int
	Peak   int
	Kinds  []int
	ByKind map[string]int
	Sum    float64
}

// Merge is a clean reducer: integer adds, max compares, and
// fixed-order slice folding only.
func (t *Totals) Merge(src *Totals) {
	t.Frames += src.Frames
	t.Peak = max(t.Peak, src.Peak)
	for i := range src.Kinds {
		t.Kinds[i] += src.Kinds[i]
	}
}

// MergeByKind folds a map in iteration order.
func (t *Totals) MergeByKind(src *Totals) {
	for k, v := range src.ByKind { // want `iterates a map`
		t.ByKind[k] += v
	}
}

// MergeStamped smuggles a wall-clock read into the merged bits.
func (t *Totals) MergeStamped(src *Totals) {
	t.Frames += src.Frames + int(time.Now().Unix()) // want `reads the wall clock`
}

// MergeJittered consults the global rand stream.
func (t *Totals) MergeJittered(src *Totals) {
	if rand.Intn(2) == 0 { // want `draws from the global rand source`
		t.Frames += src.Frames
	}
}

// mergeCount is the package's default merge counter; reducers reading it
// observe whatever the other shards already did.
var mergeCount int

// MergeCounted bumps package state from inside a reducer.
func (t *Totals) MergeCounted(src *Totals) {
	mergeCount++ // want `touches package-level mutable state mergeCount`
	t.Frames += src.Frames
}

// MergeFloats accumulates floats directly: associativity is gone, so the
// merged bits depend on shard arrival order.
func (t *Totals) MergeFloats(src *Totals) {
	t.Sum += src.Sum // want `accumulates floats directly`
}

// sink models shard.Merger enough for root discovery.
type sink struct {
	merge func(dst, src *Totals) (*Totals, error)
}

// NewMerger mirrors shard.NewMerger's shape: the merge argument is a
// reducer root.
func NewMerger(jobs int, merge func(dst, src *Totals) (*Totals, error)) *sink {
	return &sink{merge: merge}
}

// Wire passes an impure literal to NewMerger: found via the call, not
// the name.
func Wire() *sink {
	return NewMerger(8, func(dst, src *Totals) (*Totals, error) {
		dst.Sum += src.Sum // want `accumulates floats directly`
		return dst, nil
	})
}

// foldTotals is reachable only through the merge parameter below; its
// map range is flagged through the transitive closure.
func foldTotals(dst, src *Totals) (*Totals, error) {
	for k, v := range src.ByKind { // want `iterates a map`
		dst.ByKind[k] += v
	}
	return dst, nil
}

// runShards takes a reducer as a parameter named merge.
func runShards(n int, merge func(dst, src *Totals) (*Totals, error)) error {
	acc := &Totals{ByKind: map[string]int{}}
	for i := 0; i < n; i++ {
		if _, err := merge(acc, &Totals{}); err != nil {
			return err
		}
	}
	return nil
}

// Campaign wires foldTotals in through the merge parameter.
func Campaign() error {
	return runShards(4, foldTotals)
}

// shardSpec mirrors experiment.CampaignShard's Merge-field shape.
type shardSpec struct {
	Name  string
	Merge func(dst, src *Totals) (*Totals, error)
}

// Spec binds an impure literal to a Merge field.
var Spec = shardSpec{
	Name: "totals",
	Merge: func(dst, src *Totals) (*Totals, error) {
		if time.Since(time.Time{}) > 0 { // want `reads the wall clock`
			return dst, nil
		}
		dst.Frames += src.Frames
		return dst, nil
	},
}

// Observe is NOT a reducer (wrong name, not wired anywhere): its map
// range and clock read are out of scope for this check.
func Observe(t *Totals) int {
	n := int(time.Now().Unix())
	for k := range t.ByKind {
		n += len(k)
	}
	return n
}
