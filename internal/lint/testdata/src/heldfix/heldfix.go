// Package heldfix exercises the heldframe analyzer. It models the
// interpose held-frame protocol structurally — a Verdict type with a
// Hold constant, a chain with Write/ResumeHeld, and a guard carrying the
// PredictInto/AbsorbPrediction seam — without importing the real
// packages, then walks through the protocol's safe shape and each way of
// breaking it.
package heldfix

// Verdict mirrors interpose.Verdict structurally.
type Verdict int

const (
	Pass Verdict = iota
	Drop
	Hold
)

// Chain mirrors the interposition chain: Write forwards (or refuses,
// held), ResumeHeld releases a parked frame.
type Chain struct{ held []float64 }

func (c *Chain) Write(buf []float64) error { return nil }
func (c *Chain) ResumeHeld() error         { return nil }

// Guard implements the full deferred-predict seam, so it may issue Hold.
type Guard struct{ pending bool }

func (g *Guard) SetDeferredPredict(on bool)               {}
func (g *Guard) PredictPending() bool                     { return g.pending }
func (g *Guard) PredictInto(dst []float64, lane int)      {}
func (g *Guard) AbsorbPrediction(src []float64, lane int) {}

// OnWrite may return Hold: Guard carries the seam, so this is clean.
func (g *Guard) OnWrite(buf []float64) Verdict {
	if g.pending {
		return Hold
	}
	return Pass
}

type session struct {
	guard *Guard
	chain *Chain
}

// TickGood mirrors the fleet worker's two-loop shape: park every pending
// prediction into lanes, then absorb and resume each lane. Clean on
// every path, including the zero-lane and error-bailout ones.
func TickGood(sessions []*session, scratch []float64) error {
	lanes := 0
	for _, s := range sessions {
		if s.guard.PredictPending() {
			s.guard.PredictInto(scratch, lanes)
			lanes++
		}
	}
	for k, s := range sessions {
		if k >= lanes {
			break
		}
		s.guard.AbsorbPrediction(scratch, k)
		if err := s.chain.ResumeHeld(); err != nil {
			return err
		}
	}
	return nil
}

// LostPark parks a prediction and forgets it entirely.
func LostPark(g *Guard, scratch []float64) {
	if g.PredictPending() {
		g.PredictInto(scratch, 0) // want `never absorbed`
	}
}

// NoResume absorbs the prediction but the resume call was deleted: the
// park is flagged (no resume anywhere ahead) and so is the absorb (a
// normal return is reachable with the frame still parked).
func NoResume(g *Guard, scratch []float64) {
	g.PredictInto(scratch, 0)      // want `held frame is never resumed`
	g.AbsorbPrediction(scratch, 0) // want `not resumed on all paths`
}

// MaybeResume resumes only on one branch after absorbing; the
// fall-through path returns with the frame still parked.
func MaybeResume(s *session, scratch []float64, ok bool) {
	s.guard.PredictInto(scratch, 0)
	s.guard.AbsorbPrediction(scratch, 0) // want `not resumed on all paths`
	if ok {
		s.chain.ResumeHeld()
	}
}

// ErrBailout resumes on the happy path and bails with an error before
// resuming on the failure path — clean: an error return tears the
// session down, so the protocol does not require a resume there.
func ErrBailout(s *session, scratch []float64, err error) error {
	s.guard.PredictInto(scratch, 0)
	s.guard.AbsorbPrediction(scratch, 0)
	if err != nil {
		return err
	}
	return s.chain.ResumeHeld()
}

// WriteWhileHeld writes the chain while a frame may still be parked.
func WriteWhileHeld(s *session, buf, scratch []float64) {
	s.guard.PredictInto(scratch, 0)
	s.chain.Write(buf) // want `write on a chain that may still hold a parked frame`
	s.guard.AbsorbPrediction(scratch, 0)
	s.chain.ResumeHeld()
}

// WriteAfterResume is the clean ordering of the same calls.
func WriteAfterResume(s *session, buf, scratch []float64) {
	s.guard.PredictInto(scratch, 0)
	s.guard.AbsorbPrediction(scratch, 0)
	s.chain.ResumeHeld()
	s.chain.Write(buf)
}

// DoubleHold parks a second prediction before the first was resumed.
func DoubleHold(a, b *Guard, c *Chain, scratch []float64) {
	a.PredictInto(scratch, 0)
	b.PredictInto(scratch, 1) // want `second prediction parked before the previous held frame was resumed`
	a.AbsorbPrediction(scratch, 0)
	b.AbsorbPrediction(scratch, 1)
	c.ResumeHeld()
	c.ResumeHeld()
}

// Lone opts into deferral but implements none of the seam.
type Lone struct{}

func (l *Lone) SetDeferredPredict(on bool) {} // want `Lone has SetDeferredPredict but no PredictPending` `Lone has SetDeferredPredict but no PredictInto` `Lone has SetDeferredPredict but no AbsorbPrediction`

// Partial lacks only AbsorbPrediction.
type Partial struct{}

func (p *Partial) SetDeferredPredict(on bool) {} // want `Partial has SetDeferredPredict but no AbsorbPrediction`

func (p *Partial) PredictPending() bool { return false }

func (p *Partial) PredictInto(dst []float64, lane int) {}

// Filter returns Hold without Partial carrying the full seam.
func (p *Partial) Filter(buf []float64) Verdict {
	return Hold // want `Partial\.Filter returns Hold but Partial does not implement AbsorbPrediction`
}

// freeHold is not a method at all; nobody could ever resume its holds.
func freeHold() Verdict {
	return Hold // want `freeHold returns Hold but is not a method`
}
