package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MergePurityAnalyzer builds the reducer-purity check. The sharded
// campaign runner's bit-identity argument (PR 6) rests on every reducer —
// the merge operations folding partial aggregates back together — being a
// pure function of its two operands, insensitive to the order shards and
// chunks arrive in. This analyzer finds the reducers and forbids the four
// ways order sensitivity sneaks in:
//
//   - map iteration: range order would leak into the merged result;
//   - wall clocks and package-level math/rand: ambient nondeterminism;
//   - reads of package-level mutable state: a reducer observing anything
//     but its operands can produce different bits for different arrival
//     orders (error sentinels are exempt — they are de-facto constants);
//   - direct floating-point accumulation (`+=`/`-=` on floats): float
//     addition is not associative, so sums must flow through the
//     stats.Forest fixed-shape combine schedule instead. The stats
//     package itself — the blessed implementation of that schedule — is
//     exempt from this one rule.
//
// Reducers are discovered structurally and closed transitively over
// same-package calls: functions and methods whose name starts with
// "merge"/"Merge", function values passed to shard.NewMerger or to any
// parameter named "merge", and function literals bound to a composite-
// literal field named Merge (the experiment.CampaignShard form). Calls
// through function-valued variables are not followed; keep reducer
// plumbing as named functions or literals at the call site.
func MergePurityAnalyzer(match func(importPath string) bool) *Analyzer {
	return &Analyzer{
		Name: CheckMergePurity,
		Doc:  "reducers reachable from shard.Merger/stats.Forest/metrics Merge must be order-insensitive",
		Run: func(p *Package) []Diagnostic {
			if match != nil && !match(p.ImportPath) {
				return nil
			}
			bodies := reducerBodies(p)
			var diags []Diagnostic
			for _, rb := range bodies {
				diags = append(diags, checkReducerBody(p, rb)...)
			}
			return diags
		},
	}
}

// reducerBody is one function body established as (part of) a reducer.
type reducerBody struct {
	name string
	body *ast.BlockStmt
}

// reducerBodies finds the reducer roots in a package and closes them over
// same-package calls.
func reducerBodies(p *Package) []reducerBody {
	// Index the package's function declarations by their object, for call
	// resolution.
	declOf := map[*types.Func]*ast.FuncDecl{}
	paramNames := map[*types.Func][]string{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			declOf[fn] = fd
			var names []string
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						names = append(names, "")
						continue
					}
					for _, id := range field.Names {
						names = append(names, id.Name)
					}
				}
			}
			paramNames[fn] = names
		}
	}

	seen := map[*ast.BlockStmt]bool{}
	var queue []reducerBody
	add := func(name string, body *ast.BlockStmt) {
		if body == nil || seen[body] {
			return
		}
		seen[body] = true
		queue = append(queue, reducerBody{name: name, body: body})
	}
	addCallee := func(e ast.Expr) {
		var obj types.Object
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj = p.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = p.Info.Uses[e.Sel]
		case *ast.FuncLit:
			add("func literal", e.Body)
			return
		}
		if fn, ok := obj.(*types.Func); ok {
			if fd := declOf[fn.Origin()]; fd != nil {
				add(fn.Name(), fd.Body)
			}
		}
	}

	for _, f := range p.Files {
		// Name-prefix roots: Merge methods, merge helpers.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(strings.ToLower(fd.Name.Name), "merge") {
				add(fd.Name.Name, fd.Body)
			}
		}
		// Structural roots: args to NewMerger / merge-named parameters, and
		// composite-literal Merge fields.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p, n)
				if fn == nil {
					return true
				}
				if fn.Name() == "NewMerger" {
					for _, arg := range n.Args {
						if _, ok := p.Info.TypeOf(arg).Underlying().(*types.Signature); ok {
							addCallee(arg)
						}
					}
					return true
				}
				if names := paramNames[fn.Origin()]; names != nil {
					for i, arg := range n.Args {
						if i < len(names) && names[i] == "merge" {
							addCallee(arg)
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok && id.Name == "Merge" {
					if t := p.Info.TypeOf(n.Value); t != nil {
						if _, ok := t.Underlying().(*types.Signature); ok {
							addCallee(n.Value)
						}
					}
				}
			}
			return true
		})
	}

	// Transitive closure over same-package calls.
	for i := 0; i < len(queue); i++ {
		ast.Inspect(queue[i].body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(p, call); fn != nil && fn.Pkg() == p.Types {
					if fd := declOf[fn.Origin()]; fd != nil {
						add(fn.Name(), fd.Body)
					}
				}
			}
			return true
		})
	}
	return queue
}

// statsPackage reports whether the package is the repository's stats
// package — the home of the Forest fixed-shape combine schedule, whose
// Chan-et-al float updates ARE the blessed accumulation.
func statsPackage(p *Package) bool {
	return p.ImportPath == "internal/stats" || strings.HasSuffix(p.ImportPath, "/internal/stats")
}

// checkReducerBody applies the purity rules to one reducer body.
func checkReducerBody(p *Package, rb reducerBody) []Diagnostic {
	var diags []Diagnostic
	blessFloat := statsPackage(p)
	ast.Inspect(rb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					diags = append(diags, p.diag(CheckMergePurity, n.Pos(),
						"reducer %s iterates a map; iteration order leaks into the merged result — iterate a sorted key slice instead", rb.name))
				}
			}
		case *ast.CallExpr:
			if msg, ok := impureReducerCall(p, n); ok {
				diags = append(diags, p.diag(CheckMergePurity, n.Pos(),
					"reducer %s %s", rb.name, msg))
			}
		case *ast.Ident:
			if v, ok := p.Info.Uses[n].(*types.Var); ok && packageLevelMutable(v) {
				diags = append(diags, p.diag(CheckMergePurity, n.Pos(),
					"reducer %s touches package-level mutable state %s; a reducer must be a pure function of its operands", rb.name, v.Name()))
			}
		case *ast.AssignStmt:
			if blessFloat {
				break
			}
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				for _, lhs := range n.Lhs {
					if t := p.Info.TypeOf(lhs); t != nil && isFloat(t) {
						diags = append(diags, p.diag(CheckMergePurity, n.Pos(),
							"reducer %s accumulates floats directly; float addition is not associative across merge orders — route the stream through stats.Forest", rb.name))
					}
				}
			}
		}
		return true
	})
	return diags
}

// impureReducerCall classifies calls that smuggle ambient state into a
// reducer: wall-clock reads and package-level math/rand draws.
func impureReducerCall(p *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "reads the wall clock (time." + fn.Name() + "); merged bits must not depend on when a frame arrived", true
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			break
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		default:
			return "draws from the global rand source (rand." + fn.Name() + ")", true
		}
	}
	return "", false
}

// packageLevelMutable reports whether the variable is package-level
// mutable state a reducer must not observe. Error-typed variables are
// exempt: sentinel errors are de-facto constants.
func packageLevelMutable(v *types.Var) bool {
	if v.IsField() || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	if isErrorType(v.Type()) {
		return false
	}
	return true
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
