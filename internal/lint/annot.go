package lint

import (
	"go/ast"
	"strings"
)

// Annotation kinds.
const (
	annotAllow          = "allow"
	annotNoalloc        = "noalloc"
	annotSnapshotIgnore = "snapshot-ignore"
)

// annotation is one parsed //ravenlint:... directive.
type annotation struct {
	kind   string // allow, noalloc, snapshot-ignore
	check  string // for allow: which check is waived
	reason string // free-text justification (required for allow/ignore)
}

// allowAnnot is an allow directive pinned to a source line.
type allowAnnot struct {
	file  string
	line  int
	check string
}

// parseAnnotation parses one comment's text. It accepts both
// `//ravenlint:...` (pragma style) and `// ravenlint:...`.
func parseAnnotation(text string) (annotation, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return annotation{}, false
	}
	body = strings.TrimSpace(body)
	body, ok = strings.CutPrefix(body, "ravenlint:")
	if !ok {
		return annotation{}, false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return annotation{}, false
	}
	a := annotation{kind: fields[0]}
	switch a.kind {
	case annotAllow:
		if len(fields) >= 2 {
			a.check = fields[1]
		}
		if len(fields) >= 3 {
			a.reason = strings.Join(fields[2:], " ")
		}
	case annotSnapshotIgnore:
		if len(fields) >= 2 {
			a.reason = strings.Join(fields[1:], " ")
		}
	case annotNoalloc:
		// no operands
	default:
		// Unknown directive: surfaced as a malformed-annotation finding
		// by collectAnnotations.
	}
	return a, true
}

// collectAnnotations scans every comment in the package, recording allow
// directives by file and line and reporting malformed directives
// (unknown kind, missing check, missing reason) as CheckAnnotation
// diagnostics.
func (p *Package) collectAnnotations() {
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				a, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				switch a.kind {
				case annotAllow:
					switch {
					case a.check == "":
						p.annotDiag = append(p.annotDiag, p.diag(CheckAnnotation, c.Pos(),
							"ravenlint:allow needs a check name: //ravenlint:allow <check> <reason>"))
					case a.reason == "":
						p.annotDiag = append(p.annotDiag, p.diag(CheckAnnotation, c.Pos(),
							"ravenlint:allow %s needs a reason: //ravenlint:allow %s <reason>", a.check, a.check))
					default:
						p.allows = append(p.allows, allowAnnot{file: pos.Filename, line: pos.Line, check: a.check})
					}
				case annotSnapshotIgnore:
					if a.reason == "" {
						p.annotDiag = append(p.annotDiag, p.diag(CheckAnnotation, c.Pos(),
							"ravenlint:snapshot-ignore needs a reason: //ravenlint:snapshot-ignore <reason>"))
					}
				case annotNoalloc:
					// validated where it is attached (function docs)
				default:
					p.annotDiag = append(p.annotDiag, p.diag(CheckAnnotation, c.Pos(),
						"unknown ravenlint directive %q (have allow, noalloc, snapshot-ignore)", a.kind))
				}
			}
		}
	}
}

// commentGroupHas reports whether any comment in the group is a
// directive of the given kind.
func commentGroupHas(g *ast.CommentGroup, kind string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if a, ok := parseAnnotation(c.Text); ok && a.kind == kind {
			return true
		}
	}
	return false
}

// fieldIgnored reports whether a struct field carries a
// snapshot-ignore directive in its doc or trailing comment.
func fieldIgnored(f *ast.Field) bool {
	return commentGroupHas(f.Doc, annotSnapshotIgnore) || commentGroupHas(f.Comment, annotSnapshotIgnore)
}
