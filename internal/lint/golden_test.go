package lint

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests are a minimal, stdlib-only reimplementation of the
// analysistest idiom: fixture packages under testdata/src carry
// `// want `regex`` comments on the lines where diagnostics are
// expected; the harness runs the analyzers over a fixture and demands an
// exact one-to-one match between diagnostics and want patterns.

// wantPatternRE extracts the backquoted (or double-quoted) regexes from
// a want comment's payload.
var wantPatternRE = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

type wantSpec struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans a fixture package's comments for want expectations,
// keyed by file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]*wantSpec {
	t.Helper()
	wants := map[string][]*wantSpec{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				payload, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				ms := wantPatternRE.FindAllStringSubmatch(payload, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern: %s", key, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &wantSpec{re: re})
				}
			}
		}
	}
	return wants
}

// loadFixture type-checks one testdata/src fixture package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadFixtureDir(".", filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// testGolden runs the selected checks over a fixture and matches the
// diagnostics against its want comments, both directions.
func testGolden(t *testing.T, fixture, checks string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	analyzers, err := Analyzers(checks, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, analyzers)
	wants := collectWants(t, pkg)

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

func TestDeterminismGolden(t *testing.T) { testGolden(t, "determfix", "determinism") }

func TestSnapshotGolden(t *testing.T) { testGolden(t, "snapfix", "snapshot") }

func TestNoallocGolden(t *testing.T) { testGolden(t, "noallocfix", "noalloc") }

func TestHeldFrameGolden(t *testing.T) { testGolden(t, "heldfix", "heldframe") }

func TestMergePurityGolden(t *testing.T) { testGolden(t, "mergefix", "mergepurity") }

// TestMalformedAnnotations asserts that broken directives surface as
// non-suppressible annotation diagnostics. They are checked
// programmatically because a `// want` comment cannot share a line with
// the (line-comment) directive under test.
func TestMalformedAnnotations(t *testing.T) {
	pkg := loadFixture(t, "annotfix")
	diags := Run([]*Package{pkg}, nil) // no analyzers: annotation diags only
	wantSubstrings := []string{
		"ravenlint:allow needs a check name",
		"ravenlint:allow determinism needs a reason",
		`unknown ravenlint directive "nosuchdirective"`,
		"ravenlint:snapshot-ignore needs a reason",
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstrings), diags)
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Check == CheckAnnotation && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no annotation diagnostic containing %q in %v", want, diags)
		}
	}
}

// TestRepoLintsClean is the gate the fixtures justify: the real tree,
// loaded exactly the way cmd/ravenlint loads it, produces zero
// diagnostics under every AST check at its repository scope. (The
// build-driven noalloc-escape check has its own gate in escape_test.go.)
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("re-typechecks the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select("all", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, sel.Analyzers) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestAnalyzerSelection covers the -checks flag's parsing surface.
func TestAnalyzerSelection(t *testing.T) {
	sel, err := Select("all", true)
	if err != nil || len(sel.Analyzers) != 5 || !sel.Escape {
		t.Fatalf("all: got %d analyzers, escape %v, err %v", len(sel.Analyzers), sel.Escape, err)
	}
	sel, err = Select("noalloc-escape", false)
	if err != nil || len(sel.Analyzers) != 0 || !sel.Escape {
		t.Fatalf("noalloc-escape: got %d analyzers, escape %v, err %v", len(sel.Analyzers), sel.Escape, err)
	}
	as, err := Analyzers("determinism,noalloc", nil)
	if err != nil || len(as) != 2 {
		t.Fatalf("subset: got %d analyzers, err %v", len(as), err)
	}
	if as[0].Name != CheckDeterminism || as[1].Name != CheckNoalloc {
		t.Fatalf("subset order: got %s, %s", as[0].Name, as[1].Name)
	}
	if as, err := Analyzers("heldframe,mergepurity", nil); err != nil || len(as) != 2 {
		t.Fatalf("v2 subset: got %d analyzers, err %v", len(as), err)
	}
	if _, err := Analyzers("nosuch", nil); err == nil {
		t.Fatal("unknown check accepted")
	}
}

// TestDiagnosticJSON pins the JSON shape the -json flag emits.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 12, Col: 3, Check: CheckNoalloc, Severity: SeverityError, Message: "make allocates"}
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a/b.go","line":12,"col":3,"check":"noalloc","severity":"error","message":"make allocates"}`
	if string(blob) != want {
		t.Fatalf("got %s, want %s", blob, want)
	}
	var back Diagnostic
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip: got %+v, want %+v", back, d)
	}
	if s := d.String(); s != "a/b.go:12:3: [noalloc] make allocates" {
		t.Fatalf("String: got %q", s)
	}
}
