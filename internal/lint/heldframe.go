package lint

import (
	"go/ast"
	"go/types"
)

// HeldFrameAnalyzer builds the held-frame protocol check. The fleet's
// batched guard prediction (PR 9) parks a session's command frame on the
// interposition chain (interpose.Hold) while its model advance joins a
// fused sweep; the frame reaches the board only when the driver resumes
// the chain. The protocol has exactly one safe shape, and this analyzer
// makes departures from it build breaks:
//
//   - a type that opts into deferral (SetDeferredPredict) must implement
//     the full seam: PredictPending, PredictInto, AbsorbPrediction;
//   - a method returning interpose.Hold must belong to a type carrying
//     that seam — a wrapper that parks frames it cannot finish deadlocks
//     the tick;
//   - flow rules over each driver function's control-flow graph:
//     every PredictInto must have an AbsorbPrediction reachable after it,
//     and a ResumeHeld/ResumeWrite after that; after AbsorbPrediction the
//     resume must happen on ALL paths to a normal return (error bail-outs
//     are exempt — an aborted tick tears the session down); no chain
//     Write while a frame may still be held; no second park before the
//     previous frame was resumed.
//
// The protocol ops are recognised structurally (method names plus the
// Hold constant's Verdict type), so fixture packages can model the seam
// without importing the real interpose package.
func HeldFrameAnalyzer(match func(importPath string) bool) *Analyzer {
	return &Analyzer{
		Name: CheckHeldFrame,
		Doc:  "enforce the interpose.Hold held-frame protocol: parked predictions are absorbed and resumed on all paths",
		Run: func(p *Package) []Diagnostic {
			if match != nil && !match(p.ImportPath) {
				return nil
			}
			var diags []Diagnostic
			diags = append(diags, checkDeferredSeams(p)...)
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					diags = append(diags, checkHoldReturns(p, fd)...)
					diags = append(diags, checkHeldFlow(p, fd.Body)...)
					// Function literals run on their own schedule; analyze
					// each body as an independent driver function.
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							diags = append(diags, checkHeldFlow(p, lit.Body)...)
						}
						return true
					})
				}
			}
			return diags
		},
	}
}

// The deferred-predict seam: a holder must expose all of these.
var seamMethods = []string{"PredictPending", "PredictInto", "AbsorbPrediction"}

// checkDeferredSeams flags types that opt into deferred prediction without
// implementing the methods the fleet worker drives the seam with.
func checkDeferredSeams(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "SetDeferredPredict" {
				continue
			}
			named := recvNamed(p, fd)
			if named == nil {
				continue
			}
			for _, m := range seamMethods {
				if !hasMethod(named, m) {
					diags = append(diags, p.diag(CheckHeldFrame, fd.Pos(),
						"%s has SetDeferredPredict but no %s; the deferred-predict seam needs PredictPending, PredictInto, and AbsorbPrediction",
						named.Obj().Name(), m))
				}
			}
		}
	}
	return diags
}

// checkHoldReturns flags functions that can return the Hold verdict
// without belonging to a type that implements the deferred-predict seam:
// a held frame only ever resumes if the holder exposes the batch seam the
// fleet worker drives.
func checkHoldReturns(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isHoldConst(p, res) {
				continue
			}
			named := recvNamed(p, fd)
			if named == nil {
				diags = append(diags, p.diag(CheckHeldFrame, res.Pos(),
					"%s returns Hold but is not a method; only a wrapper implementing the deferred-predict seam may park frames", fd.Name.Name))
				continue
			}
			for _, m := range seamMethods {
				if !hasMethod(named, m) {
					diags = append(diags, p.diag(CheckHeldFrame, res.Pos(),
						"%s.%s returns Hold but %s does not implement %s; a holder without the full deferred-predict seam parks frames nobody can resume",
						named.Obj().Name(), fd.Name.Name, named.Obj().Name(), m))
				}
			}
		}
		return true
	})
	return diags
}

// isHoldConst reports whether the expression resolves to a constant named
// Hold whose type is named Verdict (the interpose hold verdict, or a
// fixture's structural equivalent).
func isHoldConst(p *Package, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := p.Info.Uses[id].(*types.Const)
	if !ok || c.Name() != "Hold" {
		return false
	}
	named, ok := c.Type().(*types.Named)
	return ok && named.Obj().Name() == "Verdict"
}

// recvNamed resolves a method declaration's receiver to its named type.
func recvNamed(p *Package, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := p.Info.TypeOf(fd.Recv.List[0].Type)
	return derefNamed(t)
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasMethod reports whether the named type (or its underlying interface)
// declares a method with the given name.
func hasMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	if iface, ok := named.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
	}
	return false
}

// Held-frame protocol events.
const (
	hfPark = iota
	hfAbsorb
	hfResume
	hfChainWrite
)

type hfOcc struct {
	kind int
	call *ast.CallExpr
}

// hfEvents classifies the protocol calls owned by each CFG node, in
// execution order.
func hfEvents(p *Package, g *cfg) map[*cfgNode][]hfOcc {
	events := map[*cfgNode][]hfOcc{}
	for _, n := range g.nodes {
		n.ownedCalls(func(call *ast.CallExpr) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			switch sel.Sel.Name {
			case "PredictInto":
				events[n] = append(events[n], hfOcc{hfPark, call})
			case "AbsorbPrediction":
				events[n] = append(events[n], hfOcc{hfAbsorb, call})
			case "ResumeHeld", "ResumeWrite":
				events[n] = append(events[n], hfOcc{hfResume, call})
			case "Write":
				// Only writes on something that can hold frames (its type
				// has ResumeHeld) are chain writes.
				if named := derefNamed(p.Info.TypeOf(sel.X)); named != nil && hasMethod(named, "ResumeHeld") {
					events[n] = append(events[n], hfOcc{hfChainWrite, call})
				}
			}
		})
	}
	return events
}

// hfSearch walks the CFG forward from just after the fromIdx-th event of
// node from. It reports the first occurrence matching match; traversal
// stops along a path at any occurrence matching blocked. When wantExit is
// set, reaching the function's normal exit counts as a hit (returned as a
// nil occurrence with found=true). The error exit never counts: error
// bail-outs abandon the tick.
func hfSearch(g *cfg, events map[*cfgNode][]hfOcc, from *cfgNode, fromIdx int,
	match func(hfOcc) bool, blocked func(hfOcc) bool, wantExit bool) (*hfOcc, bool) {

	type frame struct {
		n   *cfgNode
		idx int
	}
	visited := map[*cfgNode]bool{}
	stack := []frame{{from, fromIdx}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.idx == 0 {
			if visited[fr.n] {
				continue
			}
			visited[fr.n] = true
		}
		stopped := false
		occs := events[fr.n]
		for i := fr.idx; i < len(occs); i++ {
			if match != nil && match(occs[i]) {
				return &occs[i], true
			}
			if blocked != nil && blocked(occs[i]) {
				stopped = true
				break
			}
		}
		if stopped {
			continue
		}
		if fr.n.exit && wantExit {
			return nil, true
		}
		if fr.n.errExit {
			continue
		}
		for _, s := range fr.n.succs {
			stack = append(stack, frame{s, 0})
		}
	}
	return nil, false
}

// checkHeldFlow applies the park/absorb/resume flow rules to one function
// body.
func checkHeldFlow(p *Package, body *ast.BlockStmt) []Diagnostic {
	g := buildCFG(p, body)
	events := hfEvents(p, g)
	if len(events) == 0 {
		return nil
	}
	var diags []Diagnostic
	isKind := func(k int) func(hfOcc) bool {
		return func(o hfOcc) bool { return o.kind == k }
	}
	for _, n := range g.nodes {
		for i, occ := range events[n] {
			switch occ.kind {
			case hfPark:
				if _, ok := hfSearch(g, events, n, i+1, isKind(hfAbsorb), nil, false); !ok {
					diags = append(diags, p.diag(CheckHeldFrame, occ.call.Pos(),
						"prediction parked here (PredictInto) is never absorbed: no AbsorbPrediction reachable on any subsequent path"))
				} else if _, ok := hfSearch(g, events, n, i+1, isKind(hfResume), nil, false); !ok {
					diags = append(diags, p.diag(CheckHeldFrame, occ.call.Pos(),
						"held frame is never resumed: no ResumeHeld/ResumeWrite reachable after this PredictInto"))
				}
				if w, ok := hfSearch(g, events, n, i+1, isKind(hfChainWrite), isKind(hfResume), false); ok {
					diags = append(diags, p.diag(CheckHeldFrame, w.call.Pos(),
						"write on a chain that may still hold a parked frame; resume the held write first (Chain.Write returns ErrHeldFrame at runtime)"))
				}
				self := occ.call
				second, ok := hfSearch(g, events, n, i+1,
					func(o hfOcc) bool { return o.kind == hfPark && o.call != self },
					isKind(hfResume), false)
				if ok {
					diags = append(diags, p.diag(CheckHeldFrame, second.call.Pos(),
						"second prediction parked before the previous held frame was resumed (double hold degrades to a dropped frame)"))
				}
			case hfAbsorb:
				if _, ok := hfSearch(g, events, n, i+1, nil, isKind(hfResume), true); ok {
					diags = append(diags, p.diag(CheckHeldFrame, occ.call.Pos(),
						"held write is not resumed on all paths: control can reach a normal return after AbsorbPrediction without ResumeHeld/ResumeWrite"))
				}
			}
		}
	}
	return diags
}
