package lint

import (
	"go/ast"
	"go/types"
)

// capturePairs are the method-name pairs the snapshot analyzer treats as
// a checkpoint/restore protocol. The first two are the sim.Snapshotter
// and component-state conventions; the others cover the kernel and rig
// spellings.
var capturePairs = [][2]string{
	{"CaptureSnap", "RestoreSnap"},
	{"CaptureState", "RestoreState"},
	{"Checkpoint", "RestoreCheckpoint"},
	{"Snapshot", "Restore"},
}

// SnapshotAnalyzer builds the snapshot-completeness check. For every
// concrete struct type in the package that declares a capture/restore
// method pair (the shape behind sim.Snapshotter and the component
// CaptureState/RestoreState protocol), each field must be referenced in
// BOTH method bodies — the invariant that makes PR 4's fork engine
// sound: a field that evolves during simulation but is absent from
// either side silently diverges after a fork. Genuinely immutable
// configuration and derived scratch fields are opted out field-by-field
// with `//ravenlint:snapshot-ignore <reason>`.
func SnapshotAnalyzer() *Analyzer {
	return &Analyzer{
		Name: CheckSnapshot,
		Doc:  "every field of a capture/restore-bearing type must appear in both method bodies or carry //ravenlint:snapshot-ignore",
		Run:  runSnapshot,
	}
}

func runSnapshot(p *Package) []Diagnostic {
	methods := map[string]map[string]*ast.FuncDecl{} // type name -> method name -> decl
	structs := map[string]*ast.StructType{}          // type name -> AST struct

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						structs[ts.Name.Name] = st
					}
				}
			case *ast.FuncDecl:
				if decl.Recv == nil || len(decl.Recv.List) != 1 || decl.Body == nil {
					continue
				}
				base := receiverBaseName(decl.Recv.List[0].Type)
				if base == "" {
					continue
				}
				if methods[base] == nil {
					methods[base] = map[string]*ast.FuncDecl{}
				}
				methods[base][decl.Name.Name] = decl
			}
		}
	}

	var diags []Diagnostic
	for typeName, st := range structs {
		ms := methods[typeName]
		if ms == nil {
			continue
		}
		for _, pair := range capturePairs {
			capture, restore := ms[pair[0]], ms[pair[1]]
			if capture == nil || restore == nil {
				continue
			}
			if !captureShape(p, capture) || !restoreShape(p, restore) {
				continue
			}
			diags = append(diags, checkFieldCoverage(p, typeName, st, capture, restore)...)
			break // one pair per type; the first matching pair wins
		}
	}
	return diags
}

// receiverBaseName unwraps a method receiver type to its named base.
func receiverBaseName(expr ast.Expr) string {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return expr.Name
	case *ast.StarExpr:
		return receiverBaseName(expr.X)
	case *ast.IndexExpr: // generic receiver
		return receiverBaseName(expr.X)
	case *ast.IndexListExpr:
		return receiverBaseName(expr.X)
	}
	return ""
}

// captureShape: no parameters, one or two results (state, or state+error).
func captureShape(p *Package, fd *ast.FuncDecl) bool {
	sig := funcSignature(p, fd)
	return sig != nil && sig.Params().Len() == 0 && sig.Results().Len() >= 1 && sig.Results().Len() <= 2
}

// restoreShape: exactly one parameter, at most one (error) result.
func restoreShape(p *Package, fd *ast.FuncDecl) bool {
	sig := funcSignature(p, fd)
	return sig != nil && sig.Params().Len() == 1 && sig.Results().Len() <= 1
}

func funcSignature(p *Package, fd *ast.FuncDecl) *types.Signature {
	obj := p.Info.Defs[fd.Name]
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// checkFieldCoverage verifies that every non-ignored field of the struct
// is referenced in both the capture and the restore body.
func checkFieldCoverage(p *Package, typeName string, st *ast.StructType, capture, restore *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	inCapture := referencedFields(p, capture.Body)
	inRestore := referencedFields(p, restore.Body)
	for _, field := range st.Fields.List {
		if fieldIgnored(field) {
			continue
		}
		names := field.Names
		if len(names) == 0 {
			// Embedded field: referenced through its type name.
			if id := embeddedFieldName(field.Type); id != nil {
				names = []*ast.Ident{id}
			} else {
				continue
			}
		}
		for _, name := range names {
			if name.Name == "_" {
				continue
			}
			obj := p.Info.Defs[name]
			fieldVar, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			missCap, missRes := !inCapture[fieldVar], !inRestore[fieldVar]
			if !missCap && !missRes {
				continue
			}
			where := ""
			switch {
			case missCap && missRes:
				where = capture.Name.Name + " or " + restore.Name.Name
			case missCap:
				where = capture.Name.Name
			default:
				where = restore.Name.Name
			}
			diags = append(diags, p.diag(CheckSnapshot, name.Pos(),
				"field %s.%s is not referenced in %s; checkpoint it, or annotate //ravenlint:snapshot-ignore <reason> if it is config or derived scratch",
				typeName, name.Name, where))
		}
	}
	return diags
}

// embeddedFieldName digs the identifier out of an embedded field's type.
func embeddedFieldName(expr ast.Expr) *ast.Ident {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return expr
	case *ast.StarExpr:
		return embeddedFieldName(expr.X)
	case *ast.SelectorExpr:
		return expr.Sel
	}
	return nil
}

// referencedFields collects every struct field object selected anywhere
// in the body (x.field, however the receiver is spelled or copied).
func referencedFields(p *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}
