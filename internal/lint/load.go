package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
)

// listedPackage mirrors the `go list -json` fields the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *listError
}

type listError struct {
	Err string
}

// goList runs `go list -deps -export -json` in dir over the patterns and
// decodes the JSON stream. -deps pulls in every transitive dependency,
// -export materialises compiled export data in the build cache — which is
// what lets the type checker resolve imports without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,Name,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// left in the build cache. A single instance is shared across all target
// packages so dependency packages unify.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := imp.exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return imp
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	return imp.gc.Import(path)
}

// Load lists, parses, and type-checks the packages matching the patterns,
// rooted at dir (a directory inside the module). It returns one Package
// per matched (root) package; dependencies are imported from export data.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, root := range roots {
		var files []*ast.File
		for _, name := range root.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		p, err := typeCheck(root.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadFixtureDir parses and type-checks a single fixture package held in
// dir (for example a testdata/src/<fixture> directory that the go tool
// itself never builds). modDir anchors the `go list` calls that resolve
// the fixture's (stdlib-only) imports. The fixture's import path is its
// directory base name.
func LoadFixtureDir(modDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for path := range imports {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		listed, err := goList(modDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
			}
			exports[p.ImportPath] = p.Export
		}
	}
	return typeCheck(filepath.Base(dir), fset, files, newExportImporter(fset, exports))
}

// typeCheck runs the go/types checker and assembles a Package, including
// its parsed annotations.
func typeCheck(importPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	p.collectAnnotations()
	return p, nil
}
