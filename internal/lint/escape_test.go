package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The escape fixture's expectations are `// wantescape `regex`` comments
// matched by (base file name, line): noalloc-escape findings carry the
// compiler's positions rather than AST positions, so the test compares
// where go build's -m notes actually land.

func collectEscapeWants(t *testing.T, dir string) map[string][]*wantSpec {
	t.Helper()
	wants := map[string][]*wantSpec{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, payload, ok := strings.Cut(sc.Text(), "// wantescape ")
			if !ok {
				continue
			}
			m := wantPatternRE.FindStringSubmatch(payload)
			if m == nil {
				t.Fatalf("%s:%d: wantescape comment with no quoted pattern", e.Name(), line)
			}
			pat := m[1]
			if pat == "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad wantescape pattern %q: %v", e.Name(), line, pat, err)
			}
			key := keyAt(e.Name(), line)
			wants[key] = append(wants[key], &wantSpec{re: re})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

func keyAt(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}

// TestEscapeGolden drives the noalloc-escape check over its fixture and
// matches findings against the wantescape comments, both directions.
func TestEscapeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go build")
	}
	fixture := filepath.Join("testdata", "src", "escfix")
	diags, err := EscapeCheck(".", []string{"./" + fixture})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectEscapeWants(t, fixture)
	for _, d := range diags {
		if d.Check != CheckNoallocEscape || d.Severity != SeverityError {
			t.Errorf("finding with wrong check/severity: %+v", d)
		}
		key := keyAt(d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected escape finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no escape finding matching %q", key, w.re)
			}
		}
	}
}

// TestRepoEscapeClean is the tree gate: no annotated noalloc function in
// the repository contains a compiler-proven heap escape (beyond the
// reasoned allows recorded in the source).
func TestRepoEscapeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds annotated packages with -gcflags=-m")
	}
	diags, err := EscapeCheck("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not escape-clean: %s", d)
	}
}
