package lint

import "strings"

// DeterministicPackages are the deterministic-replay package suffixes:
// everything a seeded campaign replays bit-identically, from the console
// emulator down through the physics and back up through the experiment
// drivers. The determinism analyzer is scoped to these; packages outside
// the list (CLI entry points, the linter itself) may read clocks freely.
var DeterministicPackages = []string{
	"internal/sim",
	"internal/dynamics",
	"internal/robot",
	"internal/fault",
	"internal/experiment",
	"internal/core",
	"internal/control",
	"internal/plc",
	"internal/usb",
	"internal/itp",
	"internal/interpose",
	"internal/malware",
	"internal/inject",
	// The scale-out layer: partial aggregates and their merge schedules
	// must be bit-identical at any shard/chunk/worker count, so the
	// reducers and the shard partitioner are replay-deterministic too.
	// That includes the supervision layer (supervisor, journal, chaos):
	// deadlines and backoff run on an injectable Clock, ChaosPlan
	// decisions are a pure hash of (seed, range, attempt), and journal
	// replay rides the same order-insensitive Merger — so recovery from
	// crashes, hangs and coordinator kills cannot perturb the bits.
	"internal/shard",
	"internal/stats",
	"internal/metrics",
	// The fleet engine: per-session digests must be invariant to worker
	// count, lane placement, and admission interleaving, so the whole
	// multi-tenant tick path is replay-deterministic. Tick-latency
	// instrumentation goes through the injectable Clock in fleet.Config.
	"internal/fleet",
}

// MatchDeterministic reports whether an import path is one of the
// deterministic-replay packages.
func MatchDeterministic(importPath string) bool {
	return matchSuffix(importPath, DeterministicPackages)
}

// HeldFramePackages are the packages that participate in the
// interpose.Hold held-frame protocol: the chain itself, the guard that
// issues Hold verdicts and carries the deferred-predict seam, the fleet
// worker that drives the batched resume, and the rig whose write path
// the resumed frame lands on. The heldframe analyzer is scoped to these.
var HeldFramePackages = []string{
	"internal/interpose",
	"internal/core",
	"internal/fleet",
	"internal/sim",
}

// MatchHeldFrame reports whether an import path is one of the
// held-frame protocol packages.
func MatchHeldFrame(importPath string) bool {
	return matchSuffix(importPath, HeldFramePackages)
}

// ReducerPackages are the packages whose merge schedules the sharded
// campaign's bit-identity argument leans on: the shard layer's Merger,
// the stats combine schedule, the metrics aggregates, and the
// experiment-level shard reducers (plus the labrunner CLI that hosts
// shard workers). The mergepurity analyzer is scoped to these.
var ReducerPackages = []string{
	"internal/shard",
	"internal/stats",
	"internal/metrics",
	"internal/experiment",
	"cmd/labrunner",
}

// MatchReducer reports whether an import path is one of the reducer
// packages.
func MatchReducer(importPath string) bool {
	return matchSuffix(importPath, ReducerPackages)
}

func matchSuffix(importPath string, suffixes []string) bool {
	for _, suffix := range suffixes {
		if importPath == suffix || strings.HasSuffix(importPath, "/"+suffix) {
			return true
		}
	}
	return false
}
