package lint

import "strings"

// DeterministicPackages are the deterministic-replay package suffixes:
// everything a seeded campaign replays bit-identically, from the console
// emulator down through the physics and back up through the experiment
// drivers. The determinism analyzer is scoped to these; packages outside
// the list (CLI entry points, the linter itself) may read clocks freely.
var DeterministicPackages = []string{
	"internal/sim",
	"internal/dynamics",
	"internal/robot",
	"internal/fault",
	"internal/experiment",
	"internal/core",
	"internal/control",
	"internal/plc",
	"internal/usb",
	"internal/itp",
	"internal/interpose",
	"internal/malware",
	"internal/inject",
	// The scale-out layer: partial aggregates and their merge schedules
	// must be bit-identical at any shard/chunk/worker count, so the
	// reducers and the shard partitioner are replay-deterministic too.
	// That includes the supervision layer (supervisor, journal, chaos):
	// deadlines and backoff run on an injectable Clock, ChaosPlan
	// decisions are a pure hash of (seed, range, attempt), and journal
	// replay rides the same order-insensitive Merger — so recovery from
	// crashes, hangs and coordinator kills cannot perturb the bits.
	"internal/shard",
	"internal/stats",
	"internal/metrics",
	// The fleet engine: per-session digests must be invariant to worker
	// count, lane placement, and admission interleaving, so the whole
	// multi-tenant tick path is replay-deterministic. Tick-latency
	// instrumentation goes through the injectable Clock in fleet.Config.
	"internal/fleet",
}

// MatchDeterministic reports whether an import path is one of the
// deterministic-replay packages.
func MatchDeterministic(importPath string) bool {
	for _, suffix := range DeterministicPackages {
		if importPath == suffix || strings.HasSuffix(importPath, "/"+suffix) {
			return true
		}
	}
	return false
}
